// Package singlespec is a reproduction of Penry's single-specification
// principle for functional-to-timing simulator interface design (ISPASS
// 2011): write one extremely detailed instruction-set specification in an
// Architecture Description Language and *derive* every lower-detail
// functional-simulator interface from it.
//
// The public surface bundles the engine's pieces:
//
//   - ParseSpec compiles a LIS-dialect ADL description into a Spec.
//   - LoadISA returns one of the three bundled instruction sets (alpha64,
//     arm32, ppc32), each with twelve standard derived interfaces.
//   - Synthesize specializes a Spec for one buildset (interface
//     description), producing a Sim whose Block / One / Step entry points
//     a timing simulator drives.
//   - NewAssembler derives an assembler and disassembler from the same
//     specification.
//   - The Run* functions execute the classic decoupled simulator
//     organizations (functional-first, timing-directed, timing-first,
//     speculative functional-first, sampling) end to end.
//
// A minimal session:
//
//	i, _ := singlespec.LoadISA("alpha64")
//	sim, _ := singlespec.Synthesize(i.Spec, "one_all", singlespec.Options{})
//	a, _ := singlespec.NewAssembler(i)
//	prog, _ := a.Assemble("demo.s", src)
//	m := i.Spec.NewMachine()
//	prog.LoadInto(m)
//	x := sim.NewExec(m)
//	var rec singlespec.Record
//	for x.ExecOne(&rec) {
//	    // rec carries the interface's informational detail
//	}
package singlespec

import (
	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/lis"
	"singlespec/internal/mach"
	"singlespec/internal/orgs"
	"singlespec/internal/sysemu"
)

// Core model types.
type (
	// Spec is a resolved LIS instruction-set specification.
	Spec = lis.Spec
	// Buildset is an interface description: visibility (informational
	// detail) plus entrypoints (semantic detail) plus speculation support.
	Buildset = lis.Buildset
	// Sim is a functional simulator synthesized for one buildset.
	Sim = core.Sim
	// Exec is an execution context of a Sim bound to a Machine.
	Exec = core.Exec
	// Record is the dynamic instruction record published through the
	// interface.
	Record = core.Record
	// Batch is the block-interface result unit.
	Batch = core.Batch
	// Layout maps visible fields to record slots.
	Layout = core.Layout
	// Options tunes synthesis (ablations, cache sizes).
	Options = core.Options
	// Machine is one simulated hardware context.
	Machine = mach.Machine
	// Fault is an architectural fault code.
	Fault = mach.Fault
	// ISA is a bundled instruction set: spec plus ABI conventions.
	ISA = isa.ISA
	// Assembler assembles and disassembles using the spec's templates.
	Assembler = asm.Assembler
	// Program is an assembled, loadable program.
	Program = asm.Program
	// OSEmulator provides deterministic user-mode OS services.
	OSEmulator = sysemu.Emulator
	// OrgResult summarizes one organization run.
	OrgResult = orgs.Result
)

// ParseSpec compiles LIS source into a resolved specification.
func ParseSpec(filename, src string) (*Spec, error) { return lis.Parse(filename, src) }

// LoadISA returns a bundled instruction set by name ("alpha64", "arm32",
// "ppc32").
func LoadISA(name string) (*ISA, error) { return isa.Load(name) }

// ISANames lists the bundled instruction sets.
func ISANames() []string { return isa.Names() }

// ISASource returns the raw LIS description of a bundled ISA so callers
// can append their own buildset descriptions and re-parse — the paper's
// interface-tailoring workflow (a new interface is ~a dozen lines).
func ISASource(name string) string { return isa.Source(name) }

// ISAConvention returns the ABI convention of a bundled ISA.
func ISAConvention(name string) isa.Convention { return isa.Conv(name) }

// StandardBuildsets lists the twelve standard derived interfaces.
func StandardBuildsets() []string { return append([]string(nil), isa.StdBuildsets...) }

// Synthesize derives a functional simulator for one buildset of a spec —
// the single-specification principle's synthesis step.
func Synthesize(spec *Spec, buildset string, opts Options) (*Sim, error) {
	return core.Synthesize(spec, buildset, opts)
}

// NewAssembler derives an assembler from an ISA's specification.
func NewAssembler(i *ISA) (*Assembler, error) { return asm.New(i) }

// NewOSEmulator builds the deterministic OS emulator for an ISA.
func NewOSEmulator(i *ISA) *OSEmulator { return sysemu.New(i.Conv) }

// Simulator organizations (the paper's Figure 1), re-exported from
// internal/orgs.
var (
	// RunIntegrated is the single-simulator baseline.
	RunIntegrated = orgs.RunIntegrated
	// RunFunctionalFirst streams records into an in-order pipeline model.
	RunFunctionalFirst = orgs.RunFunctionalFirst
	// RunBlockFunctionalFirst is functional-first over the Block interface.
	RunBlockFunctionalFirst = orgs.RunBlockFunctionalFirst
	// RunTraceDriven serializes the stream to storage and replays it.
	RunTraceDriven = orgs.RunTraceDriven
	// RunTimingDirected drives the Step interface from a dynamically
	// scheduled core model.
	RunTimingDirected = orgs.RunTimingDirected
	// RunTimingFirst checks a (possibly buggy) timing simulator against a
	// minimal functional simulator and repairs mismatches.
	RunTimingFirst = orgs.RunTimingFirst
	// RunSpecFunctionalFirst runs ahead speculatively and rolls back on
	// detected divergence.
	RunSpecFunctionalFirst = orgs.RunSpecFunctionalFirst
	// RunSampled alternates detailed Step/All windows with Block/Min
	// fast-forwarding (SMARTS-style sampling).
	RunSampled = orgs.RunSampled
)
