// lisc is the LIS specification compiler: it parses and checks an ADL
// description, synthesizes its buildsets, and reports the Table I
// statistics. With -emit it prints the specialized per-instruction code
// the engine derives for a buildset (the analogue of the paper's Figures
// 3 and 4).
//
// Usage:
//
//	lisc -builtin alpha64            # check a bundled ISA
//	lisc file.lis                    # check a description file
//	lisc -builtin arm32 -emit one_min -instr ADD
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/lis"
)

func main() {
	builtin := flag.String("builtin", "", "check a bundled ISA (alpha64|arm32|ppc32) instead of a file")
	emit := flag.String("emit", "", "emit the specialized code derived for this buildset")
	instr := flag.String("instr", "", "restrict -emit to one instruction")
	flag.Parse()

	var spec *lis.Spec
	var name string
	switch {
	case *builtin != "":
		i, err := isa.Load(*builtin)
		if err != nil {
			fatal(err)
		}
		spec, name = i.Spec, *builtin
		fmt.Printf("%s: %d lines of LIS (ISA), %d lines (buildsets)\n", name, i.DescLines, i.BuildsetLines)
	case flag.NArg() == 1:
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		spec, err = lis.Parse(path, string(data))
		if err != nil {
			fatal(err)
		}
		name = path
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("%s: isa %q, %d instructions, %d fields, %d formats, %d buildsets\n",
		name, spec.Name, len(spec.Instrs), len(spec.Fields), len(spec.Formats), len(spec.Buildsets))
	for _, bs := range spec.Buildsets {
		sim, err := core.Synthesize(spec, bs.Name, core.Options{})
		if err != nil {
			fmt.Printf("  buildset %-20s FAILED: %v\n", bs.Name, err)
			continue
		}
		mode := "one"
		if bs.Mode == lis.ModeBlock {
			mode = "block"
		} else if len(bs.Entrypoints) > 1 {
			mode = fmt.Sprintf("step(%d)", len(bs.Entrypoints))
		}
		spc := ""
		if bs.Spec {
			spc = " +speculation"
		}
		fmt.Printf("  buildset %-20s %-8s %2d visible fields, %2d source lines%s\n",
			bs.Name, mode, sim.Layout.NumSlots(), bs.SrcLines, spc)
		for _, w := range sim.Warnings {
			fmt.Printf("    warning: %s\n", w)
		}
	}

	if *emit != "" {
		sim, err := core.Synthesize(spec, *emit, core.Options{})
		if err != nil {
			fatal(err)
		}
		out := sim.EmitSpecialized(*instr)
		if strings.TrimSpace(out) == "" {
			fatal(fmt.Errorf("nothing to emit (unknown instruction %q?)", *instr))
		}
		fmt.Println(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisc:", err)
	os.Exit(1)
}
