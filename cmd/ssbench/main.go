// ssbench regenerates the paper's evaluation artifacts as markdown:
// Table I (description characteristics), Table II (simulation speed per
// interface), Table III (costs of detail), the headline speedup, and the
// design ablations. Measurement cells fan out across a worker pool; output
// is identical for any worker count (and byte-identical under -metric work,
// which reports deterministic engine work units instead of wall-clock
// MIPS).
//
// Usage:
//
//	ssbench                  # everything, quick settings
//	ssbench -table 2 -scale 4 -dur 500ms
//	ssbench -table 2 -parallel 1 -metric work   # serial, deterministic
//	ssbench -faults 42       # deterministic fault-injection campaign
//	ssbench -cell-timeout 30s -table 2          # watchdogged sweep
//	ssbench -metric work -metrics-out metrics.json   # counters + manifest
//	ssbench -table 2 -backend both              # interpreter vs. AOT runner parity sweep
//	ssbench -resume-dir run1 -table 2           # durable sweep (journal)
//	ssbench -resume-dir run1 -resume -table 2   # continue a killed sweep
//	ssbench -table 2 -serve-fabric :7707        # distributed-sweep coordinator
//	ssbench -join host:7707 -table 2            # fabric worker (same sweep flags)
//	ssbench -faults 42 -serve-fabric :7707      # distributed-campaign coordinator
//	ssbench -faults 42 -join host:7707          # campaign worker (same fault flags)
//	ssbench -pprof localhost:6060               # live profiling endpoint
//
// A durable sweep interrupted by SIGINT/SIGTERM winds down cleanly (cells
// stop at the next watchdog check, the journal and manifest are flushed)
// and exits 130/143; rerunning with -resume reloads the completed cells
// and computes only the rest.
//
// With -serve-fabric the Table II sweep's cells are leased to workers
// (started with -join and the same sweep flags — a config fingerprint
// refuses mismatched workers, exit 3), heartbeat-monitored, and taken over
// mid-kernel from the last progress snapshot when a worker dies. The
// merged output is byte-identical to a single-host run in every
// deterministic field; see "Distributed sweep fabric" in EXPERIMENTS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/fabric"
	"singlespec/internal/faultinj"
	"singlespec/internal/obs"
	"singlespec/internal/stats"
)

// Exit codes for a signal-interrupted run, per shell convention (128+N).
const (
	exitSIGINT  = 130
	exitSIGTERM = 143
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1|2|3), 0 = all")
	scale := flag.Int("scale", 2, "workload scale factor")
	dur := flag.Duration("dur", 200*time.Millisecond, "minimum measurement time per cell")
	ablate := flag.Bool("ablations", true, "include design ablations")
	parallel := flag.Int("parallel", runtime.NumCPU(), "measurement worker count")
	metricName := flag.String("metric", "mips", "table metric: mips (wall-clock) or work (deterministic work units)")
	faultSeed := flag.Int64("faults", -1, "run a fault-injection campaign with this seed instead of the tables (>= 0 enables)")
	faultEvents := flag.Int("fault-events", 4, "fault events attempted per campaign cell")
	faultClasses := flag.String("fault-classes", "all", "comma-separated fault classes (load,fetch,squash,syscall,codegen) or all")
	cellTimeout := flag.Duration("cell-timeout", 0, "wall-clock watchdog per measurement cell (0 disables); hung cells are marked errored instead of stalling the sweep")
	metricsOut := flag.String("metrics-out", "", "write a JSON run manifest + metrics snapshot to this file (see EXPERIMENTS.md)")
	benchOut := flag.String("bench-out", "", "write the Table II speed grid as JSON (schema "+expt.BenchSchema+") to this file; see RESULTS.md")
	resumeDir := flag.String("resume-dir", "", "directory holding the durable run journal; enables resumable sweeps (see EXPERIMENTS.md)")
	resume := flag.Bool("resume", false, "continue the journal in -resume-dir: completed cells are reloaded, only the rest are computed")
	ckptEvery := flag.Uint64("ckpt-every", 0, "capture an in-cell machine checkpoint every N simulated instructions (0 disables); transient cell retries then resume from the last checkpoint instead of rerunning the cell")
	backendName := flag.String("backend", "interp", "Table II execution backend: interp (in-process), aot (generated runner binaries), or both (each cell measured twice, with a deterministic-parity check)")
	aotCache := flag.String("aot-cache", "", "directory caching compiled AOT runner binaries (keyed by source hash); empty uses a per-run temporary cache")
	aotPlugin := flag.Bool("aot-plugin", false, "load AOT runners in process via the Go plugin transport where the toolchain supports it, falling back to subprocess runners where it does not (results identical; see EXPERIMENTS.md)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	serveFabric := flag.String("serve-fabric", "", "run the Table II sweep as a fabric coordinator listening on this address (e.g. 127.0.0.1:7707); workers join with -join (see EXPERIMENTS.md)")
	join := flag.String("join", "", "run as a fabric worker joining the coordinator at this address; sweep flags (-scale, -metric, -backend, ...) must match the coordinator's or the worker is refused")
	workerID := flag.String("worker-id", "", "fabric worker id (-join mode); empty derives one from hostname and pid")
	leaseTTL := flag.Duration("lease-ttl", 0, "fabric lease validity without a heartbeat before the coordinator re-leases the cell to another worker (0 = 10s default)")
	segmentDir := flag.String("segment-dir", "", "fabric coordinator: directory for per-worker result segments (empty = per-run temp dir)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base delay of the exponential seeded-jitter backoff between cell retries (0 = 25ms default, negative disables)")
	retrySeed := flag.Uint64("retry-seed", 0, "seed for the deterministic retry/reconnect jitter (a host knob: never affects cell results)")
	flag.Parse()

	// Signal handling: the first SIGINT/SIGTERM asks the sweep to wind down
	// (running cells stop at the next cooperative watchdog check, then the
	// journal and manifest are flushed and the process exits 130/143); a
	// second signal falls back to default disposition and kills immediately.
	interrupt := make(chan struct{})
	var sigExit atomic.Int32
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		if s == syscall.SIGTERM {
			sigExit.Store(exitSIGTERM)
		} else {
			sigExit.Store(exitSIGINT)
		}
		fmt.Fprintln(os.Stderr, "ssbench: signal received, winding down (signal again to kill)")
		close(interrupt)
		signal.Stop(sigCh)
	}()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ssbench: pprof:", err)
			}
		}()
	}

	var reg *obs.Registry
	var man *obs.Manifest
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		man = obs.NewManifest("ssbench")
		man.Flags = map[string]string{
			"table":        strconv.Itoa(*table),
			"scale":        strconv.Itoa(*scale),
			"dur":          dur.String(),
			"ablations":    strconv.FormatBool(*ablate),
			"parallel":     strconv.Itoa(*parallel),
			"metric":       *metricName,
			"faults":       strconv.FormatInt(*faultSeed, 10),
			"fault-events": strconv.Itoa(*faultEvents),
			"cell-timeout": cellTimeout.String(),
			"resume-dir":   *resumeDir,
			"resume":       strconv.FormatBool(*resume),
			"ckpt-every":   strconv.FormatUint(*ckptEvery, 10),
			"backend":      *backendName,
			"aot-cache":    *aotCache,
			"aot-plugin":   strconv.FormatBool(*aotPlugin),
		}
		if *serveFabric != "" {
			man.Flags["serve-fabric"] = *serveFabric
			man.Flags["lease-ttl"] = leaseTTL.String()
		}
		if *join != "" {
			man.Flags["join"] = *join
			man.Flags["worker-id"] = *workerID
		}
	}
	// writeManifest flushes the manifest before any exit path; the snapshot
	// is taken here, after all instrumented work has quiesced.
	writeManifest := func() {
		if man == nil {
			return
		}
		man.Interrupted = sigExit.Load() != 0
		man.Metrics = reg.Snapshot()
		if err := man.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "ssbench:", err)
			os.Exit(1)
		}
	}

	if *faultSeed >= 0 {
		if *resumeDir != "" {
			fatal(fmt.Errorf("-resume-dir applies to table sweeps, not fault campaigns"))
		}
		if *join != "" && *serveFabric != "" {
			fatal(fmt.Errorf("-join and -serve-fabric are mutually exclusive"))
		}
		runFaultCampaign(faultCampaignOpts{
			seed: uint64(*faultSeed), events: *faultEvents, classSpec: *faultClasses,
			workers: *parallel, serveFabric: *serveFabric, join: *join,
			workerID: *workerID, leaseTTL: *leaseTTL, segmentDir: *segmentDir,
			interrupt: interrupt, sigExit: &sigExit,
			reg: reg, man: man, writeManifest: writeManifest,
		})
		return
	}

	metric, err := expt.ParseMetric(*metricName)
	if err != nil {
		fatal(err)
	}
	backend, err := expt.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	cfg := expt.Config{Scale: *scale, MinDur: *dur, Workers: *parallel, Metric: metric,
		CellTimeout: *cellTimeout, Obs: reg, CkptEvery: *ckptEvery, Interrupt: interrupt,
		Backend: backend, AOTCacheDir: *aotCache, AOTPlugin: *aotPlugin,
		RetryBackoff: *retryBackoff, RetrySeed: *retrySeed}

	// Fabric worker mode: join a coordinator and serve leases until the
	// sweep completes. The worker prints no tables — results flow to the
	// coordinator, which renders the identical output a single-host run
	// would. Exit 0 on clean shutdown, 3 when refused (stale worker), 1 on
	// other errors.
	if *join != "" {
		if *serveFabric != "" {
			fatal(fmt.Errorf("-join and -serve-fabric are mutually exclusive"))
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssbench: "+format+"\n", args...)
		}
		err := fabric.RunWorker(fabric.WorkerConfig{
			Addr: *join, ID: *workerID, Sweep: cfg, Log: logf,
		})
		writeManifest()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssbench:", err)
			var refused *fabric.RefusedError
			if errors.As(err, &refused) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		if code := sigExit.Load(); code != 0 {
			os.Exit(int(code))
		}
		return
	}
	if *serveFabric != "" && *table != 2 {
		fatal(fmt.Errorf("-serve-fabric distributes the Table II sweep; run it with -table 2"))
	}

	// Durability: the run journal records each completed cell as it
	// finishes; a rerun with -resume reloads them. The fingerprint refuses
	// resuming under a configuration that would produce different cells.
	var journal *expt.RunJournal
	if *resumeDir != "" {
		fp := expt.Fingerprint(fmt.Sprintf("table=%d,ablations=%t", *table, *ablate), cfg)
		runID := fmt.Sprintf("%s-%d", time.Now().UTC().Format("20060102T150405Z"), os.Getpid())
		journal, err = expt.OpenJournal(*resumeDir, runID, fp, *resume)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
		cfg.Journal = journal
		if man != nil {
			man.RunID = runID
			man.ParentRunID = journal.ParentRunID()
		}
	}
	// allCells accumulates every sweep cell for the manifest's resume
	// lineage counts.
	var allCells []expt.Cell

	if *table == 0 || *table == 1 {
		t1, err := expt.TableI()
		if err != nil {
			fatal(err)
		}
		fmt.Println("## Table I — Instruction set characteristics")
		fmt.Println()
		fmt.Println(t1)
	}
	if *table == 0 || *table == 2 || *table == 3 {
		if metric == expt.MetricWork {
			fmt.Println("## Table II — Deterministic work units per instruction (geometric mean over the kernel mix)")
		} else {
			fmt.Println("## Table II — Simulation speed (MIPS, geometric mean over the kernel mix)")
		}
		fmt.Println()
		var cells []expt.Cell
		var t2 *stats.Table
		if *serveFabric != "" {
			// Fabric coordinator: the sweep's cells are measured by joined
			// workers (leased, heartbeated, taken over on death) and merged
			// back here; everything after this point — rendering, bench
			// output, manifest — is the same code path as a local sweep, so
			// the artifacts are byte-identical in every deterministic field.
			logf := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ssbench: "+format+"\n", args...)
			}
			coord, err := fabric.NewCoordinator(fabric.Config{
				Addr: *serveFabric, Sweep: cfg, LeaseTTL: *leaseTTL,
				SegmentDir: *segmentDir, Log: logf,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "ssbench: fabric coordinator listening on %s\n", coord.Addr())
			cells, err = coord.Wait()
			if err != nil {
				fatal(err)
			}
			if man != nil {
				man.Fabric = coord.Snapshot()
			}
			t2 = expt.RenderTableII(cfg, cells)
		} else {
			var err error
			cells, t2, err = expt.TableII(cfg)
			if err != nil {
				fatal(err)
			}
		}
		allCells = append(allCells, cells...)
		if man != nil {
			man.Cells = append(man.Cells, expt.Outcomes(cells)...)
		}
		if *benchOut != "" {
			if err := expt.WriteBenchJSON(*benchOut, cfg, cells); err != nil {
				fatal(err)
			}
		}
		fmt.Println(t2)
		reportCellErrors(cells)
		if backend == expt.BackendBoth {
			// Deterministic parity: the AOT backend must reproduce the
			// interpreter's work accounting exactly (the speed columns are
			// the comparison; the work columns are the contract).
			divs := expt.VerifyBackendParity(cells, metric == expt.MetricWork)
			for _, d := range divs {
				fmt.Fprintln(os.Stderr, "ssbench: backend divergence:", d)
			}
			if len(divs) > 0 {
				sawCellErrors = true
			} else {
				fmt.Println("Backend parity: interpreter and AOT work accounting identical on all cells.")
				fmt.Println()
			}
		}
		fmt.Println("### Headline: lowest-detail vs. highest-detail interface")
		fmt.Println()
		fmt.Println(expt.Headline(cells, metric))
		if *table == 0 || *table == 3 {
			fmt.Println("## Table III — Costs of detail (base + increments)")
			fmt.Println()
			fmt.Println(expt.TableIII(cells))
		}
	}
	if *ablate && *table == 0 {
		fmt.Println("## Ablations (footnote 5 and DESIGN.md §6)")
		fmt.Println()
		aCells, ta, err := expt.Ablations(cfg)
		if err != nil {
			fatal(err)
		}
		allCells = append(allCells, aCells...)
		if man != nil {
			man.Cells = append(man.Cells, expt.Outcomes(aCells)...)
		}
		fmt.Println(ta)
		reportCellErrors(aCells)
	}
	if man != nil {
		man.CellsRestored, man.CellsComputed = expt.SweepCounts(allCells)
	}
	if journal != nil {
		journal.Close()
	}
	writeManifest()
	if code := sigExit.Load(); code != 0 {
		fmt.Fprintln(os.Stderr, "ssbench: interrupted; journal and manifest flushed, rerun with -resume to continue")
		os.Exit(int(code))
	}
	if sawCellErrors {
		os.Exit(1)
	}
}

// sawCellErrors records that a sweep rendered with error-marked cells, so
// the process can exit nonzero after printing every table it was asked for
// (the degraded-table contract: tables always render to completion).
var sawCellErrors bool

// reportCellErrors prints the typed error behind every ERR:-marked cell.
func reportCellErrors(cells []expt.Cell) {
	for _, ce := range expt.CellErrors(cells) {
		sawCellErrors = true
		fmt.Fprintf(os.Stderr, "ssbench: cell error: %v\n", ce)
	}
}

// faultCampaignOpts carries the campaign's flag surface: local run, fabric
// coordinator (-serve-fabric), or fabric worker (-join).
type faultCampaignOpts struct {
	seed        uint64
	events      int
	classSpec   string
	workers     int
	serveFabric string
	join        string
	workerID    string
	leaseTTL    time.Duration
	segmentDir  string
	interrupt   <-chan struct{}
	sigExit     *atomic.Int32

	reg           *obs.Registry
	man           *obs.Manifest
	writeManifest func()
}

// runFaultCampaign runs the deterministic fault-injection campaign and
// exits nonzero if any cell diverged or errored. The manifest (when
// requested) is written before any exit, so failed campaigns still leave
// their metrics behind. With -serve-fabric the campaign's cells are leased
// to -join workers and the merged report is byte-identical to the local
// run; the worker side prints nothing and exits 3 when refused.
func runFaultCampaign(o faultCampaignOpts) {
	classes, err := faultinj.ParseClasses(o.classSpec)
	if err != nil {
		fatal(err)
	}
	cfg := faultinj.Config{
		Seed: o.seed, Events: o.events, Workers: o.workers, Classes: classes, Obs: o.reg,
	}

	if o.join != "" {
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssbench: "+format+"\n", args...)
		}
		err := fabric.RunCampaignWorker(fabric.CampaignWorkerConfig{
			Addr: o.join, ID: o.workerID, Campaign: cfg, Log: logf,
		})
		o.writeManifest()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssbench:", err)
			var refused *fabric.RefusedError
			if errors.As(err, &refused) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		if code := o.sigExit.Load(); code != 0 {
			os.Exit(int(code))
		}
		return
	}

	var rep *faultinj.Report
	if o.serveFabric != "" {
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssbench: "+format+"\n", args...)
		}
		coord, err := fabric.NewCampaignCoordinator(fabric.CampaignConfig{
			Addr: o.serveFabric, Campaign: cfg, LeaseTTL: o.leaseTTL,
			SegmentDir: o.segmentDir, Log: logf, Interrupt: o.interrupt,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ssbench: campaign coordinator listening on %s\n", coord.Addr())
		rep, err = coord.Wait()
		if err != nil {
			fatal(err)
		}
		if o.man != nil {
			o.man.Fabric = coord.Snapshot()
		}
	} else {
		rep, err = faultinj.Run(cfg)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Println("## Fault-injection campaign")
	fmt.Println()
	fmt.Print(rep)
	if o.man != nil {
		o.man.Cells = append(o.man.Cells, rep.Outcomes()...)
	}
	o.writeManifest()
	if code := o.sigExit.Load(); code != 0 {
		fmt.Fprintln(os.Stderr, "ssbench: interrupted; manifest flushed")
		os.Exit(int(code))
	}
	if n := len(rep.Failures()); n > 0 {
		fatal(fmt.Errorf("%d campaign cell(s) failed", n))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssbench:", err)
	os.Exit(1)
}
