// Command ssd is the simulation-as-a-service daemon and its CLI.
//
// Server mode runs the daemon on a durable state directory:
//
//	ssd serve -listen 127.0.0.1:7790 -state /var/lib/ssd \
//	    -tenant alice=2:2000000:4 -tenant bob=1:500000 \
//	    -retain 100 -retain-age 168h
//
// SIGINT/SIGTERM evicts every running job and drains the wait queue
// (journals flushed, state persisted) and exits; restarting on the same
// -state resumes the backlog in priority order with byte-identical
// deterministic output.
//
// Client subcommands talk to a running daemon:
//
//	ssd submit  -addr HOST:PORT [-tenant T] [-priority 0..9]
//	            [sweep/kernel/campaign flags] [-wait]
//	ssd status  -addr HOST:PORT -job ID [-wait]
//	ssd list    -addr HOST:PORT [-tenant T]
//	ssd stream  -addr HOST:PORT -job ID [-from N]
//	ssd result  -addr HOST:PORT -job ID [-table]
//	ssd evict   -addr HOST:PORT -job ID
//	ssd resume  -addr HOST:PORT -job ID
//	ssd cancel  -addr HOST:PORT -job ID
//	ssd metrics -addr HOST:PORT
//
// Exit codes: 0 success, 1 failure, 2 admission refused (the refusal
// kind and reason go to stderr), 4 shed under budget pressure (retry
// after the refusal's retry_after_ms hint).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"singlespec/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ssd: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		runServe(args)
	case "submit":
		runSubmit(args)
	case "status", "evict", "resume", "cancel":
		runJobOp(cmd, args)
	case "list":
		runList(args)
	case "stream":
		runStream(args)
	case "result":
		runResult(args)
	case "metrics":
		runMetrics(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ssd <command> [flags]

commands:
  serve    run the daemon (-listen, -state, -aot-cache, -workers, -tenant,
           -retain, -retain-age, -event-buffer)
  submit   submit a job (-kind sweep|kernel|campaign, -priority, kind flags, -wait)
  status   query one job (-job, -wait)
  list     list jobs (-tenant)
  stream   follow a job's NDJSON event stream (-job, -from)
  result   fetch a done job's result (-job, -table prints the table only)
  evict    park a running job as resumable
  resume   requeue an evicted job
  cancel   terminally abandon a job
  metrics  dump the daemon's serve.* counters`)
}

// tenantFlags collects repeatable -tenant
// name=maxActive:instrBudget:maxQueued definitions (maxQueued optional; 0
// refuses instead of queueing, -1 queues without bound).
type tenantFlags map[string]serve.TenantPolicy

func (t tenantFlags) String() string { return fmt.Sprintf("%d tenant(s)", len(t)) }

func (t tenantFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=maxActive:instrBudget:maxQueued, got %q", v)
	}
	maxs, rest, _ := strings.Cut(spec, ":")
	budgets, queues, _ := strings.Cut(rest, ":")
	var pol serve.TenantPolicy
	if maxs != "" {
		n, err := strconv.Atoi(maxs)
		if err != nil {
			return fmt.Errorf("bad maxActive in %q: %v", v, err)
		}
		pol.MaxActive = n
	}
	if budgets != "" {
		n, err := strconv.ParseUint(budgets, 10, 64)
		if err != nil {
			return fmt.Errorf("bad instrBudget in %q: %v", v, err)
		}
		pol.InstrBudget = n
	}
	if queues != "" {
		n, err := strconv.Atoi(queues)
		if err != nil {
			return fmt.Errorf("bad maxQueued in %q: %v", v, err)
		}
		pol.MaxQueued = n
	}
	t[name] = pol
	return nil
}

func runServe(args []string) {
	fs := flag.NewFlagSet("ssd serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7790", "TCP listen address (\":0\" picks a port)")
	state := fs.String("state", "", "durable state directory (empty: temporary, jobs do not survive restart)")
	aotCache := fs.String("aot-cache", "", "shared AOT build cache directory (default: STATE/aot-cache)")
	workers := fs.Int("workers", 0, "per-job sweep worker pool size (0: number of CPUs)")
	retain := fs.Int("retain", 0, "keep at most N terminal jobs' state dirs per tenant; older ones become tombstones (0: keep all)")
	retainAge := fs.Duration("retain-age", 0, "sweep terminal jobs older than this to tombstones (0: keep regardless of age)")
	eventBuffer := fs.Int("event-buffer", 0, "per-job NDJSON replay ring size in events (0: default 4096)")
	tenants := tenantFlags{}
	fs.Var(tenants, "tenant", "tenant policy name=maxActive:instrBudget:maxQueued (repeatable; empty parts are unlimited, maxQueued -1 queues unbounded)")
	_ = fs.Parse(args)

	srv, err := serve.New(serve.Config{
		StateDir:    *state,
		AOTCacheDir: *aotCache,
		Workers:     *workers,
		Retain:      *retain,
		RetainAge:   *retainAge,
		EventBuffer: *eventBuffer,
		Tenants:     tenants,
		Log:         log.Printf,
	})
	if err != nil {
		log.Fatalf("starting daemon: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	log.Printf("listening on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case got := <-sig:
		log.Printf("%v: evicting running jobs and shutting down", got)
		ln.Close()
		srv.Close()
	case err := <-done:
		log.Fatalf("serve: %v", err)
	}
}

// exitErr reports an RPC failure and exits: code 4 for shed-under-pressure
// refusals (retryable after the hint), 2 for other typed admission
// refusals, 1 otherwise.
func exitErr(err error) {
	if rpcErr, ok := err.(*serve.RPCError); ok {
		if ref, isRefusal := rpcErr.Refusal(); isRefusal {
			if ref.Kind == "shed" {
				log.Printf("shed: %s (retry after %dms)", ref.Reason, ref.RetryAfterMS)
				os.Exit(4)
			}
			log.Printf("refused (%s): %s", ref.Kind, ref.Reason)
			os.Exit(2)
		}
	}
	log.Print(err)
	os.Exit(1)
}

func printJSON(v any) {
	b, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(b))
}

func runSubmit(args []string) {
	fs := flag.NewFlagSet("ssd submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	tenant := fs.String("tenant", "", "tenant name (default \"default\")")
	kind := fs.String("kind", "sweep", "job kind: sweep, kernel, or campaign")
	priority := fs.Int("priority", 0, "scheduling priority 0 (lowest) to 9 (highest)")
	scale := fs.Int("scale", 1, "problem-size multiplier")
	minDur := fs.Duration("min-dur", 0, "minimum per-kernel measure time")
	metric := fs.String("metric", "work", "metric: work (deterministic) or mips")
	backend := fs.String("backend", "", "backend: interp (default), aot, or both (sweeps)")
	maxCellInstr := fs.Uint64("max-cell-instr", 0, "per-cell instruction budget (required for budgeted tenants)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell wall-clock watchdog")
	ckptEvery := fs.Uint64("ckpt-every", 0, "checkpoint cadence in instructions")
	isaName := fs.String("isa", "", "kernel job: ISA name")
	buildset := fs.String("buildset", "", "kernel job: buildset name")
	kernel := fs.String("kernel", "", "kernel job: kernel name")
	n := fs.Int("n", 0, "kernel job: problem size (0: kernel default)")
	fabricListen := fs.String("fabric-listen", "", "sweep/campaign job: run as fabric coordinator on this address")
	faultSeed := fs.Uint64("fault-seed", 1, "campaign job: fault-injection seed")
	faultEvents := fs.Int("fault-events", 0, "campaign job: fault events per cell")
	faultClasses := fs.String("fault-classes", "", "campaign job: comma-separated fault classes (default all)")
	faultKernels := fs.String("fault-kernels", "", "campaign job: comma-separated kernels (default all)")
	wait := fs.Bool("wait", false, "block until the job rests; print the result table when done")
	_ = fs.Parse(args)

	c := &serve.Client{Addr: *addr}
	req := serve.JobRequest{
		Kind: *kind, Priority: *priority, Scale: *scale,
		MinDurMS:     minDur.Milliseconds(),
		Metric:       *metric,
		Backend:      *backend,
		MaxCellInstr: *maxCellInstr,
		CellTimeoutMS: func() int64 {
			return cellTimeout.Milliseconds()
		}(),
		CkptEvery: *ckptEvery,
		ISA:       *isaName, Buildset: *buildset, Kernel: *kernel, N: *n,
		FabricListen: *fabricListen,
	}
	if *kind == "campaign" {
		req.FaultSeed = *faultSeed
		req.FaultEvents = *faultEvents
		req.FaultClasses = *faultClasses
		req.FaultKernels = *faultKernels
		// Campaigns are schedule-driven: the sweep/kernel knobs' flag
		// defaults (scale 1, metric work) must not reach the daemon.
		req.Scale, req.MinDurMS, req.Metric, req.Backend, req.CkptEvery = 0, 0, "", "", 0
	}
	st, err := c.Submit(*tenant, req)
	if err != nil {
		exitErr(err)
	}
	if !*wait {
		printJSON(st)
		return
	}
	waitAndReport(c, st.ID)
}

func waitAndReport(c *serve.Client, id string) {
	st, err := c.WaitState(id, 24*time.Hour)
	if err != nil {
		exitErr(err)
	}
	if st.State != "done" {
		printJSON(st)
		log.Printf("job %s rested as %s", id, st.State)
		os.Exit(1)
	}
	res, err := c.Result(id)
	if err != nil {
		exitErr(err)
	}
	fmt.Print(res.Table)
}

func runJobOp(op string, args []string) {
	fs := flag.NewFlagSet("ssd "+op, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	job := fs.String("job", "", "job id")
	wait := fs.Bool("wait", false, "status only: block until the job rests")
	_ = fs.Parse(args)
	if *job == "" {
		log.Fatalf("%s needs -job", op)
	}
	c := &serve.Client{Addr: *addr}
	var st serve.JobStatus
	var err error
	switch op {
	case "status":
		if *wait {
			st, err = c.WaitState(*job, 24*time.Hour)
		} else {
			st, err = c.Status(*job)
		}
	case "evict":
		st, err = c.Evict(*job)
	case "resume":
		st, err = c.Resume(*job)
	case "cancel":
		st, err = c.Cancel(*job)
	}
	if err != nil {
		exitErr(err)
	}
	printJSON(st)
}

func runList(args []string) {
	fs := flag.NewFlagSet("ssd list", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	tenant := fs.String("tenant", "", "filter by tenant")
	_ = fs.Parse(args)
	c := &serve.Client{Addr: *addr}
	jobs, err := c.List(*tenant)
	if err != nil {
		exitErr(err)
	}
	printJSON(jobs)
}

func runStream(args []string) {
	fs := flag.NewFlagSet("ssd stream", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	job := fs.String("job", "", "job id")
	from := fs.Int("from", 0, "replay events from this sequence number")
	_ = fs.Parse(args)
	if *job == "" {
		log.Fatal("stream needs -job")
	}
	c := &serve.Client{Addr: *addr}
	enc := json.NewEncoder(os.Stdout)
	err := c.Stream(*job, *from, func(ev serve.Event) bool {
		_ = enc.Encode(ev)
		return true
	})
	if err != nil {
		exitErr(err)
	}
}

func runResult(args []string) {
	fs := flag.NewFlagSet("ssd result", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	job := fs.String("job", "", "job id")
	table := fs.Bool("table", false, "print the rendered table only (byte-exact)")
	_ = fs.Parse(args)
	if *job == "" {
		log.Fatal("result needs -job")
	}
	c := &serve.Client{Addr: *addr}
	res, err := c.Result(*job)
	if err != nil {
		exitErr(err)
	}
	if *table {
		fmt.Print(res.Table)
		return
	}
	printJSON(res)
}

func runMetrics(args []string) {
	fs := flag.NewFlagSet("ssd metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7790", "daemon address")
	_ = fs.Parse(args)
	c := &serve.Client{Addr: *addr}
	snap, err := c.Metrics()
	if err != nil {
		exitErr(err)
	}
	printJSON(snap)
}
