// timingsim runs a decoupled microarchitectural simulation using one of
// the organizations from the paper's Figure 1.
//
// Usage:
//
//	timingsim -isa alpha64 -org funcfirst -kernel sieve
//	timingsim -isa arm32 -org timingdirected -kernel crc32
//	timingsim -isa ppc32 -org sampled -kernel hashmix -detailed 1000 -ff 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"singlespec/internal/asm"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/orgs"
)

func main() {
	isaName := flag.String("isa", "alpha64", "instruction set")
	org := flag.String("org", "funcfirst",
		"organization: integrated|funcfirst|blockff|timingdirected|timingfirst|specff|sampled")
	kernel := flag.String("kernel", "sieve", "bundled kernel")
	n := flag.Int("n", 0, "kernel problem size (0 = default)")
	budget := flag.Uint64("budget", 1<<40, "instruction budget")
	window := flag.Int("window", 64, "spec-FF run-ahead window")
	detailed := flag.Uint64("detailed", 1000, "sampling: detailed window instructions")
	ff := flag.Uint64("ff", 20000, "sampling: fast-forward instructions")
	flag.Parse()

	i, err := isa.Load(*isaName)
	if err != nil {
		fatal(err)
	}
	k := kernels.ByName(*kernel)
	if k == nil {
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}
	size := k.DefaultN
	if *n > 0 {
		size = *n
	}
	var prog *asm.Program
	prog, err = kernels.BuildProgram(i, k.Build(size))
	if err != nil {
		fatal(err)
	}

	var r *orgs.Result
	switch *org {
	case "integrated":
		r, err = orgs.RunIntegrated(i, prog, *budget)
	case "funcfirst":
		r, err = orgs.RunFunctionalFirst(i, prog, *budget)
	case "blockff":
		r, err = orgs.RunBlockFunctionalFirst(i, prog, *budget)
	case "timingdirected":
		r, err = orgs.RunTimingDirected(i, prog, *budget)
	case "timingfirst":
		r, err = orgs.RunTimingFirst(i, prog, *budget, nil)
	case "specff":
		r, err = orgs.RunSpecFunctionalFirst(i, prog, *budget, *window, nil)
	case "sampled":
		r, err = orgs.RunSampled(i, prog, *budget, *detailed, *ff)
	default:
		fatal(fmt.Errorf("unknown organization %q", *org))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("organization: %s (%s, %s n=%d)\n", r.Org, i.Name, k.Name, size)
	fmt.Printf("instructions: %d   cycles: %d   IPC: %.3f\n", r.Instrs, r.Cycles, r.IPC())
	if sym, ok := prog.Symbols["result"]; ok && r.Machine != nil {
		v, _ := r.Machine.Mem.Load(sym, 4)
		status := "OK"
		if uint32(v) != k.Ref(size) {
			status = fmt.Sprintf("MISMATCH (want %#x)", k.Ref(size))
		}
		fmt.Printf("checksum: %#x  %s\n", v, status)
	}
	if r.Pipeline.Instrs > 0 {
		p := r.Pipeline
		fmt.Printf("pipeline: %d branches (%d mispredicted), %d loads, %d stores\n",
			p.Branches, p.Mispredicts, p.Loads, p.Stores)
	}
	if r.OoO.Instrs > 0 {
		o := r.OoO
		fmt.Printf("core:     %d branches (%d mispredicted), %d loads, %d stores\n",
			o.Branches, o.Mispredicts, o.Loads, o.Stores)
	}
	if r.Mismatches > 0 {
		fmt.Printf("timing-first mismatches repaired: %d\n", r.Mismatches)
	}
	if r.Rollbacks > 0 {
		fmt.Printf("speculative rollbacks: %d\n", r.Rollbacks)
	}
	if r.FFInstrs > 0 {
		fmt.Printf("fast-forwarded: %d of %d instructions (%.1f%%)\n",
			r.FFInstrs, r.Instrs, 100*float64(r.FFInstrs)/float64(r.Instrs))
	}
	fmt.Printf("exit: halted=%v code=%d\n", r.Halted, r.ExitCode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "timingsim:", err)
	os.Exit(1)
}
