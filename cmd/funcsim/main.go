// funcsim runs a program on a synthesized functional simulator: pick an
// ISA, an interface (buildset), and either a bundled kernel or an assembly
// file.
//
// Usage:
//
//	funcsim -isa alpha64 -buildset block_min -kernel sieve -n 2000
//	funcsim -isa arm32 -buildset one_all -asm prog.s
//	funcsim -isa ppc32 -kernel crc32 -interp        # interpreted ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/sysemu"
)

func main() {
	isaName := flag.String("isa", "alpha64", "instruction set (alpha64|arm32|ppc32)")
	buildset := flag.String("buildset", "one_all", "interface to synthesize")
	kernel := flag.String("kernel", "", "bundled kernel to run")
	n := flag.Int("n", 0, "kernel problem size (0 = kernel default)")
	asmFile := flag.String("asm", "", "assembly file to run instead of a kernel")
	interp := flag.Bool("interp", false, "disable translation (interpreted execution)")
	budget := flag.Uint64("budget", 1<<40, "instruction budget")
	flag.Parse()

	i, err := isa.Load(*isaName)
	if err != nil {
		fatal(err)
	}
	var prog *asm.Program
	switch {
	case *kernel != "":
		k := kernels.ByName(*kernel)
		if k == nil {
			fatal(fmt.Errorf("unknown kernel %q (have: %v)", *kernel, kernelNames()))
		}
		size := k.DefaultN
		if *n > 0 {
			size = *n
		}
		prog, err = kernels.BuildProgram(i, k.Build(size))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kernel %s (n=%d), expected checksum %#x\n", *kernel, size, k.Ref(size))
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatal(rerr)
		}
		a, aerr := asm.New(i)
		if aerr != nil {
			fatal(aerr)
		}
		prog, err = a.Assemble(*asmFile, string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -kernel or -asm"))
	}

	sim, err := core.Synthesize(i.Spec, *buildset, core.Options{NoTranslate: *interp})
	if err != nil {
		fatal(err)
	}
	for _, w := range sim.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}

	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	x := sim.NewExec(m)

	start := time.Now()
	x.Run(*budget)
	elapsed := time.Since(start)

	if out := emu.Stdout.String(); out != "" {
		fmt.Printf("--- program output ---\n%s----------------------\n", out)
	}
	fmt.Printf("halted=%v exit=%d instructions=%d\n", m.Halted, m.ExitCode, m.Instret)
	if sym, ok := prog.Symbols["result"]; ok {
		v, _ := m.Mem.Load(sym, 4)
		fmt.Printf("result checksum = %#x\n", v)
	}
	if m.Instret > 0 {
		ns := float64(elapsed.Nanoseconds()) / float64(m.Instret)
		fmt.Printf("speed: %.1f MIPS (%.1f ns/instr), %.1f work units/instr\n",
			1e3/ns, ns, float64(x.Work())/float64(m.Instret))
	}
}

func kernelNames() []string {
	var out []string
	for _, k := range kernels.All {
		out = append(out, k.Name)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "funcsim:", err)
	os.Exit(1)
}
