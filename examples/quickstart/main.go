// Quickstart: load a bundled ISA, assemble a small program with the
// spec-derived assembler, run it through the One/All interface, and print
// the per-instruction records a timing simulator would consume.
package main

import (
	"fmt"
	"log"

	"singlespec"
)

const program = `
.text
_start:
    addq r31, 5, r1
    addq r31, 7, r2
    addq r1, r2, r3
    ldah r4, ha(cell)(r31)
    lda  r4, lo(cell)(r4)
    stq  r3, 0(r4)
    ldq  r5, 0(r4)
    beq  r31, done           // always taken (r31 reads as zero)
    addq r31, 99, r6         // skipped
done:
    halt

.data
cell: .quad 0
`

func main() {
	i, err := singlespec.LoadISA("alpha64")
	if err != nil {
		log.Fatal(err)
	}
	a, err := singlespec.NewAssembler(i)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := a.Assemble("quickstart.s", program)
	if err != nil {
		log.Fatal(err)
	}

	// Derive the One-call-per-instruction, all-information interface from
	// the single specification.
	sim, err := singlespec.Synthesize(i.Spec, "one_all", singlespec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	m := i.Spec.NewMachine()
	prog.LoadInto(m)
	x := sim.NewExec(m)

	// Slots are resolved once against the interface's layout.
	eaSlot := sim.Layout.MustSlot("effective_addr")
	classSlot := sim.Layout.MustSlot("instr_class")
	destSlot := sim.Layout.MustSlot("dest_v")

	fmt.Println("pc        instruction            class  dest value  eff.addr")
	var rec singlespec.Record
	for n := 0; n < 100 && !m.Halted; n++ {
		x.ExecOne(&rec)
		word := rec.InstrBits
		fmt.Printf("%#06x  %-22s %5d  %10d  %#x\n",
			rec.PC, a.Disassemble(word, rec.PC), rec.Vals[classSlot],
			rec.Vals[destSlot], rec.Vals[eaSlot])
	}
	fmt.Printf("\nhalted with r3=%d r5=%d (want 12, 12)\n",
		m.MustSpace("r").Vals[3], m.MustSpace("r").Vals[5])
}
