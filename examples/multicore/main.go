// Multicore: two hardware contexts share one memory; context 1 spins on a
// lock word that context 0 releases after writing data — the paper's
// classic example of timing-dependent functional behaviour ("which thread
// acquires the lock depends upon the ordering of memory accesses", §II-B).
// The interleaving the driver chooses *is* the memory order, which is why
// functional-first organizations struggle with multithreaded workloads and
// timing-directed / speculative functional-first organizations exist.
package main

import (
	"fmt"
	"log"
	"sync"

	"singlespec"

	"singlespec/internal/mach"
)

// Context 0 computes a value, stores it, then releases the lock.
// Context 1 spins on the lock, then reads the value.
const program = `
.text
_start:                      // context 0
    addq r31, 21, r1
    addq r1, r1, r1          // r1 = 42
    ldah r10, ha(data)(r31)
    lda  r10, lo(data)(r10)
    stq  r1, 0(r10)          // publish data
    addq r31, 1, r2
    ldah r11, ha(lock)(r31)
    lda  r11, lo(lock)(r11)
    stq  r2, 0(r11)          // release lock
    halt

worker:                      // context 1
    ldah r11, ha(lock)(r31)
    lda  r11, lo(lock)(r11)
spin:
    ldq  r3, 0(r11)
    beq  r3, spin            // spin until the lock is released
    ldah r10, ha(data)(r31)
    lda  r10, lo(data)(r10)
    ldq  r4, 0(r10)          // guaranteed to see 42 after acquire
    halt

.data
lock: .quad 0
data: .quad 0
`

func main() {
	i, err := singlespec.LoadISA("alpha64")
	if err != nil {
		log.Fatal(err)
	}
	a, err := singlespec.NewAssembler(i)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := a.Assemble("spinlock.s", program)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := singlespec.Synthesize(i.Spec, "one_min", singlespec.Options{})
	if err != nil {
		log.Fatal(err)
	}

	run := func(slice0, slice1 int) (spins uint64) {
		// Two machines, one shared memory.
		shared := mach.NewMemory(i.Spec.Endian)
		m0 := mach.NewMachine(shared, i.Spec.SpaceDefs())
		m1 := mach.NewMachine(shared, i.Spec.SpaceDefs())
		m1.CtxID = 1
		prog.LoadInto(m0)
		prog.LoadInto(m1) // same image; redirect ctx 1 to its entry
		m1.PC = prog.Symbols["worker"]

		x0, x1 := sim.NewExec(m0), sim.NewExec(m1)
		var rec singlespec.Record
		for !m0.Halted || !m1.Halted {
			for k := 0; k < slice0 && !m0.Halted; k++ {
				x0.ExecOne(&rec)
			}
			for k := 0; k < slice1 && !m1.Halted; k++ {
				x1.ExecOne(&rec)
			}
		}
		if got := m1.MustSpace("r").Vals[4]; got != 42 {
			log.Fatalf("context 1 read %d before the data was published!", got)
		}
		return m1.Instret
	}

	// Each schedule is an independent simulated multicore, so the four
	// schedules run concurrently on host goroutines sharing the one
	// synthesized sim: its compiled spec and translation cache are
	// goroutine-safe, while each goroutine builds its own memory and
	// machines (the internal/mach concurrency contract). Results are
	// collected by schedule index so the output order never varies.
	schedules := [][2]int{{1, 1}, {1, 8}, {8, 1}, {2, 16}}
	spins := make([]uint64, len(schedules))
	var wg sync.WaitGroup
	for idx, sl := range schedules {
		wg.Add(1)
		go func(idx int, sl [2]int) {
			defer wg.Done()
			spins[idx] = run(sl[0], sl[1])
		}(idx, sl)
	}
	wg.Wait()
	fmt.Println("schedule (ctx0:ctx1 instructions per turn) -> ctx1 work until acquire")
	for idx, sl := range schedules {
		fmt.Printf("  %d:%-2d  ->  ctx1 executed %3d instructions (spin iterations vary with the interleaving)\n",
			sl[0], sl[1], spins[idx])
	}
	fmt.Println("\nFunctional behaviour (spin count) depends on the simulated memory")
	fmt.Println("order — exactly why a timing simulator must be able to control the")
	fmt.Println("functional simulator's progress through a high-semantic-detail")
	fmt.Println("interface when modeling multithreaded workloads.")
}
