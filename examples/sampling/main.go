// Sampling: SMARTS-style sampled simulation needs two interfaces from the
// same functional simulator — a detailed Step/All interface for the
// measurement windows and a minimal Block interface for fast-forwarding
// (the paper's §I motivating example for multiple levels of detail).
// This example compares sampled simulation time against fully-detailed
// simulation and shows the IPC estimate it produces.
package main

import (
	"fmt"
	"log"
	"time"

	"singlespec"

	"singlespec/internal/kernels"
)

func main() {
	i, err := singlespec.LoadISA("arm32")
	if err != nil {
		log.Fatal(err)
	}
	k := kernels.ByName("hashmix")
	prog, err := kernels.BuildProgram(i, k.Build(200000))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	full, err := singlespec.RunTimingDirected(i, prog, 1<<40)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	start = time.Now()
	sampled, err := singlespec.RunSampled(i, prog, 1<<40, 2000, 40000)
	if err != nil {
		log.Fatal(err)
	}
	sampledTime := time.Since(start)

	fullIPC := float64(full.Instrs) / float64(full.Cycles)
	// The sampled estimate extrapolates the detailed windows' IPC.
	sampledIPC := float64(sampled.OoO.Instrs) / float64(sampled.Cycles)

	fmt.Printf("workload: hashmix, %d instructions (arm32)\n\n", full.Instrs)
	fmt.Printf("fully detailed:  IPC %.3f   wall time %8v\n", fullIPC, fullTime.Round(time.Millisecond))
	fmt.Printf("sampled:         IPC %.3f   wall time %8v  (%.0f%% fast-forwarded, %.1fx faster)\n",
		sampledIPC, sampledTime.Round(time.Millisecond),
		100*float64(sampled.FFInstrs)/float64(sampled.Instrs),
		float64(fullTime)/float64(sampledTime))
	fmt.Printf("IPC estimate error: %+.1f%%\n", 100*(sampledIPC-fullIPC)/fullIPC)
}
