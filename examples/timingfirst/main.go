// Timing-first: the timing simulator performs functional behaviour itself
// — possibly incorrectly — and a minimal functional simulator checks each
// instruction and repairs the architectural state on mismatches (§II-D,
// TFsim-style). This example injects a recurring corruption into the
// "timing" side and shows the checker detecting and repairing every one,
// with the final result still correct.
package main

import (
	"fmt"
	"log"

	"singlespec"

	"singlespec/internal/kernels"
	"singlespec/internal/mach"
)

func main() {
	i, err := singlespec.LoadISA("ppc32")
	if err != nil {
		log.Fatal(err)
	}
	k := kernels.ByName("crc32")
	prog, err := kernels.BuildProgram(i, k.Build(k.DefaultN))
	if err != nil {
		log.Fatal(err)
	}

	// The injected bug: every 500th instruction, the "timing simulator"
	// corrupts a register — modeling the kind of datapath bug timing-first
	// organizations tolerate during bring-up.
	injected := 0
	bug := func(seq uint64, m *mach.Machine, rec *singlespec.Record) bool {
		if seq%500 != 499 {
			return false
		}
		m.MustSpace("r").Vals[15] ^= 0xff
		injected++
		return true
	}

	r, err := singlespec.RunTimingFirst(i, prog, 1<<40, bug)
	if err != nil {
		log.Fatal(err)
	}

	got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
	want := k.Ref(k.DefaultN)
	status := "CORRECT"
	if uint32(got) != want {
		status = fmt.Sprintf("WRONG (want %#x)", want)
	}
	fmt.Printf("instructions:        %d\n", r.Instrs)
	fmt.Printf("injected bugs:       %d\n", injected)
	fmt.Printf("mismatches repaired: %d\n", r.Mismatches)
	fmt.Printf("final checksum:      %#x  %s\n", got, status)
	fmt.Printf("exit code:           %d\n", r.ExitCode)
	fmt.Println("\nThe checker caught every corruption the instant it became")
	fmt.Println("architecturally visible — the paper's \"nearly-immediate")
	fmt.Println("notification when an error occurs\".")
}
