// Tailoring: the paper's headline workflow (§V). A timing simulator needs
// only effective addresses from the functional simulator (say, a cache-only
// model). Writing that tailored interface is about a dozen lines of
// buildset description; synthesis derives the simulator, and the tailored
// interface runs several times faster than the everything-visible one.
package main

import (
	"fmt"
	"log"
	"time"

	"singlespec"

	"singlespec/internal/kernels"
)

// Two interfaces appended to the unmodified alpha64 specification: the
// everything-visible debugging interface (the paper's recommended starting
// point, §IV-B) and the tailored cache-model interface. Each is ~a dozen
// lines — compare Table I's "lines per experimental buildset".
const everythingBuildset = `
buildset everything {
  visibility all;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute,
                         memory, writeback, exception;
}
`

const tailoredBuildset = `
buildset cache_only {
  visibility min show effective_addr, instr_class, mem_size;
  mode block;
  entrypoint run = translate_pc, fetch, decode, opread, execute,
                   memory, writeback, exception;
}
`

func main() {
	// Re-parse the single specification with the new interface appended.
	src := singlespec.ISASource("alpha64") + everythingBuildset + tailoredBuildset
	spec, err := singlespec.ParseSpec("alpha64+cache_only.lis", src)
	if err != nil {
		log.Fatal(err)
	}

	// Build a workload once.
	i, _ := singlespec.LoadISA("alpha64")
	k := kernels.ByName("sieve")
	prog, err := kernels.BuildProgram(i, k.Build(20000))
	if err != nil {
		log.Fatal(err)
	}

	measure := func(buildset string) (mips float64, visible int) {
		sim, err := singlespec.Synthesize(spec, buildset, singlespec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m := spec.NewMachine()
		emu := singlespec.NewOSEmulator(i)
		emu.Install(m)
		prog.LoadInto(m)
		x := sim.NewExec(m)
		x.Run(1 << 40) // warmup + validate
		if !m.Halted || m.ExitCode != 0 {
			log.Fatalf("%s: bad run (halted=%v exit=%d)", buildset, m.Halted, m.ExitCode)
		}
		// Timed re-runs over warm translation caches.
		var instrs uint64
		var elapsed time.Duration
		for elapsed < 300*time.Millisecond {
			for _, sp := range m.Spaces {
				for j := range sp.Vals {
					sp.Vals[j] = 0
				}
			}
			emu.Install(m)
			m.Halted, m.Instret = false, 0
			prog.ReloadData(m)
			start := time.Now()
			x.Run(1 << 40)
			elapsed += time.Since(start)
			instrs += m.Instret
		}
		ns := float64(elapsed.Nanoseconds()) / float64(instrs)
		return 1e3 / ns, sim.Layout.NumSlots()
	}

	fullMIPS, fullVis := measure("everything")
	tailMIPS, tailVis := measure("cache_only")

	fmt.Println("interface     visible fields   speed")
	fmt.Printf("everything    %14d   %6.1f MIPS  (everything visible, call per instruction)\n", fullVis, fullMIPS)
	fmt.Printf("cache_only    %14d   %6.1f MIPS  (tailored: addresses only, block calls)\n", tailVis, tailMIPS)
	fmt.Printf("\n%d lines of interface description bought a %.1fx speedup.\n",
		len(nonBlank(tailoredBuildset)), tailMIPS/fullMIPS)
}

func nonBlank(s string) []string {
	var out []string
	line := ""
	for _, c := range s {
		if c == '\n' {
			if len(line) > 0 {
				out = append(out, line)
			}
			line = ""
			continue
		}
		if c != ' ' && c != '\t' {
			line += string(c)
		}
	}
	return out
}
