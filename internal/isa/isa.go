// Package isa embeds the three LIS instruction-set descriptions (alpha64,
// arm32, ppc32) and derives from each the paper's twelve standard
// interfaces: {Block, One, Step} semantic detail × {Min, Decode, All}
// informational detail × speculation on/off (§V-B).
package isa

import (
	_ "embed"
	"fmt"
	"strings"
	"sync"

	"singlespec/internal/lis"
)

//go:embed alpha.lis
var alphaSrc string

//go:embed arm.lis
var armSrc string

//go:embed ppc.lis
var ppcSrc string

// Convention carries the per-ISA ABI knowledge that is not part of the LIS
// description: syscall argument registers, the stack pointer, and the
// program memory layout used by the assembler and loader.
type Convention struct {
	// SyscallNum is the register holding the system-call number; Args the
	// argument registers; Ret the result register.
	SyscallNum int
	Args       []int
	Ret        int
	// Stack is the stack-pointer register (initialized to StackTop).
	Stack int
	// Link is the link register used by calls, or -1 when the link lives
	// in a special register space (ppc32's LR).
	Link int
	// LinkSpace/LinkIdx locate the link register when Link is -1.
	LinkSpace string
	LinkIdx   int

	CodeBase uint64
	DataBase uint64
	HeapBase uint64
	StackTop uint64
}

// ISA is one loaded instruction set: its resolved spec plus conventions.
type ISA struct {
	Name string
	Spec *lis.Spec
	Conv Convention
	// DescLines is the size of the ISA description (Table I), excluding
	// comments and blanks.
	DescLines int
	// BuildsetLines is the generated buildset description size.
	BuildsetLines int
}

// StdBuildsets lists the paper's twelve interfaces in Table II order.
var StdBuildsets = []string{
	"block_min",
	"block_decode", "block_decode_spec",
	"block_all", "block_all_spec",
	"one_min",
	"one_decode", "one_decode_spec",
	"one_all", "one_all_spec",
	"step_all", "step_all_spec",
}

// decodeFields lists, per ISA, the fields visible at the Decode level of
// informational detail: operand identifiers, effective addresses, and
// branch resolution (§V-B).
var decodeFields = map[string][]string{
	"alpha64": {"opcode", "instr_class", "mem_size", "effective_addr", "lit_val",
		"src1_idx", "src2_idx", "src3_idx", "dest1_idx", "branch_taken", "branch_target"},
	"arm32": {"opcode", "instr_class", "mem_size", "effective_addr",
		"src1_idx", "src2_idx", "src3_idx", "dest1_idx", "branch_taken", "branch_target"},
	"ppc32": {"opcode", "instr_class", "mem_size", "effective_addr",
		"src1_idx", "src2_idx", "dest1_idx", "dest2_idx", "spec_s_idx", "spec_d_idx",
		"branch_taken", "branch_target"},
}

var sources = map[string]string{
	"alpha64": alphaSrc,
	"arm32":   armSrc,
	"ppc32":   ppcSrc,
}

var conventions = map[string]Convention{
	"alpha64": {
		SyscallNum: 0, Args: []int{16, 17, 18, 19}, Ret: 0,
		Stack: 30, Link: 26,
		CodeBase: 0x10000, DataBase: 0x100000, HeapBase: 0x200000, StackTop: 0x7ff000,
	},
	"arm32": {
		SyscallNum: 7, Args: []int{0, 1, 2, 3}, Ret: 0,
		Stack: 13, Link: 14,
		CodeBase: 0x10000, DataBase: 0x100000, HeapBase: 0x200000, StackTop: 0x7ff000,
	},
	"ppc32": {
		SyscallNum: 0, Args: []int{3, 4, 5, 6}, Ret: 3,
		Stack: 1, Link: -1, LinkSpace: "s", LinkIdx: 0,
		CodeBase: 0x10000, DataBase: 0x100000, HeapBase: 0x200000, StackTop: 0x7ff000,
	},
}

// Names lists the available instruction sets in canonical order.
func Names() []string { return []string{"alpha64", "arm32", "ppc32"} }

// Source returns the raw LIS description of a bundled ISA (without the
// generated standard buildsets), so users can extend it with their own
// interface descriptions — the paper's tailoring workflow.
func Source(name string) string { return sources[name] }

// Conv returns the ABI convention for a bundled ISA name.
func Conv(name string) Convention { return conventions[name] }

// The load cache uses a per-name once so that concurrent Load calls for
// different ISAs parse in parallel, concurrent calls for the same ISA parse
// exactly once, and no caller ever holds a lock across a parse. The
// resulting *ISA (including its Spec) is read-only after Load returns and
// safe to share across goroutines.
var (
	cacheMu sync.Mutex
	cache   = map[string]*isaEntry{}
)

type isaEntry struct {
	once sync.Once
	isa  *ISA
	err  error
}

// Load parses an embedded ISA description together with its twelve
// standard buildsets and returns the resolved ISA. Results are cached;
// Load is safe for concurrent use.
func Load(name string) (*ISA, error) {
	cacheMu.Lock()
	e, ok := cache[name]
	if !ok {
		e = &isaEntry{}
		cache[name] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.isa, e.err = load(name) })
	return e.isa, e.err
}

func load(name string) (*ISA, error) {
	src, ok := sources[name]
	if !ok {
		return nil, fmt.Errorf("isa: unknown instruction set %q (have %v)", name, Names())
	}
	bs := StandardBuildsetText(decodeFields[name])
	spec, err := lis.Parse(name+".lis", src+"\n"+bs)
	if err != nil {
		return nil, fmt.Errorf("isa %s: %w", name, err)
	}
	return &ISA{
		Name: name, Spec: spec, Conv: conventions[name],
		DescLines:     countCodeLines(src),
		BuildsetLines: countCodeLines(bs),
	}, nil
}

// Load never panics: unknown names and description errors come back as
// returned errors. Tests use isatest.Load for must-semantics.

// StandardBuildsetText generates the paper's twelve interface descriptions.
// A new interface is "about a dozen lines" (§V-A, Table I): this function
// is the direct analogue of writing those lines.
func StandardBuildsetText(decode []string) string {
	const allSteps = "translate_pc, fetch, decode, opread, execute, memory, writeback, exception"
	var b strings.Builder
	one := func(name, vis string, mode, spec bool) {
		fmt.Fprintf(&b, "buildset %s {\n", name)
		fmt.Fprintf(&b, "  visibility %s;\n", vis)
		if mode {
			fmt.Fprintf(&b, "  mode block;\n")
		}
		if spec {
			fmt.Fprintf(&b, "  speculation on;\n")
		}
		fmt.Fprintf(&b, "  entrypoint do_in_one = %s;\n", allSteps)
		fmt.Fprintf(&b, "}\n")
	}
	step := func(name string, spec bool) {
		fmt.Fprintf(&b, "buildset %s {\n", name)
		fmt.Fprintf(&b, "  visibility all;\n")
		if spec {
			fmt.Fprintf(&b, "  speculation on;\n")
		}
		fmt.Fprintf(&b, "  entrypoint ep_fetch = translate_pc, fetch;\n")
		fmt.Fprintf(&b, "  entrypoint ep_decode = decode;\n")
		fmt.Fprintf(&b, "  entrypoint ep_opread = opread;\n")
		fmt.Fprintf(&b, "  entrypoint ep_execute = execute;\n")
		fmt.Fprintf(&b, "  entrypoint ep_memory = memory;\n")
		fmt.Fprintf(&b, "  entrypoint ep_writeback = writeback;\n")
		fmt.Fprintf(&b, "  entrypoint ep_exception = exception;\n")
		fmt.Fprintf(&b, "}\n")
	}
	dec := "min show " + strings.Join(decode, ", ")
	one("block_min", "min", true, false)
	one("block_decode", dec, true, false)
	one("block_decode_spec", dec, true, true)
	one("block_all", "all", true, false)
	one("block_all_spec", "all", true, true)
	one("one_min", "min", false, false)
	one("one_decode", dec, false, false)
	one("one_decode_spec", dec, false, true)
	one("one_all", "all", false, false)
	one("one_all_spec", "all", false, true)
	step("step_all", false)
	step("step_all_spec", true)
	return b.String()
}

// countCodeLines counts non-blank, non-comment-only lines (the Table I
// metric: "Lines of LIS code (excl. comments and blank lines)").
func countCodeLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}
