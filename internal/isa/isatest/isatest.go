// Package isatest provides the test-only must-load helper for the bundled
// instruction sets. It exists so that the isa package itself carries no
// panicking load path: production code handles isa.Load errors, tests fail
// through the testing API.
package isatest

import (
	"testing"

	"singlespec/internal/isa"
)

// Load returns the named bundled ISA, failing the test on error.
func Load(tb testing.TB, name string) *isa.ISA {
	tb.Helper()
	i, err := isa.Load(name)
	if err != nil {
		tb.Fatal(err)
	}
	return i
}
