package isa_test

import (
	"strings"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
	"singlespec/internal/sysemu"
)

func TestAllISAsLoadWithAllBuildsets(t *testing.T) {
	for _, name := range isa.Names() {
		i, err := isa.Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(i.Spec.Buildsets) != len(isa.StdBuildsets) {
			t.Errorf("%s: %d buildsets, want %d", name, len(i.Spec.Buildsets), len(isa.StdBuildsets))
		}
		for _, bs := range isa.StdBuildsets {
			sim, err := core.Synthesize(i.Spec, bs, core.Options{})
			if err != nil {
				t.Errorf("%s/%s: %v", name, bs, err)
				continue
			}
			if len(sim.Warnings) > 0 {
				t.Errorf("%s/%s: warnings: %v", name, bs, sim.Warnings)
			}
		}
	}
}

func TestTableIShape(t *testing.T) {
	// The description sizes should be in the right ballpark and every
	// buildset should cost ~a dozen lines or less (the paper's headline
	// development-effort claim).
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		if i.DescLines < 150 {
			t.Errorf("%s: suspiciously small description (%d lines)", name, i.DescLines)
		}
		if len(i.Spec.Instrs) < 40 {
			t.Errorf("%s: only %d instructions", name, len(i.Spec.Instrs))
		}
		for _, bs := range i.Spec.Buildsets {
			if bs.SrcLines > 12 {
				t.Errorf("%s/%s: %d lines (a new interface should be ~a dozen lines)",
					name, bs.Name, bs.SrcLines)
			}
		}
	}
}

func TestDecodeFieldsExist(t *testing.T) {
	// Every field named in the Decode visibility list must exist, so the
	// decode-level interfaces really carry what timing models expect.
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		sim, err := core.Synthesize(i.Spec, "one_decode", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []string{"instr_class", "effective_addr", "branch_taken", "branch_target", "src1_idx", "dest1_idx"} {
			if _, ok := sim.Layout.Slot(f); !ok {
				t.Errorf("%s: decode interface lacks %s", name, f)
			}
		}
	}
}

func TestUnknownISA(t *testing.T) {
	if _, err := isa.Load("mips"); err == nil || !strings.Contains(err.Error(), "unknown instruction set") {
		t.Errorf("err = %v", err)
	}
}

func TestSourceRoundTrip(t *testing.T) {
	// The exported raw source plus generated buildsets must parse to the
	// same spec the loader produced (the tailoring workflow's foundation).
	src := isa.Source("alpha64")
	if !strings.Contains(src, "isa \"alpha64\"") {
		t.Fatal("Source returned wrong text")
	}
	if isa.Source("nope") != "" {
		t.Error("unknown source should be empty")
	}
}

// The paper's §V-D validation procedure: run every benchmark calling the
// interfaces on a rotating basis — each dynamic instruction (or block) uses
// a different interface than the previous one.
func TestRotatingInterfaceValidationAllISAs(t *testing.T) {
	for _, name := range isa.Names() {
		t.Run(name, func(t *testing.T) {
			i := isatest.Load(t, name)
			k := kernels.ByName("crc32")
			prog, err := kernels.BuildProgram(i, k.Build(64))
			if err != nil {
				t.Fatal(err)
			}
			m := i.Spec.NewMachine()
			emu := sysemu.New(i.Conv)
			emu.Install(m)
			prog.LoadInto(m)

			type iface struct {
				x    *core.Exec
				mode string
			}
			var ifaces []iface
			for _, bs := range isa.StdBuildsets {
				sim, err := core.Synthesize(i.Spec, bs, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				mode := "one"
				if strings.HasPrefix(bs, "block") {
					mode = "block"
				} else if strings.HasPrefix(bs, "step") {
					mode = "step"
				}
				ifaces = append(ifaces, iface{x: sim.NewExec(m), mode: mode})
			}
			var rec core.Record
			var batch core.Batch
			for n := 0; !m.Halted && n < 1_000_000; n++ {
				f := ifaces[n%len(ifaces)]
				m.JournalOn = f.x.Sim().BS.Spec
				switch f.mode {
				case "block":
					f.x.ExecBlock(&batch)
				case "step":
					f.x.ExecOneStepwise(&rec)
				default:
					f.x.ExecOne(&rec)
				}
				m.Journal.Reset()
			}
			if !m.Halted || m.ExitCode != 0 {
				t.Fatalf("rotating run failed: halted=%v exit=%d", m.Halted, m.ExitCode)
			}
			got, _ := m.Mem.Load(prog.Symbols["result"], 4)
			if uint32(got) != k.Ref(64) {
				t.Errorf("rotating checksum = %#x, want %#x", got, k.Ref(64))
			}
		})
	}
}

func TestConventionsSane(t *testing.T) {
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		c := i.Conv
		r0 := i.Spec.Spaces[0]
		for _, reg := range append([]int{c.SyscallNum, c.Ret, c.Stack}, c.Args...) {
			if reg < 0 || reg >= r0.Count {
				t.Errorf("%s: convention register %d out of range", name, reg)
			}
		}
		if c.Link >= 0 && c.Link >= r0.Count {
			t.Errorf("%s: link register out of range", name)
		}
		if c.Link < 0 && i.Spec.Space(c.LinkSpace) == nil {
			t.Errorf("%s: link space %q missing", name, c.LinkSpace)
		}
		if c.StackTop <= c.HeapBase || c.HeapBase <= c.DataBase || c.DataBase <= c.CodeBase {
			t.Errorf("%s: memory layout out of order", name)
		}
	}
}

// Decode is a proper inverse of encoding: for every instruction, any word
// matching its mask/value pattern must decode to exactly that instruction
// (sema guarantees pairwise non-overlap; this exercises the decoder's
// bucketing on the real ISAs with randomized operand bits).
func TestDecoderRoundTripProperty(t *testing.T) {
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_ = sim
		for _, in := range i.Spec.Instrs {
			for k := 0; k < 32; k++ {
				word := uint32(in.Value) | uint32(next())&^uint32(in.Mask)
				got := -1
				for _, cand := range i.Spec.Instrs {
					if uint64(word)&cand.Mask == cand.Value {
						got = cand.ID
						break
					}
				}
				if got != in.ID {
					t.Fatalf("%s: word %#x for %s matched instruction %d", name, word, in.Name, got)
				}
			}
		}
	}
}
