package expt

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteBenchJSON(t *testing.T) {
	cells := []Cell{
		{ISA: "toy", Buildset: "block_min", MIPS: 42.5, NsPerInstr: 23.5,
			WorkPerInstr: 9, Instret: 1000, WorkUnits: 9000},
		{ISA: "toy", Buildset: "one_all",
			Err: &CellError{Kind: CellPanic, Err: errors.New("boom")}},
	}
	cfg := Config{Scale: 3, Metric: MetricWork}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteBenchJSON(path, cfg, cells); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("bench json missing trailing newline")
	}
	var got BenchOut
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema %q, want %q", got.Schema, BenchSchema)
	}
	if got.Metric != "work" || got.Scale != 3 {
		t.Errorf("metric/scale = %q/%d, want work/3", got.Metric, got.Scale)
	}
	if got.Go == "" {
		t.Error("go provenance missing")
	}
	if len(got.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(got.Cells))
	}
	c0 := got.Cells[0]
	if c0.ISA != "toy" || c0.Buildset != "block_min" || c0.WorkPerInstr != 9 ||
		c0.Instret != 1000 || c0.WorkUnits != 9000 || c0.MIPS != 42.5 || c0.Error != "" {
		t.Errorf("cell 0 mismatch: %+v", c0)
	}
	if got.Cells[1].Error == "" {
		t.Error("errored cell lost its error string")
	}
	// The schema contract: the keys CI's comparison script reads must be
	// present in the raw JSON under exactly these names.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	cell0 := raw["cells"].([]any)[0].(map[string]any)
	for _, key := range []string{"isa", "buildset", "mips", "ns_per_instr",
		"work_per_instr", "instret", "work_units"} {
		if _, ok := cell0[key]; !ok {
			t.Errorf("schema key %q missing from cell", key)
		}
	}
}
