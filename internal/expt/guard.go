package expt

// Crash containment for the sweep engine: every cell measurement runs
// guarded, so a panic, hang, or runaway program in one {ISA × interface}
// cell is converted into a typed *CellError on that cell while every other
// cell's result stays intact. The engine then renders the full table with
// the failing cells marked instead of aborting the sweep.

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// CellErrorKind classifies why a sweep cell failed.
type CellErrorKind int

const (
	// CellFailed is a measurement error from the cell itself (synthesis
	// failure, nonzero exit, stuck machine). Deterministic: not retried.
	CellFailed CellErrorKind = iota
	// CellPanic is a recovered panic in the cell's worker.
	CellPanic
	// CellTimeout is a wall-clock watchdog expiry.
	CellTimeout
	// CellBudget is an exceeded per-cell instruction budget. Deterministic:
	// not retried.
	CellBudget
)

func (k CellErrorKind) String() string {
	switch k {
	case CellPanic:
		return "panic"
	case CellTimeout:
		return "timeout"
	case CellBudget:
		return "budget"
	default:
		return "failed"
	}
}

// CellError reports the failure of one sweep cell. It satisfies error and
// unwraps to the underlying cause, so errors.Is sees through it.
type CellError struct {
	ISA      string
	Buildset string
	Kind     CellErrorKind
	Err      error
	// Stack is the recovered goroutine stack for CellPanic, nil otherwise.
	Stack []byte
	// Attempts counts how many times the cell was tried (at most 2: the
	// watchdog grants transient kinds one bounded retry).
	Attempts int
}

func (e *CellError) Error() string {
	return fmt.Sprintf("expt: cell %s/%s %s after %d attempt(s): %v",
		e.ISA, e.Buildset, e.Kind, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Sentinel causes the limited runner reports; runCellOnce maps them to
// CellError kinds.
var (
	errDeadline = errors.New("cell deadline exceeded")
	errBudget   = errors.New("cell instruction budget exceeded")
)

// Limits bounds one cell measurement. The zero value means unbounded.
type Limits struct {
	// MaxInstr caps simulated instructions (cumulative across the cell's
	// runs); 0 means unlimited.
	MaxInstr uint64
	// Deadline is the wall-clock cutoff; the zero time means none.
	Deadline time.Time
}

// runChunk is the instruction granularity between watchdog checks. Go
// cannot preempt a runaway simulation loop from outside, so the watchdog is
// cooperative: RunLimited executes at most this many instructions per
// engine call and checks its limits in between. Large enough that the
// checks vanish in the noise, small enough that a hung cell is caught
// within a fraction of a second.
const runChunk = 1 << 20

// RunLimited executes the program once, like Run, but checks lim between
// execution chunks: a deadline or instruction-budget violation surfaces as
// an error instead of a hang. A machine that stops retiring instructions
// without halting (a fault loop) is also reported rather than spun on.
func (r *Runner) RunLimited(lim Limits) (instrs, work uint64, err error) {
	if r.runs > 0 {
		r.reset()
	}
	r.runs++
	for !r.m.Halted {
		chunk := uint64(runChunk)
		if lim.MaxInstr > 0 {
			if r.m.Instret >= lim.MaxInstr {
				return 0, 0, fmt.Errorf("expt: %s/%s: %w after %d instructions",
					r.i.Name, r.sim.BS.Name, errBudget, r.m.Instret)
			}
			if rem := lim.MaxInstr - r.m.Instret; rem < chunk {
				chunk = rem
			}
		}
		n := r.x.Run(chunk)
		r.checks++
		if n == 0 && !r.m.Halted {
			return 0, 0, fmt.Errorf("expt: %s/%s stuck at pc %#x (no instructions retiring)",
				r.i.Name, r.sim.BS.Name, r.m.PC)
		}
		if !lim.Deadline.IsZero() && !r.m.Halted && time.Now().After(lim.Deadline) {
			return 0, 0, fmt.Errorf("expt: %s/%s: %w", r.i.Name, r.sim.BS.Name, errDeadline)
		}
	}
	if r.m.ExitCode != 0 {
		return 0, 0, fmt.Errorf("expt: %s/%s exited %d", r.i.Name, r.sim.BS.Name, r.m.ExitCode)
	}
	w := r.x.Work()
	dw := w - r.prevW
	r.prevW = w
	return r.m.Instret, dw, nil
}

// runCellGuarded measures one cell under cfg's watchdog, converting panics
// and limit violations into a typed *CellError instead of letting them
// escape the worker. Transient kinds (panic, timeout) get exactly one
// retry; deterministic failures (measurement error, budget) are reported
// immediately since retrying reproduces them.
func runCellGuarded(j cellJob, cfg Config, minDur time.Duration) Cell {
	start := time.Now()
	var last *CellError
	for attempt := 1; attempt <= 2; attempt++ {
		c, cerr := runCellOnce(j, cfg, minDur, attempt)
		if cerr == nil {
			c.Attempts = attempt
			c.Wall = time.Since(start)
			return c
		}
		cerr.Attempts = attempt
		last = cerr
		if cerr.Kind == CellFailed || cerr.Kind == CellBudget {
			break
		}
	}
	return Cell{ISA: j.progs.ISA.Name, Buildset: j.buildset, Err: last,
		Attempts: last.Attempts, Wall: time.Since(start)}
}

// runCellOnce is one guarded measurement attempt.
func runCellOnce(j cellJob, cfg Config, minDur time.Duration, attempt int) (c Cell, cerr *CellError) {
	defer func() {
		if r := recover(); r != nil {
			cerr = &CellError{
				ISA: j.progs.ISA.Name, Buildset: j.buildset, Kind: CellPanic,
				Err:   fmt.Errorf("panic: %v", r),
				Stack: debug.Stack(),
			}
		}
	}()
	if cfg.testHook != nil {
		cfg.testHook(j.progs.ISA.Name, j.buildset, attempt)
	}
	lim := Limits{MaxInstr: cfg.MaxCellInstr}
	if cfg.CellTimeout > 0 {
		lim.Deadline = time.Now().Add(cfg.CellTimeout)
	}
	cell, err := measureCell(j.progs, j.buildset, j.opts, minDur, lim, cfg.Metric == MetricWork)
	if err != nil {
		kind := CellFailed
		switch {
		case errors.Is(err, errDeadline):
			kind = CellTimeout
		case errors.Is(err, errBudget):
			kind = CellBudget
		}
		return Cell{}, &CellError{
			ISA: j.progs.ISA.Name, Buildset: j.buildset, Kind: kind, Err: err,
		}
	}
	return cell, nil
}

// CellErrors collects the errors of failed cells in cell order, for callers
// that rendered a degraded table and want to report why.
func CellErrors(cells []Cell) []*CellError {
	var out []*CellError
	for _, c := range cells {
		if c.Err != nil {
			out = append(out, c.Err)
		}
	}
	return out
}

// errMark is the marker rendered into a table for a failed cell.
func errMark(e *CellError) string { return "ERR:" + e.Kind.String() }
