package expt

// Crash containment for the sweep engine: every cell measurement runs
// guarded, so a panic, hang, or runaway program in one {ISA × interface}
// cell is converted into a typed *CellError on that cell while every other
// cell's result stays intact. The engine then renders the full table with
// the failing cells marked instead of aborting the sweep.

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"singlespec/internal/aot"
	"singlespec/internal/checkpoint"
	"singlespec/internal/sysemu"
)

// CellErrorKind classifies why a sweep cell failed.
type CellErrorKind int

const (
	// CellFailed is a measurement error from the cell itself (synthesis
	// failure, nonzero exit, stuck machine). Deterministic: not retried.
	CellFailed CellErrorKind = iota
	// CellPanic is a recovered panic in the cell's worker.
	CellPanic
	// CellTimeout is a wall-clock watchdog expiry.
	CellTimeout
	// CellBudget is an exceeded per-cell instruction budget. Deterministic:
	// not retried.
	CellBudget
	// CellInterrupted is a cell cut short (or never started) because the
	// sweep received a shutdown signal. Not retried in this process; a
	// resumed run computes it fresh.
	CellInterrupted
	// CellLost is a fabric cell whose lease expired (or whose worker died)
	// on every worker it was tried on, up to the coordinator's per-cell
	// retry bound. Transient by nature: a rerun computes it fresh.
	CellLost
)

func (k CellErrorKind) String() string {
	switch k {
	case CellPanic:
		return "panic"
	case CellTimeout:
		return "timeout"
	case CellBudget:
		return "budget"
	case CellInterrupted:
		return "interrupted"
	case CellLost:
		return "lost"
	default:
		return "failed"
	}
}

// CellError reports the failure of one sweep cell. It satisfies error and
// unwraps to the underlying cause, so errors.Is sees through it.
type CellError struct {
	ISA      string
	Buildset string
	Kind     CellErrorKind
	Err      error
	// Stack is the recovered goroutine stack for CellPanic, nil otherwise.
	Stack []byte
	// Attempts counts how many times the cell was tried (at most 2: the
	// watchdog grants transient kinds one bounded retry).
	Attempts int
}

func (e *CellError) Error() string {
	return fmt.Sprintf("expt: cell %s/%s %s after %d attempt(s): %v",
		e.ISA, e.Buildset, e.Kind, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Sentinel causes the limited runner reports; runCellOnce maps them to
// CellError kinds.
var (
	errDeadline    = errors.New("cell deadline exceeded")
	errBudget      = errors.New("cell instruction budget exceeded")
	errInterrupted = errors.New("sweep interrupted")
)

// Limits bounds one cell measurement. The zero value means unbounded.
type Limits struct {
	// MaxInstr caps simulated instructions (cumulative across the cell's
	// runs); 0 means unlimited.
	MaxInstr uint64
	// Deadline is the wall-clock cutoff; the zero time means none.
	Deadline time.Time

	// interrupt, when non-nil, aborts the run (as errInterrupted) at the
	// next chunk boundary once the channel is closed. Internal wiring from
	// Config.Interrupt.
	interrupt <-chan struct{}
	// ckptEvery > 0 captures an in-cell resume checkpoint roughly every
	// that many retired instructions (at chunk boundaries) and hands it to
	// ckptSink. Internal wiring from Config.CkptEvery.
	ckptEvery uint64
	ckptSink  func(rc *runCheckpoint)
	// chunkHook, when non-nil, runs at every chunk boundary (after any
	// checkpoint capture). Tests inject mid-run panics through it.
	chunkHook func(r *Runner)
}

// runChunk is the instruction granularity between watchdog checks. Go
// cannot preempt a runaway simulation loop from outside, so the watchdog is
// cooperative: RunLimited executes at most this many instructions per
// engine call and checks its limits in between. Large enough that the
// checks vanish in the noise, small enough that a hung cell is caught
// within a fraction of a second.
const runChunk = 1 << 20

// RunLimited executes the program once, like Run, but checks lim between
// execution chunks: a deadline or instruction-budget violation surfaces as
// an error instead of a hang. A machine that stops retiring instructions
// without halting (a fault loop) is also reported rather than spun on.
//
// When the runner was primed by restoreFrom, the first RunLimited call
// continues the restored in-flight run instead of resetting: the machine
// already holds the mid-run state, so the call returns that run's full
// totals (restored portion included) exactly as the uninterrupted run
// would have.
func (r *Runner) RunLimited(lim Limits) (instrs, work uint64, err error) {
	if r.resumed {
		r.resumed = false
	} else {
		if r.runs > 0 {
			r.reset()
		}
		r.runs++
	}
	nextCkpt := uint64(0)
	if lim.ckptEvery > 0 {
		nextCkpt = r.m.Instret + lim.ckptEvery
	}
	for !r.m.Halted {
		if lim.interrupt != nil {
			select {
			case <-lim.interrupt:
				return 0, 0, fmt.Errorf("expt: %s/%s: %w", r.i.Name, r.sim.BS.Name, errInterrupted)
			default:
			}
		}
		chunk := uint64(runChunk)
		if lim.ckptEvery > 0 && lim.ckptEvery < chunk {
			// The checkpoint cadence needs chunk boundaries at least that
			// fine; the watchdog check is cheap at this granularity too.
			chunk = lim.ckptEvery
		}
		if lim.MaxInstr > 0 {
			if r.m.Instret >= lim.MaxInstr {
				return 0, 0, fmt.Errorf("expt: %s/%s: %w after %d instructions",
					r.i.Name, r.sim.BS.Name, errBudget, r.m.Instret)
			}
			if rem := lim.MaxInstr - r.m.Instret; rem < chunk {
				chunk = rem
			}
		}
		n := r.x.Run(chunk)
		r.checks++
		if n == 0 && !r.m.Halted {
			return 0, 0, fmt.Errorf("expt: %s/%s stuck at pc %#x (no instructions retiring)",
				r.i.Name, r.sim.BS.Name, r.m.PC)
		}
		if !lim.Deadline.IsZero() && !r.m.Halted && time.Now().After(lim.Deadline) {
			return 0, 0, fmt.Errorf("expt: %s/%s: %w", r.i.Name, r.sim.BS.Name, errDeadline)
		}
		if nextCkpt > 0 && lim.ckptSink != nil && r.m.Instret >= nextCkpt && !r.m.Halted {
			nextCkpt = r.m.Instret + lim.ckptEvery
			lim.ckptSink(r.captureCheckpoint())
		}
		if lim.chunkHook != nil {
			lim.chunkHook(r)
		}
	}
	if r.m.ExitCode != 0 {
		return 0, 0, fmt.Errorf("expt: %s/%s exited %d", r.i.Name, r.sim.BS.Name, r.m.ExitCode)
	}
	w := r.x.Work()
	dw := w - r.prevW + r.resumeWork
	r.prevW = w
	r.resumeWork = 0
	return r.m.Instret, dw, nil
}

// runCheckpoint is an in-cell resume point: the complete mid-run state of
// a Runner (machine, OS emulation, run bookkeeping), captured at a chunk
// boundary. The guarded retry path restores from it so a transient failure
// re-executes only the instructions since the last checkpoint instead of
// the whole cell — and the serialized form goes through the full
// checkpoint binary format, so every retry also validates it end to end.
type runCheckpoint struct {
	// runs is the Runner.runs value of the in-flight run (1 = warmup).
	runs uint64
	// checks is the cooperative-watchdog check count at capture.
	checks uint64
	// workThisRun is the work the in-flight run had accumulated by the
	// capture point; credited back on restore so the completed run reports
	// its full work total.
	workThisRun uint64
	state       *checkpoint.State
	emu         sysemu.State
}

// captureCheckpoint snapshots the runner mid-run.
func (r *Runner) captureCheckpoint() *runCheckpoint {
	return &runCheckpoint{
		runs:        uint64(r.runs),
		checks:      r.checks,
		workThisRun: r.x.Work() - r.prevW + r.resumeWork,
		state:       checkpoint.Capture(r.m),
		emu:         r.emu.State(),
	}
}

// restoreFrom primes a fresh runner with a mid-run checkpoint: the next
// RunLimited call continues the restored run. The translation caches start
// cold (they are derived state, rebuilt on demand); the architectural
// outcome and the run's instruction/work totals are exact.
func (r *Runner) restoreFrom(rc *runCheckpoint) error {
	if err := checkpoint.Apply(rc.state, r.m); err != nil {
		return err
	}
	r.emu.SetState(rc.emu)
	r.x.FlushLocal()
	r.runs = int(rc.runs)
	r.checks = rc.checks
	r.prevW = r.x.Work()
	r.resumeWork = rc.workThisRun
	r.resumed = true
	return nil
}

// ckptMeta is the runner bookkeeping serialized alongside the machine
// state when a runCheckpoint goes through the binary format.
type ckptMeta struct {
	Runs        uint64       `json:"runs"`
	Checks      uint64       `json:"checks"`
	WorkThisRun uint64       `json:"work_this_run"`
	Emu         sysemu.State `json:"emu"`
}

// encode serializes the checkpoint through the versioned binary format
// (the runner bookkeeping rides in the meta section).
func (rc *runCheckpoint) encode() ([]byte, error) {
	meta, err := json.Marshal(ckptMeta{
		Runs: rc.runs, Checks: rc.checks, WorkThisRun: rc.workThisRun, Emu: rc.emu,
	})
	if err != nil {
		return nil, err
	}
	st := *rc.state
	st.Meta = map[string][]byte{"expt.runner": meta}
	return checkpoint.Encode(&st), nil
}

// decodeRunCheckpoint validates and decodes an encoded runCheckpoint.
func decodeRunCheckpoint(b []byte) (*runCheckpoint, error) {
	st, err := checkpoint.Decode(b)
	if err != nil {
		return nil, err
	}
	raw, ok := st.Meta["expt.runner"]
	if !ok {
		return nil, fmt.Errorf("expt: checkpoint has no runner metadata")
	}
	var m ckptMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("expt: checkpoint runner metadata: %w", err)
	}
	return &runCheckpoint{
		runs: m.Runs, checks: m.Checks, workThisRun: m.WorkThisRun,
		state: st, emu: m.Emu,
	}, nil
}

// DefaultRetryBackoff is the base delay between bounded cell-retry
// attempts when Config.RetryBackoff is zero. Exponential with seeded
// jitter; see RetryDelay.
const DefaultRetryBackoff = 25 * time.Millisecond

// maxRetryBackoff caps any single retry delay.
const maxRetryBackoff = 2 * time.Second

// splitmix64 is the standard splitmix64 finalizer: a cheap, well-mixed
// deterministic hash used to derive jitter from (seed, key, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RetryDelay is the backoff before retry number attempt (attempt 1 is the
// delay before the second try) of the work identified by key: exponential
// in the attempt number with ±25% deterministic jitter derived from
// (seed, key, attempt). Deterministic by construction — the same inputs
// always produce the same schedule — so backoff behavior is testable and
// reproducible, while different seeds (or keys) desynchronize retry storms
// the way random jitter would. Delays are capped at 2s. The same helper
// paces guarded cell retries and fabric worker reconnects.
func RetryDelay(seed uint64, key string, attempt int, base time.Duration) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	d := base << uint(attempt-1)
	if d <= 0 || d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	h := seed
	for i := 0; i < len(key); i++ {
		h = splitmix64(h ^ uint64(key[i]))
	}
	h = splitmix64(h ^ uint64(attempt))
	// Jitter in [-25%, +25%): h mod d/2, shifted down by d/4.
	q := int64(d) / 4
	if q > 0 {
		d += time.Duration(int64(h%uint64(2*q)) - q)
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// retryDelay resolves cfg's backoff knobs for one cell retry.
func (c Config) retryDelay(key string, attempt int) time.Duration {
	base := c.RetryBackoff
	if base == 0 {
		base = DefaultRetryBackoff
	}
	if base < 0 {
		return 0
	}
	return RetryDelay(c.RetrySeed, key, attempt, base)
}

// runCellGuarded measures one cell under cfg's watchdog, converting panics
// and limit violations into a typed *CellError instead of letting them
// escape the worker. Transient kinds (panic, timeout) get exactly one
// retry; deterministic failures (measurement error, budget) and interrupts
// are reported immediately since retrying reproduces them (or the process
// is shutting down).
//
// The cell's progress — completed kernels, committed run totals, and the
// last in-cell checkpoint — survives the failed attempt in cp, so the
// retry resumes from the last checkpoint instead of re-running the cell
// from zero.
func runCellGuarded(j cellJob, cfg Config, minDur time.Duration) Cell {
	return runCellGuardedFrom(j, cfg, minDur, &cellProgress{ckptKernel: -1})
}

// runCellGuardedFrom is runCellGuarded resuming from (and committing into)
// an existing progress record — the fabric takeover path, where cp arrived
// from another worker's last shipped snapshot.
func runCellGuardedFrom(j cellJob, cfg Config, minDur time.Duration, cp *cellProgress) Cell {
	start := time.Now()
	var last *CellError
	for attempt := 1; attempt <= 2; attempt++ {
		if attempt > 1 {
			// Exponential backoff with seeded jitter before the bounded
			// retry: an immediate retry of a transiently failing cell tends
			// to rediscover the same transient (and, fleet-wide, to
			// synchronize retry storms).
			if d := cfg.retryDelay(j.key(), attempt-1); d > 0 {
				time.Sleep(d)
			}
		}
		c, cerr := runCellOnce(j, cfg, minDur, attempt, cp)
		if cerr == nil {
			c.Attempts = attempt
			c.Wall = time.Since(start)
			return c
		}
		cerr.Attempts = attempt
		last = cerr
		if cerr.Kind == CellFailed || cerr.Kind == CellBudget || cerr.Kind == CellInterrupted {
			break
		}
	}
	return Cell{ISA: j.progs.ISA.Name, Buildset: j.buildset, Backend: j.backend.cellTag(),
		Err: last, Attempts: last.Attempts, Wall: time.Since(start)}
}

// runCellOnce is one guarded measurement attempt.
func runCellOnce(j cellJob, cfg Config, minDur time.Duration, attempt int, cp *cellProgress) (c Cell, cerr *CellError) {
	defer func() {
		if r := recover(); r != nil {
			cerr = &CellError{
				ISA: j.progs.ISA.Name, Buildset: j.buildset, Kind: CellPanic,
				Err:   fmt.Errorf("panic: %v", r),
				Stack: debug.Stack(),
			}
		}
	}()
	if cfg.testHook != nil {
		cfg.testHook(j.progs.ISA.Name, j.buildset, attempt)
	}
	lim := Limits{MaxInstr: cfg.MaxCellInstr, interrupt: cfg.Interrupt,
		ckptEvery: cfg.CkptEvery, chunkHook: cfg.testChunkHook}
	if cfg.CellTimeout > 0 {
		lim.Deadline = time.Now().Add(cfg.CellTimeout)
	}
	var cell Cell
	var err error
	if j.backend == BackendAOT {
		// The AOT path has no in-cell checkpointing (the state lives in a
		// subprocess); a granted retry re-measures the cell from scratch.
		cell, err = measureCellAOT(j.progs, j.buildset, j.opts, minDur, lim, cfg.Metric == MetricWork, cfg)
	} else {
		cell, err = measureCell(j.progs, j.buildset, j.opts, minDur, lim, cfg.Metric == MetricWork, cp)
	}
	if err != nil {
		kind := CellFailed
		var aotTimeout *aot.TimeoutError
		switch {
		case errors.Is(err, errDeadline):
			kind = CellTimeout
		case errors.As(err, &aotTimeout):
			// A wedged runner process hit its hard deadline and was killed;
			// transient, so the guard's bounded retry applies.
			kind = CellTimeout
		case errors.Is(err, errBudget):
			kind = CellBudget
		case errors.Is(err, errInterrupted):
			kind = CellInterrupted
		}
		return Cell{}, &CellError{
			ISA: j.progs.ISA.Name, Buildset: j.buildset, Kind: kind, Err: err,
		}
	}
	return cell, nil
}

// CellErrors collects the errors of failed cells in cell order, for callers
// that rendered a degraded table and want to report why.
func CellErrors(cells []Cell) []*CellError {
	var out []*CellError
	for _, c := range cells {
		if c.Err != nil {
			out = append(out, c.Err)
		}
	}
	return out
}

// errMark is the marker rendered into a table for a failed cell.
func errMark(e *CellError) string { return "ERR:" + e.Kind.String() }
