package expt

import (
	"testing"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/isa/isatest"
)

func TestTableI(t *testing.T) {
	tab, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"alpha64", "Number of instructions", "Lines per experimental buildset"} {
		if !contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureCellQuick(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	progs, err := BuildMix(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeasureCell(progs, "block_min", core.Options{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MeasureCell(progs, "step_all_spec", core.Options{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MIPS <= slow.MIPS {
		t.Errorf("Block/Min (%.1f MIPS) should beat Step/All/Yes (%.1f MIPS)", fast.MIPS, slow.MIPS)
	}
	if fast.WorkPerInstr >= slow.WorkPerInstr {
		t.Errorf("work units should track detail: %f vs %f", fast.WorkPerInstr, slow.WorkPerInstr)
	}
}

func TestRowLabel(t *testing.T) {
	cases := map[string][3]string{
		"block_min":       {"Block", "Min", "No"},
		"one_decode_spec": {"One", "Decode", "Yes"},
		"step_all":        {"Step", "All", "No"},
	}
	for bs, want := range cases {
		s, i2, sp := rowLabel(bs)
		if s != want[0] || i2 != want[1] || sp != want[2] {
			t.Errorf("rowLabel(%s) = %s/%s/%s", bs, s, i2, sp)
		}
	}
}

func TestTablesIIandIIIGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	cells, tab, err := TableII(Config{Scale: 1, MinDur: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 36 {
		t.Fatalf("cells = %d, want 36", len(cells))
	}
	out := tab.String()
	if !contains(out, "Block") || !contains(out, "Step") {
		t.Errorf("Table II malformed:\n%s", out)
	}
	t3 := TableIII(cells).String()
	if !contains(t3, "Base cost") || !contains(t3, "block-call") {
		t.Errorf("Table III malformed:\n%s", t3)
	}
	h := Headline(cells, MetricMIPS).String()
	if !contains(h, "x") {
		t.Errorf("headline malformed:\n%s", h)
	}
}

func TestAblationsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	cells, tab, err := Ablations(Config{Scale: 1, MinDur: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Errorf("ablations returned %d cells, want 12", len(cells))
	}
	if !contains(tab.String(), "interpreted") {
		t.Errorf("ablations malformed:\n%s", tab)
	}
}
