package expt

// The parallel experiment engine: the paper's evaluation sweeps
// {ISA × interface} cells over a kernel mix, and every cell is independent
// of every other, so the sweep fans out across a worker pool. What the
// workers share — loaded ISAs, resolved lis.Specs, assembled Programs — is
// read-only by construction; every mutable machine (Machine, Memory,
// Emulator, Exec) is created on the worker that uses it, per the
// concurrency contract documented in internal/mach. Results are collected
// by job index, never by completion order, so the rendered tables are
// identical for any worker count.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
	"singlespec/internal/stats"
	"singlespec/internal/sysemu"
)

// Metric selects which per-cell number the rendered tables report.
type Metric int

const (
	// MetricMIPS reports wall-clock simulation speed (the paper's Table II
	// metric). It varies run to run with host conditions.
	MetricMIPS Metric = iota
	// MetricWork reports deterministic engine work units per instruction:
	// the hardware-independent cross-check of the same trends, whose
	// tables are byte-identical regardless of worker count or host load.
	MetricWork
)

// ParseMetric parses a -metric flag value.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "mips":
		return MetricMIPS, nil
	case "work":
		return MetricWork, nil
	}
	return 0, fmt.Errorf("expt: unknown metric %q (want mips or work)", s)
}

func (m Metric) String() string {
	if m == MetricWork {
		return "work"
	}
	return "mips"
}

// value returns the cell number this metric reports.
func (m Metric) value(c Cell) float64 {
	if m == MetricWork {
		return c.WorkPerInstr
	}
	return c.MIPS
}

// Config configures an experiment-engine run.
type Config struct {
	// Scale multiplies kernel problem sizes (see Mix).
	Scale int
	// MinDur is the minimum measurement time per (cell, kernel).
	MinDur time.Duration
	// Workers is the worker-pool size; <= 0 means runtime.NumCPU().
	Workers int
	// Metric selects the table values (wall-clock MIPS or deterministic
	// work units).
	Metric Metric
	// CellTimeout is the wall-clock watchdog per cell attempt: a cell still
	// running past it is marked errored (after one retry) instead of
	// stalling the sweep. <= 0 disables the watchdog. The watchdog is
	// cooperative (see RunLimited), so it catches runaway simulated
	// programs, not arbitrary host-code hangs.
	CellTimeout time.Duration
	// MaxCellInstr caps simulated instructions per cell (cumulative over
	// the cell's kernels and repeat runs); 0 means unlimited. Budget
	// violations are deterministic and are not retried.
	MaxCellInstr uint64
	// Journal, when non-nil, makes the sweep durable: each cell that
	// completes with a deterministic outcome (ok, failed, budget) is
	// appended to the journal, and cells already present in it are reloaded
	// instead of recomputed — the resume path. Transient outcomes (panic,
	// timeout, interrupted) are never journaled, so a resumed run computes
	// them fresh.
	Journal *RunJournal
	// CkptEvery, when > 0, captures an in-cell machine checkpoint roughly
	// every that many retired instructions; the guarded retry of a
	// transient cell failure then resumes from the last checkpoint instead
	// of re-running the cell from zero.
	CkptEvery uint64
	// Interrupt, when non-nil, winds the sweep down once the channel is
	// closed: running cells stop at the next watchdog check and unstarted
	// cells are marked interrupted without running. Interrupted cells are
	// not journaled; a resumed run computes them.
	Interrupt <-chan struct{}
	// RetryBackoff is the base delay of the exponential seeded-jitter
	// backoff between bounded cell retries: 0 means DefaultRetryBackoff,
	// negative disables the backoff (immediate retry, the pre-backoff
	// behavior). See RetryDelay.
	RetryBackoff time.Duration
	// RetrySeed seeds the deterministic retry/reconnect jitter. A host
	// knob: it never affects cell results, only when retries happen.
	RetrySeed uint64
	// Backend selects the execution engine measuring TableII cells: the
	// in-process interpreter (default), the generated AOT runner binary, or
	// both (each cell measured twice; see VerifyBackendParity).
	Backend Backend
	// AOTCacheDir is where AOT runner binaries are compiled and cached;
	// empty means a per-process temporary cache.
	AOTCacheDir string
	// AOTPlugin asks AOT cells to load the generated runner in process
	// (go plugin transport) instead of spawning subprocesses. Where the
	// toolchain cannot build plugins the cell falls back to the subprocess
	// protocol (aot.ErrNoPlugin), counting aot.plugin.fallback. Results are
	// identical either way; only transport cost differs.
	AOTPlugin bool
	// OnCell, when non-nil, is called once per resolved sweep cell as it
	// lands — computed, journal-restored, or error-marked — with the
	// cell's stable job key. The serve daemon streams per-cell results
	// through it. Calls arrive concurrently from sweep workers (and, on
	// the fabric coordinator, may hold internal locks), so the callback
	// must be safe for concurrent use, fast, and must not call back into
	// the engine. It observes results; it cannot change them.
	OnCell func(key string, c Cell)
	// Obs, when non-nil, receives the sweep's aggregate counters and
	// histograms: translation-cache traffic, syscall activity, watchdog
	// checks, and per-cell outcomes. Aggregation is commutative atomic
	// addition over per-cell deltas, so the totals are identical for any
	// Workers value; under MetricWork the deltas themselves are
	// deterministic, making the exported snapshot byte-identical across
	// worker counts and hosts. Nil disables instrumentation at zero cost.
	Obs *obs.Registry
	// testHook, when non-nil, runs at the start of every cell attempt.
	// Tests inject panics and hangs through it to exercise containment.
	testHook func(isaName, buildset string, attempt int)
	// testChunkHook, when non-nil, runs at every RunLimited chunk boundary.
	// Tests inject mid-run panics through it to exercise checkpoint resume.
	testChunkHook func(r *Runner)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// cellJob is one {ISA × buildset × options × backend} measurement to
// schedule.
type cellJob struct {
	progs    *Programs
	buildset string
	opts     core.Options
	// backend is BackendInterp or BackendAOT per job; BackendBoth fans out
	// into one job of each before scheduling.
	backend Backend
}

// key is the job's stable identity in the run journal. Options are part of
// it: the ablation sweep measures the same (ISA, buildset) under several
// option sets and each is its own cell. AOT jobs are suffixed so a both-
// backend sweep journals the two measurements separately (interpreter keys
// are unchanged from pre-AOT journals). The format is shared with
// JobSpec.Key so fabric workers and local sweeps name cells identically.
func (j cellJob) key() string {
	return JobSpec{ISA: j.progs.ISA.Name, Buildset: j.buildset,
		Opts: j.opts, Backend: j.backend}.Key()
}

// interrupted reports whether ch (which may be nil) has been closed.
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// runCells fans jobs out across a worker pool and collects results by job
// index, so the rendered tables are identical for any worker count. Every
// cell runs guarded: a panicking, hung, or failing cell is returned with
// its Err set while all other cells' results stay intact — the sweep never
// aborts partway.
func runCells(jobs []cellJob, cfg Config, minDur time.Duration) []Cell {
	workers := cfg.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]Cell, len(jobs))
	// Buffered so every job is queued up front: a worker's pickup delay is
	// then real queue wait, which the manifest reports per cell.
	start := time.Now()
	idxCh := make(chan int, len(jobs))
	for i := range jobs {
		idxCh <- i
	}
	close(idxCh)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				j := jobs[idx]
				// Resume: a cell the journal already holds is reloaded, not
				// recomputed. Restored cells still fire OnCell: a streaming
				// consumer of a resumed sweep sees every cell land.
				if cfg.Journal != nil {
					if c, ok := cfg.Journal.Lookup(j.key()); ok {
						results[idx] = c
						if cfg.OnCell != nil {
							cfg.OnCell(j.key(), c)
						}
						continue
					}
				}
				// Shutdown: unstarted cells are marked, not run.
				if interrupted(cfg.Interrupt) {
					results[idx] = Cell{ISA: j.progs.ISA.Name, Buildset: j.buildset,
						Backend: j.backend.cellTag(),
						Err: &CellError{ISA: j.progs.ISA.Name, Buildset: j.buildset,
							Kind: CellInterrupted, Err: errInterrupted}}
					if cfg.OnCell != nil {
						cfg.OnCell(j.key(), results[idx])
					}
					continue
				}
				wait := time.Since(start)
				c := runCellGuarded(j, cfg, minDur)
				c.QueueWait = wait
				results[idx] = c
				if cfg.Journal != nil && deterministicOutcome(c) {
					// Journal errors must not fail the sweep; the cell's
					// result stands either way, only durability is lost.
					_ = cfg.Journal.Record(j.key(), c)
				}
				if cfg.OnCell != nil {
					cfg.OnCell(j.key(), c)
				}
			}
		}()
	}
	wg.Wait()
	recordCells(cfg.Obs, results)
	return results
}

// deterministicOutcome reports whether a cell's result is safe to journal:
// ok cells and deterministic failures reproduce identically on a resumed
// run, while panics, timeouts, and interrupts must be recomputed.
func deterministicOutcome(c Cell) bool {
	if c.Err == nil {
		return true
	}
	return c.Err.Kind == CellFailed || c.Err.Kind == CellBudget
}

// SweepCounts summarizes a sweep's resume lineage: how many cells were
// reloaded from the journal versus computed (or attempted) by this process.
func SweepCounts(cells []Cell) (restored, computed int) {
	for _, c := range cells {
		if c.Restored {
			restored++
		} else {
			computed++
		}
	}
	return restored, computed
}

// workPerInstrBuckets bounds the per-cell work-units-per-instruction
// histogram: interfaces in this engine land between a few units (Block/Min)
// and a few hundred (Step/All/Yes).
var workPerInstrBuckets = []uint64{4, 8, 16, 32, 64, 128, 256, 512}

// recordCells merges every cell's deterministic counters into reg. Called
// once per sweep, after the worker pool has quiesced, so a snapshot taken
// after the sweep is exact.
func recordCells(reg *obs.Registry, cells []Cell) {
	if reg == nil {
		return
	}
	add := func(name string, v uint64) { reg.Counter(name).Add(v) }
	for _, c := range cells {
		if c.Err != nil {
			reg.Counter("expt.cell.err." + c.Err.Kind.String()).Inc()
		} else {
			reg.Counter("expt.cell.ok").Inc()
		}
		if c.Attempts > 1 {
			add("expt.cell.retries", uint64(c.Attempts-1))
		}
		add("expt.instret", c.Instret)
		add("expt.work_units", c.WorkUnits)
		add("expt.watchdog.checks", c.Stats.WatchdogChecks)
		if c.Err == nil && c.Instret > 0 {
			reg.Histogram("expt.cell.work_per_instr", workPerInstrBuckets).
				Observe(c.WorkUnits / c.Instret)
		}
		cs := c.Stats.Cache
		add("core.transcache.unit.l1_hit", cs.UnitL1Hits)
		add("core.transcache.unit.l1_gen_evict", cs.UnitL1GenEvictions)
		add("core.transcache.unit.l1_conflict", cs.UnitL1Conflicts)
		add("core.transcache.unit.l1_flush", cs.UnitL1Flushes)
		add("core.transcache.unit.shared_hit", cs.UnitSharedHits)
		add("core.transcache.unit.translations", cs.UnitTranslations)
		add("core.transcache.block.l1_hit", cs.BlockL1Hits)
		add("core.transcache.block.l1_gen_evict", cs.BlockL1GenEvictions)
		add("core.transcache.block.l1_conflict", cs.BlockL1Conflicts)
		add("core.transcache.block.l1_flush", cs.BlockL1Flushes)
		add("core.transcache.block.shared_hit", cs.BlockSharedHits)
		add("core.transcache.block.shared_stale", cs.BlockSharedStale)
		add("core.transcache.block.builds", cs.BlockBuilds)
		add("core.transcache.block.chain_link", cs.BlockChainLinks)
		add("core.transcache.block.chain_follow", cs.BlockChainFollows)
		sh := c.Stats.Shared
		add("core.transcache.unit.shared_insert", sh.UnitInsertions)
		add("core.transcache.unit.shared_shard_flush", sh.UnitShardFlushes)
		add("core.transcache.block.shared_insert", sh.BlockInsertions)
		add("core.transcache.block.shared_shard_flush", sh.BlockShardFlushes)
		for num, n := range c.Stats.Syscalls {
			add("sysemu.calls."+sysemu.CallName(num), n)
		}
		add("sysemu.denials", c.Stats.SyscallDenials)
		add("sysemu.short_io", c.Stats.SyscallShorts)
	}
}

// Outcomes converts sweep cells into manifest cell outcomes.
func Outcomes(cells []Cell) []obs.CellOutcome {
	out := make([]obs.CellOutcome, 0, len(cells))
	for _, c := range cells {
		status := "ok"
		if c.Err != nil {
			status = c.Err.Kind.String()
		}
		out = append(out, obs.CellOutcome{
			ISA:         c.ISA,
			Buildset:    c.Buildset,
			Status:      status,
			Attempts:    c.Attempts,
			Instret:     c.Instret,
			WorkUnits:   c.WorkUnits,
			WallMS:      float64(c.Wall.Microseconds()) / 1e3,
			QueueWaitMS: float64(c.QueueWait.Microseconds()) / 1e3,
			Restored:    c.Restored,
		})
	}
	return out
}

// buildAllMixes loads every ISA and assembles its kernel mix, one goroutine
// per ISA. The results are shared read-only by all measurement workers.
func buildAllMixes(scale int) ([]*Programs, error) {
	names := isa.Names()
	out := make([]*Programs, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for k, name := range names {
		wg.Add(1)
		go func(k int, name string) {
			defer wg.Done()
			i, err := isa.Load(name)
			if err != nil {
				errs[k] = err
				return
			}
			out[k], errs[k] = BuildMix(i, scale)
		}(k, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TableII measures all twelve interfaces on all three ISAs across cfg's
// worker pool. The returned cells are ordered ISA-major, buildset-minor
// (Table II order) regardless of worker count. Failed cells render as
// "ERR:<kind>" markers in the table (the degraded-rendering contract: the
// table is always complete); inspect them via CellErrors.
func TableII(cfg Config) ([]Cell, *stats.Table, error) {
	mixes, err := buildAllMixes(cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	byISA := map[string]*Programs{}
	for _, p := range mixes {
		byISA[p.ISA.Name] = p
	}
	specs := TableIIJobSpecs(cfg)
	jobs := make([]cellJob, len(specs))
	for i, s := range specs {
		jobs[i] = cellJob{progs: byISA[s.ISA], buildset: s.Buildset,
			opts: s.Opts, backend: s.Backend}
	}
	cells := runCells(jobs, cfg, cfg.MinDur)
	return cells, RenderTableII(cfg, cells), nil
}

// Ablations measures the design-choice ablations DESIGN.md calls out —
// translated vs. interpreted base cost (paper footnote 5), DCE on/off,
// forced per-instruction block records — across cfg's worker pool. Like
// TableII it returns the raw cells alongside the rendered table, so
// callers can fold them into run manifests and resume-lineage counts.
func Ablations(cfg Config) ([]Cell, *stats.Table, error) {
	type variant struct {
		label string
		bs    string
		opts  core.Options
	}
	variants := []variant{
		{"One/Min translated (ns/instr)", "one_min", core.Options{}},
		{"One/Min interpreted (ns/instr)", "one_min", core.Options{NoTranslate: true}},
		{"One/Min no-DCE (ns/instr)", "one_min", core.Options{NoDCE: true}},
		{"Block/Min per-instr records (ns/instr)", "block_min", core.Options{ForceRecords: true}},
	}
	mixes, err := buildAllMixes(cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	var jobs []cellJob
	for _, progs := range mixes {
		for _, v := range variants {
			jobs = append(jobs, cellJob{progs: progs, buildset: v.bs, opts: v.opts})
		}
	}
	cells := runCells(jobs, cfg, cfg.MinDur)
	t := stats.NewTable(append([]string{"Configuration"}, isa.Names()...)...)
	for vi, v := range variants {
		row := []any{v.label}
		for mi := range mixes {
			c := cells[mi*len(variants)+vi]
			if c.Err != nil {
				row = append(row, errMark(c.Err))
			} else {
				row = append(row, c.NsPerInstr)
			}
		}
		t.Row(row...)
	}
	return cells, t, nil
}
