package expt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
	"singlespec/internal/mach"
	"singlespec/internal/obs"
	"singlespec/internal/sysemu"
)

// These tests prove the parallel engine's central claim: one synthesized
// Sim (compiled spec + shared translation cache) can be shared by N
// goroutines, each with its own Machine/Memory/Emulator, and every
// goroutine observes exactly the state, output, and work counts of a
// serial run. Run them under -race to exercise the internal/mach
// concurrency contract.

// printProg writes "OK\n" and exits 0 — the stdout-producing workload for
// the determinism comparison.
const printProg = `
.text
_start:
    addq r31, 2, r0        // SysWrite
    addq r31, 1, r16       // fd
    ldah r17, ha(msg)(r31)
    lda  r17, lo(msg)(r17)
    addq r31, 3, r18
    callsys
    addq r31, 1, r0        // SysExit
    bis  r31, r31, r16
    callsys

.data
msg: .ascii "OK\n"
`

// outcome captures everything observable about one program execution.
type outcome struct {
	snap   mach.Snapshot
	stdout string
	work   uint64
	instrs uint64
	result uint64
}

// execShared runs prog to completion on a fresh machine through the shared
// sim and captures the outcome.
func execShared(t *testing.T, i *isa.ISA, sim *core.Sim, prog *asm.Program) outcome {
	t.Helper()
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	x := sim.NewExec(m)
	x.Run(1 << 62)
	if !m.Halted || m.ExitCode != 0 {
		t.Errorf("%s/%s: halted=%v exit=%d", i.Name, sim.BS.Name, m.Halted, m.ExitCode)
	}
	out := outcome{
		snap: m.Snapshot(), stdout: emu.Stdout.String(),
		work: x.Work(), instrs: m.Instret,
	}
	if addr, ok := prog.Symbols["result"]; ok {
		v, f := m.Mem.Load(addr, 4)
		if f != mach.FaultNone {
			t.Errorf("%s/%s: result load faulted", i.Name, sim.BS.Name)
		}
		out.result = v
	}
	return out
}

func (o outcome) diff(ref outcome, spaceNames []string) string {
	if eq, why := o.snap.Equal(ref.snap, spaceNames); !eq {
		return "architectural state: " + why
	}
	if o.stdout != ref.stdout {
		return fmt.Sprintf("stdout: %q vs %q", o.stdout, ref.stdout)
	}
	if o.work != ref.work {
		return fmt.Sprintf("work: %d vs %d", o.work, ref.work)
	}
	if o.instrs != ref.instrs {
		return fmt.Sprintf("instrs: %d vs %d", o.instrs, ref.instrs)
	}
	if o.result != ref.result {
		return fmt.Sprintf("result: %#x vs %#x", o.result, ref.result)
	}
	return ""
}

// TestSharedSimParallelDeterminism runs the same kernel on the same
// {ISA, buildset} from N concurrent goroutines sharing one compiled spec
// and asserts each run matches the serial reference exactly: final
// architectural state, captured stdout, and work-unit counts.
func TestSharedSimParallelDeterminism(t *testing.T) {
	const workers = 8
	i := isatest.Load(t, "alpha64")

	k := kernels.ByName("crc32")
	crcProg, err := kernels.BuildProgram(i, k.Build(256))
	if err != nil {
		t.Fatal(err)
	}
	a, err := asm.New(i)
	if err != nil {
		t.Fatal(err)
	}
	okProg, err := a.Assemble("print.s", printProg)
	if err != nil {
		t.Fatal(err)
	}
	var spaceNames []string
	for _, sp := range i.Spec.Spaces {
		spaceNames = append(spaceNames, sp.Name)
	}

	// one_all exercises the shared per-PC unit cache, block_min the shared
	// block cache, step_all_spec the multi-entrypoint path with the journal
	// enabled.
	for _, bsName := range []string{"one_all", "block_min", "step_all_spec"} {
		t.Run(bsName, func(t *testing.T) {
			sim, err := core.Synthesize(i.Spec, bsName, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			crcRef := execShared(t, i, sim, crcProg)
			okRef := execShared(t, i, sim, okProg)
			if want := uint32(k.Ref(256)); uint32(crcRef.result) != want {
				t.Fatalf("serial crc32 result %#x, want %#x", crcRef.result, want)
			}
			if okRef.stdout != "OK\n" {
				t.Fatalf("serial stdout %q, want OK", okRef.stdout)
			}

			crcOut := make([]outcome, workers)
			okOut := make([]outcome, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					crcOut[w] = execShared(t, i, sim, crcProg)
					okOut[w] = execShared(t, i, sim, okProg)
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if d := crcOut[w].diff(crcRef, spaceNames); d != "" {
					t.Errorf("worker %d crc32 diverged from serial run: %s", w, d)
				}
				if d := okOut[w].diff(okRef, spaceNames); d != "" {
					t.Errorf("worker %d print diverged from serial run: %s", w, d)
				}
			}
		})
	}
}

// TestEngineWorkerCountDeterminism asserts the engine's rendered tables,
// its exported metrics snapshot, and the manifest cell outcomes are all
// byte-identical for any worker count under the deterministic work metric.
// Three properties make the metrics half hold — the work metric runs a
// fixed schedule (warmup + one measured run per kernel), each cell owns
// its Sim and runs on exactly one worker, and registry aggregation is
// commutative addition over per-cell deltas. Wall-clock fields (wall_ms,
// queue_wait_ms) are host observations outside the contract and are
// zeroed before comparison.
func TestEngineWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	run := func(workers int) (cells []Cell, table, headline string, snap, outcomes []byte) {
		reg := obs.NewRegistry()
		cfg := Config{Scale: 1, MinDur: time.Millisecond, Workers: workers, Metric: MetricWork, Obs: reg}
		cells, tab, err := TableII(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = reg.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		outs := Outcomes(cells)
		for i := range outs {
			outs[i].WallMS, outs[i].QueueWaitMS = 0, 0
		}
		oj, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		return cells, tab.String(), Headline(cells, MetricWork).String(), snap, oj
	}
	serialCells, serialTab, serialHead, serialSnap, serialOut := run(1)
	parCells, parTab, parHead, parSnap, parOut := run(4)
	if serialTab != parTab {
		t.Errorf("Table II differs between 1 and 4 workers:\n--- serial\n%s--- parallel\n%s", serialTab, parTab)
	}
	if serialHead != parHead {
		t.Errorf("headline differs between 1 and 4 workers:\n--- serial\n%s--- parallel\n%s", serialHead, parHead)
	}
	if !bytes.Equal(serialSnap, parSnap) {
		t.Errorf("metrics snapshot differs between 1 and 4 workers:\n--- serial\n%s\n--- parallel\n%s", serialSnap, parSnap)
	}
	if !bytes.Equal(serialOut, parOut) {
		t.Errorf("cell outcomes differ between 1 and 4 workers:\n--- serial\n%s\n--- parallel\n%s", serialOut, parOut)
	}
	for idx := range serialCells {
		s, p := serialCells[idx], parCells[idx]
		if s.ISA != p.ISA || s.Buildset != p.Buildset {
			t.Fatalf("cell %d ordering differs: %s/%s vs %s/%s", idx, s.ISA, s.Buildset, p.ISA, p.Buildset)
		}
		if s.WorkPerInstr != p.WorkPerInstr {
			t.Errorf("cell %d (%s/%s) work/instr differs: %v vs %v",
				idx, s.ISA, s.Buildset, s.WorkPerInstr, p.WorkPerInstr)
		}
	}
	// Sanity: the snapshot actually carries the instrumented counter
	// families (the same names EXPERIMENTS.md documents and CI validates).
	var snap obs.Snapshot
	if err := json.Unmarshal(serialSnap, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"core.transcache.unit.l1_hit", "core.transcache.unit.translations",
		"core.transcache.block.builds", "core.transcache.unit.shared_insert",
		"core.transcache.block.chain_link", "core.transcache.block.chain_follow",
		"expt.cell.ok", "expt.instret", "expt.watchdog.checks",
		"sysemu.calls.exit",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q missing or zero in snapshot", name)
		}
	}
	if snap.Histograms["expt.cell.work_per_instr"].Count == 0 {
		t.Error("work_per_instr histogram is empty")
	}
}
