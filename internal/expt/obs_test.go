package expt

import (
	"testing"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/sysemu"
)

// The cross-worker determinism of the metrics snapshot and manifest cell
// outcomes is asserted by TestEngineWorkerCountDeterminism in
// parallel_test.go, which runs the full TableII sweep at 1 and 4 workers.

// TestSummaryGeoMeanSkipsErrCells is the regression test for the
// GeoMean-zeroing bug: one ERR cell (zero metrics) in a summary aggregate
// used to zero the whole row. cellGeoMean must skip error cells and
// aggregate only the ok ones.
func TestSummaryGeoMeanSkipsErrCells(t *testing.T) {
	cells := []Cell{
		{ISA: "alpha64", Buildset: "one_min", WorkPerInstr: 2, MIPS: 2},
		{ISA: "alpha64", Buildset: "one_all", WorkPerInstr: 8, MIPS: 8},
		{ISA: "alpha64", Buildset: "step_all", Err: &CellError{
			ISA: "alpha64", Buildset: "step_all", Kind: CellPanic}},
		{ISA: "arm32", Buildset: "one_min", WorkPerInstr: 5, MIPS: 5},
	}
	// geomean(2, 8) = 4; the ERR cell (metric 0) and the other ISA's cell
	// must not participate.
	if g := cellGeoMean(cells, "alpha64", MetricWork); g != 4 {
		t.Errorf("cellGeoMean = %v, want 4 (ERR cell must be skipped)", g)
	}
	if g := cellGeoMean(cells, "alpha64", MetricMIPS); g != 4 {
		t.Errorf("cellGeoMean mips = %v, want 4", g)
	}
	// An ISA whose every cell errored aggregates to 0, not a panic.
	if g := cellGeoMean(cells, "ppc32", MetricWork); g != 0 {
		t.Errorf("all-ERR ISA should aggregate to 0, got %v", g)
	}
}

// TestMeasureCellStats checks a measured cell carries its engine counters:
// translated interfaces must report cache traffic, every cell must report
// retired instructions, work, syscalls, and watchdog checks.
func TestMeasureCellStats(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	progs, err := BuildMix(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := MeasureCell(progs, "block_min", core.Options{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Instret == 0 || cell.WorkUnits == 0 {
		t.Errorf("raw totals missing: instret=%d work=%d", cell.Instret, cell.WorkUnits)
	}
	st := cell.Stats
	if st.Cache.BlockBuilds == 0 {
		t.Error("block interface should build blocks")
	}
	if st.Cache.BlockL1Hits == 0 {
		t.Error("repeat runs should hit the first-level block cache")
	}
	if st.Shared.BlockInsertions != st.Cache.BlockBuilds {
		t.Errorf("every built block should be published: built %d, inserted %d",
			st.Cache.BlockBuilds, st.Shared.BlockInsertions)
	}
	if st.WatchdogChecks == 0 {
		t.Error("watchdog checks not counted")
	}
	if st.Syscalls[sysemu.SysExit] == 0 { // every kernel run exits
		t.Errorf("syscall counts missing: %v", st.Syscalls)
	}
	if st.SyscallDenials != 0 || st.SyscallShorts != 0 {
		t.Errorf("clean run should have no syscall faults: %d/%d",
			st.SyscallDenials, st.SyscallShorts)
	}
}
