package expt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
)

func mustSynth(t *testing.T, i *isa.ISA, bs string) *core.Sim {
	t.Helper()
	sim, err := core.Synthesize(i.Spec, bs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// testMix assembles the alpha64 scale-1 mix once per test that needs it.
func testMix(t *testing.T) *Programs {
	t.Helper()
	i := isatest.Load(t, "alpha64")
	progs, err := BuildMix(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

// TestSweepSurvivesPanickingCell injects a panic into one cell of a sweep
// and checks the containment contract: the panicking cell is marked with a
// typed error (after its one retry), every other cell's measurement is
// intact, and nothing escapes the worker pool.
func TestSweepSurvivesPanickingCell(t *testing.T) {
	progs := testMix(t)
	buildsets := []string{"one_min", "block_min", "one_all"}
	var jobs []cellJob
	for _, bs := range buildsets {
		jobs = append(jobs, cellJob{progs: progs, buildset: bs})
	}
	cfg := Config{
		Workers: 3,
		testHook: func(isaName, buildset string, attempt int) {
			if buildset == "block_min" {
				panic("injected cell failure")
			}
		},
	}
	cells := runCells(jobs, cfg, 0)
	for idx, c := range cells {
		bs := buildsets[idx]
		if bs == "block_min" {
			if c.Err == nil {
				t.Fatal("panicking cell reported no error")
			}
			if c.Err.Kind != CellPanic {
				t.Errorf("kind = %v, want panic", c.Err.Kind)
			}
			if c.Err.Attempts != 2 {
				t.Errorf("attempts = %d, want 2 (one retry)", c.Err.Attempts)
			}
			if !strings.Contains(c.Err.Error(), "injected cell failure") {
				t.Errorf("error %q lost the panic value", c.Err.Error())
			}
			if len(c.Err.Stack) == 0 {
				t.Error("panic stack not captured")
			}
			if c.ISA != "alpha64" || c.Buildset != "block_min" {
				t.Errorf("errored cell mislabeled: %s/%s", c.ISA, c.Buildset)
			}
			continue
		}
		if c.Err != nil {
			t.Errorf("healthy cell %s errored: %v", bs, c.Err)
		}
		if c.WorkPerInstr <= 0 {
			t.Errorf("healthy cell %s has no measurement", bs)
		}
	}
	if errs := CellErrors(cells); len(errs) != 1 || errs[0].Buildset != "block_min" {
		t.Errorf("CellErrors = %v", errs)
	}
}

// TestCellRetryRecoversTransientPanic panics only on the first attempt: the
// bounded retry must produce a clean measurement.
func TestCellRetryRecoversTransientPanic(t *testing.T) {
	progs := testMix(t)
	cfg := Config{
		testHook: func(isaName, buildset string, attempt int) {
			if attempt == 1 {
				panic("transient")
			}
		},
	}
	cells := runCells([]cellJob{{progs: progs, buildset: "one_min"}}, cfg, 0)
	if cells[0].Err != nil {
		t.Fatalf("retry did not recover: %v", cells[0].Err)
	}
	if cells[0].WorkPerInstr <= 0 {
		t.Error("recovered cell has no measurement")
	}
}

// TestCellInstructionBudget gives a cell a budget far below what the mix
// needs; the violation must be typed CellBudget and must not be retried
// (it is deterministic).
func TestCellInstructionBudget(t *testing.T) {
	progs := testMix(t)
	cfg := Config{MaxCellInstr: 100}
	cells := runCells([]cellJob{{progs: progs, buildset: "one_min"}}, cfg, 0)
	ce := cells[0].Err
	if ce == nil {
		t.Fatal("budget violation not reported")
	}
	if ce.Kind != CellBudget {
		t.Errorf("kind = %v, want budget", ce.Kind)
	}
	if ce.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (deterministic failures are not retried)", ce.Attempts)
	}
	if !errors.Is(ce, errBudget) {
		t.Error("CellError does not unwrap to the budget sentinel")
	}
}

// TestRunLimitedDeadline runs an endless program under a short deadline:
// the cooperative watchdog must interrupt it between chunks instead of
// hanging the caller.
func TestRunLimitedDeadline(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, err := asm.New(i)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Assemble("spin.s", `
.text
_start:
    br r31, _start
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSynth(t, i, "one_min")
	r := NewRunner(sim, i, prog)
	start := time.Now()
	_, _, err = r.RunLimited(Limits{Deadline: time.Now().Add(50 * time.Millisecond)})
	if !errors.Is(err, errDeadline) {
		t.Fatalf("err = %v, want deadline sentinel", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Errorf("watchdog took %v to fire", time.Since(start))
	}
}

// TestRunLimitedBudgetIsDeterministic runs the same endless program twice
// under the same instruction budget and checks the interruption point is
// identical — budgets, unlike deadlines, are part of the deterministic
// contract.
func TestRunLimitedBudgetIsDeterministic(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, err := asm.New(i)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Assemble("spin.s", `
.text
_start:
    br r31, _start
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSynth(t, i, "one_min")
	retired := func() uint64 {
		r := NewRunner(sim, i, prog)
		_, _, err := r.RunLimited(Limits{MaxInstr: 12345})
		if !errors.Is(err, errBudget) {
			t.Fatalf("err = %v, want budget sentinel", err)
		}
		return r.m.Instret
	}
	a1, a2 := retired(), retired()
	if a1 != a2 {
		t.Errorf("budget interruption nondeterministic: %d vs %d retired", a1, a2)
	}
	if a1 < 12345 {
		t.Errorf("budget tripped early: %d retired, budget 12345", a1)
	}
}
