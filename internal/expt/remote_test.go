package expt

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
	"singlespec/internal/stats"
)

// TestJobSpecKeyGolden freezes the cell-key wire format. These strings are
// a compatibility contract: they name cells in resume journals, fabric
// segments, and wire frames, so any change here invalidates every journal
// written before it. If this test fails, you changed the key format —
// don't update the goldens without a migration story for old journals.
func TestJobSpecKeyGolden(t *testing.T) {
	zero := "{NoTranslate:false NoDCE:false ForceRecords:false MaxBlockLen:0 CacheCap:0}"
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{ISA: "alpha64", Buildset: "one_min"},
			"alpha64/one_min/" + zero},
		{JobSpec{ISA: "arm32", Buildset: "step_all_spec", Backend: BackendAOT},
			"arm32/step_all_spec/" + zero + "/aot"},
		{JobSpec{ISA: "ppc32", Buildset: "one_min",
			Opts: core.Options{NoTranslate: true}},
			"ppc32/one_min/{NoTranslate:true NoDCE:false ForceRecords:false MaxBlockLen:0 CacheCap:0}"},
		{JobSpec{ISA: "alpha64", Buildset: "block_min",
			Opts: core.Options{NoDCE: true, ForceRecords: true, MaxBlockLen: 7, CacheCap: 128}},
			"alpha64/block_min/{NoTranslate:false NoDCE:true ForceRecords:true MaxBlockLen:7 CacheCap:128}"},
	}
	for _, c := range cases {
		if got := c.spec.Key(); got != c.want {
			t.Errorf("JobSpec%+v.Key():\n got %q\nwant %q", c.spec, got, c.want)
		}
	}
}

// TestJobSpecKeyMatchesLegacyFormat proves byte-compatibility with the
// %+v rendering the key historically derived its options portion from, so
// journals and segments written by earlier versions still resolve. (For
// today's core.Options the two coincide; canonicalOpts exists so they
// stay coincident even when the struct changes.)
func TestJobSpecKeyMatchesLegacyFormat(t *testing.T) {
	for _, o := range []core.Options{
		{},
		{NoTranslate: true},
		{NoDCE: true, ForceRecords: true, MaxBlockLen: 5, CacheCap: 64},
	} {
		legacy := fmt.Sprintf("%+v", o)
		if got := canonicalOpts(o); got != legacy {
			t.Errorf("canonicalOpts(%+v) = %q, legacy %%+v rendering %q", o, got, legacy)
		}
	}
}

// TestJobSpecKeyCoversOptions is the tripwire the bug report asked for:
// canonicalOpts names every core.Options field explicitly, so this test
// fails the moment a field is added, removed, or renamed — forcing the
// author to decide, deliberately, how the new field joins the key (and
// what happens to journals that predate it), instead of %+v silently
// changing every key.
func TestJobSpecKeyCoversOptions(t *testing.T) {
	want := []string{"NoTranslate", "NoDCE", "ForceRecords", "MaxBlockLen", "CacheCap"}
	tp := reflect.TypeOf(core.Options{})
	var got []string
	for i := 0; i < tp.NumField(); i++ {
		got = append(got, tp.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("core.Options fields changed: got %v, canonicalOpts encodes %v.\n"+
			"Update canonicalOpts (and the goldens in TestJobSpecKeyGolden) deliberately: "+
			"decide how the new field joins the cell key and how pre-existing journals resolve.",
			got, want)
	}
}

// TestOldFormatJournalResolves writes a journal under the frozen key
// format and reopens it: every cell must resolve by JobSpec.Key() lookup
// — no silent recomputation of journaled cells across the key change.
func TestOldFormatJournalResolves(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{ISA: "alpha64", Buildset: "one_min"}
	// The literal key an old-version journal would contain (not computed
	// via Key(), so this test still fails if Key() drifts).
	oldKey := "alpha64/one_min/{NoTranslate:false NoDCE:false ForceRecords:false MaxBlockLen:0 CacheCap:0}"
	j, err := OpenJournal(dir, "run-old", "fp", false)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{ISA: "alpha64", Buildset: "one_min", MIPS: 12, NsPerInstr: 83,
		WorkPerInstr: 4, Instret: 1000, WorkUnits: 4000, Attempts: 1}
	if err := j.Record(oldKey, cell); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, "run-new", "fp", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := j2.Lookup(spec.Key())
	if !ok {
		t.Fatalf("journaled cell under old-format key %q does not resolve via Key() %q",
			oldKey, spec.Key())
	}
	if got.Instret != cell.Instret || got.WorkUnits != cell.WorkUnits {
		t.Fatalf("restored cell mismatch: got %+v want %+v", got, cell)
	}
}

// TestRenderTableIIColumnsMatchSpecs asserts the rendered Table II columns
// agree with the swept cell list: both derive from isa.Names(), so a
// registered fourth ISA is swept AND rendered, never silently dropped.
func TestRenderTableIIColumnsMatchSpecs(t *testing.T) {
	cfg := Config{Metric: MetricWork}
	specs := TableIIJobSpecs(cfg)
	sweptISAs := map[string]bool{}
	var sweptOrder []string
	for _, s := range specs {
		if !sweptISAs[s.ISA] {
			sweptISAs[s.ISA] = true
			sweptOrder = append(sweptOrder, s.ISA)
		}
	}

	// Synthetic cells with a distinct per-ISA value, so a column/value
	// transposition is caught, not just a header mismatch.
	var cells []Cell
	for _, s := range specs {
		cells = append(cells, Cell{ISA: s.ISA, Buildset: s.Buildset,
			WorkPerInstr: float64(indexOf(sweptOrder, s.ISA) + 2),
			MIPS:         1, NsPerInstr: 1, Instret: 1, WorkUnits: 1, Attempts: 1})
	}
	table := RenderTableII(cfg, cells)

	header := table.Header()
	wantHeader := append([]string{"Semantic", "Informational", "Spec."}, isa.Names()...)
	if !reflect.DeepEqual(header, wantHeader) {
		t.Fatalf("table header %v, want %v", header, wantHeader)
	}
	if !reflect.DeepEqual(header[3:], sweptOrder) {
		t.Fatalf("rendered ISA columns %v disagree with swept specs' ISAs %v",
			header[3:], sweptOrder)
	}

	// Every data row must carry each ISA's value in that ISA's column.
	lines := strings.Split(strings.TrimSpace(table.String()), "\n")
	if len(lines) < 2+len(isa.StdBuildsets) {
		t.Fatalf("table too short:\n%s", table)
	}
	for _, line := range lines[2 : 2+len(isa.StdBuildsets)] {
		fields := splitRow(line)
		if len(fields) != len(header) {
			t.Fatalf("row has %d columns, header has %d: %q", len(fields), len(header), line)
		}
		for i, name := range header[3:] {
			want := stats.FormatSig(float64(indexOf(sweptOrder, name)+2), 3)
			if got := fields[3+i]; got != want {
				t.Errorf("column %s: got %q, want %q in row %q", name, got, want, line)
			}
		}
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// splitRow splits one rendered markdown table row into trimmed cells.
func splitRow(line string) []string {
	parts := strings.Split(strings.Trim(line, "|"), "|")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// TestDecodeProgressRejectsInconsistentState drives the snapshot validator
// through states measureCell could never commit: each must be rejected
// (the takeover then restarts the cell from scratch) instead of resuming
// into silently corrupted totals.
func TestDecodeProgressRejectsInconsistentState(t *testing.T) {
	valid := func() progressWire {
		return progressWire{
			KernelsDone: 2, Used: 1000, Instret: 1000, WorkUnits: 4000,
			MIPS: []float64{10, 12}, NS: []float64{100, 83}, Work: []float64{4, 4},
			WarmupDone: false, CkptKernel: -1,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*progressWire)
		nKernel int
		wantOK  bool
	}{
		{"valid boundary snapshot", func(w *progressWire) {}, 3, true},
		{"valid mid-kernel snapshot", func(w *progressWire) {
			w.WarmupDone = true
			w.CurInstrs, w.CurWork, w.CurElapsed = 500, 2000, int64(time.Millisecond)
			w.Ckpt, w.CkptKernel = []byte{1, 2, 3}, 2
		}, 3, true},
		{"valid completed cell", func(w *progressWire) {}, 2, true},
		{"negative kernels_done", func(w *progressWire) { w.KernelsDone = -1; w.MIPS, w.NS, w.Work = nil, nil, nil }, 3, false},
		{"cur_instrs before warmup", func(w *progressWire) { w.CurInstrs = 7 }, 3, false},
		{"cur_work before warmup", func(w *progressWire) { w.CurWork = 7 }, 3, false},
		{"cur_elapsed before warmup", func(w *progressWire) { w.CurElapsed = 7 }, 3, false},
		{"short mips slice", func(w *progressWire) { w.MIPS = w.MIPS[:1] }, 3, false},
		{"long work slice", func(w *progressWire) { w.Work = append(w.Work, 4) }, 3, false},
		{"zero metric value", func(w *progressWire) { w.NS[0] = 0 }, 3, false},
		{"negative metric value", func(w *progressWire) { w.MIPS[1] = -3 }, 3, false},
		{"budget/instret divergence", func(w *progressWire) { w.Used = 999 }, 3, false},
		{"ckpt kernel without bytes", func(w *progressWire) { w.CkptKernel = 2 }, 3, false},
		{"ckpt bytes without kernel", func(w *progressWire) { w.Ckpt = []byte{1} }, 3, false},
		{"ckpt for a finished kernel", func(w *progressWire) {
			w.WarmupDone = true
			w.Ckpt, w.CkptKernel = []byte{1}, 1
		}, 3, false},
		{"kernels_done beyond mix", func(w *progressWire) {
			w.KernelsDone = 4
			w.MIPS = []float64{1, 1, 1, 1}
			w.NS = []float64{1, 1, 1, 1}
			w.Work = []float64{1, 1, 1, 1}
		}, 3, false},
		{"ckpt kernel beyond mix", func(w *progressWire) {
			w.WarmupDone = true
			w.KernelsDone = 3
			w.MIPS = []float64{1, 1, 1}
			w.NS = []float64{1, 1, 1}
			w.Work = []float64{1, 1, 1}
			w.Ckpt, w.CkptKernel = []byte{1}, 3
		}, 3, false},
	}
	for _, tc := range cases {
		w := valid()
		tc.mutate(&w)
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		_, err = decodeProgress(b, tc.nKernel)
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected reject: %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: inconsistent snapshot accepted", tc.name)
		}
	}
	if _, err := decodeProgress([]byte("{garbage"), 3); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestMeasureSpecDropsCorruptSnapshot proves the resume semantics end to
// end: a damaged takeover snapshot restarts the cell from scratch (never
// half-applies), the drop is counted in the registry, and the restarted
// cell's deterministic fields match a fresh measurement exactly.
func TestMeasureSpecDropsCorruptSnapshot(t *testing.T) {
	i, err := isa.Load("alpha64")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BuildMix(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{ISA: "alpha64", Buildset: "one_min"}
	base := Config{Scale: 1, MinDur: time.Millisecond, Metric: MetricWork}

	ref, resumed := MeasureSpec(progs, spec, base, nil, nil)
	if resumed || ref.Err != nil {
		t.Fatalf("reference measurement: resumed=%v err=%v", resumed, ref.Err)
	}

	// Structurally valid JSON, semantically impossible state: progress in
	// the current kernel before its warmup completed, and slice lengths
	// disagreeing with kernels_done.
	corrupt := []byte(`{"kernels_done":1,"used":50,"instret":50,"cur_instrs":7,"ckpt_kernel":-1}`)
	cfg := base
	cfg.Obs = obs.NewRegistry()
	got, resumed := MeasureSpec(progs, spec, cfg, corrupt, nil)
	if resumed {
		t.Fatal("corrupted snapshot reported as resumed")
	}
	if n := cfg.Obs.Counter("fabric.snapshot_dropped").Load(); n != 1 {
		t.Fatalf("fabric.snapshot_dropped = %d, want 1", n)
	}
	if got.Err != nil {
		t.Fatalf("restarted cell errored: %v", got.Err)
	}
	if got.Instret != ref.Instret || got.WorkUnits != ref.WorkUnits ||
		got.WorkPerInstr != ref.WorkPerInstr {
		t.Fatalf("restarted cell diverges from fresh measurement:\n got instret=%d work=%d wpi=%v\nwant instret=%d work=%d wpi=%v",
			got.Instret, got.WorkUnits, got.WorkPerInstr,
			ref.Instret, ref.WorkUnits, ref.WorkPerInstr)
	}

	// Truly garbled bytes take the same path.
	cfg.Obs = obs.NewRegistry()
	_, resumed = MeasureSpec(progs, spec, cfg, []byte{0xff, 0x00, 0x12}, nil)
	if resumed {
		t.Fatal("garbage snapshot reported as resumed")
	}
	if n := cfg.Obs.Counter("fabric.snapshot_dropped").Load(); n != 1 {
		t.Fatalf("fabric.snapshot_dropped = %d, want 1", n)
	}
}
