package expt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// BenchSchema identifies the benchmark-output JSON layout. Bump only with
// an additive change; CI's perf-smoke comparison and external tooling key
// on it.
const BenchSchema = "ssbench-bench/v1"

// BenchOut is the stable machine-readable form of one Table II sweep: the
// per-(ISA, interface) speed grid plus enough provenance to interpret it.
// MIPS values are host observations and vary run to run; work_per_instr is
// the deterministic work-based metric regression gates compare against.
type BenchOut struct {
	Schema string `json:"schema"`
	// Metric is the metric the sweep was driven under ("mips" or "work");
	// both per-cell numbers are emitted regardless.
	Metric string `json:"metric"`
	Scale  int    `json:"scale"`
	// Go records toolchain and host platform ("go1.x linux/amd64") —
	// provenance for the non-deterministic MIPS numbers.
	Go    string      `json:"go"`
	Cells []BenchCell `json:"cells"`
}

// BenchCell is one grid entry. Numbers are zero (and Error set) for cells
// whose measurement failed.
type BenchCell struct {
	ISA      string `json:"isa"`
	Buildset string `json:"buildset"`
	// Backend is "aot" for cells measured by the generated runner binary;
	// empty (omitted) for the in-process interpreter. Additive: pre-AOT
	// consumers see the same document for interpreter-only sweeps.
	Backend      string  `json:"backend,omitempty"`
	MIPS         float64 `json:"mips"`
	NsPerInstr   float64 `json:"ns_per_instr"`
	WorkPerInstr float64 `json:"work_per_instr"`
	Instret      uint64  `json:"instret"`
	WorkUnits    uint64  `json:"work_units"`
	Error        string  `json:"error,omitempty"`
}

// NewBenchOut assembles the benchmark document from a sweep's cells,
// preserving cell order (TableII's order is deterministic: buildset-major
// over the spec's declaration order).
func NewBenchOut(cfg Config, cells []Cell) BenchOut {
	out := BenchOut{
		Schema: BenchSchema,
		Metric: cfg.Metric.String(),
		Scale:  cfg.Scale,
		Go:     runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
	}
	for _, c := range cells {
		bc := BenchCell{
			ISA:          c.ISA,
			Buildset:     c.Buildset,
			Backend:      c.Backend,
			MIPS:         c.MIPS,
			NsPerInstr:   c.NsPerInstr,
			WorkPerInstr: c.WorkPerInstr,
			Instret:      c.Instret,
			WorkUnits:    c.WorkUnits,
		}
		if c.Err != nil {
			bc.Error = c.Err.Error()
		}
		out.Cells = append(out.Cells, bc)
	}
	return out
}

// WriteBenchJSON writes the benchmark document to path (indented, trailing
// newline) atomically enough for CI consumption: a partial file is never
// left behind on encode error because encoding happens before the write.
func WriteBenchJSON(path string, cfg Config, cells []Cell) error {
	data, err := json.MarshalIndent(NewBenchOut(cfg, cells), "", "  ")
	if err != nil {
		return fmt.Errorf("expt: encode bench json: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("expt: write bench json: %w", err)
	}
	return nil
}
