package expt

// The AOT measurement backend: instead of the in-process closure
// interpreter, a cell is measured by running the mix through the generated
// standalone runner binary (internal/aot) over the length-prefixed pipe
// protocol. The speed numbers differ — that is the point of the comparison
// — but the deterministic work metric must not: the host reconstructs work
// from the runner's execution profile with the interpreter's own accounting
// (aot.ComputeWork), so work-per-instruction is byte-identical across
// backends. VerifyBackendParity enforces exactly that for -backend=both.

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"singlespec/internal/aot"
	"singlespec/internal/core"
	"singlespec/internal/mach"
	"singlespec/internal/stats"
)

// Backend selects which execution engine measures sweep cells.
type Backend int

const (
	// BackendInterp measures with the in-process closure interpreter (the
	// default, and the only backend before the AOT subsystem existed).
	BackendInterp Backend = iota
	// BackendAOT measures with the generated standalone runner binary.
	BackendAOT
	// BackendBoth measures every cell under both backends; the sweep then
	// carries an interpreter cell and an AOT cell per (ISA, interface).
	BackendBoth
)

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "interp":
		return BackendInterp, nil
	case "aot":
		return BackendAOT, nil
	case "both":
		return BackendBoth, nil
	}
	return 0, fmt.Errorf("expt: unknown backend %q (want interp, aot, or both)", s)
}

// cellTag is the Cell.Backend value for cells measured under this backend.
func (b Backend) cellTag() string {
	if b == BackendAOT {
		return "aot"
	}
	return ""
}

func (b Backend) String() string {
	switch b {
	case BackendAOT:
		return "aot"
	case BackendBoth:
		return "both"
	}
	return "interp"
}

// defaultAOTCache lazily creates a per-process compile cache for sweeps
// that did not configure one. Cached binaries are keyed by source hash, so
// sharing the directory across cells (and reusing it across runs, when the
// caller passes a persistent path instead) is always sound.
var (
	aotCacheOnce sync.Once
	aotCachePath string
)

func defaultAOTCache() string {
	aotCacheOnce.Do(func() {
		if d, err := os.MkdirTemp("", "ssbench-aot-"); err == nil {
			aotCachePath = d
		}
	})
	return aotCachePath
}

// measureCellAOT is measureCell's out-of-process twin: one (ISA, interface)
// cell measured through the generated runner binary. The schedule mirrors
// the interpreter path — per kernel one warmup run, then measured runs
// until minDur (det: exactly one) — and each kernel gets a fresh runner
// process, since runner memory pages persist across in-process resets.
//
// The instruction budget is enforced by the runner itself (it counts
// retired instructions per attempt), so a runaway program is bounded even
// though the host cannot preempt the subprocess mid-run; the wall-clock
// deadline is checked between runs.
func measureCellAOT(p *Programs, buildset string, opts core.Options, minDur time.Duration, lim Limits, det bool, cfg Config) (Cell, error) {
	sim, err := core.Synthesize(p.ISA.Spec, buildset, opts)
	if err != nil {
		return Cell{}, err
	}
	cacheDir := cfg.AOTCacheDir
	if cacheDir == "" {
		cacheDir = defaultAOTCache()
	}
	conv := aot.RunnerConvFor(p.ISA.Conv)

	// Optional in-process transport: build + load the runner as a Go
	// plugin. Any unavailability (unsupported platform, cgo disabled)
	// falls back to the subprocess protocol — same payloads, same results.
	var ph *aot.PluginHandle
	if cfg.AOTPlugin {
		pb, perr := aot.BuildPlugin(sim, conv, cacheDir, cfg.Obs)
		if perr == nil {
			ph, perr = aot.LoadPlugin(pb.BinPath)
		}
		if perr != nil {
			if !errors.Is(perr, aot.ErrNoPlugin) {
				return Cell{}, perr
			}
			if cfg.Obs != nil {
				cfg.Obs.Counter("aot.plugin.fallback").Inc()
			}
		}
	}
	var b *aot.BuildResult
	if ph == nil {
		b, err = aot.Build(sim, conv, cacheDir, cfg.Obs)
		if err != nil {
			return Cell{}, err
		}
	}

	// Hard deadline per protocol exchange with the runner process: the
	// cooperative cell watchdog cannot preempt a blocked pipe read, so a
	// wedged runner is killed (SIGTERM, then SIGKILL) and surfaces as a
	// typed timeout the guard treats as transient. Defaults to a generous
	// backstop so a silent runner can never hang a cell even when no
	// -cell-timeout was requested.
	hard := cfg.CellTimeout
	if hard <= 0 {
		hard = aotHardDeadline
	}

	cell := Cell{ISA: p.ISA.Name, Buildset: buildset, Backend: "aot"}
	var used uint64
	var mips, ns, work []float64
	for idx, prog := range p.Progs {
		kname := p.Names[idx]
		err := func() error {
			// Per kernel one fresh session: a subprocess (runner memory
			// pages persist across in-process resets), or an exclusive
			// plugin session whose Init performs the same hard reset. The
			// pipe watchdog only applies to the subprocess transport; the
			// in-process plugin is bounded by the instruction budget alone.
			var r aot.Client
			if ph != nil {
				r = ph.Session()
			} else {
				sr, err := aot.SpawnWithDeadline(b.BinPath, cfg.Obs, hard)
				if err != nil {
					return fmt.Errorf("%s: %w", kname, err)
				}
				r = sr
			}
			defer r.Close()
			if err := r.Init(prog, nil); err != nil {
				return fmt.Errorf("%s: %w", kname, err)
			}
			runOnce := func() (instrs, wk, elapsedNs uint64, err error) {
				budget := uint64(1) << 62
				if lim.MaxInstr > 0 {
					if used >= lim.MaxInstr {
						return 0, 0, 0, fmt.Errorf("expt: %s/%s: %w after %d instructions",
							p.ISA.Name, buildset, errBudget, used)
					}
					budget = lim.MaxInstr - used
				}
				res, err := r.Run(budget, false, 0)
				if err != nil {
					return 0, 0, 0, err
				}
				used += res.Instret
				cell.Instret += res.Instret
				switch {
				case !res.Halted && res.Fault == mach.FaultNone:
					return 0, 0, 0, fmt.Errorf("expt: %s/%s: %w after %d instructions",
						p.ISA.Name, buildset, errBudget, used)
				case !res.Halted:
					return 0, 0, 0, fmt.Errorf("expt: %s/%s faulted (%d) at pc %#x",
						p.ISA.Name, buildset, res.Fault, res.PC)
				case res.ExitCode != 0:
					return 0, 0, 0, fmt.Errorf("expt: %s/%s exited %d", p.ISA.Name, buildset, res.ExitCode)
				}
				w, err := aot.ComputeWork(sim, res)
				if err != nil {
					return 0, 0, 0, err
				}
				cell.WorkUnits += w
				return maxU64(res.Instret, 1), w, maxU64(res.ElapsedNs, 1), nil
			}
			// Warmup: validates the program under this runner and charges the
			// cell totals, exactly like the interpreter path.
			if _, _, _, err := runOnce(); err != nil {
				return err
			}
			var curInstrs, curWork uint64
			var curElapsed time.Duration
			for {
				in, wk, el, err := runOnce()
				if err != nil {
					return err
				}
				curInstrs += in
				curWork += wk
				curElapsed += time.Duration(el)
				if det {
					break
				}
				if curElapsed >= minDur {
					break
				}
				if !lim.Deadline.IsZero() && !time.Now().Before(lim.Deadline) {
					break
				}
			}
			nsPer := float64(curElapsed.Nanoseconds()) / float64(curInstrs)
			mips = append(mips, 1e3/nsPer)
			ns = append(ns, nsPer)
			work = append(work, float64(curWork)/float64(curInstrs))
			return nil
		}()
		if err != nil {
			return Cell{}, err
		}
	}
	cell.MIPS = stats.GeoMean(mips)
	cell.NsPerInstr = stats.GeoMean(ns)
	cell.WorkPerInstr = stats.GeoMean(work)
	return cell, nil
}

// aotHardDeadline is the default hard per-exchange deadline for runner
// processes when no -cell-timeout is set. Generous — cells finish in
// seconds — but finite, so a wedged runner is always killed.
const aotHardDeadline = 2 * time.Minute

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// IsNoToolchain reports whether a cell failed because runner binaries
// cannot be built on this host (no go toolchain on PATH), so callers can
// skip rather than fail.
func IsNoToolchain(c Cell) bool {
	return c.Err != nil && errors.Is(c.Err, aot.ErrNoToolchain)
}

// VerifyBackendParity checks a both-backend sweep's deterministic parity:
// every (ISA, buildset) measured by both backends must report bit-identical
// work-per-instruction (the ratio is repeat-count-invariant, so this holds
// under either metric). Under the deterministic schedule (det, i.e.
// -metric work) the raw Instret and WorkUnits totals must match too.
// Host-time numbers (MIPS, ns/instr) are expected to differ — they are the
// measurement. Pairs where either side errored are skipped; cell errors
// are reported through the usual channel.
func VerifyBackendParity(cells []Cell, det bool) []error {
	type key struct{ isa, bs string }
	interp := map[key]Cell{}
	for _, c := range cells {
		if c.Backend == "" && c.Err == nil {
			interp[key{c.ISA, c.Buildset}] = c
		}
	}
	var errs []error
	for _, c := range cells {
		if c.Backend != "aot" || c.Err != nil {
			continue
		}
		ref, ok := interp[key{c.ISA, c.Buildset}]
		if !ok {
			continue
		}
		if c.WorkPerInstr != ref.WorkPerInstr {
			errs = append(errs, fmt.Errorf(
				"expt: %s/%s work-per-instruction diverges: interpreter %v, aot %v",
				c.ISA, c.Buildset, ref.WorkPerInstr, c.WorkPerInstr))
			continue
		}
		if det && (c.Instret != ref.Instret || c.WorkUnits != ref.WorkUnits) {
			errs = append(errs, fmt.Errorf(
				"expt: %s/%s totals diverge: interpreter instret=%d work=%d, aot instret=%d work=%d",
				c.ISA, c.Buildset, ref.Instret, ref.WorkUnits, c.Instret, c.WorkUnits))
		}
	}
	return errs
}
