package expt

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

const testFP = "fp-test-0001"

// sweepJobs builds the standard three-buildset alpha64 job list used by
// the resume tests.
func sweepJobs(t *testing.T) []cellJob {
	progs := testMix(t)
	var jobs []cellJob
	for _, bs := range []string{"one_min", "block_min", "one_all"} {
		jobs = append(jobs, cellJob{progs: progs, buildset: bs})
	}
	return jobs
}

// assertCellsEqualDeterministic compares the deterministic fields of two
// sweeps (wall observations and the Restored flag excluded by design).
func assertCellsEqualDeterministic(t *testing.T, want, got []Cell) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("cell counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.ISA != g.ISA || w.Buildset != g.Buildset {
			t.Fatalf("cell %d identity differs: %s/%s vs %s/%s", i, w.ISA, w.Buildset, g.ISA, g.Buildset)
		}
		if (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("cell %s: error presence differs: %v vs %v", w.Buildset, w.Err, g.Err)
		}
		if w.Instret != g.Instret {
			t.Errorf("cell %s: instret %d vs %d", w.Buildset, w.Instret, g.Instret)
		}
		if w.WorkUnits != g.WorkUnits {
			t.Errorf("cell %s: work units %d vs %d", w.Buildset, w.WorkUnits, g.WorkUnits)
		}
		if w.WorkPerInstr != g.WorkPerInstr {
			t.Errorf("cell %s: work/instr %v vs %v", w.Buildset, w.WorkPerInstr, g.WorkPerInstr)
		}
	}
}

// TestJournalRoundTrip writes cells to a journal, reopens it in resume
// mode, and checks the cells reload with lineage intact.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	ok := Cell{ISA: "alpha64", Buildset: "one_min", Instret: 1234, WorkUnits: 5678,
		WorkPerInstr: 4.6, Attempts: 1}
	ok.Stats.WatchdogChecks = 9
	if err := j.Record("alpha64/one_min/k", ok); err != nil {
		t.Fatal(err)
	}
	bad := Cell{ISA: "alpha64", Buildset: "one_all", Attempts: 1,
		Err: &CellError{ISA: "alpha64", Buildset: "one_all", Kind: CellBudget,
			Err: errors.New("budget blown"), Attempts: 1}}
	if err := j.Record("alpha64/one_all/k", bad); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, "run-2", testFP, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.ParentRunID() != "run-1" {
		t.Errorf("parent run id = %q, want run-1", j2.ParentRunID())
	}
	if j2.Restored() != 2 {
		t.Errorf("restored = %d, want 2", j2.Restored())
	}
	c, found := j2.Lookup("alpha64/one_min/k")
	if !found {
		t.Fatal("ok cell not found after reopen")
	}
	if !c.Restored || c.Instret != 1234 || c.WorkUnits != 5678 ||
		c.WorkPerInstr != 4.6 || c.Stats.WatchdogChecks != 9 {
		t.Errorf("reloaded cell lost fields: %+v", c)
	}
	c, found = j2.Lookup("alpha64/one_all/k")
	if !found {
		t.Fatal("failed cell not found after reopen")
	}
	if c.Err == nil || c.Err.Kind != CellBudget {
		t.Errorf("reloaded failure lost its kind: %+v", c.Err)
	}
}

// TestJournalGuards covers the open-time refusals: an existing journal
// without resume, and a fingerprint mismatch.
func TestJournalGuards(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var ee *JournalExistsError
	if _, err := OpenJournal(dir, "run-2", testFP, false); !errors.As(err, &ee) {
		t.Errorf("reopen without resume: err = %v, want JournalExistsError", err)
	}
	var fe *FingerprintMismatchError
	if _, err := OpenJournal(dir, "run-2", "other-config", true); !errors.As(err, &fe) {
		t.Fatalf("fingerprint skew: err = %v, want FingerprintMismatchError", err)
	}
	if fe.Got != testFP || fe.Want != "other-config" {
		t.Errorf("mismatch detail wrong: %+v", fe)
	}
}

// TestJournalTornTailDropped simulates a process killed mid-append: the
// incomplete final record must be dropped on resume (and overwritten by
// later appends), while the intact records survive.
func TestJournalTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k1", Cell{ISA: "alpha64", Buildset: "one_min", Instret: 10}); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k2", Cell{ISA: "alpha64", Buildset: "block_min", Instret: 20}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 3, 9} {
		torn := data[:len(data)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, "run-2", testFP, true)
		if err != nil {
			t.Fatalf("cut %d: torn tail not tolerated: %v", cut, err)
		}
		if _, found := j2.Lookup("k1"); !found {
			t.Errorf("cut %d: intact record k1 lost", cut)
		}
		if _, found := j2.Lookup("k2"); found {
			t.Errorf("cut %d: torn record k2 surfaced", cut)
		}
		// The journal must be appendable past the truncation point.
		if err := j2.Record("k2", Cell{ISA: "alpha64", Buildset: "block_min", Instret: 20}); err != nil {
			t.Fatalf("cut %d: append after torn-tail recovery: %v", cut, err)
		}
		j2.Close()
		j3, err := OpenJournal(dir, "run-3", testFP, true)
		if err != nil {
			t.Fatalf("cut %d: reopen after recovery: %v", cut, err)
		}
		if c, found := j3.Lookup("k2"); !found || c.Instret != 20 {
			t.Errorf("cut %d: re-recorded cell not readable", cut)
		}
		j3.Close()
	}
}

// TestJournalMidFileCorruptionRefused damages a record that has intact
// records after it: that is not a torn append, and resume must refuse with
// a typed error instead of quietly dropping completed work.
func TestJournalMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("k1", Cell{ISA: "alpha64", Buildset: "one_min", Instret: 10})
	j.Record("k2", Cell{ISA: "alpha64", Buildset: "block_min", Instret: 20})
	j.Close()

	path := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(path)
	// Records: header, k1, k2. Flip one payload byte inside k1 (the second
	// record), leaving k2 intact after it.
	hdrLen := int(binary.LittleEndian.Uint32(data))
	k1Off := 8 + hdrLen
	data[k1Off+8+4] ^= 0x20
	// Keep the framing parseable: only the payload is damaged, so the CRC
	// check is what must catch it.
	if crc32.ChecksumIEEE(data[k1Off+8:k1Off+8+int(binary.LittleEndian.Uint32(data[k1Off:]))]) ==
		binary.LittleEndian.Uint32(data[k1Off+4:]) {
		t.Fatal("test bug: flip did not change the CRC")
	}
	os.WriteFile(path, data, 0o644)

	var ce *CorruptJournalError
	if _, err := OpenJournal(dir, "run-2", testFP, true); !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption: err = %v, want CorruptJournalError", err)
	}
}

// TestSweepResumeMatchesUninterrupted is the cross-process resume
// differential: a sweep killed partway (simulated by truncating its journal
// to one completed cell plus a torn tail) and resumed must produce exactly
// the uninterrupted sweep's deterministic results, reloading the completed
// cell and computing the rest.
func TestSweepResumeMatchesUninterrupted(t *testing.T) {
	jobs := sweepJobs(t)
	base := Config{Workers: 2, Metric: MetricWork}

	// Reference: uninterrupted, journal-free.
	ref := runCells(jobs, base, 0)

	// First run: durable, completes everything.
	dir := t.TempDir()
	j1, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Journal = j1
	first := runCells(jobs, cfg, 0)
	j1.Close()
	assertCellsEqualDeterministic(t, ref, first)

	// Simulate the kill: keep the header and the first cell record, plus a
	// torn fragment of the second.
	path := filepath.Join(dir, JournalName)
	data, _ := os.ReadFile(path)
	off := 0
	for rec := 0; rec < 2; rec++ {
		off += 8 + int(binary.LittleEndian.Uint32(data[off:]))
	}
	os.WriteFile(path, data[:off+5], 0o644)

	// Resumed run: must reload cell 1, recompute cells 2 and 3.
	j2, err := OpenJournal(dir, "run-2", testFP, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() != 1 {
		t.Fatalf("journal restored %d cells, want 1", j2.Restored())
	}
	cfg.Journal = j2
	resumed := runCells(jobs, cfg, 0)
	assertCellsEqualDeterministic(t, ref, resumed)
	restored, computed := SweepCounts(resumed)
	if restored != 1 || computed != 2 {
		t.Errorf("lineage counts restored=%d computed=%d, want 1/2", restored, computed)
	}
	// Record order in the journal is completion order, so the surviving
	// record can be any of the three cells; exactly the one it names must
	// be marked restored.
	survivor := j2.restoredKeys[0]
	for i, c := range resumed {
		if want := jobs[i].key() == survivor; c.Restored != want {
			t.Errorf("cell %d Restored = %v, want %v", i, c.Restored, want)
		}
	}
}

// TestInterruptedSweepWindsDown closes the interrupt channel before the
// sweep starts: every cell must be marked interrupted without running, and
// none may be journaled.
func TestInterruptedSweepWindsDown(t *testing.T) {
	jobs := sweepJobs(t)
	dir := t.TempDir()
	j, err := OpenJournal(dir, "run-1", testFP, false)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	cfg := Config{Workers: 2, Metric: MetricWork, Journal: j, Interrupt: stop}
	cells := runCells(jobs, cfg, 0)
	j.Close()
	for _, c := range cells {
		if c.Err == nil || c.Err.Kind != CellInterrupted {
			t.Errorf("cell %s/%s not marked interrupted: %+v", c.ISA, c.Buildset, c.Err)
		}
	}
	j2, err := OpenJournal(dir, "run-2", testFP, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() != 0 {
		t.Errorf("interrupted cells were journaled: restored = %d", j2.Restored())
	}
}

// TestMidRunInterruptIsTyped interrupts a cell that is already executing:
// the cooperative watchdog must stop it at a chunk boundary with the
// interrupted kind (not retried), so a signal handler never waits for a
// long cell to finish.
func TestMidRunInterruptIsTyped(t *testing.T) {
	progs := testMix(t)
	stop := make(chan struct{})
	var once atomic.Bool
	cfg := Config{
		Metric:    MetricWork,
		Interrupt: stop,
		CkptEvery: 500, // fine chunking so the interrupt lands mid-cell
		testChunkHook: func(r *Runner) {
			if once.CompareAndSwap(false, true) {
				close(stop)
			}
		},
	}
	cells := runCells([]cellJob{{progs: progs, buildset: "one_min"}}, cfg, 0)
	ce := cells[0].Err
	if ce == nil || ce.Kind != CellInterrupted {
		t.Fatalf("cell error = %+v, want interrupted", ce)
	}
	if ce.Attempts != 1 {
		t.Errorf("interrupted cell was retried: attempts = %d", ce.Attempts)
	}
	if !errors.Is(ce, errInterrupted) {
		t.Error("CellError does not unwrap to the interrupt sentinel")
	}
}

// TestRunnerMidRunCheckpointResume is the runner-level differential for
// the in-cell resume path: a run checkpointed mid-flight (through the full
// binary encode/decode) and continued on a fresh runner must report the
// same instruction and work totals as the uninterrupted run.
func TestRunnerMidRunCheckpointResume(t *testing.T) {
	progs := testMix(t)
	sim := mustSynth(t, progs.ISA, "one_min")
	prog := progs.Progs[0]

	ref := NewRunner(sim, progs.ISA, prog)
	wantIn, wantWk, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: capture at a fine cadence, stop mid-run via an
	// injected panic, resume on a fresh runner.
	broken := NewRunner(sim, progs.ISA, prog)
	var lastCkpt []byte
	stopAt := 3
	chunks := 0
	func() {
		defer func() { recover() }()
		broken.RunLimited(Limits{
			ckptEvery: 400,
			ckptSink: func(rc *runCheckpoint) {
				b, err := rc.encode()
				if err != nil {
					t.Error(err)
					return
				}
				lastCkpt = b
			},
			chunkHook: func(r *Runner) {
				chunks++
				if chunks == stopAt {
					panic("injected mid-run death")
				}
			},
		})
	}()
	if lastCkpt == nil {
		t.Fatal("no checkpoint captured before the injected death")
	}
	rc, err := decodeRunCheckpoint(lastCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if rc.state.Instret == 0 || rc.state.Instret >= wantIn {
		t.Fatalf("checkpoint not mid-run: instret %d of %d", rc.state.Instret, wantIn)
	}
	resumed := NewRunner(sim, progs.ISA, prog)
	if err := resumed.restoreFrom(rc); err != nil {
		t.Fatal(err)
	}
	gotIn, gotWk, err := resumed.RunLimited(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if gotIn != wantIn || gotWk != wantWk {
		t.Fatalf("resumed run totals (%d instr, %d work) differ from uninterrupted (%d, %d)",
			gotIn, gotWk, wantIn, wantWk)
	}
}

// TestGuardRetryResumesFromCheckpoint is the guard-level differential: a
// cell whose first attempt dies mid-kernel must, on its bounded retry,
// resume from the last in-cell checkpoint and still report exactly the
// clean run's deterministic totals with Attempts = 2.
func TestGuardRetryResumesFromCheckpoint(t *testing.T) {
	jobs := []cellJob{{progs: testMix(t), buildset: "one_min"}}
	clean := runCells(jobs, Config{Metric: MetricWork}, 0)
	if clean[0].Err != nil {
		t.Fatal(clean[0].Err)
	}

	var chunks atomic.Int64
	cfg := Config{
		Metric:    MetricWork,
		CkptEvery: 400,
		testChunkHook: func(r *Runner) {
			// Die deep into the cell, once: past several kernels' worth of
			// chunks, with checkpoints captured along the way.
			if chunks.Add(1) == 40 {
				panic("injected mid-cell death")
			}
		},
	}
	cells := runCells(jobs, cfg, 0)
	if cells[0].Err != nil {
		t.Fatalf("retry did not recover: %v", cells[0].Err)
	}
	if cells[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", cells[0].Attempts)
	}
	if cells[0].Instret != clean[0].Instret {
		t.Errorf("instret %d differs from clean run %d", cells[0].Instret, clean[0].Instret)
	}
	if cells[0].WorkUnits != clean[0].WorkUnits {
		t.Errorf("work units %d differ from clean run %d", cells[0].WorkUnits, clean[0].WorkUnits)
	}
	if cells[0].WorkPerInstr != clean[0].WorkPerInstr {
		t.Errorf("work/instr %v differs from clean run %v", cells[0].WorkPerInstr, clean[0].WorkPerInstr)
	}
}

// TestFingerprintSensitivity checks the fingerprint covers what determines
// results and ignores host knobs.
func TestFingerprintSensitivity(t *testing.T) {
	base := Config{Scale: 1, Metric: MetricWork}
	fp := Fingerprint("table2", base)
	if fp != Fingerprint("table2", base) {
		t.Error("fingerprint not stable")
	}
	host := base
	host.Workers = 7
	host.CkptEvery = 999
	if Fingerprint("table2", host) != fp {
		t.Error("host knobs changed the fingerprint")
	}
	for name, other := range map[string]Config{
		"scale":  {Scale: 2, Metric: MetricWork},
		"metric": {Scale: 1, Metric: MetricMIPS},
		"budget": {Scale: 1, Metric: MetricWork, MaxCellInstr: 5},
	} {
		if Fingerprint("table2", other) == fp {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
	if Fingerprint("ablations", base) == fp {
		t.Error("table change did not change the fingerprint")
	}
}
