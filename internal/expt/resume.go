package expt

// Durable sweeps: a run journal makes the experiment engine resumable. As
// each cell completes with a deterministic outcome (ok, failed, budget),
// one record is appended and fsynced; a rerun with the same configuration
// opens the journal, reloads those cells, and computes only what is
// missing. The format is append-only with a CRC per record, so a process
// killed mid-append leaves a torn final record that is detected, dropped,
// and overwritten by the resumed run — never silently half-parsed. A CRC
// failure anywhere *before* the final record is not a torn write (appends
// only tear at the tail) and is reported as corruption instead.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// JournalName is the file name of a run journal inside its directory.
const JournalName = "journal.ssj"

// maxJournalRecord bounds one record's payload; real records are a few KiB.
const maxJournalRecord = 1 << 24

// journalRecord is the JSON payload of one journal record. Type is "run"
// for a lineage header (one per process that wrote to the journal), "cell"
// for a completed sweep cell, or "raw" for an opaque completion payload
// owned by another package (fault-campaign cells ride this way).
type journalRecord struct {
	Type string `json:"type"`

	// Run-header fields.
	RunID       string `json:"run_id,omitempty"`
	ParentRunID string `json:"parent_run_id,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Cell fields.
	Key    string    `json:"key,omitempty"`
	Status string    `json:"status,omitempty"`
	ErrMsg string    `json:"err,omitempty"`
	Cell   *cellData `json:"cell,omitempty"`

	// Raw payload (Type "raw" only): the owning package's own encoding,
	// protected by the same framing CRC as everything else.
	Raw json.RawMessage `json:"raw,omitempty"`
}

// cellData is the journaled slice of a Cell: every deterministic field plus
// the wall observations (which reload as historical values). The live
// Cell.Err is reconstructed from Status/ErrMsg.
type cellData struct {
	ISA          string    `json:"isa"`
	Buildset     string    `json:"buildset"`
	Backend      string    `json:"backend,omitempty"`
	MIPS         float64   `json:"mips,omitempty"`
	NsPerInstr   float64   `json:"ns_per_instr,omitempty"`
	WorkPerInstr float64   `json:"work_per_instr,omitempty"`
	Instret      uint64    `json:"instret"`
	WorkUnits    uint64    `json:"work_units"`
	Attempts     int       `json:"attempts"`
	WallNS       int64     `json:"wall_ns"`
	Stats        CellStats `json:"stats"`
}

func toCellData(c Cell) *cellData {
	return &cellData{
		ISA: c.ISA, Buildset: c.Buildset, Backend: c.Backend,
		MIPS: c.MIPS, NsPerInstr: c.NsPerInstr, WorkPerInstr: c.WorkPerInstr,
		Instret: c.Instret, WorkUnits: c.WorkUnits,
		Attempts: c.Attempts, WallNS: int64(c.Wall),
		Stats: c.Stats,
	}
}

func (d *cellData) toCell(status, errMsg string) Cell {
	c := Cell{
		ISA: d.ISA, Buildset: d.Buildset, Backend: d.Backend,
		MIPS: d.MIPS, NsPerInstr: d.NsPerInstr, WorkPerInstr: d.WorkPerInstr,
		Instret: d.Instret, WorkUnits: d.WorkUnits,
		Attempts: d.Attempts, Wall: time.Duration(d.WallNS),
		Stats:    d.Stats,
		Restored: true,
	}
	if status != "ok" {
		kind := CellFailed
		for _, k := range []CellErrorKind{CellPanic, CellTimeout, CellBudget, CellInterrupted, CellLost} {
			if status == k.String() {
				kind = k
			}
		}
		c.Err = &CellError{ISA: d.ISA, Buildset: d.Buildset, Kind: kind,
			Err: fmt.Errorf("%s (restored from journal)", errMsg), Attempts: d.Attempts}
	}
	return c
}

// FingerprintMismatchError reports a journal written under a different
// sweep configuration than the resuming run's: resuming would mix
// incompatible results.
type FingerprintMismatchError struct {
	Path string
	Got  string // fingerprint in the journal
	Want string // fingerprint of the resuming run
}

func (e *FingerprintMismatchError) Error() string {
	return fmt.Sprintf("expt: journal %s was written by a different configuration (fingerprint %.12s…, this run is %.12s…); use a fresh -resume-dir or matching flags",
		e.Path, e.Got, e.Want)
}

// JournalExistsError reports an existing journal opened without resume: the
// caller must opt into resuming (or use a fresh directory) so a stale
// journal is never silently mixed into a new sweep.
type JournalExistsError struct{ Path string }

func (e *JournalExistsError) Error() string {
	return fmt.Sprintf("expt: journal %s already exists; pass -resume to continue it or use a fresh -resume-dir", e.Path)
}

// CorruptJournalError reports damage before the final record — not a torn
// append (those only occur at the tail and are dropped) but real
// mid-file corruption, which resuming must refuse to build on.
type CorruptJournalError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptJournalError) Error() string {
	return fmt.Sprintf("expt: journal %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// RunJournal is the append-only completion journal of one sweep directory.
// It is safe for concurrent use by the sweep's workers.
type RunJournal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	runID       string
	parentRunID string

	cells map[string]journalRecord
	// restoredKeys are the cells loaded from a previous run, in journal
	// order — the resume lineage the manifest reports.
	restoredKeys []string
}

// OpenJournal opens (or creates) the run journal in dir.
//
// A fresh journal is stamped with runID and fingerprint. When a journal
// already exists, resume must be true (else *JournalExistsError), its
// fingerprint must match (else *FingerprintMismatchError), and its
// completed cells become available via Lookup; a torn final record is
// dropped and the file truncated back to the last good record. A new
// lineage header is then appended recording runID with the previous run as
// parent.
func OpenJournal(dir, runID, fingerprint string, resume bool) (*RunJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, JournalName)
	j := &RunJournal{path: path, runID: runID, cells: map[string]journalRecord{}}

	data, err := os.ReadFile(path)
	exists := err == nil && len(data) > 0
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if exists && !resume {
		return nil, &JournalExistsError{Path: path}
	}

	goodLen := int64(0)
	if exists {
		recs, good, lerr := parseJournal(path, data)
		if lerr != nil {
			return nil, lerr
		}
		goodLen = good
		prevFP := ""
		for _, r := range recs {
			switch r.Type {
			case "run":
				prevFP = r.Fingerprint
				j.parentRunID = r.RunID
			case "cell", "raw":
				if _, dup := j.cells[r.Key]; !dup {
					j.restoredKeys = append(j.restoredKeys, r.Key)
				}
				j.cells[r.Key] = r
			}
		}
		if prevFP != fingerprint {
			return nil, &FingerprintMismatchError{Path: path, Got: prevFP, Want: fingerprint}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail, if any, before appending past it.
	if err := f.Truncate(goodLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	if err := j.append(journalRecord{
		Type: "run", RunID: runID, ParentRunID: j.parentRunID, Fingerprint: fingerprint,
	}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// parseJournal walks the record stream, returning the records and the byte
// length of the valid prefix. A damaged or incomplete FINAL record is
// tolerated (torn append) and excluded from the valid prefix; damage with
// further data after it is a *CorruptJournalError.
func parseJournal(path string, data []byte) ([]journalRecord, int64, error) {
	var recs []journalRecord
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn tail: a partial header
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxJournalRecord || off+8+length > len(data) {
			// Claimed extent runs past EOF (or is garbage exceeding it):
			// only tolerable as the final, torn append.
			break
		}
		payload := data[off+8 : off+8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+8+length == len(data) {
				break // torn final record
			}
			return nil, 0, &CorruptJournalError{Path: path, Offset: int64(off),
				Reason: "record CRC mismatch with further records after it"}
		}
		var r journalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			if off+8+length == len(data) {
				break
			}
			return nil, 0, &CorruptJournalError{Path: path, Offset: int64(off),
				Reason: "record payload is not valid JSON: " + err.Error()}
		}
		recs = append(recs, r)
		off += 8 + length
	}
	return recs, int64(off), nil
}

// append encodes and durably appends one record (caller holds no lock;
// append takes it).
func (j *RunJournal) append(r journalRecord) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return j.f.Sync()
}

// Lookup returns the journaled result for a cell key, if a previous run
// completed it.
func (j *RunJournal) Lookup(key string) (Cell, bool) {
	j.mu.Lock()
	r, ok := j.cells[key]
	j.mu.Unlock()
	if !ok || r.Cell == nil {
		return Cell{}, false
	}
	return r.Cell.toCell(r.Status, r.ErrMsg), true
}

// Record journals one completed cell. Only deterministic outcomes belong
// here (ok, failed, budget); transient outcomes (panic, timeout,
// interrupted) are the caller's to re-run.
func (j *RunJournal) Record(key string, c Cell) error {
	r := journalRecord{Type: "cell", Key: key, Status: "ok", Cell: toCellData(c)}
	if c.Err != nil {
		r.Status = c.Err.Kind.String()
		r.ErrMsg = c.Err.Err.Error()
	}
	if err := j.append(r); err != nil {
		return err
	}
	j.mu.Lock()
	j.cells[key] = r
	j.mu.Unlock()
	return nil
}

// RecordRaw journals one completed cell whose payload another package
// owns (encoding and decoding included); the journal only guarantees the
// bytes survive intact. Like Record, only deterministic outcomes belong
// here.
func (j *RunJournal) RecordRaw(key string, raw []byte) error {
	r := journalRecord{Type: "raw", Key: key, Raw: json.RawMessage(raw)}
	if err := j.append(r); err != nil {
		return err
	}
	j.mu.Lock()
	j.cells[key] = r
	j.mu.Unlock()
	return nil
}

// LookupRaw returns the journaled raw payload for a key, if a previous run
// recorded one with RecordRaw.
func (j *RunJournal) LookupRaw(key string) ([]byte, bool) {
	j.mu.Lock()
	r, ok := j.cells[key]
	j.mu.Unlock()
	if !ok || r.Type != "raw" || len(r.Raw) == 0 {
		return nil, false
	}
	return append([]byte(nil), r.Raw...), true
}

// RunID returns this run's lineage id; ParentRunID returns the id of the
// run this one resumed from ("" for a fresh journal).
func (j *RunJournal) RunID() string       { return j.runID }
func (j *RunJournal) ParentRunID() string { return j.parentRunID }

// Restored returns the number of cells loaded from previous runs.
func (j *RunJournal) Restored() int { return len(j.restoredKeys) }

// Close closes the journal file.
func (j *RunJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ---- worker segment files ----
//
// A fabric coordinator persists every result a worker delivers into a
// per-worker segment file in the run journal's CRC-framed record format,
// then merges the segments back at sweep end. The round trip means the
// merged tables are built from records that survived framing, CRC, and
// JSON validation end to end — and it gives the merge the same damage
// semantics as resume: a torn final record (the append that was in flight
// when a process died) is dropped; corruption anywhere before it refuses
// the merge with a *CorruptJournalError naming the file and offset.

// KeyedCell pairs a journaled cell with its job key.
type KeyedCell struct {
	Key  string
	Cell Cell
}

// Segment is an append-only per-worker completion journal.
type Segment struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// CreateSegment creates (truncating any previous file) a segment stamped
// with a lineage header carrying the worker id and the run's config
// fingerprint; LoadSegment verifies the fingerprint so a stale segment
// from an old run can never be merged into a new one.
func CreateSegment(path, workerID, fingerprint string) (*Segment, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Segment{f: f, path: path}
	if err := s.append(journalRecord{Type: "run", RunID: workerID, Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Append durably appends one completed cell.
func (s *Segment) Append(key string, c Cell) error {
	r := journalRecord{Type: "cell", Key: key, Status: "ok", Cell: toCellData(c)}
	if c.Err != nil {
		r.Status = c.Err.Kind.String()
		r.ErrMsg = c.Err.Err.Error()
	}
	return s.append(r)
}

// AppendRaw durably appends one completed cell in another package's own
// encoding (see RunJournal.RecordRaw).
func (s *Segment) AppendRaw(key string, raw []byte) error {
	return s.append(journalRecord{Type: "raw", Key: key, Raw: json.RawMessage(raw)})
}

func (s *Segment) append(r journalRecord) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(buf); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close closes the segment file.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// LoadSegment reads a segment file back: its fingerprint header must match
// fingerprint (a mismatched segment is a stale worker's and is refused with
// *FingerprintMismatchError), a torn final record is dropped, and mid-file
// corruption returns the parser's *CorruptJournalError with the damage
// offset. Cells come back marked computed (not Restored).
func LoadSegment(path, fingerprint string) ([]KeyedCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _, err := parseJournal(path, data)
	if err != nil {
		return nil, err
	}
	var out []KeyedCell
	sawHeader := false
	for _, r := range recs {
		switch r.Type {
		case "run":
			sawHeader = true
			if r.Fingerprint != fingerprint {
				return nil, &FingerprintMismatchError{Path: path, Got: r.Fingerprint, Want: fingerprint}
			}
		case "cell":
			if r.Cell == nil {
				continue
			}
			c := r.Cell.toCell(r.Status, r.ErrMsg)
			c.Restored = false
			out = append(out, KeyedCell{Key: r.Key, Cell: c})
		}
	}
	if !sawHeader {
		return nil, &CorruptJournalError{Path: path, Offset: 0, Reason: "segment has no lineage header"}
	}
	return out, nil
}

// KeyedRaw pairs a raw completion payload with its key.
type KeyedRaw struct {
	Key string
	Raw []byte
}

// LoadSegmentRaw reads a segment of raw-payload records back with the same
// header/fingerprint/torn-tail/corruption semantics as LoadSegment.
func LoadSegmentRaw(path, fingerprint string) ([]KeyedRaw, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	recs, _, err := parseJournal(path, data)
	if err != nil {
		return nil, err
	}
	var out []KeyedRaw
	sawHeader := false
	for _, r := range recs {
		switch r.Type {
		case "run":
			sawHeader = true
			if r.Fingerprint != fingerprint {
				return nil, &FingerprintMismatchError{Path: path, Got: r.Fingerprint, Want: fingerprint}
			}
		case "raw":
			if len(r.Raw) == 0 {
				continue
			}
			out = append(out, KeyedRaw{Key: r.Key, Raw: append([]byte(nil), r.Raw...)})
		}
	}
	if !sawHeader {
		return nil, &CorruptJournalError{Path: path, Offset: 0, Reason: "segment has no lineage header"}
	}
	return out, nil
}

// Fingerprint derives the configuration fingerprint a journal is stamped
// with: everything that determines which cells a sweep produces and what
// their deterministic fields contain. Host knobs that merely change how
// the same cells are computed (worker count, timeouts, checkpoint cadence)
// are deliberately excluded so a sweep can resume under different host
// conditions.
func Fingerprint(table string, cfg Config) string {
	keys := []string{
		"table=" + table,
		fmt.Sprintf("scale=%d", cfg.Scale),
		"metric=" + cfg.Metric.String(),
		fmt.Sprintf("max_cell_instr=%d", cfg.MaxCellInstr),
		"backend=" + cfg.Backend.String(),
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
