package expt

import (
	"testing"
	"time"
)

// TestRetryDelayDeterministicSchedule: the whole point of seeded jitter is
// that a retry schedule is a pure function of (seed, key, attempt, base) —
// reproducible for debugging, desynchronized across seeds and keys.
func TestRetryDelayDeterministicSchedule(t *testing.T) {
	const base = 25 * time.Millisecond
	schedule := func(seed uint64, key string) []time.Duration {
		out := make([]time.Duration, 0, 8)
		for attempt := 1; attempt <= 8; attempt++ {
			out = append(out, RetryDelay(seed, key, attempt, base))
		}
		return out
	}

	a := schedule(42, "alpha64/one_all_yes")
	b := schedule(42, "alpha64/one_all_yes")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same inputs gave %v then %v", i+1, a[i], b[i])
		}
	}

	// Different seeds and different keys must desynchronize: at least one
	// attempt in the schedule differs (with ±25% jitter over 8 attempts,
	// full collision would indicate the jitter inputs are being ignored).
	differs := func(x, y []time.Duration) bool {
		for i := range x {
			if x[i] != y[i] {
				return true
			}
		}
		return false
	}
	if !differs(a, schedule(43, "alpha64/one_all_yes")) {
		t.Error("schedules for different seeds are identical: seed is not feeding the jitter")
	}
	if !differs(a, schedule(42, "arm32/one_all_yes")) {
		t.Error("schedules for different keys are identical: key is not feeding the jitter")
	}
}

// TestRetryDelayExponentialWithBoundedJitter: each delay is the doubled
// base with at most ±25% jitter, capped at 2s.
func TestRetryDelayExponentialWithBoundedJitter(t *testing.T) {
	const base = 25 * time.Millisecond
	for seed := uint64(0); seed < 20; seed++ {
		for attempt := 1; attempt <= 12; attempt++ {
			d := RetryDelay(seed, "cell-key", attempt, base)
			nominal := base << uint(attempt-1)
			if nominal <= 0 || nominal > maxRetryBackoff {
				nominal = maxRetryBackoff
			}
			lo := nominal - nominal/4
			hi := nominal + nominal/4
			if hi > maxRetryBackoff {
				hi = maxRetryBackoff
			}
			if d < lo || d > hi {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v]", seed, attempt, d, lo, hi)
			}
		}
	}
}

// TestRetryDelayCapAndDegenerateInputs: the 2s cap holds even where the
// shifted base overflows, and degenerate inputs yield zero delay.
func TestRetryDelayCapAndDegenerateInputs(t *testing.T) {
	if d := RetryDelay(1, "k", 60, time.Second); d > maxRetryBackoff {
		t.Errorf("overflowing shift: delay %v exceeds cap %v", d, maxRetryBackoff)
	}
	if d := RetryDelay(1, "k", 0, time.Second); d != 0 {
		t.Errorf("attempt 0: want 0, got %v", d)
	}
	if d := RetryDelay(1, "k", 1, 0); d != 0 {
		t.Errorf("zero base: want 0, got %v", d)
	}
	if d := RetryDelay(1, "k", 1, -time.Second); d != 0 {
		t.Errorf("negative base: want 0, got %v", d)
	}
}

// TestConfigRetryDelayKnobs: zero RetryBackoff means the default base,
// negative disables backoff entirely (the engine's tests rely on that to
// stay fast), and the seed flows through.
func TestConfigRetryDelayKnobs(t *testing.T) {
	if d := (Config{}).retryDelay("k", 1); d == 0 {
		t.Error("zero RetryBackoff should resolve to the default base, got 0")
	}
	want := RetryDelay(0, "k", 1, DefaultRetryBackoff)
	if d := (Config{}).retryDelay("k", 1); d != want {
		t.Errorf("default knobs: got %v, want %v", d, want)
	}
	if d := (Config{RetryBackoff: -1}).retryDelay("k", 1); d != 0 {
		t.Errorf("negative RetryBackoff should disable backoff, got %v", d)
	}
	seeded := RetryDelay(7, "k", 2, 50*time.Millisecond)
	if d := (Config{RetrySeed: 7, RetryBackoff: 50 * time.Millisecond}).retryDelay("k", 2); d != seeded {
		t.Errorf("seeded knobs: got %v, want %v", d, seeded)
	}
}
