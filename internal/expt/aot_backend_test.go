package expt

import (
	"errors"
	"testing"
	"time"

	"singlespec/internal/aot"
	"singlespec/internal/core"
	"singlespec/internal/isa"
)

// TestAOTBackendCellParity measures one cell under both backends with the
// deterministic schedule and requires exact agreement on everything the
// work metric reports: per-cell totals and the geomean work-per-instruction
// that lands in Table II and the bench JSON.
func TestAOTBackendCellParity(t *testing.T) {
	i, err := isa.Load("alpha64")
	if err != nil {
		t.Fatal(err)
	}
	progs, err := BuildMix(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Metric: MetricWork, AOTCacheDir: t.TempDir()}
	for _, bs := range []string{"one_min", "block_all", "step_all"} {
		ref, err := measureCell(progs, bs, core.Options{}, time.Millisecond, Limits{}, true, nil)
		if err != nil {
			t.Fatalf("%s: interp: %v", bs, err)
		}
		got, err := measureCellAOT(progs, bs, core.Options{}, time.Millisecond, Limits{}, true, cfg)
		if errors.Is(err, aot.ErrNoToolchain) {
			t.Skip("skipping: go toolchain not available on PATH")
		}
		if err != nil {
			t.Fatalf("%s: aot: %v", bs, err)
		}
		if got.Backend != "aot" {
			t.Fatalf("%s: aot cell not tagged: %+v", bs, got)
		}
		if got.Instret != ref.Instret || got.WorkUnits != ref.WorkUnits {
			t.Errorf("%s: totals diverge: interp instret=%d work=%d, aot instret=%d work=%d",
				bs, ref.Instret, ref.WorkUnits, got.Instret, got.WorkUnits)
		}
		if got.WorkPerInstr != ref.WorkPerInstr {
			t.Errorf("%s: work/instr diverges: interp %v, aot %v", bs, ref.WorkPerInstr, got.WorkPerInstr)
		}
	}
}

// TestVerifyBackendParity exercises the parity checker itself on synthetic
// cells: agreement, work divergence, and det-only total divergence.
func TestVerifyBackendParity(t *testing.T) {
	mk := func(backend string, wpi float64, instret, work uint64) Cell {
		return Cell{ISA: "alpha64", Buildset: "one_min", Backend: backend,
			WorkPerInstr: wpi, Instret: instret, WorkUnits: work}
	}
	ok := []Cell{mk("", 31.5, 100, 3150), mk("aot", 31.5, 100, 3150)}
	if errs := VerifyBackendParity(ok, true); len(errs) != 0 {
		t.Fatalf("agreeing cells reported divergent: %v", errs)
	}
	wpi := []Cell{mk("", 31.5, 100, 3150), mk("aot", 31.6, 100, 3150)}
	if errs := VerifyBackendParity(wpi, false); len(errs) != 1 {
		t.Fatalf("work/instr divergence not reported: %v", errs)
	}
	totals := []Cell{mk("", 31.5, 100, 3150), mk("aot", 31.5, 200, 6300)}
	if errs := VerifyBackendParity(totals, true); len(errs) != 1 {
		t.Fatalf("det total divergence not reported: %v", errs)
	}
	if errs := VerifyBackendParity(totals, false); len(errs) != 0 {
		t.Fatalf("totals must not be compared outside the det schedule: %v", errs)
	}
}

// TestCellJobKeyBackend pins the journal identity contract: interpreter
// keys are unchanged from pre-AOT journals, AOT jobs get their own keys.
func TestCellJobKeyBackend(t *testing.T) {
	i, err := isa.Load("alpha64")
	if err != nil {
		t.Fatal(err)
	}
	p := &Programs{ISA: i}
	interp := cellJob{progs: p, buildset: "one_min"}
	aotJob := cellJob{progs: p, buildset: "one_min", backend: BackendAOT}
	if interp.key() == aotJob.key() {
		t.Fatal("interp and aot jobs share a journal key")
	}
	if want := "alpha64/one_min/{NoTranslate:false NoDCE:false ForceRecords:false MaxBlockLen:0 CacheCap:0}"; interp.key() != want {
		t.Fatalf("interp key changed: %q (pre-AOT journals would not resume)", interp.key())
	}
}

// TestParseBackend covers the flag axis.
func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"", BackendInterp}, {"interp", BackendInterp}, {"aot", BackendAOT}, {"both", BackendBoth}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
}
