// Package expt is the experiment harness that regenerates the paper's
// evaluation artifacts: Table I (description characteristics), Table II
// (simulation speed per interface), Table III (costs of detail), and the
// footnote-5 interpreted-vs-translated ablation. It is shared by the
// ssbench tool and the repository's top-level benchmarks.
package expt

import (
	"fmt"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/mach"
	"singlespec/internal/stats"
	"singlespec/internal/sysemu"
)

// MixEntry is one workload of the Table II benchmark mix.
type MixEntry struct {
	Kernel string
	N      int
}

// Mix returns the six-kernel benchmark mix (mirroring the paper's six
// SPECint benchmarks). scale multiplies problem sizes: 1 for tests, larger
// for real measurement runs.
func Mix(scale int) []MixEntry {
	if scale < 1 {
		scale = 1
	}
	return []MixEntry{
		{"sieve", 2000 * scale},
		{"fib_iter", 20000 * scale},
		{"crc32", 1024 * scale},
		{"listchase", 4096 * scale}, // must stay a power of two
		{"bubblesort", 96 * scale},
		{"hashmix", 10000 * scale},
	}
}

// Programs holds the assembled mix for one ISA.
type Programs struct {
	ISA   *isa.ISA
	Progs []*asm.Program
	Names []string
}

// BuildMix assembles the benchmark mix for one ISA.
func BuildMix(i *isa.ISA, scale int) (*Programs, error) {
	out := &Programs{ISA: i}
	for _, me := range Mix(scale) {
		k := kernels.ByName(me.Kernel)
		if k == nil {
			return nil, fmt.Errorf("expt: unknown kernel %q", me.Kernel)
		}
		n := me.N
		if me.Kernel == "listchase" {
			// Round to a power of two.
			p := 1
			for p < n {
				p <<= 1
			}
			n = p
		}
		prog, err := kernels.BuildProgram(i, k.Build(n))
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", me.Kernel, err)
		}
		out.Progs = append(out.Progs, prog)
		out.Names = append(out.Names, me.Kernel)
	}
	return out, nil
}

// RunOnce executes one assembled program to completion on a fresh machine
// and returns retired instructions and accumulated work units.
func RunOnce(sim *core.Sim, i *isa.ISA, prog *asm.Program) (instrs, work uint64, err error) {
	r := NewRunner(sim, i, prog)
	return r.Run()
}

// Runner repeatedly executes one program on one synthesized simulator,
// resetting architectural state between runs while keeping the translation
// caches warm (so translation amortizes, as in the paper's 4-billion-
// instruction measurement runs).
type Runner struct {
	sim   *core.Sim
	i     *isa.ISA
	prog  *asm.Program
	m     *mach.Machine
	emu   *sysemu.Emulator
	x     *core.Exec
	runs  int
	prevW uint64
	// checks counts cooperative watchdog checks (one per execution chunk
	// RunLimited dispatched); deterministic for a fixed instruction stream.
	checks uint64
	// resumed marks the runner as primed with a mid-run checkpoint (see
	// restoreFrom): the next RunLimited call continues that run instead of
	// resetting, and resumeWork is the work the run had already accumulated
	// before the restore point.
	resumed    bool
	resumeWork uint64
}

// NewRunner binds a simulator, ISA, and program.
func NewRunner(sim *core.Sim, i *isa.ISA, prog *asm.Program) *Runner {
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	return &Runner{sim: sim, i: i, prog: prog, m: m, emu: emu, x: sim.NewExec(m)}
}

func (r *Runner) reset() {
	for _, sp := range r.m.Spaces {
		for k := range sp.Vals {
			sp.Vals[k] = 0
		}
	}
	r.m.Halted = false
	r.m.ExitCode = 0
	r.m.Instret = 0
	r.m.Journal.Reset()
	r.emu.Stdout.Reset()
	r.emu.Install(r.m)
	r.prog.ReloadData(r.m)
}

// Run executes the program once, returning retired instructions and the
// work units accumulated by this run. It is RunLimited without bounds.
func (r *Runner) Run() (instrs, work uint64, err error) {
	return r.RunLimited(Limits{})
}

// Cell is one measured (ISA, interface) speed.
type Cell struct {
	ISA      string
	Buildset string
	// Backend names the execution engine that measured the cell: "" for
	// the in-process interpreter, "aot" for the generated runner binary.
	Backend string
	// MIPS is the geometric mean over the mix of simulated instructions
	// per microsecond of host time (the paper's Table II metric).
	MIPS float64
	// NsPerInstr is the geometric-mean host time per simulated instruction
	// (our Table III unit — a stand-in for host instructions; DESIGN.md §2).
	NsPerInstr float64
	// WorkPerInstr is the deterministic engine work-unit count per
	// instruction (hardware-independent cross-check of the same trends).
	WorkPerInstr float64
	// Err is set when the cell's measurement failed under the guarded
	// engine (see CellError); the metric fields are then zero.
	Err *CellError

	// Instret and WorkUnits are the cell's raw totals over every run,
	// warmup included — the quantities the obs layer exports. Under
	// MetricWork's fixed run schedule they are deterministic.
	Instret   uint64
	WorkUnits uint64
	// Attempts counts guarded measurement attempts (1 normally, 2 when the
	// watchdog granted a retry).
	Attempts int
	// Wall is the cell's total wall-clock measurement time across
	// attempts; QueueWait is how long the job sat in the sweep queue
	// before a worker picked it up. Both are host observations, excluded
	// from the determinism contract.
	Wall      time.Duration
	QueueWait time.Duration
	// Stats aggregates the cell's engine counters; deterministic under
	// MetricWork.
	Stats CellStats
	// Restored marks a cell reloaded from a resume journal rather than
	// computed by this process.
	Restored bool
}

// CellStats aggregates one cell's engine counters across its kernels and
// runs: translation-cache traffic, shared-cache mutations, cooperative
// watchdog checks, and OS-emulation activity.
type CellStats struct {
	Cache  core.ExecStats
	Shared core.SharedCacheStats
	// WatchdogChecks counts the cooperative limit checks RunLimited makes
	// at execution-chunk boundaries (the watchdog granularity).
	WatchdogChecks uint64
	// Syscalls counts emulated system calls by number; Denials and Shorts
	// mirror the emulator's failure counters.
	Syscalls       map[int]uint64
	SyscallDenials uint64
	SyscallShorts  uint64
}

// merge folds one runner's drained counters into the cell totals.
func (s *CellStats) merge(r *Runner) {
	s.Cache.Merge(r.x.Stats())
	s.WatchdogChecks += r.checks
	if len(r.emu.Calls) > 0 && s.Syscalls == nil {
		s.Syscalls = map[int]uint64{}
	}
	for num, n := range r.emu.Calls {
		s.Syscalls[num] += n
	}
	s.SyscallDenials += r.emu.Denials
	s.SyscallShorts += r.emu.Shorts
}

// MeasureCell times one (ISA, interface) pair over the mix. Each kernel
// runs repeatedly until minDur has elapsed (one warmup run first).
func MeasureCell(p *Programs, buildset string, opts core.Options, minDur time.Duration) (Cell, error) {
	return measureCell(p, buildset, opts, minDur, Limits{}, false, nil)
}

// cellProgress is the durable-within-process state of one cell
// measurement, owned by runCellGuarded and threaded through every attempt.
// measureCell commits into it at run and kernel boundaries, so when an
// attempt dies mid-cell the retry skips the finished kernels, replays the
// committed per-kernel accumulators, and — when an in-cell checkpoint was
// captured — resumes the in-flight run from that checkpoint instead of
// from zero.
type cellProgress struct {
	// kernelsDone counts fully completed kernels (their geomean inputs and
	// stats are committed below).
	kernelsDone int
	// used is the cell-wide instruction total (budget accounting).
	used uint64
	// instret/workUnits are the cell's raw totals, committed at run ends.
	instret, workUnits uint64
	// mips/ns/work are the per-kernel geomean inputs, committed at kernel
	// ends.
	mips, ns, work []float64
	// stats holds the committed kernels' counters.
	stats CellStats
	// Current-kernel state: whether its warmup completed, and the measured
	// runs committed so far.
	warmupDone bool
	curInstrs  uint64
	curWork    uint64
	curElapsed time.Duration
	// ckpt is the last in-cell checkpoint of the in-flight run, in the
	// serialized binary format (so restoring it exercises the same
	// validation path as an on-disk checkpoint); ckptKernel is the kernel
	// it belongs to (-1 when none).
	ckpt       []byte
	ckptKernel int
	// onProgress, when non-nil, fires at every commit point (checkpoint
	// capture and kernel boundary) with the progress record in a
	// serializable state — the fabric worker ships a snapshot of it to the
	// coordinator so a lease takeover can resume mid-kernel.
	onProgress func(cp *cellProgress)
}

// measureCell is MeasureCell bounded by lim: the instruction budget is
// cumulative over the cell's kernels and repeat runs, and the deadline both
// cuts off further repeat runs (gracefully, keeping the measurements made)
// and interrupts a run that overstays it (as an error).
//
// det selects the deterministic schedule the work metric reports under:
// one warmup run plus exactly one measured run per kernel, regardless of
// wall clock. Every engine counter then depends only on the instruction
// stream, which is what makes -metrics-out byte-identical across -parallel
// values and hosts (the wall-clock repeat loop would tie run counts — and
// so counter totals — to host speed).
//
// cp, when non-nil, carries committed progress from a previous attempt of
// the same cell and receives this attempt's progress; nil measures from
// scratch with no checkpointing.
func measureCell(p *Programs, buildset string, opts core.Options, minDur time.Duration, lim Limits, det bool, cp *cellProgress) (Cell, error) {
	sim, err := core.Synthesize(p.ISA.Spec, buildset, opts)
	if err != nil {
		return Cell{}, err
	}
	if cp == nil {
		cp = &cellProgress{ckptKernel: -1}
		lim.ckptEvery = 0
	}
	cell := Cell{ISA: p.ISA.Name, Buildset: buildset}
	runOnce := func(runner *Runner) (uint64, uint64, error) {
		rl := lim
		if lim.MaxInstr > 0 {
			if cp.used >= lim.MaxInstr {
				return 0, 0, fmt.Errorf("expt: %s/%s: %w after %d instructions",
					p.ISA.Name, buildset, errBudget, cp.used)
			}
			rl.MaxInstr = lim.MaxInstr - cp.used
		}
		in, wk, err := runner.RunLimited(rl)
		cp.used += in
		cp.instret += in
		cp.workUnits += wk
		if err == nil {
			// A completed run supersedes any mid-run checkpoint. On error
			// the checkpoint stays: it is the retry's resume point.
			cp.ckpt, cp.ckptKernel = nil, -1
		}
		return in, wk, err
	}
	for idx, prog := range p.Progs {
		if idx < cp.kernelsDone {
			continue // committed by a previous attempt
		}
		runner := NewRunner(sim, p.ISA, prog)
		if lim.ckptEvery > 0 {
			idx := idx
			lim.ckptSink = func(rc *runCheckpoint) {
				if b, err := rc.encode(); err == nil {
					cp.ckpt, cp.ckptKernel = b, idx
					if cp.onProgress != nil {
						cp.onProgress(cp)
					}
				}
			}
		}
		if cp.ckpt != nil && cp.ckptKernel == idx {
			// A previous attempt died mid-run in this kernel: resume its
			// in-flight run from the last checkpoint. The restore validates
			// the serialized bytes in full; damage means we fall back to
			// running this kernel's remaining runs from scratch.
			if rc, err := decodeRunCheckpoint(cp.ckpt); err == nil {
				if err := runner.restoreFrom(rc); err != nil {
					runner = NewRunner(sim, p.ISA, prog)
				}
			}
			cp.ckpt, cp.ckptKernel = nil, -1
		}
		// Warmup (also validates, and fills the translation caches). A
		// runner resumed mid-warmup finishes that warmup here; one resumed
		// mid-measured-run has warmupDone set and skips straight down.
		if !cp.warmupDone {
			if _, _, err := runOnce(runner); err != nil {
				return Cell{}, fmt.Errorf("%s: %w", p.Names[idx], err)
			}
			cp.warmupDone = true
		}
		for {
			start := time.Now()
			in, wk, err := runOnce(runner)
			if err != nil {
				return Cell{}, fmt.Errorf("%s: %w", p.Names[idx], err)
			}
			cp.curElapsed += time.Since(start)
			cp.curInstrs += in
			cp.curWork += wk
			if det {
				break // fixed schedule: counters stay host-independent
			}
			if cp.curElapsed >= minDur {
				break
			}
			if !lim.Deadline.IsZero() && !time.Now().Before(lim.Deadline) {
				break // keep what we measured; the watchdog is about hangs
			}
		}
		cp.stats.merge(runner)
		elapsed := cp.curElapsed
		if elapsed <= 0 {
			// Timer granularity floor: keeps the geomean inputs positive.
			elapsed = time.Nanosecond
		}
		ns := float64(elapsed.Nanoseconds()) / float64(cp.curInstrs)
		cp.mips = append(cp.mips, 1e3/ns)
		cp.ns = append(cp.ns, ns)
		cp.work = append(cp.work, float64(cp.curWork)/float64(cp.curInstrs))
		// Kernel boundary: commit and clear the current-kernel state.
		cp.kernelsDone = idx + 1
		cp.warmupDone = false
		cp.curInstrs, cp.curWork, cp.curElapsed = 0, 0, 0
		if cp.onProgress != nil {
			cp.onProgress(cp)
		}
	}
	cell.Instret, cell.WorkUnits = cp.instret, cp.workUnits
	cell.Stats = cp.stats
	cell.Stats.Shared = sim.SharedCacheStats()
	cell.MIPS = stats.GeoMean(cp.mips)
	cell.NsPerInstr = stats.GeoMean(cp.ns)
	cell.WorkPerInstr = stats.GeoMean(cp.work)
	return cell, nil
}

// cellGeoMean returns the geometric mean of the metric over the ok cells
// of one ISA. Error cells are skipped explicitly: their metric fields are
// zero, and stats.GeoMean's contract requires positive inputs — feeding an
// ERR cell through would have zeroed (now: panicked) the whole summary.
func cellGeoMean(cells []Cell, isaName string, m Metric) float64 {
	var vals []float64
	for _, c := range cells {
		if c.ISA != isaName || c.Err != nil {
			continue
		}
		if v := m.value(c); v > 0 {
			vals = append(vals, v)
		}
	}
	return stats.GeoMean(vals)
}

// rowLabel renders a buildset name in the paper's Table II row style.
func rowLabel(bs string) (semantic, info, spec string) {
	semantic, info, spec = "One", "All", "No"
	switch {
	case len(bs) > 5 && bs[:5] == "block":
		semantic = "Block"
	case len(bs) > 4 && bs[:4] == "step":
		semantic = "Step"
	}
	switch {
	case contains(bs, "_min"):
		info = "Min"
	case contains(bs, "_decode"):
		info = "Decode"
	}
	if contains(bs, "_spec") {
		spec = "Yes"
	}
	return
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TableI renders the instruction-set description characteristics.
func TableI() (*stats.Table, error) {
	t := stats.NewTable(append([]string{"Characteristic"}, isa.Names()...)...)
	var loaded []*isa.ISA
	for _, name := range isa.Names() {
		i, err := isa.Load(name)
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, i)
	}
	row := func(label string, f func(*isa.ISA) any) {
		cells := []any{label}
		for _, i := range loaded {
			cells = append(cells, f(i))
		}
		t.Row(cells...)
	}
	row("ISA description (lines of LIS)", func(i *isa.ISA) any { return i.DescLines })
	row("Buildset descriptions (lines)", func(i *isa.ISA) any { return i.BuildsetLines })
	row("Lines per experimental buildset", func(i *isa.ISA) any {
		total, n := 0, 0
		for _, bs := range i.Spec.Buildsets {
			total += bs.SrcLines
			n++
		}
		return fmt.Sprintf("%.1f", float64(total)/float64(n))
	})
	row("Number of instructions", func(i *isa.ISA) any { return len(i.Spec.Instrs) })
	row("Buildsets (interfaces)", func(i *isa.ISA) any { return len(i.Spec.Buildsets) })
	return t, nil
}

// find returns the cell for (isa, buildset).
func find(cells []Cell, isaName, bs string) Cell {
	for _, c := range cells {
		if c.ISA == isaName && c.Buildset == bs {
			return c
		}
	}
	return Cell{}
}

// TableIII derives the costs of detail from Table II measurements:
// base = One/Min/No; increments are differences, in host-ns per simulated
// instruction (stand-in for the paper's host instructions) and in
// deterministic work units.
func TableIII(cells []Cell) *stats.Table {
	t := stats.NewTable(append([]string{"Cost (ns/instr | work/instr)"}, isa.Names()...)...)
	row := func(label string, f func(isaName string) (float64, float64)) {
		cellsOut := []any{label}
		for _, name := range isa.Names() {
			ns, work := f(name)
			cellsOut = append(cellsOut, fmt.Sprintf("%s | %s", stats.FormatSig(ns, 3), stats.FormatSig(work, 3)))
		}
		t.Row(cellsOut...)
	}
	base := func(n string) Cell { return find(cells, n, "one_min") }
	row("Base cost (One/Min/No)", func(n string) (float64, float64) {
		c := base(n)
		return c.NsPerInstr, c.WorkPerInstr
	})
	row("Incremental: decode information", func(n string) (float64, float64) {
		c := find(cells, n, "one_decode")
		return c.NsPerInstr - base(n).NsPerInstr, c.WorkPerInstr - base(n).WorkPerInstr
	})
	row("Incremental: full information", func(n string) (float64, float64) {
		c := find(cells, n, "one_all")
		return c.NsPerInstr - base(n).NsPerInstr, c.WorkPerInstr - base(n).WorkPerInstr
	})
	row("Incremental: block-call", func(n string) (float64, float64) {
		c := find(cells, n, "block_min")
		return c.NsPerInstr - base(n).NsPerInstr, c.WorkPerInstr - base(n).WorkPerInstr
	})
	row("Incremental: multiple calls (Step)", func(n string) (float64, float64) {
		c := find(cells, n, "step_all")
		a := find(cells, n, "one_all")
		return c.NsPerInstr - a.NsPerInstr, c.WorkPerInstr - a.WorkPerInstr
	})
	row("Incremental: speculation", func(n string) (float64, float64) {
		c := find(cells, n, "one_all_spec")
		a := find(cells, n, "one_all")
		return c.NsPerInstr - a.NsPerInstr, c.WorkPerInstr - a.WorkPerInstr
	})
	return t
}

// Headline computes the paper's headline ratio: fastest (Block/Min) over
// slowest (Step/All/Yes) interface, per ISA, in the given metric. Under
// MetricWork the ratio is slow/fast work units (higher work = slower), so
// both metrics report "how much faster is the lowest-detail interface".
func Headline(cells []Cell, metric Metric) *stats.Table {
	unit := "MIPS"
	if metric == MetricWork {
		unit = "work/instr"
	}
	t := stats.NewTable("ISA", "Block/Min ("+unit+")", "Step/All/Yes ("+unit+")", "Speedup")
	for _, name := range isa.Names() {
		fast := find(cells, name, "block_min")
		slow := find(cells, name, "step_all_spec")
		fv, sv := metric.value(fast), metric.value(slow)
		ratio := 0.0
		switch {
		case metric == MetricWork && fv > 0:
			ratio = sv / fv
		case metric == MetricMIPS && sv > 0:
			ratio = fv / sv
		}
		t.Row(name, fv, sv, fmt.Sprintf("%.1fx", ratio))
	}
	return t
}
