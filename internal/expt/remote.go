package expt

// Remote measurement support for the distributed sweep fabric
// (internal/fabric): job specs that identify a sweep cell over the wire,
// serializable mid-cell progress snapshots (so a lease takeover resumes
// mid-kernel on another worker), and the journal-format cell encoding the
// coordinator and workers exchange. Everything here round-trips
// deterministic cell state exactly: encoding/json renders float64 in the
// shortest form that parses back bit-identically, []byte as base64, and
// the embedded machine checkpoint goes through the versioned CRC/SHA
// binary format — so a cell measured across a takeover is byte-identical
// to one measured in a single process.

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
	"singlespec/internal/stats"
)

// JobSpec identifies one sweep cell for remote execution: everything a
// worker needs (beyond its own sweep Config) to measure the cell. Its Key
// is the same stable identity the run journal uses, so coordinator-side
// resume journals and worker results speak one namespace.
type JobSpec struct {
	ISA      string       `json:"isa"`
	Buildset string       `json:"buildset"`
	Opts     core.Options `json:"opts"`
	Backend  Backend      `json:"backend,omitempty"`
}

// Key returns the spec's stable identity (identical to the run-journal
// cell key for the same measurement).
//
// The key format is a compatibility contract: it names cells in resume
// journals, fabric segment files, and wire frames, so it must not change
// across versions — a changed key silently orphans every journaled cell
// and forces recomputation. The options portion is therefore an explicit
// field-by-field canonical encoding (see canonicalOpts), not a reflective
// dump of core.Options.
func (s JobSpec) Key() string {
	k := s.ISA + "/" + s.Buildset + "/" + canonicalOpts(s.Opts)
	if s.Backend == BackendAOT {
		k += "/aot"
	}
	return k
}

// canonicalOpts renders core.Options in the key's canonical form. The
// format is frozen: it byte-matches the fmt %+v rendering the key
// historically used, so journals and segments written by earlier versions
// still resolve. It deliberately names each field: adding, removing, or
// reordering fields in core.Options no longer changes existing keys out
// from under the journals. A new option field that affects measurement
// must be appended here explicitly — and only with a migration story for
// old journals (TestJobSpecKeyGolden and TestJobSpecKeyCoversOptions
// enforce both directions).
func canonicalOpts(o core.Options) string {
	return fmt.Sprintf("{NoTranslate:%t NoDCE:%t ForceRecords:%t MaxBlockLen:%d CacheCap:%d}",
		o.NoTranslate, o.NoDCE, o.ForceRecords, o.MaxBlockLen, o.CacheCap)
}

// TableIIJobSpecs lists the Table II sweep's cells under cfg, in the
// deterministic order TableII schedules them (backend-major, ISA-major,
// buildset-minor). The coordinator leases exactly this list; the merged
// cell slice is ordered by it.
func TableIIJobSpecs(cfg Config) []JobSpec {
	backends := []Backend{BackendInterp}
	switch cfg.Backend {
	case BackendAOT:
		backends = []Backend{BackendAOT}
	case BackendBoth:
		backends = []Backend{BackendInterp, BackendAOT}
	}
	var specs []JobSpec
	for _, be := range backends {
		for _, name := range isa.Names() {
			for _, bs := range isa.StdBuildsets {
				specs = append(specs, JobSpec{ISA: name, Buildset: bs, Backend: be})
			}
		}
	}
	return specs
}

// ProgressSink receives mid-cell progress: a serialized snapshot (decode
// with the same package on any host) and the cell's retired-instruction
// total so far. Fired at commit points — checkpoint captures and kernel
// boundaries — never mid-chunk.
type ProgressSink func(snapshot []byte, instret uint64)

// MeasureSpec measures one cell for the fabric: like the engine's internal
// guarded path, but resuming from a serialized progress snapshot (resume,
// nil for a fresh cell) and streaming new snapshots to sink. It returns
// the measured cell and whether the resume snapshot was actually applied —
// a damaged snapshot is dropped (the cell restarts from scratch) per the
// resume semantics, never half-applied.
func MeasureSpec(progs *Programs, spec JobSpec, cfg Config, resume []byte, sink ProgressSink) (Cell, bool) {
	cp := &cellProgress{ckptKernel: -1}
	resumed := false
	if len(resume) > 0 {
		if rcp, err := decodeProgress(resume, len(progs.Progs)); err == nil {
			cp = rcp
			resumed = true
		} else {
			// A damaged or inconsistent snapshot is dropped, never
			// half-applied: the cell restarts from scratch and the drop is
			// visible in the registry instead of silently eating progress.
			cfg.Obs.Counter("fabric.snapshot_dropped").Inc()
		}
	}
	if sink != nil {
		cp.onProgress = func(cp *cellProgress) {
			if b, err := encodeProgress(cp); err == nil {
				sink(b, cp.instret+cp.curInstrs)
			}
		}
	}
	j := cellJob{progs: progs, buildset: spec.Buildset, opts: spec.Opts, backend: spec.Backend}
	return runCellGuardedFrom(j, cfg, cfg.MinDur, cp), resumed
}

// progressWire is the serialized form of cellProgress. The embedded
// machine checkpoint (Ckpt) stays in its versioned binary format, so a
// takeover validates it end to end exactly like an on-disk checkpoint.
type progressWire struct {
	KernelsDone int       `json:"kernels_done"`
	Used        uint64    `json:"used"`
	Instret     uint64    `json:"instret"`
	WorkUnits   uint64    `json:"work_units"`
	MIPS        []float64 `json:"mips,omitempty"`
	NS          []float64 `json:"ns,omitempty"`
	Work        []float64 `json:"work,omitempty"`
	Stats       CellStats `json:"stats"`
	WarmupDone  bool      `json:"warmup_done"`
	CurInstrs   uint64    `json:"cur_instrs"`
	CurWork     uint64    `json:"cur_work"`
	CurElapsed  int64     `json:"cur_elapsed_ns"`
	Ckpt        []byte    `json:"ckpt,omitempty"`
	CkptKernel  int       `json:"ckpt_kernel"`
}

func encodeProgress(cp *cellProgress) ([]byte, error) {
	return json.Marshal(progressWire{
		KernelsDone: cp.kernelsDone, Used: cp.used,
		Instret: cp.instret, WorkUnits: cp.workUnits,
		MIPS: cp.mips, NS: cp.ns, Work: cp.work, Stats: cp.stats,
		WarmupDone: cp.warmupDone,
		CurInstrs:  cp.curInstrs, CurWork: cp.curWork, CurElapsed: int64(cp.curElapsed),
		Ckpt: cp.ckpt, CkptKernel: cp.ckptKernel,
	})
}

// decodeProgress decodes and validates a progress snapshot. nKernels is
// the mix size the snapshot must fit (< 0 skips the bound checks, for
// callers without a mix at hand). Validation rejects not just malformed
// JSON but any state measureCell could not have committed: resuming such
// a snapshot would silently corrupt the cell's deterministic totals, so a
// takeover drops it and restarts the cell from scratch instead.
func decodeProgress(b []byte, nKernels int) (*cellProgress, error) {
	var w progressWire
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("expt: progress snapshot: %w", err)
	}
	if err := w.validate(nKernels); err != nil {
		return nil, fmt.Errorf("expt: progress snapshot: %w", err)
	}
	return &cellProgress{
		kernelsDone: w.KernelsDone, used: w.Used,
		instret: w.Instret, workUnits: w.WorkUnits,
		mips: w.MIPS, ns: w.NS, work: w.Work, stats: w.Stats,
		warmupDone: w.WarmupDone,
		curInstrs:  w.CurInstrs, curWork: w.CurWork, curElapsed: time.Duration(w.CurElapsed),
		ckpt: w.Ckpt, ckptKernel: w.CkptKernel,
	}, nil
}

// validate checks that a decoded snapshot is a state measureCell could
// actually have committed. onProgress fires only at checkpoint captures
// and kernel boundaries, which pins down the invariants:
//   - the per-kernel slices are appended exactly once per finished kernel,
//     so their lengths equal KernelsDone, and every appended value is a
//     positive finite geomean input;
//   - the current-kernel accumulators are cleared at each boundary and
//     only grow after that kernel's warmup run completes, so CurInstrs,
//     CurWork, and CurElapsed are all zero while WarmupDone is false;
//   - Used and Instret advance in lockstep (both sum the same RunLimited
//     returns), so they are equal;
//   - a checkpoint always belongs to the in-flight kernel: Ckpt is present
//     iff CkptKernel != -1, and then CkptKernel == KernelsDone.
func (w *progressWire) validate(nKernels int) error {
	finitePos := func(vs []float64) bool {
		for _, v := range vs {
			if !(v > 0) || math.IsInf(v, 1) {
				return false
			}
		}
		return true
	}
	switch {
	case w.KernelsDone < 0 || w.CkptKernel < -1:
		return fmt.Errorf("implausible kernel indices (kernels_done %d, ckpt_kernel %d)",
			w.KernelsDone, w.CkptKernel)
	case len(w.MIPS) != w.KernelsDone || len(w.NS) != w.KernelsDone || len(w.Work) != w.KernelsDone:
		return fmt.Errorf("per-kernel slice lengths %d/%d/%d (mips/ns/work) disagree with kernels_done %d",
			len(w.MIPS), len(w.NS), len(w.Work), w.KernelsDone)
	case !finitePos(w.MIPS) || !finitePos(w.NS) || !finitePos(w.Work):
		return fmt.Errorf("per-kernel metrics contain non-positive or non-finite values")
	case !w.WarmupDone && (w.CurInstrs != 0 || w.CurWork != 0 || w.CurElapsed != 0):
		return fmt.Errorf("current-kernel totals present before warmup completed")
	case w.CurElapsed < 0:
		return fmt.Errorf("negative current-kernel elapsed time")
	case w.Used != w.Instret:
		return fmt.Errorf("budget accounting (used %d) disagrees with instret %d", w.Used, w.Instret)
	case (len(w.Ckpt) == 0) != (w.CkptKernel == -1):
		return fmt.Errorf("checkpoint presence (%d bytes) disagrees with ckpt_kernel %d",
			len(w.Ckpt), w.CkptKernel)
	case w.CkptKernel != -1 && w.CkptKernel != w.KernelsDone:
		return fmt.Errorf("checkpoint kernel %d is not the in-flight kernel %d",
			w.CkptKernel, w.KernelsDone)
	case nKernels >= 0 && w.KernelsDone > nKernels:
		return fmt.Errorf("kernels_done %d exceeds the %d-kernel mix", w.KernelsDone, nKernels)
	case nKernels >= 0 && w.CkptKernel >= nKernels:
		return fmt.Errorf("ckpt_kernel %d exceeds the %d-kernel mix", w.CkptKernel, nKernels)
	}
	return nil
}

// EncodeCellWire encodes one measured cell (with its job key) in the run
// journal's record payload format — the representation fabric workers send
// to the coordinator and segment files store.
func EncodeCellWire(key string, c Cell) ([]byte, error) {
	r := journalRecord{Type: "cell", Key: key, Status: "ok", Cell: toCellData(c)}
	if c.Err != nil {
		r.Status = c.Err.Kind.String()
		r.ErrMsg = c.Err.Err.Error()
	}
	return json.Marshal(r)
}

// DecodeCellWire decodes an EncodeCellWire payload. The returned cell is
// marked as computed (not Restored): fabric cells were measured this run,
// just on another process.
func DecodeCellWire(b []byte) (string, Cell, error) {
	var r journalRecord
	if err := json.Unmarshal(b, &r); err != nil {
		return "", Cell{}, fmt.Errorf("expt: cell wire record: %w", err)
	}
	if r.Type != "cell" || r.Cell == nil || r.Key == "" {
		return "", Cell{}, fmt.Errorf("expt: cell wire record: not a keyed cell record")
	}
	c := r.Cell.toCell(r.Status, r.ErrMsg)
	c.Restored = false
	return r.Key, c, nil
}

// RecordCells merges the deterministic counters of a merged fabric sweep
// into reg — the same once-per-sweep aggregation runCells performs after a
// local sweep, so a fabric coordinator's non-fabric counter totals match a
// single-host run of the same configuration exactly.
func RecordCells(reg *obs.Registry, cells []Cell) { recordCells(reg, cells) }

// RenderTableII renders the Table II grid from measured (or merged) cells
// under cfg's metric and backend selection — the same rendering TableII
// performs after its local sweep, exposed so the fabric coordinator
// produces byte-identical output from remotely measured cells.
func RenderTableII(cfg Config, cells []Cell) *stats.Table {
	backends := []Backend{BackendInterp}
	switch cfg.Backend {
	case BackendAOT:
		backends = []Backend{BackendAOT}
	case BackendBoth:
		backends = []Backend{BackendInterp, BackendAOT}
	}
	byBS := map[string]map[string]Cell{}
	for _, c := range cells {
		k := c.Buildset + "/" + c.Backend
		if byBS[k] == nil {
			byBS[k] = map[string]Cell{}
		}
		byBS[k][c.ISA] = c
	}
	val := func(c Cell) any {
		if c.Err != nil {
			return errMark(c.Err)
		}
		return cfg.Metric.value(c)
	}
	// Columns come from the same isa.Names() list TableIIJobSpecs sweeps:
	// a newly registered ISA lands in the rendered table and geomeans the
	// moment it is swept, instead of being measured and silently dropped.
	names := isa.Names()
	t := stats.NewTable(append([]string{"Semantic", "Informational", "Spec."}, names...)...)
	for _, be := range backends {
		tag := ""
		if be == BackendAOT {
			tag = "aot"
		}
		for _, bs := range isa.StdBuildsets {
			sem, info, spec := rowLabel(bs)
			if be == BackendAOT {
				sem += " (aot)"
			}
			row := byBS[bs+"/"+tag]
			out := []any{sem, info, spec}
			for _, name := range names {
				out = append(out, val(row[name]))
			}
			t.Row(out...)
		}
		// Summary row per backend: the per-ISA geometric mean over the ok
		// interfaces. ERR cells are skipped in cellGeoMean — their zero
		// metrics would violate GeoMean's positive-input contract and wipe
		// the row.
		label := "ok cells"
		if be == BackendAOT {
			label = "ok aot cells"
		}
		var beCells []Cell
		for _, c := range cells {
			if c.Backend == tag {
				beCells = append(beCells, c)
			}
		}
		geo := []any{"geomean", label, ""}
		for _, name := range names {
			geo = append(geo, cellGeoMean(beCells, name, cfg.Metric))
		}
		t.Row(geo...)
	}
	return t
}
