// Package trace serializes the instruction stream of a functional-first
// simulator so it can be "written to storage and then fed to the timing
// simulator or multiple timing simulators" (§II-B). The format is a simple
// self-describing binary stream: a header naming the visible fields, then
// one record per instruction.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"singlespec/internal/core"
	"singlespec/internal/mach"
)

const magic = 0x53535452 // "SSTR"

// Writer streams records.
type Writer struct {
	w     *bufio.Writer
	nVals int
}

// NewWriter writes a stream header for the given interface layout.
func NewWriter(w io.Writer, layout *core.Layout) (*Writer, error) {
	bw := bufio.NewWriter(w)
	names := layout.FieldNames()
	if err := binary.Write(bw, binary.LittleEndian, uint32(magic)); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return nil, err
	}
	for _, n := range names {
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(n))); err != nil {
			return nil, err
		}
		if _, err := bw.WriteString(n); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw, nVals: len(names)}, nil
}

// Write appends one record.
func (t *Writer) Write(rec *core.Record) error {
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], rec.PC)
	binary.LittleEndian.PutUint64(hdr[8:], rec.PhysPC)
	binary.LittleEndian.PutUint64(hdr[16:], rec.NextPC)
	binary.LittleEndian.PutUint32(hdr[24:], rec.InstrBits)
	binary.LittleEndian.PutUint16(hdr[28:], rec.InstrID)
	hdr[30] = byte(rec.Fault)
	if rec.Nullified {
		hdr[31] = 1
	}
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(rec.Vals) != t.nVals {
		return fmt.Errorf("trace: record has %d values, stream header declared %d", len(rec.Vals), t.nVals)
	}
	var buf [8]byte
	for _, v := range rec.Vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := t.w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader replays a stream.
type Reader struct {
	r      *bufio.Reader
	Fields []string
	// recs counts records successfully returned by Read; truncation errors
	// report it so the caller knows where a damaged stream broke off.
	recs uint64
}

// maxFieldName bounds header field-name lengths. The real field names are
// LIS identifiers a few characters long; anything near the uint16 ceiling is
// a corrupt or adversarial header, and rejecting it early keeps a damaged
// stream from provoking large allocations.
const maxFieldName = 256

// validFieldName reports whether a header field name looks like the LIS
// identifier a writer would have produced.
func validFieldName(name []byte) bool {
	if len(name) == 0 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
		case c == '_':
		default:
			return false
		}
	}
	return name[0] < '0' || name[0] > '9'
}

// NewReader validates the header and returns a reader. A stream that ends
// inside the header yields io.ErrUnexpectedEOF (wrapped with context), never
// a bare io.EOF: only a complete header is a valid prefix.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m, n uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", noEOF(err))
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("trace: reading field count: %w", noEOF(err))
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("trace: implausible field count %d", n)
	}
	rd := &Reader{r: br}
	for i := 0; i < int(n); i++ {
		var l uint16
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("trace: reading length of field %d/%d: %w", i, n, noEOF(err))
		}
		if l == 0 || l > maxFieldName {
			return nil, fmt.Errorf("trace: field %d/%d has implausible name length %d", i, n, l)
		}
		name := make([]byte, l)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("trace: reading name of field %d/%d: %w", i, n, noEOF(err))
		}
		if !validFieldName(name) {
			return nil, fmt.Errorf("trace: field %d/%d has malformed name %q", i, n, name)
		}
		rd.Fields = append(rd.Fields, string(name))
	}
	return rd, nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF. io.ReadFull and
// binary.Read return a bare io.EOF when the stream ends exactly at the read
// boundary, but inside a header or record that position is still truncation,
// not a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Slot finds a field's value index in replayed records.
func (r *Reader) Slot(name string) (int, bool) {
	for i, f := range r.Fields {
		if f == name {
			return i, true
		}
	}
	return 0, false
}

// Read fills rec with the next record. A clean end of stream — no bytes
// after the previous record — returns io.EOF; a stream that ends partway
// through a record returns an error wrapping io.ErrUnexpectedEOF that names
// the index of the truncated record.
func (r *Reader) Read(rec *core.Record) error {
	var hdr [32]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF // clean record boundary
		}
		return fmt.Errorf("trace: record %d truncated mid-header: %w", r.recs, err)
	}
	rec.PC = binary.LittleEndian.Uint64(hdr[0:])
	rec.PhysPC = binary.LittleEndian.Uint64(hdr[8:])
	rec.NextPC = binary.LittleEndian.Uint64(hdr[16:])
	rec.InstrBits = binary.LittleEndian.Uint32(hdr[24:])
	rec.InstrID = binary.LittleEndian.Uint16(hdr[28:])
	rec.Fault = mach.Fault(hdr[30])
	rec.Nullified = hdr[31] != 0
	if cap(rec.Vals) < len(r.Fields) {
		rec.Vals = make([]uint64, len(r.Fields))
	} else {
		rec.Vals = rec.Vals[:len(r.Fields)]
	}
	var buf [8]byte
	for i := range rec.Vals {
		if _, err := io.ReadFull(r.r, buf[:]); err != nil {
			return fmt.Errorf("trace: record %d truncated in value %d/%d: %w",
				r.recs, i, len(rec.Vals), noEOF(err))
		}
		rec.Vals[i] = binary.LittleEndian.Uint64(buf[:])
	}
	r.recs++
	return nil
}
