package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"singlespec/internal/core"
)

// stream hand-assembles a trace: a header naming fields, then records of
// 32 header bytes + 8 bytes per field.
func stream(fields []string, records int) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, uint32(magic))
	binary.Write(&b, binary.LittleEndian, uint32(len(fields)))
	for _, f := range fields {
		binary.Write(&b, binary.LittleEndian, uint16(len(f)))
		b.WriteString(f)
	}
	for r := 0; r < records; r++ {
		var hdr [32]byte
		binary.LittleEndian.PutUint64(hdr[0:], uint64(0x1000+4*r))
		b.Write(hdr[:])
		for range fields {
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], uint64(r))
			b.Write(v[:])
		}
	}
	return b.Bytes()
}

func TestTruncatedRecordReportsIndex(t *testing.T) {
	full := stream([]string{"aa", "bb"}, 3)
	headerLen := len(stream([]string{"aa", "bb"}, 0))
	recLen := (len(full) - headerLen) / 3

	cases := []struct {
		name string
		cut  int // bytes kept after the header + 2 full records
		want string
	}{
		{"mid-header", 7, "record 2 truncated mid-header"},
		{"mid-values", 32 + 11, "record 2 truncated in value 1/2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := full[:headerLen+2*recLen+tc.cut]
			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var rec core.Record
			for i := 0; i < 2; i++ {
				if err := r.Read(&rec); err != nil {
					t.Fatalf("intact record %d: %v", i, err)
				}
			}
			err = r.Read(&rec)
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("want ErrUnexpectedEOF, got %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the truncated record: want %q", err, tc.want)
			}
		})
	}
}

func TestCleanEOFAtRecordBoundary(t *testing.T) {
	data := stream([]string{"aa"}, 2)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec core.Record
	for i := 0; i < 2; i++ {
		if err := r.Read(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Read(&rec); err != io.EOF {
		t.Fatalf("want bare io.EOF at record boundary, got %v", err)
	}
}

func TestTruncatedHeaderIsUnexpectedEOF(t *testing.T) {
	full := stream([]string{"field_one", "field_two"}, 0)
	for cut := 1; cut < len(full); cut++ {
		_, err := NewReader(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncated header (%d/%d bytes) accepted", cut, len(full))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestRejectsAbsurdFieldNames(t *testing.T) {
	bad := [][]string{
		{""},                          // empty
		{"has space"},                 // non-identifier byte
		{"ev\x00il"},                  // embedded NUL
		{"caf\xc3\xa9"},               // non-ASCII
		{"9starts_with_digit"},        // leading digit
		{strings.Repeat("x", 10_000)}, // way past maxFieldName
	}
	for _, fields := range bad {
		if _, err := NewReader(bytes.NewReader(stream(fields, 0))); err == nil {
			t.Errorf("field name %q accepted", fields[0])
		}
	}
	good := []string{"effective_addr", "x", "Branch_Taken2"}
	if _, err := NewReader(bytes.NewReader(stream(good, 0))); err != nil {
		t.Errorf("legitimate field names rejected: %v", err)
	}
}

func FuzzTraceReader(f *testing.F) {
	f.Add(stream([]string{"effective_addr", "branch_taken"}, 3))
	f.Add(stream([]string{"a"}, 0))
	f.Add(stream(nil, 2))
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x54, 0x53, 0x53}) // magic only
	full := stream([]string{"opcode"}, 2)
	f.Add(full[:len(full)-5]) // truncated mid-record
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// However mangled the stream, Read must terminate with io.EOF or a
		// descriptive error — never panic and never return a bare mid-record
		// io.EOF.
		var rec core.Record
		for i := 0; i < 1000; i++ {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, io.ErrUnexpectedEOF) && strings.Contains(err.Error(), "EOF") {
					t.Fatalf("bare EOF leaked mid-record: %v", err)
				}
				return
			}
		}
	})
}
