package trace

import "singlespec/internal/mach"

func fault(b byte) mach.Fault { return mach.Fault(b) }
