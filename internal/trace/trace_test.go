package trace

import (
	"bytes"
	"io"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
)

func TestRoundTripStream(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_decode", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Record a short real run.
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	// addq r31,1,r0 ; addq r31,7,r16 ; callsys (exit 7)
	m.Mem.Store(i.Conv.CodeBase+0, uint64(0x10<<26|31<<21|1<<13|1<<12|0x20<<5|0), 4)
	m.Mem.Store(i.Conv.CodeBase+4, uint64(0x10<<26|31<<21|7<<13|1<<12|0x20<<5|16), 4)
	m.Mem.Store(i.Conv.CodeBase+8, uint64(0x83), 4)
	m.PC = i.Conv.CodeBase
	x := sim.NewExec(m)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, sim.Layout)
	if err != nil {
		t.Fatal(err)
	}
	var recs []core.Record
	var rec core.Record
	for !m.Halted {
		x.ExecOne(&rec)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
		cp := rec
		cp.Vals = append([]uint64(nil), rec.Vals...)
		recs = append(recs, cp)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fields) != sim.Layout.NumSlots() {
		t.Fatalf("fields = %d", len(r.Fields))
	}
	if _, ok := r.Slot("effective_addr"); !ok {
		t.Error("missing effective_addr in stream header")
	}
	var got core.Record
	for idx := 0; ; idx++ {
		err := r.Read(&got)
		if err == io.EOF {
			if idx != len(recs) {
				t.Fatalf("replayed %d records, wrote %d", idx, len(recs))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want := recs[idx]
		if got.PC != want.PC || got.InstrID != want.InstrID || got.Fault != want.Fault {
			t.Fatalf("record %d header mismatch", idx)
		}
		for vi := range want.Vals {
			if got.Vals[vi] != want.Vals[vi] {
				t.Fatalf("record %d val %d: %#x vs %#x", idx, vi, got.Vals[vi], want.Vals[vi])
			}
		}
	}
	if recs[len(recs)-1].Fault != mach.FaultHalt {
		t.Error("last record should carry the halt fault")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic accepted")
	}
}
