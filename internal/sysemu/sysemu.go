// Package sysemu emulates the operating-system services the simulated
// user-mode programs rely on. Per the paper (§V-A), OS entry happens by
// overriding the semantics of the ISA's system-call instruction; the LIS
// descriptions route that instruction's execute action to the machine's
// Syscall hook, which this package implements.
//
// Everything is deterministic: time is a counter, reads come from a
// preloaded buffer, and output is captured in memory.
package sysemu

import (
	"bytes"

	"singlespec/internal/isa"
	"singlespec/internal/mach"
)

// System-call numbers shared by all three ISAs (the number lives in the
// ISA-specific register named by the convention).
const (
	SysExit  = 1
	SysWrite = 2
	SysRead  = 3
	SysBrk   = 4
	SysTime  = 5
)

// SyscallFault selects a failure the emulator injects into one system
// call. The zero value injects nothing.
type SyscallFault int

const (
	// SysFaultNone leaves the call untouched.
	SysFaultNone SyscallFault = iota
	// SysFaultShort halves the byte count a read or write transfers —
	// the classic short-I/O result robust programs must retry.
	SysFaultShort
	// SysFaultDeny fails the call outright: read/write return the error
	// value, brk refuses to move (heap exhaustion).
	SysFaultDeny
)

// Emulator is the deterministic OS emulation state for one machine.
type Emulator struct {
	Conv isa.Convention
	// Stdout captures all bytes written by the program.
	Stdout bytes.Buffer
	// Stdin provides the bytes returned by reads.
	Stdin []byte

	// FaultHook, when non-nil, is consulted once per system call (with the
	// call number) and the returned fault is applied to that call only.
	// This is the seam fault-injection campaigns drive; it never affects
	// SysExit or SysTime, so fault schedules cannot lose an exit. Leave nil
	// in production use.
	FaultHook func(num int) SyscallFault

	brk   uint64
	ticks uint64
	// Calls counts invocations per syscall number (for tests/stats).
	Calls map[int]uint64
	// Denials counts calls completed with the error return: injected
	// denials, oversized writes, and unknown call numbers. Shorts counts
	// short-I/O faults applied to a read or write. Both feed the obs
	// layer's sysemu counters.
	Denials uint64
	Shorts  uint64
}

// State is the emulator's complete deterministic state, exported for
// checkpointing: a machine checkpoint that omitted the OS-emulation side
// (heap break, tick counter, consumed stdin, captured stdout) would resume
// into a subtly different OS and diverge. The counters ride along so a
// resumed cell reports the same sysemu metrics as an uninterrupted one.
type State struct {
	Brk     uint64         `json:"brk"`
	Ticks   uint64         `json:"ticks"`
	Stdout  []byte         `json:"stdout,omitempty"`
	Stdin   []byte         `json:"stdin,omitempty"`
	Calls   map[int]uint64 `json:"calls,omitempty"`
	Denials uint64         `json:"denials,omitempty"`
	Shorts  uint64         `json:"shorts,omitempty"`
}

// State captures the emulator's deterministic state (deep copies, so later
// emulation does not mutate the checkpoint).
func (e *Emulator) State() State {
	s := State{
		Brk: e.brk, Ticks: e.ticks,
		Stdout:  append([]byte(nil), e.Stdout.Bytes()...),
		Stdin:   append([]byte(nil), e.Stdin...),
		Denials: e.Denials, Shorts: e.Shorts,
	}
	if len(e.Calls) > 0 {
		s.Calls = make(map[int]uint64, len(e.Calls))
		for k, v := range e.Calls {
			s.Calls[k] = v
		}
	}
	return s
}

// SetState restores a previously captured state. The FaultHook is left
// untouched: fault schedules are owned by the campaign driving them.
func (e *Emulator) SetState(s State) {
	e.brk, e.ticks = s.Brk, s.Ticks
	e.Stdout.Reset()
	e.Stdout.Write(s.Stdout)
	e.Stdin = append([]byte(nil), s.Stdin...)
	e.Calls = make(map[int]uint64, len(s.Calls))
	for k, v := range s.Calls {
		e.Calls[k] = v
	}
	e.Denials, e.Shorts = s.Denials, s.Shorts
}

// CallName returns the symbolic name of a syscall number ("exit",
// "write", ...), or "unknown" for numbers outside the emulated set. The
// obs layer uses it to label per-call counters.
func CallName(num int) string {
	switch num {
	case SysExit:
		return "exit"
	case SysWrite:
		return "write"
	case SysRead:
		return "read"
	case SysBrk:
		return "brk"
	case SysTime:
		return "time"
	}
	return "unknown"
}

// New returns an emulator for the given convention.
func New(conv isa.Convention) *Emulator {
	return &Emulator{Conv: conv, brk: conv.HeapBase, Calls: make(map[int]uint64)}
}

// Install hooks the emulator into a machine and initializes the stack
// pointer.
func (e *Emulator) Install(m *mach.Machine) {
	m.Syscall = e.Handle
	r := m.Spaces[0]
	r.Write(e.Conv.Stack, e.Conv.StackTop)
}

func (e *Emulator) reg(m *mach.Machine, idx int) uint64 { return m.Spaces[0].Read(idx) }

// Handle dispatches one system call on machine m.
func (e *Emulator) Handle(m *mach.Machine) {
	num := int(e.reg(m, e.Conv.SyscallNum))
	e.Calls[num]++
	fault := SysFaultNone
	if e.FaultHook != nil {
		fault = e.FaultHook(num)
	}
	ret := uint64(0)
	switch num {
	case SysExit:
		m.Halt(int(e.reg(m, e.Conv.Args[0])))
		return
	case SysWrite:
		// write(fd, buf, len): fd ignored, output captured.
		buf := e.reg(m, e.Conv.Args[1])
		n := e.reg(m, e.Conv.Args[2])
		if n > 1<<20 || fault == SysFaultDeny {
			e.Denials++
			ret = ^uint64(0)
			break
		}
		if fault == SysFaultShort {
			e.Shorts++
			n /= 2
		}
		e.Stdout.Write(m.Mem.ReadBytes(buf, int(n)))
		ret = n
	case SysRead:
		buf := e.reg(m, e.Conv.Args[1])
		n := int(e.reg(m, e.Conv.Args[2]))
		if fault == SysFaultDeny {
			e.Denials++
			ret = ^uint64(0)
			break
		}
		if fault == SysFaultShort {
			e.Shorts++
			n /= 2
		}
		if n > len(e.Stdin) {
			n = len(e.Stdin)
		}
		if n > 0 {
			m.Mem.WriteBytes(buf, e.Stdin[:n])
			e.Stdin = e.Stdin[n:]
		}
		ret = uint64(n)
	case SysBrk:
		want := e.reg(m, e.Conv.Args[0])
		// Any injected fault turns the call into a refusal: the break
		// stays where it was (the caller sees exhaustion).
		if want != 0 && fault == SysFaultNone {
			e.brk = want
		} else if want != 0 {
			e.Denials++
		}
		ret = e.brk
	case SysTime:
		e.ticks++
		ret = e.ticks
	default:
		e.Denials++
		ret = ^uint64(0)
	}
	m.WriteReg(m.Spaces[0], e.Conv.Ret, ret)
}
