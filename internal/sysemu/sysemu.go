// Package sysemu emulates the operating-system services the simulated
// user-mode programs rely on. Per the paper (§V-A), OS entry happens by
// overriding the semantics of the ISA's system-call instruction; the LIS
// descriptions route that instruction's execute action to the machine's
// Syscall hook, which this package implements.
//
// Everything is deterministic: time is a counter, reads come from a
// preloaded buffer, and output is captured in memory.
package sysemu

import (
	"bytes"

	"singlespec/internal/isa"
	"singlespec/internal/mach"
)

// System-call numbers shared by all three ISAs (the number lives in the
// ISA-specific register named by the convention).
const (
	SysExit  = 1
	SysWrite = 2
	SysRead  = 3
	SysBrk   = 4
	SysTime  = 5
)

// Emulator is the deterministic OS emulation state for one machine.
type Emulator struct {
	Conv isa.Convention
	// Stdout captures all bytes written by the program.
	Stdout bytes.Buffer
	// Stdin provides the bytes returned by reads.
	Stdin []byte

	brk   uint64
	ticks uint64
	// Calls counts invocations per syscall number (for tests/stats).
	Calls map[int]uint64
}

// New returns an emulator for the given convention.
func New(conv isa.Convention) *Emulator {
	return &Emulator{Conv: conv, brk: conv.HeapBase, Calls: make(map[int]uint64)}
}

// Install hooks the emulator into a machine and initializes the stack
// pointer.
func (e *Emulator) Install(m *mach.Machine) {
	m.Syscall = e.Handle
	r := m.Spaces[0]
	r.Write(e.Conv.Stack, e.Conv.StackTop)
}

func (e *Emulator) reg(m *mach.Machine, idx int) uint64 { return m.Spaces[0].Read(idx) }

// Handle dispatches one system call on machine m.
func (e *Emulator) Handle(m *mach.Machine) {
	num := int(e.reg(m, e.Conv.SyscallNum))
	e.Calls[num]++
	ret := uint64(0)
	switch num {
	case SysExit:
		m.Halt(int(e.reg(m, e.Conv.Args[0])))
		return
	case SysWrite:
		// write(fd, buf, len): fd ignored, output captured.
		buf := e.reg(m, e.Conv.Args[1])
		n := e.reg(m, e.Conv.Args[2])
		if n > 1<<20 {
			ret = ^uint64(0)
			break
		}
		e.Stdout.Write(m.Mem.ReadBytes(buf, int(n)))
		ret = n
	case SysRead:
		buf := e.reg(m, e.Conv.Args[1])
		n := int(e.reg(m, e.Conv.Args[2]))
		if n > len(e.Stdin) {
			n = len(e.Stdin)
		}
		if n > 0 {
			m.Mem.WriteBytes(buf, e.Stdin[:n])
			e.Stdin = e.Stdin[n:]
		}
		ret = uint64(n)
	case SysBrk:
		want := e.reg(m, e.Conv.Args[0])
		if want != 0 {
			e.brk = want
		}
		ret = e.brk
	case SysTime:
		e.ticks++
		ret = e.ticks
	default:
		ret = ^uint64(0)
	}
	m.WriteReg(m.Spaces[0], e.Conv.Ret, ret)
}
