package sysemu

import (
	"testing"

	"singlespec/internal/isa/isatest"
)

func TestSyscalls(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	e := New(i.Conv)
	m := i.Spec.NewMachine()
	e.Install(m)
	r := m.MustSpace("r")
	if got := r.Read(i.Conv.Stack); got != i.Conv.StackTop {
		t.Fatalf("stack pointer = %#x", got)
	}

	// write
	m.Mem.WriteBytes(0x5000, []byte("hello"))
	r.Write(i.Conv.SyscallNum, SysWrite)
	r.Write(i.Conv.Args[0], 1)
	r.Write(i.Conv.Args[1], 0x5000)
	r.Write(i.Conv.Args[2], 5)
	e.Handle(m)
	if e.Stdout.String() != "hello" || r.Read(i.Conv.Ret) != 5 {
		t.Errorf("write: %q ret=%d", e.Stdout.String(), r.Read(i.Conv.Ret))
	}

	// read
	e.Stdin = []byte("abc")
	r.Write(i.Conv.SyscallNum, SysRead)
	r.Write(i.Conv.Args[1], 0x6000)
	r.Write(i.Conv.Args[2], 10)
	e.Handle(m)
	if got := string(m.Mem.ReadBytes(0x6000, 3)); got != "abc" || r.Read(i.Conv.Ret) != 3 {
		t.Errorf("read: %q", got)
	}

	// brk
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], 0)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != i.Conv.HeapBase {
		t.Errorf("brk query = %#x", r.Read(i.Conv.Ret))
	}
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], i.Conv.HeapBase+0x1000)
	e.Handle(m)
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], 0)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != i.Conv.HeapBase+0x1000 {
		t.Errorf("brk move = %#x", r.Read(i.Conv.Ret))
	}

	// time is deterministic and monotonic
	r.Write(i.Conv.SyscallNum, SysTime)
	e.Handle(m)
	t1 := r.Read(i.Conv.Ret)
	r.Write(i.Conv.SyscallNum, SysTime)
	e.Handle(m)
	if t2 := r.Read(i.Conv.Ret); t2 != t1+1 {
		t.Errorf("time: %d then %d", t1, t2)
	}

	// unknown
	r.Write(i.Conv.SyscallNum, 999)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != ^uint64(0) {
		t.Error("unknown syscall should return -1")
	}

	// exit
	r.Write(i.Conv.SyscallNum, SysExit)
	r.Write(i.Conv.Args[0], 42)
	e.Handle(m)
	if !m.Halted || m.ExitCode != 42 {
		t.Errorf("exit: %v %d", m.Halted, m.ExitCode)
	}
	if e.Calls[SysWrite] != 1 || e.Calls[SysExit] != 1 {
		t.Errorf("call counts: %v", e.Calls)
	}
}

func TestWriteBoundsCheck(t *testing.T) {
	i := isatest.Load(t, "arm32")
	e := New(i.Conv)
	m := i.Spec.NewMachine()
	e.Install(m)
	r := m.MustSpace("r")
	r.Write(i.Conv.SyscallNum, SysWrite)
	r.Write(i.Conv.Args[1], 0x5000)
	r.Write(i.Conv.Args[2], 1<<30) // implausible length
	e.Handle(m)
	if r.Read(i.Conv.Ret) != ^uint64(0) {
		t.Error("oversized write accepted")
	}
}
