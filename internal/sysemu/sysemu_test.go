package sysemu

import (
	"testing"

	"singlespec/internal/isa/isatest"
)

func TestSyscalls(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	e := New(i.Conv)
	m := i.Spec.NewMachine()
	e.Install(m)
	r := m.MustSpace("r")
	if got := r.Read(i.Conv.Stack); got != i.Conv.StackTop {
		t.Fatalf("stack pointer = %#x", got)
	}

	// write
	m.Mem.WriteBytes(0x5000, []byte("hello"))
	r.Write(i.Conv.SyscallNum, SysWrite)
	r.Write(i.Conv.Args[0], 1)
	r.Write(i.Conv.Args[1], 0x5000)
	r.Write(i.Conv.Args[2], 5)
	e.Handle(m)
	if e.Stdout.String() != "hello" || r.Read(i.Conv.Ret) != 5 {
		t.Errorf("write: %q ret=%d", e.Stdout.String(), r.Read(i.Conv.Ret))
	}

	// read
	e.Stdin = []byte("abc")
	r.Write(i.Conv.SyscallNum, SysRead)
	r.Write(i.Conv.Args[1], 0x6000)
	r.Write(i.Conv.Args[2], 10)
	e.Handle(m)
	if got := string(m.Mem.ReadBytes(0x6000, 3)); got != "abc" || r.Read(i.Conv.Ret) != 3 {
		t.Errorf("read: %q", got)
	}

	// brk
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], 0)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != i.Conv.HeapBase {
		t.Errorf("brk query = %#x", r.Read(i.Conv.Ret))
	}
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], i.Conv.HeapBase+0x1000)
	e.Handle(m)
	r.Write(i.Conv.SyscallNum, SysBrk)
	r.Write(i.Conv.Args[0], 0)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != i.Conv.HeapBase+0x1000 {
		t.Errorf("brk move = %#x", r.Read(i.Conv.Ret))
	}

	// time is deterministic and monotonic
	r.Write(i.Conv.SyscallNum, SysTime)
	e.Handle(m)
	t1 := r.Read(i.Conv.Ret)
	r.Write(i.Conv.SyscallNum, SysTime)
	e.Handle(m)
	if t2 := r.Read(i.Conv.Ret); t2 != t1+1 {
		t.Errorf("time: %d then %d", t1, t2)
	}

	// unknown
	r.Write(i.Conv.SyscallNum, 999)
	e.Handle(m)
	if r.Read(i.Conv.Ret) != ^uint64(0) {
		t.Error("unknown syscall should return -1")
	}

	// exit
	r.Write(i.Conv.SyscallNum, SysExit)
	r.Write(i.Conv.Args[0], 42)
	e.Handle(m)
	if !m.Halted || m.ExitCode != 42 {
		t.Errorf("exit: %v %d", m.Halted, m.ExitCode)
	}
	if e.Calls[SysWrite] != 1 || e.Calls[SysExit] != 1 {
		t.Errorf("call counts: %v", e.Calls)
	}
}

// TestFaultCounters drives each denial and short-I/O path through
// FaultHook and checks the Denials/Shorts counters the obs layer exports.
func TestFaultCounters(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	e := New(i.Conv)
	m := i.Spec.NewMachine()
	e.Install(m)
	r := m.MustSpace("r")
	fault := SysFaultNone
	e.FaultHook = func(int) SyscallFault { return fault }
	// The return value may land in the same register as the call number, so
	// every call re-seeds the registers.
	call := func(num int, args ...uint64) {
		r.Write(i.Conv.SyscallNum, uint64(num))
		for idx, a := range args {
			r.Write(i.Conv.Args[idx], a)
		}
		e.Handle(m)
	}

	// Denied write.
	m.Mem.WriteBytes(0x5000, []byte("hello"))
	fault = SysFaultDeny
	call(SysWrite, 1, 0x5000, 5)
	if e.Denials != 1 || e.Stdout.Len() != 0 {
		t.Errorf("denied write: denials=%d stdout=%q", e.Denials, e.Stdout.String())
	}

	// Short write transfers half.
	fault = SysFaultShort
	call(SysWrite, 1, 0x5000, 5)
	if e.Shorts != 1 || e.Stdout.String() != "he" {
		t.Errorf("short write: shorts=%d stdout=%q", e.Shorts, e.Stdout.String())
	}

	// Denied read, then short read.
	e.Stdin = []byte("abcdef")
	fault = SysFaultDeny
	call(SysRead, 0, 0x6000, 6)
	fault = SysFaultShort
	call(SysRead, 0, 0x6000, 6)
	if e.Denials != 2 || e.Shorts != 2 || r.Read(i.Conv.Ret) != 3 {
		t.Errorf("read faults: denials=%d shorts=%d ret=%d", e.Denials, e.Shorts, r.Read(i.Conv.Ret))
	}

	// Refused brk counts as a denial; a query (want=0) does not.
	fault = SysFaultDeny
	call(SysBrk, i.Conv.HeapBase+0x1000)
	if e.Denials != 3 || r.Read(i.Conv.Ret) != i.Conv.HeapBase {
		t.Errorf("refused brk: denials=%d brk=%#x", e.Denials, r.Read(i.Conv.Ret))
	}
	call(SysBrk, 0)
	if e.Denials != 3 {
		t.Errorf("brk query counted as denial: %d", e.Denials)
	}

	// Unknown call numbers are denials too.
	fault = SysFaultNone
	call(999)
	if e.Denials != 4 {
		t.Errorf("unknown call: denials=%d", e.Denials)
	}
}

func TestCallName(t *testing.T) {
	cases := map[int]string{
		SysExit: "exit", SysWrite: "write", SysRead: "read",
		SysBrk: "brk", SysTime: "time", 999: "unknown", 0: "unknown",
	}
	for num, want := range cases {
		if got := CallName(num); got != want {
			t.Errorf("CallName(%d) = %q, want %q", num, got, want)
		}
	}
}

func TestWriteBoundsCheck(t *testing.T) {
	i := isatest.Load(t, "arm32")
	e := New(i.Conv)
	m := i.Spec.NewMachine()
	e.Install(m)
	r := m.MustSpace("r")
	r.Write(i.Conv.SyscallNum, SysWrite)
	r.Write(i.Conv.Args[1], 0x5000)
	r.Write(i.Conv.Args[2], 1<<30) // implausible length
	e.Handle(m)
	if r.Read(i.Conv.Ret) != ^uint64(0) {
		t.Error("oversized write accepted")
	}
}

// TestEmulatorStateRoundTrip drives the emulator, captures its state,
// perturbs everything, restores, and checks the restored emulator is
// indistinguishable — the property in-cell checkpoint resume relies on.
func TestEmulatorStateRoundTrip(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	e := New(i.Conv)
	e.Stdin = []byte("abcdef")
	m := i.Spec.NewMachine()
	e.Install(m)

	r := m.Spaces[0]
	call := func(num int, args ...uint64) {
		r.Write(i.Conv.SyscallNum, uint64(num))
		for k, a := range args {
			r.Write(i.Conv.Args[k], a)
		}
		e.Handle(m)
	}
	call(SysBrk, 0x90000)
	call(SysTime)
	call(SysTime)
	m.Mem.WriteBytes(0x50000, []byte("hi"))
	call(SysWrite, 1, 0x50000, 2)
	call(SysRead, 0, 0x60000, 4)
	call(99) // unknown: counts a denial

	st := e.State()

	// Perturb, then restore.
	call(SysTime)
	call(SysBrk, 0xa0000)
	call(SysWrite, 1, 0x50000, 2)
	e.Stdin = nil
	e.SetState(st)

	if e.brk != 0x90000 {
		t.Errorf("brk = %#x, want %#x", e.brk, 0x90000)
	}
	if e.ticks != 2 {
		t.Errorf("ticks = %d, want 2", e.ticks)
	}
	if got := e.Stdout.String(); got != "hi" {
		t.Errorf("stdout = %q, want %q", got, "hi")
	}
	if string(e.Stdin) != "ef" {
		t.Errorf("stdin remainder = %q, want %q", e.Stdin, "ef")
	}
	if e.Calls[SysTime] != 2 || e.Calls[SysWrite] != 1 || e.Calls[SysBrk] != 1 {
		t.Errorf("call counts not restored: %v", e.Calls)
	}
	if e.Denials != 1 || e.Shorts != 0 {
		t.Errorf("denials/shorts = %d/%d, want 1/0", e.Denials, e.Shorts)
	}

	// The captured state must be a deep copy: mutating the emulator after
	// capture must not have touched st.
	if string(st.Stdout) != "hi" || st.Ticks != 2 {
		t.Error("captured state aliased live emulator buffers")
	}
}
