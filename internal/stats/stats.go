// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, rate formatting, and aligned
// markdown tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of positive values (0 if empty or any
// value is non-positive).
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// MIPS converts instructions and nanoseconds into millions of simulated
// instructions per second.
func MIPS(instrs uint64, ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(instrs) * 1e3 / ns
}

// Table renders rows as an aligned markdown table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row (values are stringified with %v; floats get 3
// significant digits).
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSig(v, 3)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// FormatSig formats a float with n significant digits.
func FormatSig(v float64, n int) string {
	if v == 0 {
		return "0"
	}
	mag := int(math.Floor(math.Log10(math.Abs(v))))
	dec := n - 1 - mag
	if dec < 0 {
		dec = 0
	}
	return fmt.Sprintf("%.*f", dec, v)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
