// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: geometric means, rate formatting, and aligned
// markdown tables.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of vals, or 0 for an empty slice.
//
// Contract: every value must be positive. The geometric mean is undefined
// at or below zero, and the old behavior — silently returning 0 — let a
// single zeroed ERR cell wipe out a whole summary row without a trace.
// Callers aggregating over sweep cells must filter error cells first (see
// expt's cellGeoMean); a non-positive or NaN value here is a caller bug
// and panics so corrupted aggregates fail loudly instead of rendering 0.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if !(v > 0) {
			panic(fmt.Sprintf("stats: GeoMean given non-positive value %v (filter error cells before aggregating)", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// MIPS converts instructions and nanoseconds into millions of simulated
// instructions per second.
func MIPS(instrs uint64, ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(instrs) * 1e3 / ns
}

// Table renders rows as an aligned markdown table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Header returns a copy of the table's column headers, so callers (and
// tests) can assert column agreement without parsing the rendered output.
func (t *Table) Header() []string {
	out := make([]string, len(t.header))
	copy(out, t.header)
	return out
}

// Row appends a row (values are stringified with %v; floats get 3
// significant digits).
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSig(v, 3)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// FormatSig formats a float with n significant digits. Non-finite values
// render as "NaN"/"Inf"/"-Inf" explicitly — feeding them through the
// magnitude computation (math.Log10 then int conversion) produced garbage
// strings. Extreme magnitudes (subnormals, values beyond int64 range)
// switch to scientific notation instead of emitting hundreds of digits.
func FormatSig(v float64, n int) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == 0:
		return "0"
	}
	mag := int(math.Floor(math.Log10(math.Abs(v))))
	if mag < -9 || mag > 18 {
		return fmt.Sprintf("%.*e", n-1, v)
	}
	dec := n - 1 - mag
	if dec < 0 {
		dec = 0
	}
	return fmt.Sprintf("%.*f", dec, v)
}

// String renders the table. The column count is the widest of the header
// and every row: a row with more cells than the header widens the table
// (extra columns get empty headers) instead of silently truncating — the
// old loop iterated the header only and dropped the surplus cells, so a
// miscounted Row call corrupted the rendered data with no visible sign.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", width[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
