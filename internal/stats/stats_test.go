package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty slice should be 0")
	}
}

// TestGeoMeanContract is the regression test for the silent-zeroing bug: a
// non-positive value (a zeroed ERR cell leaking into an aggregate) used to
// silently return 0 and wipe the whole summary. It now panics so the
// corruption is loud; callers filter error cells first.
func TestGeoMeanContract(t *testing.T) {
	for _, vals := range [][]float64{{1, 0}, {-2, 4}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeoMean(%v) should panic", vals)
				}
			}()
			GeoMean(vals)
		}()
	}
}

func TestMIPS(t *testing.T) {
	// 100 instructions in 10ns/instr = 1000ns total -> 100 MIPS.
	if m := MIPS(100, 1000); math.Abs(m-100) > 1e-9 {
		t.Errorf("mips = %f", m)
	}
	if MIPS(1, 0) != 0 {
		t.Error("zero time")
	}
}

// TestFormatSig covers the regression for NaN/±Inf (which used to go
// through int(math.Floor(math.Log10(...))) and render garbage) plus zero,
// subnormals, and large magnitudes.
func TestFormatSig(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{37.84, "37.8"},
		{9.856, "9.86"},
		{0.12345, "0.123"},
		{1234, "1234"},
		{0, "0"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Inf"},
		{math.Inf(-1), "-Inf"},
		{-37.84, "-37.8"},
		{5e-320, "5.00e-320"},         // subnormal: scientific, not 300+ zeros
		{1.5e21, "1.50e+21"},          // beyond int64 magnitude
		{1e18, "1000000000000000000"}, // largest magnitude kept in plain notation
	}
	for _, c := range cases {
		if got := FormatSig(c.v, 3); got != c.want {
			t.Errorf("FormatSig(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("a", "bb").Row("x", 1.5).Row("yyyy", 2)
	out := tb.String()
	if !strings.Contains(out, "| yyyy |") || !strings.Contains(out, "1.50") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}

// TestTableWideRow is the regression test for silent cell truncation: a
// row with more cells than the header used to render only the header's
// columns, dropping the surplus data. The table now widens instead.
func TestTableWideRow(t *testing.T) {
	tb := NewTable("a", "b").Row("1", "2", "extra", "more")
	out := tb.String()
	for _, want := range []string{"extra", "more"} {
		if !strings.Contains(out, want) {
			t.Errorf("widened table dropped %q:\n%s", want, out)
		}
	}
	// Every line must have the widened column count.
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if got := strings.Count(ln, "|"); got != 5 {
			t.Errorf("line %q has %d separators, want 5", ln, got)
		}
	}
}
