package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("degenerate cases")
	}
}

func TestMIPS(t *testing.T) {
	// 100 instructions in 10ns/instr = 1000ns total -> 100 MIPS.
	if m := MIPS(100, 1000); math.Abs(m-100) > 1e-9 {
		t.Errorf("mips = %f", m)
	}
	if MIPS(1, 0) != 0 {
		t.Error("zero time")
	}
}

func TestFormatSig(t *testing.T) {
	cases := map[float64]string{37.84: "37.8", 9.856: "9.86", 0.12345: "0.123", 1234: "1234", 0: "0"}
	for v, want := range cases {
		if got := FormatSig(v, 3); got != want {
			t.Errorf("FormatSig(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("a", "bb").Row("x", 1.5).Row("yyyy", 2)
	out := tb.String()
	if !strings.Contains(out, "| yyyy |") || !strings.Contains(out, "1.50") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}
