// Package kernels provides the benchmark workloads used to reproduce the
// paper's evaluation. Each kernel is written once in a tiny portable
// intermediate representation and lowered to all three ISAs, so every
// simulator runs the same computation (the role SPEC CPU2000int plays in
// the paper — see DESIGN.md §2 for the substitution rationale).
//
// Each kernel stores a 32-bit checksum to the `result` symbol and exits
// with code 0; the matching pure-Go reference function is the validation
// oracle.
package kernels

import "fmt"

// Reg is a virtual register. Kernels may use V0..V7; lowering maps them to
// ISA registers that do not collide with the syscall/stack/link
// conventions.
type Reg int

// Virtual registers.
const (
	V0 Reg = iota
	V1
	V2
	V3
	V4
	V5
	V6
	V7
	numVRegs
)

// CC is a comparison condition for conditional branches.
type CC int

// Conditions. Unsigned and signed comparisons are distinct, as on the real
// machines.
const (
	EQ CC = iota
	NE
	LTU
	GEU
	LTS
	GES
)

func (c CC) String() string {
	return [...]string{"eq", "ne", "ltu", "geu", "lts", "ges"}[c]
}

// Op is an IR operation.
type Op int

// IR operations.
const (
	OpConst    Op = iota // dst = imm (or address of Sym when Sym != "")
	OpMov                // dst = a
	OpAdd                // dst = a + b
	OpAddImm             // dst = a + imm
	OpSub                // dst = a - b
	OpMul                // dst = a * b
	OpAnd                // dst = a & b
	OpOr                 // dst = a | b
	OpXor                // dst = a ^ b
	OpShlImm             // dst = a << imm
	OpShrImm             // dst = a >> imm (logical)
	OpSarImm             // dst = a >> imm (arithmetic, 32-bit)
	OpMask32             // dst = dst & 0xffffffff (no-op on 32-bit ISAs)
	OpLoad               // dst = mem[a + imm] (Size bytes, Signed extends)
	OpStore              // mem[a + imm] = dst... (src in Dst slot)
	OpLabel              // Sym:
	OpBr                 // goto Sym
	OpBrCond             // if a CC b goto Sym
	OpCall               // call Sym (clobbers the link register)
	OpRet                // return
	OpPush               // push Dst on the stack
	OpPop                // pop into Dst
	OpPushLink           // save the link register on the stack
	OpPopLink            // restore the link register
	OpExit               // exit(Dst & 0xff)
)

// Ins is one IR instruction.
type Ins struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int64
	Sym    string
	Size   int // load/store size in bytes (1, 2, 4)
	Signed bool
	CC     CC
}

// DataSym is an initialized data-section object.
type DataSym struct {
	Name  string
	Bytes []byte
	Words []uint32
	Space int // zero bytes to reserve (used when Bytes/Words empty)
}

// Prog is a complete kernel program: code plus data. Lowering adds the
// standard epilogue symbol `result` (a 32-bit cell the kernel's checksum
// is stored to).
type Prog struct {
	Ins  []Ins
	Data []DataSym
}

// Builder offers a fluent way to construct IR.
type Builder struct{ p Prog }

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Prog returns the built program.
func (b *Builder) Prog() *Prog { return &b.p }

func (b *Builder) add(i Ins) *Builder {
	b.p.Ins = append(b.p.Ins, i)
	return b
}

// Const sets dst to a constant.
func (b *Builder) Const(dst Reg, v int64) *Builder {
	return b.add(Ins{Op: OpConst, Dst: dst, Imm: v})
}

// Addr sets dst to the address of a data symbol.
func (b *Builder) Addr(dst Reg, sym string) *Builder {
	return b.add(Ins{Op: OpConst, Dst: dst, Sym: sym})
}

// Mov copies a register.
func (b *Builder) Mov(dst, a Reg) *Builder { return b.add(Ins{Op: OpMov, Dst: dst, A: a}) }

// Add emits dst = a + b.
func (b *Builder) Add(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpAdd, Dst: dst, A: a, B: bb}) }

// AddImm emits dst = a + imm.
func (b *Builder) AddImm(dst, a Reg, imm int64) *Builder {
	return b.add(Ins{Op: OpAddImm, Dst: dst, A: a, Imm: imm})
}

// Sub emits dst = a - b.
func (b *Builder) Sub(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpSub, Dst: dst, A: a, B: bb}) }

// Mul emits dst = a * b.
func (b *Builder) Mul(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpMul, Dst: dst, A: a, B: bb}) }

// And emits dst = a & b.
func (b *Builder) And(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpAnd, Dst: dst, A: a, B: bb}) }

// Or emits dst = a | b.
func (b *Builder) Or(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpOr, Dst: dst, A: a, B: bb}) }

// Xor emits dst = a ^ b.
func (b *Builder) Xor(dst, a, bb Reg) *Builder { return b.add(Ins{Op: OpXor, Dst: dst, A: a, B: bb}) }

// ShlImm emits dst = a << imm.
func (b *Builder) ShlImm(dst, a Reg, imm int64) *Builder {
	return b.add(Ins{Op: OpShlImm, Dst: dst, A: a, Imm: imm})
}

// ShrImm emits dst = a >> imm (logical).
func (b *Builder) ShrImm(dst, a Reg, imm int64) *Builder {
	return b.add(Ins{Op: OpShrImm, Dst: dst, A: a, Imm: imm})
}

// Mask32 truncates dst to 32 bits (for cross-ISA checksum agreement).
func (b *Builder) Mask32(dst Reg) *Builder { return b.add(Ins{Op: OpMask32, Dst: dst}) }

// Load emits dst = mem[a + off].
func (b *Builder) Load(dst, a Reg, off int64, size int, signed bool) *Builder {
	return b.add(Ins{Op: OpLoad, Dst: dst, A: a, Imm: off, Size: size, Signed: signed})
}

// Store emits mem[a + off] = src.
func (b *Builder) Store(src, a Reg, off int64, size int) *Builder {
	return b.add(Ins{Op: OpStore, Dst: src, A: a, Imm: off, Size: size})
}

// Label places a label.
func (b *Builder) Label(sym string) *Builder { return b.add(Ins{Op: OpLabel, Sym: sym}) }

// Br jumps unconditionally.
func (b *Builder) Br(sym string) *Builder { return b.add(Ins{Op: OpBr, Sym: sym}) }

// BrCond branches when a CC b holds.
func (b *Builder) BrCond(cc CC, a, bb Reg, sym string) *Builder {
	return b.add(Ins{Op: OpBrCond, CC: cc, A: a, B: bb, Sym: sym})
}

// Call calls a function label.
func (b *Builder) Call(sym string) *Builder { return b.add(Ins{Op: OpCall, Sym: sym}) }

// Ret returns from a function.
func (b *Builder) Ret() *Builder { return b.add(Ins{Op: OpRet}) }

// Push saves a register on the stack.
func (b *Builder) Push(r Reg) *Builder { return b.add(Ins{Op: OpPush, Dst: r}) }

// Pop restores a register from the stack.
func (b *Builder) Pop(r Reg) *Builder { return b.add(Ins{Op: OpPop, Dst: r}) }

// PushLink saves the link register (required around nested calls).
func (b *Builder) PushLink() *Builder { return b.add(Ins{Op: OpPushLink}) }

// PopLink restores the link register.
func (b *Builder) PopLink() *Builder { return b.add(Ins{Op: OpPopLink}) }

// Exit terminates the program with dst & 0xff as the exit code.
func (b *Builder) Exit(r Reg) *Builder { return b.add(Ins{Op: OpExit, Dst: r}) }

// StoreResult stores the 32-bit checksum in r to the `result` cell and
// exits 0 — the standard kernel epilogue.
func (b *Builder) StoreResult(r, scratch Reg) *Builder {
	b.Mask32(r)
	b.Addr(scratch, "result")
	b.Store(r, scratch, 0, 4)
	b.Const(scratch, 0)
	return b.Exit(scratch)
}

// Data adds an initialized data object.
func (b *Builder) Data(d DataSym) *Builder {
	b.p.Data = append(b.p.Data, d)
	return b
}

func (r Reg) valid() bool { return r >= 0 && r < numVRegs }

// Validate performs basic structural checks on a program: register ranges,
// label definitions, and size fields.
func (p *Prog) Validate() error {
	labels := map[string]bool{}
	for _, in := range p.Ins {
		if in.Op == OpLabel {
			if labels[in.Sym] {
				return fmt.Errorf("kernels: duplicate label %q", in.Sym)
			}
			labels[in.Sym] = true
		}
	}
	for _, d := range p.Data {
		labels[d.Name] = true
	}
	labels["result"] = true
	for i, in := range p.Ins {
		switch in.Op {
		case OpBr, OpBrCond, OpCall:
			if !labels[in.Sym] {
				return fmt.Errorf("kernels: ins %d: undefined label %q", i, in.Sym)
			}
		case OpLoad, OpStore:
			if in.Size != 1 && in.Size != 2 && in.Size != 4 {
				return fmt.Errorf("kernels: ins %d: bad size %d", i, in.Size)
			}
		case OpConst:
			if in.Sym == "" && (in.Imm >= 1<<32 || in.Imm < -(1<<31)) {
				return fmt.Errorf("kernels: ins %d: constant %d out of 32-bit range", i, in.Imm)
			}
		}
		if !in.Dst.valid() || !in.A.valid() || !in.B.valid() {
			return fmt.Errorf("kernels: ins %d: virtual register out of range", i)
		}
	}
	return nil
}
