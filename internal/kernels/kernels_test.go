package kernels

import (
	"strings"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/sysemu"
)

// runKernel executes a kernel program and returns the checksum stored at
// the `result` symbol plus the exit code.
func runKernel(t *testing.T, i *isa.ISA, p *Prog, buildset string, opts core.Options) (uint32, int) {
	t.Helper()
	prog, err := BuildProgram(i, p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sim, err := core.Synthesize(i.Spec, buildset, opts)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	x := sim.NewExec(m)
	x.Run(200_000_000)
	if !m.Halted {
		t.Fatalf("%s/%s: kernel did not halt", i.Name, buildset)
	}
	res, _ := m.Mem.Load(prog.Symbols["result"], 4)
	return uint32(res), m.ExitCode
}

func TestKernelsMatchReferenceOnAllISAs(t *testing.T) {
	for _, k := range All {
		for _, name := range isa.Names() {
			t.Run(k.Name+"/"+name, func(t *testing.T) {
				i := isatest.Load(t, name)
				got, code := runKernel(t, i, k.Build(k.DefaultN), "one_all", core.Options{})
				if code != 0 {
					t.Fatalf("exit code %d", code)
				}
				if want := k.Ref(k.DefaultN); got != want {
					t.Errorf("checksum = %#x, want %#x", got, want)
				}
			})
		}
	}
}

func TestKernelsAgreeAcrossInterfaces(t *testing.T) {
	// Two kernels (one branchy, one memory-heavy) through every interface
	// on every ISA.
	for _, kn := range []string{"sieve", "listchase"} {
		k := ByName(kn)
		for _, name := range isa.Names() {
			i := isatest.Load(t, name)
			want := k.Ref(k.DefaultN)
			for _, bs := range isa.StdBuildsets {
				got, code := runKernel(t, i, k.Build(k.DefaultN), bs, core.Options{})
				if code != 0 || got != want {
					t.Errorf("%s/%s/%s: checksum %#x (exit %d), want %#x", kn, name, bs, got, code, want)
				}
			}
		}
	}
}

func TestKernelsUnderInterpreter(t *testing.T) {
	k := ByName("fib_rec")
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		got, _ := runKernel(t, i, k.Build(10), "one_min", core.Options{NoTranslate: true})
		if want := k.Ref(10); got != want {
			t.Errorf("%s: checksum %#x, want %#x", name, got, want)
		}
	}
}

func TestKernelScaling(t *testing.T) {
	// Checksums must track the problem size (guards against kernels that
	// ignore n).
	for _, k := range All {
		small := k.Ref(k.DefaultN)
		var larger uint32
		switch k.Name {
		case "listchase", "strsearch":
			larger = k.Ref(k.DefaultN * 2) // power-of-two / plant-stride granularity
		default:
			larger = k.Ref(k.DefaultN + 7)
		}
		if small == larger {
			t.Errorf("%s: checksum does not depend on n", k.Name)
		}
	}
}

func TestLowerRejectsUnknownISA(t *testing.T) {
	fake := &isa.ISA{Name: "mips"}
	if _, err := Lower(fake, ByName("sieve").Build(10)); err == nil {
		t.Error("expected error for unknown ISA")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	b := NewBuilder()
	b.Br("nowhere")
	if err := b.Prog().Validate(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label: %v", err)
	}
	b2 := NewBuilder()
	b2.Label("x").Label("x")
	if err := b2.Prog().Validate(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("duplicate label: %v", err)
	}
	b3 := NewBuilder()
	b3.Load(V0, V1, 0, 3, false)
	if err := b3.Prog().Validate(); err == nil || !strings.Contains(err.Error(), "bad size") {
		t.Errorf("bad size: %v", err)
	}
}

func TestLoweredAssemblyIsStable(t *testing.T) {
	// Lowering is deterministic: same IR, same text.
	i := isatest.Load(t, "alpha64")
	p := ByName("crc32").Build(16)
	a, err := Lower(i, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Lower(i, ByName("crc32").Build(16))
	if a != b {
		t.Error("lowering is not deterministic")
	}
	if !strings.Contains(a, "_start:") || !strings.Contains(a, "result: .word 0") {
		t.Error("missing standard prologue/epilogue")
	}
}

func TestSignedLoads(t *testing.T) {
	// Exercise the sign-extending load paths on every ISA.
	// 0xffff reads as -1 in either byte order; 0x80 is -128 as int8.
	build := func() *Prog {
		b := NewBuilder()
		b.Data(DataSym{Name: "d", Bytes: []byte{0xff, 0xff, 0x80, 0x00}})
		b.Addr(V1, "d")
		b.Load(V0, V1, 0, 2, true) // -1 as int16
		b.Load(V2, V1, 2, 1, true) // -128 as int8
		b.Sub(V0, V0, V2)          // -1 - (-128) = 127
		b.StoreResult(V0, V1)
		return b.Prog()
	}
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		got, _ := runKernel(t, i, build(), "one_all", core.Options{})
		if got != 127 {
			t.Errorf("%s: signed loads = %d, want 127", name, got)
		}
	}
}
