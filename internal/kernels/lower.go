package kernels

import (
	"fmt"
	"strings"

	"singlespec/internal/asm"
	"singlespec/internal/isa"
)

// Lower translates a kernel program into assembly text for the given ISA.
// Virtual registers map to ISA registers chosen to avoid the syscall,
// stack, and link conventions; kernels must place function bodies after
// the main flow's exit (lowering emits straight-line code).
func Lower(i *isa.ISA, p *Prog) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var g generator
	switch i.Name {
	case "alpha64":
		g = &alphaGen{}
	case "arm32":
		g = &armGen{}
	case "ppc32":
		g = &ppcGen{}
	default:
		return "", fmt.Errorf("kernels: no code generator for ISA %q", i.Name)
	}
	var b strings.Builder
	b.WriteString(".text\n_start:\n")
	for idx := range p.Ins {
		if err := g.ins(&b, &p.Ins[idx]); err != nil {
			return "", fmt.Errorf("kernels: ins %d: %w", idx, err)
		}
	}
	b.WriteString(".data\n")
	for _, d := range p.Data {
		fmt.Fprintf(&b, ".align 4\n%s:\n", d.Name)
		switch {
		case len(d.Bytes) > 0:
			for off := 0; off < len(d.Bytes); off += 16 {
				end := off + 16
				if end > len(d.Bytes) {
					end = len(d.Bytes)
				}
				parts := make([]string, 0, 16)
				for _, by := range d.Bytes[off:end] {
					parts = append(parts, fmt.Sprintf("%d", by))
				}
				fmt.Fprintf(&b, ".byte %s\n", strings.Join(parts, ", "))
			}
		case len(d.Words) > 0:
			for _, w := range d.Words {
				fmt.Fprintf(&b, ".word %d\n", w)
			}
		default:
			fmt.Fprintf(&b, ".space %d\n", d.Space)
		}
	}
	b.WriteString(".align 4\nresult: .word 0\n")
	return b.String(), nil
}

// BuildProgram lowers and assembles a kernel for an ISA.
func BuildProgram(i *isa.ISA, p *Prog) (*asm.Program, error) {
	src, err := Lower(i, p)
	if err != nil {
		return nil, err
	}
	a, err := asm.New(i)
	if err != nil {
		return nil, err
	}
	return a.Assemble(i.Name+"-kernel.s", src)
}

type generator interface {
	ins(b *strings.Builder, in *Ins) error
}

func emitf(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, "    "+format+"\n", args...)
}

// ---- alpha64 ----

type alphaGen struct{}

var alphaV = [numVRegs]int{1, 2, 3, 4, 5, 6, 7, 8}

func (g *alphaGen) r(v Reg) string { return fmt.Sprintf("r%d", alphaV[v]) }

func (g *alphaGen) ins(b *strings.Builder, in *Ins) error {
	r := g.r
	switch in.Op {
	case OpConst:
		if in.Sym != "" {
			emitf(b, "ldah %s, ha(%s)(r31)", r(in.Dst), in.Sym)
			emitf(b, "lda %s, lo(%s)(%s)", r(in.Dst), in.Sym, r(in.Dst))
			return nil
		}
		v := in.Imm
		switch {
		case v >= 0 && v <= 255:
			emitf(b, "addq r31, %d, %s", v, r(in.Dst))
		case v >= -32768 && v < 32768:
			emitf(b, "lda %s, %d(r31)", r(in.Dst), v)
		default:
			u := uint64(v) & 0xffffffff
			emitf(b, "ldah %s, ha(%d)(r31)", r(in.Dst), u)
			emitf(b, "lda %s, lo(%d)(%s)", r(in.Dst), u, r(in.Dst))
			// ldah/lda sign-extend; re-truncate to the 32-bit value.
			emitf(b, "sll %s, 32, %s", r(in.Dst), r(in.Dst))
			emitf(b, "srl %s, 32, %s", r(in.Dst), r(in.Dst))
		}
	case OpMov:
		emitf(b, "bis %s, %s, %s", r(in.A), r(in.A), r(in.Dst))
	case OpAdd:
		emitf(b, "addq %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpAddImm:
		switch {
		case in.Imm >= 0 && in.Imm <= 255:
			emitf(b, "addq %s, %d, %s", r(in.A), in.Imm, r(in.Dst))
		case in.Imm < 0 && in.Imm >= -255:
			emitf(b, "subq %s, %d, %s", r(in.A), -in.Imm, r(in.Dst))
		case in.Imm >= -32768 && in.Imm < 32768:
			emitf(b, "lda %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
		default:
			return fmt.Errorf("alpha: add immediate %d out of range", in.Imm)
		}
	case OpSub:
		emitf(b, "subq %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpMul:
		emitf(b, "mulq %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpAnd:
		emitf(b, "and %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpOr:
		emitf(b, "bis %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpXor:
		emitf(b, "xor %s, %s, %s", r(in.A), r(in.B), r(in.Dst))
	case OpShlImm:
		emitf(b, "sll %s, %d, %s", r(in.A), in.Imm, r(in.Dst))
	case OpShrImm:
		emitf(b, "srl %s, %d, %s", r(in.A), in.Imm, r(in.Dst))
	case OpSarImm:
		emitf(b, "sra %s, %d, %s", r(in.A), in.Imm, r(in.Dst))
	case OpMask32:
		emitf(b, "sll %s, 32, %s", r(in.Dst), r(in.Dst))
		emitf(b, "srl %s, 32, %s", r(in.Dst), r(in.Dst))
	case OpLoad:
		switch {
		case in.Size == 4 && in.Signed:
			emitf(b, "ldl %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
		case in.Size == 4:
			emitf(b, "ldl %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
			emitf(b, "sll %s, 32, %s", r(in.Dst), r(in.Dst))
			emitf(b, "srl %s, 32, %s", r(in.Dst), r(in.Dst))
		case in.Size == 2:
			emitf(b, "ldwu %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
			if in.Signed {
				emitf(b, "sll %s, 48, %s", r(in.Dst), r(in.Dst))
				emitf(b, "sra %s, 48, %s", r(in.Dst), r(in.Dst))
			}
		default:
			emitf(b, "ldbu %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
			if in.Signed {
				emitf(b, "sll %s, 56, %s", r(in.Dst), r(in.Dst))
				emitf(b, "sra %s, 56, %s", r(in.Dst), r(in.Dst))
			}
		}
	case OpStore:
		mn := map[int]string{1: "stb", 2: "stw", 4: "stl"}[in.Size]
		emitf(b, "%s %s, %d(%s)", mn, r(in.Dst), in.Imm, r(in.A))
	case OpLabel:
		fmt.Fprintf(b, "%s:\n", in.Sym)
	case OpBr:
		emitf(b, "br r31, %s", in.Sym)
	case OpBrCond:
		cmp := map[CC]string{EQ: "cmpeq", NE: "cmpeq", LTU: "cmpult", GEU: "cmpult", LTS: "cmplt", GES: "cmplt"}[in.CC]
		br := "bne"
		if in.CC == NE || in.CC == GEU || in.CC == GES {
			br = "beq"
		}
		emitf(b, "%s %s, %s, r9", cmp, r(in.A), r(in.B))
		emitf(b, "%s r9, %s", br, in.Sym)
	case OpCall:
		emitf(b, "bsr r26, %s", in.Sym)
	case OpRet:
		emitf(b, "ret r31, (r26)")
	case OpPush:
		emitf(b, "subq r30, 8, r30")
		emitf(b, "stq %s, 0(r30)", r(in.Dst))
	case OpPop:
		emitf(b, "ldq %s, 0(r30)", r(in.Dst))
		emitf(b, "addq r30, 8, r30")
	case OpPushLink:
		emitf(b, "subq r30, 8, r30")
		emitf(b, "stq r26, 0(r30)")
	case OpPopLink:
		emitf(b, "ldq r26, 0(r30)")
		emitf(b, "addq r30, 8, r30")
	case OpExit:
		emitf(b, "addq r31, 1, r0")
		emitf(b, "bis %s, %s, r16", r(in.Dst), r(in.Dst))
		emitf(b, "callsys")
	default:
		return fmt.Errorf("alpha: unsupported op %d", in.Op)
	}
	return nil
}

// ---- arm32 ----

type armGen struct{}

var armV = [numVRegs]int{1, 2, 3, 4, 5, 6, 8, 9}

func (g *armGen) r(v Reg) string { return fmt.Sprintf("r%d", armV[v]) }

// armBytes emits a 32-bit constant by rotated-immediate pieces.
func armBytes(b *strings.Builder, dst string, v uint32) {
	emitf(b, "mov %s, #%d, 4", dst, v>>24&0xff)
	emitf(b, "orr %s, %s, #%d, 8", dst, dst, v>>16&0xff)
	emitf(b, "orr %s, %s, #%d, 12", dst, dst, v>>8&0xff)
	emitf(b, "orr %s, %s, #%d, 0", dst, dst, v&0xff)
}

func (g *armGen) ins(b *strings.Builder, in *Ins) error {
	r := g.r
	switch in.Op {
	case OpConst:
		if in.Sym != "" {
			d := r(in.Dst)
			emitf(b, "mov %s, #byte3(%s), 4", d, in.Sym)
			emitf(b, "orr %s, %s, #byte2(%s), 8", d, d, in.Sym)
			emitf(b, "orr %s, %s, #byte1(%s), 12", d, d, in.Sym)
			emitf(b, "orr %s, %s, #byte0(%s), 0", d, d, in.Sym)
			return nil
		}
		v := uint32(in.Imm)
		switch {
		case v <= 255:
			emitf(b, "mov %s, #%d, 0", r(in.Dst), v)
		case ^v <= 255:
			emitf(b, "mvn %s, #%d, 0", r(in.Dst), ^v)
		default:
			armBytes(b, r(in.Dst), v)
		}
	case OpMov:
		emitf(b, "mov %s, %s, 0, 0", r(in.Dst), r(in.A))
	case OpAdd:
		emitf(b, "add %s, %s, %s, 0, 0", r(in.Dst), r(in.A), r(in.B))
	case OpAddImm:
		switch {
		case in.Imm >= 0 && in.Imm <= 255:
			emitf(b, "add %s, %s, #%d, 0", r(in.Dst), r(in.A), in.Imm)
		case in.Imm < 0 && in.Imm >= -255:
			emitf(b, "sub %s, %s, #%d, 0", r(in.Dst), r(in.A), -in.Imm)
		default:
			armBytes(b, "r10", uint32(in.Imm))
			emitf(b, "add %s, %s, r10, 0, 0", r(in.Dst), r(in.A))
		}
	case OpSub:
		emitf(b, "sub %s, %s, %s, 0, 0", r(in.Dst), r(in.A), r(in.B))
	case OpMul:
		emitf(b, "mul %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpAnd:
		emitf(b, "and %s, %s, %s, 0, 0", r(in.Dst), r(in.A), r(in.B))
	case OpOr:
		emitf(b, "orr %s, %s, %s, 0, 0", r(in.Dst), r(in.A), r(in.B))
	case OpXor:
		emitf(b, "eor %s, %s, %s, 0, 0", r(in.Dst), r(in.A), r(in.B))
	case OpShlImm:
		emitf(b, "mov %s, %s, 0, %d", r(in.Dst), r(in.A), in.Imm)
	case OpShrImm:
		emitf(b, "mov %s, %s, 1, %d", r(in.Dst), r(in.A), in.Imm)
	case OpSarImm:
		emitf(b, "mov %s, %s, 2, %d", r(in.Dst), r(in.A), in.Imm)
	case OpMask32:
		// Registers are 32 bits wide already.
	case OpLoad:
		switch {
		case in.Size == 4:
			emitf(b, "ldr %s, [%s, #%d]", r(in.Dst), r(in.A), in.Imm)
		case in.Size == 2 && in.Signed:
			emitf(b, "ldrsh %s, [%s, #%d]", r(in.Dst), r(in.A), in.Imm)
		case in.Size == 2:
			emitf(b, "ldrh %s, [%s, #%d]", r(in.Dst), r(in.A), in.Imm)
		case in.Signed:
			emitf(b, "ldrsb %s, [%s, #%d]", r(in.Dst), r(in.A), in.Imm)
		default:
			emitf(b, "ldrb %s, [%s, #%d]", r(in.Dst), r(in.A), in.Imm)
		}
	case OpStore:
		mnS := map[int]string{1: "strb", 2: "strh", 4: "str"}[in.Size]
		emitf(b, "%s %s, [%s, #%d]", mnS, r(in.Dst), r(in.A), in.Imm)
	case OpLabel:
		fmt.Fprintf(b, "%s:\n", in.Sym)
	case OpBr:
		emitf(b, "b %s", in.Sym)
	case OpBrCond:
		emitf(b, "cmp %s, %s, 0, 0", r(in.A), r(in.B))
		sfx := map[CC]string{EQ: "eq", NE: "ne", LTU: "cc", GEU: "cs", LTS: "lt", GES: "ge"}[in.CC]
		emitf(b, "b%s %s", sfx, in.Sym)
	case OpCall:
		emitf(b, "bl %s", in.Sym)
	case OpRet:
		emitf(b, "bx r14")
	case OpPush:
		emitf(b, "sub r13, r13, #4, 0")
		emitf(b, "str %s, [r13, #0]", r(in.Dst))
	case OpPop:
		emitf(b, "ldr %s, [r13, #0]", r(in.Dst))
		emitf(b, "add r13, r13, #4, 0")
	case OpPushLink:
		emitf(b, "sub r13, r13, #4, 0")
		emitf(b, "str r14, [r13, #0]")
	case OpPopLink:
		emitf(b, "ldr r14, [r13, #0]")
		emitf(b, "add r13, r13, #4, 0")
	case OpExit:
		emitf(b, "mov r7, #1, 0")
		emitf(b, "mov r0, %s, 0, 0", r(in.Dst))
		emitf(b, "swi")
	default:
		return fmt.Errorf("arm: unsupported op %d", in.Op)
	}
	return nil
}

// ---- ppc32 ----

type ppcGen struct{}

var ppcV = [numVRegs]int{14, 15, 16, 17, 18, 19, 20, 21}

func (g *ppcGen) r(v Reg) string { return fmt.Sprintf("r%d", ppcV[v]) }

func (g *ppcGen) ins(b *strings.Builder, in *Ins) error {
	r := g.r
	switch in.Op {
	case OpConst:
		if in.Sym != "" {
			emitf(b, "addis %s, r0, ha(%s)", r(in.Dst), in.Sym)
			emitf(b, "addi %s, %s, lo(%s)", r(in.Dst), r(in.Dst), in.Sym)
			return nil
		}
		v := in.Imm
		if v >= -32768 && v < 32768 {
			emitf(b, "addi %s, r0, %d", r(in.Dst), v)
		} else {
			u := uint64(v) & 0xffffffff
			emitf(b, "addis %s, r0, ha(%d)", r(in.Dst), u)
			emitf(b, "addi %s, %s, lo(%d)", r(in.Dst), r(in.Dst), u)
		}
	case OpMov:
		emitf(b, "or %s, %s, %s", r(in.Dst), r(in.A), r(in.A))
	case OpAdd:
		emitf(b, "add %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpAddImm:
		if in.Imm < -32768 || in.Imm >= 32768 {
			return fmt.Errorf("ppc: add immediate %d out of range", in.Imm)
		}
		emitf(b, "addi %s, %s, %d", r(in.Dst), r(in.A), in.Imm)
	case OpSub:
		// subf rt, ra, rb computes rb - ra.
		emitf(b, "subf %s, %s, %s", r(in.Dst), r(in.B), r(in.A))
	case OpMul:
		emitf(b, "mullw %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpAnd:
		emitf(b, "and %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpOr:
		emitf(b, "or %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpXor:
		emitf(b, "xor %s, %s, %s", r(in.Dst), r(in.A), r(in.B))
	case OpShlImm:
		emitf(b, "rlwinm %s, %s, %d, 0, %d", r(in.Dst), r(in.A), in.Imm, 31-in.Imm)
	case OpShrImm:
		emitf(b, "rlwinm %s, %s, %d, %d, 31", r(in.Dst), r(in.A), (32-in.Imm)%32, in.Imm)
	case OpSarImm:
		emitf(b, "srawi %s, %s, %d", r(in.Dst), r(in.A), in.Imm)
	case OpMask32:
		// Registers are 32 bits wide already.
	case OpLoad:
		switch {
		case in.Size == 4:
			emitf(b, "lwz %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
		case in.Size == 2 && in.Signed:
			emitf(b, "lha %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
		case in.Size == 2:
			emitf(b, "lhz %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
		default:
			emitf(b, "lbz %s, %d(%s)", r(in.Dst), in.Imm, r(in.A))
			if in.Signed {
				emitf(b, "extsb %s, %s", r(in.Dst), r(in.Dst))
			}
		}
	case OpStore:
		mn := map[int]string{1: "stb", 2: "sth", 4: "stw"}[in.Size]
		emitf(b, "%s %s, %d(%s)", mn, r(in.Dst), in.Imm, r(in.A))
	case OpLabel:
		fmt.Fprintf(b, "%s:\n", in.Sym)
	case OpBr:
		emitf(b, "b %s", in.Sym)
	case OpBrCond:
		cmp := "cmpw"
		if in.CC == LTU || in.CC == GEU {
			cmp = "cmplw"
		}
		emitf(b, "%s 0, %s, %s", cmp, r(in.A), r(in.B))
		switch in.CC {
		case EQ:
			emitf(b, "bt 2, %s", in.Sym)
		case NE:
			emitf(b, "bf 2, %s", in.Sym)
		case LTS, LTU:
			emitf(b, "bt 0, %s", in.Sym)
		case GES, GEU:
			emitf(b, "bf 0, %s", in.Sym)
		}
	case OpCall:
		emitf(b, "bl %s", in.Sym)
	case OpRet:
		emitf(b, "blr")
	case OpPush:
		emitf(b, "stwu %s, -4(r1)", r(in.Dst))
	case OpPop:
		emitf(b, "lwz %s, 0(r1)", r(in.Dst))
		emitf(b, "addi r1, r1, 4")
	case OpPushLink:
		emitf(b, "mflr r22")
		emitf(b, "stwu r22, -4(r1)")
	case OpPopLink:
		emitf(b, "lwz r22, 0(r1)")
		emitf(b, "addi r1, r1, 4")
		emitf(b, "mtlr r22")
	case OpExit:
		emitf(b, "addi r0, r0, 1")
		emitf(b, "or r3, %s, %s", r(in.Dst), r(in.Dst))
		emitf(b, "sc")
	default:
		return fmt.Errorf("ppc: unsupported op %d", in.Op)
	}
	return nil
}
