package kernels_test

import (
	"errors"
	"os"
	"testing"

	"singlespec/internal/aot"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
)

// AOT differential testing: the same seeded random programs the rotating
// interpreter test replays (diffSeeds, PR 1) are lowered to every ISA and
// executed under both the closure interpreter and the generated standalone
// runner binary. aot.DiffProgram compares at retire granularity — the
// byte-identical visibility-record stream, the complete final architectural
// state, and the deterministic work counter the host reconstructs from the
// runner's execution profile.
//
// There are exactly twelve seeds and twelve standard buildsets, so seed i
// runs under StdBuildsets[i]: across one test run every derived interface is
// exercised against the AOT backend on every ISA.

// TestSeededAOTDifferential diffs all 12 seeds x 3 ISAs, one buildset per
// seed, interpreter vs. AOT runner.
func TestSeededAOTDifferential(t *testing.T) {
	if len(diffSeeds) != len(isa.StdBuildsets) {
		t.Fatalf("seed table (%d) and StdBuildsets (%d) fell out of sync; revisit the pairing",
			len(diffSeeds), len(isa.StdBuildsets))
	}
	cacheDir, err := os.MkdirTemp("", "aot-kdiff-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	for seedIdx, seed := range diffSeeds {
		buildset := isa.StdBuildsets[seedIdx]
		p := genProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %#08x: generated invalid IR: %v", seed, err)
		}
		for _, name := range isa.Names() {
			i := isatest.Load(t, name)
			sim, err := core.Synthesize(i.Spec, buildset, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := aot.Build(sim, aot.RunnerConvFor(i.Conv), cacheDir, nil)
			if errors.Is(err, aot.ErrNoToolchain) {
				t.Skip("skipping: go toolchain not available on PATH")
			}
			if err != nil {
				t.Fatalf("%s/%s: build: %v", name, buildset, err)
			}
			prog, err := kernels.BuildProgram(i, p)
			if err != nil {
				t.Fatalf("seed %#08x on %s: lower: %v", seed, name, err)
			}
			d, err := aot.DiffProgram(sim, i, prog, b.BinPath, aot.DiffConfig{})
			if err != nil {
				t.Fatalf("seed %#08x on %s/%s: %v", seed, name, buildset, err)
			}
			if d != nil {
				t.Errorf("seed %#08x on %s/%s: %v (replay: add seed to diffSeeds)",
					seed, name, buildset, d)
			}
		}
	}
}

// TestKernelsAOTDifferential diffs every real benchmark kernel at a reduced
// problem size on every ISA under one buildset per interface mode. The
// random programs above stress instruction mixes; this pins the actual
// workloads the experiment tables are built from.
func TestKernelsAOTDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kernel sweep in -short mode")
	}
	cacheDir, err := os.MkdirTemp("", "aot-kdiff-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	smallN := map[string]int{
		"sieve": 200, "fib_iter": 24, "fib_rec": 8, "matmul": 4,
		"crc32": 64, "strsearch": 96, "listchase": 64, "bubblesort": 16,
		"hashmix": 100,
	}
	for _, name := range isa.Names() {
		i := isatest.Load(t, name)
		for _, buildset := range []string{"one_all", "block_decode", "step_all_spec"} {
			sim, err := core.Synthesize(i.Spec, buildset, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := aot.Build(sim, aot.RunnerConvFor(i.Conv), cacheDir, nil)
			if errors.Is(err, aot.ErrNoToolchain) {
				t.Skip("skipping: go toolchain not available on PATH")
			}
			if err != nil {
				t.Fatalf("%s/%s: build: %v", name, buildset, err)
			}
			for _, k := range kernels.All {
				n := smallN[k.Name]
				if n == 0 {
					n = k.DefaultN
				}
				prog, err := kernels.BuildProgram(i, k.Build(n))
				if err != nil {
					t.Fatalf("%s on %s: lower: %v", k.Name, name, err)
				}
				d, err := aot.DiffProgram(sim, i, prog, b.BinPath, aot.DiffConfig{})
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", k.Name, name, buildset, err)
				}
				if d != nil {
					t.Errorf("%s on %s/%s: %v", k.Name, name, buildset, d)
				}
			}
		}
	}
}
