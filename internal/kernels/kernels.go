package kernels

// The kernel suite. Each kernel mirrors a workload family from the paper's
// benchmark mix (SPEC CPU2000int / MediaBench): branchy sieving, tight
// arithmetic loops, deep recursion, dense matrix arithmetic, bit-serial
// CRC, byte scanning, pointer chasing, sorting, and hash mixing.

// Kernel pairs an IR builder with its pure-Go reference oracle.
type Kernel struct {
	Name string
	// Build constructs the kernel IR for problem size n.
	Build func(n int) *Prog
	// Ref computes the expected 32-bit checksum for problem size n.
	Ref func(n int) uint32
	// DefaultN is the problem size used by tests; benchmarks scale it.
	DefaultN int
}

// All lists the kernel suite. Six kernels make up the Table II workload
// mix (mirroring the paper's six SPECint benchmarks); the rest widen
// validation coverage.
var All = []Kernel{
	{Name: "sieve", Build: buildSieve, Ref: refSieve, DefaultN: 500},
	{Name: "fib_iter", Build: buildFibIter, Ref: refFibIter, DefaultN: 40},
	{Name: "fib_rec", Build: buildFibRec, Ref: refFibRec, DefaultN: 12},
	{Name: "matmul", Build: buildMatmul, Ref: refMatmul, DefaultN: 8},
	{Name: "crc32", Build: buildCRC, Ref: refCRC, DefaultN: 256},
	{Name: "strsearch", Build: buildStrsearch, Ref: refStrsearch, DefaultN: 512},
	{Name: "listchase", Build: buildListchase, Ref: refListchase, DefaultN: 256},
	{Name: "bubblesort", Build: buildBubble, Ref: refBubble, DefaultN: 48},
	{Name: "hashmix", Build: buildHashmix, Ref: refHashmix, DefaultN: 1000},
}

// ByName returns a kernel by name, or nil.
func ByName(name string) *Kernel {
	for i := range All {
		if All[i].Name == name {
			return &All[i]
		}
	}
	return nil
}

// xorshift32 is the deterministic data generator shared by builders and
// references.
func xorshift32(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}

func genWords(n int, seed uint32) []uint32 {
	out := make([]uint32, n)
	x := seed
	for i := range out {
		x = xorshift32(x)
		out[i] = x
	}
	return out
}

func genBytes(n int, seed uint32) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x = xorshift32(x)
		out[i] = byte(x >> 8)
	}
	return out
}

// ---- sieve ----

func buildSieve(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "flags", Space: n + 1})
	b.Const(V0, 0)        // count
	b.Const(V1, 2)        // i
	b.Addr(V2, "flags")   // base
	b.Const(V3, int64(n)) // n
	b.Const(V7, 0)        // zero
	b.Label("iloop")
	b.BrCond(LTU, V3, V1, "done")
	b.Add(V4, V2, V1)
	b.Load(V5, V4, 0, 1, false)
	b.BrCond(NE, V5, V7, "composite")
	b.AddImm(V0, V0, 1) // prime
	b.Mul(V6, V1, V1)   // j = i*i
	b.Label("jloop")
	b.BrCond(LTU, V3, V6, "composite")
	b.Add(V4, V2, V6)
	b.Const(V5, 1)
	b.Store(V5, V4, 0, 1)
	b.Add(V6, V6, V1)
	b.Br("jloop")
	b.Label("composite")
	b.AddImm(V1, V1, 1)
	b.Br("iloop")
	b.Label("done")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refSieve(n int) uint32 {
	flags := make([]byte, n+1)
	count := uint32(0)
	for i := 2; i <= n; i++ {
		if flags[i] != 0 {
			continue
		}
		count++
		for j := i * i; j <= n; j += i {
			flags[j] = 1
		}
	}
	return count
}

// ---- fib_iter ----

func buildFibIter(n int) *Prog {
	b := NewBuilder()
	b.Const(V0, 0) // a
	b.Const(V1, 1) // b
	b.Const(V2, int64(n))
	b.Const(V4, 0) // zero
	b.Label("loop")
	b.Add(V3, V0, V1)
	b.Mask32(V3)
	b.Mov(V0, V1)
	b.Mov(V1, V3)
	b.AddImm(V2, V2, -1)
	b.BrCond(NE, V2, V4, "loop")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refFibIter(n int) uint32 {
	a, bb := uint32(0), uint32(1)
	for i := 0; i < n; i++ {
		a, bb = bb, a+bb
	}
	return a
}

// ---- fib_rec ----

func buildFibRec(n int) *Prog {
	b := NewBuilder()
	b.Const(V0, int64(n))
	b.Call("fib")
	b.StoreResult(V0, V1)
	b.Label("fib")
	b.Const(V1, 2)
	b.BrCond(GEU, V0, V1, "fib_rec_case")
	b.Ret()
	b.Label("fib_rec_case")
	b.PushLink()
	b.Push(V2)
	b.Push(V3)
	b.Mov(V2, V0)
	b.AddImm(V0, V2, -1)
	b.Call("fib")
	b.Mov(V3, V0)
	b.AddImm(V0, V2, -2)
	b.Call("fib")
	b.Add(V0, V0, V3)
	b.Mask32(V0)
	b.Pop(V3)
	b.Pop(V2)
	b.PopLink()
	b.Ret()
	return b.Prog()
}

func refFibRec(n int) uint32 {
	var fib func(int) uint32
	fib = func(k int) uint32 {
		if k < 2 {
			return uint32(k)
		}
		return fib(k-1) + fib(k-2)
	}
	return fib(n)
}

// ---- matmul ----

func buildMatmul(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "mata", Words: genWords(n*n, 0x1234)})
	b.Data(DataSym{Name: "matb", Words: genWords(n*n, 0x5678)})
	b.Data(DataSym{Name: "matc", Space: n * n * 4})
	b.Const(V6, int64(n))
	b.Const(V0, 0) // i
	b.Label("iloop")
	b.BrCond(GEU, V0, V6, "sum")
	b.Const(V1, 0) // j
	b.Label("jloop")
	b.BrCond(GEU, V1, V6, "inext")
	b.Const(V2, 0) // k
	b.Const(V3, 0) // acc
	b.Label("kloop")
	b.BrCond(GEU, V2, V6, "kdone")
	// a = A[i*n+k]
	b.Mul(V4, V0, V6)
	b.Add(V4, V4, V2)
	b.ShlImm(V4, V4, 2)
	b.Addr(V5, "mata")
	b.Add(V4, V4, V5)
	b.Load(V4, V4, 0, 4, false)
	// b = B[k*n+j]
	b.Mul(V5, V2, V6)
	b.Add(V5, V5, V1)
	b.ShlImm(V5, V5, 2)
	b.Addr(V7, "matb")
	b.Add(V5, V5, V7)
	b.Load(V5, V5, 0, 4, false)
	b.Mul(V4, V4, V5)
	b.Add(V3, V3, V4)
	b.Mask32(V3)
	b.AddImm(V2, V2, 1)
	b.Br("kloop")
	b.Label("kdone")
	// C[i*n+j] = acc
	b.Mul(V4, V0, V6)
	b.Add(V4, V4, V1)
	b.ShlImm(V4, V4, 2)
	b.Addr(V5, "matc")
	b.Add(V4, V4, V5)
	b.Store(V3, V4, 0, 4)
	b.AddImm(V1, V1, 1)
	b.Br("jloop")
	b.Label("inext")
	b.AddImm(V0, V0, 1)
	b.Br("iloop")
	// checksum = sum(C) rotated
	b.Label("sum")
	b.Const(V0, 0) // sum
	b.Const(V1, 0) // idx
	b.Mul(V2, V6, V6)
	b.Addr(V3, "matc")
	b.Label("sloop")
	b.BrCond(GEU, V1, V2, "sdone")
	b.Load(V4, V3, 0, 4, false)
	b.Add(V0, V0, V4)
	b.Mask32(V0)
	b.AddImm(V3, V3, 4)
	b.AddImm(V1, V1, 1)
	b.Br("sloop")
	b.Label("sdone")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refMatmul(n int) uint32 {
	a := genWords(n*n, 0x1234)
	bm := genWords(n*n, 0x5678)
	c := make([]uint32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint32
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * bm[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	var sum uint32
	for _, v := range c {
		sum += v
	}
	return sum
}

// ---- crc32 ----

func buildCRC(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "crcbuf", Bytes: genBytes(n, 0xbeef)})
	b.Const(V0, -1) // crc = 0xffffffff (Mask32 applies on alpha via loads path)
	b.Mask32(V0)
	b.Addr(V1, "crcbuf")
	b.Addr(V2, "crcbuf")
	b.AddImm(V2, V2, int64(n)) // end
	b.Const(V3, 0xEDB88320)
	b.Const(V7, 1)
	b.Label("byteloop")
	b.BrCond(GEU, V1, V2, "done")
	b.Load(V4, V1, 0, 1, false)
	b.Xor(V0, V0, V4)
	b.Const(V5, 8)
	b.Label("bitloop")
	b.And(V6, V0, V7)
	b.ShrImm(V0, V0, 1)
	b.BrCond(NE, V6, V7, "skip")
	b.Xor(V0, V0, V3)
	b.Label("skip")
	b.AddImm(V5, V5, -1)
	b.BrCond(GEU, V5, V7, "bitloop")
	b.AddImm(V1, V1, 1)
	b.Br("byteloop")
	b.Label("done")
	b.Const(V4, -1)
	b.Mask32(V4)
	b.Xor(V0, V0, V4)
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refCRC(n int) uint32 {
	crc := ^uint32(0)
	for _, by := range genBytes(n, 0xbeef) {
		crc ^= uint32(by)
		for k := 0; k < 8; k++ {
			bit := crc & 1
			crc >>= 1
			if bit != 0 {
				crc ^= 0xEDB88320
			}
		}
	}
	return ^crc
}

// ---- strsearch ----

func strsearchText(n int) []byte {
	text := genBytes(n, 0xfeed)
	// Plant the pattern at deterministic spots.
	for i := 10; i+3 < n; i += 61 {
		text[i], text[i+1], text[i+2] = 'a', 'b', 'c'
	}
	return text
}

func buildStrsearch(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "text", Bytes: strsearchText(n)})
	b.Const(V0, 0) // count
	b.Addr(V1, "text")
	b.Addr(V2, "text")
	b.AddImm(V2, V2, int64(n-2)) // end
	b.Const(V3, 'a')
	b.Const(V4, 'b')
	b.Const(V5, 'c')
	b.Label("loop")
	b.BrCond(GEU, V1, V2, "done")
	b.Load(V6, V1, 0, 1, false)
	b.BrCond(NE, V6, V3, "next")
	b.Load(V6, V1, 1, 1, false)
	b.BrCond(NE, V6, V4, "next")
	b.Load(V6, V1, 2, 1, false)
	b.BrCond(NE, V6, V5, "next")
	b.AddImm(V0, V0, 1)
	b.Label("next")
	b.AddImm(V1, V1, 1)
	b.Br("loop")
	b.Label("done")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refStrsearch(n int) uint32 {
	text := strsearchText(n)
	count := uint32(0)
	for i := 0; i+2 < n; i++ {
		if text[i] == 'a' && text[i+1] == 'b' && text[i+2] == 'c' {
			count++
		}
	}
	return count
}

// ---- listchase ----
// n must be a power of two. Nodes are 8 bytes: [next_ptr(4) | value(4)].

func buildListchase(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "nodes", Space: n * 8})
	b.Const(V6, int64(n))
	// Build phase: node[i].next = &nodes[(i*5+3) & (n-1)], value = i*i.
	b.Const(V0, 0) // i
	b.Addr(V1, "nodes")
	b.Label("build")
	b.BrCond(GEU, V0, V6, "chase")
	b.ShlImm(V2, V0, 3)
	b.Add(V2, V2, V1) // &nodes[i]
	// next index
	b.Const(V3, 5)
	b.Mul(V3, V0, V3)
	b.AddImm(V3, V3, 3)
	b.Const(V4, int64(n-1))
	b.And(V3, V3, V4)
	b.ShlImm(V3, V3, 3)
	b.Add(V3, V3, V1)
	b.Store(V3, V2, 0, 4)
	b.Mul(V4, V0, V0)
	b.Mask32(V4)
	b.Store(V4, V2, 4, 4)
	b.AddImm(V0, V0, 1)
	b.Br("build")
	// Chase phase.
	b.Label("chase")
	b.Mov(V2, V1) // p = nodes
	b.Const(V0, 0)
	b.Mov(V3, V6) // steps
	b.Const(V7, 0)
	b.Label("step")
	b.Load(V4, V2, 4, 4, false)
	b.Add(V0, V0, V4)
	b.Mask32(V0)
	b.Load(V2, V2, 0, 4, false)
	b.AddImm(V3, V3, -1)
	b.BrCond(NE, V3, V7, "step")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refListchase(n int) uint32 {
	next := make([]int, n)
	val := make([]uint32, n)
	for i := 0; i < n; i++ {
		next[i] = (i*5 + 3) & (n - 1)
		val[i] = uint32(i * i)
	}
	var sum uint32
	p := 0
	for s := 0; s < n; s++ {
		sum += val[p]
		p = next[p]
	}
	return sum
}

// ---- bubblesort ----

func buildBubble(n int) *Prog {
	b := NewBuilder()
	b.Data(DataSym{Name: "arr", Words: genWords(n, 0xc0de)})
	b.Addr(V0, "arr")
	b.Const(V1, int64(n-1)) // i
	b.Const(V7, 0)
	b.Label("outer")
	b.BrCond(EQ, V1, V7, "sorted")
	b.Const(V2, 0) // j
	b.Label("inner")
	b.BrCond(GEU, V2, V1, "onext")
	b.ShlImm(V5, V2, 2)
	b.Add(V5, V5, V0)
	b.Load(V3, V5, 0, 4, false)
	b.Load(V4, V5, 4, 4, false)
	b.BrCond(GEU, V4, V3, "noswap")
	b.Store(V4, V5, 0, 4)
	b.Store(V3, V5, 4, 4)
	b.Label("noswap")
	b.AddImm(V2, V2, 1)
	b.Br("inner")
	b.Label("onext")
	b.AddImm(V1, V1, -1)
	b.Br("outer")
	// checksum = sum((idx+1) * arr[idx] >> 16)
	b.Label("sorted")
	b.Const(V1, 0) // idx
	b.Const(V2, 0) // sum
	b.Const(V6, int64(n))
	b.Label("ck")
	b.BrCond(GEU, V1, V6, "ckdone")
	b.ShlImm(V5, V1, 2)
	b.Add(V5, V5, V0)
	b.Load(V3, V5, 0, 4, false)
	b.ShrImm(V3, V3, 16)
	b.AddImm(V4, V1, 1)
	b.Mul(V3, V3, V4)
	b.Add(V2, V2, V3)
	b.Mask32(V2)
	b.AddImm(V1, V1, 1)
	b.Br("ck")
	b.Label("ckdone")
	b.StoreResult(V2, V1)
	return b.Prog()
}

func refBubble(n int) uint32 {
	arr := genWords(n, 0xc0de)
	for i := n - 1; i > 0; i-- {
		for j := 0; j < i; j++ {
			if arr[j] > arr[j+1] {
				arr[j], arr[j+1] = arr[j+1], arr[j]
			}
		}
	}
	var sum uint32
	for i, v := range arr {
		sum += (v >> 16) * uint32(i+1)
	}
	return sum
}

// ---- hashmix ----

func buildHashmix(n int) *Prog {
	b := NewBuilder()
	b.Const(V0, 0x811c9dc5) // h (FNV offset basis)
	b.Mask32(V0)
	b.Const(V1, 0x92d68ca2) // x (xorshift seed)
	b.Mask32(V1)
	b.Const(V2, int64(n))
	b.Const(V4, 0)
	b.Const(V5, 0x01000193) // FNV prime
	b.Label("loop")
	b.ShlImm(V3, V1, 13)
	b.Xor(V1, V1, V3)
	b.Mask32(V1)
	b.ShrImm(V3, V1, 17)
	b.Xor(V1, V1, V3)
	b.ShlImm(V3, V1, 5)
	b.Xor(V1, V1, V3)
	b.Mask32(V1)
	b.Xor(V0, V0, V1)
	b.Mul(V0, V0, V5)
	b.Mask32(V0)
	b.AddImm(V2, V2, -1)
	b.BrCond(NE, V2, V4, "loop")
	b.StoreResult(V0, V1)
	return b.Prog()
}

func refHashmix(n int) uint32 {
	h := uint32(0x811c9dc5)
	x := uint32(0x92d68ca2)
	for i := 0; i < n; i++ {
		x = xorshift32(x)
		h = (h ^ x) * 0x01000193
	}
	return h
}
