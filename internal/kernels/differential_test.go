package kernels_test

import (
	"fmt"
	"strings"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
	"singlespec/internal/sysemu"
)

// Seeded differential testing: random kernel-IR programs are generated from
// a fixed seed table, lowered to all three ISAs, executed under rotating
// buildsets (each dynamic instruction through a different derived
// interface), and compared against a pure-Go IR interpreter — the oracle.
// Any divergence prints the seed so the exact program can be replayed by
// adding that seed to the table.
//
// The generator keeps the IR inside the cross-ISA-portable subset: every
// arithmetic result is immediately Mask32'd (so 64-bit alpha64 registers
// stay in lock-step with the 32-bit ISAs), comparisons are unsigned or
// equality only (signed 32-vs-64-bit comparison semantics differ), and all
// memory accesses are 4-byte aligned words (so byte order never matters).

// diffSeeds is the fixed replay table. Append a failing seed here to pin a
// regression.
var diffSeeds = []uint32{
	0x00000001, 0x9e3779b9, 0xdeadbeef, 0x12345678,
	0x5bd1e995, 0xcafef00d, 0x08675309, 0xfeedface,
	0x41c64e6d, 0x7f4a7c15, 0x2545f491, 0x00ff00ff,
}

// xorshift32 is the test's deterministic PRNG.
type xorshift32 uint32

func (s *xorshift32) next() uint32 {
	x := uint32(*s)
	if x == 0 {
		x = 0x6b43a9b5
	}
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*s = xorshift32(x)
	return x
}

const diffBufWords = 16

// genProgram builds a random counted-loop program from one seed. V0..V3 are
// data registers, V4 points at the word buffer, V5 accumulates the
// checksum, V6 is scratch, V7 counts the loop.
func genProgram(seed uint32) *kernels.Prog {
	rnd := xorshift32(seed)
	b := kernels.NewBuilder()

	words := make([]uint32, diffBufWords)
	for i := range words {
		words[i] = rnd.next()
	}
	b.Data(kernels.DataSym{Name: "buf", Words: words})

	dataRegs := []kernels.Reg{kernels.V0, kernels.V1, kernels.V2, kernels.V3}
	for _, r := range dataRegs {
		b.Const(r, int64(rnd.next()))
	}
	b.Const(kernels.V5, int64(rnd.next()))
	b.Addr(kernels.V4, "buf")
	b.Const(kernels.V7, int64(3+rnd.next()%6))
	b.Label("loop")

	nOps := 20 + int(rnd.next()%40)
	skips := 0
	for op := 0; op < nOps; op++ {
		dst := dataRegs[rnd.next()%4]
		a := dataRegs[rnd.next()%4]
		c := dataRegs[rnd.next()%4]
		switch rnd.next() % 12 {
		case 0:
			b.Add(dst, a, c)
		case 1:
			b.Sub(dst, a, c)
		case 2:
			b.Mul(dst, a, c)
		case 3:
			b.And(dst, a, c)
		case 4:
			b.Or(dst, a, c)
		case 5:
			b.Xor(dst, a, c)
		case 6:
			b.ShlImm(dst, a, int64(1+rnd.next()%7))
		case 7:
			b.ShrImm(dst, a, int64(1+rnd.next()%7))
		case 8:
			b.AddImm(dst, a, int64(rnd.next()%511)-255)
		case 9:
			b.Load(dst, kernels.V4, int64(4*(rnd.next()%diffBufWords)), 4, false)
		case 10:
			b.Store(a, kernels.V4, int64(4*(rnd.next()%diffBufWords)), 4)
			dst = a // fold the stored value
		case 11:
			// A forward conditional skip over the next few ops: control-flow
			// diversity inside the portable comparison subset.
			sym := fmt.Sprintf("skip%d", skips)
			skips++
			cc := []kernels.CC{kernels.EQ, kernels.NE, kernels.LTU, kernels.GEU}[rnd.next()%4]
			b.BrCond(cc, a, c, sym)
			for j := 0; j < int(rnd.next()%3); j++ {
				d2 := dataRegs[rnd.next()%4]
				b.Xor(d2, d2, dataRegs[rnd.next()%4])
				b.Mask32(d2)
				b.Xor(kernels.V5, kernels.V5, d2)
				b.Mask32(kernels.V5)
				op++
			}
			b.Label(sym)
			continue
		}
		b.Mask32(dst)
		b.Xor(kernels.V5, kernels.V5, dst)
		b.Mask32(kernels.V5)
	}

	b.AddImm(kernels.V7, kernels.V7, -1)
	b.Mask32(kernels.V7)
	b.Const(kernels.V6, 0)
	b.BrCond(kernels.NE, kernels.V7, kernels.V6, "loop")
	b.StoreResult(kernels.V5, kernels.V6)
	return b.Prog()
}

// interpret is the pure-Go oracle: it executes the generated IR directly.
// Registers are 64-bit (as on alpha64) and rely on the generator's Mask32
// discipline; memory is word-addressed per data symbol, so the oracle is
// byte-order-agnostic like the generated programs themselves.
func interpret(p *kernels.Prog, maxSteps int) (uint32, error) {
	labels := map[string]int{}
	for idx, in := range p.Ins {
		if in.Op == kernels.OpLabel {
			labels[in.Sym] = idx
		}
	}
	mem := map[string][]uint32{"result": make([]uint32, 1)}
	for _, d := range p.Data {
		if len(d.Bytes) > 0 || d.Space > 0 {
			return 0, fmt.Errorf("oracle: %s: only word data is modeled", d.Name)
		}
		mem[d.Name] = append([]uint32(nil), d.Words...)
	}
	var regs [8]uint64
	var base [8]string
	word := func(r kernels.Reg, off int64) (*uint32, error) {
		buf := mem[base[r]]
		if buf == nil {
			return nil, fmt.Errorf("oracle: access through non-address register V%d", r)
		}
		idx := int64(regs[r]) + off
		if idx%4 != 0 || idx < 0 || idx/4 >= int64(len(buf)) {
			return nil, fmt.Errorf("oracle: %s access at offset %d out of range", base[r], idx)
		}
		return &buf[idx/4], nil
	}
	pc := 0
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return 0, fmt.Errorf("oracle: no exit after %d steps", maxSteps)
		}
		if pc >= len(p.Ins) {
			return 0, fmt.Errorf("oracle: fell off the end")
		}
		in := p.Ins[pc]
		pc++
		switch in.Op {
		case kernels.OpConst:
			if in.Sym != "" {
				base[in.Dst], regs[in.Dst] = in.Sym, 0
			} else {
				base[in.Dst], regs[in.Dst] = "", uint64(in.Imm)&0xffffffff
			}
		case kernels.OpMov:
			base[in.Dst], regs[in.Dst] = base[in.A], regs[in.A]
		case kernels.OpAdd:
			regs[in.Dst] = regs[in.A] + regs[in.B]
		case kernels.OpAddImm:
			regs[in.Dst] = regs[in.A] + uint64(in.Imm)
		case kernels.OpSub:
			regs[in.Dst] = regs[in.A] - regs[in.B]
		case kernels.OpMul:
			regs[in.Dst] = regs[in.A] * regs[in.B]
		case kernels.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case kernels.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case kernels.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case kernels.OpShlImm:
			regs[in.Dst] = regs[in.A] << uint(in.Imm)
		case kernels.OpShrImm:
			regs[in.Dst] = regs[in.A] >> uint(in.Imm)
		case kernels.OpMask32:
			regs[in.Dst] &= 0xffffffff
		case kernels.OpLoad:
			w, err := word(in.A, in.Imm)
			if err != nil {
				return 0, err
			}
			base[in.Dst], regs[in.Dst] = "", uint64(*w)
		case kernels.OpStore:
			w, err := word(in.A, in.Imm)
			if err != nil {
				return 0, err
			}
			*w = uint32(regs[in.Dst])
		case kernels.OpLabel:
			// fallthrough to next instruction
		case kernels.OpBr:
			pc = labels[in.Sym]
		case kernels.OpBrCond:
			a, c := regs[in.A], regs[in.B]
			taken := false
			switch in.CC {
			case kernels.EQ:
				taken = a == c
			case kernels.NE:
				taken = a != c
			case kernels.LTU:
				taken = a < c
			case kernels.GEU:
				taken = a >= c
			default:
				return 0, fmt.Errorf("oracle: signed comparison %v outside the portable subset", in.CC)
			}
			if taken {
				pc = labels[in.Sym]
			}
		case kernels.OpExit:
			return mem["result"][0], nil
		default:
			return 0, fmt.Errorf("oracle: op %d not modeled", in.Op)
		}
	}
}

// runRotating executes an assembled program with the derived interfaces
// rotating per dynamic instruction (the §V-D validation discipline), and
// returns the checksum stored to `result`.
func runRotating(t *testing.T, i *isa.ISA, p *kernels.Prog, phase int) uint32 {
	t.Helper()
	prog, err := kernels.BuildProgram(i, p)
	if err != nil {
		t.Fatalf("%s: lower: %v", i.Name, err)
	}
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)

	type iface struct {
		x    *core.Exec
		mode string
	}
	var ifaces []iface
	for _, bs := range isa.StdBuildsets {
		sim, err := core.Synthesize(i.Spec, bs, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mode := "one"
		if strings.HasPrefix(bs, "block") {
			mode = "block"
		} else if strings.HasPrefix(bs, "step") {
			mode = "step"
		}
		ifaces = append(ifaces, iface{x: sim.NewExec(m), mode: mode})
	}
	var rec core.Record
	var batch core.Batch
	for n := 0; !m.Halted && n < 1_000_000; n++ {
		f := ifaces[(n+phase)%len(ifaces)]
		m.JournalOn = f.x.Sim().BS.Spec
		switch f.mode {
		case "block":
			f.x.ExecBlock(&batch)
		case "step":
			f.x.ExecOneStepwise(&rec)
		default:
			f.x.ExecOne(&rec)
		}
		m.Journal.Reset()
	}
	if !m.Halted || m.ExitCode != 0 {
		t.Fatalf("%s: rotating run failed: halted=%v exit=%d", i.Name, m.Halted, m.ExitCode)
	}
	got, _ := m.Mem.Load(prog.Symbols["result"], 4)
	return uint32(got)
}

// TestSeededCrossISADifferential lowers each seeded random program to all
// three ISAs, executes each under rotating interfaces, and compares every
// checksum against the oracle.
func TestSeededCrossISADifferential(t *testing.T) {
	for seedIdx, seed := range diffSeeds {
		p := genProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %#08x: generated invalid IR: %v", seed, err)
		}
		want, err := interpret(p, 1_000_000)
		if err != nil {
			t.Fatalf("seed %#08x: oracle: %v", seed, err)
		}
		for _, name := range isa.Names() {
			i := isatest.Load(t, name)
			got := runRotating(t, i, p, seedIdx)
			if got != want {
				t.Errorf("seed %#08x on %s: checksum %#08x, oracle %#08x (replay: add seed to diffSeeds)",
					seed, name, got, want)
			}
		}
	}
}
