// Package cache implements a set-associative, write-back, write-allocate
// cache hierarchy used by the timing models. Latencies are in cycles.
package cache

import (
	"fmt"

	"singlespec/internal/obs"
)

// Level is anything that can service an access and report its latency.
type Level interface {
	Access(addr uint64, write bool) (latency int)
}

// MainMemory is the bottom of the hierarchy: fixed latency, never misses.
type MainMemory struct {
	Latency  int
	Accesses uint64
}

// Access implements Level.
func (m *MainMemory) Access(addr uint64, write bool) int {
	m.Accesses++
	return m.Latency
}

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int // power of two
	Ways       int
	LineBytes  int // power of two
	HitLatency int
}

// Stats holds per-cache counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/(hits+misses), or 0 with no traffic.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is one set-associative level backed by a next level.
type Cache struct {
	cfg   Config
	next  Level
	sets  [][]line
	clock uint64
	Stats Stats

	lineShift uint
	setMask   uint64
}

// New builds a cache level. next must not be nil.
func New(cfg Config, next Level) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: sets must be a power of two, got %d", cfg.Name, cfg.Sets)
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size must be a power of two, got %d", cfg.Name, cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways must be positive", cfg.Name)
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: missing next level", cfg.Name)
	}
	c := &Cache{cfg: cfg, next: next, setMask: uint64(cfg.Sets - 1)}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access services a read or write, returning the total latency including
// lower levels on a miss.
func (c *Cache) Access(addr uint64, write bool) int {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	// The full line address serves as the tag (sets are indexed separately,
	// so this is equivalent to a conventional tag and simpler to compare).
	tag := lineAddr

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			return c.cfg.HitLatency
		}
	}
	c.Stats.Misses++
	lat := c.cfg.HitLatency + c.next.Access(addr, false)

	// Choose a victim (LRU).
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		lat += c.next.Access(set[victim].tag<<c.lineShift, true)
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return lat
}

// Flush invalidates every line (writing back dirty ones is accounted but
// their latency is not returned).
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid && c.sets[si][wi].dirty {
				c.Stats.Writebacks++
			}
			c.sets[si][wi] = line{}
		}
	}
}

// Record merges the level's counters into reg under
// "timing.cache.<name>.*" names. Counters are cumulative, so record once,
// after the modeled run has finished.
func (c *Cache) Record(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	p := "timing.cache." + c.cfg.Name + "."
	reg.Counter(p + "hits").Add(c.Stats.Hits)
	reg.Counter(p + "misses").Add(c.Stats.Misses)
	reg.Counter(p + "writebacks").Add(c.Stats.Writebacks)
}

// Hierarchy bundles the standard L1I/L1D/shared-L2 configuration used by
// the timing models.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	Mem          *MainMemory
}

// DefaultHierarchy builds 16KiB 2-way L1s over a 256KiB 8-way L2 over
// 100-cycle memory.
func DefaultHierarchy() (*Hierarchy, error) {
	mem := &MainMemory{Latency: 100}
	l2, err := New(Config{Name: "L2", Sets: 512, Ways: 8, LineBytes: 64, HitLatency: 10}, mem)
	if err != nil {
		return nil, err
	}
	l1i, err := New(Config{Name: "L1I", Sets: 128, Ways: 2, LineBytes: 64, HitLatency: 1}, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := New(Config{Name: "L1D", Sets: 128, Ways: 2, LineBytes: 64, HitLatency: 1}, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Mem: mem}, nil
}

// Record merges every level's counters (and main-memory accesses) into
// reg, so timing runs export through the same obs snapshot as the
// functional engine. Record once, after the modeled run has finished.
func (h *Hierarchy) Record(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	h.L1I.Record(reg)
	h.L1D.Record(reg)
	h.L2.Record(reg)
	if h.Mem != nil {
		reg.Counter("timing.cache.mem.accesses").Add(h.Mem.Accesses)
	}
}
