package cache

import (
	"testing"

	"singlespec/internal/obs"
)

func mustNew(t *testing.T, cfg Config, next Level) *Cache {
	t.Helper()
	c, err := New(cfg, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHitMissBasics(t *testing.T) {
	mem := &MainMemory{Latency: 100}
	c := mustNew(t, Config{Name: "L1", Sets: 4, Ways: 2, LineBytes: 16, HitLatency: 1}, mem)
	if lat := c.Access(0x1000, false); lat != 101 {
		t.Errorf("cold miss latency = %d", lat)
	}
	if lat := c.Access(0x1008, false); lat != 1 {
		t.Errorf("same-line hit latency = %d", lat)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	mem := &MainMemory{Latency: 10}
	c := mustNew(t, Config{Name: "L1", Sets: 1, Ways: 2, LineBytes: 16, HitLatency: 1}, mem)
	c.Access(0x000, false) // A
	c.Access(0x100, false) // B
	c.Access(0x000, false) // A hit, B now LRU
	c.Access(0x200, false) // C evicts B
	if lat := c.Access(0x000, false); lat != 1 {
		t.Error("A should still be resident")
	}
	if lat := c.Access(0x100, false); lat == 1 {
		t.Error("B should have been evicted")
	}
}

func TestWritebackOfDirtyLines(t *testing.T) {
	mem := &MainMemory{Latency: 10}
	c := mustNew(t, Config{Name: "L1", Sets: 1, Ways: 1, LineBytes: 16, HitLatency: 1}, mem)
	c.Access(0x000, true)  // dirty
	c.Access(0x100, false) // evicts dirty line -> writeback
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
	if mem.Accesses != 3 { // fill, writeback, fill
		t.Errorf("memory accesses = %d", mem.Accesses)
	}
}

func TestFlush(t *testing.T) {
	mem := &MainMemory{Latency: 10}
	c := mustNew(t, Config{Name: "L1", Sets: 2, Ways: 1, LineBytes: 16, HitLatency: 1}, mem)
	c.Access(0x000, true)
	c.Flush()
	if lat := c.Access(0x000, false); lat == 1 {
		t.Error("line survived flush")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("flush writebacks = %d", c.Stats.Writebacks)
	}
}

func TestConfigValidation(t *testing.T) {
	mem := &MainMemory{Latency: 1}
	cases := []Config{
		{Sets: 3, Ways: 1, LineBytes: 16},
		{Sets: 4, Ways: 0, LineBytes: 16},
		{Sets: 4, Ways: 1, LineBytes: 17},
	}
	for _, cfg := range cases {
		if _, err := New(cfg, mem); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{Sets: 4, Ways: 1, LineBytes: 16}, nil); err == nil {
		t.Error("nil next level accepted")
	}
}

func TestHierarchySharing(t *testing.T) {
	h, err := DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	h.L1I.Access(0x4000, false)
	// L1D miss to the same line must hit in the shared L2.
	lat := h.L1D.Access(0x4000, false)
	if lat != h.L1D.Config().HitLatency+h.L2.Config().HitLatency {
		t.Errorf("L2 sharing latency = %d", lat)
	}
	if h.L2.Stats.Hits != 1 {
		t.Errorf("L2 hits = %d", h.L2.Stats.Hits)
	}
}

// TestRecord checks the obs export mirrors Stats exactly, level by level,
// and that recording into a nil registry is a safe no-op.
func TestRecord(t *testing.T) {
	h, err := DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	h.L1I.Access(0x4000, false)
	h.L1I.Access(0x4000, false)
	h.L1D.Access(0x4000, true)
	h.L1D.Access(0x8000, false)

	reg := obs.NewRegistry()
	h.Record(reg)
	snap := reg.Snapshot()
	want := map[string]uint64{
		"timing.cache.L1I.hits":       h.L1I.Stats.Hits,
		"timing.cache.L1I.misses":     h.L1I.Stats.Misses,
		"timing.cache.L1D.hits":       h.L1D.Stats.Hits,
		"timing.cache.L1D.misses":     h.L1D.Stats.Misses,
		"timing.cache.L1D.writebacks": h.L1D.Stats.Writebacks,
		"timing.cache.L2.hits":        h.L2.Stats.Hits,
		"timing.cache.L2.misses":      h.L2.Stats.Misses,
		"timing.cache.mem.accesses":   h.Mem.Accesses,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if snap.Counters["timing.cache.L1I.hits"] != 1 || snap.Counters["timing.cache.L2.hits"] != 1 {
		t.Errorf("expected one L1I hit and one L2 hit: %v", snap.Counters)
	}

	// Nil registry and nil hierarchy are no-ops, not panics.
	h.Record(nil)
	var nilH *Hierarchy
	nilH.Record(reg)
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate")
	}
	s.Hits, s.Misses = 3, 1
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate = %f", s.MissRate())
	}
}
