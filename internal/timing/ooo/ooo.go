// Package ooo is the dynamically-scheduled core timing model used by the
// timing-directed organization. It tracks per-register readiness
// (scoreboard), a reorder buffer, and in-order commit; the driving
// organization calls the functional simulator's Step interface as each
// instruction traverses the modeled stages.
package ooo

import (
	"singlespec/internal/timing/bpred"
	"singlespec/internal/timing/cache"
)

// Config sizes the core.
type Config struct {
	ROBSize       int
	FetchWidth    int
	CommitWidth   int
	MulLatency    int
	BranchPenalty int
}

// DefaultConfig returns a small two-wide dynamically-scheduled core.
func DefaultConfig() Config {
	return Config{ROBSize: 32, FetchWidth: 2, CommitWidth: 2, MulLatency: 3, BranchPenalty: 8}
}

// InstrInfo is what the timing model needs to know about one instruction —
// all of it available from a Step/All interface record.
type InstrInfo struct {
	PC      uint64
	Class   int // pipeline.Class* codes
	Src1    int // register indices; -1 when unused
	Src2    int
	Dest    int
	EA      uint64 // effective address for memory ops
	Taken   bool   // resolved branch direction
	Target  uint64
	Nullify bool
}

// Times reports the modeled cycle of each stage for one instruction.
type Times struct {
	Fetch, Issue, Complete, Commit uint64
}

// Stats accumulates results.
type Stats struct {
	Instrs      uint64
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
}

// Model is the core's timing state.
type Model struct {
	cfg   Config
	hier  *cache.Hierarchy
	bp    bpred.Predictor
	btb   *bpred.BTB
	Stats Stats

	regReady   [64]uint64
	rob        []uint64 // commit cycle per in-flight slot (ring)
	robHead    int
	robCount   int
	nextFetch  uint64
	fetchCnt   int
	lastCommit uint64
	commitCnt  int
}

// New builds the model over a cache hierarchy and branch predictor.
func New(cfg Config, hier *cache.Hierarchy, bp bpred.Predictor) *Model {
	return &Model{cfg: cfg, hier: hier, bp: bp, btb: bpred.NewBTB(10), rob: make([]uint64, cfg.ROBSize)}
}

// Cycles returns the cycle the last instruction committed.
func (m *Model) Cycles() uint64 { return m.lastCommit }

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Advance models one instruction and returns its stage times.
func (m *Model) Advance(in InstrInfo) Times {
	m.Stats.Instrs++
	var t Times

	// Fetch: stalls on the ROB being full; FetchWidth instructions share a
	// fetch cycle.
	t.Fetch = m.nextFetch + uint64(m.hier.L1I.Access(in.PC, false)-1)
	if m.robCount == m.cfg.ROBSize {
		oldest := m.rob[m.robHead]
		m.robHead = (m.robHead + 1) % m.cfg.ROBSize
		m.robCount--
		t.Fetch = maxU(t.Fetch, oldest)
	}
	if t.Fetch > m.nextFetch {
		m.nextFetch = t.Fetch
		m.fetchCnt = 1
	} else {
		m.fetchCnt++
		if m.fetchCnt >= m.cfg.FetchWidth {
			m.nextFetch = t.Fetch + 1
			m.fetchCnt = 0
		}
	}

	if in.Nullify {
		t.Issue = t.Fetch + 1
		t.Complete = t.Issue
		t.Commit = m.commit(t.Complete)
		m.pushROB(t.Commit)
		return t
	}

	// Issue: wait for source operands (dynamic scheduling: independent
	// instructions behind a stalled one still issue — modeled by the
	// per-register ready times rather than a global stall).
	t.Issue = t.Fetch + 1
	if in.Src1 >= 0 {
		t.Issue = maxU(t.Issue, m.regReady[in.Src1&63])
	}
	if in.Src2 >= 0 {
		t.Issue = maxU(t.Issue, m.regReady[in.Src2&63])
	}

	lat := uint64(1)
	switch in.Class {
	case 2: // load
		m.Stats.Loads++
		lat = uint64(m.hier.L1D.Access(in.EA, false))
	case 3: // store
		m.Stats.Stores++
		lat = uint64(m.hier.L1D.Access(in.EA, true))
	case 1: // alu
		// Multiplies would take cfg.MulLatency; with class-level info the
		// model approximates. (Opcode-level modeling would simply read the
		// record's opcode field.)
	case 4, 5: // branch/jump
		m.Stats.Branches++
		pred := m.bp.Predict(in.PC)
		target, hit := m.btb.Lookup(in.PC)
		misp := pred != in.Taken || (in.Taken && (!hit || target != in.Target))
		if misp {
			m.Stats.Mispredicts++
			// Flush: fetch resumes after resolution plus the penalty.
			m.nextFetch = t.Issue + lat + uint64(m.cfg.BranchPenalty)
		}
		m.bp.Update(in.PC, in.Taken)
		if in.Taken {
			m.btb.Update(in.PC, in.Target)
		}
	}
	t.Complete = t.Issue + lat
	if in.Dest >= 0 {
		m.regReady[in.Dest&63] = t.Complete
	}
	t.Commit = m.commit(t.Complete)
	m.pushROB(t.Commit)
	return t
}

// commit retires an instruction in order, CommitWidth per cycle.
func (m *Model) commit(complete uint64) uint64 {
	cand := maxU(complete+1, m.lastCommit)
	if cand == m.lastCommit && m.commitCnt >= m.cfg.CommitWidth {
		cand++
	}
	if cand > m.lastCommit {
		m.lastCommit = cand
		m.commitCnt = 1
	} else {
		m.commitCnt++
	}
	return cand
}

func (m *Model) pushROB(commit uint64) {
	slot := (m.robHead + m.robCount) % m.cfg.ROBSize
	if m.robCount < m.cfg.ROBSize {
		m.rob[slot] = commit
		m.robCount++
	} else {
		m.robHead = (m.robHead + 1) % m.cfg.ROBSize
		m.rob[slot] = commit
	}
}

// IPC returns retired instructions per cycle so far.
func (m *Model) IPC() float64 {
	if m.lastCommit == 0 {
		return 0
	}
	return float64(m.Stats.Instrs) / float64(m.lastCommit)
}
