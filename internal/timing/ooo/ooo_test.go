package ooo

import (
	"testing"

	"singlespec/internal/timing/bpred"
	"singlespec/internal/timing/cache"
)

func model(t *testing.T) *Model {
	t.Helper()
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), hier, bpred.Static{})
}

func TestIndependentInstructionsOverlap(t *testing.T) {
	m := model(t)
	// Warm the icache.
	m.Advance(InstrInfo{PC: 0x1000, Class: 1, Src1: -1, Src2: -1, Dest: 1})
	base := m.Cycles()
	for k := 0; k < 10; k++ {
		m.Advance(InstrInfo{PC: 0x1004, Class: 1, Src1: -1, Src2: -1, Dest: 2 + k%4})
	}
	perInstr := float64(m.Cycles()-base) / 10
	if perInstr > 1.01 {
		t.Errorf("independent ALU ops cost %.2f cycles each; want ~0.5-1 (2-wide)", perInstr)
	}
}

func TestDependencyChainsSerialize(t *testing.T) {
	mi := model(t)
	md := model(t)
	// Independent: dest rotates; dependent: each uses the previous dest.
	for k := 0; k < 100; k++ {
		mi.Advance(InstrInfo{PC: 0x1000, Class: 1, Src1: -1, Src2: -1, Dest: k % 8})
		md.Advance(InstrInfo{PC: 0x1000, Class: 1, Src1: 1, Src2: -1, Dest: 1})
	}
	if md.Cycles() <= mi.Cycles() {
		t.Errorf("dependent chain (%d cycles) should cost more than independent (%d)", md.Cycles(), mi.Cycles())
	}
}

func TestLoadLatencyDelaysDependents(t *testing.T) {
	m := model(t)
	m.Advance(InstrInfo{PC: 0x1000, Class: 2, Src1: -1, Src2: -1, Dest: 1, EA: 0x9000}) // cold miss
	tt := m.Advance(InstrInfo{PC: 0x1004, Class: 1, Src1: 1, Src2: -1, Dest: 2})
	if tt.Issue < 100 {
		t.Errorf("dependent issued at %d, before the load's miss resolved", tt.Issue)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	m := model(t)
	// Static not-taken predictor: a taken branch always mispredicts.
	m.Advance(InstrInfo{PC: 0x1000, Class: 4, Src1: -1, Src2: -1, Dest: -1, Taken: true, Target: 0x2000})
	before := m.nextFetch
	if before < uint64(DefaultConfig().BranchPenalty) {
		t.Errorf("fetch not stalled after mispredict: nextFetch = %d", before)
	}
	if m.Stats.Mispredicts != 1 {
		t.Errorf("mispredicts = %d", m.Stats.Mispredicts)
	}
}

func TestCommitIsInOrderAndBounded(t *testing.T) {
	m := model(t)
	last := uint64(0)
	perCycle := map[uint64]int{}
	for k := 0; k < 200; k++ {
		tt := m.Advance(InstrInfo{PC: 0x1000 + uint64(k%8)*4, Class: 1, Src1: -1, Src2: -1, Dest: k % 8})
		if tt.Commit < last {
			t.Fatalf("commit went backwards: %d after %d", tt.Commit, last)
		}
		last = tt.Commit
		perCycle[tt.Commit]++
		if perCycle[tt.Commit] > DefaultConfig().CommitWidth {
			t.Fatalf("more than CommitWidth commits in cycle %d", tt.Commit)
		}
	}
	if m.IPC() <= 0 || m.IPC() > float64(DefaultConfig().CommitWidth) {
		t.Errorf("IPC = %f", m.IPC())
	}
}

func TestNullifiedStillCommits(t *testing.T) {
	m := model(t)
	tt := m.Advance(InstrInfo{PC: 0x1000, Nullify: true, Src1: -1, Src2: -1, Dest: -1})
	if tt.Commit == 0 {
		t.Error("nullified instruction did not commit")
	}
	if m.Stats.Instrs != 1 {
		t.Error("nullified instruction not counted")
	}
}
