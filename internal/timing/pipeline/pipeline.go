// Package pipeline is an in-order five-stage pipeline timing model that
// consumes the instruction stream a functional-first simulator produces.
// It needs exactly the paper's "Decode" level of informational detail:
// decoded operand identifiers, instruction class, effective addresses, and
// branch resolution (§II-B).
package pipeline

import (
	"fmt"

	"singlespec/internal/core"
	"singlespec/internal/timing/bpred"
	"singlespec/internal/timing/cache"
)

// Class codes shared with the LIS descriptions' instr_class field.
const (
	ClassALU    = 1
	ClassLoad   = 2
	ClassStore  = 3
	ClassBranch = 4
	ClassJump   = 5
	ClassSys    = 6
)

// Config selects the model's structures.
type Config struct {
	BranchPenalty  int // flush cycles on a mispredicted branch
	LoadUsePenalty int // bubble between a load and a dependent use
	MulLatency     int
}

// DefaultConfig returns a reasonable five-stage configuration.
func DefaultConfig() Config {
	return Config{BranchPenalty: 3, LoadUsePenalty: 1, MulLatency: 3}
}

// Stats accumulates the model's results.
type Stats struct {
	Instrs      uint64
	Cycles      uint64
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// Model consumes records and accumulates cycles.
type Model struct {
	cfg   Config
	hier  *cache.Hierarchy
	bp    bpred.Predictor
	btb   *bpred.BTB
	Stats Stats

	// Record slots resolved once against the interface layout.
	sClass, sEA, sTaken, sTarget int
	sDest1Idx                    int

	lastWasLoad  bool
	lastDest     int
	sSrc1, sSrc2 int
}

// New builds a pipeline model against the informational layout of the
// functional interface that will feed it. The layout must expose the
// decode-level fields (instr_class, effective_addr, branch_taken,
// branch_target, operand indices); Min-detail interfaces are rejected —
// this is precisely the paper's point that the timing model dictates the
// interface's informational detail.
func New(cfg Config, layout *core.Layout, hier *cache.Hierarchy, bp bpred.Predictor) (*Model, error) {
	m := &Model{cfg: cfg, hier: hier, bp: bp, btb: bpred.NewBTB(10)}
	var ok [6]bool
	m.sClass, ok[0] = layout.Slot("instr_class")
	m.sEA, ok[1] = layout.Slot("effective_addr")
	m.sTaken, ok[2] = layout.Slot("branch_taken")
	m.sTarget, ok[3] = layout.Slot("branch_target")
	m.sSrc1, ok[4] = layout.Slot("src1_idx")
	m.sDest1Idx, ok[5] = layout.Slot("dest1_idx")
	for i, o := range ok {
		if !o {
			return nil, fmt.Errorf("pipeline: interface lacks decode-level field #%d (instr_class/effective_addr/branch_taken/branch_target/src1_idx/dest1_idx); use a Decode or All buildset", i)
		}
	}
	if s, o := layout.Slot("src2_idx"); o {
		m.sSrc2 = s
	} else {
		m.sSrc2 = m.sSrc1
	}
	m.lastDest = -1
	return m, nil
}

// Consume accounts one retired instruction.
func (m *Model) Consume(rec *core.Record) {
	m.Stats.Instrs++
	cycles := uint64(1)

	// Fetch.
	cycles += uint64(m.hier.L1I.Access(rec.PhysPC, false)) - 1

	if rec.Nullified {
		m.Stats.Cycles += cycles
		m.lastWasLoad = false
		return
	}

	class := int(rec.Vals[m.sClass])
	// Load-use hazard against the previous instruction.
	if m.lastWasLoad && m.lastDest >= 0 {
		if int(rec.Vals[m.sSrc1]) == m.lastDest || int(rec.Vals[m.sSrc2]) == m.lastDest {
			cycles += uint64(m.cfg.LoadUsePenalty)
		}
	}
	m.lastWasLoad = false

	switch class {
	case ClassLoad:
		m.Stats.Loads++
		cycles += uint64(m.hier.L1D.Access(rec.Vals[m.sEA], false)) - 1
		m.lastWasLoad = true
		m.lastDest = int(rec.Vals[m.sDest1Idx])
	case ClassStore:
		m.Stats.Stores++
		cycles += uint64(m.hier.L1D.Access(rec.Vals[m.sEA], true)) - 1
	case ClassBranch:
		m.Stats.Branches++
		taken := rec.Vals[m.sTaken] != 0
		pred := m.bp.Predict(rec.PC)
		target, btbHit := m.btb.Lookup(rec.PC)
		mispredict := pred != taken || (taken && (!btbHit || target != rec.Vals[m.sTarget]))
		if mispredict {
			m.Stats.Mispredicts++
			cycles += uint64(m.cfg.BranchPenalty)
		}
		m.bp.Update(rec.PC, taken)
		if taken {
			m.btb.Update(rec.PC, rec.Vals[m.sTarget])
		}
	case ClassJump:
		// Jumps resolve in decode: a fixed single-bubble cost.
		cycles++
	default:
		if class == ClassALU && m.cfg.MulLatency > 1 {
			// Without opcode-level detail the model cannot distinguish
			// multiplies; it treats ALU ops uniformly. (A more detailed
			// model would request more informational detail — the paper's
			// central tension.)
			_ = class
		}
	}
	m.Stats.Cycles += cycles
}
