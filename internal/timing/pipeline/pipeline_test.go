package pipeline

import (
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/timing/bpred"
	"singlespec/internal/timing/cache"
)

func decodeSim(t *testing.T) *core.Sim {
	t.Helper()
	i := isatest.Load(t, "alpha64")
	s, err := core.Synthesize(i.Spec, "one_decode", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newModel(t *testing.T, sim *core.Sim) *Model {
	t.Helper()
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(10))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// rec builds a synthetic record against the layout.
func rec(sim *core.Sim, class uint64, pc, ea uint64, taken bool, target uint64, src1, dest uint64) *core.Record {
	r := &core.Record{PC: pc, PhysPC: pc, Vals: make([]uint64, sim.Layout.NumSlots())}
	r.Vals[sim.Layout.MustSlot("instr_class")] = class
	r.Vals[sim.Layout.MustSlot("effective_addr")] = ea
	if taken {
		r.Vals[sim.Layout.MustSlot("branch_taken")] = 1
	}
	r.Vals[sim.Layout.MustSlot("branch_target")] = target
	r.Vals[sim.Layout.MustSlot("src1_idx")] = src1
	r.Vals[sim.Layout.MustSlot("src2_idx")] = src1
	r.Vals[sim.Layout.MustSlot("dest1_idx")] = dest
	return r
}

func TestRejectsMinDetailInterface(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	minSim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(), minSim.Layout, hier, bpred.Static{}); err == nil {
		t.Fatal("a Min-detail interface must be rejected: the model needs decode information")
	}
}

func TestBaseCPIIsOneAfterWarmup(t *testing.T) {
	sim := decodeSim(t)
	m := newModel(t, sim)
	r := rec(sim, ClassALU, 0x1000, 0, false, 0, 1, 2)
	m.Consume(r) // cold icache
	c0 := m.Stats.Cycles
	for k := 0; k < 10; k++ {
		m.Consume(r)
	}
	if got := m.Stats.Cycles - c0; got != 10 {
		t.Errorf("10 warm ALU ops took %d cycles", got)
	}
}

func TestLoadUseHazard(t *testing.T) {
	sim := decodeSim(t)
	m := newModel(t, sim)
	ld := rec(sim, ClassLoad, 0x1000, 0x8000, false, 0, 1, 5)
	use := rec(sim, ClassALU, 0x1004, 0, false, 0, 5, 6)
	noUse := rec(sim, ClassALU, 0x1004, 0, false, 0, 7, 6)
	m.Consume(ld)
	m.Consume(use) // hazard
	hazard := m.Stats.Cycles
	m.Consume(ld)
	m.Consume(noUse) // no hazard
	noHazard := m.Stats.Cycles - hazard
	if hazardCost := int64(hazard) - int64(noHazard); hazardCost <= 0 {
		t.Errorf("load-use hazard added no cycles (with=%d, without=%d)", hazard, noHazard)
	}
}

func TestBranchTraining(t *testing.T) {
	sim := decodeSim(t)
	m := newModel(t, sim)
	br := rec(sim, ClassBranch, 0x2000, 0, true, 0x3000, 1, 0)
	for k := 0; k < 50; k++ {
		m.Consume(br)
	}
	if m.Stats.Mispredicts > 3 {
		t.Errorf("steady taken branch mispredicted %d times", m.Stats.Mispredicts)
	}
	if m.Stats.Branches != 50 {
		t.Errorf("branches = %d", m.Stats.Branches)
	}
}

func TestNullifiedInstructionCheap(t *testing.T) {
	sim := decodeSim(t)
	m := newModel(t, sim)
	n := rec(sim, ClassLoad, 0x1000, 0x8000, false, 0, 1, 2)
	n.Nullified = true
	m.Consume(n) // must not touch the dcache
	if m.Stats.Loads != 0 {
		t.Error("nullified load accessed the cache")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Instrs: 10, Cycles: 20}
	if s.IPC() != 0.5 || s.CPI() != 2 {
		t.Errorf("IPC/CPI = %f/%f", s.IPC(), s.CPI())
	}
	var z Stats
	if z.IPC() != 0 || z.CPI() != 0 {
		t.Error("zero stats")
	}
}
