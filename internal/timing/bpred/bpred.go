// Package bpred provides branch direction predictors and a branch target
// buffer for the timing models.
package bpred

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// Static predicts a fixed direction (the classic baseline).
type Static struct{ Taken bool }

// Predict implements Predictor.
func (s Static) Predict(pc uint64) bool { return s.Taken }

// Update implements Predictor.
func (s Static) Update(pc uint64, taken bool) {}

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []uint8
	mask  uint64
}

// NewBimodal builds a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}

// GShare xors global history into the counter index.
type GShare struct {
	table   []uint8
	mask    uint64
	history uint64
	hmask   uint64
}

// NewGShare builds a gshare predictor with 2^bits counters and histBits of
// global history.
func NewGShare(bits, histBits int) *GShare {
	n := 1 << bits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1
	}
	return &GShare{table: t, mask: uint64(n - 1), hmask: 1<<histBits - 1}
}

func (g *GShare) idx(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.idx(pc)] >= 2 }

// Update implements Predictor.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = (g.history<<1 | b2u(taken)) & g.hmask
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

// NewBTB builds a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	n := 1 << bits
	return &BTB{tags: make([]uint64, n), targets: make([]uint64, n), mask: uint64(n - 1)}
}

// Lookup returns the predicted target and whether the entry hit.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update installs a branch target.
func (b *BTB) Update(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}
