package bpred

import "testing"

func TestBimodalLearnsLoop(t *testing.T) {
	p := NewBimodal(8)
	pc := uint64(0x1000)
	// A loop branch taken 9 times, not-taken once, repeatedly.
	misses := 0
	for iter := 0; iter < 20; iter++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if p.Predict(pc) != taken {
				misses++
			}
			p.Update(pc, taken)
		}
	}
	// After warmup, the counter should mispredict only the exits (and the
	// first iteration after each exit at worst).
	if misses > 45 {
		t.Errorf("bimodal misses = %d", misses)
	}
}

func TestGShareBeatsBimodalOnAlternating(t *testing.T) {
	bi := NewBimodal(10)
	gs := NewGShare(10, 8)
	pc := uint64(0x2000)
	biMiss, gsMiss := 0, 0
	taken := false
	for i := 0; i < 2000; i++ {
		taken = !taken // perfectly alternating: history predicts it
		if bi.Predict(pc) != taken {
			biMiss++
		}
		bi.Update(pc, taken)
		if gs.Predict(pc) != taken {
			gsMiss++
		}
		gs.Update(pc, taken)
	}
	if gsMiss >= biMiss {
		t.Errorf("gshare (%d misses) should beat bimodal (%d) on alternating pattern", gsMiss, biMiss)
	}
}

func TestStatic(t *testing.T) {
	if (Static{Taken: true}).Predict(0) != true || (Static{}).Predict(0) != false {
		t.Error("static predictor broken")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4)
	if _, hit := b.Lookup(0x100); hit {
		t.Error("cold BTB hit")
	}
	b.Update(0x100, 0x2000)
	if tgt, hit := b.Lookup(0x100); !hit || tgt != 0x2000 {
		t.Errorf("lookup = %#x %v", tgt, hit)
	}
	// Aliasing entry replaces.
	alias := uint64(0x100 + 16*4)
	b.Update(alias, 0x3000)
	if _, hit := b.Lookup(0x100); hit {
		t.Error("aliased entry should miss")
	}
}
