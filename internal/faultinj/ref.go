package faultinj

import (
	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
)

// CleanRun is an exported handle on the clean-reference machinery the fault
// campaigns are built from: one freshly loaded machine wired to one program
// under one synthesized simulator, with no fault injection attached. Other
// differential harnesses (internal/aot's interpreter-vs-generated-binary
// driver) reuse it so every comparison in the repo references the same
// notion of a pristine run.
type CleanRun struct {
	rs *runState
}

// NewCleanRun builds a fresh machine for prog under sim, exactly as the
// fault campaigns build their reference runs.
func NewCleanRun(i *isa.ISA, prog *asm.Program, sim *core.Sim) *CleanRun {
	return &CleanRun{rs: newRun(i, prog, sim)}
}

// Machine returns the run's architectural machine.
func (c *CleanRun) Machine() *mach.Machine { return c.rs.m }

// Exec returns the run's execution context.
func (c *CleanRun) Exec() *core.Exec { return c.rs.x }

// Emulator returns the run's OS emulation (stdout, stdin, counters).
func (c *CleanRun) Emulator() *sysemu.Emulator { return c.rs.emu }
