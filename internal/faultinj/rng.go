// Package faultinj implements seeded, fully deterministic fault-injection
// campaigns against the synthesized simulators. A campaign drives faults
// through the seams the architecture already exposes — the load-value hook,
// instruction memory (the faultUnit path), the speculation journal, the OS
// emulator, and the code-generation caches — then differentially compares
// each faulted-then-recovered run against a clean reference run and reports
// the first divergence. Everything derives from one 64-bit seed: no wall
// clock, no global RNG, so the same seed produces byte-identical reports
// across runs and worker counts.
package faultinj

// RNG is a small PCG-XSH-RR generator: 64-bit state, 32-bit output. It is
// self-contained (no math/rand) so campaign streams are stable across Go
// releases, and cheap enough to seed one per cell.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator for the given seed and stream. Distinct
// streams with the same seed are independent sequences.
func NewRNG(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = r.inc + seed
	r.Uint32()
	return r
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("faultinj: Intn with non-positive n")
	}
	// Modulo bias is irrelevant for fault placement; determinism is what
	// matters here.
	return int(r.Uint64() % uint64(n))
}

// SplitMix64 is the standard 64-bit mixer, used to derive per-cell seeds
// from the campaign seed so cells are independent regardless of the order
// workers pick them up.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey hashes a cell key ("isa/class/kernel") with FNV-1a so per-cell
// streams depend on the cell identity, not its position in the job list.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
