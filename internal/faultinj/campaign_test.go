package faultinj

import (
	"errors"
	"strings"
	"testing"

	"singlespec/internal/obs"
)

// TestParseClassesRejectsDuplicates (satellite: duplicate classes): a class
// named twice would silently inflate the planned-cell count; it is refused
// with a typed *DuplicateClassError naming the class.
func TestParseClassesRejectsDuplicates(t *testing.T) {
	_, err := ParseClasses("load,fetch,load")
	var dup *DuplicateClassError
	if !errors.As(err, &dup) {
		t.Fatalf("duplicate class: want *DuplicateClassError, got %v", err)
	}
	if dup.Class != ClassLoad {
		t.Errorf("DuplicateClassError names %v, want load", dup.Class)
	}
	if !strings.Contains(err.Error(), "load") {
		t.Errorf("error text should name the class: %q", err)
	}
	// Whitespace-trimmed duplicates are still duplicates.
	if _, err := ParseClasses("squash, squash"); err == nil {
		t.Error("trimmed duplicate accepted")
	}
}

// TestCellKeyRoundTrip: ParseCellKey inverts CellSpec.Key for every cell a
// campaign can produce, and rejects malformed keys.
func TestCellKeyRoundTrip(t *testing.T) {
	for _, spec := range CampaignCells(Config{Seed: 1}) {
		got, err := ParseCellKey(spec.Key())
		if err != nil {
			t.Fatalf("ParseCellKey(%q): %v", spec.Key(), err)
		}
		if got != spec {
			t.Errorf("ParseCellKey(%q) = %+v, want %+v", spec.Key(), got, spec)
		}
	}
	for _, bad := range []string{"", "a/b", "a/b/c/d", "alpha64//crc32", "alpha64/cosmic/crc32"} {
		if _, err := ParseCellKey(bad); err == nil {
			t.Errorf("ParseCellKey(%q) accepted", bad)
		}
	}
}

// TestResultWireRoundTrip: every result status survives Encode/Decode with
// its report rendering byte-identical — the property the distributed
// campaign's merged report is built on.
func TestResultWireRoundTrip(t *testing.T) {
	spec := CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassLoad}
	cases := []Result{
		{ISA: "alpha64", Kernel: "crc32", Class: ClassLoad, Buildset: "one_all_spec",
			Planned: 3, Injected: 3, Recovered: 3, RefInstret: 12345},
		{ISA: "alpha64", Kernel: "crc32", Class: ClassFetch, Buildset: "one_all",
			Planned: 2, Injected: 2, Faults: 2, Recovered: 2, RefInstret: 999},
		{ISA: "alpha64", Kernel: "crc32", Class: ClassCodeGen, Buildset: "block_min",
			Planned: 4, Injected: 4, Recovered: 4, RefInstret: 777, ChainFollows: 55},
		{ISA: "alpha64", Kernel: "crc32", Class: ClassSquash, Buildset: "one_all_spec",
			Planned: 2, Injected: 2, RefInstret: 500,
			Divergence: &Divergence{Instret: 400, RefPC: 0x1000, GotPC: 0x1008, Detail: "x1 mismatch"}},
		{ISA: "alpha64", Kernel: "crc32", Class: ClassSyscall, Buildset: "one_all",
			Planned: 2, Err: errors.New("faultinj: clean run: budget blown")},
		LostResult(spec, 3, "lease lost on 3 worker(s), last on w-c: connection lost"),
		InterruptedResult(spec),
	}
	wantStatus := []string{"ok", "ok", "ok", "diverged", "error", "lost", "interrupted"}
	for i, r := range cases {
		if got := ResultStatus(r); got != wantStatus[i] {
			t.Errorf("case %d: ResultStatus = %q, want %q", i, got, wantStatus[i])
		}
		payload, err := EncodeResult(r)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		back, err := DecodeResult(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		a := Report{Seed: 1, Results: []Result{r}}
		b := Report{Seed: 1, Results: []Result{back}}
		if a.String() != b.String() {
			t.Errorf("case %d: report rendering changed across the wire:\nbefore:\n%s\nafter:\n%s",
				i, a.String(), b.String())
		}
		if ResultStatus(back) != wantStatus[i] {
			t.Errorf("case %d: status %q after round trip, want %q", i, ResultStatus(back), wantStatus[i])
		}
	}
	// Typed errors survive for retry classification.
	lostBack, _ := EncodeResult(cases[5])
	res, err := DecodeResult(lostBack)
	if err != nil {
		t.Fatal(err)
	}
	var le *LostError
	if !errors.As(res.Err, &le) || le.Tries != 3 {
		t.Errorf("lost result did not round-trip its typed error: %v", res.Err)
	}
	if _, err := DecodeResult([]byte(`{"key":"x","status":"weird"}`)); err == nil {
		t.Error("unknown status accepted")
	}
	if _, err := DecodeResult([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestMeasureCampaignCellResumeParity: resuming a cell from its clean-pass
// snapshot produces the byte-identical Result a from-scratch run does —
// the property mid-cell lease takeover rests on. Damaged snapshots are
// dropped (and counted), never half-applied.
func TestMeasureCampaignCellResumeParity(t *testing.T) {
	cfg := Config{Seed: 7, Events: 3, Kernels: []string{"crc32"}}
	for _, spec := range CampaignCells(cfg) {
		spec := spec
		t.Run(spec.Key(), func(t *testing.T) {
			var snap []byte
			fresh, resumed := MeasureCampaignCell(spec, cfg, nil, func(b []byte, _ uint64) {
				snap = append([]byte(nil), b...)
			}, nil)
			if resumed {
				t.Fatal("fresh run claims it resumed")
			}
			if fresh.Err != nil {
				t.Fatalf("fresh run errored: %v", fresh.Err)
			}
			if spec.Class.cleanSkippable() {
				if snap == nil {
					t.Fatal("clean-skippable class shipped no snapshot")
				}
				res, ok := MeasureCampaignCell(spec, cfg, snap, nil, nil)
				if !ok {
					t.Fatal("valid snapshot not resumed")
				}
				a, _ := EncodeResult(fresh)
				b, _ := EncodeResult(res)
				if string(a) != string(b) {
					t.Errorf("resumed result differs from fresh:\nfresh:   %s\nresumed: %s", a, b)
				}
			} else if snap != nil {
				t.Errorf("class %s shipped a snapshot it cannot resume from", spec.Class)
			}
		})
	}

	// A damaged snapshot restarts from scratch and is counted.
	reg := obs.NewRegistry()
	spec := CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassLoad}
	res, resumed := MeasureCampaignCell(spec, cfg, []byte(`{"phase":"bogus"}`), nil, reg)
	if resumed {
		t.Error("damaged snapshot claimed to resume")
	}
	if res.Err != nil {
		t.Errorf("damaged snapshot broke the cell: %v", res.Err)
	}
	if n := reg.Snapshot().Counters["faultinj.snapshot_dropped"]; n != 1 {
		t.Errorf("faultinj.snapshot_dropped = %d, want 1", n)
	}
}

// TestCampaignFingerprint: the fingerprint pins everything that determines
// the cell list and schedules, and nothing host-local.
func TestCampaignFingerprint(t *testing.T) {
	base := Config{Seed: 1, Events: 2, Kernels: []string{"crc32"}}
	fp := Fingerprint(base)
	same := base
	same.Workers = 16 // host knob: same campaign
	if Fingerprint(same) != fp {
		t.Error("worker count changed the fingerprint")
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.Events = 3 },
		func(c *Config) { c.Kernels = []string{"sieve"} },
		func(c *Config) { c.Classes = []Class{ClassLoad} },
		func(c *Config) { c.MaxInstr = 1000 },
	} {
		m := base
		mut(&m)
		if Fingerprint(m) == fp {
			t.Errorf("mutation %+v did not change the fingerprint", m)
		}
	}
}
