package faultinj

import (
	"fmt"
	"strings"
)

// Class identifies one family of injected faults. Each class targets a
// different seam of the simulator and carries its own recovery protocol and
// invariant (see inject.go).
type Class int

const (
	// ClassLoad flips one bit in a loaded value through mach.LoadHook (a
	// transient data fault), then rolls the corrupted instruction back via
	// the speculation journal and re-executes it cleanly. Runs under a
	// speculation buildset.
	ClassLoad Class = iota
	// ClassFetch corrupts instruction bits in code memory so decode fails,
	// checks the faultUnit path (FaultIllegal, halt with exit 128+fault, no
	// retirement), restores the original bits, and resumes.
	ClassFetch
	// ClassSquash executes a short wrong-path window speculatively and then
	// squashes it with Journal.Rollback — the mid-run mis-speculation case;
	// the rollback must be architecturally invisible.
	ClassSquash
	// ClassSyscall injects OS-level failures (short reads/writes, denied
	// calls, brk exhaustion) through sysemu's FaultHook against a program
	// written to retry; final output must be unchanged.
	ClassSyscall
	// ClassCodeGen stores to mapped code pages mid-run (same value, so the
	// program is unchanged) to bump the page store-generation counters and
	// force translation-cache invalidation storms; the run must be
	// architecturally identical to an undisturbed one, instret included.
	ClassCodeGen
)

// AllClasses returns every fault class, in campaign order.
func AllClasses() []Class {
	return []Class{ClassLoad, ClassFetch, ClassSquash, ClassSyscall, ClassCodeGen}
}

func (c Class) String() string {
	switch c {
	case ClassLoad:
		return "load"
	case ClassFetch:
		return "fetch"
	case ClassSquash:
		return "squash"
	case ClassSyscall:
		return "syscall"
	case ClassCodeGen:
		return "codegen"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// buildset returns the interface each class runs under: rollback-based
// classes need the speculation journal, the fetch and syscall classes want
// full information (fault fields in records), and the code-generation class
// stresses the block translator.
func (c Class) buildset() string {
	switch c {
	case ClassLoad, ClassSquash:
		return "one_all_spec"
	case ClassCodeGen:
		return "block_min"
	default:
		return "one_all"
	}
}

// classByName maps a class's String form back to the class.
func classByName(s string) (Class, bool) {
	for _, c := range AllClasses() {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// DuplicateClassError reports a class named more than once in a
// ParseClasses list. Duplicates would silently inflate the planned-cell
// count and double-count the per-class outcome counters, so they are a
// configuration error, not a request for extra work.
type DuplicateClassError struct {
	Class Class
}

func (e *DuplicateClassError) Error() string {
	return fmt.Sprintf("faultinj: fault class %q listed more than once", e.Class)
}

// ParseClasses parses a comma-separated class list ("load,fetch") or "all".
// A class named twice is rejected with a *DuplicateClassError.
func ParseClasses(s string) ([]Class, error) {
	if s == "" || s == "all" {
		return AllClasses(), nil
	}
	var out []Class
	seen := make(map[Class]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		c, ok := classByName(part)
		if !ok {
			return nil, fmt.Errorf("faultinj: unknown fault class %q (want load, fetch, squash, syscall, codegen, or all)", part)
		}
		if seen[c] {
			return nil, &DuplicateClassError{Class: c}
		}
		seen[c] = true
		out = append(out, c)
	}
	return out, nil
}
