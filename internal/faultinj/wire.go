package faultinj

// Wire form for campaign cell results. Fabric workers ship finished cells
// to the coordinator, durable segments persist them across coordinator
// restarts, and the service daemon journals them per cell — all through
// this one codec, so a Result round-trips byte-identically into the
// report no matter which path carried it.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// InterruptedError marks a cell that was wound down mid-campaign (daemon
// eviction, coordinator shutdown). It is transient: a resumed campaign
// re-runs the cell rather than reporting it failed.
type InterruptedError struct {
	Key string
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("faultinj: cell %s interrupted", e.Key)
}

// LostError marks a cell that exhausted its cross-worker retry budget on
// the fabric. It is deterministic from the coordinator's point of view:
// the merged report carries the loss instead of hanging the campaign.
type LostError struct {
	Key    string
	Tries  int
	Detail string
}

func (e *LostError) Error() string {
	return fmt.Sprintf("faultinj: cell %s lost after %d attempts: %s", e.Key, e.Tries, e.Detail)
}

// LostResult builds the terminal Result for a cell whose cross-worker
// retry budget is spent: the report carries the loss instead of hanging
// the campaign.
func LostResult(spec CellSpec, tries int, detail string) Result {
	return Result{ISA: spec.ISA, Kernel: spec.Kernel, Class: spec.Class,
		Buildset: spec.Class.buildset(),
		Err:      &LostError{Key: spec.Key(), Tries: tries, Detail: detail}}
}

// InterruptedResult builds the terminal Result for a cell wound down
// mid-campaign.
func InterruptedResult(spec CellSpec) Result {
	return Result{ISA: spec.ISA, Kernel: spec.Kernel, Class: spec.Class,
		Buildset: spec.Class.buildset(),
		Err:      &InterruptedError{Key: spec.Key()}}
}

// resultWire is the JSON shape of one encoded cell result. Field names are
// a compatibility contract: segments and journals written by one build
// must decode under the next.
type resultWire struct {
	Key          string          `json:"key"`
	Status       string          `json:"status"`
	ISA          string          `json:"isa"`
	Kernel       string          `json:"kernel"`
	Class        string          `json:"class"`
	Buildset     string          `json:"buildset"`
	Planned      int             `json:"planned"`
	Injected     int             `json:"injected"`
	Recovered    int             `json:"recovered"`
	Faults       int             `json:"faults"`
	RefInstret   uint64          `json:"ref_instret"`
	ChainFollows uint64          `json:"chain_follows,omitempty"`
	Divergence   *divergenceWire `json:"divergence,omitempty"`
	ErrMsg       string          `json:"err,omitempty"`
	LostTries    int             `json:"lost_tries,omitempty"`
	LostDetail   string          `json:"lost_detail,omitempty"`
}

type divergenceWire struct {
	Instret uint64 `json:"instret"`
	RefPC   uint64 `json:"ref_pc"`
	GotPC   uint64 `json:"got_pc"`
	Detail  string `json:"detail"`
}

// ResultStatus classifies a result for wire and journal purposes:
// "ok", "diverged", "error", "interrupted", or "lost".
func ResultStatus(r Result) string {
	var ie *InterruptedError
	var le *LostError
	switch {
	case errors.As(r.Err, &ie):
		return "interrupted"
	case errors.As(r.Err, &le):
		return "lost"
	case r.Err != nil:
		return "error"
	case r.Divergence != nil:
		return "diverged"
	}
	return "ok"
}

// EncodeResult serializes one cell result for segments, journals, and the
// fabric wire.
func EncodeResult(r Result) ([]byte, error) {
	w := resultWire{
		Key:          r.Key(),
		Status:       ResultStatus(r),
		ISA:          r.ISA,
		Kernel:       r.Kernel,
		Class:        r.Class.String(),
		Buildset:     r.Buildset,
		Planned:      r.Planned,
		Injected:     r.Injected,
		Recovered:    r.Recovered,
		Faults:       r.Faults,
		RefInstret:   r.RefInstret,
		ChainFollows: r.ChainFollows,
	}
	if r.Divergence != nil {
		w.Divergence = &divergenceWire{
			Instret: r.Divergence.Instret,
			RefPC:   r.Divergence.RefPC,
			GotPC:   r.Divergence.GotPC,
			Detail:  r.Divergence.Detail,
		}
	}
	if r.Err != nil {
		w.ErrMsg = r.Err.Error()
		var le *LostError
		if errors.As(r.Err, &le) {
			w.LostTries = le.Tries
			w.LostDetail = le.Detail
		}
	}
	return json.Marshal(w)
}

// DecodeResult inverts EncodeResult. Typed interrupted/lost errors are
// reconstructed so retry classification survives the round trip, and
// plain error text is preserved verbatim so the rendered report stays
// byte-identical to a single-host run.
func DecodeResult(data []byte) (Result, error) {
	var w resultWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Result{}, fmt.Errorf("faultinj: decode result: %w", err)
	}
	cl, ok := classByName(w.Class)
	if !ok {
		return Result{}, fmt.Errorf("faultinj: result names unknown class %q", w.Class)
	}
	r := Result{
		ISA:          w.ISA,
		Kernel:       w.Kernel,
		Class:        cl,
		Buildset:     w.Buildset,
		Planned:      w.Planned,
		Injected:     w.Injected,
		Recovered:    w.Recovered,
		Faults:       w.Faults,
		RefInstret:   w.RefInstret,
		ChainFollows: w.ChainFollows,
	}
	if r.Key() != w.Key {
		return Result{}, fmt.Errorf("faultinj: result key %q disagrees with fields (%q)", w.Key, r.Key())
	}
	if w.Divergence != nil {
		r.Divergence = &Divergence{
			Instret: w.Divergence.Instret,
			RefPC:   w.Divergence.RefPC,
			GotPC:   w.Divergence.GotPC,
			Detail:  w.Divergence.Detail,
		}
	}
	switch w.Status {
	case "ok", "diverged":
	case "interrupted":
		r.Err = &InterruptedError{Key: w.Key}
	case "lost":
		r.Err = &LostError{Key: w.Key, Tries: w.LostTries, Detail: w.LostDetail}
	case "error":
		if w.ErrMsg == "" {
			return Result{}, fmt.Errorf("faultinj: errored result %q carries no error text", w.Key)
		}
		r.Err = errors.New(w.ErrMsg)
	default:
		return Result{}, fmt.Errorf("faultinj: result status %q not recognised", w.Status)
	}
	return r, nil
}

// Fingerprint hashes the campaign parameters that determine cell identity
// and outcome. Two parties sharing a fingerprint are guaranteed to agree
// on the cell list, every cell's fault schedule, and the merged report.
// Host-local knobs (Workers, Obs) are deliberately excluded — the report
// is byte-identical across them.
func Fingerprint(cfg Config) string {
	cfg = cfg.withDefaults()
	classes := make([]string, len(cfg.Classes))
	for i, c := range cfg.Classes {
		classes[i] = c.String()
	}
	h := sha256.New()
	fmt.Fprintf(h, "faultinj/campaign\nseed=%d\nevents=%d\nmax_instr=%d\nclasses=%s\nisas=%s\nkernels=%s\n",
		cfg.Seed, cfg.Events, cfg.MaxInstr,
		strings.Join(classes, ","), strings.Join(cfg.ISAs, ","), strings.Join(cfg.Kernels, ","))
	return fmt.Sprintf("%x", h.Sum(nil))
}
