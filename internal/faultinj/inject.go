package faultinj

import (
	"bytes"
	"fmt"
	"sort"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
)

// Divergence describes the first point where a faulted-then-recovered run
// differed from the clean reference run. A non-nil Divergence is a
// recovery-correctness failure: the injected fault leaked architectural
// state past its recovery protocol.
type Divergence struct {
	// Instret is the faulted run's retired-instruction count when the
	// divergence was detected.
	Instret uint64
	// RefPC and GotPC are the reference and faulted PCs at that point.
	RefPC, GotPC uint64
	// Detail names the first differing piece of state (register, memory
	// address, output byte, exit status).
	Detail string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("diverged at instret %d (ref pc %#x, got pc %#x): %s",
		d.Instret, d.RefPC, d.GotPC, d.Detail)
}

// injectOpts are test knobs that deliberately break a recovery protocol so
// the differential checker can be shown to catch the leak. All-zero in
// production campaigns.
type injectOpts struct {
	// skipRecovery leaves the corrupted state in place: no rollback for
	// ClassLoad, no instruction-bit restore for ClassFetch.
	skipRecovery bool
	// skipRestore (ClassSquash) rolls the journal back but "forgets" to
	// restore PC/Instret — the classic half-finished squash bug.
	skipRestore bool
}

// runState is one machine wired to one program under one synthesized
// simulator: the unit both the faulted run and its reference run are built
// from. Machines never share memory here — differential comparison needs
// two independent worlds.
type runState struct {
	i    *isa.ISA
	prog *asm.Program
	sim  *core.Sim
	m    *mach.Machine
	emu  *sysemu.Emulator
	x    *core.Exec
}

func newRun(i *isa.ISA, prog *asm.Program, sim *core.Sim) *runState {
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	return &runState{i: i, prog: prog, sim: sim, m: m, emu: emu, x: sim.NewExec(m)}
}

// runAll drives the machine to completion under an instruction budget.
func (r *runState) runAll(budget uint64) error {
	for !r.m.Halted {
		left := budget - r.m.Instret
		if r.m.Instret >= budget || left == 0 {
			return fmt.Errorf("faultinj: run exceeded %d-instruction budget at pc %#x", budget, r.m.PC)
		}
		if n := r.x.Run(left); n == 0 && !r.m.Halted {
			return fmt.Errorf("faultinj: run stuck at pc %#x", r.m.PC)
		}
	}
	return nil
}

// step executes one instruction, returning the published record and whether
// execution can continue (false on halt or fault).
func (r *runState) step() (core.Record, bool) {
	var rec core.Record
	ok := r.x.ExecOne(&rec)
	return rec, ok
}

// spaceNames lists the machine's register-space names for divergence
// reports.
func (r *runState) spaceNames() []string {
	names := make([]string, len(r.m.Spaces))
	for i, s := range r.m.Spaces {
		names[i] = s.Def.Name
	}
	return names
}

// pickEvents chooses `want` distinct injection points (in retired-
// instruction units) strictly inside a run of total length, sorted
// ascending. Short runs yield fewer events.
func pickEvents(rng *RNG, total uint64, want int) []uint64 {
	if total < 2 || want <= 0 {
		return nil
	}
	seen := map[uint64]bool{}
	for i := 0; i < want*4 && len(seen) < want; i++ {
		seen[1+uint64(rng.Intn(int(total-1)))] = true
	}
	out := make([]uint64, 0, len(seen))
	for ev := range seen {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quickCompare checks the cheap per-step lockstep invariants: same PC, same
// retirement count.
func quickCompare(got, ref *runState) *Divergence {
	if got.m.Instret != ref.m.Instret {
		return &Divergence{Instret: got.m.Instret, RefPC: ref.m.PC, GotPC: got.m.PC,
			Detail: fmt.Sprintf("instret: ref %d vs got %d", ref.m.Instret, got.m.Instret)}
	}
	if got.m.PC != ref.m.PC {
		return &Divergence{Instret: got.m.Instret, RefPC: ref.m.PC, GotPC: got.m.PC,
			Detail: "pc mismatch"}
	}
	return nil
}

// finalCompare performs the full end-state differential: halt status, exit
// code, retirement count, every register space, captured output, and the
// union of all mapped memory pages.
func finalCompare(got, ref *runState) *Divergence {
	div := func(detail string) *Divergence {
		return &Divergence{Instret: got.m.Instret, RefPC: ref.m.PC, GotPC: got.m.PC, Detail: detail}
	}
	if got.m.Halted != ref.m.Halted {
		return div(fmt.Sprintf("halted: ref %v vs got %v", ref.m.Halted, got.m.Halted))
	}
	if got.m.ExitCode != ref.m.ExitCode {
		return div(fmt.Sprintf("exit code: ref %d vs got %d", ref.m.ExitCode, got.m.ExitCode))
	}
	if got.m.Instret != ref.m.Instret {
		return div(fmt.Sprintf("instret: ref %d vs got %d", ref.m.Instret, got.m.Instret))
	}
	if ok, detail := ref.m.Snapshot().Equal(got.m.Snapshot(), ref.spaceNames()); !ok {
		return div("register " + detail)
	}
	if !bytes.Equal(got.emu.Stdout.Bytes(), ref.emu.Stdout.Bytes()) {
		return div(fmt.Sprintf("stdout: ref %q vs got %q", ref.emu.Stdout.Bytes(), got.emu.Stdout.Bytes()))
	}
	if detail := memDiff(ref.m.Mem, got.m.Mem); detail != "" {
		return div(detail)
	}
	return nil
}

// memDiff walks the union of both memories' mapped pages and reports the
// first differing byte, or "" when identical.
func memDiff(ref, got *mach.Memory) string {
	bases := map[uint64]bool{}
	for _, b := range ref.PageBases() {
		bases[b] = true
	}
	for _, b := range got.PageBases() {
		bases[b] = true
	}
	sorted := make([]uint64, 0, len(bases))
	for b := range bases {
		sorted = append(sorted, b)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	size := mach.PageSize()
	for _, base := range sorted {
		rb := ref.ReadBytes(base, size)
		gb := got.ReadBytes(base, size)
		if bytes.Equal(rb, gb) {
			continue
		}
		for k := range rb {
			if rb[k] != gb[k] {
				return fmt.Sprintf("mem[%#x]: ref %#x vs got %#x", base+uint64(k), rb[k], gb[k])
			}
		}
	}
	return ""
}

// stepRef advances the reference machine by one instruction, failing if the
// clean run faults (which would mean the reference itself is broken).
func stepRef(ref *runState) error {
	if ref.m.Halted {
		return nil
	}
	if _, ok := ref.step(); !ok && !ref.m.Halted {
		return fmt.Errorf("faultinj: reference run faulted at pc %#x", ref.m.PC)
	}
	ref.m.Journal.Reset()
	return nil
}

// --- ClassLoad ---------------------------------------------------------

// injectLoads runs got in lockstep with ref under a speculation buildset.
// At each event it arms a one-shot LoadHook that flips one bit of the next
// loaded value, lets the corrupted instruction execute, rolls it back
// through the journal, re-executes it cleanly, and verifies lockstep. The
// invariant is total transparency: the final states must be identical.
func injectLoads(got, ref *runState, rng *RNG, events []uint64, budget uint64, opts injectOpts) (injected, recovered int, div *Divergence, err error) {
	ei := 0
	for !got.m.Halted {
		if got.m.Instret >= budget {
			return injected, recovered, nil, fmt.Errorf("faultinj: load campaign exceeded %d-instruction budget", budget)
		}
		if ei < len(events) && got.m.Instret >= events[ei] {
			mark := got.m.Journal.Mark()
			pc, instret := got.m.PC, got.m.Instret
			fired := false
			bit := uint(rng.Intn(64))
			got.m.LoadHook = func(addr uint64, size int, val uint64) uint64 {
				if fired {
					return val
				}
				fired = true
				return val ^ (1 << (bit % uint(size*8)))
			}
			_, ok := got.step()
			got.m.LoadHook = nil
			if !fired {
				// The instruction performed no load; it executed cleanly, so
				// mirror it in the reference and keep the event armed for
				// the next instruction.
				if !ok && !got.m.Halted {
					return injected, recovered, nil, fmt.Errorf("faultinj: unexpected fault at pc %#x", got.m.PC)
				}
				if err := stepRef(ref); err != nil {
					return injected, recovered, nil, err
				}
				if d := quickCompare(got, ref); d != nil {
					return injected, recovered, d, nil
				}
				got.m.Journal.Commit(got.m.Journal.Mark())
				continue
			}
			injected++
			ei++
			if !opts.skipRecovery {
				// Squash the corrupted instruction and replay it cleanly —
				// the speculative functional-first recovery protocol.
				got.m.Journal.Rollback(got.m, mark)
				got.m.PC = pc
				got.m.Instret = instret
				got.m.Halted = false
				got.m.ExitCode = 0
				if _, ok := got.step(); !ok && !got.m.Halted {
					return injected, recovered, nil, fmt.Errorf("faultinj: replay faulted at pc %#x", got.m.PC)
				}
				recovered++
			}
			got.m.Journal.Commit(got.m.Journal.Mark())
			if err := stepRef(ref); err != nil {
				return injected, recovered, nil, err
			}
			if d := quickCompare(got, ref); d != nil {
				return injected, recovered, d, nil
			}
			continue
		}
		if _, ok := got.step(); !ok && !got.m.Halted {
			return injected, recovered, nil, fmt.Errorf("faultinj: unexpected fault at pc %#x", got.m.PC)
		}
		got.m.Journal.Commit(got.m.Journal.Mark())
		if err := stepRef(ref); err != nil {
			return injected, recovered, nil, err
		}
		if d := quickCompare(got, ref); d != nil {
			return injected, recovered, d, nil
		}
	}
	// Drain the reference to the same retirement count (it normally already
	// is there; a corrupted-but-unrecovered run may halt early).
	for !ref.m.Halted && ref.m.Instret < got.m.Instret {
		if err := stepRef(ref); err != nil {
			return injected, recovered, nil, err
		}
	}
	return injected, recovered, finalCompare(got, ref), nil
}

// --- ClassFetch --------------------------------------------------------

// corruptWord searches for a corruption of instruction bits that the
// decoder rejects, trying single-bit flips first, then pairs. The search
// order is seeded so campaigns stay deterministic.
func corruptWord(sim *core.Sim, bits uint32, rng *RNG) (uint32, bool) {
	start := uint(rng.Intn(32))
	for k := uint(0); k < 32; k++ {
		c := bits ^ (1 << ((start + k) % 32))
		if !sim.Decodes(c) {
			return c, true
		}
	}
	for a := uint(0); a < 32; a++ {
		for b := a + 1; b < 32; b++ {
			c := bits ^ (1 << a) ^ (1 << b)
			if !sim.Decodes(c) {
				return c, true
			}
		}
	}
	return 0, false
}

// injectFetches corrupts instruction memory at each event so decode fails,
// asserts the faultUnit contract (FaultIllegal is raised, the machine halts
// with exit 128+fault, and the faulting instruction does not retire), then
// restores the bits and resumes. The store into the code page also bumps
// the page generation, so the corruption is what the translation caches
// refetch — a stale cached unit executing the old bits would be a miss of
// its own.
func injectFetches(got, ref *runState, rng *RNG, events []uint64, budget uint64, opts injectOpts) (injected, faults, recovered int, div *Divergence, err error) {
	size := int(got.i.Spec.InstrSize)
	ei := 0
	for !got.m.Halted {
		if got.m.Instret >= budget {
			return injected, faults, recovered, nil, fmt.Errorf("faultinj: fetch campaign exceeded %d-instruction budget", budget)
		}
		if ei < len(events) && got.m.Instret >= events[ei] {
			ei++
			pc := got.m.PC
			word, f := got.m.Mem.Load(pc, size)
			if f != mach.FaultNone {
				return injected, faults, recovered, nil, fmt.Errorf("faultinj: cannot read code at pc %#x: %v", pc, f)
			}
			corrupt, found := corruptWord(got.sim, uint32(word), rng)
			if !found {
				continue // every nearby encoding decodes; skip this event
			}
			if f := got.m.Mem.Store(pc, uint64(corrupt), size); f != mach.FaultNone {
				return injected, faults, recovered, nil, fmt.Errorf("faultinj: cannot corrupt code at pc %#x: %v", pc, f)
			}
			injected++
			before := got.m.Instret
			rec, ok := got.step()
			// The exception action runs halt(128+fault), so the published
			// record carries FaultHalt; the exit code is what pins the
			// original fault to FaultIllegal.
			wantExit := 128 + int(mach.FaultIllegal)
			switch {
			case ok || rec.Fault == mach.FaultNone:
				return injected, faults, recovered, nil, fmt.Errorf(
					"faultinj: corrupted instruction at pc %#x raised %v, want a fault", pc, rec.Fault)
			case !got.m.Halted || got.m.ExitCode != wantExit:
				return injected, faults, recovered, nil, fmt.Errorf(
					"faultinj: illegal instruction halted=%v exit=%d, want halted with exit %d",
					got.m.Halted, got.m.ExitCode, wantExit)
			case got.m.Instret != before || got.m.PC != pc:
				return injected, faults, recovered, nil, fmt.Errorf(
					"faultinj: faulting instruction retired (pc %#x->%#x, instret %d->%d)",
					pc, got.m.PC, before, got.m.Instret)
			}
			faults++
			if opts.skipRecovery {
				break // leave the machine dead on the corrupted instruction
			}
			if f := got.m.Mem.Store(pc, word, size); f != mach.FaultNone {
				return injected, faults, recovered, nil, fmt.Errorf("faultinj: cannot restore code at pc %#x: %v", pc, f)
			}
			got.m.Halted = false
			got.m.ExitCode = 0
			if _, ok := got.step(); !ok && !got.m.Halted {
				return injected, faults, recovered, nil, fmt.Errorf("faultinj: replay after restore faulted at pc %#x", got.m.PC)
			}
			recovered++
			if err := stepRef(ref); err != nil {
				return injected, faults, recovered, nil, err
			}
			if d := quickCompare(got, ref); d != nil {
				return injected, faults, recovered, d, nil
			}
			continue
		}
		if _, ok := got.step(); !ok && !got.m.Halted {
			return injected, faults, recovered, nil, fmt.Errorf("faultinj: unexpected fault at pc %#x", got.m.PC)
		}
		if err := stepRef(ref); err != nil {
			return injected, faults, recovered, nil, err
		}
		if d := quickCompare(got, ref); d != nil {
			return injected, faults, recovered, d, nil
		}
	}
	for !ref.m.Halted && ref.m.Instret < got.m.Instret {
		if err := stepRef(ref); err != nil {
			return injected, faults, recovered, nil, err
		}
	}
	return injected, faults, recovered, finalCompare(got, ref), nil
}

// --- ClassSquash -------------------------------------------------------

// injectSquashes speculatively executes a short window past each event and
// squashes it with Journal.Rollback. The reference is not advanced during
// the window, so any state the rollback fails to undo shows up as a
// lockstep divergence when the squashed instructions re-execute. Kernel
// programs perform no I/O before their exit call, which keeps the windows
// side-effect free outside the journal's reach; the stdout length check
// enforces that assumption.
func injectSquashes(got, ref *runState, rng *RNG, events []uint64, budget uint64, opts injectOpts) (injected, recovered int, div *Divergence, err error) {
	ei := 0
	for !got.m.Halted {
		if got.m.Instret >= budget {
			return injected, recovered, nil, fmt.Errorf("faultinj: squash campaign exceeded %d-instruction budget", budget)
		}
		if ei < len(events) && got.m.Instret >= events[ei] {
			ei++
			mark := got.m.Journal.Mark()
			pc, instret := got.m.PC, got.m.Instret
			outLen := got.emu.Stdout.Len()
			window := 1 + rng.Intn(8)
			for w := 0; w < window && !got.m.Halted; w++ {
				if _, ok := got.step(); !ok {
					break // speculated into a fault or the exit; squash undoes it
				}
			}
			if got.emu.Stdout.Len() != outLen {
				return injected, recovered, nil, fmt.Errorf(
					"faultinj: speculative window at pc %#x performed I/O; squash cannot undo it", pc)
			}
			injected++
			got.m.Journal.Rollback(got.m, mark)
			if !opts.skipRestore {
				got.m.PC = pc
				got.m.Instret = instret
				got.m.Halted = false
				got.m.ExitCode = 0
				recovered++
			}
			if d := quickCompare(got, ref); d != nil {
				return injected, recovered, d, nil
			}
			continue
		}
		if _, ok := got.step(); !ok && !got.m.Halted {
			return injected, recovered, nil, fmt.Errorf("faultinj: unexpected fault at pc %#x", got.m.PC)
		}
		got.m.Journal.Commit(got.m.Journal.Mark())
		if err := stepRef(ref); err != nil {
			return injected, recovered, nil, err
		}
		if d := quickCompare(got, ref); d != nil {
			return injected, recovered, d, nil
		}
	}
	for !ref.m.Halted && ref.m.Instret < got.m.Instret {
		if err := stepRef(ref); err != nil {
			return injected, recovered, nil, err
		}
	}
	return injected, recovered, finalCompare(got, ref), nil
}

// --- ClassCodeGen ------------------------------------------------------

// injectCodeGen runs under the block interface and, at each event, rewrites
// a handful of code words with their own values. The stores are
// semantically invisible but bump the page store-generation counters,
// invalidating every cached translation of those pages — an invalidation
// storm mid-run. The run must end architecturally identical to the
// undisturbed reference, retirement count included.
func injectCodeGen(got, ref *runState, rng *RNG, events []uint64, budget uint64) (injected int, div *Divergence, err error) {
	var text *asm.Segment
	for k := range got.prog.Segments {
		if got.prog.Segments[k].Name == ".text" {
			text = &got.prog.Segments[k]
		}
	}
	size := int(got.i.Spec.InstrSize)
	if text == nil || len(text.Data) < size {
		return 0, nil, fmt.Errorf("faultinj: program has no text segment")
	}
	words := len(text.Data) / size
	for _, ev := range events {
		if got.m.Halted {
			break
		}
		for !got.m.Halted && got.m.Instret < ev {
			if got.m.Instret >= budget {
				return injected, nil, fmt.Errorf("faultinj: codegen campaign exceeded %d-instruction budget", budget)
			}
			if n := got.x.Run(ev - got.m.Instret); n == 0 && !got.m.Halted {
				return injected, nil, fmt.Errorf("faultinj: run stuck at pc %#x", got.m.PC)
			}
		}
		if got.m.Halted {
			break
		}
		for k := 0; k < 4; k++ {
			addr := text.Addr + uint64(rng.Intn(words)*size)
			w, f := got.m.Mem.Load(addr, size)
			if f != mach.FaultNone {
				return injected, nil, fmt.Errorf("faultinj: cannot read code at %#x: %v", addr, f)
			}
			if f := got.m.Mem.Store(addr, w, size); f != mach.FaultNone {
				return injected, nil, fmt.Errorf("faultinj: cannot touch code at %#x: %v", addr, f)
			}
		}
		injected++
	}
	if err := got.runAll(budget); err != nil {
		return injected, nil, err
	}
	return injected, finalCompare(got, ref), nil
}

// --- ClassSyscall ------------------------------------------------------

// sysRetrySource is a hand-written alpha64 program whose every system call
// sits in a retry loop: writes resume at the unwritten suffix after a short
// or denied write, reads refill the unread suffix, and the heap request
// repeats until the break actually moves. Under any finite fault schedule
// its output, exit code, and result word must match the fault-free run.
const sysRetrySource = `
.text
_start:
    ; write(1, msg, 9) with short/deny retry
    ldah r9, ha(msg)(r31)
    lda  r9, lo(msg)(r9)
    addq r31, 9, r10
wloop:
    beq  r10, wdone
    addq r31, 2, r0
    addq r31, 1, r16
    bis  r9, r9, r17
    bis  r10, r10, r18
    callsys
    addq r0, 1, r11
    beq  r11, wloop
    addq r9, r0, r9
    subq r10, r0, r10
    br   r31, wloop
wdone:
    ; read(0, inbuf, 4) with short/deny retry
    ldah r9, ha(inbuf)(r31)
    lda  r9, lo(inbuf)(r9)
    addq r31, 4, r10
rloop:
    beq  r10, rdone
    addq r31, 3, r0
    bis  r31, r31, r16
    bis  r9, r9, r17
    bis  r10, r10, r18
    callsys
    addq r0, 1, r11
    beq  r11, rloop
    beq  r0, rdone
    addq r9, r0, r9
    subq r10, r0, r10
    br   r31, rloop
rdone:
    ; grow the heap by a page, retrying brk until it moves
    addq r31, 4, r0
    bis  r31, r31, r16
    callsys
    lda  r13, 4096(r0)
bloop:
    addq r31, 4, r0
    bis  r13, r13, r16
    callsys
    subq r0, r13, r11
    bne  r11, bloop
    ; checksum the read bytes into result
    ldah r9, ha(inbuf)(r31)
    lda  r9, lo(inbuf)(r9)
    ldl  r14, 0(r9)
    ldah r15, ha(result)(r31)
    lda  r15, lo(result)(r15)
    stl  r14, 0(r15)
    ; exit(0)
    addq r31, 1, r0
    bis  r31, r31, r16
    callsys

.data
msg:
    .ascii "FAULTINJ\n"
    .align 4
inbuf:
    .space 8
result:
    .word 0
`

// sysRetryStdin is the input both runs consume.
var sysRetryStdin = []byte("ABCD")

// injectSyscalls runs the retry-loop program twice — once clean, once with
// a FaultHook that spends a finite fault budget on short and denied calls —
// and checks that the program's retries fully absorb the faults: identical
// stdout, exit code, and result word. Retirement counts legitimately differ
// (the retries are real instructions), so this class compares outcomes, not
// lockstep state.
func injectSyscalls(got, ref *runState, rng *RNG, faultBudget int, budget uint64) (injected, recovered int, div *Divergence, err error) {
	ref.emu.Stdin = append([]byte(nil), sysRetryStdin...)
	if err := ref.runAll(budget); err != nil {
		return 0, 0, nil, fmt.Errorf("faultinj: clean syscall run: %w", err)
	}
	got.emu.Stdin = append([]byte(nil), sysRetryStdin...)
	remaining := faultBudget
	got.emu.FaultHook = func(num int) sysemu.SyscallFault {
		if remaining <= 0 {
			return sysemu.SysFaultNone
		}
		switch rng.Intn(3) {
		case 0:
			remaining--
			injected++
			return sysemu.SysFaultShort
		case 1:
			remaining--
			injected++
			return sysemu.SysFaultDeny
		default:
			return sysemu.SysFaultNone
		}
	}
	if err := got.runAll(budget); err != nil {
		return injected, recovered, nil, fmt.Errorf("faultinj: faulted syscall run: %w", err)
	}
	got.emu.FaultHook = nil
	div = func() *Divergence {
		d := func(detail string) *Divergence {
			return &Divergence{Instret: got.m.Instret, RefPC: ref.m.PC, GotPC: got.m.PC, Detail: detail}
		}
		if got.m.ExitCode != ref.m.ExitCode {
			return d(fmt.Sprintf("exit code: ref %d vs got %d", ref.m.ExitCode, got.m.ExitCode))
		}
		if !bytes.Equal(got.emu.Stdout.Bytes(), ref.emu.Stdout.Bytes()) {
			return d(fmt.Sprintf("stdout: ref %q vs got %q", ref.emu.Stdout.Bytes(), got.emu.Stdout.Bytes()))
		}
		resAddr, ok := got.prog.Symbols["result"]
		if !ok {
			return d("program has no result symbol")
		}
		rv, _ := ref.m.Mem.Load(resAddr, 4)
		gv, _ := got.m.Mem.Load(resAddr, 4)
		if rv != gv {
			return d(fmt.Sprintf("result word: ref %#x vs got %#x", rv, gv))
		}
		return nil
	}()
	if div == nil {
		recovered = injected
	}
	return injected, recovered, div, nil
}
