package faultinj

import (
	"strings"
	"testing"

	"singlespec/internal/obs"
)

// quickCfg is a small single-kernel campaign config used by most tests.
func quickCfg(seed uint64) Config {
	return Config{Seed: seed, Kernels: []string{"crc32"}, Events: 3}
}

// TestCampaignAllClassesRecover runs a default campaign over every class
// and checks the core contract: faults are injected, every recovery is
// transparent, and no cell errors.
func TestCampaignAllClassesRecover(t *testing.T) {
	rep, err := Run(quickCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("campaign ran no cells")
	}
	perClass := map[Class]int{}
	for _, res := range rep.Results {
		if res.Err != nil {
			t.Errorf("cell %s errored: %v", res.Key(), res.Err)
			continue
		}
		if res.Divergence != nil {
			t.Errorf("cell %s diverged: %v", res.Key(), res.Divergence)
			continue
		}
		if res.Recovered != res.Injected {
			t.Errorf("cell %s: injected %d but recovered %d", res.Key(), res.Injected, res.Recovered)
		}
		perClass[res.Class] += res.Injected
	}
	for _, cl := range AllClasses() {
		if perClass[cl] == 0 {
			t.Errorf("class %s injected no faults anywhere", cl)
		}
	}
}

// TestCampaignDeterministic renders the same seeded campaign at different
// worker counts and demands byte-identical reports.
func TestCampaignDeterministic(t *testing.T) {
	render := func(workers int) string {
		cfg := quickCfg(7)
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	serial := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != serial {
			t.Fatalf("report differs between 1 and %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				w, serial, w, got)
		}
	}
	if different := render(1); different != serial {
		t.Fatal("same seed produced different reports across runs")
	}
}

// TestDifferentSeedsDifferentSchedules is a sanity check that the seed
// actually steers the campaign.
func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	a, err := Run(quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Skip("seeds 1 and 2 happened to coincide (schedules equal)")
	}
}

// TestFetchInjectionForcesFaultPath checks the fetch class drove the
// faultUnit path: every injected corruption raised FaultIllegal and halted
// with exit 128+fault (asserted inside the injector; a violation surfaces
// as a cell error).
func TestFetchInjectionForcesFaultPath(t *testing.T) {
	cfg := quickCfg(11).withDefaults()
	res := runCell(CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassFetch}, cfg, injectOpts{}, 0, nil)
	if res.Err != nil {
		t.Fatalf("fetch cell errored: %v", res.Err)
	}
	if res.Divergence != nil {
		t.Fatalf("fetch cell diverged: %v", res.Divergence)
	}
	if res.Injected == 0 {
		t.Fatal("fetch cell injected nothing")
	}
	if res.Faults != res.Injected {
		t.Errorf("faults = %d, want one per injection (%d)", res.Faults, res.Injected)
	}
}

// TestLoadDivergenceDetected breaks the load-recovery protocol on purpose
// (no rollback after the corrupted instruction) and requires the
// differential checker to notice.
func TestLoadDivergenceDetected(t *testing.T) {
	cfg := quickCfg(5).withDefaults()
	res := runCell(CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassLoad}, cfg,
		injectOpts{skipRecovery: true}, 0, nil)
	if res.Err != nil {
		t.Fatalf("cell errored instead of diverging: %v", res.Err)
	}
	if res.Injected == 0 {
		t.Fatal("no fault landed; the knob test proves nothing")
	}
	if res.Divergence == nil {
		t.Fatal("unrecovered load corruption was not detected")
	}
}

// TestFetchDivergenceDetected leaves the corrupted instruction in place:
// the run dies on it, and the checker must report the early halt.
func TestFetchDivergenceDetected(t *testing.T) {
	cfg := quickCfg(5).withDefaults()
	res := runCell(CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassFetch}, cfg,
		injectOpts{skipRecovery: true}, 0, nil)
	if res.Err != nil {
		t.Fatalf("cell errored instead of diverging: %v", res.Err)
	}
	if res.Injected == 0 {
		t.Fatal("no fault landed")
	}
	if res.Divergence == nil {
		t.Fatal("dead machine compared equal to the completed reference")
	}
}

// TestSquashDivergenceDetected rolls the journal back but "forgets" the
// PC/Instret restore — the half-finished squash must be caught immediately.
func TestSquashDivergenceDetected(t *testing.T) {
	cfg := quickCfg(5).withDefaults()
	res := runCell(CellSpec{ISA: "alpha64", Kernel: "crc32", Class: ClassSquash}, cfg,
		injectOpts{skipRestore: true}, 0, nil)
	if res.Err != nil {
		t.Fatalf("cell errored instead of diverging: %v", res.Err)
	}
	if res.Injected == 0 {
		t.Fatal("no squash window executed")
	}
	if res.Divergence == nil {
		t.Fatal("half-finished squash was not detected")
	}
}

// TestSyscallRetriesAbsorbFaults runs the syscall class alone and checks
// the retry program fully absorbed a non-empty fault schedule.
func TestSyscallRetriesAbsorbFaults(t *testing.T) {
	cfg := Config{Seed: 9, Events: 6, Classes: []Class{ClassSyscall}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("syscall class ran %d cells, want 1", len(rep.Results))
	}
	res := rep.Results[0]
	if !res.OK() {
		t.Fatalf("syscall cell failed: div=%v err=%v", res.Divergence, res.Err)
	}
	if res.Injected == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	if !strings.Contains(rep.String(), "syscall") {
		t.Error("report does not mention the syscall class")
	}
}

// TestCampaignContainsPanickingCell feeds Run a kernel list that makes one
// class's cells fail while others succeed — the campaign must complete with
// the failure contained in its Result.
func TestCampaignContainsPanickingCell(t *testing.T) {
	// An unknown kernel is rejected up front...
	if _, err := Run(Config{Seed: 1, Kernels: []string{"no_such_kernel"}}); err == nil {
		t.Error("unknown kernel not rejected")
	}
	// ...while a panic inside a cell is contained (drive runCell directly
	// with a spec that makes program construction blow up downstream).
	cfg := quickCfg(3).withDefaults()
	res := runCell(CellSpec{ISA: "alpha64", Kernel: "no_such_kernel", Class: ClassLoad}, cfg, injectOpts{}, 0, nil)
	if res.Err == nil {
		t.Fatal("bad cell reported no error")
	}
}

// TestRNGDeterminism pins the PCG stream so accidental algorithm changes
// (which would silently re-shuffle every campaign) fail loudly.
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42, 7), NewRNG(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43, 7)
	same := true
	for i := 0; i < 16; i++ {
		if b.Uint32() != c.Uint32() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Error("SplitMix64 collision on adjacent inputs")
	}
}

// TestParseClasses covers the flag-parsing surface.
func TestParseClasses(t *testing.T) {
	all, err := ParseClasses("all")
	if err != nil || len(all) != len(AllClasses()) {
		t.Fatalf("ParseClasses(all) = %v, %v", all, err)
	}
	two, err := ParseClasses("load, fetch")
	if err != nil || len(two) != 2 || two[0] != ClassLoad || two[1] != ClassFetch {
		t.Fatalf("ParseClasses(load, fetch) = %v, %v", two, err)
	}
	if _, err := ParseClasses("cosmic-ray"); err == nil {
		t.Error("unknown class accepted")
	}
	for _, c := range AllClasses() {
		if got, err := ParseClasses(c.String()); err != nil || len(got) != 1 || got[0] != c {
			t.Errorf("round trip failed for %s", c)
		}
	}
}

// TestCampaignObsCounters checks a campaign's obs export: the per-class
// counters must add up to exactly the report's own totals, and the
// manifest outcomes must mirror the cells one-to-one.
func TestCampaignObsCounters(t *testing.T) {
	cfg := quickCfg(42)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wantInjected := map[string]uint64{}
	wantRecovered := map[string]uint64{}
	for _, res := range rep.Results {
		wantInjected[res.Class.String()] += uint64(res.Injected)
		wantRecovered[res.Class.String()] += uint64(res.Recovered)
	}
	for cl, want := range wantInjected {
		if got := snap.Counters["faultinj."+cl+".injected"]; got != want {
			t.Errorf("%s injected counter = %d, want %d", cl, got, want)
		}
		if got := snap.Counters["faultinj."+cl+".recovered"]; got != wantRecovered[cl] {
			t.Errorf("%s recovered counter = %d, want %d", cl, got, wantRecovered[cl])
		}
	}
	outs := rep.Outcomes()
	if len(outs) != len(rep.Results) {
		t.Fatalf("%d outcomes for %d results", len(outs), len(rep.Results))
	}
	for i, o := range outs {
		if o.Status != "ok" {
			t.Errorf("outcome %d status %q (clean campaign)", i, o.Status)
		}
		if !strings.Contains(o.Buildset, "/"+rep.Results[i].Kernel) {
			t.Errorf("outcome %d buildset %q missing kernel", i, o.Buildset)
		}
	}
}

// TestCodeGenCampaignExercisesChaining: the codegen class runs on the
// block interface, whose dispatcher chains blocks; the campaign is only a
// meaningful stress of chain invalidation if links are actually being
// followed between the injected storms.
func TestCodeGenCampaignExercisesChaining(t *testing.T) {
	cfg := quickCfg(42)
	cfg.Classes = []Class{ClassCodeGen}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var follows uint64
	for _, res := range rep.Results {
		if res.Err != nil || res.Divergence != nil {
			t.Errorf("cell %s failed: err=%v div=%v", res.Key(), res.Err, res.Divergence)
		}
		follows += res.ChainFollows
	}
	if follows == 0 {
		t.Fatal("codegen campaign ran without a single chain follow; the storm is not stressing chaining")
	}
}
