package faultinj

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/obs"
)

// Config configures one campaign. The zero value (plus a seed) is a usable
// default campaign.
type Config struct {
	// Seed is the campaign seed; every fault placement, bit choice, and
	// schedule derives from it deterministically.
	Seed uint64
	// Events is the number of fault events attempted per cell (default 4).
	Events int
	// Workers is the worker-pool size; <= 0 means runtime.NumCPU(). The
	// report is byte-identical for any value.
	Workers int
	// Classes selects the fault classes to run; nil means all.
	Classes []Class
	// ISAs selects target ISAs for the per-kernel classes; nil means all
	// registered ISAs. The syscall class always runs its dedicated alpha64
	// retry program.
	ISAs []string
	// Kernels selects the workloads faults are injected into; nil means a
	// small default pair. Kernels run at their test-sized DefaultN.
	Kernels []string
	// MaxInstr bounds every individual run (default 20M instructions); a
	// cell that exceeds it is reported as errored, not hung.
	MaxInstr uint64
	// Obs, when non-nil, receives the campaign's per-class outcome
	// counters (planned/injected/recovered/faults/divergences/errors)
	// after the run. The report is deterministic, so the counters are
	// byte-identical across worker counts. Nil disables at zero cost.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if len(c.Classes) == 0 {
		c.Classes = AllClasses()
	}
	if len(c.ISAs) == 0 {
		c.ISAs = isa.Names()
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []string{"sieve", "crc32"}
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = 20_000_000
	}
	return c
}

// Result is the outcome of one campaign cell: one (ISA, kernel, class)
// combination with its own derived fault schedule.
type Result struct {
	ISA      string
	Kernel   string
	Class    Class
	Buildset string
	// Planned is how many fault events the schedule held; Injected how many
	// actually landed (an event can miss, e.g. no load reachable).
	Planned, Injected int
	// Recovered counts injections whose recovery protocol completed.
	Recovered int
	// Faults counts injections that raised an architectural fault (the
	// fetch class expects one per injection).
	Faults int
	// RefInstret is the clean run's retirement count.
	RefInstret uint64
	// ChainFollows is the faulted run's block-chain follow count (codegen
	// class only). The codegen campaign runs under the block interface, so
	// a nonzero value certifies its invalidation storms actually landed on
	// a chaining dispatcher rather than a cold one.
	ChainFollows uint64
	// Divergence is non-nil when the faulted run's state leaked past
	// recovery — the failure the campaign exists to catch.
	Divergence *Divergence
	// Err reports infrastructure failures (budget blown, panic, bad cell).
	Err error
}

// OK reports whether the cell completed with recovery fully transparent.
func (r Result) OK() bool { return r.Err == nil && r.Divergence == nil }

// Key returns the cell's stable identity ("ISA/class/kernel") — the same
// namespace CellSpec.Key uses, so campaign journals, fabric leases, and
// report rows all name a cell identically.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%s", r.ISA, r.Class, r.Kernel)
}

// CellSpec identifies one campaign cell before it runs: the unit of work a
// fabric coordinator leases and MeasureCampaignCell measures. Like
// expt.JobSpec for sweep cells, its Key is a compatibility contract: it
// names cells in campaign journals, segment files, and wire frames.
type CellSpec struct {
	ISA    string `json:"isa"`
	Kernel string `json:"kernel"`
	Class  Class  `json:"class"`
}

// Key returns the spec's stable identity ("ISA/class/kernel").
func (s CellSpec) Key() string {
	return fmt.Sprintf("%s/%s/%s", s.ISA, s.Class, s.Kernel)
}

// ParseCellKey inverts CellSpec.Key. Campaign leases are key-addressed on
// the fabric wire, so a worker rebuilds the spec from the key alone.
func ParseCellKey(key string) (CellSpec, error) {
	parts := strings.Split(key, "/")
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return CellSpec{}, fmt.Errorf("faultinj: malformed cell key %q (want ISA/class/kernel)", key)
	}
	cl, ok := classByName(parts[1])
	if !ok {
		return CellSpec{}, fmt.Errorf("faultinj: cell key %q names unknown class %q", key, parts[1])
	}
	return CellSpec{ISA: parts[0], Kernel: parts[2], Class: cl}, nil
}

// CampaignCells expands a config into its deterministic cell order:
// class-major, then ISA, then kernel. This is the list a campaign runs and
// a fabric coordinator leases; the report's rows follow it exactly.
func CampaignCells(cfg Config) []CellSpec {
	cfg = cfg.withDefaults()
	var out []CellSpec
	for _, cl := range cfg.Classes {
		if cl == ClassSyscall {
			// The syscall class needs a program written to retry; it ships
			// its own (alpha64), independent of the kernel list.
			out = append(out, CellSpec{ISA: "alpha64", Kernel: "sysretry", Class: cl})
			continue
		}
		for _, isaName := range cfg.ISAs {
			for _, k := range cfg.Kernels {
				out = append(out, CellSpec{ISA: isaName, Kernel: k, Class: cl})
			}
		}
	}
	return out
}

// Run executes a campaign: every cell independently injects its schedule of
// faults, recovers, and differentially checks the result. Cells fan out
// across a worker pool; results are collected by cell index, so the report
// is byte-identical for any worker count. Cell failures (divergences,
// errors, panics) are contained in their Result — Run itself only fails on
// configuration errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	for _, k := range cfg.Kernels {
		if kernels.ByName(k) == nil {
			return nil, fmt.Errorf("faultinj: unknown kernel %q", k)
		}
	}
	specs := CampaignCells(cfg)
	results := make([]Result, len(specs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				results[idx] = runCell(specs[idx], cfg, injectOpts{}, 0, nil)
			}
		}()
	}
	for i := range specs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	rep := &Report{Seed: cfg.Seed, Results: results}
	rep.Record(cfg.Obs)
	return rep, nil
}

// ProgressSink receives campaign-cell progress snapshots: an opaque blob a
// later MeasureCampaignCell call can resume from, plus the clean run's
// retirement count for liveness display. Mirrors expt.ProgressSink so
// fabric heartbeats can ship campaign progress unchanged.
type ProgressSink func(snapshot []byte, instret uint64)

// MeasureCampaignCell runs one campaign cell, optionally resuming from a
// progress snapshot a previous attempt shipped through its sink. It is the
// campaign analogue of expt.MeasureSpec: the unit of work a fabric worker
// executes under lease.
//
// Only the clean reference pass is resumable — for the load/fetch/squash
// classes the clean run exists solely to fix the schedule space (total
// retirements) and never consumes the cell's RNG stream, so skipping it on
// resume is byte-identical. The codegen class needs the clean run's end
// state as its differential reference and the syscall class has no clean
// pass, so those classes ignore resume data and ship no snapshots. A
// damaged or mismatched snapshot is dropped (counted on reg as
// "faultinj.snapshot_dropped") and the cell restarts from scratch — resume
// is an optimization, never a correctness risk.
//
// The bool result reports whether the cell actually resumed mid-cell.
func MeasureCampaignCell(spec CellSpec, cfg Config, resume []byte, sink ProgressSink, reg *obs.Registry) (Result, bool) {
	cfg = cfg.withDefaults()
	refInstret := uint64(0)
	resumed := false
	if len(resume) > 0 && spec.Class.cleanSkippable() {
		if n, err := decodeCampaignProgress(resume); err == nil {
			refInstret = n
			resumed = true
		} else {
			reg.Counter("faultinj.snapshot_dropped").Inc()
		}
	}
	return runCell(spec, cfg, injectOpts{}, refInstret, sink), resumed
}

// cleanSkippable reports whether a class's clean pass only feeds the
// schedule space and can be skipped when resuming from a snapshot.
func (c Class) cleanSkippable() bool {
	switch c {
	case ClassLoad, ClassFetch, ClassSquash:
		return true
	}
	return false
}

// campaignProgress is the wire form of a campaign-cell progress snapshot.
// Like expt's progressWire it is versioned by shape: decode validates every
// field and rejects anything it does not recognise.
type campaignProgress struct {
	Phase      string `json:"phase"`
	RefInstret uint64 `json:"ref_instret"`
}

const campaignPhaseCleanDone = "clean_done"

func encodeCampaignProgress(refInstret uint64) []byte {
	b, _ := json.Marshal(campaignProgress{Phase: campaignPhaseCleanDone, RefInstret: refInstret})
	return b
}

func decodeCampaignProgress(data []byte) (uint64, error) {
	var p campaignProgress
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return 0, fmt.Errorf("faultinj: decode progress: %w", err)
	}
	if p.Phase != campaignPhaseCleanDone {
		return 0, fmt.Errorf("faultinj: progress phase %q not recognised", p.Phase)
	}
	if p.RefInstret == 0 {
		return 0, fmt.Errorf("faultinj: progress with zero ref_instret")
	}
	return p.RefInstret, nil
}

// runCell executes one cell under a recover barrier: a panicking cell is
// reported in its Result and never takes down the campaign. When
// refInstret is nonzero and the class's clean pass is skippable, the clean
// run is elided and the schedule space taken from the snapshot; when sink
// is non-nil, a snapshot is shipped once the clean pass completes.
func runCell(cs CellSpec, cfg Config, opts injectOpts, refInstret uint64, sink ProgressSink) (res Result) {
	res = Result{ISA: cs.ISA, Kernel: cs.Kernel, Class: cs.Class, Buildset: cs.Class.buildset()}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("faultinj: cell %s panicked: %v\n%s", res.Key(), r, debug.Stack())
		}
	}()
	// The per-cell stream depends on the campaign seed and the cell's
	// identity, never on scheduling order.
	rng := NewRNG(SplitMix64(cfg.Seed^hashKey(res.Key())), hashKey(res.Key()))
	i, err := isa.Load(cs.ISA)
	if err != nil {
		res.Err = err
		return res
	}
	var prog *asm.Program
	if cs.Class == ClassSyscall {
		a, err := asm.New(i)
		if err != nil {
			res.Err = err
			return res
		}
		if prog, err = a.Assemble("sysretry.s", sysRetrySource); err != nil {
			res.Err = err
			return res
		}
	} else {
		k := kernels.ByName(cs.Kernel)
		if k == nil {
			res.Err = fmt.Errorf("faultinj: unknown kernel %q", cs.Kernel)
			return res
		}
		if prog, err = kernels.BuildProgram(i, k.Build(k.DefaultN)); err != nil {
			res.Err = err
			return res
		}
	}
	sim, err := core.Synthesize(i.Spec, res.Buildset, core.Options{})
	if err != nil {
		res.Err = err
		return res
	}

	if cs.Class == ClassSyscall {
		got, ref := newRun(i, prog, sim), newRun(i, prog, sim)
		res.Planned = cfg.Events
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectSyscalls(got, ref, rng, cfg.Events, cfg.MaxInstr)
		res.RefInstret = ref.m.Instret
		return res
	}

	// Pass 1: a clean run fixes the schedule space (total retirements). It
	// never touches the cell's RNG stream, so a resumed cell that skips it
	// produces the identical fault schedule.
	var clean *runState
	if refInstret > 0 && cs.Class.cleanSkippable() {
		res.RefInstret = refInstret
	} else {
		clean = newRun(i, prog, sim)
		if err := clean.runAll(cfg.MaxInstr); err != nil {
			res.Err = fmt.Errorf("faultinj: clean run: %w", err)
			return res
		}
		res.RefInstret = clean.m.Instret
		if sink != nil && cs.Class.cleanSkippable() {
			sink(encodeCampaignProgress(res.RefInstret), res.RefInstret)
		}
	}
	events := pickEvents(rng, res.RefInstret, cfg.Events)
	res.Planned = len(events)

	// Pass 2: the faulted run, checked differentially against a reference.
	got := newRun(i, prog, sim)
	switch cs.Class {
	case ClassLoad:
		ref := newRun(i, prog, sim)
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectLoads(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassFetch:
		ref := newRun(i, prog, sim)
		res.Injected, res.Faults, res.Recovered, res.Divergence, res.Err =
			injectFetches(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassSquash:
		ref := newRun(i, prog, sim)
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectSquashes(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassCodeGen:
		// The completed clean run doubles as the end-state reference.
		res.Injected, res.Divergence, res.Err =
			injectCodeGen(got, clean, rng, events, cfg.MaxInstr)
		res.Recovered = res.Injected
		res.ChainFollows = got.x.Stats().BlockChainFollows
	default:
		res.Err = fmt.Errorf("faultinj: unhandled class %v", cs.Class)
	}
	return res
}
