package faultinj

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/obs"
)

// Config configures one campaign. The zero value (plus a seed) is a usable
// default campaign.
type Config struct {
	// Seed is the campaign seed; every fault placement, bit choice, and
	// schedule derives from it deterministically.
	Seed uint64
	// Events is the number of fault events attempted per cell (default 4).
	Events int
	// Workers is the worker-pool size; <= 0 means runtime.NumCPU(). The
	// report is byte-identical for any value.
	Workers int
	// Classes selects the fault classes to run; nil means all.
	Classes []Class
	// ISAs selects target ISAs for the per-kernel classes; nil means all
	// registered ISAs. The syscall class always runs its dedicated alpha64
	// retry program.
	ISAs []string
	// Kernels selects the workloads faults are injected into; nil means a
	// small default pair. Kernels run at their test-sized DefaultN.
	Kernels []string
	// MaxInstr bounds every individual run (default 20M instructions); a
	// cell that exceeds it is reported as errored, not hung.
	MaxInstr uint64
	// Obs, when non-nil, receives the campaign's per-class outcome
	// counters (planned/injected/recovered/faults/divergences/errors)
	// after the run. The report is deterministic, so the counters are
	// byte-identical across worker counts. Nil disables at zero cost.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if len(c.Classes) == 0 {
		c.Classes = AllClasses()
	}
	if len(c.ISAs) == 0 {
		c.ISAs = isa.Names()
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []string{"sieve", "crc32"}
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = 20_000_000
	}
	return c
}

// Result is the outcome of one campaign cell: one (ISA, kernel, class)
// combination with its own derived fault schedule.
type Result struct {
	ISA      string
	Kernel   string
	Class    Class
	Buildset string
	// Planned is how many fault events the schedule held; Injected how many
	// actually landed (an event can miss, e.g. no load reachable).
	Planned, Injected int
	// Recovered counts injections whose recovery protocol completed.
	Recovered int
	// Faults counts injections that raised an architectural fault (the
	// fetch class expects one per injection).
	Faults int
	// RefInstret is the clean run's retirement count.
	RefInstret uint64
	// ChainFollows is the faulted run's block-chain follow count (codegen
	// class only). The codegen campaign runs under the block interface, so
	// a nonzero value certifies its invalidation storms actually landed on
	// a chaining dispatcher rather than a cold one.
	ChainFollows uint64
	// Divergence is non-nil when the faulted run's state leaked past
	// recovery — the failure the campaign exists to catch.
	Divergence *Divergence
	// Err reports infrastructure failures (budget blown, panic, bad cell).
	Err error
}

// OK reports whether the cell completed with recovery fully transparent.
func (r Result) OK() bool { return r.Err == nil && r.Divergence == nil }

func (r Result) key() string {
	return fmt.Sprintf("%s/%s/%s", r.ISA, r.Class, r.Kernel)
}

// cellSpec identifies one cell before it runs.
type cellSpec struct {
	isaName string
	kernel  string
	class   Class
}

// cellList expands a config into its deterministic cell order: class-major,
// then ISA, then kernel.
func cellList(cfg Config) []cellSpec {
	var out []cellSpec
	for _, cl := range cfg.Classes {
		if cl == ClassSyscall {
			// The syscall class needs a program written to retry; it ships
			// its own (alpha64), independent of the kernel list.
			out = append(out, cellSpec{isaName: "alpha64", kernel: "sysretry", class: cl})
			continue
		}
		for _, isaName := range cfg.ISAs {
			for _, k := range cfg.Kernels {
				out = append(out, cellSpec{isaName: isaName, kernel: k, class: cl})
			}
		}
	}
	return out
}

// Run executes a campaign: every cell independently injects its schedule of
// faults, recovers, and differentially checks the result. Cells fan out
// across a worker pool; results are collected by cell index, so the report
// is byte-identical for any worker count. Cell failures (divergences,
// errors, panics) are contained in their Result — Run itself only fails on
// configuration errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	for _, k := range cfg.Kernels {
		if kernels.ByName(k) == nil {
			return nil, fmt.Errorf("faultinj: unknown kernel %q", k)
		}
	}
	specs := cellList(cfg)
	results := make([]Result, len(specs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				results[idx] = runCell(specs[idx], cfg, injectOpts{})
			}
		}()
	}
	for i := range specs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	rep := &Report{Seed: cfg.Seed, Results: results}
	rep.record(cfg.Obs)
	return rep, nil
}

// runCell executes one cell under a recover barrier: a panicking cell is
// reported in its Result and never takes down the campaign.
func runCell(cs cellSpec, cfg Config, opts injectOpts) (res Result) {
	res = Result{ISA: cs.isaName, Kernel: cs.kernel, Class: cs.class, Buildset: cs.class.buildset()}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("faultinj: cell %s panicked: %v\n%s", res.key(), r, debug.Stack())
		}
	}()
	// The per-cell stream depends on the campaign seed and the cell's
	// identity, never on scheduling order.
	rng := NewRNG(SplitMix64(cfg.Seed^hashKey(res.key())), hashKey(res.key()))
	i, err := isa.Load(cs.isaName)
	if err != nil {
		res.Err = err
		return res
	}
	var prog *asm.Program
	if cs.class == ClassSyscall {
		a, err := asm.New(i)
		if err != nil {
			res.Err = err
			return res
		}
		if prog, err = a.Assemble("sysretry.s", sysRetrySource); err != nil {
			res.Err = err
			return res
		}
	} else {
		k := kernels.ByName(cs.kernel)
		if k == nil {
			res.Err = fmt.Errorf("faultinj: unknown kernel %q", cs.kernel)
			return res
		}
		if prog, err = kernels.BuildProgram(i, k.Build(k.DefaultN)); err != nil {
			res.Err = err
			return res
		}
	}
	sim, err := core.Synthesize(i.Spec, res.Buildset, core.Options{})
	if err != nil {
		res.Err = err
		return res
	}

	if cs.class == ClassSyscall {
		got, ref := newRun(i, prog, sim), newRun(i, prog, sim)
		res.Planned = cfg.Events
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectSyscalls(got, ref, rng, cfg.Events, cfg.MaxInstr)
		res.RefInstret = ref.m.Instret
		return res
	}

	// Pass 1: a clean run fixes the schedule space (total retirements).
	clean := newRun(i, prog, sim)
	if err := clean.runAll(cfg.MaxInstr); err != nil {
		res.Err = fmt.Errorf("faultinj: clean run: %w", err)
		return res
	}
	res.RefInstret = clean.m.Instret
	events := pickEvents(rng, clean.m.Instret, cfg.Events)
	res.Planned = len(events)

	// Pass 2: the faulted run, checked differentially against a reference.
	got := newRun(i, prog, sim)
	switch cs.class {
	case ClassLoad:
		ref := newRun(i, prog, sim)
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectLoads(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassFetch:
		ref := newRun(i, prog, sim)
		res.Injected, res.Faults, res.Recovered, res.Divergence, res.Err =
			injectFetches(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassSquash:
		ref := newRun(i, prog, sim)
		res.Injected, res.Recovered, res.Divergence, res.Err =
			injectSquashes(got, ref, rng, events, cfg.MaxInstr, opts)
	case ClassCodeGen:
		// The completed clean run doubles as the end-state reference.
		res.Injected, res.Divergence, res.Err =
			injectCodeGen(got, clean, rng, events, cfg.MaxInstr)
		res.Recovered = res.Injected
		res.ChainFollows = got.x.Stats().BlockChainFollows
	default:
		res.Err = fmt.Errorf("faultinj: unhandled class %v", cs.class)
	}
	return res
}
