package faultinj

import (
	"fmt"
	"strings"

	"singlespec/internal/obs"
	"singlespec/internal/stats"
)

// Report is the rendered outcome of one campaign. For a given Config it is
// byte-identical across runs, hosts, and worker counts — the determinism
// contract campaigns are built on.
type Report struct {
	Seed    uint64
	Results []Result
}

// Failures returns the cells that diverged or errored.
func (r *Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.OK() {
			out = append(out, res)
		}
	}
	return out
}

// Record merges the campaign's outcome counters into reg, one counter
// family per fault class. Results are deterministic per seed, so the
// counters inherit the report's byte-identity across worker counts.
// Exported so fabric coordinators and the service daemon can mirror Run's
// counter semantics when they assemble a Report from merged cells.
func (r *Report) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, res := range r.Results {
		p := "faultinj." + res.Class.String() + "."
		reg.Counter(p + "planned").Add(uint64(res.Planned))
		reg.Counter(p + "injected").Add(uint64(res.Injected))
		reg.Counter(p + "recovered").Add(uint64(res.Recovered))
		reg.Counter(p + "faults").Add(uint64(res.Faults))
		if res.Divergence != nil {
			reg.Counter(p + "divergences").Inc()
		}
		if res.Err != nil {
			reg.Counter(p + "errors").Inc()
		}
	}
}

// Outcomes converts the campaign's results into manifest cell outcomes
// (status "ok", "diverged", or "error"; the kernel rides in the buildset
// field alongside the interface name).
func (r *Report) Outcomes() []obs.CellOutcome {
	out := make([]obs.CellOutcome, 0, len(r.Results))
	for _, res := range r.Results {
		status := "ok"
		switch {
		case res.Err != nil:
			status = "error"
		case res.Divergence != nil:
			status = "diverged"
		}
		out = append(out, obs.CellOutcome{
			ISA:      res.ISA,
			Buildset: res.Buildset + "/" + res.Class.String() + "/" + res.Kernel,
			Status:   status,
			Attempts: 1,
			Instret:  res.RefInstret,
		})
	}
	return out
}

// Table renders one row per cell in deterministic cell order.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable("ISA", "Kernel", "Class", "Interface",
		"Planned", "Injected", "Recovered", "Faults", "Instret", "Status")
	for _, res := range r.Results {
		status := "ok"
		switch {
		case res.Err != nil:
			status = "ERROR"
		case res.Divergence != nil:
			status = "DIVERGED"
		}
		t.Row(res.ISA, res.Kernel, res.Class.String(), res.Buildset,
			res.Planned, res.Injected, res.Recovered, res.Faults,
			res.RefInstret, status)
	}
	return t
}

// String renders the full report: summary line, per-cell table, and full
// detail for every failure.
func (r *Report) String() string {
	var b strings.Builder
	injected, recovered := 0, 0
	for _, res := range r.Results {
		injected += res.Injected
		recovered += res.Recovered
	}
	failures := r.Failures()
	fmt.Fprintf(&b, "fault campaign: seed %d, %d cells, %d faults injected, %d recovered, %d failures\n\n",
		r.Seed, len(r.Results), injected, recovered, len(failures))
	b.WriteString(r.Table().String())
	for _, res := range failures {
		fmt.Fprintf(&b, "\nFAIL %s (%s):\n", res.Key(), res.Buildset)
		if res.Divergence != nil {
			fmt.Fprintf(&b, "  %s\n", res.Divergence)
		}
		if res.Err != nil {
			fmt.Fprintf(&b, "  error: %v\n", res.Err)
		}
	}
	return b.String()
}
