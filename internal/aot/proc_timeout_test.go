package aot

import (
	"bufio"
	"errors"
	"os/exec"
	"testing"
	"time"
)

// These tests exercise the hard-deadline watchdog: a runner that wedges
// before or during a protocol exchange is killed (SIGTERM, escalating to
// SIGKILL) and the exchange reports a typed *TimeoutError instead of
// hanging the cell forever.

// TestSpawnDeadlineKillsSilentRunner: a "runner" that never writes its
// hello frame (cat blocks reading stdin) is killed at the spawn deadline
// and reported as a hello timeout.
func TestSpawnDeadlineKillsSilentRunner(t *testing.T) {
	bin, err := exec.LookPath("cat")
	if err != nil {
		t.Skip("no cat binary on PATH")
	}
	start := time.Now()
	_, err = SpawnWithDeadline(bin, nil, 100*time.Millisecond)
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if te.Op != "hello" {
		t.Errorf("TimeoutError.Op = %q, want hello", te.Op)
	}
	if te.Timeout != 100*time.Millisecond {
		t.Errorf("TimeoutError.Timeout = %v, want 100ms", te.Timeout)
	}
	// cat dies to SIGTERM immediately: no grace period should elapse.
	if elapsed > 2*time.Second {
		t.Errorf("spawn took %v; the deadline kill should unblock promptly", elapsed)
	}
}

// wedgedRunner starts sh running script with the protocol pipes wired up
// like Spawn does, returning a Runner the watchdog can kill.
func wedgedRunner(t *testing.T, script string, hard, grace time.Duration) *Runner {
	t.Helper()
	cmd := exec.Command("/bin/sh", "-c", script)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{cmd: cmd, stdin: stdin, stdout: bufio.NewReader(stdout),
		hardTimeout: hard, killGrace: grace}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.kill)
	return r
}

// TestWatchTermKillsCooperativeProcess: a busy-looping process that honors
// SIGTERM dies at the first escalation step; the blocked read unblocks and
// surfaces a *TimeoutError naming the operation.
func TestWatchTermKillsCooperativeProcess(t *testing.T) {
	r := wedgedRunner(t, "while :; do :; done", 100*time.Millisecond, 10*time.Second)
	start := time.Now()
	err := r.watch("run", func() error {
		_, ferr := r.readFrame()
		return ferr
	})
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	if te.Op != "run" {
		t.Errorf("TimeoutError.Op = %q, want run", te.Op)
	}
	if !r.broken {
		t.Error("a timed-out runner must be marked broken")
	}
	// SIGTERM killed it: well before the 10s SIGKILL grace.
	if elapsed > 5*time.Second {
		t.Errorf("exchange took %v; SIGTERM should have unblocked it at ~100ms", elapsed)
	}
}

// TestWatchEscalatesToSigkill: a process that traps (ignores) SIGTERM only
// dies to the SIGKILL escalation after the grace period — the watchdog's
// guarantee holds even against a runner that refuses to die politely.
func TestWatchEscalatesToSigkill(t *testing.T) {
	// The trap must be installed in the process holding the stdout pipe, and
	// the busy loop must use only shell builtins (a child process would
	// inherit the pipe and keep it open past the parent's death).
	r := wedgedRunner(t, "trap '' TERM; while :; do :; done",
		100*time.Millisecond, 300*time.Millisecond)
	start := time.Now()
	err := r.watch("run", func() error {
		_, ferr := r.readFrame()
		return ferr
	})
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("want *TimeoutError, got %v", err)
	}
	// The read can only have unblocked after the SIGKILL at deadline+grace:
	// surviving SIGTERM proves the escalation fired.
	if elapsed < 400*time.Millisecond {
		t.Errorf("exchange unblocked after %v, before the %v SIGKILL point — "+
			"the process should have survived SIGTERM", elapsed, 400*time.Millisecond)
	}
	if elapsed > 10*time.Second {
		t.Errorf("exchange took %v; SIGKILL should have unblocked it shortly after 400ms", elapsed)
	}
}

// TestWatchDisabledPassesThrough: deadline 0 leaves the exchange unbounded
// and error-transparent (the pre-watchdog behavior).
func TestWatchDisabledPassesThrough(t *testing.T) {
	r := &Runner{}
	sentinel := errors.New("sentinel")
	if err := r.watch("run", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("disabled watchdog should pass errors through, got %v", err)
	}
	if r.broken {
		t.Error("a non-timeout error under a disabled watchdog must not mark the runner broken")
	}
}

// TestWatchSuccessUnderDeadline: an exchange that completes in time is
// unaffected by the armed watchdog.
func TestWatchSuccessUnderDeadline(t *testing.T) {
	r := wedgedRunner(t, "sleep 5", 10*time.Second, time.Second)
	if err := r.watch("init", func() error { return nil }); err != nil {
		t.Errorf("fast exchange under deadline: %v", err)
	}
	if r.broken {
		t.Error("a successful exchange must not mark the runner broken")
	}
}
