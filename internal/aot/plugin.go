package aot

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"plugin"
	"sync"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/obs"
)

// The plugin transport loads the generated runner into the host process
// (go build -buildmode=plugin + plugin.Open) so Step/Block interfaces skip
// the pipe entirely: Init/Run become direct calls carrying the same frame
// payloads the subprocess protocol does, minus the length prefixes and the
// two process switches per exchange.
//
// Availability is a build-time property of the toolchain on PATH
// (-buildmode=plugin needs cgo and a supported GOOS/GOARCH, in practice
// linux and a few friends). Every unavailability — unsupported platform,
// cgo disabled, plugin.Open refusing the artifact — surfaces as a typed
// ErrNoPlugin so callers fall back to the subprocess transport without
// giving up the cell.

// ErrNoPlugin reports that the in-process plugin transport is not available
// here. Callers are expected to fall back to the subprocess protocol;
// errors.Is(err, ErrNoPlugin) identifies the condition through wrapping.
var ErrNoPlugin = errors.New("aot: plugin transport not available")

// BuildPlugin compiles the runner for sim's (spec, buildset) pair as a Go
// plugin, sharing Build's cache layout: the .so and its own manifest live
// next to the subprocess binary under the same source-keyed entry. A build
// failure of the plugin artifact (no cgo, unsupported platform) returns an
// ErrNoPlugin-wrapped error rather than a hard failure.
func BuildPlugin(sim *core.Sim, conv core.RunnerConv, cacheDir string, reg *obs.Registry) (*BuildResult, error) {
	tc, err := probeToolchain()
	if err != nil {
		return nil, err
	}
	src, err := sim.EmitRunner(conv)
	if err != nil {
		return nil, err
	}
	key := cacheKey(tc, src)
	entryDir := filepath.Join(cacheDir, key[:16])
	flKey := entryDir + "#plugin"

	buildMu.Lock()
	if fl, ok := buildInflight[flKey]; ok {
		buildMu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	buildInflight[flKey] = fl
	buildMu.Unlock()

	fl.res, fl.err = buildPluginLocked(sim, src, key, cacheDir, entryDir, tc, reg)
	buildMu.Lock()
	delete(buildInflight, flKey)
	buildMu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

func buildPluginLocked(sim *core.Sim, src, key, cacheDir, entryDir string, tc toolchain, reg *obs.Registry) (*BuildResult, error) {
	soPath := filepath.Join(entryDir, "runner.so")
	manPath := filepath.Join(entryDir, "plugin-manifest.json")

	if ok, corrupt := verifyCached(soPath, manPath, key, tc); ok {
		count(reg, "aot.plugin.cache.hit")
		return &BuildResult{BinPath: soPath, Key: key, Cached: true}, nil
	} else if corrupt {
		count(reg, "aot.plugin.cache.corrupt")
	}
	count(reg, "aot.plugin.cache.miss")

	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return nil, fmt.Errorf("aot: creating cache entry: %w", err)
	}
	tmp, err := os.MkdirTemp(cacheDir, "pluginbuild-*")
	if err != nil {
		return nil, fmt.Errorf("aot: creating build dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	// A unique module path per cache key: the plugin's lookup path and its
	// dynamic symbol prefix both derive from the main package's import path
	// at compile time, and plugin.Open refuses two plugins sharing a path —
	// so distinct (spec, buildset) runners must differ at the module level.
	// (Overriding -pluginpath at link time only renames the lookup path, not
	// the compiled symbols, which breaks dlsym.)
	files := map[string]string{
		"gen.go":     src,
		"harness.go": runnerHarness,
		"go.mod":     "module aotrunner_" + key[:16] + "\n\ngo 1.24\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			return nil, fmt.Errorf("aot: writing %s: %w", name, err)
		}
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		return nil, ErrNoToolchain
	}
	tmpSo := filepath.Join(tmp, "runner.so")
	// The cgo requirement is inherited from the environment on purpose:
	// under CGO_ENABLED=0 (or a host without a C toolchain) the build fails
	// here and degrades to the typed ErrNoPlugin fallback below.
	cmd := exec.Command(gobin, "build", "-buildmode=plugin", "-o", tmpSo, ".")
	cmd.Dir = tmp
	if out, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("%w: go build -buildmode=plugin (%s/%s) failed: %v\n%s",
			ErrNoPlugin, sim.Spec.Name, sim.BS.Name, err, out)
	}
	count(reg, "aot.plugin.build")

	soData, err := os.ReadFile(tmpSo)
	if err != nil {
		return nil, fmt.Errorf("aot: reading built plugin: %w", err)
	}
	man := newManifest(soData, key, tc, sim)
	if err := installArtifact(tmp, tmpSo, soPath, manPath, man); err != nil {
		return nil, err
	}
	return &BuildResult{BinPath: soPath, Key: key}, nil
}

// pluginExports are the symbols a runner plugin provides; builtin types
// only, so host and plugin share no packages.
type pluginExports struct {
	hello func() []byte
	init  func([]byte) string
	run   func([]byte) ([][]byte, string)
}

// PluginHandle is one loaded runner plugin. plugin.Open pins a .so for the
// process lifetime and the runner's machine state is package-global inside
// it, so a handle is a shared, serially-usable resource: Session acquires
// exclusive use, and handles are cached per path (LoadPlugin of one path
// returns one handle).
type PluginHandle struct {
	path  string
	hello Hello
	fns   pluginExports
	mu    sync.Mutex
}

var (
	pluginRegMu sync.Mutex
	pluginReg   = map[string]*PluginHandle{}
)

// LoadPlugin opens a runner plugin built by BuildPlugin and verifies its
// hello. Any failure to load or bind — unsupported platform, stale ABI,
// missing symbols — is reported wrapped in ErrNoPlugin so the caller can
// fall back to the subprocess transport.
func LoadPlugin(soPath string) (*PluginHandle, error) {
	pluginRegMu.Lock()
	defer pluginRegMu.Unlock()
	if h, ok := pluginReg[soPath]; ok {
		return h, nil
	}
	pl, err := plugin.Open(soPath)
	if err != nil {
		return nil, fmt.Errorf("%w: opening %s: %v", ErrNoPlugin, soPath, err)
	}
	var fns pluginExports
	lookups := []struct {
		name string
		bind func(plugin.Symbol) bool
	}{
		{"PluginHello", func(s plugin.Symbol) bool { f, ok := s.(func() []byte); fns.hello = f; return ok }},
		{"PluginInit", func(s plugin.Symbol) bool { f, ok := s.(func([]byte) string); fns.init = f; return ok }},
		{"PluginRun", func(s plugin.Symbol) bool { f, ok := s.(func([]byte) ([][]byte, string)); fns.run = f; return ok }},
	}
	for _, l := range lookups {
		sym, err := pl.Lookup(l.name)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrNoPlugin, soPath, err)
		}
		if !l.bind(sym) {
			return nil, fmt.Errorf("%w: %s: symbol %s has wrong type %T", ErrNoPlugin, soPath, l.name, sym)
		}
	}
	helloFrame := fns.hello()
	hello, err := decodeHelloFrame(helloFrame)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoPlugin, soPath, err)
	}
	h := &PluginHandle{path: soPath, hello: *hello, fns: fns}
	pluginReg[soPath] = h
	return h, nil
}

// Session acquires exclusive use of the plugin's machine state and returns
// a Client over it. Close releases the handle for the next session; the
// plugin itself stays loaded (the platform offers no unload).
func (h *PluginHandle) Session() *PluginSession {
	h.mu.Lock()
	return &PluginSession{h: h}
}

// PluginSession is one exclusive Init/Run session against a loaded runner
// plugin. It implements Client with the same observable semantics as a
// fresh subprocess: Init hard-resets the in-plugin machine.
type PluginSession struct {
	h      *PluginHandle
	closed bool
}

func (s *PluginSession) Hello() Hello { return s.h.hello }

func (s *PluginSession) Init(prog *asm.Program, stdin []byte) error {
	if s.closed {
		return fmt.Errorf("aot: plugin session closed")
	}
	if errs := s.h.fns.init(encodeInitPayload(prog, stdin)[1:]); errs != "" {
		return fmt.Errorf("aot: plugin init: %s", errs)
	}
	return nil
}

func (s *PluginSession) Run(maxInstr uint64, wantRecs bool, resultAddr uint64) (*RunResult, error) {
	if s.closed {
		return nil, fmt.Errorf("aot: plugin session closed")
	}
	frames, errs := s.h.fns.run(encodeRunPayload(maxInstr, wantRecs, resultAddr)[1:])
	if errs != "" {
		return nil, fmt.Errorf("aot: plugin run: %s", errs)
	}
	res := &RunResult{}
	sawFinal := false
	for _, frame := range frames {
		if len(frame) == 0 {
			return nil, perr("stream", "empty plugin frame")
		}
		if sawFinal {
			return nil, perr("stream", "frame after final")
		}
		switch frame[0] {
		case 'R':
			var err error
			res.Records, err = decodeRecordsFrame(frame, len(s.h.hello.VisNames), res.Records)
			if err != nil {
				return nil, err
			}
		case 'F':
			fin, err := decodeFinalFrame(frame)
			if err != nil {
				return nil, err
			}
			res.FinalState = *fin
			sawFinal = true
		default:
			return nil, perr("stream", "unexpected frame type %#x", frame[0])
		}
	}
	if !sawFinal {
		return nil, perr("stream", "plugin run produced no final frame")
	}
	return res, nil
}

func (s *PluginSession) Close() error {
	if !s.closed {
		s.closed = true
		s.h.mu.Unlock()
	}
	return nil
}
