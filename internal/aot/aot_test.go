package aot

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/obs"
)

// sharedCacheDir is one compile cache for the whole test binary, so the
// expensive go-build step runs once per (ISA, buildset) across tests.
var (
	cacheOnce      sync.Once
	sharedCacheDir string
)

func testCacheDir(t *testing.T) string {
	t.Helper()
	cacheOnce.Do(func() {
		dir, err := os.MkdirTemp("", "aot-cache-*")
		if err == nil {
			sharedCacheDir = dir
		}
	})
	if sharedCacheDir == "" {
		t.Fatal("creating shared cache dir failed")
	}
	return sharedCacheDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedCacheDir != "" {
		os.RemoveAll(sharedCacheDir)
	}
	os.Exit(code)
}

// requireToolchain skips with a reason when runner binaries cannot be
// built here.
func requireToolchain(t *testing.T) {
	t.Helper()
	if _, err := probeToolchain(); errors.Is(err, ErrNoToolchain) {
		t.Skip("skipping: go toolchain not available on PATH")
	} else if err != nil {
		t.Fatal(err)
	}
}

func loadSim(t *testing.T, isaName, buildset string) (*isa.ISA, *core.Sim) {
	t.Helper()
	i, err := isa.Load(isaName)
	if err != nil {
		t.Fatalf("loading %s: %v", isaName, err)
	}
	sim, err := core.Synthesize(i.Spec, buildset, core.Options{})
	if err != nil {
		t.Fatalf("synthesizing %s/%s: %v", isaName, buildset, err)
	}
	return i, sim
}

func buildRunner(t *testing.T, i *isa.ISA, sim *core.Sim, reg *obs.Registry) *BuildResult {
	t.Helper()
	requireToolchain(t)
	res, err := Build(sim, RunnerConvFor(i.Conv), testCacheDir(t), reg)
	if err != nil {
		t.Fatalf("building runner for %s/%s: %v", sim.Spec.Name, sim.BS.Name, err)
	}
	return res
}

func kernelProgram(t *testing.T, i *isa.ISA, name string, n int) *asm.Program {
	t.Helper()
	k := kernels.ByName(name)
	if k == nil {
		t.Fatalf("no kernel %q", name)
	}
	prog, err := kernels.BuildProgram(i, k.Build(n))
	if err != nil {
		t.Fatalf("building %s for %s: %v", name, i.Name, err)
	}
	return prog
}

// TestDiffKernelAcrossModes is the package smoke test: one kernel through
// one buildset of each interface mode on each ISA, interpreter vs. runner,
// zero divergences.
func TestDiffKernelAcrossModes(t *testing.T) {
	for _, isaName := range isa.Names() {
		for _, buildset := range []string{"one_decode", "block_all", "step_all"} {
			t.Run(isaName+"/"+buildset, func(t *testing.T) {
				i, sim := loadSim(t, isaName, buildset)
				b := buildRunner(t, i, sim, nil)
				prog := kernelProgram(t, i, "fib_iter", 12)
				d, err := DiffProgram(sim, i, prog, b.BinPath, DiffConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if d != nil {
					t.Fatalf("divergence: %v", d)
				}
			})
		}
	}
}

// TestRunnerDeterministicAcrossRuns checks that two runs of one program in
// one runner process (the warmup + measured schedule the bench path uses)
// report identical instret, profile-reconstructed work, and result word.
func TestRunnerDeterministicAcrossRuns(t *testing.T) {
	i, sim := loadSim(t, "alpha64", "one_decode")
	b := buildRunner(t, i, sim, nil)
	prog := kernelProgram(t, i, "crc32", 64)
	r, err := Spawn(b.BinPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Init(prog, nil); err != nil {
		t.Fatal(err)
	}
	resultAddr := prog.Symbols["result"]
	var prev *RunResult
	for run := 0; run < 3; run++ {
		res, err := r.Run(1<<22, false, resultAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatalf("run %d did not halt (fault %d at pc %#x)", run, res.Fault, res.PC)
		}
		w, err := ComputeWork(sim, res)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			pw, _ := ComputeWork(sim, prev)
			if res.Instret != prev.Instret || w != pw || res.ResultWord != prev.ResultWord {
				t.Fatalf("run %d not deterministic: instret %d/%d work %d/%d result %#x/%#x",
					run, res.Instret, prev.Instret, w, pw, res.ResultWord, prev.ResultWord)
			}
		}
		prev = res
	}
}

// TestBuildCacheReuse: an identical second build must reuse the cached
// binary and say so through the obs counters.
func TestBuildCacheReuse(t *testing.T) {
	requireToolchain(t)
	i, sim := loadSim(t, "alpha64", "one_min")
	dir := t.TempDir()
	reg := obs.NewRegistry()
	first, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first build reported a cache hit in an empty cache")
	}
	second, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.BinPath != first.BinPath {
		t.Fatalf("second build not served from cache: %+v", second)
	}
	if got := reg.Counter("aot.cache.hit").Load(); got != 1 {
		t.Fatalf("aot.cache.hit = %d, want 1", got)
	}
	if got := reg.Counter("aot.build").Load(); got != 1 {
		t.Fatalf("aot.build = %d, want 1", got)
	}
}

// TestBuildCacheCorruption: a flipped byte in the cached binary must be
// detected by the manifest hash and trigger a rebuild, never silent reuse.
func TestBuildCacheCorruption(t *testing.T) {
	requireToolchain(t)
	i, sim := loadSim(t, "alpha64", "one_min")
	dir := t.TempDir()
	reg := obs.NewRegistry()
	first, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(first.BinPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(first.BinPath, data, 0o755); err != nil {
		t.Fatal(err)
	}
	second, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("corrupted binary was served from cache")
	}
	if got := reg.Counter("aot.cache.corrupt").Load(); got != 1 {
		t.Fatalf("aot.cache.corrupt = %d, want 1", got)
	}
	if got := reg.Counter("aot.build").Load(); got != 2 {
		t.Fatalf("aot.build = %d, want 2", got)
	}
	// The rebuilt artifact must verify again.
	third, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("rebuilt binary did not verify on the next lookup")
	}
}

// TestBuildCacheSpoofedManifest: a manifest claiming a foreign GOOS/GOARCH
// for our cache key must be treated as corrupt. The key itself covers the
// platform, so such an entry can only be damage or tampering (e.g. a shared
// NFS cache edited by a foreign worker) — the binary is rebuilt, never
// exec'd on the strength of the spoofed claim.
func TestBuildCacheSpoofedManifest(t *testing.T) {
	requireToolchain(t)
	i, sim := loadSim(t, "alpha64", "one_min")
	dir := t.TempDir()
	reg := obs.NewRegistry()
	first, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(filepath.Dir(first.BinPath), "manifest.json")
	manData, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		t.Fatal(err)
	}
	man.GoOS, man.GoArch = "plan9", "mips64"
	spoofed, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, spoofed, 0o644); err != nil {
		t.Fatal(err)
	}
	second, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("binary under a foreign-platform manifest was served from cache")
	}
	if got := reg.Counter("aot.cache.corrupt").Load(); got != 1 {
		t.Fatalf("aot.cache.corrupt = %d, want 1", got)
	}
	if got := reg.Counter("aot.build").Load(); got != 2 {
		t.Fatalf("aot.build = %d, want 2", got)
	}
	third, err := Build(sim, RunnerConvFor(i.Conv), dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("rebuilt entry did not verify on the next lookup")
	}
}

// TestBuildCacheConcurrent: racing cells on one cache entry build exactly
// once (run under -race in CI).
func TestBuildCacheConcurrent(t *testing.T) {
	requireToolchain(t)
	i, sim := loadSim(t, "alpha64", "one_min")
	dir := t.TempDir()
	reg := obs.NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	results := make([]*BuildResult, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = Build(sim, RunnerConvFor(i.Conv), dir, reg)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].BinPath != results[0].BinPath {
			t.Fatalf("worker %d got different binary path", w)
		}
	}
	if got := reg.Counter("aot.build").Load(); got != 1 {
		t.Fatalf("aot.build = %d, want exactly 1 for %d racing builds", got, workers)
	}
}

// TestComputeWorkRejectsUndecodableProfile: a profile entry that does not
// decode must be an error, not a bogus total.
func TestComputeWorkRejectsUndecodableProfile(t *testing.T) {
	_, sim := loadSim(t, "alpha64", "one_min")
	bits, found := uint32(0), false
	for probe := uint32(0); probe < 1<<16 && !found; probe++ {
		if _, ok := sim.DynamicUnitWork(probe << 16); !ok {
			bits, found = probe<<16, true
		}
	}
	if !found {
		t.Skip("no undecodable encoding found in probe range")
	}
	res := &RunResult{}
	res.Profile = []ProfEntry{{PC: 0x10000, Bits: bits, Count: 1}}
	if _, err := ComputeWork(sim, res); err == nil {
		t.Fatal("ComputeWork accepted an undecodable profile entry")
	}
}

// ---- protocol decoder hardening ----

func validHello() []byte {
	p := []byte{'H'}
	p = append(p, 7, 0)
	p = append(p, "alpha64"...)
	p = append(p, 7, 0)
	p = append(p, "one_all"...)
	p = binary.LittleEndian.AppendUint32(p, 2)
	p = append(p, 4, 0)
	p = append(p, "alua"...)
	p = append(p, 5, 0)
	p = append(p, "alub\x5f"...)
	p = binary.LittleEndian.AppendUint32(p, 1)
	p = append(p, 0, 1)
	return p
}

func validRecords(nVis int) []byte {
	p := []byte{'R'}
	p = binary.LittleEndian.AppendUint32(p, 2)
	for rec := 0; rec < 2; rec++ {
		var hdr [32]byte
		binary.LittleEndian.PutUint64(hdr[0:], 0x10000+uint64(rec)*4)
		binary.LittleEndian.PutUint32(hdr[24:], 0xdeadbeef)
		p = append(p, hdr[:]...)
		for v := 0; v < nVis; v++ {
			p = binary.LittleEndian.AppendUint64(p, uint64(v))
		}
	}
	return p
}

func validFinal() []byte {
	p := []byte{'F', 1}
	p = binary.LittleEndian.AppendUint64(p, 42)          // exit code
	p = append(p, 3, 0)                                  // fault, kind
	p = binary.LittleEndian.AppendUint64(p, 0x10040)     // pc
	p = binary.LittleEndian.AppendUint64(p, 1234)        // instret
	p = binary.LittleEndian.AppendUint64(p, 99999)       // elapsed
	p = binary.LittleEndian.AppendUint32(p, 0xabad1dea)  // result
	p = binary.LittleEndian.AppendUint32(p, 1)           // spaces
	p = binary.LittleEndian.AppendUint32(p, 2)           // count
	p = binary.LittleEndian.AppendUint64(p, 7)
	p = binary.LittleEndian.AppendUint64(p, 8)
	p = binary.LittleEndian.AppendUint32(p, 3) // stdout
	p = append(p, "ok\n"...)
	p = binary.LittleEndian.AppendUint32(p, 1) // profile
	p = binary.LittleEndian.AppendUint64(p, 0x10000)
	p = binary.LittleEndian.AppendUint32(p, 0x12345678)
	p = binary.LittleEndian.AppendUint64(p, 617)
	return p
}

// TestDecodeValidFrames pins the golden paths the fuzzer mutates from.
func TestDecodeValidFrames(t *testing.T) {
	h, err := decodeHelloFrame(validHello())
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec != "alpha64" || h.Buildset != "one_all" || len(h.VisNames) != 2 || !h.EmitRecs {
		t.Fatalf("hello decoded wrong: %+v", h)
	}
	recs, err := decodeRecordsFrame(validRecords(2), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].PC != 0x10004 || recs[0].InstrBits != 0xdeadbeef {
		t.Fatalf("records decoded wrong: %+v", recs)
	}
	f, err := decodeFinalFrame(validFinal())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Halted || f.ExitCode != 42 || f.Instret != 1234 || len(f.Spaces) != 1 ||
		string(f.Stdout) != "ok\n" || len(f.Profile) != 1 || f.Profile[0].Count != 617 {
		t.Fatalf("final decoded wrong: %+v", f)
	}
}

// FuzzRunnerProtocol feeds corrupted, truncated, and oversized frames to
// all three protocol decoders. Malformed input must produce a typed
// *ProtocolError — never a panic, hang, or large-allocation blowup.
func FuzzRunnerProtocol(f *testing.F) {
	f.Add(validHello(), 2)
	f.Add(validRecords(2), 2)
	f.Add(validRecords(0), 0)
	f.Add(validFinal(), 1)
	f.Add([]byte{'H'}, 0)
	f.Add([]byte{'R', 0xff, 0xff, 0xff, 0xff}, 3)
	f.Add([]byte{'F', 1, 2, 3}, 0)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, nVis int) {
		if _, err := decodeHelloFrame(data); err != nil {
			requireProtocolError(t, err)
		}
		if _, err := decodeRecordsFrame(data, nVis%8, nil); err != nil {
			requireProtocolError(t, err)
		}
		if _, err := decodeFinalFrame(data); err != nil {
			requireProtocolError(t, err)
		}
	})
}

func requireProtocolError(t *testing.T, err error) {
	t.Helper()
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("decoder returned untyped error %T: %v", err, err)
	}
}

// FuzzBatchedRecordFrames targets the batched 'R' frame path specifically:
// the runner coalesces up to pipe-buffer-sized runs of records into one
// frame with a single count prefix, so the decoder must round-trip
// arbitrary batch shapes exactly, honor append semantics into a caller
// slice with independent per-record value storage, and reject truncations
// and count lies with a typed *ProtocolError — never a panic or a
// count-driven over-allocation.
func FuzzBatchedRecordFrames(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint8(0))
	f.Add(uint16(1), uint8(3), uint8(1))
	f.Add(uint16(257), uint8(1), uint8(7))
	f.Add(uint16(1000), uint8(4), uint8(31))
	f.Add(uint16(9), uint8(7), uint8(255))
	f.Fuzz(func(t *testing.T, nRecs uint16, visRaw, salt uint8) {
		nVis := int(visRaw % 8)
		frame := []byte{'R'}
		frame = binary.LittleEndian.AppendUint32(frame, uint32(nRecs))
		for i := 0; i < int(nRecs); i++ {
			var hdr [32]byte
			binary.LittleEndian.PutUint64(hdr[0:], uint64(i)*4+uint64(salt))
			binary.LittleEndian.PutUint64(hdr[8:], uint64(i)*4)
			binary.LittleEndian.PutUint64(hdr[16:], uint64(i)*4+4)
			binary.LittleEndian.PutUint32(hdr[24:], uint32(i)^uint32(salt)<<8)
			binary.LittleEndian.PutUint16(hdr[28:], uint16(i))
			frame = append(frame, hdr[:]...)
			for v := 0; v < nVis; v++ {
				frame = binary.LittleEndian.AppendUint64(frame, uint64(i)*8+uint64(v))
			}
		}

		recs, err := decodeRecordsFrame(frame, nVis, nil)
		if err != nil {
			t.Fatalf("well-formed batch rejected: %v", err)
		}
		if len(recs) != int(nRecs) {
			t.Fatalf("decoded %d records, want %d", len(recs), nRecs)
		}
		for i, r := range recs {
			if r.PC != uint64(i)*4+uint64(salt) || r.InstrID != uint16(i) {
				t.Fatalf("record %d decoded wrong: %+v", i, r)
			}
			for v := 0; v < nVis; v++ {
				if r.Vals[v] != uint64(i)*8+uint64(v) {
					t.Fatalf("record %d value %d decoded wrong: %d", i, v, r.Vals[v])
				}
			}
		}

		// Append semantics: decoding into an existing slice extends it, and
		// the flat value storage must still hand out full-capacity subslices
		// so growing one record's values cannot clobber its neighbor.
		both, err := decodeRecordsFrame(frame, nVis, recs)
		if err != nil {
			t.Fatalf("append decode failed: %v", err)
		}
		if len(both) != 2*int(nRecs) {
			t.Fatalf("append decode produced %d records, want %d", len(both), 2*int(nRecs))
		}
		if nVis > 0 && nRecs >= 2 {
			both[0].Vals = append(both[0].Vals, 0xdead)
			if both[1].Vals[0] != 8 {
				t.Fatal("growing one record's values clobbered its neighbor")
			}
		}

		// Every strict truncation must fail typed: the count prefix then
		// disagrees with the payload length.
		for _, cut := range []int{0, 1, 3, len(frame) / 2, len(frame) - 1} {
			if cut >= len(frame) {
				continue
			}
			_, err := decodeRecordsFrame(frame[:cut], nVis, nil)
			if err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", cut, len(frame))
			}
			requireProtocolError(t, err)
		}
		// So must trailing garbage and a count that lies upward.
		if _, err := decodeRecordsFrame(append(frame[:len(frame):len(frame)], salt), nVis, nil); err == nil {
			t.Fatal("trailing garbage accepted")
		} else {
			requireProtocolError(t, err)
		}
		lying := append([]byte(nil), frame...)
		binary.LittleEndian.PutUint32(lying[1:], uint32(nRecs)+1)
		if _, err := decodeRecordsFrame(lying, nVis, nil); err == nil {
			t.Fatal("count lying past the payload accepted")
		} else {
			requireProtocolError(t, err)
		}
	})
}

// TestCacheDirLayout documents the on-disk contract: one directory per
// source hash prefix holding the runner binary and its manifest.
func TestCacheDirLayout(t *testing.T) {
	requireToolchain(t)
	i, sim := loadSim(t, "alpha64", "one_min")
	dir := t.TempDir()
	res, err := Build(sim, RunnerConvFor(i.Conv), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantBin := filepath.Join(dir, res.Key[:16], "runner")
	if res.BinPath != wantBin {
		t.Fatalf("binary at %s, want %s", res.BinPath, wantBin)
	}
	if _, err := os.Stat(filepath.Join(dir, res.Key[:16], "manifest.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
}
