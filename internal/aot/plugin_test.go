package aot

import (
	"errors"
	"reflect"
	"testing"

	"singlespec/internal/obs"
)

// requirePlugin runs a plugin build, skipping with the typed reason when
// this host cannot build Go plugins. Either way it asserts the
// unavailability contract: failures must wrap ErrNoPlugin.
func requirePlugin(t *testing.T, build func() (*BuildResult, error)) *BuildResult {
	t.Helper()
	res, err := build()
	if err != nil {
		if errors.Is(err, ErrNoPlugin) {
			t.Skipf("skipping: %v", err)
		}
		t.Fatal(err)
	}
	return res
}

// TestPluginTransportParity runs one kernel through the subprocess runner
// and the in-process plugin and requires identical observable results:
// final state, record stream, and reconstructed work.
func TestPluginTransportParity(t *testing.T) {
	for _, buildset := range []string{"block_min", "step_all"} {
		t.Run(buildset, func(t *testing.T) {
			i, sim := loadSim(t, "alpha64", buildset)
			requireToolchain(t)
			dir := testCacheDir(t)
			conv := RunnerConvFor(i.Conv)
			prog := kernelProgram(t, i, "fib_iter", 12)
			resultAddr := prog.Symbols["result"]

			pb := requirePlugin(t, func() (*BuildResult, error) {
				return BuildPlugin(sim, conv, dir, nil)
			})
			ph, err := LoadPlugin(pb.BinPath)
			if err != nil {
				if errors.Is(err, ErrNoPlugin) {
					t.Skipf("skipping: %v", err)
				}
				t.Fatal(err)
			}

			bin, err := Build(sim, conv, dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := Spawn(bin.BinPath, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()

			ps := ph.Session()
			defer ps.Close()

			if !reflect.DeepEqual(ps.Hello(), sub.Hello()) {
				t.Fatalf("hello mismatch: plugin %+v, subprocess %+v", ps.Hello(), sub.Hello())
			}
			var results []*RunResult
			for _, c := range []Client{ps, sub} {
				if err := c.Init(prog, nil); err != nil {
					t.Fatal(err)
				}
				res, err := c.Run(1<<20, true, resultAddr)
				if err != nil {
					t.Fatal(err)
				}
				results = append(results, res)
			}
			pr, sr := results[0], results[1]
			// ElapsedNs is wall clock and legitimately differs.
			pr.ElapsedNs, sr.ElapsedNs = 0, 0
			if !reflect.DeepEqual(pr.FinalState, sr.FinalState) {
				t.Fatalf("final state diverges:\nplugin:     %+v\nsubprocess: %+v", pr.FinalState, sr.FinalState)
			}
			if len(pr.Records) != len(sr.Records) {
				t.Fatalf("record count diverges: plugin %d, subprocess %d", len(pr.Records), len(sr.Records))
			}
			for ri := range pr.Records {
				if !reflect.DeepEqual(pr.Records[ri], sr.Records[ri]) {
					t.Fatalf("record %d diverges:\nplugin:     %+v\nsubprocess: %+v", ri, pr.Records[ri], sr.Records[ri])
				}
			}
			pw, err := ComputeWork(sim, pr)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := ComputeWork(sim, sr)
			if err != nil {
				t.Fatal(err)
			}
			if pw != sw {
				t.Fatalf("work diverges: plugin %d, subprocess %d", pw, sw)
			}
		})
	}
}

// TestPluginSessionReuse checks the hard-reset contract: successive
// sessions on one loaded plugin (which shares package-global machine state)
// reproduce identical results from Init onward.
func TestPluginSessionReuse(t *testing.T) {
	i, sim := loadSim(t, "ppc32", "one_decode")
	requireToolchain(t)
	dir := testCacheDir(t)
	conv := RunnerConvFor(i.Conv)
	pb := requirePlugin(t, func() (*BuildResult, error) {
		return BuildPlugin(sim, conv, dir, nil)
	})
	ph, err := LoadPlugin(pb.BinPath)
	if err != nil {
		if errors.Is(err, ErrNoPlugin) {
			t.Skipf("skipping: %v", err)
		}
		t.Fatal(err)
	}
	prog := kernelProgram(t, i, "crc32", 64)
	resultAddr := prog.Symbols["result"]
	var prev *RunResult
	for session := 0; session < 3; session++ {
		s := ph.Session()
		if err := s.Init(prog, nil); err != nil {
			s.Close()
			t.Fatal(err)
		}
		res, err := s.Run(1<<22, false, resultAddr)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted {
			t.Fatalf("session %d did not halt (fault %d at pc %#x)", session, res.Fault, res.PC)
		}
		if prev != nil {
			if res.Instret != prev.Instret || res.ResultWord != prev.ResultWord ||
				!reflect.DeepEqual(res.Profile, prev.Profile) {
				t.Fatalf("session %d diverged from session %d", session, session-1)
			}
		}
		prev = res
	}
}

// TestLoadPluginMissingTyped pins the fallback contract: a load failure is
// always identifiable as ErrNoPlugin through wrapping, never a bare error
// the caller would have to string-match.
func TestLoadPluginMissingTyped(t *testing.T) {
	_, err := LoadPlugin(t.TempDir() + "/no-such-runner.so")
	if err == nil {
		t.Fatal("LoadPlugin of a missing artifact succeeded")
	}
	if !errors.Is(err, ErrNoPlugin) {
		t.Fatalf("load failure is not ErrNoPlugin: %v", err)
	}
}

// TestPluginBuildCacheReuse: the plugin artifact caches like the subprocess
// binary, under its own counters and manifest.
func TestPluginBuildCacheReuse(t *testing.T) {
	i, sim := loadSim(t, "alpha64", "one_min")
	requireToolchain(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	conv := RunnerConvFor(i.Conv)
	first, err := BuildPlugin(sim, conv, dir, reg)
	if err != nil {
		if errors.Is(err, ErrNoPlugin) {
			t.Skipf("skipping: %v", err)
		}
		t.Fatal(err)
	}
	second, err := BuildPlugin(sim, conv, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.BinPath != first.BinPath {
		t.Fatalf("second plugin build not served from cache: %+v", second)
	}
	if got := reg.Counter("aot.plugin.cache.hit").Load(); got != 1 {
		t.Fatalf("aot.plugin.cache.hit = %d, want 1", got)
	}
	if got := reg.Counter("aot.plugin.build").Load(); got != 1 {
		t.Fatalf("aot.plugin.build = %d, want 1", got)
	}
}
