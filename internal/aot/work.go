package aot

import (
	"fmt"

	"singlespec/internal/core"
	"singlespec/internal/lis"
)

// ComputeWork reconstructs the interpreter's deterministic work-unit total
// for one runner run from its (pc, bits) execution profile and final fault
// kind. The formulas are the closure engine's own accounting, read through
// the core workmodel accessors, so the metric has exactly one definition:
//
//   One   decoded attempt: translated-unit work + publish
//         (NoTranslate ablation: dynamic-unit work + publish)
//   Block decoded attempt: translated-unit work, + publish only when the
//         buildset emits per-instruction records
//   Step  decoded attempt: (dynamic-unit work - 2) + (2E-1) publishes —
//         E per-entrypoint publishes plus E-1 record imports, where the
//         -2 drops the per-unit dispatch charge Step never pays
//   Final fetch-fault/undecodable attempt: fault-unit work in place of the
//         unit work, same shape otherwise (Block's dynamic fallback always
//         publishes, even below record-emitting detail)
//
// A final attempt that decoded (e.g. the exit syscall, or a mid-execution
// memory fault) is already in the profile and charged as decoded.
func ComputeWork(sim *core.Sim, res *RunResult) (uint64, error) {
	step := len(sim.BS.Entrypoints) > 1
	block := sim.BS.Mode == lis.ModeBlock
	e := uint64(len(sim.BS.Entrypoints))
	pub := sim.PubWork()
	stepPub := (2*e - 1) * pub

	type unitKey struct {
		pc   uint64
		bits uint32
	}
	cache := make(map[unitKey]uint64, len(res.Profile))
	var work uint64
	for _, pe := range res.Profile {
		uw, ok := cache[unitKey{pe.PC, pe.Bits}]
		if !ok {
			switch {
			case step:
				dw, decOK := sim.DynamicUnitWork(pe.Bits)
				if !decOK {
					return 0, fmt.Errorf("aot: profile entry pc %#x bits %#x does not decode", pe.PC, pe.Bits)
				}
				uw = (dw - 2) + stepPub
			case block:
				tw, decOK := sim.TranslatedUnitWork(pe.PC, pe.Bits)
				if !decOK {
					return 0, fmt.Errorf("aot: profile entry pc %#x bits %#x does not decode", pe.PC, pe.Bits)
				}
				uw = tw
				if sim.EmitsRecords() {
					uw += pub
				}
			case sim.Opts.NoTranslate:
				dw, decOK := sim.DynamicUnitWork(pe.Bits)
				if !decOK {
					return 0, fmt.Errorf("aot: profile entry pc %#x bits %#x does not decode", pe.PC, pe.Bits)
				}
				uw = dw + pub
			default:
				tw, decOK := sim.TranslatedUnitWork(pe.PC, pe.Bits)
				if !decOK {
					return 0, fmt.Errorf("aot: profile entry pc %#x bits %#x does not decode", pe.PC, pe.Bits)
				}
				uw = tw + pub
			}
			cache[unitKey{pe.PC, pe.Bits}] = uw
		}
		work += pe.Count * uw
	}
	switch res.FaultKind {
	case 1, 2:
		fw := sim.FaultUnitWork()
		if step {
			work += (fw - 2) + stepPub
		} else {
			work += fw + pub
		}
	}
	return work, nil
}
