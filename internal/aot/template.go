package aot

// runnerHarness is the static half of a generated runner binary. It is
// compiled as package main next to the source EmitRunner produces for one
// (spec, buildset) pair, and supplies everything the generated instruction
// functions reference: the paged memory model (byte-for-byte the semantics
// of internal/mach), the register spaces, the OS emulation of
// internal/sysemu, the pure-builtin helpers of lis.EvalPureBuiltin, the
// interface drivers (One/Block per-call and Step per-entrypoint, mirroring
// core.Exec), and the length-prefixed frame protocol the host speaks.
//
// The driver loops are transcriptions of the closure engine's observable
// semantics: fault-before-nullify ordering and exception diversion live in
// the generated functions; fetch/decode/commit ordering, frame staleness
// (One/Block never clear field storage between instructions; Step clears
// everything at entrypoint 0 and hidden fields at later entrypoints), and
// the no-retire-on-fault rule live here. Work units are not counted in the
// runner: the host reconstructs them from the (pc, bits) execution profile
// via the interpreter's own accounting (core workmodel accessors), keeping
// one source of truth for the metric.
const runnerHarness = `package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"time"
)

// ---- memory (mirrors internal/mach/mem.go) ----

const pageBits = 16
const pageSize = 1 << pageBits
const nullPage = 4096

// mpage carries the code mark next to the data so the store path can bump
// the code epoch without a second map probe (mach.Memory keeps the same
// page-local flag).
type mpage struct {
	data [pageSize]byte
	code bool
}

var (
	memPages = map[uint64]*mpage{}
	lastPN   = ^uint64(0)
	lastPg   *mpage
)

func pageFor(addr uint64) *mpage {
	pn := addr >> pageBits
	if pn == lastPN {
		return lastPg
	}
	p := memPages[pn]
	if p == nil {
		p = new(mpage)
		memPages[pn] = p
	}
	lastPN, lastPg = pn, p
	return p
}

func memGet(b []byte) uint64 {
	var v uint64
	if gBigEndian {
		for i := 0; i < len(b); i++ {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for i := len(b) - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

func memPut(b []byte, v uint64) {
	if gBigEndian {
		for i := len(b) - 1; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := 0; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

func memLoad(addr uint64, size int) (uint64, uint8) {
	if addr < nullPage {
		return 0, 1
	}
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := pageFor(addr)
		return memGet(p.data[off : off+uint64(size)]), 0
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		buf[i] = pageFor(a).data[a&(pageSize-1)]
	}
	return memGet(buf[:size]), 0
}

func memStore(addr, val uint64, size int) uint8 {
	if addr < nullPage {
		return 1
	}
	off := addr & (pageSize - 1)
	if off+uint64(size) <= pageSize {
		p := pageFor(addr)
		if p.code {
			codeEpoch++
		}
		memPut(p.data[off:off+uint64(size)], val)
		return 0
	}
	var buf [8]byte
	memPut(buf[:size], val)
	bumped := false
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		p := pageFor(a)
		if p.code && !bumped {
			codeEpoch++
			bumped = true
		}
		p.data[a&(pageSize-1)] = buf[i]
	}
	return 0
}

// memWriteBytes and memReadBytes bypass the null-page check, like the
// loader/emulator paths mach.Memory.WriteBytes/ReadBytes serve. Writes into
// code-marked pages bump the epoch like stores do (the interpreter's
// syscall-read path invalidates translations the same way).
func memWriteBytes(addr uint64, data []byte) {
	bumped := false
	for len(data) > 0 {
		off := addr & (pageSize - 1)
		n := uint64(pageSize) - off
		if uint64(len(data)) < n {
			n = uint64(len(data))
		}
		p := pageFor(addr)
		if p.code && !bumped {
			codeEpoch++
			bumped = true
		}
		copy(p.data[off:off+n], data[:n])
		addr += n
		data = data[n:]
	}
}

func memReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint64(i)
		out[i] = pageFor(a).data[a&(pageSize-1)]
	}
	return out
}

// ---- register spaces ----

var regs [][]uint64

func spRead(sp, i int) uint64 {
	if i == gSpaceZero[sp] {
		return 0
	}
	return regs[sp][i]
}

func spWrite(sp, i int, v uint64) {
	if i == gSpaceZero[sp] {
		return
	}
	regs[sp][i] = v
}

// ---- machine state ----

var (
	pc        uint64
	instret   uint64
	halted    bool
	exitCode  int64
	faultKind uint8 // final-attempt kind: 0 decoded, 1 fetch fault, 2 undecodable
)

// ---- OS emulation (mirrors internal/sysemu) ----

var (
	brk      uint64 = gHeapBase
	ticks    uint64
	stdinBuf []byte
	stdout   []byte
)

func doSyscall() {
	num := int(spRead(0, gConvSyscallNum))
	switch num {
	case 1: // exit
		halted = true
		exitCode = int64(spRead(0, gConvArgs[0]))
		// No return-value write: the program is gone.
	case 2: // write
		var ret uint64
		buf := spRead(0, gConvArgs[1])
		n := spRead(0, gConvArgs[2])
		if n > 1<<20 {
			ret = ^uint64(0)
		} else {
			stdout = append(stdout, memReadBytes(buf, int(n))...)
			ret = n
		}
		spWrite(0, gConvRet, ret)
	case 3: // read
		buf := spRead(0, gConvArgs[1])
		n := int(spRead(0, gConvArgs[2]))
		if n > len(stdinBuf) {
			n = len(stdinBuf)
		}
		if n > 0 {
			memWriteBytes(buf, stdinBuf[:n])
			stdinBuf = stdinBuf[n:]
		}
		spWrite(0, gConvRet, uint64(n))
	case 4: // brk
		if want := spRead(0, gConvArgs[0]); want != 0 {
			brk = want
		}
		spWrite(0, gConvRet, brk)
	case 5: // time
		ticks++
		spWrite(0, gConvRet, ticks)
	default:
		spWrite(0, gConvRet, ^uint64(0))
	}
	if halted {
		diFault = 3
	}
}

func doHalt(code uint64) {
	halted = true
	exitCode = int64(code)
	diFault = 3
}

// ---- helpers referenced by generated code ----

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func tern(c, a, b uint64) uint64 {
	if c != 0 {
		return a
	}
	return b
}

func udiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func urem(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return a % b
}

func shl(a, b uint64) uint64 {
	if b >= 64 {
		return 0
	}
	return a << b
}

func shr(a, b uint64) uint64 {
	if b >= 64 {
		return 0
	}
	return a >> b
}

func ldU(addr uint64, size int) uint64 {
	v, f := memLoad(addr, size)
	if f != 0 {
		diFault = f
		return 0
	}
	return v
}

func ldS(addr uint64, size int) uint64 {
	v, f := memLoad(addr, size)
	if f != 0 {
		diFault = f
		return 0
	}
	sh := uint(64 - 8*size)
	return uint64(int64(v<<sh) >> sh)
}

func stV(addr, val uint64, size int) {
	if f := memStore(addr, val, size); f != 0 {
		diFault = f
	}
}

// Pure builtins, transcribed from lis.EvalPureBuiltin.

func bi_sext8(a uint64) uint64  { return uint64(int64(int8(a))) }
func bi_sext16(a uint64) uint64 { return uint64(int64(int16(a))) }
func bi_sext32(a uint64) uint64 { return uint64(int64(int32(a))) }

func bi_sext(a, w uint64) uint64 {
	if w == 0 || w >= 64 {
		return a
	}
	x := a & (1<<w - 1)
	if x&(1<<(w-1)) != 0 {
		x |= ^uint64(0) << w
	}
	return x
}

func bi_trunc(a, w uint64) uint64 {
	if w >= 64 {
		return a
	}
	return a & (1<<w - 1)
}

func bi_bits(a, hi, lo uint64) uint64 {
	if hi >= 64 || lo > hi {
		return 0
	}
	return (a >> lo) & (1<<(hi-lo+1) - 1)
}

func bi_asr(a, s uint64) uint64 {
	if s >= 64 {
		s = 63
	}
	return uint64(int64(a) >> s)
}

func bi_lts(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) }
func bi_les(a, b uint64) uint64 { return b2u(int64(a) <= int64(b)) }
func bi_gts(a, b uint64) uint64 { return b2u(int64(a) > int64(b)) }
func bi_ges(a, b uint64) uint64 { return b2u(int64(a) >= int64(b)) }

func bi_sdiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	if int64(a) == -1<<63 && int64(b) == -1 {
		return a
	}
	return uint64(int64(a) / int64(b))
}

func bi_srem(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	if int64(a) == -1<<63 && int64(b) == -1 {
		return 0
	}
	return uint64(int64(a) % int64(b))
}

func bi_mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

func bi_mulhs(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	if int64(a) < 0 {
		hi -= b
	}
	if int64(b) < 0 {
		hi -= a
	}
	return hi
}

func bi_rotl32(a, s uint64) uint64 { return uint64(bits.RotateLeft32(uint32(a), int(s&31))) }
func bi_rotr32(a, s uint64) uint64 { return uint64(bits.RotateLeft32(uint32(a), -int(s&31))) }
func bi_rotl64(a, s uint64) uint64 { return bits.RotateLeft64(a, int(s&63)) }
func bi_rotr64(a, s uint64) uint64 { return bits.RotateLeft64(a, -int(s&63)) }
func bi_clz32(a uint64) uint64     { return uint64(bits.LeadingZeros32(uint32(a))) }
func bi_clz64(a uint64) uint64     { return uint64(bits.LeadingZeros64(a)) }
func bi_ctz32(a uint64) uint64     { return uint64(bits.TrailingZeros32(uint32(a))) }
func bi_ctz64(a uint64) uint64     { return uint64(bits.TrailingZeros64(a)) }
func bi_popcnt(a uint64) uint64    { return uint64(bits.OnesCount64(a)) }

// ---- execution profile ----

type profKey struct {
	pc   uint64
	bits uint32
}

var profile = map[profKey]uint64{}

// ---- superblocks ----
//
// The One/Block driver executes chained superblocks: straight-line runs of
// decoded instructions (ended by a control transfer, an undecodable or
// faulting fetch, the page boundary, or gMaxBlockLen) dispatched slot to
// slot with no per-instruction fetch/decode. Each block records its observed
// successor so the common path jumps block to block directly; the links and
// the cached decodes are severed by code-store epoch bumps, mirroring the
// interpreter's chain links. Full non-recording passes retire as one count
// on the block, folded into the per-(pc,bits) profile at run end, so work
// accounting stays byte-identical to the interpreter's.

type sbSlot struct {
	pc   uint64
	fall uint64
	bits uint32
	id   uint16
	fn   func()
}

type sblock struct {
	startPC uint64
	epoch   uint64
	count   uint64
	slots   []sbSlot
	next    *sblock
}

var (
	sblocks   = map[uint64]*sblock{}
	codeEpoch uint64
)

func markCode(addr uint64) {
	pageFor(addr).code = true
}

// buildSB decodes the superblock starting at startPC, or returns nil when
// the first instruction does not translate (fetch fault, undecodable, or a
// page-straddling fetch, which stays on the dynamic fallback path like the
// interpreter's uncached straddles).
func buildSB(startPC uint64) *sblock {
	pageEnd := (startPC | (pageSize - 1)) + 1
	sb := &sblock{startPC: startPC}
	pcb := startPC
	for len(sb.slots) < gMaxBlockLen {
		if pcb+gInstrSize > pageEnd {
			break
		}
		v, f := memLoad(pcb, int(gInstrSize))
		if f != 0 {
			break
		}
		bits := uint32(v)
		id := gDecode(bits)
		if id < 0 {
			break
		}
		sb.slots = append(sb.slots, sbSlot{pc: pcb, fall: pcb + gInstrSize, bits: bits, id: uint16(id), fn: gInstrFns[id][0]})
		if gInstrCTI[id] {
			break
		}
		pcb += gInstrSize
	}
	if len(sb.slots) == 0 {
		return nil
	}
	markCode(startPC)
	sb.epoch = codeEpoch
	sblocks[startPC] = sb
	return sb
}

// lookupSB returns a current-epoch block for pcv. A stale block is
// revalidated by re-reading its slots' bits; on any mismatch its pending
// count is folded (those executions ran the old bits) and it is rebuilt.
func lookupSB(pcv uint64) *sblock {
	sb := sblocks[pcv]
	if sb == nil {
		return buildSB(pcv)
	}
	if sb.epoch != codeEpoch {
		for si := range sb.slots {
			sl := &sb.slots[si]
			v, f := memLoad(sl.pc, int(gInstrSize))
			if f != 0 || uint32(v) != sl.bits {
				foldSB(sb)
				delete(sblocks, pcv)
				return buildSB(pcv)
			}
		}
		sb.epoch = codeEpoch
	}
	return sb
}

func foldSB(sb *sblock) {
	if sb.count == 0 {
		return
	}
	for si := range sb.slots {
		sl := &sb.slots[si]
		profile[profKey{sl.pc, sl.bits}] += sb.count
	}
	sb.count = 0
}

func foldAllSB() {
	for _, sb := range sblocks {
		foldSB(sb)
	}
}

// runSuper is the One/Block driver loop. Observable semantics match the
// attemptOne loop exactly: per-slot working-header setup equals attemptOne's
// preamble (the slot's cached bits/id replay fetch+decode, validated by the
// epoch), pc advances through diNextPC so generated assignments to next_pc
// are honored, faulting attempts do not retire, and records are emitted per
// instruction in retirement order.
func runSuper(maxInstr uint64) {
	var pred *sblock
	for !halted && instret < maxInstr {
		var sb *sblock
		if pred != nil && pred.startPC == pc && pred.epoch == codeEpoch {
			sb = pred
		} else {
			sb = lookupSB(pc)
		}
		pred = nil
		if sb == nil {
			attemptOne()
			emitRec()
			if diFault != 0 {
				break
			}
			pc = diNextPC
			instret++
			continue
		}
		full := true
		executed := 0
		for si := range sb.slots {
			if instret >= maxInstr {
				full = false
				break
			}
			sl := &sb.slots[si]
			diPC = sl.pc
			diPhysPC = sl.pc
			diNextPC = sl.fall
			diBits = sl.bits
			diID = sl.id
			diFault = 0
			diNullify = false
			faultKind = 0
			sl.fn()
			executed++
			if emitting {
				emitRec()
			}
			if diFault != 0 {
				full = false
				pc = sl.pc
				break
			}
			pc = diNextPC
			instret++
			if si+1 < len(sb.slots) && pc != sb.slots[si+1].pc {
				// A non-CTI slot redirected next_pc: leave the block.
				full = false
				break
			}
		}
		if full && executed == len(sb.slots) {
			sb.count++
			if sb.next != nil && sb.next.startPC == pc && sb.next.epoch == codeEpoch {
				pred = sb.next
			} else if nb := lookupSB(pc); nb != nil {
				sb.next = nb
				pred = nb
			}
		} else {
			for si := 0; si < executed; si++ {
				sl := &sb.slots[si]
				profile[profKey{sl.pc, sl.bits}]++
			}
		}
		if diFault != 0 {
			break
		}
	}
	foldAllSB()
}

// ---- interface drivers ----

func fetch() {
	v, f := memLoad(diPhysPC, int(gInstrSize))
	if f != 0 {
		diFault = f
		return
	}
	diBits = uint32(v)
}

// attemptOne executes one instruction attempt through the One/Block shape:
// a single call covering every pipeline step. Field storage is deliberately
// not cleared — the interpreter's frame persists across instructions.
func attemptOne() {
	diPC = pc
	diPhysPC = pc
	diNextPC = pc + gInstrSize
	diBits = 0
	diID = gUndecodedID
	diFault = 0
	diNullify = false
	faultKind = 0
	fetch()
	if diFault == 0 {
		if id := gDecode(diBits); id >= 0 {
			diID = uint16(id)
			profile[profKey{pc, diBits}]++
			gInstrFns[id][0]()
			return
		}
		diFault = 2 // illegal
		faultKind = 2
	} else {
		faultKind = 1
	}
	gFaultFns[0]()
}

// attemptStep executes one instruction attempt through the Step interface:
// one call per entrypoint, the whole frame cleared at entrypoint 0 and
// hidden fields cleared at every later boundary (core.Exec.importRec).
func attemptStep() {
	diPC = pc
	diPhysPC = pc
	diNextPC = pc + gInstrSize
	diBits = 0
	diID = gUndecodedID
	diFault = 0
	diNullify = false
	gClearFields()
	faultKind = 0
	for e := 0; e < gNumEps; e++ {
		if e > 0 {
			gClearHidden()
		}
		if e == gFetchEp && diFault == 0 {
			fetch()
			if diFault != 0 {
				faultKind = 1
			}
		}
		if e == gDecodeEp && diFault == 0 && diID == gUndecodedID {
			if id := gDecode(diBits); id >= 0 {
				diID = uint16(id)
			} else {
				diFault = 2
				faultKind = 2
			}
		}
		if diID != gUndecodedID {
			gInstrFns[diID][e]()
		} else {
			gFaultFns[e]()
		}
		emitRec()
	}
	if faultKind == 0 {
		profile[profKey{pc, diBits}]++
	}
}

// runProgram drives attempts until halt, fault, or the instruction budget.
// Faulting (halting) attempts do not retire: pc stays at the attempt.
func runProgram(maxInstr uint64, wantRecs bool) {
	stepMode := gNumEps > 1
	emitting = wantRecs && (stepMode || !gModeBlock || gEmitRecs)
	if stepMode {
		for !halted && instret < maxInstr {
			attemptStep()
			if diFault != 0 {
				break
			}
			pc = diNextPC
			instret++
		}
	} else {
		runSuper(maxInstr)
	}
	emitting = false
}

// ---- frame protocol ----

const maxFrame = 1 << 26

var (
	protoIn  = bufio.NewReader(os.Stdin)
	protoOut = bufio.NewWriter(os.Stdout)

	// Plugin mode (see the Plugin* exports): frames are collected in memory
	// instead of written to stdout, and protocol errors panic (recovered at
	// the export boundary) instead of exiting the host process.
	pluginMode   bool
	pluginFrames [][]byte
)

func fatalf(format string, args ...any) {
	if pluginMode {
		panic(fmt.Sprintf("aotrunner: "+format, args...))
	}
	fmt.Fprintf(os.Stderr, "aotrunner: "+format+"\n", args...)
	os.Exit(2)
}

func readFrame() ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(protoIn, lb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(protoIn, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(payload []byte) {
	if pluginMode {
		// Copy: record batches reuse recBuf's backing array after a flush.
		pluginFrames = append(pluginFrames, append([]byte(nil), payload...))
		return
	}
	var lb [4]byte
	binary.LittleEndian.PutUint32(lb[:], uint32(len(payload)))
	protoOut.Write(lb[:])
	protoOut.Write(payload)
}

func append4(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func append8(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

func sendHello() {
	p := []byte{'H'}
	p = append(p, byte(len(gSpecName)), byte(len(gSpecName)>>8))
	p = append(p, gSpecName...)
	p = append(p, byte(len(gBuildsetName)), byte(len(gBuildsetName)>>8))
	p = append(p, gBuildsetName...)
	p = append4(p, uint32(len(gVisNames)))
	for _, n := range gVisNames {
		p = append(p, byte(len(n)), byte(len(n)>>8))
		p = append(p, n...)
	}
	p = append4(p, uint32(gNumEps))
	p = append(p, b2u8(gModeBlock), b2u8(gEmitRecs))
	writeFrame(p)
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---- record stream ----

// Records accumulate directly into a pre-tagged frame buffer and flush once
// the batch reaches pipe size: one length prefix and one write per batch
// instead of per fixed record count, so the record path costs appends, not
// syscalls.
const recBatchTarget = 1 << 16

var (
	emitting bool
	recBuf   = []byte{'R', 0, 0, 0, 0}
	recCount uint32
)

func emitRec() {
	if !emitting {
		return
	}
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], diPC)
	binary.LittleEndian.PutUint64(hdr[8:], diPhysPC)
	binary.LittleEndian.PutUint64(hdr[16:], diNextPC)
	binary.LittleEndian.PutUint32(hdr[24:], diBits)
	binary.LittleEndian.PutUint16(hdr[28:], diID)
	hdr[30] = diFault
	hdr[31] = b2u8(diNullify)
	recBuf = append(recBuf, hdr[:]...)
	for _, p := range gVisPtrs {
		recBuf = append8(recBuf, *p)
	}
	recCount++
	if len(recBuf) >= recBatchTarget {
		flushRecs()
	}
}

func flushRecs() {
	if recCount == 0 {
		return
	}
	binary.LittleEndian.PutUint32(recBuf[1:5], recCount)
	writeFrame(recBuf)
	recBuf = recBuf[:5]
	recCount = 0
}

// ---- program image and reset ----

type progSeg struct {
	name string
	addr uint64
	data []byte
}

var (
	progSegs  []progSeg
	progEntry uint64
)

func handleInit(p []byte) {
	hardReset()
	d := newDec(p)
	progEntry = d.u64()
	nSegs := d.u32()
	progSegs = nil
	for i := uint32(0); i < nSegs && d.err == nil; i++ {
		name := string(d.bytes(int(d.u16())))
		addr := d.u64()
		data := append([]byte(nil), d.bytes(int(d.u32()))...)
		progSegs = append(progSegs, progSeg{name, addr, data})
	}
	stdinBuf = append([]byte(nil), d.bytes(int(d.u32()))...)
	if d.err != nil {
		fatalf("malformed init frame: %v", d.err)
	}
	for _, sg := range progSegs {
		memWriteBytes(sg.addr, sg.data)
	}
	pc = progEntry
}

// hardReset restores process-start machine state. In the subprocess it runs
// once per Init as a no-op refresh; through the plugin path it is what makes
// a cached handle reusable (plugin.Open loads one copy per process, so
// successive sessions share these globals).
func hardReset() {
	memPages = map[uint64]*mpage{}
	lastPN, lastPg = ^uint64(0), nil
	sblocks = map[uint64]*sblock{}
	codeEpoch = 0
	for _, r := range regs {
		for i := range r {
			r[i] = 0
		}
	}
	pc = 0
	instret = 0
	halted = false
	exitCode = 0
	faultKind = 0
	diPC, diPhysPC, diNextPC = 0, 0, 0
	diBits = 0
	diID = gUndecodedID
	diFault = 0
	diNullify = false
	gClearFields()
	brk = gHeapBase
	ticks = 0
	stdinBuf = nil
	stdout = nil
	profile = map[profKey]uint64{}
	recBuf = recBuf[:5]
	recCount = 0
	progSegs = nil
	progEntry = 0
}

// reset mirrors the host-side expt.Runner.reset: zero the register file,
// clear halt state and counters, reinstall the stack pointer, and reload
// the data segments. Memory pages, brk, ticks, and remaining stdin persist,
// as they do across runs of one interpreter cell. Cached superblocks also
// persist (their pending counts are cleared with the profile).
func reset() {
	for _, r := range regs {
		for i := range r {
			r[i] = 0
		}
	}
	halted = false
	exitCode = 0
	instret = 0
	stdout = stdout[:0]
	for k := range profile {
		delete(profile, k)
	}
	for _, sb := range sblocks {
		sb.count = 0
	}
	spWrite(0, gConvStack, gStackTop)
	for _, sg := range progSegs {
		if sg.name != ".text" {
			memWriteBytes(sg.addr, sg.data)
		}
	}
	pc = progEntry
}

func handleRun(p []byte) {
	d := newDec(p)
	maxInstr := d.u64()
	wantRecs := d.u8() != 0
	resultAddr := d.u64()
	if d.err != nil {
		fatalf("malformed run frame: %v", d.err)
	}
	reset()
	start := time.Now()
	runProgram(maxInstr, wantRecs)
	elapsed := time.Since(start)
	flushRecs()
	sendFinal(resultAddr, uint64(elapsed.Nanoseconds()))
}

func sendFinal(resultAddr, elapsedNs uint64) {
	var resultWord uint32
	if resultAddr != 0 {
		if v, f := memLoad(resultAddr, 4); f == 0 {
			resultWord = uint32(v)
		}
	}
	p := []byte{'F', b2u8(halted)}
	p = append8(p, uint64(exitCode))
	p = append(p, diFault, faultKind)
	p = append8(p, pc)
	p = append8(p, instret)
	p = append8(p, elapsedNs)
	p = append4(p, resultWord)
	p = append4(p, uint32(len(regs)))
	for _, r := range regs {
		p = append4(p, uint32(len(r)))
		for _, v := range r {
			p = append8(p, v)
		}
	}
	p = append4(p, uint32(len(stdout)))
	p = append(p, stdout...)
	keys := make([]profKey, 0, len(profile))
	for k := range profile {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].pc != keys[b].pc {
			return keys[a].pc < keys[b].pc
		}
		return keys[a].bits < keys[b].bits
	})
	p = append4(p, uint32(len(keys)))
	for _, k := range keys {
		p = append8(p, k.pc)
		p = append4(p, k.bits)
		p = append8(p, profile[k])
	}
	writeFrame(p)
}

// ---- input decoding ----

type dec struct {
	b   []byte
	off int
	err error
}

func newDec(b []byte) *dec { return &dec{b: b} }

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("truncated at offset %d (need %d of %d)", d.off, n, len(d.b))
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		if d.err == nil {
			d.err = fmt.Errorf("negative length %d", n)
		}
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// ---- plugin exports ----
//
// When the runner is built with -buildmode=plugin the host loads it in
// process (aot.LoadPlugin) and drives these exports with the same payloads
// the pipe protocol carries, minus the length prefixes. Symbol types stick
// to builtins so host and plugin need no shared package.

func ensureRegs() {
	if regs == nil {
		regs = make([][]uint64, len(gSpaceCount))
		for i, c := range gSpaceCount {
			regs[i] = make([]uint64, c)
		}
	}
}

func pluginEnter() {
	pluginMode = true
	ensureRegs()
	pluginFrames = nil
}

// PluginHello returns the hello frame payload ('H'-tagged).
func PluginHello() []byte {
	pluginEnter()
	sendHello()
	out := pluginFrames
	pluginFrames = nil
	return out[0]
}

// PluginInit applies an init payload (the bytes after the 'I' tag) to a
// hard-reset machine. Returns "" on success or an error description.
func PluginInit(p []byte) (errs string) {
	defer func() {
		if r := recover(); r != nil {
			errs = fmt.Sprint(r)
		}
	}()
	pluginEnter()
	handleInit(p)
	return ""
}

// PluginRun executes a run payload (the bytes after the 'R' tag) and
// returns the frames the run produced: zero or more 'R' record batches
// followed by the final 'F' frame.
func PluginRun(p []byte) (frames [][]byte, errs string) {
	defer func() {
		if r := recover(); r != nil {
			frames, errs = nil, fmt.Sprint(r)
		}
	}()
	pluginEnter()
	handleRun(p)
	out := pluginFrames
	pluginFrames = nil
	return out, ""
}

func main() {
	regs = make([][]uint64, len(gSpaceCount))
	for i, c := range gSpaceCount {
		regs[i] = make([]uint64, c)
	}
	_ = gSpaceName
	sendHello()
	if err := protoOut.Flush(); err != nil {
		fatalf("writing hello: %v", err)
	}
	for {
		buf, err := readFrame()
		if err != nil {
			if err == io.EOF {
				return // host closed our stdin: clean shutdown
			}
			fatalf("reading frame: %v", err)
		}
		switch buf[0] {
		case 'I':
			handleInit(buf[1:])
		case 'R':
			handleRun(buf[1:])
			if err := protoOut.Flush(); err != nil {
				fatalf("writing run results: %v", err)
			}
		case 'Q':
			protoOut.Flush()
			return
		default:
			fatalf("unknown frame type %#x", buf[0])
		}
	}
}
`
