package aot

import (
	"fmt"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/faultinj"
	"singlespec/internal/isa"
	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// DiffConfig parameterizes one differential run.
type DiffConfig struct {
	// MaxInstr is the retired-instruction budget per side; exceeding it is
	// an operational error (the comparison needs both sides to terminate),
	// not a divergence. Zero means the default.
	MaxInstr uint64
	// Stdin is fed to both emulated OSes.
	Stdin []byte
}

const defaultDiffBudget = 4 << 20

// DiffProgram runs prog to completion under both the closure interpreter
// and the generated runner binary and compares them at retire granularity:
// the complete visibility-record stream (every published record, in order,
// header and values), then the final architectural state (PC, instret,
// halt/exit status, every register of every space, emulated-OS output, the
// program's result word) and the deterministic work-unit total, which the
// host reconstructs for the runner from its execution profile.
//
// The interpreter side is a faultinj clean-reference run — the same
// pristine-machine construction the fault campaigns compare against. The
// runner side is a fresh subprocess, so no state leaks between programs.
//
// It returns (nil, nil) when the sides agree, a *faultinj.Divergence
// pinpointing the first difference when they do not, and an error for
// operational failures (spawn, protocol, budget exhaustion).
func DiffProgram(sim *core.Sim, i *isa.ISA, prog *asm.Program, binPath string, cfg DiffConfig) (*faultinj.Divergence, error) {
	budget := cfg.MaxInstr
	if budget == 0 {
		budget = defaultDiffBudget
	}

	// Interpreter side: collect the reference stream.
	ref := faultinj.NewCleanRun(i, prog, sim)
	ref.Emulator().Stdin = append([]byte(nil), cfg.Stdin...)
	m, x := ref.Machine(), ref.Exec()
	var refRecs []core.Record
	copyRec := func(rec *core.Record) {
		c := *rec
		c.Vals = append([]uint64(nil), rec.Vals...)
		refRecs = append(refRecs, c)
	}
	refFault := mach.FaultNone
	switch {
	case sim.BS.Mode == lis.ModeBlock:
		var batch core.Batch
		for !m.Halted && m.Instret < budget {
			ok := x.ExecBlock(&batch)
			for idx := range batch.Recs {
				copyRec(&batch.Recs[idx])
			}
			if !ok {
				refFault = batch.Fault
				break
			}
		}
	case len(sim.BS.Entrypoints) > 1:
		var rec core.Record
		for !m.Halted && m.Instret < budget {
			rec.PC = m.PC
			for ep := range sim.BS.Entrypoints {
				x.StepCall(ep, &rec)
				copyRec(&rec)
			}
			if rec.Fault != mach.FaultNone {
				refFault = rec.Fault
				break
			}
		}
	default:
		var rec core.Record
		for !m.Halted && m.Instret < budget {
			ok := x.ExecOne(&rec)
			copyRec(&rec)
			if !ok {
				refFault = rec.Fault
				break
			}
		}
	}
	if !m.Halted && refFault == mach.FaultNone {
		return nil, fmt.Errorf("aot: interpreter exceeded %d-instruction budget at pc %#x", budget, m.PC)
	}

	// Runner side: fresh subprocess, one init, one recorded run.
	r, err := Spawn(binPath, nil)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := checkHello(sim, r.Hello()); err != nil {
		return nil, err
	}
	if err := r.Init(prog, cfg.Stdin); err != nil {
		return nil, err
	}
	resultAddr := prog.Symbols["result"]
	res, err := r.Run(budget, true, resultAddr)
	if err != nil {
		return nil, err
	}
	if !res.Halted && res.Fault == mach.FaultNone {
		return nil, fmt.Errorf("aot: runner exceeded %d-instruction budget at pc %#x", budget, res.PC)
	}

	// First divergence in the visibility stream, with full record context.
	n := len(refRecs)
	if len(res.Records) < n {
		n = len(res.Records)
	}
	for idx := 0; idx < n; idx++ {
		if d := recordDiff(&refRecs[idx], &res.Records[idx], sim); d != "" {
			return &faultinj.Divergence{
				Instret: uint64(idx),
				RefPC:   refRecs[idx].PC,
				GotPC:   res.Records[idx].PC,
				Detail: fmt.Sprintf("record %d: %s\n  interp: %s\n  aot:    %s",
					idx, d, fmtRec(&refRecs[idx], sim), fmtRec(&res.Records[idx], sim)),
			}, nil
		}
	}
	if len(refRecs) != len(res.Records) {
		d := &faultinj.Divergence{Instret: uint64(n), RefPC: m.PC, GotPC: res.PC,
			Detail: fmt.Sprintf("record stream length: interpreter %d, aot %d", len(refRecs), len(res.Records))}
		if n > 0 {
			d.Detail += fmt.Sprintf("\n  last common: %s", fmtRec(&refRecs[n-1], sim))
		}
		return d, nil
	}

	// Final architectural state.
	div := func(format string, args ...any) *faultinj.Divergence {
		return &faultinj.Divergence{Instret: m.Instret, RefPC: m.PC, GotPC: res.PC,
			Detail: fmt.Sprintf(format, args...)}
	}
	if m.Instret != res.Instret {
		return div("instret: interpreter %d, aot %d", m.Instret, res.Instret), nil
	}
	if m.PC != res.PC {
		return div("final pc: interpreter %#x, aot %#x", m.PC, res.PC), nil
	}
	if m.Halted != res.Halted || int64(m.ExitCode) != res.ExitCode {
		return div("exit status: interpreter halted=%v code=%d, aot halted=%v code=%d",
			m.Halted, m.ExitCode, res.Halted, res.ExitCode), nil
	}
	if refFault != res.Fault {
		return div("final fault: interpreter %d, aot %d", refFault, res.Fault), nil
	}
	if len(m.Spaces) != len(res.Spaces) {
		return div("space count: interpreter %d, aot %d", len(m.Spaces), len(res.Spaces)), nil
	}
	for si, sp := range m.Spaces {
		if len(sp.Vals) != len(res.Spaces[si]) {
			return div("space %s size: interpreter %d, aot %d", sp.Def.Name, len(sp.Vals), len(res.Spaces[si])), nil
		}
		for k, v := range sp.Vals {
			if got := res.Spaces[si][k]; v != got {
				return div("register %s[%d]: interpreter %#x, aot %#x", sp.Def.Name, k, v, got), nil
			}
		}
	}
	refOut := ref.Emulator().Stdout.Bytes()
	if string(refOut) != string(res.Stdout) {
		return div("emulated stdout: interpreter %q, aot %q", refOut, res.Stdout), nil
	}
	if resultAddr != 0 {
		var refWord uint32
		if v, f := m.Mem.Load(resultAddr, 4); f == mach.FaultNone {
			refWord = uint32(v)
		}
		if refWord != res.ResultWord {
			return div("result word @%#x: interpreter %#x, aot %#x", resultAddr, refWord, res.ResultWord), nil
		}
	}

	// Deterministic work: the runner's profile must reproduce the
	// interpreter's unit-level accounting exactly.
	aotWork, err := ComputeWork(sim, res)
	if err != nil {
		return nil, err
	}
	if refWork := x.Work(); refWork != aotWork {
		return div("work units: interpreter %d, aot-reconstructed %d (profile %d sites, fault kind %d)",
			refWork, aotWork, len(res.Profile), res.FaultKind), nil
	}
	return nil, nil
}

// checkHello verifies the runner self-description against the simulator the
// host synthesized, so a cache or wiring mixup fails loudly.
func checkHello(sim *core.Sim, h Hello) error {
	if h.Spec != sim.Spec.Name || h.Buildset != sim.BS.Name {
		return fmt.Errorf("aot: runner identifies as (%s, %s), host expected (%s, %s)",
			h.Spec, h.Buildset, sim.Spec.Name, sim.BS.Name)
	}
	names := sim.Layout.FieldNames()
	if len(h.VisNames) != len(names) {
		return fmt.Errorf("aot: runner has %d visible fields, host layout has %d", len(h.VisNames), len(names))
	}
	for i, n := range names {
		if h.VisNames[i] != n {
			return fmt.Errorf("aot: visible field %d: runner %q, host %q", i, h.VisNames[i], n)
		}
	}
	if h.NumEps != len(sim.BS.Entrypoints) {
		return fmt.Errorf("aot: runner has %d entrypoints, host buildset %d", h.NumEps, len(sim.BS.Entrypoints))
	}
	return nil
}

// recordDiff names the first differing record field, or "".
func recordDiff(a, b *core.Record, sim *core.Sim) string {
	switch {
	case a.PC != b.PC:
		return "pc differs"
	case a.PhysPC != b.PhysPC:
		return "phys_pc differs"
	case a.NextPC != b.NextPC:
		return "next_pc differs"
	case a.InstrBits != b.InstrBits:
		return "instr_bits differs"
	case a.InstrID != b.InstrID:
		return "instr id differs"
	case a.Fault != b.Fault:
		return "fault differs"
	case a.Nullified != b.Nullified:
		return "nullify differs"
	case len(a.Vals) != len(b.Vals):
		return fmt.Sprintf("value count differs (%d vs %d)", len(a.Vals), len(b.Vals))
	}
	names := sim.Layout.FieldNames()
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			name := fmt.Sprintf("value %d", i)
			if i < len(names) {
				name = names[i]
			}
			return fmt.Sprintf("visible field %s differs", name)
		}
	}
	return ""
}

// fmtRec renders one record with named values for divergence reports.
func fmtRec(r *core.Record, sim *core.Sim) string {
	s := fmt.Sprintf("pc=%#x phys=%#x next=%#x bits=%#x id=%d fault=%d null=%v",
		r.PC, r.PhysPC, r.NextPC, r.InstrBits, r.InstrID, r.Fault, r.Nullified)
	names := sim.Layout.FieldNames()
	for i, v := range r.Vals {
		name := fmt.Sprintf("v%d", i)
		if i < len(names) {
			name = names[i]
		}
		s += fmt.Sprintf(" %s=%#x", name, v)
	}
	return s
}
