package aot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os/exec"
	"sync/atomic"
	"syscall"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/mach"
	"singlespec/internal/obs"
)

// maxFrame bounds a protocol frame in either direction. A length beyond it
// is corruption (or an adversarial peer), not data.
const maxFrame = 1 << 26

// ProtocolError is the typed error for any malformed runner-protocol frame.
// Decoders return it (wrapped with frame context) for every corrupted,
// truncated, or oversized input — never a panic or an unbounded loop.
type ProtocolError struct {
	Frame string // which frame kind was being decoded
	Msg   string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("aot: protocol: %s frame: %s", e.Frame, e.Msg)
}

func perr(frame, format string, args ...any) error {
	return &ProtocolError{Frame: frame, Msg: fmt.Sprintf(format, args...)}
}

// Hello is the runner's startup self-description, verified against the
// host's expectation so a cache mixup can never silently run the wrong
// simulator.
type Hello struct {
	Spec     string
	Buildset string
	VisNames []string
	NumEps   int
	Block    bool
	EmitRecs bool
}

// ProfEntry is one (pc, bits) execution count from the runner's profile.
type ProfEntry struct {
	PC    uint64
	Bits  uint32
	Count uint64
}

// FinalState is the runner's end-of-run report.
type FinalState struct {
	Halted    bool
	ExitCode  int64
	Fault     mach.Fault
	FaultKind uint8 // 0 decoded final attempt, 1 fetch fault, 2 undecodable
	PC        uint64
	Instret   uint64
	ElapsedNs uint64
	ResultWord uint32
	Spaces    [][]uint64
	Stdout    []byte
	Profile   []ProfEntry
}

// RunResult is everything one 'R' command produced.
type RunResult struct {
	Records []core.Record
	FinalState
}

// TimeoutError reports a runner process that stopped responding: no frame
// crossed the pipe within the hard deadline, so the process was killed
// (SIGTERM, then SIGKILL after a grace period). It is a distinct type —
// not a *ProtocolError — because a wedged runner is a transient host
// condition the caller may retry, not a malformed byte stream.
type TimeoutError struct {
	Op      string        // what the host was waiting on ("run", "init", "hello")
	Timeout time.Duration // the hard deadline that expired
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("aot: runner unresponsive during %s: no frame within %v; process killed", e.Op, e.Timeout)
}

// defaultKillGrace is how long a timed-out runner gets to honor SIGTERM
// before the escalation to SIGKILL.
const defaultKillGrace = 2 * time.Second

// Client is one live runner session, whatever the transport: a *Runner
// subprocess over the pipe protocol, or a *PluginSession executing in
// process (see plugin.go). Both speak identical frame payloads, so every
// consumer (bench cells, the differential harness) is transport-agnostic.
type Client interface {
	Hello() Hello
	Init(prog *asm.Program, stdin []byte) error
	Run(maxInstr uint64, wantRecs bool, resultAddr uint64) (*RunResult, error)
	Close() error
}

// Runner is a live runner subprocess speaking the frame protocol.
type Runner struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout *bufio.Reader
	stderr bytes.Buffer
	hello  Hello
	reg    *obs.Registry
	broken bool
	// hardTimeout bounds every blocking protocol exchange (see
	// SetHardDeadline); 0 means unbounded (the pre-watchdog behavior).
	hardTimeout time.Duration
	killGrace   time.Duration
	// timedOut is set by the watchdog before it kills the process, so the
	// pipe error the blocked read/write then observes is reported as a
	// *TimeoutError instead of a generic protocol error.
	timedOut atomic.Bool
}

// Spawn starts the runner binary and consumes its hello frame.
func Spawn(binPath string, reg *obs.Registry) (*Runner, error) {
	return SpawnWithDeadline(binPath, reg, 0)
}

// SpawnWithDeadline is Spawn with a hard per-exchange deadline armed from
// the very first (hello) read, so even a runner that wedges before its
// first frame is killed and reported with a typed *TimeoutError.
func SpawnWithDeadline(binPath string, reg *obs.Registry, deadline time.Duration) (*Runner, error) {
	cmd := exec.Command(binPath)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	r := &Runner{cmd: cmd, stdin: stdin, stdout: bufio.NewReader(stdout), reg: reg}
	r.SetHardDeadline(deadline)
	cmd.Stderr = &r.stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("aot: spawning runner: %w", err)
	}
	count(reg, "aot.spawn")
	var frame []byte
	err = r.watch("hello", func() error {
		var ferr error
		frame, ferr = r.readFrame()
		return ferr
	})
	if err != nil {
		r.kill()
		if _, ok := err.(*TimeoutError); ok {
			return nil, err
		}
		return nil, fmt.Errorf("aot: reading hello: %w%s", err, r.stderrSuffix())
	}
	hello, err := decodeHelloFrame(frame)
	if err != nil {
		r.kill()
		return nil, err
	}
	r.hello = *hello
	return r, nil
}

// SetHardDeadline arms a hard wall-clock watchdog over every subsequent
// blocking protocol exchange (Init, Run, and the Spawn hello read): if the
// exchange has not completed within d, the runner process is sent SIGTERM,
// then SIGKILL after a grace period, and the exchange returns a typed
// *TimeoutError. This is the guarantee that a wedged runner — stuck in a
// loop, blocked on a full pipe, or silently dead — can never hang its cell:
// the cooperative -cell-timeout watchdog cannot preempt a blocked pipe
// read, but killing the process forces the read to fail. d <= 0 disables
// the watchdog.
func (r *Runner) SetHardDeadline(d time.Duration) { r.hardTimeout = d }

// watch runs one blocking protocol exchange under the hard deadline.
func (r *Runner) watch(op string, f func() error) error {
	if r.hardTimeout <= 0 {
		return f()
	}
	grace := r.killGrace
	if grace <= 0 {
		grace = defaultKillGrace
	}
	timer := time.AfterFunc(r.hardTimeout, func() {
		r.timedOut.Store(true)
		if p := r.cmd.Process; p != nil {
			// Escalation: a polite SIGTERM first (lets a live-but-slow
			// runner flush and exit), SIGKILL if it has not died by the
			// end of the grace period. Killing closes the pipes, which
			// unblocks the stalled read or write below.
			if err := p.Signal(syscall.SIGTERM); err != nil {
				_ = p.Kill()
				return
			}
			time.AfterFunc(grace, func() {
				if p := r.cmd.Process; p != nil {
					_ = p.Kill()
				}
			})
		}
	})
	err := f()
	timer.Stop()
	if err != nil && r.timedOut.Load() {
		r.broken = true
		return &TimeoutError{Op: op, Timeout: r.hardTimeout}
	}
	return err
}

// Hello returns the runner's self-description.
func (r *Runner) Hello() Hello { return r.hello }

func (r *Runner) stderrSuffix() string {
	if s := bytes.TrimSpace(r.stderr.Bytes()); len(s) > 0 {
		return "\nrunner stderr: " + string(s)
	}
	return ""
}

func (r *Runner) readFrame() ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r.stdout, lb[:]); err != nil {
		return nil, perr("stream", "reading frame length: %v", noEOF(err))
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n == 0 || n > maxFrame {
		return nil, perr("stream", "frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.stdout, buf); err != nil {
		return nil, perr("stream", "reading %d-byte frame: %v", n, noEOF(err))
	}
	if r.reg != nil {
		r.reg.Counter("aot.proto.rx").Add(uint64(n) + 4)
	}
	return buf, nil
}

func (r *Runner) writeFrame(payload []byte) error {
	// One gathered write per frame (prefix + payload) so a frame costs one
	// syscall on the pipe, matching the runner's batched reads.
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := r.stdin.Write(buf); err != nil {
		return fmt.Errorf("aot: writing frame: %w%s", err, r.stderrSuffix())
	}
	if r.reg != nil {
		r.reg.Counter("aot.proto.tx").Add(uint64(len(payload)) + 4)
	}
	return nil
}

// encodeInitPayload builds the 'I' frame payload (tag included) shared by
// the subprocess and plugin transports.
func encodeInitPayload(prog *asm.Program, stdin []byte) []byte {
	p := []byte{'I'}
	p = binary.LittleEndian.AppendUint64(p, prog.Entry)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(prog.Segments)))
	for _, sg := range prog.Segments {
		p = binary.LittleEndian.AppendUint16(p, uint16(len(sg.Name)))
		p = append(p, sg.Name...)
		p = binary.LittleEndian.AppendUint64(p, sg.Addr)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(sg.Data)))
		p = append(p, sg.Data...)
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(stdin)))
	p = append(p, stdin...)
	return p
}

// encodeRunPayload builds the 'R' frame payload (tag included).
func encodeRunPayload(maxInstr uint64, wantRecs bool, resultAddr uint64) []byte {
	p := []byte{'R'}
	p = binary.LittleEndian.AppendUint64(p, maxInstr)
	wr := byte(0)
	if wantRecs {
		wr = 1
	}
	p = append(p, wr)
	p = binary.LittleEndian.AppendUint64(p, resultAddr)
	return p
}

// Init ships the program image and emulated-OS stdin to the runner. The
// runner loads every segment and parks the PC at the entry point; each Run
// then resets architectural state exactly like one interpreter cell reset.
func (r *Runner) Init(prog *asm.Program, stdin []byte) error {
	p := encodeInitPayload(prog, stdin)
	return r.watch("init", func() error { return r.writeFrame(p) })
}

// Run executes the loaded program once (after an architectural reset) with
// the given retired-instruction budget, optionally streaming the per-record
// visibility stream, and returns the runner's full report. resultAddr, when
// nonzero, asks the runner to read back a 32-bit result word from memory.
func (r *Runner) Run(maxInstr uint64, wantRecs bool, resultAddr uint64) (*RunResult, error) {
	if r.broken {
		return nil, fmt.Errorf("aot: runner already failed; spawn a fresh one")
	}
	p := encodeRunPayload(maxInstr, wantRecs, resultAddr)
	res := &RunResult{}
	err := r.watch("run", func() error {
		if err := r.writeFrame(p); err != nil {
			r.broken = true
			return err
		}
		for {
			frame, err := r.readFrame()
			if err != nil {
				r.broken = true
				return fmt.Errorf("%w%s", err, r.stderrSuffix())
			}
			switch frame[0] {
			case 'R':
				res.Records, err = decodeRecordsFrame(frame, len(r.hello.VisNames), res.Records)
				if err != nil {
					r.broken = true
					return err
				}
			case 'F':
				fin, err := decodeFinalFrame(frame)
				if err != nil {
					r.broken = true
					return err
				}
				res.FinalState = *fin
				return nil
			default:
				r.broken = true
				return perr("stream", "unexpected frame type %#x", frame[0])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Close shuts the runner down: a quit frame, stdin close, and a bounded
// wait before killing outright.
func (r *Runner) Close() error {
	if r.cmd.Process == nil {
		return nil
	}
	_ = r.writeFrame([]byte{'Q'})
	_ = r.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- r.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		r.kill()
		return <-done
	}
}

func (r *Runner) kill() {
	if r.cmd.Process != nil {
		_ = r.cmd.Process.Kill()
		_ = r.cmd.Wait()
	}
}

func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---- frame decoders ----
//
// The decoders are pure functions over a complete frame payload (type byte
// included) so the fuzz harness can feed them arbitrary bytes directly.
// Every count read from the wire is validated against the bytes actually
// present before any loop runs on it: corrupted input costs at most one
// pass over the frame, never an attacker-chosen iteration count.

type wireDec struct {
	frame string
	b     []byte
	off   int
	err   error
}

func (d *wireDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = perr(d.frame, format, args...)
	}
}

func (d *wireDec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at offset %d (need %d bytes of %d)", d.off, n, len(d.b))
		return false
	}
	return true
}

func (d *wireDec) rem() int { return len(d.b) - d.off }

func (d *wireDec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *wireDec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *wireDec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *wireDec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *wireDec) bytes(n int) []byte {
	if !d.need(n) {
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *wireDec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return perr(d.frame, "%d trailing bytes after payload", len(d.b)-d.off)
	}
	return nil
}

const maxNameLen = 256

func (d *wireDec) str16() string {
	n := int(d.u16())
	if n > maxNameLen {
		d.fail("implausible name length %d", n)
		return ""
	}
	return string(d.bytes(n))
}

// decodeHelloFrame parses the runner's startup frame.
func decodeHelloFrame(p []byte) (*Hello, error) {
	d := &wireDec{frame: "hello", b: p}
	if d.u8() != 'H' {
		return nil, perr("hello", "bad frame type")
	}
	h := &Hello{}
	h.Spec = d.str16()
	h.Buildset = d.str16()
	nVis := d.u32()
	if nVis > 1<<16 {
		return nil, perr("hello", "implausible visible-field count %d", nVis)
	}
	for i := uint32(0); i < nVis && d.err == nil; i++ {
		h.VisNames = append(h.VisNames, d.str16())
	}
	numEps := d.u32()
	if numEps == 0 || numEps > 64 {
		d.fail("implausible entrypoint count %d", numEps)
	}
	h.NumEps = int(numEps)
	h.Block = d.u8() != 0
	h.EmitRecs = d.u8() != 0
	if err := d.finish(); err != nil {
		return nil, err
	}
	return h, nil
}

// decodeRecordsFrame parses one 'R' frame of visibility records, appending
// to out. nVis is the per-record value count from the hello frame.
func decodeRecordsFrame(p []byte, nVis int, out []core.Record) ([]core.Record, error) {
	d := &wireDec{frame: "records", b: p}
	if d.u8() != 'R' {
		return out, perr("records", "bad frame type")
	}
	nRecs := d.u32()
	if d.err != nil {
		return out, d.err
	}
	if nVis < 0 || nVis > 1<<16 {
		return out, perr("records", "implausible value count %d", nVis)
	}
	recSize := 32 + 8*nVis
	if int64(nRecs)*int64(recSize) != int64(d.rem()) {
		return out, perr("records", "count %d disagrees with %d payload bytes (record size %d)",
			nRecs, d.rem(), recSize)
	}
	// One flat allocation of value storage per frame: with batched frames a
	// single 'R' frame can carry thousands of records, and a per-record
	// make() dominates the decode cost.
	var flat []uint64
	if nVis > 0 {
		flat = make([]uint64, int(nRecs)*nVis)
	}
	for i := uint32(0); i < nRecs; i++ {
		hdr := d.bytes(32)
		rec := core.Record{
			PC:        binary.LittleEndian.Uint64(hdr[0:]),
			PhysPC:    binary.LittleEndian.Uint64(hdr[8:]),
			NextPC:    binary.LittleEndian.Uint64(hdr[16:]),
			InstrBits: binary.LittleEndian.Uint32(hdr[24:]),
			InstrID:   binary.LittleEndian.Uint16(hdr[28:]),
			Fault:     mach.Fault(hdr[30]),
			Nullified: hdr[31] != 0,
		}
		if nVis > 0 {
			vals := flat[int(i)*nVis : (int(i)+1)*nVis : (int(i)+1)*nVis]
			for j := 0; j < nVis; j++ {
				vals[j] = d.u64()
			}
			rec.Vals = vals
		}
		out = append(out, rec)
	}
	if err := d.finish(); err != nil {
		return out, err
	}
	return out, nil
}

// decodeFinalFrame parses the 'F' end-of-run report.
func decodeFinalFrame(p []byte) (*FinalState, error) {
	d := &wireDec{frame: "final", b: p}
	if d.u8() != 'F' {
		return nil, perr("final", "bad frame type")
	}
	f := &FinalState{}
	f.Halted = d.u8() != 0
	f.ExitCode = int64(d.u64())
	f.Fault = mach.Fault(d.u8())
	f.FaultKind = d.u8()
	if f.FaultKind > 2 {
		d.fail("unknown fault kind %d", f.FaultKind)
	}
	f.PC = d.u64()
	f.Instret = d.u64()
	f.ElapsedNs = d.u64()
	f.ResultWord = d.u32()
	nSpaces := d.u32()
	if nSpaces > 256 {
		return nil, perr("final", "implausible space count %d", nSpaces)
	}
	for i := uint32(0); i < nSpaces && d.err == nil; i++ {
		cnt := d.u32()
		if int64(cnt)*8 > int64(d.rem()) {
			return nil, perr("final", "space %d claims %d registers with %d bytes left", i, cnt, d.rem())
		}
		vals := make([]uint64, cnt)
		for j := range vals {
			vals[j] = d.u64()
		}
		f.Spaces = append(f.Spaces, vals)
	}
	outLen := d.u32()
	if int64(outLen) > int64(d.rem()) {
		return nil, perr("final", "stdout claims %d bytes with %d left", outLen, d.rem())
	}
	f.Stdout = append([]byte(nil), d.bytes(int(outLen))...)
	nProf := d.u32()
	if int64(nProf)*20 > int64(d.rem()) {
		return nil, perr("final", "profile claims %d entries with %d bytes left", nProf, d.rem())
	}
	for i := uint32(0); i < nProf && d.err == nil; i++ {
		pe := ProfEntry{PC: d.u64(), Bits: d.u32(), Count: d.u64()}
		f.Profile = append(f.Profile, pe)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return f, nil
}
