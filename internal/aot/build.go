// Package aot compiles the specialized simulator source the core emitter
// produces for one (spec, buildset) pair into a standalone runner binary,
// executes programs through it over a length-prefixed pipe protocol, and —
// the heart of the package — differentially verifies the binary against the
// closure interpreter at retire granularity. It closes the paper's §IV
// loop: the same single specification drives both the in-process
// interpreter and the generated ahead-of-time simulator.
package aot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
)

// abiVersion names the runner protocol + harness contract. It participates
// in the cache key so a protocol change can never reuse a stale binary.
const abiVersion = "aot-v1"

// ErrNoToolchain reports that the go toolchain needed to build runner
// binaries is not on PATH. Callers (tests, sweeps) skip AOT cells with this
// reason rather than failing.
var ErrNoToolchain = errors.New("aot: go toolchain not available on PATH")

// BuildResult describes one built (or cache-hit) runner binary.
type BuildResult struct {
	// BinPath is the runner binary, under the cache directory.
	BinPath string
	// Key is the full hex cache key (SHA-256 of generated source, harness,
	// go.mod, toolchain version, and ABI tag).
	Key string
	// Cached reports whether a verified cached binary was reused.
	Cached bool
}

// RunnerConvFor adapts an ISA ABI convention to the emitter's view.
func RunnerConvFor(c isa.Convention) core.RunnerConv {
	return core.RunnerConv{
		SyscallNum: c.SyscallNum,
		Args:       c.Args,
		Ret:        c.Ret,
		Stack:      c.Stack,
		HeapBase:   c.HeapBase,
		StackTop:   c.StackTop,
	}
}

const runnerGoMod = "module aotrunner\n\ngo 1.24\n"

// manifest records what a cached binary was built from, plus its own hash
// so torn or tampered artifacts are detected before reuse.
type manifest struct {
	BinarySHA256 string `json:"binary_sha256"`
	Key          string `json:"key"`
	GoVersion    string `json:"go_version"`
	Spec         string `json:"spec"`
	Buildset     string `json:"buildset"`
}

var (
	goVersionOnce sync.Once
	goVersionStr  string
	goVersionErr  error
)

// goVersion returns the `go version` string of the toolchain on PATH,
// probing once per process. The toolchain that builds runners is the one on
// PATH, not necessarily the one that built this host binary, so the probe
// asks it directly rather than trusting runtime.Version.
func goVersion() (string, error) {
	goVersionOnce.Do(func() {
		gobin, err := exec.LookPath("go")
		if err != nil {
			goVersionErr = ErrNoToolchain
			return
		}
		out, err := exec.Command(gobin, "version").Output()
		if err != nil {
			goVersionErr = fmt.Errorf("aot: probing go version: %w", err)
			return
		}
		goVersionStr = strings.TrimSpace(string(out))
	})
	return goVersionStr, goVersionErr
}

// inflight is the in-process singleflight state for one cache key: racing
// cells block on done and share the winner's result.
type inflight struct {
	done chan struct{}
	res  *BuildResult
	err  error
}

var (
	buildMu       sync.Mutex
	buildInflight = map[string]*inflight{}
)

// Build returns a runner binary for sim's (spec, buildset) pair, generating
// and compiling it on a cache miss. The cache key covers everything that
// determines the binary: the generated source, the static harness, go.mod,
// the toolchain version, and the protocol ABI tag. Cached binaries are
// verified against their manifest hash before reuse; corruption triggers a
// rebuild, never silent use. Concurrent calls for one key build exactly
// once per process.
func Build(sim *core.Sim, conv core.RunnerConv, cacheDir string, reg *obs.Registry) (*BuildResult, error) {
	gover, err := goVersion()
	if err != nil {
		return nil, err
	}
	src, err := sim.EmitRunner(conv)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	for _, part := range []string{abiVersion, gover, runnerGoMod, runnerHarness, src} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	key := hex.EncodeToString(h.Sum(nil))
	entryDir := filepath.Join(cacheDir, key[:16])

	buildMu.Lock()
	if fl, ok := buildInflight[entryDir]; ok {
		buildMu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	buildInflight[entryDir] = fl
	buildMu.Unlock()

	fl.res, fl.err = buildLocked(sim, src, key, cacheDir, entryDir, gover, reg)
	buildMu.Lock()
	delete(buildInflight, entryDir)
	buildMu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

func buildLocked(sim *core.Sim, src, key, cacheDir, entryDir, gover string, reg *obs.Registry) (*BuildResult, error) {
	binPath := filepath.Join(entryDir, "runner")
	manPath := filepath.Join(entryDir, "manifest.json")

	if ok, corrupt := verifyCached(binPath, manPath, key); ok {
		count(reg, "aot.cache.hit")
		return &BuildResult{BinPath: binPath, Key: key, Cached: true}, nil
	} else if corrupt {
		count(reg, "aot.cache.corrupt")
	}
	count(reg, "aot.cache.miss")

	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return nil, fmt.Errorf("aot: creating cache entry: %w", err)
	}
	tmp, err := os.MkdirTemp(cacheDir, "build-*")
	if err != nil {
		return nil, fmt.Errorf("aot: creating build dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	files := map[string]string{
		"gen.go":     src,
		"harness.go": runnerHarness,
		"go.mod":     runnerGoMod,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			return nil, fmt.Errorf("aot: writing %s: %w", name, err)
		}
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		return nil, ErrNoToolchain
	}
	tmpBin := filepath.Join(tmp, "runner")
	cmd := exec.Command(gobin, "build", "-o", tmpBin, ".")
	cmd.Dir = tmp
	if out, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("aot: go build of generated runner (%s/%s) failed: %w\n%s",
			sim.Spec.Name, sim.BS.Name, err, out)
	}
	count(reg, "aot.build")

	binData, err := os.ReadFile(tmpBin)
	if err != nil {
		return nil, fmt.Errorf("aot: reading built runner: %w", err)
	}
	sum := sha256.Sum256(binData)
	man := manifest{
		BinarySHA256: hex.EncodeToString(sum[:]),
		Key:          key,
		GoVersion:    gover,
		Spec:         sim.Spec.Name,
		Buildset:     sim.BS.Name,
	}
	manData, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return nil, err
	}
	tmpMan := filepath.Join(tmp, "manifest.json")
	if err := os.WriteFile(tmpMan, manData, 0o644); err != nil {
		return nil, fmt.Errorf("aot: writing manifest: %w", err)
	}
	// Binary first, manifest last: a crash in between leaves a manifest-less
	// entry that the next Build treats as a miss, never a torn hit.
	if err := os.Rename(tmpBin, binPath); err != nil {
		return nil, fmt.Errorf("aot: installing runner: %w", err)
	}
	if err := os.Rename(tmpMan, manPath); err != nil {
		return nil, fmt.Errorf("aot: installing manifest: %w", err)
	}
	return &BuildResult{BinPath: binPath, Key: key}, nil
}

// verifyCached reports whether the cached binary at binPath is usable
// (manifest present, key matches, binary hash matches). corrupt is true
// when artifacts exist but fail verification — distinguishing damage from
// a plain cold miss.
func verifyCached(binPath, manPath, key string) (ok, corrupt bool) {
	manData, err := os.ReadFile(manPath)
	if err != nil {
		// Missing manifest with a present binary is a torn install.
		if _, berr := os.Stat(binPath); berr == nil {
			return false, true
		}
		return false, false
	}
	var man manifest
	if json.Unmarshal(manData, &man) != nil || man.Key != key {
		return false, true
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		return false, true
	}
	sum := sha256.Sum256(binData)
	if hex.EncodeToString(sum[:]) != man.BinarySHA256 {
		return false, true
	}
	return true, false
}

// count bumps an obs counter when a registry is attached.
func count(reg *obs.Registry, name string) {
	if reg != nil {
		reg.Counter(name).Inc()
	}
}
