// Package aot compiles the specialized simulator source the core emitter
// produces for one (spec, buildset) pair into a standalone runner binary,
// executes programs through it over a length-prefixed pipe protocol, and —
// the heart of the package — differentially verifies the binary against the
// closure interpreter at retire granularity. It closes the paper's §IV
// loop: the same single specification drives both the in-process
// interpreter and the generated ahead-of-time simulator.
package aot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
)

// abiVersion names the runner protocol + harness contract. It participates
// in the cache key so a protocol change can never reuse a stale binary.
// v2: superblock drivers, batched record frames, plugin exports.
const abiVersion = "aot-v2"

// ErrNoToolchain reports that the go toolchain needed to build runner
// binaries is not on PATH. Callers (tests, sweeps) skip AOT cells with this
// reason rather than failing.
var ErrNoToolchain = errors.New("aot: go toolchain not available on PATH")

// BuildResult describes one built (or cache-hit) runner binary.
type BuildResult struct {
	// BinPath is the runner binary, under the cache directory.
	BinPath string
	// Key is the full hex cache key (SHA-256 of generated source, harness,
	// go.mod, toolchain version, and ABI tag).
	Key string
	// Cached reports whether a verified cached binary was reused.
	Cached bool
}

// RunnerConvFor adapts an ISA ABI convention to the emitter's view.
func RunnerConvFor(c isa.Convention) core.RunnerConv {
	return core.RunnerConv{
		SyscallNum: c.SyscallNum,
		Args:       c.Args,
		Ret:        c.Ret,
		Stack:      c.Stack,
		HeapBase:   c.HeapBase,
		StackTop:   c.StackTop,
	}
}

const runnerGoMod = "module aotrunner\n\ngo 1.24\n"

// manifest records what a cached binary was built from, plus its own hash
// so torn or tampered artifacts are detected before reuse.
type manifest struct {
	BinarySHA256 string `json:"binary_sha256"`
	Key          string `json:"key"`
	GoVersion    string `json:"go_version"`
	GoOS         string `json:"go_os"`
	GoArch       string `json:"go_arch"`
	Spec         string `json:"spec"`
	Buildset     string `json:"buildset"`
}

// toolchain describes the go toolchain on PATH and the platform it targets.
// GOOS/GOARCH participate in the cache key and manifest so a cache directory
// shared across heterogeneous workers (NFS fleets) can never serve a
// wrong-platform binary: a foreign entry lands under a different key, and a
// manifest claiming the local platform for a foreign binary is rejected as
// corrupt.
type toolchain struct {
	Version string
	OS      string
	Arch    string
}

var (
	goProbeOnce sync.Once
	goProbeTC   toolchain
	goProbeErr  error
)

// probeToolchain asks the toolchain on PATH for its version and target
// platform, once per process. The toolchain that builds runners is the one
// on PATH, not necessarily the one that built this host binary, so the probe
// asks it directly rather than trusting runtime.Version/GOOS/GOARCH.
func probeToolchain() (toolchain, error) {
	goProbeOnce.Do(func() {
		gobin, err := exec.LookPath("go")
		if err != nil {
			goProbeErr = ErrNoToolchain
			return
		}
		out, err := exec.Command(gobin, "version").Output()
		if err != nil {
			goProbeErr = fmt.Errorf("aot: probing go version: %w", err)
			return
		}
		goProbeTC.Version = strings.TrimSpace(string(out))
		out, err = exec.Command(gobin, "env", "GOOS", "GOARCH").Output()
		if err != nil {
			goProbeErr = fmt.Errorf("aot: probing go platform: %w", err)
			return
		}
		fields := strings.Fields(string(out))
		if len(fields) != 2 {
			goProbeErr = fmt.Errorf("aot: unexpected go env output %q", out)
			return
		}
		goProbeTC.OS, goProbeTC.Arch = fields[0], fields[1]
	})
	return goProbeTC, goProbeErr
}

// inflight is the in-process singleflight state for one cache key: racing
// cells block on done and share the winner's result.
type inflight struct {
	done chan struct{}
	res  *BuildResult
	err  error
}

var (
	buildMu       sync.Mutex
	buildInflight = map[string]*inflight{}
)

// Build returns a runner binary for sim's (spec, buildset) pair, generating
// and compiling it on a cache miss. The cache key covers everything that
// determines the binary: the generated source, the static harness, go.mod,
// the toolchain version, and the protocol ABI tag. Cached binaries are
// verified against their manifest hash before reuse; corruption triggers a
// rebuild, never silent use. Concurrent calls for one key build exactly
// once per process.
func Build(sim *core.Sim, conv core.RunnerConv, cacheDir string, reg *obs.Registry) (*BuildResult, error) {
	tc, err := probeToolchain()
	if err != nil {
		return nil, err
	}
	src, err := sim.EmitRunner(conv)
	if err != nil {
		return nil, err
	}
	key := cacheKey(tc, src)
	entryDir := filepath.Join(cacheDir, key[:16])

	buildMu.Lock()
	if fl, ok := buildInflight[entryDir]; ok {
		buildMu.Unlock()
		<-fl.done
		return fl.res, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	buildInflight[entryDir] = fl
	buildMu.Unlock()

	fl.res, fl.err = buildLocked(sim, src, key, cacheDir, entryDir, tc, reg)
	buildMu.Lock()
	delete(buildInflight, entryDir)
	buildMu.Unlock()
	close(fl.done)
	return fl.res, fl.err
}

// cacheKey covers everything that determines the binary: the ABI tag, the
// toolchain version and target platform, go.mod, the static harness, and
// the generated source.
func cacheKey(tc toolchain, src string) string {
	h := sha256.New()
	for _, part := range []string{abiVersion, tc.Version, tc.OS, tc.Arch, runnerGoMod, runnerHarness, src} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func buildLocked(sim *core.Sim, src, key, cacheDir, entryDir string, tc toolchain, reg *obs.Registry) (*BuildResult, error) {
	binPath := filepath.Join(entryDir, "runner")
	manPath := filepath.Join(entryDir, "manifest.json")

	if ok, corrupt := verifyCached(binPath, manPath, key, tc); ok {
		count(reg, "aot.cache.hit")
		return &BuildResult{BinPath: binPath, Key: key, Cached: true}, nil
	} else if corrupt {
		count(reg, "aot.cache.corrupt")
	}
	count(reg, "aot.cache.miss")

	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return nil, fmt.Errorf("aot: creating cache entry: %w", err)
	}
	tmp, err := os.MkdirTemp(cacheDir, "build-*")
	if err != nil {
		return nil, fmt.Errorf("aot: creating build dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	files := map[string]string{
		"gen.go":     src,
		"harness.go": runnerHarness,
		"go.mod":     runnerGoMod,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(content), 0o644); err != nil {
			return nil, fmt.Errorf("aot: writing %s: %w", name, err)
		}
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		return nil, ErrNoToolchain
	}
	tmpBin := filepath.Join(tmp, "runner")
	cmd := exec.Command(gobin, "build", "-o", tmpBin, ".")
	cmd.Dir = tmp
	if out, err := cmd.CombinedOutput(); err != nil {
		return nil, fmt.Errorf("aot: go build of generated runner (%s/%s) failed: %w\n%s",
			sim.Spec.Name, sim.BS.Name, err, out)
	}
	count(reg, "aot.build")

	binData, err := os.ReadFile(tmpBin)
	if err != nil {
		return nil, fmt.Errorf("aot: reading built runner: %w", err)
	}
	man := newManifest(binData, key, tc, sim)
	if err := installArtifact(tmp, tmpBin, binPath, manPath, man); err != nil {
		return nil, err
	}
	return &BuildResult{BinPath: binPath, Key: key}, nil
}

// newManifest describes a freshly built artifact.
func newManifest(binData []byte, key string, tc toolchain, sim *core.Sim) manifest {
	sum := sha256.Sum256(binData)
	return manifest{
		BinarySHA256: hex.EncodeToString(sum[:]),
		Key:          key,
		GoVersion:    tc.Version,
		GoOS:         tc.OS,
		GoArch:       tc.Arch,
		Spec:         sim.Spec.Name,
		Buildset:     sim.BS.Name,
	}
}

// installArtifact moves a built artifact and its manifest into the cache
// entry. Binary first, manifest last: a crash in between leaves a
// manifest-less entry that the next build treats as a miss, never a torn
// hit.
func installArtifact(tmp, tmpBin, binPath, manPath string, man manifest) error {
	manData, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	tmpMan := filepath.Join(tmp, filepath.Base(manPath))
	if err := os.WriteFile(tmpMan, manData, 0o644); err != nil {
		return fmt.Errorf("aot: writing manifest: %w", err)
	}
	if err := os.Rename(tmpBin, binPath); err != nil {
		return fmt.Errorf("aot: installing artifact: %w", err)
	}
	if err := os.Rename(tmpMan, manPath); err != nil {
		return fmt.Errorf("aot: installing manifest: %w", err)
	}
	return nil
}

// verifyCached reports whether the cached binary at binPath is usable
// (manifest present, key and platform match, binary hash matches). corrupt
// is true when artifacts exist but fail verification — distinguishing damage
// from a plain cold miss.
func verifyCached(binPath, manPath, key string, tc toolchain) (ok, corrupt bool) {
	manData, err := os.ReadFile(manPath)
	if err != nil {
		// Missing manifest with a present binary is a torn install.
		if _, berr := os.Stat(binPath); berr == nil {
			return false, true
		}
		return false, false
	}
	var man manifest
	if json.Unmarshal(manData, &man) != nil || man.Key != key {
		return false, true
	}
	if man.GoOS != tc.OS || man.GoArch != tc.Arch {
		// A wrong-platform binary under our key can only be a spoofed or
		// damaged manifest; rebuild rather than ever exec-ing it.
		return false, true
	}
	binData, err := os.ReadFile(binPath)
	if err != nil {
		return false, true
	}
	sum := sha256.Sum256(binData)
	if hex.EncodeToString(sum[:]) != man.BinarySHA256 {
		return false, true
	}
	return true, false
}

// count bumps an obs counter when a registry is attached.
func count(reg *obs.Registry, name string) {
	if reg != nil {
		reg.Counter(name).Inc()
	}
}
