// Package asm implements an assembler and disassembler derived from a LIS
// specification: the instruction mnemonics, operand syntax, and encodings
// all come from the spec's `asm` templates, so the single-specification
// principle extends to the tooling — no per-ISA assembler tables exist
// anywhere in this repository.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"singlespec/internal/isa"
	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// tpart is one element of a compiled asm template: a literal or a field
// placeholder.
type tpart struct {
	lit   string
	field *lis.FmtField
	// pcrel placeholders encode (target - (pc + bias)) >> shift.
	pcrel       bool
	shift, bias int
}

type pattern struct {
	in       *lis.Instr
	mnemonic string
	parts    []tpart // operand portion (after the mnemonic)
	// defaults holds encoding bits for fields that are neither matched nor
	// templated (e.g. arm32's cond field defaulting to AL).
	defaults uint64
}

// Assembler assembles text for one ISA.
type Assembler struct {
	isa      *isa.ISA
	patterns map[string][]*pattern // by mnemonic
	byID     []*pattern            // by instruction ID (disassembly)
}

// New compiles the asm templates of the ISA's spec.
func New(i *isa.ISA) (*Assembler, error) {
	a := &Assembler{isa: i, patterns: make(map[string][]*pattern), byID: make([]*pattern, len(i.Spec.Instrs))}
	for _, in := range i.Spec.Instrs {
		if in.Asm == "" {
			continue
		}
		p, err := compileTemplate(in)
		if err != nil {
			return nil, err
		}
		a.patterns[p.mnemonic] = append(a.patterns[p.mnemonic], p)
		a.byID[in.ID] = p
	}
	// More specific patterns (more literal text) first, so e.g. the
	// register form wins over the literal form only when it matches.
	for _, ps := range a.patterns {
		sort.SliceStable(ps, func(x, y int) bool {
			return litLen(ps[x]) > litLen(ps[y])
		})
	}
	return a, nil
}

func litLen(p *pattern) int {
	n := 0
	for _, t := range p.parts {
		n += len(t.lit)
	}
	return n
}

func compileTemplate(in *lis.Instr) (*pattern, error) {
	tpl := in.Asm
	sp := strings.IndexByte(tpl, ' ')
	p := &pattern{in: in}
	rest := ""
	if sp < 0 {
		p.mnemonic = tpl
	} else {
		p.mnemonic = tpl[:sp]
		rest = strings.TrimSpace(tpl[sp+1:])
	}
	for i := 0; i < len(rest); {
		if rest[i] != '%' {
			j := i
			for j < len(rest) && rest[j] != '%' {
				j++
			}
			p.parts = append(p.parts, tpart{lit: rest[i:j]})
			i = j
			continue
		}
		i++
		j := i
		for j < len(rest) && (isAlnum(rest[j]) || rest[j] == '_') {
			j++
		}
		name := rest[i:j]
		ff := in.Format.Field(name)
		if ff == nil {
			return nil, fmt.Errorf("asm template for %s: unknown encoding field %%%s", in.Name, name)
		}
		part := tpart{field: ff}
		i = j
		// Optional :pcrel(shift,bias) modifier.
		if strings.HasPrefix(rest[i:], ":pcrel(") {
			i += len(":pcrel(")
			end := strings.IndexByte(rest[i:], ')')
			if end < 0 {
				return nil, fmt.Errorf("asm template for %s: unterminated pcrel modifier", in.Name)
			}
			args := strings.Split(rest[i:i+end], ",")
			if len(args) != 2 {
				return nil, fmt.Errorf("asm template for %s: pcrel wants (shift,bias)", in.Name)
			}
			sh, err1 := strconv.Atoi(strings.TrimSpace(args[0]))
			bi, err2 := strconv.Atoi(strings.TrimSpace(args[1]))
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("asm template for %s: bad pcrel arguments", in.Name)
			}
			part.pcrel, part.shift, part.bias = true, sh, bi
			i += end + 1
		}
		p.parts = append(p.parts, part)
	}
	placed := make(map[*lis.FmtField]bool)
	for _, t := range p.parts {
		if t.field != nil {
			placed[t.field] = true
		}
	}
	for _, ff := range in.Format.Fields {
		fieldMask := (uint64(1)<<uint(ff.Width()) - 1) << uint(ff.Lo)
		if ff.Default != 0 && !placed[ff] && in.Mask&fieldMask == 0 {
			p.defaults |= (ff.Default & (1<<uint(ff.Width()) - 1)) << uint(ff.Lo)
		}
	}
	return p, nil
}

var asmFuncs = []string{"hi", "lo", "ha", "byte0", "byte1", "byte2", "byte3"}

// endsWithAsmFunc reports whether the text scanned so far ends in an
// assembler helper-function name.
func endsWithAsmFunc(s string) bool {
	s = strings.TrimSpace(s)
	for _, f := range asmFuncs {
		if strings.HasSuffix(s, f) {
			// The character before must not extend the identifier.
			if len(s) == len(f) || !isAlnum(s[len(s)-len(f)-1]) {
				return true
			}
		}
	}
	return false
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// Program is the result of assembly: loadable segments plus symbols.
type Program struct {
	Entry    uint64
	Segments []Segment
	Symbols  map[string]uint64
}

// Segment is a contiguous run of bytes at an address.
type Segment struct {
	Name string // ".text" or ".data"
	Addr uint64
	Data []byte
}

// LoadInto copies the program into machine memory and sets the entry PC.
func (p *Program) LoadInto(m *mach.Machine) {
	for _, s := range p.Segments {
		m.Mem.WriteBytes(s.Addr, s.Data)
	}
	m.PC = p.Entry
}

// ReloadData rewrites only the data segments (including zeroed .space
// regions) and resets the PC — enough to re-run a program whose code is
// already loaded, without invalidating code-translation caches.
func (p *Program) ReloadData(m *mach.Machine) {
	for _, s := range p.Segments {
		if s.Name != ".text" {
			m.Mem.WriteBytes(s.Addr, s.Data)
		}
	}
	m.PC = p.Entry
}

// asmError is a diagnostic with a line number.
func asmError(file string, line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", file, line, fmt.Sprintf(format, args...))
}

type section struct {
	name   string
	base   uint64
	cursor uint64
	data   []byte
}

func (s *section) addr() uint64 { return s.base + s.cursor }

type asmCtx struct {
	a        *Assembler
	file     string
	symbols  map[string]uint64
	sections map[string]*section
	cur      *section
	pass     int
	errs     []string
}

// Assemble translates assembly text into a Program. Directives:
// .text/.data (sections), .org, .align, .byte/.half/.word/.quad, .ascii,
// .asciz, .space, .equ. Labels end with ':'; `_start` sets the entry point.
func (a *Assembler) Assemble(file, src string) (*Program, error) {
	symbols := make(map[string]uint64)
	var prog *Program
	for pass := 1; pass <= 2; pass++ {
		ctx := &asmCtx{
			a: a, file: file, symbols: symbols, pass: pass,
			sections: map[string]*section{
				".text": {name: ".text", base: a.isa.Conv.CodeBase},
				".data": {name: ".data", base: a.isa.Conv.DataBase},
			},
		}
		ctx.cur = ctx.sections[".text"]
		for lineNo, raw := range strings.Split(src, "\n") {
			if err := ctx.line(lineNo+1, raw); err != nil {
				ctx.errs = append(ctx.errs, err.Error())
				if len(ctx.errs) > 20 {
					break
				}
			}
		}
		if len(ctx.errs) > 0 {
			return nil, fmt.Errorf("%s", strings.Join(ctx.errs, "\n"))
		}
		if pass == 2 {
			prog = &Program{Entry: a.isa.Conv.CodeBase, Symbols: symbols}
			if e, ok := symbols["_start"]; ok {
				prog.Entry = e
			}
			for _, name := range []string{".text", ".data"} {
				s := ctx.sections[name]
				if len(s.data) > 0 {
					prog.Segments = append(prog.Segments, Segment{Name: name, Addr: s.base, Data: s.data})
				}
			}
		}
	}
	return prog, nil
}

func (c *asmCtx) line(no int, raw string) error {
	// Strip comments (';' or '//' or '#' at start of comment).
	if i := strings.Index(raw, "//"); i >= 0 {
		raw = raw[:i]
	}
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly several on one line).
	for {
		i := strings.IndexByte(s, ':')
		if i <= 0 || strings.ContainsAny(s[:i], " \t,()[]#") {
			break
		}
		name := s[:i]
		if c.pass == 1 {
			if _, dup := c.symbols[name]; dup {
				return asmError(c.file, no, "duplicate label %q", name)
			}
			c.symbols[name] = c.cur.addr()
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if s[0] == '.' {
		return c.directive(no, s)
	}
	return c.instruction(no, s)
}

func (c *asmCtx) emit(b []byte) {
	c.cur.data = append(c.cur.data, b...)
	c.cur.cursor += uint64(len(b))
}

func (c *asmCtx) emitInt(v uint64, size int) {
	b := make([]byte, size)
	if c.a.isa.Spec.Endian == mach.LittleEndian {
		for i := 0; i < size; i++ {
			b[i] = byte(v >> (8 * i))
		}
	} else {
		for i := 0; i < size; i++ {
			b[size-1-i] = byte(v >> (8 * i))
		}
	}
	c.emit(b)
}

func (c *asmCtx) directive(no int, s string) error {
	fields := strings.Fields(s)
	dir := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(s, dir))
	switch dir {
	case ".text", ".data":
		c.cur = c.sections[dir]
		return nil
	case ".org":
		v, err := c.evalExpr(no, rest)
		if err != nil {
			return err
		}
		if v < c.cur.addr() {
			return asmError(c.file, no, ".org moves backwards")
		}
		pad := v - c.cur.addr()
		c.emit(make([]byte, pad))
		return nil
	case ".align":
		v, err := c.evalExpr(no, rest)
		if err != nil {
			return err
		}
		if v == 0 || v&(v-1) != 0 {
			return asmError(c.file, no, ".align wants a power of two")
		}
		pad := (v - c.cur.addr()%v) % v
		c.emit(make([]byte, pad))
		return nil
	case ".byte", ".half", ".word", ".quad":
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[dir]
		for _, part := range strings.Split(rest, ",") {
			v, err := c.evalExpr(no, strings.TrimSpace(part))
			if err != nil {
				return err
			}
			c.emitInt(v, size)
		}
		return nil
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return asmError(c.file, no, "bad string literal: %v", err)
		}
		c.emit([]byte(str))
		if dir == ".asciz" {
			c.emit([]byte{0})
		}
		return nil
	case ".space":
		v, err := c.evalExpr(no, rest)
		if err != nil {
			return err
		}
		c.emit(make([]byte, v))
		return nil
	case ".equ":
		i := strings.IndexByte(rest, ',')
		if i < 0 {
			return asmError(c.file, no, ".equ wants name, value")
		}
		name := strings.TrimSpace(rest[:i])
		v, err := c.evalExpr(no, strings.TrimSpace(rest[i+1:]))
		if err != nil {
			return err
		}
		if c.pass == 1 {
			c.symbols[name] = v
		}
		return nil
	}
	return asmError(c.file, no, "unknown directive %s", dir)
}

func (c *asmCtx) instruction(no int, s string) error {
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn = s[:i]
		rest = strings.TrimSpace(s[i+1:])
	}
	pats := c.a.patterns[mn]
	suffix := -1 // index into AsmSuffix.Defs forced by a mnemonic suffix
	if len(pats) == 0 {
		if sx := c.a.isa.Spec.AsmSuffix; sx != nil {
			for di, d := range sx.Defs {
				if d.Name == "" || !strings.HasSuffix(mn, d.Name) {
					continue
				}
				base := mn[:len(mn)-len(d.Name)]
				if ps := c.a.patterns[base]; len(ps) > 0 {
					pats, suffix = ps, di
					break
				}
			}
		}
	}
	if len(pats) == 0 {
		return asmError(c.file, no, "unknown mnemonic %q", mn)
	}
	var firstErr error
	for _, p := range pats {
		word, err := c.match(no, p, rest)
		if err != nil {
			// Prefer value errors (out of range, undefined symbol) over
			// structural mismatches from patterns that never applied.
			if firstErr == nil || !strings.Contains(err.Error(), "expected") {
				firstErr = err
			}
			continue
		}
		if suffix >= 0 {
			sx := c.a.isa.Spec.AsmSuffix
			ff := p.in.Format.Field(sx.Field)
			if ff == nil {
				return asmError(c.file, no, "instruction %s has no %s field for a condition suffix", p.in.Name, sx.Field)
			}
			fieldMask := (uint64(1)<<uint(ff.Width()) - 1) << uint(ff.Lo)
			word = word&^fieldMask | sx.Defs[suffix].Val<<uint(ff.Lo)
		}
		c.emitInt(word, c.a.isa.Spec.InstrSize)
		return nil
	}
	return firstErr
}

// match attempts to encode one instruction from its operand text.
func (c *asmCtx) match(no int, p *pattern, operands string) (uint64, error) {
	word := p.in.Value | p.defaults
	pos := 0
	skipWS := func() {
		for pos < len(operands) && (operands[pos] == ' ' || operands[pos] == '\t') {
			pos++
		}
	}
	for _, part := range p.parts {
		if part.lit != "" {
			for _, ch := range []byte(part.lit) {
				if ch == ' ' {
					skipWS()
					continue
				}
				skipWS()
				if pos >= len(operands) || operands[pos] != ch {
					return 0, asmError(c.file, no, "expected %q in operands of %s", string(ch), p.in.Name)
				}
				pos++
			}
			continue
		}
		skipWS()
		start := pos
		// An operand expression extends to the next structural character.
		// A '(' belongs to the expression only when it follows a known
		// assembler function name (hi/lo/ha/byteN); otherwise it is operand
		// syntax, as in "16(r2)".
		for pos < len(operands) {
			ch := operands[pos]
			if ch == ',' || ch == ')' || ch == ']' {
				break
			}
			if ch == '(' {
				if !endsWithAsmFunc(operands[start:pos]) {
					break
				}
				depth := 1
				pos++
				for pos < len(operands) && depth > 0 {
					switch operands[pos] {
					case '(':
						depth++
					case ')':
						depth--
					}
					pos++
				}
				continue
			}
			pos++
		}
		expr := strings.TrimSpace(operands[start:pos])
		if expr == "" {
			return 0, asmError(c.file, no, "missing operand for %%%s of %s", part.field.Name, p.in.Name)
		}
		v, err := c.evalExpr(no, expr)
		if err != nil {
			return 0, err
		}
		enc, err := c.encodeField(no, p, part, v)
		if err != nil {
			return 0, err
		}
		word |= enc << uint(part.field.Lo)
	}
	skipWS()
	if pos != len(operands) {
		return 0, asmError(c.file, no, "trailing operand text %q for %s", operands[pos:], p.in.Name)
	}
	return word, nil
}

func (c *asmCtx) encodeField(no int, p *pattern, part tpart, v uint64) (uint64, error) {
	ff := part.field
	w := uint(ff.Width())
	if part.pcrel {
		target := int64(v)
		rel := target - int64(c.cur.addr()) - int64(part.bias)
		if rel&(1<<uint(part.shift)-1) != 0 {
			return 0, asmError(c.file, no, "misaligned branch target for %s", p.in.Name)
		}
		rel >>= uint(part.shift)
		if c.pass == 2 && (rel >= 1<<(w-1) || rel < -(1<<(w-1))) {
			return 0, asmError(c.file, no, "branch target out of range for %s", p.in.Name)
		}
		return uint64(rel) & (1<<w - 1), nil
	}
	if ff.Signed {
		sv := int64(v)
		if c.pass == 2 && (sv >= 1<<(w-1) || sv < -(1<<(w-1))) {
			return 0, asmError(c.file, no, "value %d out of range for %d-bit signed field %s", sv, w, ff.Name)
		}
		return v & (1<<w - 1), nil
	}
	if c.pass == 2 && v >= 1<<w {
		return 0, asmError(c.file, no, "value %d out of range for %d-bit field %s", v, w, ff.Name)
	}
	return v & (1<<w - 1), nil
}

// evalExpr evaluates an operand expression: numbers, symbols, sym+N/sym-N,
// unary '-' and '#' prefix, and the helper functions hi(x), lo(x), ha(x),
// byte0..byte3(x).
func (c *asmCtx) evalExpr(no int, s string) (uint64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	if s == "" {
		return 0, asmError(c.file, no, "empty expression")
	}
	// Function call forms.
	if i := strings.IndexByte(s, '('); i > 0 && strings.HasSuffix(s, ")") {
		fn := s[:i]
		inner, err := c.evalExpr(no, s[i+1:len(s)-1])
		if err != nil {
			return 0, err
		}
		switch fn {
		case "hi":
			return inner >> 16, nil
		case "lo":
			// Sign-extended so it pairs with ha() in signed 16-bit fields.
			return uint64(int64(int16(inner))), nil
		case "ha":
			// Sign-extended adjusted high half: pairs with a sign-extended
			// lo() so `ldah/lda` and `addis/addi` reconstruct 32-bit values.
			return uint64(int64(int16((inner + 0x8000) >> 16))), nil
		case "byte0":
			return inner & 0xff, nil
		case "byte1":
			return inner >> 8 & 0xff, nil
		case "byte2":
			return inner >> 16 & 0xff, nil
		case "byte3":
			return inner >> 24 & 0xff, nil
		}
		return 0, asmError(c.file, no, "unknown assembler function %q", fn)
	}
	// sym+N / sym-N (split at the last +/- that is not the leading sign).
	for i := len(s) - 1; i > 0; i-- {
		if s[i] == '+' || s[i] == '-' {
			l, err1 := c.evalExpr(no, s[:i])
			r, err2 := c.evalExpr(no, s[i+1:])
			if err1 != nil || err2 != nil {
				break
			}
			if s[i] == '+' {
				return l + r, nil
			}
			return l - r, nil
		}
	}
	if s[0] == '-' {
		v, err := c.evalExpr(no, s[1:])
		return -v, err
	}
	if s[0] >= '0' && s[0] <= '9' {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return 0, asmError(c.file, no, "bad number %q", s)
		}
		return v, nil
	}
	if v, ok := c.symbols[s]; ok {
		return v, nil
	}
	if c.pass == 1 {
		return 0, nil // forward reference; resolved in pass 2
	}
	return 0, asmError(c.file, no, "undefined symbol %q", s)
}

// Disassemble renders one instruction word using the spec's asm template.
func (a *Assembler) Disassemble(word uint32, pc uint64) string {
	for _, in := range a.isa.Spec.Instrs {
		if uint64(word)&in.Mask != in.Value {
			continue
		}
		p := a.byID[in.ID]
		if p == nil {
			return in.Name
		}
		var b strings.Builder
		b.WriteString(p.mnemonic)
		if sx := a.isa.Spec.AsmSuffix; sx != nil {
			if ff := in.Format.Field(sx.Field); ff != nil {
				raw := uint64(word) >> uint(ff.Lo) & (1<<uint(ff.Width()) - 1)
				if raw != ff.Default {
					for _, d := range sx.Defs {
						if d.Val == raw {
							b.WriteString(d.Name)
							break
						}
					}
				}
			}
		}
		if len(p.parts) > 0 {
			b.WriteByte(' ')
		}
		for _, part := range p.parts {
			if part.lit != "" {
				b.WriteString(part.lit)
				continue
			}
			ff := part.field
			raw := uint64(word) >> uint(ff.Lo) & (1<<uint(ff.Width()) - 1)
			switch {
			case part.pcrel:
				rel := signExtend(raw, ff.Width()) << uint(part.shift)
				fmt.Fprintf(&b, "%#x", uint64(int64(pc)+int64(part.bias)+rel))
			case ff.Signed:
				fmt.Fprintf(&b, "%d", signExtend(raw, ff.Width()))
			default:
				fmt.Fprintf(&b, "%d", raw)
			}
		}
		return b.String()
	}
	return fmt.Sprintf(".word %#08x", word)
}

func signExtend(v uint64, w int) int64 {
	sh := uint(64 - w)
	return int64(v<<sh) >> sh
}
