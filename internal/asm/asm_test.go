package asm

import (
	"strings"
	"testing"

	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/sysemu"
)

// Per-ISA validation programs: each computes sum(1..10), doubles it via a
// function call, round-trips the result through memory, prints "OK\n", and
// exits with (loaded - 110), i.e. 0 on success.

const alphaProg = `
.text
_start:
    bis r31, r31, r1
    addq r31, 10, r2
loop:
    addq r1, r2, r1
    subq r2, 1, r2
    bne r2, loop
    bis r1, r1, r16
    bsr r26, double
    bis r0, r0, r1
    ldah r3, ha(val)(r31)
    lda r3, lo(val)(r3)
    stq r1, 0(r3)
    ldq r4, 0(r3)
    addq r31, 2, r0        // SysWrite
    addq r31, 1, r16       // fd
    ldah r17, ha(msg)(r31)
    lda r17, lo(msg)(r17)
    addq r31, 3, r18
    callsys
    addq r31, 1, r0        // SysExit
    subq r4, 110, r16
    callsys

double:
    addq r16, r16, r0
    ret r31, (r26)

.data
msg: .ascii "OK\n"
.align 8
val: .quad 0
`

const armProg = `
.text
_start:
    mov r1, #0, 0
    mov r2, #10, 0
loop:
    add r1, r1, r2, 0, 0
    sub r2, r2, #1, 0
    cmp r2, #0, 0
    bne loop
    mov r0, r1, 0, 0
    bl double
    mov r5, r0, 0, 0
    mov r3, #byte2(val), 8
    orr r3, r3, #byte1(val), 12
    orr r3, r3, #byte0(val), 0
    str r5, [r3, #0]
    ldr r4, [r3, #0]
    mov r7, #2, 0          // SysWrite
    mov r0, #1, 0
    mov r1, #byte2(msg), 8
    orr r1, r1, #byte1(msg), 12
    orr r1, r1, #byte0(msg), 0
    mov r2, #3, 0
    swi
    mov r7, #1, 0          // SysExit
    sub r0, r4, #110, 0
    swi

double:
    add r0, r0, r0, 0, 0
    bx r14

.data
msg: .ascii "OK\n"
.align 4
val: .word 0
`

const ppcProg = `
.text
_start:
    addi r10, r0, 0
    addi r11, r0, 10
loop:
    add r10, r10, r11
    addi r11, r11, -1
    cmpwi 0, r11, 0
    bf 2, loop
    addi r3, r10, 0
    bl double
    addi r10, r3, 0
    addis r9, r0, ha(val)
    addi r9, r9, lo(val)
    stw r10, 0(r9)
    lwz r12, 0(r9)
    addi r0, r0, 2         // SysWrite
    addi r3, r0, 1
    addis r4, r0, ha(msg)
    addi r4, r4, lo(msg)
    addi r5, r0, 3
    sc
    addi r0, r0, 1         // SysExit
    addi r3, r12, -110
    sc

double:
    add r3, r3, r3
    blr

.data
msg: .ascii "OK\n"
.align 4
val: .word 0
`

// Progs maps ISA name to its validation program (shared with other test
// packages through NewForTest).
var progs = map[string]string{
	"alpha64": alphaProg,
	"arm32":   armProg,
	"ppc32":   ppcProg,
}

// ValidationProgram exposes the per-ISA validation program source for other
// packages' tests.
func ValidationProgram(name string) string { return progs[name] }

func mustAsm(t *testing.T, name string) (*isa.ISA, *Program) {
	t.Helper()
	i, err := isa.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(i)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := a.Assemble(name+".s", progs[name])
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return i, prog
}

func runProgram(t *testing.T, i *isa.ISA, prog *Program, buildset string) (*sysemu.Emulator, int) {
	t.Helper()
	sim, err := core.Synthesize(i.Spec, buildset, core.Options{})
	if err != nil {
		t.Fatalf("synthesize %s/%s: %v", i.Name, buildset, err)
	}
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	x := sim.NewExec(m)
	x.Run(1_000_000)
	if !m.Halted {
		t.Fatalf("%s/%s: program did not halt", i.Name, buildset)
	}
	return emu, m.ExitCode
}

func TestValidationProgramsRun(t *testing.T) {
	for _, name := range isa.Names() {
		t.Run(name, func(t *testing.T) {
			i, prog := mustAsm(t, name)
			emu, code := runProgram(t, i, prog, "one_all")
			if code != 0 {
				t.Errorf("exit code = %d, want 0", code)
			}
			if got := emu.Stdout.String(); got != "OK\n" {
				t.Errorf("stdout = %q, want OK", got)
			}
		})
	}
}

func TestValidationProgramsAcrossAllInterfaces(t *testing.T) {
	// The same program must behave identically through every derived
	// interface (§V-D validation).
	for _, name := range isa.Names() {
		i, prog := mustAsm(t, name)
		for _, bs := range isa.StdBuildsets {
			t.Run(name+"/"+bs, func(t *testing.T) {
				emu, code := runProgram(t, i, prog, bs)
				if code != 0 {
					t.Errorf("exit code = %d, want 0", code)
				}
				if got := emu.Stdout.String(); got != "OK\n" {
					t.Errorf("stdout = %q", got)
				}
			})
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Disassembling the text segment and reassembling each line must
	// reproduce the same encodings (branch targets become absolute).
	for _, name := range isa.Names() {
		t.Run(name, func(t *testing.T) {
			i, prog := mustAsm(t, name)
			a, _ := New(i)
			text := prog.Segments[0]
			for off := 0; off+4 <= len(text.Data); off += 4 {
				pc := text.Addr + uint64(off)
				var word uint32
				if i.Spec.Endian == 0 { // little
					word = uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
						uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24
				} else {
					word = uint32(text.Data[off+3]) | uint32(text.Data[off+2])<<8 |
						uint32(text.Data[off+1])<<16 | uint32(text.Data[off])<<24
				}
				dis := a.Disassemble(word, pc)
				if strings.HasPrefix(dis, ".word") {
					t.Fatalf("%s@%#x: did not disassemble (%#x)", name, pc, word)
				}
				prog2, err := a.Assemble("rt.s", ".org "+hex(pc)+"\n"+dis+"\n")
				if err != nil {
					t.Fatalf("%s@%#x: reassemble %q: %v", name, pc, dis, err)
				}
				data := prog2.Segments[0].Data
				got := data[len(data)-4:]
				want := text.Data[off : off+4]
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("%s@%#x: %q reassembled to % x, want % x", name, pc, dis, got, want)
					}
				}
			}
		})
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 18)
	out = append(out, '0', 'x')
	started := false
	for sh := 60; sh >= 0; sh -= 4 {
		d := v >> uint(sh) & 0xf
		if d != 0 || started || sh == 0 {
			out = append(out, digits[d])
			started = true
		}
	}
	return string(out)
}

func TestARMConditionSuffixes(t *testing.T) {
	i, _ := mustAsm(t, "arm32")
	a, _ := New(i)
	prog, err := a.Assemble("c.s", "addeq r1, r2, r3, 0, 0\naddal r1, r2, r3, 0, 0\nadd r1, r2, r3, 0, 0\n")
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Segments[0].Data
	w0 := uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	w1 := uint32(d[4]) | uint32(d[5])<<8 | uint32(d[6])<<16 | uint32(d[7])<<24
	w2 := uint32(d[8]) | uint32(d[9])<<8 | uint32(d[10])<<16 | uint32(d[11])<<24
	if w0>>28 != 0 {
		t.Errorf("addeq cond = %d", w0>>28)
	}
	if w1>>28 != 14 || w2>>28 != 14 {
		t.Errorf("addal/add cond = %d/%d, want 14", w1>>28, w2>>28)
	}
	if dis := a.Disassemble(w0, 0x1000); !strings.HasPrefix(dis, "addeq") {
		t.Errorf("disassembled %q", dis)
	}
}

func TestPredicatedExecution(t *testing.T) {
	// cmp sets flags; addeq executes only when equal.
	src := `
_start:
    mov r1, #5, 0
    cmp r1, #5, 0
    mov r2, #0, 0
    addeq r2, r2, #1, 0    // taken: r2 = 1
    cmp r1, #6, 0
    addeq r2, r2, #8, 0    // nullified
    mov r7, #1, 0
    mov r0, r2, 0, 0
    swi
`
	i := isatest.Load(t, "arm32")
	a, _ := New(i)
	prog, err := a.Assemble("p.s", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []string{"one_all", "block_min", "step_all"} {
		_, code := runProgram(t, i, prog, bs)
		if code != 1 {
			t.Errorf("%s: exit = %d, want 1 (predication broken)", bs, code)
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, _ := New(i)
	cases := []struct {
		src, want string
	}{
		{"frobnicate r1, r2", "unknown mnemonic"},
		{"addq r1, 999, r3", "out of range"},
		{"ldq r1, nosuch(r2)", "undefined symbol"},
		{"x: bis r31,r31,r1\nx: bis r31,r31,r1", "duplicate label"},
		{".bogus 3", "unknown directive"},
		{".align 3", "power of two"},
		{"ldq r1, 40000(r2)", "out of range"},
		{"beq r1, 3", "misaligned"},
	}
	for _, tc := range cases {
		_, err := a.Assemble("e.s", tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestDirectives(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, _ := New(i)
	prog, err := a.Assemble("d.s", `
.equ MAGIC, 0x1234
.data
b: .byte 1, 2, 3
.align 4
w: .word MAGIC
q: .quad MAGIC+1
s: .asciz "hi"
sp: .space 5
end:
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Symbols["MAGIC"] != 0x1234 {
		t.Errorf("MAGIC = %#x", prog.Symbols["MAGIC"])
	}
	data := prog.Segments[0].Data
	if data[0] != 1 || data[1] != 2 || data[2] != 3 {
		t.Errorf("bytes: % x", data[:3])
	}
	if prog.Symbols["w"] != i.Conv.DataBase+4 {
		t.Errorf("alignment: w at %#x", prog.Symbols["w"])
	}
	// little-endian word
	if data[4] != 0x34 || data[5] != 0x12 {
		t.Errorf("word bytes: % x", data[4:8])
	}
	if got := prog.Symbols["end"] - prog.Symbols["sp"]; got != 5 {
		t.Errorf(".space advanced %d", got)
	}
	if s := prog.Symbols["s"]; data[s-i.Conv.DataBase] != 'h' || data[s-i.Conv.DataBase+2] != 0 {
		t.Errorf("asciz content wrong")
	}
}

func TestBigEndianDirectives(t *testing.T) {
	i := isatest.Load(t, "ppc32")
	a, _ := New(i)
	prog, err := a.Assemble("d.s", ".data\nw: .word 0x11223344\n")
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Segments[0].Data
	if d[0] != 0x11 || d[3] != 0x44 {
		t.Errorf("big-endian word: % x", d)
	}
}

func TestForwardReferences(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, _ := New(i)
	prog, err := a.Assemble("f.s", `
_start:
    br r31, fwd
    bis r31, r31, r1
fwd:
    addq r31, 1, r0
    addq r31, 7, r16
    callsys
`)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runProgram(t, i, prog, "one_min")
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestAlphaByteManipulation(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, _ := New(i)
	prog, err := a.Assemble("b.s", `
_start:
    ldah r1, 0x1234(r31)
    lda  r1, 0x5678(r1)      // r1 = 0x12345678 (ha/lo math folded manually)
    addq r31, 2, r2
    extbl r1, r2, r3         // byte 2 of r1 -> 0x34... (little numbering)
    addq r31, 0xab, r4
    insbl r4, r2, r5         // 0xab << 16
    mskbl r1, r2, r6         // clear byte 2
    addq r31, 3, r7
    zapnot r1, r7, r8        // keep bytes 0,1
    sextb r4, r9             // 0xab -> sign-extended
    addq r31, 1, r0
    bis r31, r31, r16
    callsys
`)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runProgram(t, i, prog, "one_all")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	sim, _ := core.Synthesize(i.Spec, "one_min", core.Options{})
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	sim.NewExec(m).Run(100)
	r := m.MustSpace("r")
	v1 := r.Vals[1]
	want3 := (v1 >> 16) & 0xff
	if r.Vals[3] != want3 {
		t.Errorf("extbl = %#x, want %#x", r.Vals[3], want3)
	}
	if r.Vals[5] != 0xab0000 {
		t.Errorf("insbl = %#x", r.Vals[5])
	}
	if r.Vals[6] != v1&^uint64(0xff0000) {
		t.Errorf("mskbl = %#x", r.Vals[6])
	}
	if r.Vals[8] != v1&0xffff {
		t.Errorf("zapnot = %#x", r.Vals[8])
	}
	b9 := uint8(0xab)
	if r.Vals[9] != uint64(int64(int8(b9))) {
		t.Errorf("sextb = %#x", r.Vals[9])
	}
}

func TestARMPostIndexedAddressing(t *testing.T) {
	i := isatest.Load(t, "arm32")
	a, _ := New(i)
	prog, err := a.Assemble("p.s", `
_start:
    mov r3, #byte2(buf), 8
    orr r3, r3, #byte1(buf), 12
    orr r3, r3, #byte0(buf), 0
    ldr r1, [r3], #4          // r1 = buf[0]; r3 += 4
    ldr r2, [r3], #4          // r2 = buf[1]; r3 += 4
    add r0, r1, r2, 0, 0
    mov r7, #1, 0
    swi

.data
buf: .word 11, 31
`)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runProgram(t, i, prog, "one_all")
	if code != 42 {
		t.Fatalf("post-indexed loads: exit %d, want 42", code)
	}
	// And through the Step interface (double writeback crosses entrypoints).
	_, code = runProgram(t, i, prog, "step_all")
	if code != 42 {
		t.Fatalf("step interface: exit %d, want 42", code)
	}
}

func TestPPCImmediateSubtractAndHighMultiply(t *testing.T) {
	i := isatest.Load(t, "ppc32")
	a, _ := New(i)
	prog, err := a.Assemble("s.s", `
_start:
    addi r14, r0, 2
    subfic r15, r14, 100      // 100 - 2 = 98
    addis r16, r0, 4          // 0x40000 = 2^18
    mulhw r17, r16, r16       // 2^36 >> 32 = 16
    add r18, r15, r17         // 98 + 16 = 114
    addi r0, r0, 1
    addi r3, r18, -114        // exit(0)
    sc
`)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runProgram(t, i, prog, "block_all")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
}

func TestDisassembleUnknownWord(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	a, _ := New(i)
	if dis := a.Disassemble(7<<26, 0x1000); !strings.HasPrefix(dis, ".word") {
		t.Errorf("unknown word disassembled to %q", dis)
	}
}
