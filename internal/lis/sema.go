package lis

import (
	"fmt"
	"math/bits"

	"singlespec/internal/mach"
)

// analyze resolves a parsed rawFile into a Spec, reporting all diagnostics
// it can find rather than stopping at the first.
func analyze(f *rawFile, instrs []rawInstr, errs *ErrorList) (*Spec, error) {
	a := &analyzer{errs: errs, spec: &Spec{
		fieldByName: make(map[string]*Field),
		spaceByName: make(map[string]*SpaceDecl),
		stepIndex:   make(map[string]int),
		instrByName: make(map[string]*Instr),
		bsByName:    make(map[string]*Buildset),
	}}
	a.file(f, instrs)
	if len(*errs) > 0 {
		return nil, *errs
	}
	return a.spec, nil
}

type analyzer struct {
	errs *ErrorList
	spec *Spec

	consts    map[string]*Const
	formats   map[string]*Format
	classes   map[string]*Class
	accessors map[string]*Accessor
	opnames   map[string]*OperandName
	// members maps a class to the instructions carrying it.
	members map[*Class][]*Instr
	// valueOwner maps an operand value field back to its operandname
	// (value fields are dedicated).
	valueOwner map[*Field]*OperandName
}

func (a *analyzer) errorf(pos Pos, format string, args ...any) {
	*a.errs = append(*a.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Read-only builtin fields (set by the engine, never by action code).
var readOnlyBuiltins = map[string]bool{
	FieldPC: true, FieldInstrBits: true, FieldCtx: true, FieldOpcode: true,
}

func (a *analyzer) file(f *rawFile, rawInstrs []rawInstr) {
	s := a.spec
	s.Name = f.name
	if s.Name == "" {
		a.errorf(Pos{Line: 1, Col: 1}, "missing 'isa \"name\";' declaration")
	}
	s.Word = f.word
	if s.Word != 32 && s.Word != 64 {
		a.errorf(f.namePos, "word must be 32 or 64, got %d", s.Word)
		s.Word = 64
	}
	switch f.endian {
	case "little", "":
		s.Endian = mach.LittleEndian
	case "big":
		s.Endian = mach.BigEndian
	default:
		a.errorf(f.endianPos, "endian must be 'little' or 'big', got '%s'", f.endian)
	}
	s.InstrSize = f.instrSize
	if s.InstrSize != 2 && s.InstrSize != 4 && s.InstrSize != 8 {
		a.errorf(f.namePos, "instrsize must be 2, 4, or 8 bytes, got %d", s.InstrSize)
		s.InstrSize = 4
	}

	// Steps.
	if len(f.steps) == 0 {
		a.errorf(f.namePos, "no 'step' declaration")
	}
	for _, st := range f.steps {
		if _, dup := s.stepIndex[st.name]; dup {
			a.errorf(st.pos, "duplicate step '%s'", st.name)
			continue
		}
		s.stepIndex[st.name] = len(s.Steps)
		s.Steps = append(s.Steps, st.name)
	}
	s.DecodeStep = -1
	if f.decodeStp.name == "" {
		a.errorf(f.namePos, "missing 'decodestep' declaration")
	} else if i, ok := s.stepIndex[f.decodeStp.name]; ok {
		s.DecodeStep = i
	} else {
		a.errorf(f.decodeStp.pos, "decodestep '%s' is not a declared step", f.decodeStp.name)
	}
	s.FetchStep = s.DecodeStep
	if f.fetchStp.name != "" {
		if i, ok := s.stepIndex[f.fetchStp.name]; ok {
			s.FetchStep = i
			if i > s.DecodeStep {
				a.errorf(f.fetchStp.pos, "fetchstep '%s' must not come after the decode step", f.fetchStp.name)
			}
		} else {
			a.errorf(f.fetchStp.pos, "fetchstep '%s' is not a declared step", f.fetchStp.name)
		}
	}
	s.ExcStep = len(s.Steps) - 1
	if f.excStp.name != "" {
		if i, ok := s.stepIndex[f.excStp.name]; ok {
			s.ExcStep = i
		} else {
			a.errorf(f.excStp.pos, "excstep '%s' is not a declared step", f.excStp.name)
		}
	}

	// Spaces.
	for _, rs := range f.spaces {
		if s.spaceByName[rs.name] != nil {
			a.errorf(rs.pos, "duplicate space '%s'", rs.name)
			continue
		}
		if rs.count <= 0 || rs.width <= 0 || rs.width > 64 {
			a.errorf(rs.pos, "space '%s': count must be positive and width in 1..64", rs.name)
			continue
		}
		if rs.zero >= rs.count {
			a.errorf(rs.pos, "space '%s': zero register %d out of range", rs.name, rs.zero)
			continue
		}
		sp := &SpaceDecl{Pos: rs.pos, Name: rs.name, Count: rs.count, Width: rs.width, Zero: rs.zero, Index: len(s.Spaces)}
		s.Spaces = append(s.Spaces, sp)
		s.spaceByName[rs.name] = sp
	}

	// Builtin fields.
	for _, bf := range []struct {
		name  string
		width int
	}{
		{FieldPC, 64}, {FieldPhysPC, 64}, {FieldInstrBits, 32},
		{FieldNextPC, 64}, {FieldFault, 8}, {FieldCtx, 16},
		{FieldOpcode, 16}, {FieldNullify, 1},
	} {
		a.addField(&Field{Name: bf.name, Width: bf.width, Builtin: true})
	}

	// Predefined constants (fault codes match internal/mach).
	a.consts = map[string]*Const{
		"FAULT_NONE":    {Name: "FAULT_NONE", Val: uint64(mach.FaultNone)},
		"FAULT_MEMORY":  {Name: "FAULT_MEMORY", Val: uint64(mach.FaultMemory)},
		"FAULT_ILLEGAL": {Name: "FAULT_ILLEGAL", Val: uint64(mach.FaultIllegal)},
		"FAULT_HALT":    {Name: "FAULT_HALT", Val: uint64(mach.FaultHalt)},
		"FAULT_BREAK":   {Name: "FAULT_BREAK", Val: uint64(mach.FaultBreak)},
	}
	for name, c := range a.consts {
		s.Consts = append(s.Consts, c)
		_ = name
	}
	for _, rc := range f.consts {
		if a.consts[rc.name] != nil {
			a.errorf(rc.pos, "duplicate const '%s'", rc.name)
			continue
		}
		v, ok := a.evalConst(rc.val)
		if !ok {
			continue
		}
		c := &Const{Pos: rc.pos, Name: rc.name, Val: v}
		a.consts[rc.name] = c
		s.Consts = append(s.Consts, c)
	}

	// Declared fields.
	for _, rf := range f.fields {
		if s.fieldByName[rf.name] != nil {
			a.errorf(rf.pos, "duplicate field '%s'", rf.name)
			continue
		}
		if a.consts[rf.name] != nil {
			a.errorf(rf.pos, "field '%s' collides with a const", rf.name)
			continue
		}
		if rf.width < 1 || rf.width > 64 {
			a.errorf(rf.pos, "field '%s' width must be in 1..64", rf.name)
			continue
		}
		a.addField(&Field{Pos: rf.pos, Name: rf.name, Width: rf.width})
	}

	// Formats.
	a.formats = make(map[string]*Format)
	for i := range f.formats {
		rf := &f.formats[i]
		if a.formats[rf.name] != nil {
			a.errorf(rf.pos, "duplicate format '%s'", rf.name)
			continue
		}
		fm := &Format{Pos: rf.pos, Name: rf.name, Fields: rf.fields, byName: make(map[string]*FmtField)}
		for _, ff := range rf.fields {
			if fm.byName[ff.Name] != nil {
				a.errorf(ff.Pos, "duplicate bitfield '%s' in format '%s'", ff.Name, rf.name)
				continue
			}
			if ff.Lo < 0 || ff.Hi < ff.Lo || ff.Hi >= s.InstrSize*8 {
				a.errorf(ff.Pos, "bitfield '%s' range [%d:%d] invalid for %d-bit instructions",
					ff.Name, ff.Hi, ff.Lo, s.InstrSize*8)
				continue
			}
			// Encoding-field names must not shadow fields or consts, so
			// identifier resolution inside action bodies is unambiguous.
			if s.fieldByName[ff.Name] != nil || a.consts[ff.Name] != nil {
				a.errorf(ff.Pos, "bitfield '%s' collides with a field or const name", ff.Name)
				continue
			}
			fm.byName[ff.Name] = ff
		}
		a.formats[rf.name] = fm
		s.Formats = append(s.Formats, fm)
	}

	// Classes.
	a.classes = make(map[string]*Class)
	for _, rc := range f.classes {
		if a.classes[rc.name] != nil {
			a.errorf(rc.pos, "duplicate class '%s'", rc.name)
			continue
		}
		c := &Class{Pos: rc.pos, Name: rc.name}
		a.classes[rc.name] = c
		s.Classes = append(s.Classes, c)
	}

	// Accessors.
	a.accessors = make(map[string]*Accessor)
	for _, ra := range f.accessors {
		if a.accessors[ra.name] != nil {
			a.errorf(ra.pos, "duplicate accessor '%s'", ra.name)
			continue
		}
		sp := s.spaceByName[ra.space.name]
		if sp == nil {
			a.errorf(ra.space.pos, "accessor '%s': unknown space '%s'", ra.name, ra.space.name)
			continue
		}
		acc := &Accessor{Pos: ra.pos, Name: ra.name, Space: sp}
		a.accessors[ra.name] = acc
		s.Accs = append(s.Accs, acc)
	}

	// Operand names (+ auto index fields).
	a.opnames = make(map[string]*OperandName)
	a.valueOwner = make(map[*Field]*OperandName)
	for _, ro := range f.opnames {
		if a.opnames[ro.name] != nil {
			a.errorf(ro.pos, "duplicate operandname '%s'", ro.name)
			continue
		}
		on := &OperandName{Pos: ro.pos, Name: ro.name, IsWrite: ro.isWrite}
		on.DecodeStep = s.DecodeStep
		if ro.decodeStep.name != "" {
			idx, ok := s.stepIndex[ro.decodeStep.name]
			if !ok {
				a.errorf(ro.decodeStep.pos, "operandname '%s': unknown decode step '%s'", ro.name, ro.decodeStep.name)
				continue
			}
			if idx != s.DecodeStep {
				a.errorf(ro.decodeStep.pos, "operandname '%s': operand decode must occur at the decode step '%s'",
					ro.name, s.Steps[s.DecodeStep])
			}
			on.DecodeStep = idx
		}
		if idx, ok := s.stepIndex[ro.accessStep.name]; ok {
			on.AccessStep = idx
			if idx < s.DecodeStep {
				a.errorf(ro.accessStep.pos, "operandname '%s': access step precedes decode", ro.name)
			}
		} else {
			a.errorf(ro.accessStep.pos, "operandname '%s': unknown access step '%s'", ro.name, ro.accessStep.name)
			continue
		}
		vf := s.fieldByName[ro.value.name]
		if vf == nil {
			a.errorf(ro.value.pos, "operandname '%s': unknown value field '%s'", ro.name, ro.value.name)
			continue
		}
		if vf.Builtin || vf.Auto {
			a.errorf(ro.value.pos, "operandname '%s': value field must be a declared field", ro.name)
			continue
		}
		if prev := a.valueOwner[vf]; prev != nil {
			a.errorf(ro.value.pos, "field '%s' already carries operand '%s'; value fields are dedicated", vf.Name, prev.Name)
			continue
		}
		on.Value = vf
		a.valueOwner[vf] = on
		idxName := ro.name + "_idx"
		if s.fieldByName[idxName] != nil {
			a.errorf(ro.pos, "auto index field '%s' collides with an existing field", idxName)
			continue
		}
		on.IdxField = &Field{Pos: ro.pos, Name: idxName, Width: 16, Auto: true}
		a.addField(on.IdxField)
		a.opnames[ro.name] = on
		s.OpNames = append(s.OpNames, on)
	}

	// Instructions.
	a.members = make(map[*Class][]*Instr)
	for i := range rawInstrs {
		a.instr(&rawInstrs[i])
	}
	a.checkDecodeOverlap()

	// Operand bindings.
	for _, ro := range f.operands {
		a.operand(&ro)
	}

	// Actions.
	s.AllActions = make([][]*Action, len(s.Steps))
	for i := range f.actions {
		a.action(&f.actions[i])
	}

	// Post-resolution per-instruction checks and attributes.
	for _, in := range s.Instrs {
		a.finishInstr(in)
	}

	// Buildsets.
	for i := range f.buildsets {
		a.buildset(&f.buildsets[i])
	}

	// Asm suffixes.
	if len(f.suffixes) > 1 {
		a.errorf(f.suffixes[1].pos, "at most one asmsuffix declaration is supported")
	}
	if len(f.suffixes) == 1 {
		sx := f.suffixes[0]
		out := &AsmSuffix{Field: sx.field.name}
		seen := map[string]bool{}
		for _, d := range sx.defs {
			if seen[d.name] {
				a.errorf(d.pos, "duplicate asm suffix '%s'", d.name)
				continue
			}
			seen[d.name] = true
			out.Defs = append(out.Defs, SuffixDef{Name: d.name, Val: d.val})
		}
		s.AsmSuffix = out
	}
}

func (a *analyzer) addField(fl *Field) {
	fl.Index = len(a.spec.Fields)
	a.spec.Fields = append(a.spec.Fields, fl)
	a.spec.fieldByName[fl.Name] = fl
}

func (a *analyzer) instr(ri *rawInstr) {
	s := a.spec
	if s.instrByName[ri.name] != nil {
		a.errorf(ri.pos, "duplicate instruction '%s'", ri.name)
		return
	}
	if ri.name == "ALL" {
		a.errorf(ri.pos, "'ALL' is reserved for actions applying to every instruction")
		return
	}
	fm := a.formats[ri.format.name]
	if fm == nil {
		a.errorf(ri.format.pos, "instruction '%s': unknown format '%s'", ri.name, ri.format.name)
		return
	}
	in := &Instr{Pos: ri.pos, Name: ri.name, ID: len(s.Instrs), Format: fm, Asm: ri.asm}
	for _, rc := range ri.classes {
		c := a.classes[rc.name]
		if c == nil {
			a.errorf(rc.pos, "instruction '%s': unknown class '%s'", ri.name, rc.name)
			continue
		}
		in.Classes = append(in.Classes, c)
		a.members[c] = append(a.members[c], in)
	}
	for _, rm := range ri.match {
		ff := fm.Field(rm.field.name)
		if ff == nil {
			a.errorf(rm.field.pos, "instruction '%s': match field '%s' not in format '%s'", ri.name, rm.field.name, fm.Name)
			continue
		}
		if rm.val >= 1<<uint(ff.Width()) {
			a.errorf(rm.field.pos, "instruction '%s': match value %#x does not fit %d-bit field '%s'",
				ri.name, rm.val, ff.Width(), ff.Name)
			continue
		}
		in.Match = append(in.Match, MatchClause{Pos: rm.pos, Field: ff, Val: rm.val})
		fieldMask := uint64(1<<uint(ff.Width())-1) << uint(ff.Lo)
		if in.Mask&fieldMask != 0 {
			a.errorf(rm.pos, "instruction '%s': overlapping match clauses", ri.name)
		}
		in.Mask |= fieldMask
		in.Value |= rm.val << uint(ff.Lo)
	}
	if len(in.Match) == 0 {
		a.errorf(ri.pos, "instruction '%s' has no match clauses", ri.name)
	}
	in.StepActions = make([][]*Action, len(s.Steps))
	s.Instrs = append(s.Instrs, in)
	s.instrByName[ri.name] = in
}

// checkDecodeOverlap reports pairs of instructions whose encodings can both
// match the same instruction word.
func (a *analyzer) checkDecodeOverlap() {
	ins := a.spec.Instrs
	for i := 0; i < len(ins); i++ {
		for j := i + 1; j < len(ins); j++ {
			common := ins[i].Mask & ins[j].Mask
			if ins[i].Value&common == ins[j].Value&common {
				a.errorf(ins[j].Pos, "instructions '%s' and '%s' have overlapping encodings",
					ins[i].Name, ins[j].Name)
			}
		}
	}
}

// targets resolves an action/operand owner name to the set of instructions
// it applies to.
func (a *analyzer) targets(owner rawIdent) ([]*Instr, bool) {
	if owner.name == "ALL" {
		return a.spec.Instrs, true
	}
	if c := a.classes[owner.name]; c != nil {
		return a.members[c], true
	}
	if in := a.spec.instrByName[owner.name]; in != nil {
		return []*Instr{in}, true
	}
	a.errorf(owner.pos, "unknown instruction or class '%s'", owner.name)
	return nil, false
}

func (a *analyzer) operand(ro *rawOperand) {
	ins, ok := a.targets(ro.owner)
	if !ok {
		return
	}
	on := a.opnames[ro.opname.name]
	if on == nil {
		a.errorf(ro.opname.pos, "unknown operandname '%s'", ro.opname.name)
		return
	}
	acc := a.accessors[ro.accessor.name]
	if acc == nil {
		a.errorf(ro.accessor.pos, "unknown accessor '%s'", ro.accessor.name)
		return
	}
	if ro.isConst && int(ro.idxConst) >= acc.Space.Count {
		a.errorf(ro.pos, "constant register index %d out of range for space '%s'", ro.idxConst, acc.Space.Name)
		return
	}
	for _, in := range ins {
		b := &OperandBinding{Pos: ro.pos, Op: on, Acc: acc, IdxConst: int(ro.idxConst)}
		if !ro.isConst {
			ff := in.Format.Field(ro.idxEnc.name)
			if ff == nil {
				a.errorf(ro.idxEnc.pos, "instruction '%s': encoding field '%s' not in format '%s'",
					in.Name, ro.idxEnc.name, in.Format.Name)
				continue
			}
			if 1<<uint(ff.Width()) > acc.Space.Count*2 && ff.Width() > 8 {
				a.errorf(ro.idxEnc.pos, "instruction '%s': %d-bit field '%s' is too wide to index space '%s'",
					in.Name, ff.Width(), ff.Name, acc.Space.Name)
				continue
			}
			b.IdxEnc = ff
		}
		dup := false
		for _, prev := range in.Operands {
			if prev.Op == on {
				a.errorf(ro.pos, "instruction '%s': operand '%s' bound twice", in.Name, on.Name)
				dup = true
			}
		}
		if !dup {
			in.Operands = append(in.Operands, b)
		}
	}
}

func (a *analyzer) action(ra *rawAction) {
	s := a.spec
	stepIdx, ok := s.stepIndex[ra.step.name]
	if !ok {
		a.errorf(ra.step.pos, "unknown step '%s'", ra.step.name)
		return
	}
	ins, ok := a.targets(ra.owner)
	if !ok {
		return
	}
	isALL := ra.owner.name == "ALL"
	if stepIdx < s.DecodeStep && !isALL {
		a.errorf(ra.pos, "action '%s@%s': only ALL actions may run before the decode step",
			ra.owner.name, ra.step.name)
		return
	}
	act := &Action{Pos: ra.pos, Step: stepIdx, Body: ra.body, Override: ra.override, Owner: ra.owner.name}
	if isALL {
		s.AllActions[stepIdx] = append(s.AllActions[stepIdx], act)
	}
	// Resolve the body once; encoding-field references stay symbolic and
	// are validated against every applicable instruction below.
	encRefs := a.resolveBody(ra.body, isALL)
	for _, ref := range encRefs {
		for _, in := range ins {
			if in.Format.Field(ref.Name) == nil {
				a.errorf(ref.Pos, "action '%s@%s': encoding field '%s' not in format '%s' of instruction '%s'",
					ra.owner.name, ra.step.name, ref.Name, in.Format.Name, in.Name)
			}
		}
	}
	for _, in := range ins {
		if act.Override {
			in.StepActions[stepIdx] = in.StepActions[stepIdx][:0]
		} else if ra.owner.name == in.Name {
			for _, prev := range in.StepActions[stepIdx] {
				if prev.Owner == in.Name {
					a.errorf(ra.pos, "instruction '%s' already has an action at step '%s' (use 'override action' to replace)",
						in.Name, ra.step.name)
				}
			}
		}
		in.StepActions[stepIdx] = append(in.StepActions[stepIdx], act)
	}
}

// finishInstr runs per-instruction checks that need all actions and
// operands resolved, and computes the CTI/Barrier attributes.
func (a *analyzer) finishInstr(in *Instr) {
	bound := make(map[*Field]bool)
	for _, b := range in.Operands {
		bound[b.Op.Value] = true
	}
	// An action that assigns an operand value field synthesizes that
	// operand (e.g. literal forms writing the source field from the
	// encoding); treat the field as bound for the read check.
	var markAssigned func(st Stmt)
	markAssigned = func(st Stmt) {
		switch st := st.(type) {
		case *Block:
			for _, s2 := range st.Stmts {
				markAssigned(s2)
			}
		case *AssignStmt:
			if st.Ref == RefField {
				if f := st.Sym.(*Field); a.valueOwner[f] != nil {
					bound[f] = true
				}
			}
		case *IfStmt:
			markAssigned(st.Then)
			if st.Else != nil {
				markAssigned(st.Else)
			}
		}
	}
	for _, acts := range in.StepActions {
		for _, act := range acts {
			markAssigned(act.Body)
		}
	}
	var walkE func(e Expr)
	var walkS func(st Stmt)
	walkE = func(e Expr) {
		switch e := e.(type) {
		case *IdentExpr:
			if e.Ref == RefField {
				fl := e.Sym.(*Field)
				if on := a.valueOwner[fl]; on != nil && !bound[fl] {
					a.errorf(e.Pos, "instruction '%s' uses operand value '%s' but has no '%s' operand binding",
						in.Name, fl.Name, on.Name)
					bound[fl] = true // report once per instruction
				}
			}
		case *UnaryExpr:
			walkE(e.X)
		case *BinaryExpr:
			walkE(e.L)
			walkE(e.R)
		case *CondExpr:
			walkE(e.C)
			walkE(e.A)
			walkE(e.B)
		case *CallExpr:
			for _, arg := range e.Args {
				walkE(arg)
			}
		}
	}
	walkS = func(st Stmt) {
		switch st := st.(type) {
		case *Block:
			for _, s2 := range st.Stmts {
				walkS(s2)
			}
		case *AssignStmt:
			if st.Ref == RefField {
				if fl := st.Sym.(*Field); fl.Name == FieldNextPC {
					in.CTI = true
				}
			}
			walkE(st.RHS)
		case *LetStmt:
			walkE(st.RHS)
		case *IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *CallStmt:
			for _, arg := range st.Args {
				walkE(arg)
			}
			if st.Builtin != nil && st.Builtin.Kind == BuiltinEffect {
				in.Barrier = true
			}
		}
	}
	for step, acts := range in.StepActions {
		// The exception step is reached only on faults, which already end
		// translated blocks; it does not make an instruction a CTI/barrier.
		if step == a.spec.ExcStep {
			continue
		}
		for _, act := range acts {
			walkS(act.Body)
		}
	}
}

// resolveBody resolves identifiers and builtins in an action body. It
// returns the encoding-field references found (resolved per-instruction by
// the caller). forbidEnc bans encoding references (ALL actions).
func (a *analyzer) resolveBody(b *Block, forbidEnc bool) []*IdentExpr {
	r := &resolver{a: a, forbidEnc: forbidEnc, scopes: []map[string]*Local{{}}}
	r.block(b)
	return r.encRefs
}

type resolver struct {
	a         *analyzer
	forbidEnc bool
	scopes    []map[string]*Local
	encRefs   []*IdentExpr
}

func (r *resolver) lookupLocal(name string) *Local {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if l := r.scopes[i][name]; l != nil {
			return l
		}
	}
	return nil
}

func (r *resolver) block(b *Block) {
	r.scopes = append(r.scopes, map[string]*Local{})
	for _, st := range b.Stmts {
		r.stmt(st)
	}
	r.scopes = r.scopes[:len(r.scopes)-1]
}

func (r *resolver) stmt(st Stmt) {
	a := r.a
	switch st := st.(type) {
	case *Block:
		r.block(st)
	case *LetStmt:
		r.expr(st.RHS)
		if a.spec.fieldByName[st.Name] != nil || a.consts[st.Name] != nil {
			a.errorf(st.Pos, "local '%s' shadows a field or const", st.Name)
			return
		}
		if r.lookupLocal(st.Name) != nil {
			a.errorf(st.Pos, "local '%s' redeclared", st.Name)
			return
		}
		st.Local = &Local{Name: st.Name, Slot: -1}
		r.scopes[len(r.scopes)-1][st.Name] = st.Local
	case *AssignStmt:
		r.expr(st.RHS)
		if l := r.lookupLocal(st.Name); l != nil {
			st.Ref, st.Sym = RefLocal, l
			return
		}
		if fl := a.spec.fieldByName[st.Name]; fl != nil {
			if readOnlyBuiltins[fl.Name] || fl.Auto {
				a.errorf(st.Pos, "field '%s' is read-only (set by the engine)", fl.Name)
			}
			st.Ref, st.Sym = RefField, fl
			return
		}
		a.errorf(st.Pos, "cannot assign to '%s': not a field or local", st.Name)
	case *IfStmt:
		r.expr(st.Cond)
		r.block(st.Then)
		if st.Else != nil {
			r.stmt(st.Else)
		}
	case *CallStmt:
		for _, arg := range st.Args {
			r.expr(arg)
		}
		b := Builtins[st.Name]
		if b == nil {
			a.errorf(st.Pos, "unknown builtin '%s'", st.Name)
			return
		}
		if b.Kind != BuiltinStore && b.Kind != BuiltinEffect {
			a.errorf(st.Pos, "builtin '%s' has a result; it cannot be used as a statement", st.Name)
			return
		}
		if len(st.Args) != b.Arity {
			a.errorf(st.Pos, "builtin '%s' takes %d arguments, got %d", st.Name, b.Arity, len(st.Args))
			return
		}
		st.Builtin = b
	}
}

func (r *resolver) expr(e Expr) {
	a := r.a
	switch e := e.(type) {
	case *NumExpr:
	case *IdentExpr:
		if l := r.lookupLocal(e.Name); l != nil {
			e.Ref, e.Sym = RefLocal, l
			return
		}
		if fl := a.spec.fieldByName[e.Name]; fl != nil {
			e.Ref, e.Sym = RefField, fl
			return
		}
		if c := a.consts[e.Name]; c != nil {
			e.Ref, e.Sym = RefConst, c
			return
		}
		// Otherwise assume an encoding-field reference; the caller
		// validates it against each applicable instruction's format.
		if r.forbidEnc {
			a.errorf(e.Pos, "unknown identifier '%s' (ALL actions may not reference encoding fields)", e.Name)
			return
		}
		e.Ref = RefEncoding
		r.encRefs = append(r.encRefs, e)
	case *UnaryExpr:
		r.expr(e.X)
	case *BinaryExpr:
		r.expr(e.L)
		r.expr(e.R)
	case *CondExpr:
		r.expr(e.C)
		r.expr(e.A)
		r.expr(e.B)
	case *CallExpr:
		for _, arg := range e.Args {
			r.expr(arg)
		}
		b := Builtins[e.Name]
		if b == nil {
			a.errorf(e.Pos, "unknown builtin '%s'", e.Name)
			return
		}
		if b.Kind == BuiltinStore || b.Kind == BuiltinEffect {
			a.errorf(e.Pos, "builtin '%s' is a statement, not an expression", e.Name)
			return
		}
		if len(e.Args) != b.Arity {
			a.errorf(e.Pos, "builtin '%s' takes %d arguments, got %d", e.Name, b.Arity, len(e.Args))
			return
		}
		e.Builtin = b
	}
}

func (a *analyzer) buildset(rb *rawBuildset) {
	s := a.spec
	if s.bsByName[rb.name] != nil {
		a.errorf(rb.pos, "duplicate buildset '%s'", rb.name)
		return
	}
	bs := &Buildset{
		Pos: rb.pos, Name: rb.name, Mode: rb.mode, Spec: rb.spec,
		Unchecked: rb.unchecked, VisBase: VisAll, SrcLines: rb.srcLines,
	}
	if rb.visSet {
		bs.VisBase = rb.visBase
	}
	minSet := make(map[string]bool, len(MinFields))
	for _, m := range MinFields {
		minSet[m] = true
	}
	for _, ri := range rb.show {
		fl := s.fieldByName[ri.name]
		if fl == nil {
			a.errorf(ri.pos, "buildset '%s': unknown field '%s' in show list", rb.name, ri.name)
			continue
		}
		bs.Show = append(bs.Show, fl)
	}
	for _, ri := range rb.hide {
		fl := s.fieldByName[ri.name]
		if fl == nil {
			a.errorf(ri.pos, "buildset '%s': unknown field '%s' in hide list", rb.name, ri.name)
			continue
		}
		if minSet[fl.Name] {
			a.errorf(ri.pos, "buildset '%s': minimal field '%s' cannot be hidden", rb.name, ri.name)
			continue
		}
		bs.Hide = append(bs.Hide, fl)
	}

	used := make([]bool, len(s.Steps))
	last := -1
	epNames := make(map[string]bool)
	for _, re := range rb.entries {
		if epNames[re.name] {
			a.errorf(re.pos, "buildset '%s': duplicate entrypoint '%s'", rb.name, re.name)
			continue
		}
		epNames[re.name] = true
		ep := &Entrypoint{Pos: re.pos, Name: re.name}
		for _, st := range re.steps {
			idx, ok := s.stepIndex[st.name]
			if !ok {
				a.errorf(st.pos, "buildset '%s': unknown step '%s'", rb.name, st.name)
				continue
			}
			if used[idx] {
				a.errorf(st.pos, "buildset '%s': step '%s' appears more than once", rb.name, st.name)
				continue
			}
			if idx <= last && !rb.unchecked {
				a.errorf(st.pos, "buildset '%s': step '%s' out of order (steps must follow the declared step order)",
					rb.name, st.name)
				continue
			}
			used[idx] = true
			last = idx
			ep.Steps = append(ep.Steps, idx)
		}
		if len(ep.Steps) == 0 {
			a.errorf(re.pos, "buildset '%s': entrypoint '%s' has no steps", rb.name, re.name)
			continue
		}
		bs.Entrypoints = append(bs.Entrypoints, ep)
	}
	if len(bs.Entrypoints) == 0 {
		a.errorf(rb.pos, "buildset '%s' has no entrypoints", rb.name)
		return
	}
	if !rb.unchecked {
		for i, u := range used {
			if !u {
				a.errorf(rb.pos, "buildset '%s': step '%s' is not covered by any entrypoint (declare 'unchecked;' to allow)",
					rb.name, s.Steps[i])
			}
		}
	}
	if bs.Mode == ModeBlock && len(bs.Entrypoints) != 1 {
		a.errorf(rb.pos, "buildset '%s': block mode requires exactly one entrypoint", rb.name)
	}
	s.Buildsets = append(s.Buildsets, bs)
	s.bsByName[rb.name] = bs
}

// evalConst evaluates a constant expression at analysis time.
func (a *analyzer) evalConst(e Expr) (uint64, bool) {
	switch e := e.(type) {
	case *NumExpr:
		return e.Val, true
	case *IdentExpr:
		if c := a.consts[e.Name]; c != nil {
			return c.Val, true
		}
		a.errorf(e.Pos, "const expression references non-const '%s'", e.Name)
		return 0, false
	case *UnaryExpr:
		x, ok := a.evalConst(e.X)
		if !ok {
			return 0, false
		}
		return EvalUnaryOp(e.Op, x), true
	case *BinaryExpr:
		l, ok1 := a.evalConst(e.L)
		r2, ok2 := a.evalConst(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		return EvalBinaryOp(e.Op, l, r2), true
	case *CondExpr:
		c, ok := a.evalConst(e.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return a.evalConst(e.A)
		}
		return a.evalConst(e.B)
	case *CallExpr:
		b := Builtins[e.Name]
		if b == nil || b.Kind != BuiltinPure {
			a.errorf(e.Position(), "const expression may only call pure builtins")
			return 0, false
		}
		args := make([]uint64, len(e.Args))
		for i, arg := range e.Args {
			v, ok := a.evalConst(arg)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		if len(args) != b.Arity {
			a.errorf(e.Position(), "builtin '%s' takes %d arguments, got %d", e.Name, b.Arity, len(args))
			return 0, false
		}
		return EvalPureBuiltin(b, args), true
	}
	a.errorf(e.Position(), "unsupported const expression")
	return 0, false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// EvalUnaryOp applies a unary operator with the action language's
// semantics.
func EvalUnaryOp(op Op, x uint64) uint64 {
	switch op {
	case OpNeg:
		return -x
	case OpInv:
		return ^x
	default: // OpNot
		return b2u(x == 0)
	}
}

// EvalBinaryOp applies a binary operator with the action language's
// unsigned 64-bit semantics (shifts >= 64 yield 0; division by zero yields
// 0). It is the single definition of operator semantics, shared by the
// constant folder and the compiler (internal/core).
func EvalBinaryOp(op Op, l, r uint64) uint64 {
	switch op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		return l / r
	case OpRem:
		if r == 0 {
			return 0
		}
		return l % r
	case OpAnd:
		return l & r
	case OpOr:
		return l | r
	case OpXor:
		return l ^ r
	case OpShl:
		if r >= 64 {
			return 0
		}
		return l << r
	case OpShr:
		if r >= 64 {
			return 0
		}
		return l >> r
	case OpEq:
		return b2u(l == r)
	case OpNe:
		return b2u(l != r)
	case OpLt:
		return b2u(l < r)
	case OpLe:
		return b2u(l <= r)
	case OpGt:
		return b2u(l > r)
	case OpGe:
		return b2u(l >= r)
	case OpLand:
		return b2u(l != 0 && r != 0)
	case OpLor:
		return b2u(l != 0 || r != 0)
	}
	return 0
}

// EvalPureBuiltin evaluates a pure builtin on concrete arguments; it is the
// single definition of builtin semantics, shared by the constant folder and
// the compiler (internal/core).
func EvalPureBuiltin(b *Builtin, a []uint64) uint64 {
	switch b.Name {
	case "sext8":
		return uint64(int64(int8(a[0])))
	case "sext16":
		return uint64(int64(int16(a[0])))
	case "sext32":
		return uint64(int64(int32(a[0])))
	case "sext":
		w := a[1]
		if w == 0 || w >= 64 {
			return a[0]
		}
		x := a[0] & (1<<w - 1)
		if x&(1<<(w-1)) != 0 {
			x |= ^uint64(0) << w
		}
		return x
	case "trunc":
		w := a[1]
		if w >= 64 {
			return a[0]
		}
		return a[0] & (1<<w - 1)
	case "bits":
		hi, lo := a[1], a[2]
		if hi >= 64 || lo > hi {
			return 0
		}
		return (a[0] >> lo) & (1<<(hi-lo+1) - 1)
	case "asr":
		s := a[1]
		if s >= 64 {
			s = 63
		}
		return uint64(int64(a[0]) >> s)
	case "lts":
		return b2u(int64(a[0]) < int64(a[1]))
	case "les":
		return b2u(int64(a[0]) <= int64(a[1]))
	case "gts":
		return b2u(int64(a[0]) > int64(a[1]))
	case "ges":
		return b2u(int64(a[0]) >= int64(a[1]))
	case "sdiv":
		if a[1] == 0 {
			return 0
		}
		if int64(a[0]) == -1<<63 && int64(a[1]) == -1 {
			return a[0] // wrap, like hardware
		}
		return uint64(int64(a[0]) / int64(a[1]))
	case "srem":
		if a[1] == 0 {
			return 0
		}
		if int64(a[0]) == -1<<63 && int64(a[1]) == -1 {
			return 0
		}
		return uint64(int64(a[0]) % int64(a[1]))
	case "mulhu":
		hi, _ := bits.Mul64(a[0], a[1])
		return hi
	case "mulhs":
		hi, _ := bits.Mul64(a[0], a[1])
		if int64(a[0]) < 0 {
			hi -= a[1]
		}
		if int64(a[1]) < 0 {
			hi -= a[0]
		}
		return hi
	case "rotl32":
		return uint64(bits.RotateLeft32(uint32(a[0]), int(a[1]&31)))
	case "rotr32":
		return uint64(bits.RotateLeft32(uint32(a[0]), -int(a[1]&31)))
	case "rotl64":
		return bits.RotateLeft64(a[0], int(a[1]&63))
	case "rotr64":
		return bits.RotateLeft64(a[0], -int(a[1]&63))
	case "clz32":
		return uint64(bits.LeadingZeros32(uint32(a[0])))
	case "clz64":
		return uint64(bits.LeadingZeros64(a[0]))
	case "ctz32":
		return uint64(bits.TrailingZeros32(uint32(a[0])))
	case "ctz64":
		return uint64(bits.TrailingZeros64(a[0]))
	case "popcnt":
		return uint64(bits.OnesCount64(a[0]))
	}
	panic("lis: EvalPureBuiltin: not a pure builtin: " + b.Name)
}
