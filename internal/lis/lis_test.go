package lis

import (
	"strings"
	"testing"
	"testing/quick"

	"singlespec/internal/mach"
)

// toySrc is a small but complete ISA description used across the frontend
// tests.
const toySrc = `
isa "toy";
word 64;
endian little;
instrsize 4;

space r count 16 width 64 zero 15;

step translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
decodestep decode;

const HALT_BASE = 128;

field src_a 64;
field src_b 64;
field dest_v 64;
field effective_addr 64;

accessor R space r;

operandname src1 read(opread) = src_a;
operandname src2 read(opread) = src_b;
operandname dest1 write(writeback) = dest_v;

format ALUF { op[31:26]; ra[25:21]; rb[20:16]; rc[15:11]; }
format MEMF { op[31:26]; ra[25:21]; rb[20:16]; disp[15:0] signed; }
format BRF  { op[31:26]; ra[25:21]; disp[20:0] signed; }

class memclass;

instr ADD format ALUF match op == 1 asm "add r%ra, r%rb, r%rc";
instr LDW format MEMF class memclass match op == 2 asm "ldw r%ra, %disp(r%rb)";
instr STW format MEMF class memclass match op == 3 asm "stw r%ra, %disp(r%rb)";
instr BEQ format BRF match op == 4 asm "beq r%ra, %disp:pcrel(2,4)";
instr SYS format ALUF match op == 62 asm "sys";
instr HLT format ALUF match op == 63 asm "hlt";

operand ADD src1 R(ra);
operand ADD src2 R(rb);
operand ADD dest1 R(rc);
operand memclass src2 R(rb);
operand LDW dest1 R(ra);
operand STW src1 R(ra);
operand BEQ src1 R(ra);

action ADD@execute = { dest_v = src_a + src_b; }
action memclass@execute = { effective_addr = src_b + sext16(disp); }
action LDW@memory = { dest_v = load64(effective_addr); }
action STW@memory = { store64(effective_addr, src_a); }
action BEQ@execute = {
  if src_a == 0 {
    next_pc = pc + 4 + (sext(disp, 21) << 2);
  }
}
action SYS@execute = { syscall(); }
action HLT@execute = { halt(0); }
action ALL@exception = { if fault != 0 { halt(HALT_BASE + fault); } }

buildset one_all {
  visibility all;
  entrypoint do_in_one = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}

buildset step_all {
  visibility all;
  entrypoint ep_fetch = translate_pc, fetch;
  entrypoint ep_decode = decode;
  entrypoint ep_opread = opread;
  entrypoint ep_execute = execute;
  entrypoint ep_memory = memory;
  entrypoint ep_writeback = writeback;
  entrypoint ep_exception = exception;
}

buildset block_min {
  visibility min;
  mode block;
  entrypoint run = translate_pc, fetch, decode, opread, execute, memory, writeback, exception;
}
`

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Parse("toy.lis", src)
	if err != nil {
		t.Fatalf("parse failed:\n%v", err)
	}
	return spec
}

func TestParseToySpec(t *testing.T) {
	spec := mustParse(t, toySrc)
	if spec.Name != "toy" || spec.Word != 64 || spec.Endian != mach.LittleEndian {
		t.Errorf("header: %q %d %v", spec.Name, spec.Word, spec.Endian)
	}
	if len(spec.Instrs) != 6 {
		t.Errorf("instrs = %d", len(spec.Instrs))
	}
	if spec.DecodeStep != 2 {
		t.Errorf("decode step = %d", spec.DecodeStep)
	}
	add := spec.Instr("ADD")
	if add == nil || len(add.Operands) != 3 {
		t.Fatalf("ADD operands: %+v", add)
	}
	if add.Mask != uint64(0x3f)<<26 || add.Value != uint64(1)<<26 {
		t.Errorf("ADD mask/value = %#x/%#x", add.Mask, add.Value)
	}
	if add.CTI {
		t.Error("ADD should not be a CTI")
	}
	beq := spec.Instr("BEQ")
	if !beq.CTI {
		t.Error("BEQ should be a CTI")
	}
	if !spec.Instr("SYS").Barrier || !spec.Instr("HLT").Barrier {
		t.Error("SYS/HLT should be barriers")
	}
	ldw := spec.Instr("LDW")
	// memclass execute action + nothing else at execute.
	if n := len(ldw.StepActions[spec.StepIndex("execute")]); n != 1 {
		t.Errorf("LDW execute actions = %d", n)
	}
	if n := len(ldw.StepActions[spec.StepIndex("exception")]); n != 1 {
		t.Errorf("LDW exception actions = %d", n)
	}
}

func TestAutoIndexFields(t *testing.T) {
	spec := mustParse(t, toySrc)
	for _, name := range []string{"src1_idx", "src2_idx", "dest1_idx"} {
		f := spec.Field(name)
		if f == nil || !f.Auto {
			t.Errorf("auto field %s missing or not auto", name)
		}
	}
}

func TestVisibility(t *testing.T) {
	spec := mustParse(t, toySrc)
	oneAll := spec.Buildset("one_all")
	blockMin := spec.Buildset("block_min")
	ea := spec.Field("effective_addr")
	pc := spec.Field(FieldPC)
	if !oneAll.Visible(ea) {
		t.Error("one_all should show effective_addr")
	}
	if blockMin.Visible(ea) {
		t.Error("block_min should hide effective_addr")
	}
	if !blockMin.Visible(pc) {
		t.Error("pc is always visible")
	}
}

func TestVisibilityShowHide(t *testing.T) {
	src := strings.Replace(toySrc, "visibility min;",
		"visibility min show effective_addr, opcode;", 1)
	spec := mustParse(t, src)
	bs := spec.Buildset("block_min")
	if !bs.Visible(spec.Field("effective_addr")) || !bs.Visible(spec.Field(FieldOpcode)) {
		t.Error("shown fields should be visible")
	}
	if bs.Visible(spec.Field("src_a")) {
		t.Error("unshown field visible in min buildset")
	}

	src2 := strings.Replace(toySrc, "visibility all;\n  entrypoint do_in_one",
		"visibility all hide effective_addr;\n  entrypoint do_in_one", 1)
	spec2 := mustParse(t, src2)
	bs2 := spec2.Buildset("one_all")
	if bs2.Visible(spec2.Field("effective_addr")) {
		t.Error("hidden field visible in all buildset")
	}
}

func TestBuildsetLinesMetric(t *testing.T) {
	spec := mustParse(t, toySrc)
	bs := spec.Buildset("one_all")
	// "buildset one_all {", "visibility", "entrypoint", "}" = 4 non-blank lines.
	if bs.SrcLines != 4 {
		t.Errorf("one_all SrcLines = %d, want 4", bs.SrcLines)
	}
	if got := spec.Buildset("step_all").SrcLines; got != 10 {
		t.Errorf("step_all SrcLines = %d, want 10", got)
	}
}

// expectErr asserts that parsing src fails with a message containing want.
func expectErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse("err.lis", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("expected error containing %q, got:\n%v", want, err)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name string
		edit func(string) string
		want string
	}{
		{"dup instr", func(s string) string {
			return s + "\ninstr ADD format ALUF match op == 9;"
		}, "duplicate instruction"},
		{"overlap", func(s string) string {
			return s + "\ninstr ADD2 format ALUF match op == 1;"
		}, "overlapping encodings"},
		{"unknown field in action", func(s string) string {
			return s + "\naction ADD@memory = { nosuch_target = 1; }"
		}, "cannot assign"},
		{"readonly field", func(s string) string {
			return s + "\naction HLT@memory = { pc = 0; }"
		}, "read-only"},
		{"unknown step", func(s string) string {
			return s + "\naction ADD@frobnicate = { dest_v = 1; }"
		}, "unknown step"},
		{"dup action", func(s string) string {
			return s + "\naction ADD@execute = { dest_v = 1; }"
		}, "already has an action"},
		{"missing operand binding", func(s string) string {
			return s + "\naction HLT@execute = { dest_v = src_a; }"
		}, "already has an action"}, // HLT has execute; use a fresh step below
		{"operand value without binding", func(s string) string {
			return s + "\naction HLT@writeback = { dest_v = src_a; }"
		}, "no 'src1' operand binding"},
		{"ALL with encoding ref", func(s string) string {
			return s + "\naction ALL@writeback = { next_pc = disp; }"
		}, "ALL actions may not reference"},
		{"unknown builtin", func(s string) string {
			return s + "\naction HLT@memory = { effective_addr = frob(1); }"
		}, "unknown builtin"},
		{"builtin arity", func(s string) string {
			return s + "\naction HLT@memory = { effective_addr = sext16(1, 2); }"
		}, "takes 1 arguments"},
		{"store in expression", func(s string) string {
			return s + "\naction HLT@memory = { effective_addr = store8(1, 2); }"
		}, "is a statement"},
		{"pure builtin as statement", func(s string) string {
			return s + "\naction HLT@memory = { sext16(3); }"
		}, "cannot be used as a statement"},
		{"buildset missing step", func(s string) string {
			return s + "\nbuildset broken { visibility min; entrypoint e = translate_pc, fetch, decode; }"
		}, "not covered by any entrypoint"},
		{"buildset dup step", func(s string) string {
			return s + "\nbuildset broken { visibility min; entrypoint a = translate_pc, fetch, decode, opread, execute, memory, writeback, exception; entrypoint b = execute; }"
		}, "appears more than once"},
		{"buildset hide min field", func(s string) string {
			return s + "\nbuildset broken { visibility all hide pc; entrypoint e = translate_pc, fetch, decode, opread, execute, memory, writeback, exception; }"
		}, "cannot be hidden"},
		{"block multi entrypoint", func(s string) string {
			return s + "\nbuildset broken { mode block; visibility min; entrypoint a = translate_pc, fetch, decode, opread, execute, memory; entrypoint b = writeback, exception; }"
		}, "block mode requires exactly one entrypoint"},
		{"instr action before decode", func(s string) string {
			return s + "\naction ADD@fetch = { effective_addr = 1; }"
		}, "only ALL actions may run before the decode step"},
		{"match value too wide", func(s string) string {
			return s + "\ninstr BAD format ALUF match op == 64;"
		}, "does not fit"},
		{"unknown accessor space", func(s string) string {
			return s + "\naccessor Q space nosuchspace;"
		}, "unknown space"},
		{"operand bound twice", func(s string) string {
			return s + "\noperand ADD src1 R(rb);"
		}, "bound twice"},
		{"const register index range", func(s string) string {
			return s + "\noperand HLT src1 R(99);"
		}, "out of range"},
		{"local shadows field", func(s string) string {
			return s + "\naction HLT@memory = { let src_a = 1; }"
		}, "shadows a field"},
		{"local redeclared", func(s string) string {
			return s + "\naction HLT@memory = { let t = 1; let t = 2; }"
		}, "redeclared"},
		{"dedicated value field", func(s string) string {
			return s + "\noperandname src9 read(opread) = src_a;"
		}, "value fields are dedicated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectErr(t, tc.edit(toySrc), tc.want)
		})
	}
}

func TestOverrideAction(t *testing.T) {
	src := toySrc + "\noverride action SYS@execute = { halt(42); }"
	spec := mustParse(t, src)
	acts := spec.Instr("SYS").StepActions[spec.StepIndex("execute")]
	if len(acts) != 1 || !acts[0].Override {
		t.Fatalf("override did not replace: %d actions", len(acts))
	}
}

func TestUncheckedBuildsetAllowsPartialCoverage(t *testing.T) {
	src := toySrc + "\nbuildset partial { unchecked; visibility min; entrypoint e = translate_pc, fetch, decode, execute; }"
	spec := mustParse(t, src)
	if spec.Buildset("partial") == nil {
		t.Fatal("partial buildset missing")
	}
}

func TestParserErrorRecovery(t *testing.T) {
	// Two distinct syntax errors should both be reported.
	src := "isa \"x\"\nword 64;\nbogus decl;\nfield f 64;"
	_, err := Parse("r.lis", src)
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "expected ';'") || !strings.Contains(msg, "unknown declaration") {
		t.Errorf("missing expected diagnostics:\n%s", msg)
	}
}

func TestConstFolding(t *testing.T) {
	src := strings.Replace(toySrc, `const HALT_BASE = 128;`,
		`const HALT_BASE = 128;
const A = 3 + 4 * 2;
const B = A << 2;
const C = B > 40 ? 1 : 2;
const D = sext16(0xffff);
const E = popcnt(0xf0f0);`, 1)
	spec := mustParse(t, src)
	want := map[string]uint64{"A": 11, "B": 44, "C": 1, "D": ^uint64(0), "E": 8}
	got := map[string]uint64{}
	for _, c := range spec.Consts {
		got[c.Name] = c.Val
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("const %s = %d, want %d", k, got[k], v)
		}
	}
}

func TestConstErrors(t *testing.T) {
	expectErr(t, toySrc+"\nconst X = src_a + 1;", "non-const")
	expectErr(t, toySrc+"\nconst X = load64(8);", "pure builtins")
}

func TestLexerLiterals(t *testing.T) {
	var errs ErrorList
	lx := newLexer("t", "0x10 0b101 42 1_000 \"hi\\n\" foo", &errs)
	wantNums := []uint64{16, 5, 42, 1000}
	for i, w := range wantNums {
		tok := lx.next()
		if tok.kind != tokNumber || tok.num != w {
			t.Errorf("tok %d = %v %d, want number %d", i, tok.kind, tok.num, w)
		}
	}
	if tok := lx.next(); tok.kind != tokString || tok.text != "hi\n" {
		t.Errorf("string tok = %q", tok.text)
	}
	if tok := lx.next(); tok.kind != tokIdent || tok.text != "foo" {
		t.Errorf("ident tok = %q", tok.text)
	}
	if err := errs.Err(); err != nil {
		t.Errorf("lexer errors: %v", err)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"\"unterminated", "/* unterminated", "$"} {
		var errs ErrorList
		lx := newLexer("t", src, &errs)
		for tok := lx.next(); tok.kind != tokEOF; tok = lx.next() {
		}
		if len(errs) == 0 {
			t.Errorf("source %q: expected lexer error", src)
		}
	}
}

func TestEvalPureBuiltinSemantics(t *testing.T) {
	b := func(name string) *Builtin { return Builtins[name] }
	cases := []struct {
		name string
		args []uint64
		want uint64
	}{
		{"sext8", []uint64{0x80}, 0xffffffffffffff80},
		{"sext16", []uint64{0x7fff}, 0x7fff},
		{"sext32", []uint64{0x80000000}, 0xffffffff80000000},
		{"sext", []uint64{0x10, 5}, 0xfffffffffffffff0},
		{"trunc", []uint64{0x1ff, 8}, 0xff},
		{"bits", []uint64{0xabcd, 15, 8}, 0xab},
		{"asr", []uint64{0x8000000000000000, 63}, ^uint64(0)},
		{"lts", []uint64{^uint64(0), 0}, 1},
		{"gts", []uint64{^uint64(0), 0}, 0},
		{"sdiv", []uint64{uint64(^uint64(0) - 6), 2}, ^uint64(2)}, // -7/2 = -3
		{"srem", []uint64{uint64(^uint64(0) - 6), 2}, ^uint64(0)}, // -7%2 = -1
		{"sdiv", []uint64{5, 0}, 0},
		{"mulhu", []uint64{1 << 63, 4}, 2},
		{"rotl32", []uint64{0x80000001, 1}, 0x00000003},
		{"rotr64", []uint64{1, 1}, 1 << 63},
		{"clz32", []uint64{1}, 31},
		{"ctz64", []uint64{8}, 3},
		{"popcnt", []uint64{0xff}, 8},
	}
	for _, tc := range cases {
		if got := EvalPureBuiltin(b(tc.name), tc.args); got != tc.want {
			t.Errorf("%s%v = %#x, want %#x", tc.name, tc.args, got, tc.want)
		}
	}
}

func TestMulhsMatchesWideMultiply(t *testing.T) {
	f := func(x, y int64) bool {
		got := EvalPureBuiltin(Builtins["mulhs"], []uint64{uint64(x), uint64(y)})
		// Reference via 128-bit decomposition through mulhu identity.
		hi := EvalPureBuiltin(Builtins["mulhu"], []uint64{uint64(x), uint64(y)})
		if x < 0 {
			hi -= uint64(y)
		}
		if y < 0 {
			hi -= uint64(x)
		}
		return got == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSextTruncInverse(t *testing.T) {
	f := func(x uint64, w8 uint8) bool {
		w := uint64(w8%63) + 1
		tr := EvalPureBuiltin(Builtins["trunc"], []uint64{x, w})
		se := EvalPureBuiltin(Builtins["sext"], []uint64{x, w})
		// trunc(sext(x,w), w) == trunc(x, w)
		return EvalPureBuiltin(Builtins["trunc"], []uint64{se, w}) == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalBinOpProperties(t *testing.T) {
	f := func(x, y uint64) bool {
		if EvalBinaryOp(OpAdd, x, y) != x+y {
			return false
		}
		if EvalBinaryOp(OpDiv, x, 0) != 0 || EvalBinaryOp(OpRem, x, 0) != 0 {
			return false
		}
		if EvalBinaryOp(OpShl, x, 64) != 0 || EvalBinaryOp(OpShr, x, 70) != 0 {
			return false
		}
		lt := EvalBinaryOp(OpLt, x, y)
		ge := EvalBinaryOp(OpGe, x, y)
		return lt+ge == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The parser must never panic, no matter how the input is mangled
// (truncations and character substitutions over the toy source).
func TestParserRobustnessNoPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	// Truncations.
	for cut := 0; cut < len(toySrc); cut += 97 {
		Parse("trunc.lis", toySrc[:cut])
	}
	// Deterministic character corruption.
	junk := []byte{'{', '}', ';', '%', '"', 0, '\\'}
	x := uint32(12345)
	for k := 0; k < 300; k++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		pos := int(x) % len(toySrc)
		if pos < 0 {
			pos = -pos
		}
		mutated := []byte(toySrc)
		mutated[pos] = junk[int(x>>8)%len(junk)]
		Parse("mut.lis", string(mutated))
	}
}

func TestDeeplyNestedExpressionsParse(t *testing.T) {
	expr := "1"
	for i := 0; i < 200; i++ {
		expr = "(" + expr + " + 1)"
	}
	src := toySrc + "\nconst DEEP = " + expr + ";"
	spec, err := Parse("deep.lis", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Consts {
		if c.Name == "DEEP" && c.Val != 201 {
			t.Errorf("DEEP = %d", c.Val)
		}
	}
}

func TestAsmSuffixDeclaration(t *testing.T) {
	src := toySrc + `
asmsuffix op { q = 1; w = 2; }
`
	spec := mustParse(t, src)
	if spec.AsmSuffix == nil || spec.AsmSuffix.Field != "op" || len(spec.AsmSuffix.Defs) != 2 {
		t.Fatalf("asmsuffix = %+v", spec.AsmSuffix)
	}
	expectErr(t, src+"\nasmsuffix op { z = 3; }", "at most one asmsuffix")
	expectErr(t, toySrc+"\nasmsuffix op { q = 1; q = 2; }", "duplicate asm suffix")
}

func TestFormatFieldDefaults(t *testing.T) {
	src := strings.Replace(toySrc,
		"format ALUF { op[31:26]; ra[25:21]; rb[20:16]; rc[15:11]; }",
		"format ALUF { op[31:26]; ra[25:21] default 7; rb[20:16]; rc[15:11]; }", 1)
	spec := mustParse(t, src)
	ff := spec.Instr("ADD").Format.Field("ra")
	if ff.Default != 7 {
		t.Errorf("default = %d", ff.Default)
	}
}

func TestFetchAndExcStepDeclarations(t *testing.T) {
	spec := mustParse(t, toySrc)
	// toySrc declares neither; defaults apply.
	if spec.FetchStep != spec.DecodeStep {
		t.Errorf("default fetch step = %d", spec.FetchStep)
	}
	if spec.ExcStep != len(spec.Steps)-1 {
		t.Errorf("default exception step = %d", spec.ExcStep)
	}
	src := strings.Replace(toySrc, "decodestep decode;",
		"decodestep decode;\nfetchstep fetch;\nexcstep exception;", 1)
	spec2 := mustParse(t, src)
	if spec2.FetchStep != spec2.StepIndex("fetch") || spec2.ExcStep != spec2.StepIndex("exception") {
		t.Errorf("explicit steps: fetch=%d exc=%d", spec2.FetchStep, spec2.ExcStep)
	}
	expectErr(t, strings.Replace(toySrc, "decodestep decode;",
		"decodestep decode;\nfetchstep execute;", 1), "must not come after the decode step")
	expectErr(t, toySrc+"\nfetchstep nosuch;", "not a declared step")
}
