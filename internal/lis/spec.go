package lis

import "singlespec/internal/mach"

// This file defines the resolved specification model produced by semantic
// analysis. The synthesis engine consumes a *Spec; it never re-examines
// source text.

// Builtin field names. These form the paper's "minimal information" level
// of informational detail (§V-B "Min": address, instruction encoding, next
// PC, faults, and simulator context), plus the decode-level opcode and the
// internal nullify flag used for predication.
const (
	FieldPC        = "pc"
	FieldPhysPC    = "phys_pc"
	FieldInstrBits = "instr_bits"
	FieldNextPC    = "next_pc"
	FieldFault     = "fault"
	FieldCtx       = "ctx"
	FieldOpcode    = "opcode"  // instruction id; decode-level information
	FieldNullify   = "nullify" // predication: suppress remaining steps
)

// MinFields is the set of builtin fields always present in any interface.
var MinFields = []string{FieldPC, FieldPhysPC, FieldInstrBits, FieldNextPC, FieldFault, FieldCtx}

// Spec is a fully resolved LIS description.
type Spec struct {
	Name      string
	Word      int // register width in bits (32 or 64)
	Endian    mach.ByteOrder
	InstrSize int // instruction size in bytes (fixed-width encodings)

	Spaces []*SpaceDecl
	Steps  []string // ordered execution steps
	// DecodeStep is the index into Steps of the step that performs
	// instruction decode; steps before it run pre-decode (ALL actions only).
	DecodeStep int
	// FetchStep is the step at which the engine loads instruction bits
	// (defaults to the decode step).
	FetchStep int
	// ExcStep is the step faults divert to (defaults to the last step).
	ExcStep int

	Consts    []*Const
	Fields    []*Field // builtins first, then declared, then auto (operand idx)
	Formats   []*Format
	Classes   []*Class
	Accs      []*Accessor
	OpNames   []*OperandName
	Instrs    []*Instr
	Buildsets []*Buildset

	// AsmSuffix, when non-nil, declares mnemonic-suffix encoding of one
	// format field (e.g. arm32's condition suffixes: "bne" = "b" with
	// cond=1). Part of deriving the assembler from the single spec.
	AsmSuffix *AsmSuffix

	// AllActions[stepIndex] lists the resolved ALL-owner actions per step
	// (they also appear in every instruction's StepActions; this list lets
	// the engine run them when no instruction has been decoded yet).
	AllActions [][]*Action

	fieldByName map[string]*Field
	spaceByName map[string]*SpaceDecl
	stepIndex   map[string]int
	instrByName map[string]*Instr
	bsByName    map[string]*Buildset
}

// Field looks up a field by name (nil if absent).
func (s *Spec) Field(name string) *Field { return s.fieldByName[name] }

// SpaceDecl looks up a register space by name (nil if absent).
func (s *Spec) Space(name string) *SpaceDecl { return s.spaceByName[name] }

// StepIndex returns the position of a step name, or -1.
func (s *Spec) StepIndex(name string) int {
	if i, ok := s.stepIndex[name]; ok {
		return i
	}
	return -1
}

// Instr looks up an instruction by mnemonic (nil if absent).
func (s *Spec) Instr(name string) *Instr { return s.instrByName[name] }

// Buildset looks up a buildset by name (nil if absent).
func (s *Spec) Buildset(name string) *Buildset { return s.bsByName[name] }

// SpaceDefs converts the spec's register spaces into machine space
// definitions.
func (s *Spec) SpaceDefs() []mach.SpaceDef {
	defs := make([]mach.SpaceDef, len(s.Spaces))
	for i, sp := range s.Spaces {
		defs[i] = mach.SpaceDef{Name: sp.Name, Count: sp.Count, Width: sp.Width, ZeroReg: sp.Zero}
	}
	return defs
}

// NewMachine builds a machine with this spec's register spaces over a fresh
// memory of the spec's byte order.
func (s *Spec) NewMachine() *mach.Machine {
	return mach.NewMachine(mach.NewMemory(s.Endian), s.SpaceDefs())
}

// SpaceDecl declares an architectural register space.
type SpaceDecl struct {
	Pos   Pos
	Name  string
	Count int
	Width int
	Zero  int // hardwired-zero register index or -1
	Index int // position in Spec.Spaces
}

// Const is a top-level named constant.
type Const struct {
	Pos  Pos
	Name string
	Val  uint64
}

// Field is an intermediate value an instruction may expose through the
// interface (the paper's `field` construct).
type Field struct {
	Pos     Pos
	Name    string
	Width   int
	Builtin bool
	Auto    bool // auto-created operand index field
	Index   int  // position in Spec.Fields
}

// FmtField is one bitfield of an instruction format.
type FmtField struct {
	Pos    Pos
	Name   string
	Hi, Lo int
	Signed bool // immediates: sign-extend when assembled/displayed
	// Default is the value the assembler encodes when the field is neither
	// matched nor mentioned in the asm template (e.g. arm32's cond = AL).
	Default uint64
}

// Width returns the bitfield width.
func (f *FmtField) Width() int { return f.Hi - f.Lo + 1 }

// Format is an instruction encoding format.
type Format struct {
	Pos    Pos
	Name   string
	Fields []*FmtField
	byName map[string]*FmtField
}

// Field looks up a format bitfield by name.
func (f *Format) Field(name string) *FmtField { return f.byName[name] }

// Class groups instructions that share behaviour (operands and actions can
// be declared at class level).
type Class struct {
	Pos  Pos
	Name string
}

// Accessor describes how operands reach architectural state (the paper's
// accessor construct); ours are register-space accessors.
type Accessor struct {
	Pos   Pos
	Name  string
	Space *SpaceDecl
}

// OperandName declares a named operand role (the paper's operandname):
// which step decodes it, which step reads or writes it, and which field
// carries its value. An index field `<name>_idx` is created automatically
// (decode-level information).
type OperandName struct {
	Pos        Pos
	Name       string
	DecodeStep int // step index where the operand identifier is extracted
	AccessStep int // step index where the value is read (src) or written (dest)
	IsWrite    bool
	Value      *Field // carries the operand's value
	IdxField   *Field // auto field carrying the decoded register index
}

// OperandBinding attaches an operand role to an instruction (the paper's
// operand construct): which accessor, and where the register index comes
// from (an encoding field or a constant).
type OperandBinding struct {
	Pos      Pos
	Op       *OperandName
	Acc      *Accessor
	IdxEnc   *FmtField // register index from this encoding field, or nil
	IdxConst int       // constant register index when IdxEnc is nil
}

// Action is a resolved semantics snippet for (owner, step).
type Action struct {
	Pos      Pos
	Step     int // step index
	Body     *Block
	Override bool
	// Owner describes provenance for diagnostics: "ALL", class name, or
	// instruction name.
	Owner string
}

// MatchClause is one `encfield == value` term of an instruction's encoding
// match.
type MatchClause struct {
	Pos   Pos
	Field *FmtField
	Val   uint64
}

// Instr is a fully resolved instruction.
type Instr struct {
	Pos     Pos
	Name    string
	ID      int
	Format  *Format
	Classes []*Class
	Match   []MatchClause
	Asm     string

	// Mask/Value: an instruction word w encodes this instruction iff
	// w&Mask == Value.
	Mask, Value uint64

	Operands []*OperandBinding
	// StepActions[stepIndex] lists the resolved action bodies to run at
	// that step, in execution order (ALL, then classes in declaration
	// order, then the instruction's own action; an override replaces all
	// earlier ones for that step).
	StepActions [][]*Action

	// CTI marks instructions whose semantics may assign next_pc (control
	// transfer); these terminate translated blocks.
	CTI bool
	// Barrier marks instructions that must end a translated block for
	// non-control reasons (syscall, halt) because they can change
	// arbitrary state.
	Barrier bool
}

// BuildsetMode selects the semantic-detail style of the generated
// interface.
type BuildsetMode int

// Buildset modes.
const (
	// ModeCall generates one call per entrypoint (One when a single
	// entrypoint covers all steps; Step when there are several).
	ModeCall BuildsetMode = iota
	// ModeBlock generates a basic-block-at-a-time interface backed by the
	// block translator; requires a single entrypoint.
	ModeBlock
)

// VisibilityBase is the starting set a buildset's visibility modifies.
type VisibilityBase int

// Visibility bases.
const (
	VisMin VisibilityBase = iota // only builtin minimal fields
	VisAll                       // every field and operand value
)

// Buildset is an interface specification: informational detail
// (visibility), semantic detail (entrypoints), and speculation support.
type Buildset struct {
	Pos  Pos
	Name string
	Mode BuildsetMode
	Spec bool // speculation (rollback) support
	// Unchecked disables interface-completeness diagnostics (used to
	// reproduce the paper's class of interface bugs in tests).
	Unchecked bool

	VisBase VisibilityBase
	Show    []*Field // added to base
	Hide    []*Field // removed from base

	Entrypoints []*Entrypoint

	// SrcLines is the number of non-blank source lines this buildset
	// occupied (Table I's "lines per buildset" statistic).
	SrcLines int
}

// Visible reports whether field f is part of this buildset's informational
// detail. Builtin minimal fields are always visible.
func (b *Buildset) Visible(f *Field) bool {
	for _, m := range MinFields {
		if f.Name == m {
			return true
		}
	}
	for _, h := range b.Hide {
		if h == f {
			return false
		}
	}
	for _, s := range b.Show {
		if s == f {
			return true
		}
	}
	return b.VisBase == VisAll
}

// AsmSuffix maps mnemonic suffixes to values of a named encoding field.
type AsmSuffix struct {
	Field string
	Defs  []SuffixDef
}

// SuffixDef is one suffix-name/field-value pair.
type SuffixDef struct {
	Name string
	Val  uint64
}

// Entrypoint is one interface call: an ordered subsequence of steps.
type Entrypoint struct {
	Pos   Pos
	Name  string
	Steps []int // step indices, ascending
}
