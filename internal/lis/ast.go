package lis

// AST of the embedded action language. The parser builds these nodes;
// semantic analysis resolves identifier references and annotates nodes in
// place; the synthesis engine compiles them.

// Stmt is an action-language statement.
type Stmt interface{ stmtNode() }

// Expr is an action-language expression.
type Expr interface {
	exprNode()
	Position() Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// AssignStmt is `lvalue = expr;`. The left side must name a field, an
// operand value, or a local introduced by let.
type AssignStmt struct {
	Pos  Pos
	Name string
	// Resolved by sema:
	Ref RefKind
	Sym any // *Field or *Local
	RHS Expr
}

// LetStmt introduces an action-scoped local: `let name = expr;`.
type LetStmt struct {
	Pos   Pos
	Name  string
	Local *Local // resolved
	RHS   Expr
}

// IfStmt is `if expr { } [else { } | else if ...]`.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else Stmt // *Block or *IfStmt or nil
}

// CallStmt is a statement-position builtin call (store32(...), syscall(), halt(...)).
type CallStmt struct {
	Pos     Pos
	Name    string
	Builtin *Builtin // resolved
	Args    []Expr
}

func (*AssignStmt) stmtNode() {}
func (*LetStmt) stmtNode()    {}
func (*IfStmt) stmtNode()     {}
func (*CallStmt) stmtNode()   {}
func (*Block) stmtNode()      {}

// RefKind classifies what an identifier resolved to.
type RefKind int

// Identifier reference kinds.
const (
	RefUnresolved RefKind = iota
	RefField              // a declared or builtin field (incl. operand value fields)
	RefLocal              // a let-bound local
	RefEncoding           // a format bitfield of the owning instruction
	RefConst              // a top-level const
)

// Local is a let-bound temporary within one action body.
type Local struct {
	Name string
	Slot int // assigned by the compiler
}

// NumExpr is an integer literal.
type NumExpr struct {
	Pos Pos
	Val uint64
}

// IdentExpr references a field, local, encoding field, or const.
type IdentExpr struct {
	Pos  Pos
	Name string
	Ref  RefKind
	Sym  any // *Field, *Local, *FmtField, or *Const
}

// Op is an action-language operator.
type Op int

// Operators. Arithmetic and comparison are unsigned 64-bit; signed
// variants are builtins. Division/modulo by zero yields 0; shifts >= 64
// yield 0.
const (
	OpNeg Op = iota // unary -
	OpNot           // unary !
	OpInv           // unary ~
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLand
	OpLor
)

var opNames = [...]string{
	OpNeg: "-", OpNot: "!", OpInv: "~", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpRem: "%", OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<",
	OpShr: ">>", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">",
	OpGe: ">=", OpLand: "&&", OpLor: "||",
}

func (o Op) String() string { return opNames[o] }

// UnaryExpr is -x, ~x, or !x.
type UnaryExpr struct {
	Pos Pos
	Op  Op
	X   Expr
}

// BinaryExpr is a binary operator application. All arithmetic is unsigned
// 64-bit; signed variants are builtins.
type BinaryExpr struct {
	Pos  Pos
	Op   Op
	L, R Expr
}

// CondExpr is `c ? a : b`.
type CondExpr struct {
	Pos     Pos
	C, A, B Expr
}

// CallExpr is a builtin function application in expression position.
type CallExpr struct {
	Pos     Pos
	Name    string
	Builtin *Builtin // resolved
	Args    []Expr
}

func (*NumExpr) exprNode()    {}
func (*IdentExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}

// Position implements Expr.
func (e *NumExpr) Position() Pos    { return e.Pos }
func (e *IdentExpr) Position() Pos  { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *CondExpr) Position() Pos   { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }

// BuiltinKind distinguishes pure, memory-reading, and effectful builtins.
type BuiltinKind int

// Builtin kinds.
const (
	BuiltinPure  BuiltinKind = iota
	BuiltinLoad              // reads simulated memory; may fault
	BuiltinStore             // writes simulated memory; may fault; statement only
	BuiltinEffect
)

// Builtin describes one action-language builtin function.
type Builtin struct {
	Name  string
	Arity int
	Kind  BuiltinKind
	// Size is the access size in bytes for load/store builtins.
	Size int
	// Signed marks sign-extending loads.
	Signed bool
}

// Builtins is the table of action-language builtin functions.
var Builtins = map[string]*Builtin{
	// width / sign manipulation
	"sext8":  {Name: "sext8", Arity: 1},
	"sext16": {Name: "sext16", Arity: 1},
	"sext32": {Name: "sext32", Arity: 1},
	"sext":   {Name: "sext", Arity: 2},
	"trunc":  {Name: "trunc", Arity: 2},
	"bits":   {Name: "bits", Arity: 3},
	// signed arithmetic / comparison
	"asr":   {Name: "asr", Arity: 2},
	"lts":   {Name: "lts", Arity: 2},
	"les":   {Name: "les", Arity: 2},
	"gts":   {Name: "gts", Arity: 2},
	"ges":   {Name: "ges", Arity: 2},
	"sdiv":  {Name: "sdiv", Arity: 2},
	"srem":  {Name: "srem", Arity: 2},
	"mulhu": {Name: "mulhu", Arity: 2},
	"mulhs": {Name: "mulhs", Arity: 2},
	// bit tricks
	"rotl32": {Name: "rotl32", Arity: 2},
	"rotr32": {Name: "rotr32", Arity: 2},
	"rotl64": {Name: "rotl64", Arity: 2},
	"rotr64": {Name: "rotr64", Arity: 2},
	"clz32":  {Name: "clz32", Arity: 1},
	"clz64":  {Name: "clz64", Arity: 1},
	"ctz32":  {Name: "ctz32", Arity: 1},
	"ctz64":  {Name: "ctz64", Arity: 1},
	"popcnt": {Name: "popcnt", Arity: 1},
	// memory
	"load8u":  {Name: "load8u", Arity: 1, Kind: BuiltinLoad, Size: 1},
	"load8s":  {Name: "load8s", Arity: 1, Kind: BuiltinLoad, Size: 1, Signed: true},
	"load16u": {Name: "load16u", Arity: 1, Kind: BuiltinLoad, Size: 2},
	"load16s": {Name: "load16s", Arity: 1, Kind: BuiltinLoad, Size: 2, Signed: true},
	"load32u": {Name: "load32u", Arity: 1, Kind: BuiltinLoad, Size: 4},
	"load32s": {Name: "load32s", Arity: 1, Kind: BuiltinLoad, Size: 4, Signed: true},
	"load64":  {Name: "load64", Arity: 1, Kind: BuiltinLoad, Size: 8},
	"store8":  {Name: "store8", Arity: 2, Kind: BuiltinStore, Size: 1},
	"store16": {Name: "store16", Arity: 2, Kind: BuiltinStore, Size: 2},
	"store32": {Name: "store32", Arity: 2, Kind: BuiltinStore, Size: 4},
	"store64": {Name: "store64", Arity: 2, Kind: BuiltinStore, Size: 8},
	// effects
	"syscall": {Name: "syscall", Arity: 0, Kind: BuiltinEffect},
	"halt":    {Name: "halt", Arity: 1, Kind: BuiltinEffect},
}
