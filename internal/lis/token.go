// Package lis implements the frontend of the LIS-dialect Architecture
// Description Language: lexer, parser, AST, and semantic analysis producing
// a resolved Spec that the synthesis engine (internal/core) consumes.
//
// The dialect follows the constructs of Penry (ISPASS 2011): fields,
// actions, operands/operandnames/accessors, and buildsets with visibility
// and entrypoint declarations. Instruction semantics are written in a small
// embedded action language (u64 values, explicit width/sign builtins)
// instead of the paper's C++ snippets; see DESIGN.md §2.
package lis

import (
	"fmt"
	"strings"
	"unicode"
)

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Error is a diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList accumulates diagnostics.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Err returns the list as an error, or nil if empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	// punctuation
	tokSemi     // ;
	tokComma    // ,
	tokLBrace   // {
	tokRBrace   // }
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokColon    // :
	tokQuestion // ?
	tokAt       // @
	// operators
	tokAssign // =
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
	tokPct    // %
	tokAmp    // &
	tokPipe   // |
	tokCaret  // ^
	tokTilde  // ~
	tokBang   // !
	tokShl    // <<
	tokShr    // >>
	tokEq     // ==
	tokNe     // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokAndAnd // &&
	tokOrOr   // ||
)

var tokNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokNumber: "number",
	tokString: "string", tokSemi: "';'", tokComma: "','", tokLBrace: "'{'",
	tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'", tokLBracket: "'['",
	tokRBracket: "']'", tokColon: "':'", tokQuestion: "'?'", tokAt: "'@'",
	tokAssign: "'='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokSlash: "'/'", tokPct: "'%'", tokAmp: "'&'", tokPipe: "'|'",
	tokCaret: "'^'", tokTilde: "'~'", tokBang: "'!'", tokShl: "'<<'",
	tokShr: "'>>'", tokEq: "'=='", tokNe: "'!='", tokLt: "'<'",
	tokLe: "'<='", tokGt: "'>'", tokGe: "'>='", tokAndAnd: "'&&'",
	tokOrOr: "'||'",
}

func (k tokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

type token struct {
	kind tokKind
	pos  Pos
	text string // ident text, string contents
	num  uint64 // number value
}

type lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs *ErrorList
}

func newLexer(file, src string, errs *ErrorList) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1, errs: errs}
}

func (lx *lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *lexer) errorf(p Pos, format string, args ...any) {
	*lx.errs = append(*lx.errs, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) nextByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.nextByte()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.nextByte()
			}
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '*':
			p := lx.pos()
			lx.nextByte()
			lx.nextByte()
			closed := false
			for lx.off < len(lx.src) {
				if lx.src[lx.off] == '*' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/' {
					lx.nextByte()
					lx.nextByte()
					closed = true
					break
				}
				lx.nextByte()
			}
			if !closed {
				lx.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *lexer) next() token {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: p}
	}
	c := lx.nextByte()
	switch {
	case isIdentStart(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && isIdentCont(lx.src[lx.off]) {
			lx.nextByte()
		}
		return token{kind: tokIdent, pos: p, text: lx.src[start:lx.off]}
	case c >= '0' && c <= '9':
		return lx.lexNumber(p, c)
	case c == '"':
		return lx.lexString(p)
	}
	two := func(second byte, k2, k1 tokKind) token {
		if lx.peekByte() == second {
			lx.nextByte()
			return token{kind: k2, pos: p}
		}
		return token{kind: k1, pos: p}
	}
	switch c {
	case ';':
		return token{kind: tokSemi, pos: p}
	case ',':
		return token{kind: tokComma, pos: p}
	case '{':
		return token{kind: tokLBrace, pos: p}
	case '}':
		return token{kind: tokRBrace, pos: p}
	case '(':
		return token{kind: tokLParen, pos: p}
	case ')':
		return token{kind: tokRParen, pos: p}
	case '[':
		return token{kind: tokLBracket, pos: p}
	case ']':
		return token{kind: tokRBracket, pos: p}
	case ':':
		return token{kind: tokColon, pos: p}
	case '?':
		return token{kind: tokQuestion, pos: p}
	case '@':
		return token{kind: tokAt, pos: p}
	case '+':
		return token{kind: tokPlus, pos: p}
	case '-':
		return token{kind: tokMinus, pos: p}
	case '*':
		return token{kind: tokStar, pos: p}
	case '/':
		return token{kind: tokSlash, pos: p}
	case '%':
		return token{kind: tokPct, pos: p}
	case '~':
		return token{kind: tokTilde, pos: p}
	case '^':
		return token{kind: tokCaret, pos: p}
	case '=':
		return two('=', tokEq, tokAssign)
	case '!':
		return two('=', tokNe, tokBang)
	case '<':
		if lx.peekByte() == '<' {
			lx.nextByte()
			return token{kind: tokShl, pos: p}
		}
		return two('=', tokLe, tokLt)
	case '>':
		if lx.peekByte() == '>' {
			lx.nextByte()
			return token{kind: tokShr, pos: p}
		}
		return two('=', tokGe, tokGt)
	case '&':
		return two('&', tokAndAnd, tokAmp)
	case '|':
		return two('|', tokOrOr, tokPipe)
	}
	lx.errorf(p, "unexpected character %q", c)
	return lx.next()
}

func (lx *lexer) lexNumber(p Pos, first byte) token {
	base := uint64(10)
	var digits []byte
	if first == '0' && (lx.peekByte() == 'x' || lx.peekByte() == 'X') {
		lx.nextByte()
		base = 16
	} else if first == '0' && (lx.peekByte() == 'b' || lx.peekByte() == 'B') {
		lx.nextByte()
		base = 2
	} else {
		digits = append(digits, first)
	}
	for lx.off < len(lx.src) {
		c := lx.src[lx.off]
		if c == '_' {
			lx.nextByte()
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			goto done
		}
		if d >= base {
			goto done
		}
		digits = append(digits, c)
		lx.nextByte()
	}
done:
	if len(digits) == 0 {
		lx.errorf(p, "malformed number literal")
		return token{kind: tokNumber, pos: p}
	}
	var v uint64
	for _, c := range digits {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			d = uint64(c-'A') + 10
		}
		nv := v*base + d
		if nv < v {
			lx.errorf(p, "number literal overflows 64 bits")
			break
		}
		v = nv
	}
	return token{kind: tokNumber, pos: p, num: v}
}

func (lx *lexer) lexString(p Pos) token {
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			lx.errorf(p, "unterminated string literal")
			break
		}
		c := lx.nextByte()
		if c == '"' {
			break
		}
		if c == '\n' {
			lx.errorf(p, "newline in string literal")
			break
		}
		if c == '\\' {
			e := lx.nextByte()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(e)
			default:
				lx.errorf(p, "unknown escape \\%c", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token{kind: tokString, pos: p, text: b.String()}
}
