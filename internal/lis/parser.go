package lis

import (
	"fmt"
	"strings"
)

// The parser produces a rawFile of unresolved declarations; Analyze (sema.go)
// resolves names and builds the Spec. Top-level keywords are contextual
// (they are ordinary identifiers elsewhere); only `let`, `if`, and `else`
// are reserved inside action bodies.

type rawFile struct {
	name      string
	namePos   Pos
	word      int
	endian    string
	endianPos Pos
	instrSize int
	spaces    []rawSpace
	steps     []rawIdent
	decodeStp rawIdent
	fetchStp  rawIdent
	excStp    rawIdent
	consts    []rawConst
	fields    []rawField
	formats   []rawFormat
	classes   []rawIdent
	accessors []rawAccessor
	opnames   []rawOpName
	operands  []rawOperand
	actions   []rawAction
	buildsets []rawBuildset
	suffixes  []rawSuffix
}

type rawSuffix struct {
	pos   Pos
	field rawIdent
	defs  []rawSuffixDef
}

type rawSuffixDef struct {
	pos  Pos
	name string
	val  uint64
}

type rawIdent struct {
	pos  Pos
	name string
}

type rawSpace struct {
	pos          Pos
	name         string
	count, width int
	zero         int
}

type rawConst struct {
	pos  Pos
	name string
	val  Expr
}

type rawField struct {
	pos   Pos
	name  string
	width int
}

type rawFormat struct {
	pos    Pos
	name   string
	fields []*FmtField
}

type rawAccessor struct {
	pos   Pos
	name  string
	space rawIdent
}

type rawOpName struct {
	pos        Pos
	name       string
	decodeStep rawIdent // empty name = default decode step
	accessStep rawIdent
	isWrite    bool
	value      rawIdent
}

type rawOperand struct {
	pos      Pos
	owner    rawIdent // instruction or class
	opname   rawIdent
	accessor rawIdent
	idxEnc   rawIdent // encoding field name, or empty
	idxConst uint64
	isConst  bool
}

type rawAction struct {
	pos      Pos
	owner    rawIdent // "ALL", class, or instruction
	step     rawIdent
	body     *Block
	override bool
}

type rawMatch struct {
	pos   Pos
	field rawIdent
	val   uint64
}

type rawInstr struct {
	pos     Pos
	name    string
	format  rawIdent
	classes []rawIdent
	match   []rawMatch
	asm     string
}

type rawBuildset struct {
	pos       Pos
	name      string
	mode      BuildsetMode
	spec      bool
	unchecked bool
	visBase   VisibilityBase
	visSet    bool
	show      []rawIdent
	hide      []rawIdent
	entries   []rawEntry
	srcLines  int
}

type rawEntry struct {
	pos   Pos
	name  string
	steps []rawIdent
}

type parser struct {
	lx     *lexer
	tok    token
	peeked *token
	errs   *ErrorList
	file   *rawFile
	instrs []rawInstr
	src    string
}

// Parse parses LIS source. filename is used in diagnostics only.
// On error it returns an ErrorList (possibly alongside a partial result).
func Parse(filename, src string) (*Spec, error) {
	var errs ErrorList
	p := &parser{lx: newLexer(filename, src, &errs), errs: &errs, file: &rawFile{word: 64, instrSize: 4}, src: src}
	p.advance()
	p.parseFile()
	if len(errs) > 0 {
		return nil, errs
	}
	return analyze(p.file, p.instrs, &errs)
}

func (p *parser) advance() {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return
	}
	p.tok = p.lx.next()
}

func (p *parser) errorf(pos Pos, format string, args ...any) {
	// Bound diagnostic volume on badly corrupted input.
	if len(*p.errs) < 200 {
		*p.errs = append(*p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k tokKind) token {
	t := p.tok
	if t.kind != k {
		p.errorf(t.pos, "expected %v, found %v", k, describe(t))
		// Do not consume: let the caller's recovery find a sync point.
		if k == tokSemi {
			p.syncToSemi()
			return t
		}
	}
	p.advance()
	return t
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("'%s'", t.text)
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return t.kind.String()
	}
}

func (p *parser) ident() rawIdent {
	t := p.expect(tokIdent)
	return rawIdent{pos: t.pos, name: t.text}
}

func (p *parser) number() uint64 {
	t := p.expect(tokNumber)
	return t.num
}

// kw consumes the current token if it is the given contextual keyword.
func (p *parser) kw(word string) bool {
	if p.tok.kind == tokIdent && p.tok.text == word {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(word string) {
	if !p.kw(word) {
		p.errorf(p.tok.pos, "expected '%s', found %v", word, describe(p.tok))
		p.syncToSemi()
	}
}

// syncToSemi skips tokens until after the next ';' (or a '}' / EOF) to
// recover from a syntax error.
func (p *parser) syncToSemi() {
	depth := 0
	for {
		switch p.tok.kind {
		case tokEOF:
			return
		case tokSemi:
			if depth == 0 {
				p.advance()
				return
			}
		case tokLBrace:
			depth++
		case tokRBrace:
			if depth == 0 {
				return
			}
			depth--
		}
		p.advance()
	}
}

func (p *parser) parseFile() {
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent {
			p.errorf(p.tok.pos, "expected declaration, found %v", describe(p.tok))
			p.syncToSemi()
			// syncToSemi stops at (without consuming) a '}' so block
			// parsers can see it; at top level it must not stall us.
			if p.tok.kind == tokRBrace {
				p.advance()
			}
			continue
		}
		switch p.tok.text {
		case "isa":
			p.advance()
			t := p.expect(tokString)
			p.file.name, p.file.namePos = t.text, t.pos
			p.expect(tokSemi)
		case "word":
			p.advance()
			p.file.word = int(p.number())
			p.expect(tokSemi)
		case "endian":
			p.advance()
			t := p.expect(tokIdent)
			p.file.endian, p.file.endianPos = t.text, t.pos
			p.expect(tokSemi)
		case "instrsize":
			p.advance()
			p.file.instrSize = int(p.number())
			p.expect(tokSemi)
		case "space":
			p.parseSpace()
		case "step":
			p.advance()
			p.file.steps = append(p.file.steps, p.identList()...)
			p.expect(tokSemi)
		case "decodestep":
			p.advance()
			p.file.decodeStp = p.ident()
			p.expect(tokSemi)
		case "fetchstep":
			p.advance()
			p.file.fetchStp = p.ident()
			p.expect(tokSemi)
		case "excstep":
			p.advance()
			p.file.excStp = p.ident()
			p.expect(tokSemi)
		case "const":
			p.advance()
			name := p.ident()
			p.expect(tokAssign)
			e := p.parseExpr()
			p.expect(tokSemi)
			p.file.consts = append(p.file.consts, rawConst{pos: name.pos, name: name.name, val: e})
		case "field":
			p.advance()
			name := p.ident()
			w := int(p.number())
			p.expect(tokSemi)
			p.file.fields = append(p.file.fields, rawField{pos: name.pos, name: name.name, width: w})
		case "format":
			p.parseFormat()
		case "class":
			p.advance()
			p.file.classes = append(p.file.classes, p.identList()...)
			p.expect(tokSemi)
		case "accessor":
			p.advance()
			name := p.ident()
			p.expectKw("space")
			sp := p.ident()
			p.expect(tokSemi)
			p.file.accessors = append(p.file.accessors, rawAccessor{pos: name.pos, name: name.name, space: sp})
		case "operandname":
			p.parseOperandName()
		case "operand":
			p.parseOperand()
		case "action", "override":
			p.parseAction()
		case "instr":
			p.parseInstr()
		case "buildset":
			p.parseBuildset()
		case "asmsuffix":
			p.parseAsmSuffix()
		default:
			p.errorf(p.tok.pos, "unknown declaration '%s'", p.tok.text)
			p.syncToSemi()
		}
	}
}

func (p *parser) identList() []rawIdent {
	var out []rawIdent
	out = append(out, p.ident())
	for p.tok.kind == tokComma {
		p.advance()
		out = append(out, p.ident())
	}
	return out
}

func (p *parser) parseSpace() {
	p.advance()
	name := p.ident()
	s := rawSpace{pos: name.pos, name: name.name, zero: -1}
	p.expectKw("count")
	s.count = int(p.number())
	p.expectKw("width")
	s.width = int(p.number())
	if p.kw("zero") {
		s.zero = int(p.number())
	}
	p.expect(tokSemi)
	p.file.spaces = append(p.file.spaces, s)
}

func (p *parser) parseFormat() {
	p.advance()
	name := p.ident()
	f := rawFormat{pos: name.pos, name: name.name}
	p.expect(tokLBrace)
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		fn := p.ident()
		p.expect(tokLBracket)
		hi := int(p.number())
		p.expect(tokColon)
		lo := int(p.number())
		p.expect(tokRBracket)
		ff := &FmtField{Pos: fn.pos, Name: fn.name, Hi: hi, Lo: lo}
		for {
			if p.kw("signed") {
				ff.Signed = true
			} else if p.kw("default") {
				ff.Default = p.number()
			} else {
				break
			}
		}
		p.expect(tokSemi)
		f.fields = append(f.fields, ff)
	}
	p.expect(tokRBrace)
	p.file.formats = append(p.file.formats, f)
}

func (p *parser) parseOperandName() {
	p.advance()
	name := p.ident()
	o := rawOpName{pos: name.pos, name: name.name}
	if p.kw("decode") {
		p.expect(tokLParen)
		o.decodeStep = p.ident()
		p.expect(tokRParen)
	}
	switch {
	case p.kw("read"):
	case p.kw("write"):
		o.isWrite = true
	default:
		p.errorf(p.tok.pos, "expected 'read' or 'write' in operandname, found %v", describe(p.tok))
		p.syncToSemi()
		return
	}
	p.expect(tokLParen)
	o.accessStep = p.ident()
	p.expect(tokRParen)
	p.expect(tokAssign)
	o.value = p.ident()
	p.expect(tokSemi)
	p.file.opnames = append(p.file.opnames, o)
}

func (p *parser) parseOperand() {
	p.advance()
	owner := p.ident()
	opname := p.ident()
	acc := p.ident()
	o := rawOperand{pos: owner.pos, owner: owner, opname: opname, accessor: acc}
	p.expect(tokLParen)
	if p.tok.kind == tokNumber {
		o.isConst = true
		o.idxConst = p.number()
	} else {
		o.idxEnc = p.ident()
	}
	p.expect(tokRParen)
	p.expect(tokSemi)
	p.file.operands = append(p.file.operands, o)
}

func (p *parser) parseAction() {
	override := false
	if p.tok.text == "override" {
		override = true
		p.advance()
		p.expectKw("action")
	} else {
		p.advance() // "action"
	}
	owner := p.ident()
	p.expect(tokAt)
	step := p.ident()
	p.expect(tokAssign)
	body := p.parseBlock()
	p.file.actions = append(p.file.actions, rawAction{
		pos: owner.pos, owner: owner, step: step, body: body, override: override,
	})
}

func (p *parser) parseInstr() {
	p.advance()
	name := p.ident()
	in := rawInstr{pos: name.pos, name: name.name}
	p.expectKw("format")
	in.format = p.ident()
	for {
		switch {
		case p.kw("class"):
			in.classes = append(in.classes, p.identList()...)
		case p.kw("match"):
			for {
				f := p.ident()
				p.expect(tokEq)
				v := p.number()
				in.match = append(in.match, rawMatch{pos: f.pos, field: f, val: v})
				if p.tok.kind != tokComma {
					break
				}
				p.advance()
			}
		case p.kw("asm"):
			t := p.expect(tokString)
			in.asm = t.text
		default:
			p.expect(tokSemi)
			p.instrs = append(p.instrs, in)
			return
		}
	}
}

func (p *parser) parseBuildset() {
	p.advance()
	name := p.ident()
	bs := rawBuildset{pos: name.pos, name: name.name}
	startLine := name.pos.Line
	p.expect(tokLBrace)
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		switch {
		case p.kw("visibility"):
			bs.visSet = true
			switch {
			case p.kw("min"):
				bs.visBase = VisMin
			case p.kw("all"):
				bs.visBase = VisAll
			default:
				p.errorf(p.tok.pos, "expected 'min' or 'all' after visibility")
			}
			for {
				if p.kw("show") {
					bs.show = append(bs.show, p.identList()...)
				} else if p.kw("hide") {
					bs.hide = append(bs.hide, p.identList()...)
				} else {
					break
				}
			}
			p.expect(tokSemi)
		case p.kw("mode"):
			p.expectKw("block")
			bs.mode = ModeBlock
			p.expect(tokSemi)
		case p.kw("speculation"):
			switch {
			case p.kw("on"):
				bs.spec = true
			case p.kw("off"):
				bs.spec = false
			default:
				p.errorf(p.tok.pos, "expected 'on' or 'off' after speculation")
			}
			p.expect(tokSemi)
		case p.kw("unchecked"):
			bs.unchecked = true
			p.expect(tokSemi)
		case p.kw("entrypoint"):
			en := p.ident()
			p.expect(tokAssign)
			e := rawEntry{pos: en.pos, name: en.name, steps: p.identList()}
			p.expect(tokSemi)
			bs.entries = append(bs.entries, e)
		default:
			p.errorf(p.tok.pos, "unexpected %v in buildset", describe(p.tok))
			p.syncToSemi()
		}
	}
	end := p.tok.pos.Line
	p.expect(tokRBrace)
	bs.srcLines = countNonBlankLines(p.src, startLine, end)
	p.file.buildsets = append(p.file.buildsets, bs)
}

// countNonBlankLines counts the non-blank, non-comment-only source lines in
// the inclusive line span [from, to] (Table I's lines-per-buildset metric).
func countNonBlankLines(src string, from, to int) int {
	lines := strings.Split(src, "\n")
	n := 0
	for i := from; i <= to && i <= len(lines); i++ {
		t := strings.TrimSpace(lines[i-1])
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

func (p *parser) parseAsmSuffix() {
	p.advance()
	field := p.ident()
	sx := rawSuffix{pos: field.pos, field: field}
	p.expect(tokLBrace)
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		name := p.ident()
		p.expect(tokAssign)
		v := p.number()
		p.expect(tokSemi)
		sx.defs = append(sx.defs, rawSuffixDef{pos: name.pos, name: name.name, val: v})
	}
	p.expect(tokRBrace)
	p.file.suffixes = append(p.file.suffixes, sx)
}

// ---- action language ----

func (p *parser) parseBlock() *Block {
	b := &Block{Pos: p.tok.pos}
	p.expect(tokLBrace)
	for p.tok.kind != tokRBrace && p.tok.kind != tokEOF {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(tokRBrace)
	return b
}

func (p *parser) parseStmt() Stmt {
	if p.tok.kind != tokIdent {
		p.errorf(p.tok.pos, "expected statement, found %v", describe(p.tok))
		p.syncToSemi()
		return nil
	}
	switch p.tok.text {
	case "let":
		pos := p.tok.pos
		p.advance()
		name := p.ident()
		p.expect(tokAssign)
		rhs := p.parseExpr()
		p.expect(tokSemi)
		return &LetStmt{Pos: pos, Name: name.name, RHS: rhs}
	case "if":
		return p.parseIf()
	}
	name := p.ident()
	switch p.tok.kind {
	case tokAssign:
		p.advance()
		rhs := p.parseExpr()
		p.expect(tokSemi)
		return &AssignStmt{Pos: name.pos, Name: name.name, RHS: rhs}
	case tokLParen:
		args := p.parseArgs()
		p.expect(tokSemi)
		return &CallStmt{Pos: name.pos, Name: name.name, Args: args}
	default:
		p.errorf(p.tok.pos, "expected '=' or '(' after '%s'", name.name)
		p.syncToSemi()
		return nil
	}
}

func (p *parser) parseIf() Stmt {
	pos := p.tok.pos
	p.advance() // "if"
	cond := p.parseExpr()
	then := p.parseBlock()
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.tok.kind == tokIdent && p.tok.text == "else" {
		p.advance()
		if p.tok.kind == tokIdent && p.tok.text == "if" {
			st.Else = p.parseIf()
		} else {
			st.Else = p.parseBlock()
		}
	}
	return st
}

func (p *parser) parseArgs() []Expr {
	p.expect(tokLParen)
	var args []Expr
	if p.tok.kind != tokRParen {
		args = append(args, p.parseExpr())
		for p.tok.kind == tokComma {
			p.advance()
			args = append(args, p.parseExpr())
		}
	}
	p.expect(tokRParen)
	return args
}

func (p *parser) parseExpr() Expr { return p.parseTernary() }

func (p *parser) parseTernary() Expr {
	c := p.parseBinary(0)
	if p.tok.kind != tokQuestion {
		return c
	}
	pos := p.tok.pos
	p.advance()
	a := p.parseExpr()
	p.expect(tokColon)
	b := p.parseExpr()
	return &CondExpr{Pos: pos, C: c, A: a, B: b}
}

// Binary operator precedence, loosest first.
var binPrec = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokPipe:   3,
	tokCaret:  4,
	tokAmp:    5,
	tokEq:     6, tokNe: 6,
	tokLt: 7, tokLe: 7, tokGt: 7, tokGe: 7,
	tokShl: 8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPct: 10,
}

var binOps = map[tokKind]Op{
	tokOrOr: OpLor, tokAndAnd: OpLand, tokPipe: OpOr, tokCaret: OpXor,
	tokAmp: OpAnd, tokEq: OpEq, tokNe: OpNe, tokLt: OpLt, tokLe: OpLe,
	tokGt: OpGt, tokGe: OpGe, tokShl: OpShl, tokShr: OpShr, tokPlus: OpAdd,
	tokMinus: OpSub, tokStar: OpMul, tokSlash: OpDiv, tokPct: OpRem,
}

func (p *parser) parseBinary(min int) Expr {
	l := p.parseUnary()
	for {
		prec, ok := binPrec[p.tok.kind]
		if !ok || prec < min {
			return l
		}
		op := binOps[p.tok.kind]
		pos := p.tok.pos
		p.advance()
		r := p.parseBinary(prec + 1)
		l = &BinaryExpr{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() Expr {
	switch p.tok.kind {
	case tokMinus, tokTilde, tokBang:
		op := map[tokKind]Op{tokMinus: OpNeg, tokTilde: OpInv, tokBang: OpNot}[p.tok.kind]
		pos := p.tok.pos
		p.advance()
		return &UnaryExpr{Pos: pos, Op: op, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() Expr {
	switch p.tok.kind {
	case tokNumber:
		e := &NumExpr{Pos: p.tok.pos, Val: p.tok.num}
		p.advance()
		return e
	case tokIdent:
		name := p.tok.text
		pos := p.tok.pos
		p.advance()
		if p.tok.kind == tokLParen {
			return &CallExpr{Pos: pos, Name: name, Args: p.parseArgs()}
		}
		return &IdentExpr{Pos: pos, Name: name}
	case tokLParen:
		p.advance()
		e := p.parseExpr()
		p.expect(tokRParen)
		return e
	default:
		p.errorf(p.tok.pos, "expected expression, found %v", describe(p.tok))
		p.advance()
		return &NumExpr{Pos: p.tok.pos}
	}
}
