// Package orgs implements the decoupled microarchitectural simulator
// organizations of the paper's Figure 1 — integrated, functional-first,
// timing-directed, timing-first, and speculative functional-first — each
// wired to the interface detail it naturally requires (§II). It also
// provides SMARTS-style sampling, which mixes two interfaces in one run
// (detailed windows through Step/All, fast-forward through Block/Min).
package orgs

import (
	"bytes"
	"fmt"
	"io"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
	"singlespec/internal/timing/bpred"
	"singlespec/internal/timing/cache"
	"singlespec/internal/timing/ooo"
	"singlespec/internal/timing/pipeline"
	"singlespec/internal/trace"
)

// Result summarizes one simulation.
type Result struct {
	Org        string
	Instrs     uint64
	Cycles     uint64
	Mismatches uint64 // timing-first: checker corrections
	Rollbacks  uint64 // speculative functional-first
	FFInstrs   uint64 // sampling: instructions fast-forwarded
	ExitCode   int
	Halted     bool
	Stdout     string
	// Machine is the (primary) simulated machine after the run, so callers
	// can inspect architectural state (e.g. kernel checksums).
	Machine *mach.Machine

	Pipeline pipeline.Stats
	OoO      ooo.Stats
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

type env struct {
	i   *isa.ISA
	m   *mach.Machine
	emu *sysemu.Emulator
}

func newEnv(i *isa.ISA, prog *asm.Program) *env {
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	prog.LoadInto(m)
	return &env{i: i, m: m, emu: emu}
}

func (e *env) finish(r *Result) {
	r.ExitCode = e.m.ExitCode
	r.Halted = e.m.Halted
	r.Stdout = e.emu.Stdout.String()
	r.Instrs = e.m.Instret
	r.Machine = e.m
}

// RunIntegrated is the baseline single-simulator organization: timing and
// functionality advance together in one loop with no decoupling (no
// stream, no separate consumer). It uses the highest-detail derived code,
// as an integrated simulator that models the datapath directly would.
func RunIntegrated(i *isa.ISA, prog *asm.Program, budget uint64) (*Result, error) {
	sim, err := core.Synthesize(i.Spec, "one_all", core.Options{})
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	e := newEnv(i, prog)
	x := sim.NewExec(e.m)
	var rec core.Record
	for !e.m.Halted && e.m.Instret < budget {
		ok := x.ExecOne(&rec)
		model.Consume(&rec)
		if !ok {
			break
		}
	}
	r := &Result{Org: "integrated", Cycles: model.Stats.Cycles, Pipeline: model.Stats}
	e.finish(r)
	return r, nil
}

// RunFunctionalFirst runs the functional-first organization: the
// functional simulator (One call per instruction, Decode informational
// detail — §II-B's "moderate informational detail") produces the
// instruction stream; the in-order pipeline timing model consumes it.
func RunFunctionalFirst(i *isa.ISA, prog *asm.Program, budget uint64) (*Result, error) {
	sim, err := core.Synthesize(i.Spec, "one_decode", core.Options{})
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	e := newEnv(i, prog)
	x := sim.NewExec(e.m)
	var rec core.Record
	for !e.m.Halted && e.m.Instret < budget {
		ok := x.ExecOne(&rec)
		model.Consume(&rec)
		if !ok {
			break
		}
	}
	r := &Result{Org: "functional-first", Cycles: model.Stats.Cycles, Pipeline: model.Stats}
	e.finish(r)
	return r, nil
}

// RunBlockFunctionalFirst is functional-first over the Block interface:
// the functional simulator delivers whole translated basic blocks of
// records per call (the fastest stream producer that still carries decode
// detail).
func RunBlockFunctionalFirst(i *isa.ISA, prog *asm.Program, budget uint64) (*Result, error) {
	sim, err := core.Synthesize(i.Spec, "block_decode", core.Options{})
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	e := newEnv(i, prog)
	x := sim.NewExec(e.m)
	var batch core.Batch
	for !e.m.Halted && e.m.Instret < budget {
		ok := x.ExecBlock(&batch)
		for j := range batch.Recs {
			model.Consume(&batch.Recs[j])
		}
		if !ok {
			break
		}
	}
	r := &Result{Org: "functional-first-block", Cycles: model.Stats.Cycles, Pipeline: model.Stats}
	e.finish(r)
	return r, nil
}

// stepDriver resolves the Step-interface slots a timing-directed model
// reads from the record between calls.
type stepDriver struct {
	sim                                        *core.Sim
	x                                          *core.Exec
	eps                                        map[string]int
	class, src1, src2, dest, ea, taken, target int
}

func newStepDriver(i *isa.ISA, m *mach.Machine, buildset string) (*stepDriver, error) {
	sim, err := core.Synthesize(i.Spec, buildset, core.Options{})
	if err != nil {
		return nil, err
	}
	d := &stepDriver{sim: sim, x: sim.NewExec(m), eps: map[string]int{}}
	for idx, ep := range sim.BS.Entrypoints {
		d.eps[ep.Name] = idx
	}
	slot := func(name string) int {
		s, ok := sim.Layout.Slot(name)
		if !ok {
			return -1
		}
		return s
	}
	d.class = slot("instr_class")
	d.src1 = slot("src1_idx")
	d.src2 = slot("src2_idx")
	d.dest = slot("dest1_idx")
	d.ea = slot("effective_addr")
	d.taken = slot("branch_taken")
	d.target = slot("branch_target")
	if d.class < 0 || d.ea < 0 {
		return nil, fmt.Errorf("orgs: buildset %s lacks the detail a timing-directed model needs", buildset)
	}
	return d, nil
}

func (d *stepDriver) val(rec *core.Record, slot int) uint64 {
	if slot < 0 {
		return 0
	}
	return rec.Vals[slot]
}

func (d *stepDriver) idx(rec *core.Record, slot int) int {
	if slot < 0 {
		return -1
	}
	return int(d.val(rec, slot))
}

// RunTimingDirected runs the timing-directed organization: the
// dynamically-scheduled core model is in control and asks the functional
// simulator to perform each element of an instruction's behaviour through
// the seven-call Step/All interface — very high semantic detail (§II-C).
func RunTimingDirected(i *isa.ISA, prog *asm.Program, budget uint64) (*Result, error) {
	e := newEnv(i, prog)
	d, err := newStepDriver(i, e.m, "step_all")
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model := ooo.New(ooo.DefaultConfig(), hier, bpred.NewGShare(12, 8))
	var rec core.Record
	pc := e.m.PC
	n := uint64(0)
	for !e.m.Halted && n < budget {
		// The timing model owns fetch: it decides the PC the functional
		// simulator executes (redirect on rollback/misprediction would go
		// here).
		rec.PC = pc
		d.x.StepCall(d.eps["ep_fetch"], &rec)
		d.x.StepCall(d.eps["ep_decode"], &rec)
		info := ooo.InstrInfo{
			PC:    rec.PC,
			Class: int(d.val(&rec, d.class)),
			Src1:  d.idx(&rec, d.src1),
			Src2:  d.idx(&rec, d.src2),
			Dest:  d.idx(&rec, d.dest),
		}
		d.x.StepCall(d.eps["ep_opread"], &rec)
		d.x.StepCall(d.eps["ep_execute"], &rec)
		info.EA = d.val(&rec, d.ea)
		info.Taken = d.val(&rec, d.taken) != 0
		info.Target = d.val(&rec, d.target)
		info.Nullify = rec.Nullified
		d.x.StepCall(d.eps["ep_memory"], &rec)
		d.x.StepCall(d.eps["ep_writeback"], &rec)
		d.x.StepCall(d.eps["ep_exception"], &rec)
		model.Advance(info)
		if rec.Fault != mach.FaultNone {
			break
		}
		pc = rec.NextPC
		n++
	}
	r := &Result{Org: "timing-directed", Cycles: model.Cycles(), OoO: model.Stats}
	e.finish(r)
	return r, nil
}

// BugFn optionally corrupts the timing simulator's architectural state
// after an instruction executes (modeling a timing-model functionality
// bug). It returns true when it injected a corruption.
type BugFn func(seq uint64, m *mach.Machine, rec *core.Record) bool

// RunTimingFirst runs the timing-first organization (§II-D): the timing
// simulator performs functional behaviour itself (and may be wrong); a
// one-call/min-detail functional simulator checks it each instruction and
// repairs architectural state on a mismatch, counting corrections.
func RunTimingFirst(i *isa.ISA, prog *asm.Program, budget uint64, bug BugFn) (*Result, error) {
	timingSim, err := core.Synthesize(i.Spec, "one_all", core.Options{})
	if err != nil {
		return nil, err
	}
	checkSim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		return nil, err
	}
	// The timing side executes the program; the checker executes the same
	// program on its own machine.
	eT := newEnv(i, prog)
	eC := newEnv(i, prog)
	xT := timingSim.NewExec(eT.m)
	xC := checkSim.NewExec(eC.m)
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), timingSim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	spaceNames := make([]string, len(i.Spec.Spaces))
	for si, sp := range i.Spec.Spaces {
		spaceNames[si] = sp.Name
	}
	var recT, recC core.Record
	r := &Result{Org: "timing-first"}
	for seq := uint64(0); !eT.m.Halted && seq < budget; seq++ {
		okT := xT.ExecOne(&recT)
		model.Consume(&recT)
		if bug != nil {
			bug(seq, eT.m, &recT)
		}
		xC.ExecOne(&recC)
		snT, snC := eT.m.Snapshot(), eC.m.Snapshot()
		if same, _ := snT.Equal(snC, spaceNames); !same {
			// Mismatch: flush the pipeline and reload architectural state
			// from the functional simulator (TFsim-style recovery).
			r.Mismatches++
			eT.m.Restore(snC)
			model.Stats.Cycles += uint64(pipeline.DefaultConfig().BranchPenalty * 3)
		}
		if !okT {
			break
		}
	}
	r.Cycles = model.Stats.Cycles
	r.Pipeline = model.Stats
	eT.finish(r)
	// Exit state comes from the checker when the timing side diverged at
	// the end; normally they agree.
	if !eT.m.Halted && eC.m.Halted {
		r.Halted, r.ExitCode = true, eC.m.ExitCode
	}
	return r, nil
}

// VerifyFn lets the timing side of a speculative functional-first
// simulator declare that the functional simulator's execution of a record
// diverged from the timing simulator's view (e.g. a memory-order
// difference). It receives the simulated machine (the timing simulator's
// authoritative memory view). Returning a non-nil override asks for
// re-execution with the first load of that record seeing the override
// value.
type VerifyFn func(seq uint64, m *mach.Machine, rec *core.Record) (override *uint64)

// RunSpecFunctionalFirst runs the speculative functional-first
// organization (§II-E): the functional simulator runs ahead producing a
// speculative stream (speculation-enabled interface); when the timing
// simulator detects a divergence it commands a rollback and the functional
// simulator re-executes from the violating instruction with the corrected
// load value.
func RunSpecFunctionalFirst(i *isa.ISA, prog *asm.Program, budget uint64, window int, verify VerifyFn) (*Result, error) {
	sim, err := core.Synthesize(i.Spec, "one_decode_spec", core.Options{})
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	e := newEnv(i, prog)
	x := sim.NewExec(e.m)
	if window <= 0 {
		window = 64
	}
	type slot struct {
		mark    mach.Mark
		pc      uint64
		instret uint64
		rec     core.Record
	}
	win := make([]slot, window)
	r := &Result{Org: "spec-functional-first"}
	seq := uint64(0)
	for !e.m.Halted && e.m.Instret < budget {
		// Run-ahead: fill a speculative window.
		n := 0
		for ; n < window && !e.m.Halted; n++ {
			win[n].mark = e.m.Journal.Mark()
			win[n].pc = e.m.PC
			win[n].instret = e.m.Instret
			if !x.ExecOne(&win[n].rec) {
				n++
				break
			}
		}
		// Timing consumes and verifies the window.
		redo := -1
		var override uint64
		for j := 0; j < n; j++ {
			if verify != nil {
				if ov := verify(seq+uint64(j), e.m, &win[j].rec); ov != nil {
					redo, override = j, *ov
					break
				}
			}
			model.Consume(&win[j].rec)
		}
		if redo < 0 {
			e.m.Journal.Commit(e.m.Journal.Mark())
			seq += uint64(n)
			continue
		}
		// Rollback to the violating instruction and re-execute it with the
		// corrected load value; subsequent instructions re-execute
		// normally on the repaired state.
		r.Rollbacks++
		e.m.Journal.Rollback(e.m, win[redo].mark)
		e.m.PC = win[redo].pc
		e.m.Halted = false
		e.m.Instret = win[redo].instret
		seq += uint64(redo)
		first := true
		e.m.LoadHook = func(addr uint64, size int, val uint64) uint64 {
			if first {
				first = false
				return override
			}
			return val
		}
		ok := x.ExecOne(&win[redo].rec)
		e.m.LoadHook = nil
		model.Consume(&win[redo].rec)
		seq++
		if !ok {
			break
		}
	}
	r.Cycles = model.Stats.Cycles
	r.Pipeline = model.Stats
	e.finish(r)
	return r, nil
}

// RunSampled runs SMARTS-style sampling (§I, [7]): short detailed windows
// through the Step/All interface alternate with long fast-forward phases
// through the Block/Min interface — the paper's motivating case for one
// simulator carrying multiple interfaces at different levels of detail.
func RunSampled(i *isa.ISA, prog *asm.Program, budget, detailed, fastfwd uint64) (*Result, error) {
	e := newEnv(i, prog)
	d, err := newStepDriver(i, e.m, "step_all")
	if err != nil {
		return nil, err
	}
	ffSim, err := core.Synthesize(i.Spec, "block_min", core.Options{})
	if err != nil {
		return nil, err
	}
	ffExec := ffSim.NewExec(e.m)
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model := ooo.New(ooo.DefaultConfig(), hier, bpred.NewGShare(12, 8))
	r := &Result{Org: "sampled"}
	var rec core.Record
	for !e.m.Halted && e.m.Instret < budget {
		// Detailed window.
		for k := uint64(0); k < detailed && !e.m.Halted; k++ {
			rec.PC = e.m.PC
			for ep := 0; ep < len(d.sim.BS.Entrypoints); ep++ {
				d.x.StepCall(ep, &rec)
			}
			info := ooo.InstrInfo{
				PC:     rec.PC,
				Class:  int(d.val(&rec, d.class)),
				Src1:   d.idx(&rec, d.src1),
				Src2:   d.idx(&rec, d.src2),
				Dest:   d.idx(&rec, d.dest),
				EA:     d.val(&rec, d.ea),
				Taken:  d.val(&rec, d.taken) != 0,
				Target: d.val(&rec, d.target),
			}
			info.Nullify = rec.Nullified
			model.Advance(info)
			if rec.Fault != mach.FaultNone {
				break
			}
		}
		// Fast-forward phase: minimal detail, block at a time.
		target := e.m.Instret + fastfwd
		var batch core.Batch
		for !e.m.Halted && e.m.Instret < target {
			before := e.m.Instret
			if !ffExec.ExecBlock(&batch) {
				break
			}
			r.FFInstrs += e.m.Instret - before
		}
	}
	r.Cycles = model.Cycles()
	r.OoO = model.Stats
	e.finish(r)
	return r, nil
}

// RunTraceDriven is the classic trace-driven flavour of functional-first
// (§II-B: "the instruction stream could even be written to storage and
// then fed to the timing simulator or multiple timing simulators"): the
// functional simulator writes the record stream through internal/trace,
// and the timing model replays it from the serialized form.
func RunTraceDriven(i *isa.ISA, prog *asm.Program, budget uint64) (*Result, error) {
	sim, err := core.Synthesize(i.Spec, "one_decode", core.Options{})
	if err != nil {
		return nil, err
	}
	e := newEnv(i, prog)
	x := sim.NewExec(e.m)

	// Phase 1: record.
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, sim.Layout)
	if err != nil {
		return nil, err
	}
	var rec core.Record
	for !e.m.Halted && e.m.Instret < budget {
		ok := x.ExecOne(&rec)
		if err := w.Write(&rec); err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}

	// Phase 2: replay into the timing model (no functional simulator
	// involved at all — the stream is self-contained).
	rd, err := trace.NewReader(&buf)
	if err != nil {
		return nil, err
	}
	hier, err := cache.DefaultHierarchy()
	if err != nil {
		return nil, err
	}
	model, err := pipeline.New(pipeline.DefaultConfig(), sim.Layout, hier, bpred.NewBimodal(12))
	if err != nil {
		return nil, err
	}
	var replay core.Record
	for {
		if err := rd.Read(&replay); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		model.Consume(&replay)
	}
	r := &Result{Org: "trace-driven", Cycles: model.Stats.Cycles, Pipeline: model.Stats}
	e.finish(r)
	return r, nil
}
