package orgs

import (
	"testing"

	"singlespec/internal/asm"
	"singlespec/internal/core"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
	"singlespec/internal/mach"
)

func kernelProgram(t *testing.T, isaName, kernel string) (*isa.ISA, *asm.Program, uint32) {
	t.Helper()
	i := isatest.Load(t, isaName)
	k := kernels.ByName(kernel)
	prog, err := kernels.BuildProgram(i, k.Build(k.DefaultN))
	if err != nil {
		t.Fatal(err)
	}
	return i, prog, k.Ref(k.DefaultN)
}

// check validates exit status, cycle sanity, and the checksum left in the
// run's machine.
func check(t *testing.T, r *Result, err error, prog *asm.Program, want uint32) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.ExitCode != 0 {
		t.Fatalf("%s: halted=%v exit=%d", r.Org, r.Halted, r.ExitCode)
	}
	// In-order models keep IPC <= 1; the dynamically-scheduled model is
	// two-wide, so IPC <= 2 bounds every organization.
	if r.Cycles < r.Instrs/2 {
		t.Errorf("%s: cycles (%d) imply IPC > 2 for %d instructions", r.Org, r.Cycles, r.Instrs)
	}
	got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
	if uint32(got) != want {
		t.Errorf("%s: checksum %#x, want %#x", r.Org, got, want)
	}
}

func TestAllOrganizationsAllISAs(t *testing.T) {
	const budget = 10_000_000
	for _, name := range isa.Names() {
		t.Run(name, func(t *testing.T) {
			i, prog, want := kernelProgram(t, name, "sieve")

			r1, err := RunIntegrated(i, prog, budget)
			check(t, r1, err, prog, want)
			r2, err := RunFunctionalFirst(i, prog, budget)
			check(t, r2, err, prog, want)
			r3, err := RunBlockFunctionalFirst(i, prog, budget)
			check(t, r3, err, prog, want)
			r4, err := RunTimingDirected(i, prog, budget)
			check(t, r4, err, prog, want)
			r5, err := RunTimingFirst(i, prog, budget, nil)
			check(t, r5, err, prog, want)
			if r5.Mismatches != 0 {
				t.Errorf("timing-first without bug: %d mismatches", r5.Mismatches)
			}
			r6, err := RunSpecFunctionalFirst(i, prog, budget, 32, nil)
			check(t, r6, err, prog, want)
			if r6.Machine.Journal.Len() != 0 {
				t.Errorf("spec-FF left %d uncommitted journal entries", r6.Machine.Journal.Len())
			}
			r7, err := RunSampled(i, prog, budget, 200, 2000)
			checkSampled(t, r7, err, prog, want)
			if r7.FFInstrs == 0 {
				t.Error("sampling fast-forwarded nothing")
			}

			// Every organization retires the same instruction count.
			for _, r := range []*Result{r2, r3, r4, r5, r6, r7} {
				if r.Instrs != r1.Instrs {
					t.Errorf("%s retired %d instructions, integrated retired %d", r.Org, r.Instrs, r1.Instrs)
				}
			}
			// The same stream through the same model costs the same cycles,
			// no matter which interface produced it.
			if r1.Cycles != r2.Cycles || r2.Cycles != r3.Cycles {
				t.Errorf("same model, different cycles: integrated=%d one=%d block=%d",
					r1.Cycles, r2.Cycles, r3.Cycles)
			}
			// The dynamically-scheduled model must beat the in-order one.
			if r4.Cycles >= r2.Cycles {
				t.Errorf("OoO model (%d cycles) not faster than in-order (%d)", r4.Cycles, r2.Cycles)
			}
		})
	}
}

// checkSampled is check minus the cycles>instrs assertion: sampling only
// models the detailed windows, so total cycles are (by design) far below
// the retired instruction count.
func checkSampled(t *testing.T, r *Result, err error, prog *asm.Program, want uint32) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Halted || r.ExitCode != 0 {
		t.Fatalf("%s: halted=%v exit=%d", r.Org, r.Halted, r.ExitCode)
	}
	if r.Cycles == 0 || r.Cycles >= r.Instrs {
		t.Errorf("%s: cycles = %d of %d instrs; detailed windows should be a small fraction", r.Org, r.Cycles, r.Instrs)
	}
	got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
	if uint32(got) != want {
		t.Errorf("%s: checksum %#x, want %#x", r.Org, got, want)
	}
}

func TestTimingFirstDetectsInjectedBug(t *testing.T) {
	i, prog, want := kernelProgram(t, "alpha64", "sieve")
	var injected uint64
	bug := func(seq uint64, m *mach.Machine, rec *core.Record) bool {
		if seq%97 != 96 {
			return false
		}
		m.MustSpace("r").Vals[1] ^= 0x4
		injected++
		return true
	}
	r, err := RunTimingFirst(i, prog, 10_000_000, bug)
	if err != nil {
		t.Fatal(err)
	}
	if injected == 0 {
		t.Fatal("bug never injected")
	}
	if r.Mismatches == 0 {
		t.Fatal("checker detected no mismatches")
	}
	if r.Mismatches > injected {
		t.Errorf("mismatches (%d) exceed injections (%d)", r.Mismatches, injected)
	}
	// Despite the buggy timing model, recovery keeps the run correct —
	// the organization's whole point (§II-D).
	if !r.Halted || r.ExitCode != 0 {
		t.Fatalf("corrupted run did not recover: halted=%v exit=%d", r.Halted, r.ExitCode)
	}
	got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
	if uint32(got) != want {
		t.Errorf("checksum after recovery = %#x, want %#x", got, want)
	}
}

func TestSpecFuncFirstRollbackPreservesSemantics(t *testing.T) {
	// listchase's chase phase reads memory that is never written again, so
	// a re-executed load with an override equal to the memory's current
	// value must reproduce the baseline exactly — while exercising real
	// rollbacks.
	for _, name := range isa.Names() {
		i, prog, want := kernelProgram(t, name, "listchase")
		sim, err := core.Synthesize(i.Spec, "one_decode_spec", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		classSlot := sim.Layout.MustSlot("instr_class")
		eaSlot := sim.Layout.MustSlot("effective_addr")
		sizeSlot := sim.Layout.MustSlot("mem_size")

		loads := uint64(0)
		verify := func(seq uint64, m *mach.Machine, rec *core.Record) *uint64 {
			if rec.Nullified || int(rec.Vals[classSlot]) != 2 {
				return nil
			}
			loads++
			if loads%20 != 0 {
				return nil
			}
			// "Memory order verified different, but the correct value is
			// what memory holds now" — a same-value replay.
			v, _ := m.Mem.Load(rec.Vals[eaSlot], int(rec.Vals[sizeSlot]))
			return &v
		}
		r, err := RunSpecFunctionalFirst(i, prog, 10_000_000, 16, verify)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rollbacks == 0 {
			t.Fatalf("%s: no rollbacks were exercised", name)
		}
		if !r.Halted || r.ExitCode != 0 {
			t.Fatalf("%s: halted=%v exit=%d", name, r.Halted, r.ExitCode)
		}
		got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
		if uint32(got) != want {
			t.Errorf("%s: checksum after %d rollbacks = %#x, want %#x", name, r.Rollbacks, got, want)
		}
	}
}

func TestSpecFuncFirstDivergentOverrideChangesOutcome(t *testing.T) {
	// Sanity check of the override machinery itself: forcing a *different*
	// load value must change the result (otherwise overrides are ignored).
	i, prog, want := kernelProgram(t, "alpha64", "listchase")
	sim, _ := core.Synthesize(i.Spec, "one_decode_spec", core.Options{})
	classSlot := sim.Layout.MustSlot("instr_class")
	done := false
	verify := func(seq uint64, m *mach.Machine, rec *core.Record) *uint64 {
		if done || rec.Nullified || int(rec.Vals[classSlot]) != 2 {
			return nil
		}
		done = true
		v := uint64(0x12345)
		return &v
	}
	r, err := RunSpecFunctionalFirst(i, prog, 10_000_000, 16, verify)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", r.Rollbacks)
	}
	got, _ := r.Machine.Mem.Load(prog.Symbols["result"], 4)
	if r.Halted && uint32(got) == want {
		t.Error("divergent override did not change the outcome")
	}
}

func TestSampledFastForwardDominates(t *testing.T) {
	i, prog, _ := kernelProgram(t, "arm32", "sieve")
	r, err := RunSampled(i, prog, 10_000_000, 100, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.FFInstrs*2 < r.Instrs {
		t.Errorf("expected most instructions fast-forwarded: ff=%d total=%d", r.FFInstrs, r.Instrs)
	}
	if r.OoO.Instrs == 0 {
		t.Error("no detailed instructions were modeled")
	}
}

func TestPipelineCacheAndBranchStatsPlausible(t *testing.T) {
	i, prog, _ := kernelProgram(t, "ppc32", "sieve")
	r, err := RunFunctionalFirst(i, prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pipeline.Branches == 0 || r.Pipeline.Loads == 0 || r.Pipeline.Stores == 0 {
		t.Errorf("implausible pipeline stats: %+v", r.Pipeline)
	}
	if r.Pipeline.Mispredicts == 0 || r.Pipeline.Mispredicts >= r.Pipeline.Branches {
		t.Errorf("implausible misprediction count: %d of %d", r.Pipeline.Mispredicts, r.Pipeline.Branches)
	}
	if ipc := r.IPC(); ipc <= 0 || ipc > 1 {
		t.Errorf("in-order IPC = %f", ipc)
	}
}

func TestTraceDrivenMatchesFunctionalFirst(t *testing.T) {
	// The serialized-and-replayed stream must produce exactly the cycles
	// the live stream produces.
	i, prog, want := kernelProgram(t, "arm32", "crc32")
	live, err := RunFunctionalFirst(i, prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunTraceDriven(i, prog, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	check(t, traced, nil, prog, want)
	if traced.Cycles != live.Cycles || traced.Pipeline.Mispredicts != live.Pipeline.Mispredicts {
		t.Errorf("trace replay diverged: cycles %d vs %d", traced.Cycles, live.Cycles)
	}
}
