package checkpoint

// The generation ring is the durability layer: checkpoints land on disk
// through the classic torn-write-proof sequence (write to a temp file,
// fsync, rename into place, fsync the directory), and a bounded number of
// prior generations is retained so a generation damaged after landing —
// bit rot, a torn copy, a version skew after an upgrade — still leaves an
// older good one to fall back to. Restore walks newest to oldest,
// validating each candidate in full, and reports every generation it had
// to skip along with the typed reason, so callers can surface the fallback
// in their run manifests instead of diverging silently.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	genPrefix = "ckpt-"
	genSuffix = ".ssck"
	tmpName   = ".ckpt-tmp"
)

// Ring persists checkpoint generations under one directory, keeping at
// most Max of them. It is single-writer: one Ring (and one process) owns a
// directory at a time.
type Ring struct {
	dir string
	max int
}

// NewRing opens (creating if needed) a generation ring holding up to max
// generations. max must be at least 1; two or more is what makes fallback
// possible.
func NewRing(dir string, max int) (*Ring, error) {
	if max < 1 {
		return nil, fmt.Errorf("checkpoint: ring needs max >= 1, got %d", max)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A temp file left behind by a crash mid-Save is garbage by contract
	// (it never got renamed into place); clear it so it cannot accumulate.
	os.Remove(filepath.Join(dir, tmpName))
	return &Ring{dir: dir, max: max}, nil
}

// Dir returns the ring's directory.
func (r *Ring) Dir() string { return r.dir }

// Generations returns the paths of all on-disk generations, oldest first.
func (r *Ring) Generations() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, err
	}
	type gen struct {
		seq  uint64
		path string
	}
	var gens []gen
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, genPrefix) || !strings.HasSuffix(name, genSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, genPrefix), genSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue // not a generation file; leave it alone
		}
		gens = append(gens, gen{seq: seq, path: filepath.Join(r.dir, name)})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq < gens[j].seq })
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.path
	}
	return out, nil
}

// Save atomically persists st as the newest generation and prunes the ring
// back to its bound. The write is torn-write-proof: the bytes are complete
// and fsynced in a temp file before the rename makes them visible, and the
// directory is fsynced so the rename itself survives power loss. A crash
// at any point leaves either the old set of generations or the old set
// plus one complete new generation — never a partial file under a
// generation name.
func (r *Ring) Save(st *State) (string, error) {
	gens, err := r.Generations()
	if err != nil {
		return "", err
	}
	next := uint64(1)
	if len(gens) > 0 {
		last := gens[len(gens)-1]
		seqStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(last), genPrefix), genSuffix)
		seq, _ := strconv.ParseUint(seqStr, 10, 64)
		next = seq + 1
	}
	tmp := filepath.Join(r.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if err := Write(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	final := filepath.Join(r.dir, fmt.Sprintf("%s%08d%s", genPrefix, next, genSuffix))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(r.dir)
	// Prune oldest generations beyond the bound.
	gens = append(gens, final)
	for len(gens) > r.max {
		os.Remove(gens[0])
		gens = gens[1:]
	}
	syncDir(r.dir)
	return final, nil
}

// syncDir fsyncs a directory so a just-completed rename or remove is
// durable. Errors are ignored: some filesystems reject directory fsync,
// and the fallback ring tolerates a lost tail generation by design.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// SkippedGeneration records one generation Restore rejected and why.
type SkippedGeneration struct {
	Path string
	Err  error
}

// RestoreReport describes how a Restore concluded: which generation was
// used and which newer ones had to be skipped. Callers surface the skips
// in their run manifests — a fallback is an event worth recording.
type RestoreReport struct {
	// Path is the generation restored; empty when none validated.
	Path string
	// Skipped lists rejected generations, newest first, with typed errors.
	Skipped []SkippedGeneration
}

// NoGoodGenerationError reports that no on-disk generation validated.
type NoGoodGenerationError struct {
	Dir     string
	Skipped []SkippedGeneration
}

func (e *NoGoodGenerationError) Error() string {
	if len(e.Skipped) == 0 {
		return fmt.Sprintf("checkpoint: no generations in %s", e.Dir)
	}
	return fmt.Sprintf("checkpoint: all %d generation(s) in %s failed validation (newest: %v)",
		len(e.Skipped), e.Dir, e.Skipped[0].Err)
}

// Restore loads the newest generation that passes full validation, falling
// back through older generations when the newest is truncated, bit-flipped,
// or version-skewed. The report lists every skipped generation; when no
// generation validates the error is a *NoGoodGenerationError carrying the
// same detail.
func (r *Ring) Restore() (*State, *RestoreReport, error) {
	gens, err := r.Generations()
	if err != nil {
		return nil, &RestoreReport{}, err
	}
	rep := &RestoreReport{}
	for i := len(gens) - 1; i >= 0; i-- {
		st, err := LoadFile(gens[i])
		if err != nil {
			rep.Skipped = append(rep.Skipped, SkippedGeneration{Path: gens[i], Err: err})
			continue
		}
		rep.Path = gens[i]
		return st, rep, nil
	}
	return nil, rep, &NoGoodGenerationError{Dir: r.dir, Skipped: rep.Skipped}
}

// LoadFile reads and fully validates one checkpoint file.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
