package checkpoint_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"singlespec/internal/checkpoint"
	"singlespec/internal/core"
	"singlespec/internal/faultinj"
	"singlespec/internal/isa"
	"singlespec/internal/isa/isatest"
	"singlespec/internal/kernels"
	"singlespec/internal/mach"
	"singlespec/internal/sysemu"
)

// simRun is one machine + exec + emulator, the trio a checkpoint must
// capture and restore as a unit.
type simRun struct {
	m   *mach.Machine
	x   *core.Exec
	emu *sysemu.Emulator
}

func newSimRun(t *testing.T, i *isa.ISA, sim *core.Sim, load bool) *simRun {
	t.Helper()
	m := i.Spec.NewMachine()
	emu := sysemu.New(i.Conv)
	emu.Install(m)
	if load {
		k := kernels.ByName("crc32")
		prog, err := kernels.BuildProgram(i, k.Build(96))
		if err != nil {
			t.Fatal(err)
		}
		prog.LoadInto(m)
	}
	return &simRun{m: m, x: sim.NewExec(m), emu: emu}
}

func (r *simRun) runToHalt(t *testing.T) {
	t.Helper()
	for steps := 0; !r.m.Halted; steps++ {
		if steps > 1000 || r.x.Run(1<<20) == 0 && !r.m.Halted {
			t.Fatal("machine stuck or runaway")
		}
	}
	if r.m.ExitCode != 0 {
		t.Fatalf("program exited %d", r.m.ExitCode)
	}
}

// compareArch fails the test unless two machines are architecturally
// identical: registers, PC, halt state, instret, and the contents of every
// touched memory page. Page generations are deliberately excluded — they
// are microarchitectural bookkeeping that restore bumps by design.
func compareArch(t *testing.T, want, got *mach.Machine) {
	t.Helper()
	if eq, diff := want.Snapshot().Equal(got.Snapshot(), nil); !eq {
		t.Fatalf("architectural state diverged: %s", diff)
	}
	if want.Instret != got.Instret {
		t.Fatalf("instret %d vs %d", want.Instret, got.Instret)
	}
	if want.Halted != got.Halted || want.ExitCode != got.ExitCode {
		t.Fatalf("halt state (%v,%d) vs (%v,%d)", want.Halted, want.ExitCode, got.Halted, got.ExitCode)
	}
	bases := map[uint64]bool{}
	for _, b := range want.Mem.PageBases() {
		bases[b] = true
	}
	for _, b := range got.Mem.PageBases() {
		bases[b] = true
	}
	for b := range bases {
		wd, _ := want.Mem.PageImage(b)
		gd, _ := got.Mem.PageImage(b)
		if !bytes.Equal(wd, gd) {
			t.Fatalf("memory page %#x diverged", b)
		}
	}
}

// TestStateRoundTrip checks Capture → Encode → Decode → Apply reproduces
// the machine exactly, and that serialization is deterministic.
func TestStateRoundTrip(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := newSimRun(t, i, sim, true)
	r.x.Run(500) // park the machine mid-run

	st := checkpoint.Capture(r.m)
	st.Meta = map[string][]byte{"b": []byte("two"), "a": []byte("one")}
	enc := checkpoint.Encode(st)
	if !bytes.Equal(enc, checkpoint.Encode(st)) {
		t.Fatal("serialization is not deterministic")
	}
	st2, err := checkpoint.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Instret != st.Instret || st2.PC != st.PC || st2.JournalMark != st.JournalMark {
		t.Fatalf("progress fields lost: %+v vs %+v", st2, st)
	}
	if string(st2.Meta["a"]) != "one" || string(st2.Meta["b"]) != "two" {
		t.Fatalf("meta lost: %v", st2.Meta)
	}
	fresh := newSimRun(t, i, sim, false)
	if err := checkpoint.Apply(st2, fresh.m); err != nil {
		t.Fatal(err)
	}
	compareArch(t, r.m, fresh.m)
}

// TestMidRunCheckpointRestoreDifferential is the tentpole differential: a
// run checkpointed mid-flight, serialized, restored into a fresh machine,
// and continued must end byte-identical — registers, memory, instret,
// captured program output — to a run that was never interrupted.
func TestMidRunCheckpointRestoreDifferential(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	for _, bs := range []string{"one_min", "block_min", "one_all_spec"} {
		t.Run(bs, func(t *testing.T) {
			sim, err := core.Synthesize(i.Spec, bs, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Reference: uninterrupted run.
			ref := newSimRun(t, i, sim, true)
			ref.runToHalt(t)

			// Interrupted run: stop mid-flight, checkpoint through the full
			// serialize/deserialize path, restore into a fresh machine.
			broken := newSimRun(t, i, sim, true)
			broken.x.Run(700)
			if broken.m.Halted {
				t.Fatal("test needs a mid-run stop; program already halted")
			}
			st := checkpoint.Capture(broken.m)
			emuState := broken.emu.State()
			st2, err := checkpoint.Decode(checkpoint.Encode(st))
			if err != nil {
				t.Fatal(err)
			}
			resumed := newSimRun(t, i, sim, false)
			if err := checkpoint.Apply(st2, resumed.m); err != nil {
				t.Fatal(err)
			}
			resumed.emu.SetState(emuState)
			resumed.x.FlushLocal()
			resumed.runToHalt(t)

			compareArch(t, ref.m, resumed.m)
			if ref.emu.Stdout.String() != resumed.emu.Stdout.String() {
				t.Errorf("program output diverged: %q vs %q",
					ref.emu.Stdout.String(), resumed.emu.Stdout.String())
			}
		})
	}
}

// TestCheckpointAtMarkConsistentWithJournal proves the in-cell restore
// point interacts correctly with the speculation journal: a checkpoint
// captured after rolling back to a mark equals one captured before the
// speculation happened, and a checkpoint at a fully-committed point
// records a zero journal high-water mark.
func TestCheckpointAtMarkConsistentWithJournal(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_all_spec", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := newSimRun(t, i, sim, true)
	r.x.Run(300)
	if !r.m.JournalOn {
		t.Fatal("spec buildset did not enable the journal")
	}
	r.m.Journal.Reset()
	before := checkpoint.Encode(checkpoint.Capture(r.m))

	// Speculate past the capture point, then roll back to it.
	mark := r.m.Journal.Mark()
	sp := r.m.Spaces[0]
	r.m.WriteReg(sp, 1, 0xdead)
	r.m.WriteReg(sp, 2, 0xbeef)
	if f := r.m.StoreValue(0x40000, 0x77, 8); f != mach.FaultNone {
		t.Fatalf("store faulted: %v", f)
	}
	r.m.SetPC(r.m.PC + 64)
	r.m.Journal.Rollback(r.m, mark)

	// Page generations moved (store + undo), so compare decoded states
	// field-wise rather than raw bytes.
	after := checkpoint.Capture(r.m)
	b, err := checkpoint.Decode(before)
	if err != nil {
		t.Fatal(err)
	}
	if b.PC != after.PC || b.Instret != after.Instret || b.JournalMark != after.JournalMark {
		t.Fatalf("rollback did not return to the capture point: %+v vs %+v", b, after)
	}
	for si := range b.Spaces {
		for vi := range b.Spaces[si].Vals {
			if b.Spaces[si].Vals[vi] != after.Spaces[si].Vals[vi] {
				t.Fatalf("space %d reg %d diverged after rollback", si, vi)
			}
		}
	}
	// The speculative store may have mapped a fresh page; rollback restores
	// its bytes to zero but the page stays mapped. Architecturally a
	// zero-filled page equals an absent one, so compare by base with zeros
	// as the default.
	pageByBase := func(ps []checkpoint.PageState) map[uint64][]byte {
		m := make(map[uint64][]byte, len(ps))
		for _, p := range ps {
			m[p.Base] = p.Data
		}
		return m
	}
	bp, ap := pageByBase(b.Pages), pageByBase(after.Pages)
	zero := make([]byte, mach.PageSize())
	for base := range bp {
		if _, ok := ap[base]; !ok {
			ap[base] = zero
		}
	}
	for base, ad := range ap {
		wd, ok := bp[base]
		if !ok {
			wd = zero
		}
		if !bytes.Equal(wd, ad) {
			t.Fatalf("page %#x diverged after rollback", base)
		}
	}

	// Commit makes the writes permanent; a checkpoint taken there records
	// a zero high-water mark (fully committed restore point).
	r.m.WriteReg(sp, 1, 0xcafe)
	r.m.Journal.Commit(r.m.Journal.Mark())
	st := checkpoint.Capture(r.m)
	if st.JournalMark != 0 {
		t.Errorf("journal mark after full commit = %d, want 0", st.JournalMark)
	}
	if st.Spaces[0].Vals[1] != 0xcafe {
		t.Errorf("committed write missing from checkpoint")
	}
}

// validCheckpoint builds a real mid-run checkpoint to damage.
func validCheckpoint(t *testing.T) []byte {
	t.Helper()
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := newSimRun(t, i, sim, true)
	r.x.Run(400)
	st := checkpoint.Capture(r.m)
	st.Meta = map[string][]byte{"expt.progress": []byte(`{"k":1}`)}
	return checkpoint.Encode(st)
}

// TestReadTypedErrors drives every failure mode and checks it surfaces as
// its own typed error.
func TestReadTypedErrors(t *testing.T) {
	valid := validCheckpoint(t)

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xff
		var e *checkpoint.BadMagicError
		if _, err := checkpoint.Decode(b); !errors.As(err, &e) {
			t.Fatalf("err = %v, want BadMagicError", err)
		}
	})
	t.Run("version skew", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[4] = checkpoint.Version + 1
		var e *checkpoint.VersionError
		if _, err := checkpoint.Decode(b); !errors.As(err, &e) {
			t.Fatalf("err = %v, want VersionError", err)
		}
		if e.Got != checkpoint.Version+1 || e.Want != checkpoint.Version {
			t.Errorf("VersionError = %+v", e)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail, and fail as truncation (or bad
		// magic for sub-4-byte prefixes), never silently succeed.
		for _, n := range []int{0, 3, 7, 11, 50, len(valid) / 2, len(valid) - 1} {
			_, err := checkpoint.Decode(valid[:n])
			if err == nil {
				t.Fatalf("prefix of %d bytes decoded successfully", n)
			}
			var te *checkpoint.TruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("prefix %d: err = %v, want TruncatedError", n, err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("prefix %d: TruncatedError does not unwrap to io.ErrUnexpectedEOF", n)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		// Flip one byte mid-file (inside a section payload): the section
		// CRC must catch it.
		b := append([]byte(nil), valid...)
		b[len(b)/2] ^= 0x10
		var ce *checkpoint.CorruptError
		if _, err := checkpoint.Decode(b); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptError", err)
		}
	})
	t.Run("trailer flip", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)-1] ^= 1
		var ce *checkpoint.CorruptError
		if _, err := checkpoint.Decode(b); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want CorruptError (sha mismatch)", err)
		}
	})
}

// TestApplyMismatch restores an alpha64 checkpoint into an arm32 machine
// and expects a typed mismatch, not a panic or partial restore.
func TestApplyMismatch(t *testing.T) {
	valid := validCheckpoint(t)
	st, err := checkpoint.Decode(valid)
	if err != nil {
		t.Fatal(err)
	}
	other := isatest.Load(t, "arm32")
	m := other.Spec.NewMachine()
	var me *checkpoint.MismatchError
	if err := checkpoint.Apply(st, m); !errors.As(err, &me) {
		t.Fatalf("err = %v, want MismatchError", err)
	}
}

// TestRingSaveRestoreAndBound checks the generation ring: atomic saves,
// the generation bound, and newest-first restore.
func TestRingSaveRestoreAndBound(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := newSimRun(t, i, sim, true)
	ring, err := checkpoint.NewRing(filepath.Join(t.TempDir(), "ring"), 3)
	if err != nil {
		t.Fatal(err)
	}
	var lastInstret uint64
	for g := 0; g < 5; g++ {
		r.x.Run(200)
		lastInstret = r.m.Instret
		if _, err := ring.Save(checkpoint.Capture(r.m)); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := ring.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("ring holds %d generations, want 3", len(gens))
	}
	st, rep, err := ring.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 0 {
		t.Errorf("clean ring skipped generations: %v", rep.Skipped)
	}
	if st.Instret != lastInstret {
		t.Errorf("restored instret %d, want newest %d", st.Instret, lastInstret)
	}
}

// TestRingFallbackOnCorruption is the faultinj-driven torn-write/bit-rot
// test: the newest on-disk generation is damaged at seeded-random offsets
// and the ring must detect the damage (typed error in the report) and fall
// back to the previous good generation — never return corrupt state.
func TestRingFallbackOnCorruption(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := faultinj.NewRNG(0x5eed, 7)
	for trial := 0; trial < 24; trial++ {
		dir := filepath.Join(t.TempDir(), "ring")
		ring, err := checkpoint.NewRing(dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := newSimRun(t, i, sim, true)
		r.x.Run(300)
		goodInstret := r.m.Instret
		if _, err := ring.Save(checkpoint.Capture(r.m)); err != nil {
			t.Fatal(err)
		}
		r.x.Run(300)
		newest, err := ring.Save(checkpoint.Capture(r.m))
		if err != nil {
			t.Fatal(err)
		}

		// Damage the newest generation on disk: a truncation (torn write
		// that bypassed the rename protocol, e.g. a bad backup copy) or a
		// seeded bit flip anywhere in the file.
		raw, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		if trial%3 == 0 {
			raw = raw[:rng.Intn(len(raw)-1)+1]
		} else {
			raw[rng.Intn(len(raw))] ^= byte(1 << uint(rng.Intn(8)))
		}
		if err := os.WriteFile(newest, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		st, rep, err := ring.Restore()
		if err != nil {
			t.Fatalf("trial %d: restore failed outright: %v", trial, err)
		}
		if len(rep.Skipped) != 1 || rep.Skipped[0].Path != newest {
			t.Fatalf("trial %d: damaged generation not skipped: %+v", trial, rep)
		}
		if rep.Skipped[0].Err == nil || !isTypedCheckpointError(rep.Skipped[0].Err) {
			t.Fatalf("trial %d: skip reason not typed: %v", trial, rep.Skipped[0].Err)
		}
		if st.Instret != goodInstret {
			t.Fatalf("trial %d: silent divergence: restored instret %d, want fallback %d",
				trial, st.Instret, goodInstret)
		}
	}
}

// TestRingAllGenerationsBad corrupts every generation: Restore must return
// a NoGoodGenerationError listing each rejected file.
func TestRingAllGenerationsBad(t *testing.T) {
	i := isatest.Load(t, "alpha64")
	sim, err := core.Synthesize(i.Spec, "one_min", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring, err := checkpoint.NewRing(filepath.Join(t.TempDir(), "ring"), 2)
	if err != nil {
		t.Fatal(err)
	}
	r := newSimRun(t, i, sim, true)
	for g := 0; g < 2; g++ {
		r.x.Run(100)
		path, err := ring.Save(checkpoint.Capture(r.m))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := os.ReadFile(path)
		raw[len(raw)/3] ^= 0x40
		os.WriteFile(path, raw, 0o644)
	}
	_, _, err = ring.Restore()
	var nge *checkpoint.NoGoodGenerationError
	if !errors.As(err, &nge) {
		t.Fatalf("err = %v, want NoGoodGenerationError", err)
	}
	if len(nge.Skipped) != 2 {
		t.Errorf("error lists %d skipped generations, want 2", len(nge.Skipped))
	}
}

// isTypedCheckpointError reports whether err is one of the package's typed
// validation errors.
func isTypedCheckpointError(err error) bool {
	var (
		bm *checkpoint.BadMagicError
		ve *checkpoint.VersionError
		te *checkpoint.TruncatedError
		ce *checkpoint.CorruptError
	)
	return errors.As(err, &bm) || errors.As(err, &ve) || errors.As(err, &te) || errors.As(err, &ce)
}

// TestEveryBitFlipIsDetected sweeps seeded single-bit flips across the
// whole file and asserts none decodes cleanly: every byte is covered by a
// section CRC, the SHA-256 trailer, or structural validation.
func TestEveryBitFlipIsDetected(t *testing.T) {
	valid := validCheckpoint(t)
	rng := faultinj.NewRNG(42, 1)
	for trial := 0; trial < 256; trial++ {
		b := append([]byte(nil), valid...)
		off := rng.Intn(len(b))
		b[off] ^= byte(1 << uint(rng.Intn(8)))
		st, err := checkpoint.Decode(b)
		if err == nil {
			t.Fatalf("bit flip at offset %d decoded cleanly (instret %d)", off, st.Instret)
		}
		if !isTypedCheckpointError(err) {
			t.Fatalf("bit flip at offset %d: untyped error %v", off, err)
		}
	}
}
