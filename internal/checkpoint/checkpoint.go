// Package checkpoint serializes and restores the architectural state of a
// simulated machine so long runs can survive process death: sweeps resume
// instead of restarting, and a watchdog retry continues a cell from its
// last in-cell checkpoint instead of from zero.
//
// The on-disk format is versioned, deterministic (the same state always
// produces the same bytes), and damage-evident:
//
//	magic "SSCK" u32 | version u32
//	section*: id u32 | payload-len u64 | payload | crc32(payload) u32
//	trailer: 0xffffffff u32 | sha256 of every preceding byte
//
// Every multi-byte integer is little-endian. The per-section CRC32 localizes
// a fault to one section; the whole-file SHA-256 catches anything the CRCs
// miss (including section-boundary splices). Read distinguishes its failure
// modes with typed errors — truncation, bit damage, version skew, and
// machine-shape mismatch are different operational events (retry the
// previous generation vs. upgrade the binary vs. fix the caller), and the
// Ring's fallback logic keys off them.
//
// Checkpoints capture state at instruction boundaries only: the machine
// must be quiescent (no instruction mid-flight, no uncommitted speculative
// journal suffix the caller cares about). Capture records the journal
// high-water mark so a restorer can assert the checkpoint was taken at a
// committed point; Apply resets the journal, because journal entries hold
// live Space pointers and are meaningless in another process.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"sort"

	"singlespec/internal/mach"
)

// Format constants. Version bumps whenever the byte layout changes; readers
// reject any version they were not built for (restore correctness over
// forward compatibility).
const (
	Magic   = 0x5353434b // "SSCK"
	Version = 1

	secMachine = 1
	secMemory  = 2
	secMeta    = 3
	trailerID  = 0xffffffff

	// maxSection bounds a section's declared payload length so a corrupt
	// or adversarial header cannot provoke a huge allocation before its
	// CRC is ever checked.
	maxSection = 1 << 28
	// maxSpaces, maxSpaceVals, and maxMetaKey bound the machine-section
	// shape for the same reason.
	maxSpaces    = 1 << 10
	maxSpaceVals = 1 << 20
	maxMetaKey   = 1 << 12
)

// State is the serializable architectural state of one machine plus the
// simulation progress needed to resume: retired-instruction count and the
// speculation-journal high-water mark at capture. Meta carries opaque
// caller payloads (the experiment engine stores OS-emulation state and
// cell progress there) and is written with sorted keys so serialization
// stays deterministic.
type State struct {
	PC       uint64
	Halted   bool
	ExitCode int64
	Instret  uint64
	// JournalMark is the journal length at capture. A checkpoint is only
	// consistent if taken at a committed point; Capture records the mark so
	// restorers (and tests) can prove the invariant held.
	JournalMark uint64
	Order       mach.ByteOrder
	Spaces      []SpaceState
	Pages       []PageState
	Meta        map[string][]byte
}

// SpaceState is one register file's values, keyed by space name so a
// restore into a machine built from a different spec fails loudly.
type SpaceState struct {
	Name string
	Vals []uint64
}

// PageState is one memory page image.
type PageState struct {
	Base uint64
	Gen  uint64
	Data []byte
}

// Capture snapshots m's architectural state. The machine must be quiescent:
// between instructions, with any speculative journal suffix the caller
// intends to keep already committed (the recorded JournalMark pins the
// point). The returned state shares nothing with the machine.
func Capture(m *mach.Machine) *State {
	st := &State{
		PC:          m.PC,
		Halted:      m.Halted,
		ExitCode:    int64(m.ExitCode),
		Instret:     m.Instret,
		JournalMark: uint64(m.Journal.Len()),
		Order:       m.Mem.Order(),
	}
	for _, sp := range m.Spaces {
		st.Spaces = append(st.Spaces, SpaceState{
			Name: sp.Def.Name,
			Vals: append([]uint64(nil), sp.Vals...),
		})
	}
	for _, base := range m.Mem.PageBases() {
		data, gen := m.Mem.PageImage(base)
		st.Pages = append(st.Pages, PageState{Base: base, Gen: gen, Data: data})
	}
	return st
}

// Apply restores st into m: register spaces (matched by name), memory
// pages (pages mapped in m but absent from st are zeroed, so a reused
// machine ends architecturally identical to a fresh one), PC, halt state,
// and the retired-instruction counter. The speculation journal is reset —
// its entries reference live Space pointers and cannot survive
// serialization. Page restores advance store generations, so any cached
// translation revalidates rather than executing stale bytes.
func Apply(st *State, m *mach.Machine) error {
	if m.Mem.Order() != st.Order {
		return &MismatchError{What: fmt.Sprintf("byte order %v vs machine %v", st.Order, m.Mem.Order())}
	}
	if len(st.Spaces) != len(m.Spaces) {
		return &MismatchError{What: fmt.Sprintf("%d register spaces vs machine %d", len(st.Spaces), len(m.Spaces))}
	}
	for i, ss := range st.Spaces {
		sp := m.Spaces[i]
		if sp.Def.Name != ss.Name {
			return &MismatchError{What: fmt.Sprintf("space %d is %q vs machine %q", i, ss.Name, sp.Def.Name)}
		}
		if len(ss.Vals) != len(sp.Vals) {
			return &MismatchError{What: fmt.Sprintf("space %q has %d registers vs machine %d", ss.Name, len(ss.Vals), len(sp.Vals))}
		}
	}
	// Shape validated; now mutate.
	for i, ss := range st.Spaces {
		copy(m.Spaces[i].Vals, ss.Vals)
	}
	inState := make(map[uint64]bool, len(st.Pages))
	for _, pg := range st.Pages {
		inState[pg.Base] = true
	}
	for _, base := range m.Mem.PageBases() {
		if !inState[base] {
			m.Mem.SetPageImage(base, nil, 0)
		}
	}
	for _, pg := range st.Pages {
		m.Mem.SetPageImage(pg.Base, pg.Data, pg.Gen)
	}
	m.PC = st.PC
	m.Halted = st.Halted
	m.ExitCode = int(st.ExitCode)
	m.Instret = st.Instret
	m.Journal.Reset()
	return nil
}

// ---- typed errors ----

// BadMagicError reports a file that is not a checkpoint at all.
type BadMagicError struct{ Got uint32 }

func (e *BadMagicError) Error() string {
	return fmt.Sprintf("checkpoint: bad magic %#x (want %#x)", e.Got, uint32(Magic))
}

// VersionError reports version skew: the file is a checkpoint, but written
// by a different format revision.
type VersionError struct{ Got, Want uint32 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: format version %d (this binary reads %d)", e.Got, e.Want)
}

// TruncatedError reports a file that ends mid-structure — the signature of
// a torn write or partial copy. It unwraps to io.ErrUnexpectedEOF.
type TruncatedError struct {
	At  string // which structure the data ran out in
	Off int64  // byte offset where the read failed
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("checkpoint: truncated in %s at offset %d", e.At, e.Off)
}

func (e *TruncatedError) Unwrap() error { return io.ErrUnexpectedEOF }

// CorruptError reports bit damage or structural nonsense: a CRC or SHA-256
// mismatch, an impossible length, a duplicate or unknown section.
type CorruptError struct {
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: corrupt %s: %s", e.Section, e.Reason)
}

// MismatchError reports a structurally valid checkpoint that does not fit
// the target machine (different spec, register shape, or byte order).
type MismatchError struct{ What string }

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: machine mismatch: %s", e.What)
}

// ---- serialization ----

type encoder struct{ buf bytes.Buffer }

func (e *encoder) u8(v uint8)   { e.buf.WriteByte(v) }
func (e *encoder) u16(v uint16) { var b [2]byte; binary.LittleEndian.PutUint16(b[:], v); e.buf.Write(b[:]) }
func (e *encoder) u32(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); e.buf.Write(b[:]) }
func (e *encoder) u64(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); e.buf.Write(b[:]) }

func encodeMachine(st *State) []byte {
	var e encoder
	e.u64(st.PC)
	e.u64(st.Instret)
	e.u64(st.JournalMark)
	e.u64(uint64(st.ExitCode))
	if st.Halted {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u8(uint8(st.Order))
	e.u32(uint32(len(st.Spaces)))
	for _, sp := range st.Spaces {
		e.u16(uint16(len(sp.Name)))
		e.buf.WriteString(sp.Name)
		e.u32(uint32(len(sp.Vals)))
		for _, v := range sp.Vals {
			e.u64(v)
		}
	}
	return e.buf.Bytes()
}

func encodeMemory(st *State) []byte {
	pages := append([]PageState(nil), st.Pages...)
	sort.Slice(pages, func(i, j int) bool { return pages[i].Base < pages[j].Base })
	var e encoder
	e.u32(uint32(mach.PageSize()))
	e.u32(uint32(len(pages)))
	for _, pg := range pages {
		e.u64(pg.Base)
		e.u64(pg.Gen)
		e.buf.Write(pg.Data)
	}
	return e.buf.Bytes()
}

func encodeMeta(st *State) []byte {
	keys := make([]string, 0, len(st.Meta))
	for k := range st.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var e encoder
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.u16(uint16(len(k)))
		e.buf.WriteString(k)
		e.u32(uint32(len(st.Meta[k])))
		e.buf.Write(st.Meta[k])
	}
	return e.buf.Bytes()
}

// Write serializes st. The byte stream is a deterministic function of the
// state: sections in fixed order, pages sorted by base, meta sorted by key.
func Write(w io.Writer, st *State) error {
	for _, pg := range st.Pages {
		if len(pg.Data) != mach.PageSize() {
			return fmt.Errorf("checkpoint: page %#x image is %d bytes, want %d", pg.Base, len(pg.Data), mach.PageSize())
		}
	}
	h := sha256.New()
	mw := io.MultiWriter(w, h)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := mw.Write(hdr[:]); err != nil {
		return err
	}
	writeSection := func(id uint32, payload []byte) error {
		var sh [12]byte
		binary.LittleEndian.PutUint32(sh[0:], id)
		binary.LittleEndian.PutUint64(sh[4:], uint64(len(payload)))
		if _, err := mw.Write(sh[:]); err != nil {
			return err
		}
		if _, err := mw.Write(payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		_, err := mw.Write(crc[:])
		return err
	}
	if err := writeSection(secMachine, encodeMachine(st)); err != nil {
		return err
	}
	if err := writeSection(secMemory, encodeMemory(st)); err != nil {
		return err
	}
	if len(st.Meta) > 0 {
		if err := writeSection(secMeta, encodeMeta(st)); err != nil {
			return err
		}
	}
	// Trailer: the id, then the SHA-256 of everything before the id.
	var tid [4]byte
	binary.LittleEndian.PutUint32(tid[:], trailerID)
	if _, err := w.Write(tid[:]); err != nil {
		return err
	}
	_, err := w.Write(h.Sum(nil))
	return err
}

// reader tracks the offset and running hash while consuming a stream.
type reader struct {
	r   io.Reader
	h   hash.Hash
	off int64
}

// read fills b, hashing the bytes. A short read becomes a TruncatedError
// naming the structure the data ran out in.
func (rd *reader) read(b []byte, at string) error {
	n, err := io.ReadFull(rd.r, b)
	rd.off += int64(n)
	if err != nil {
		return &TruncatedError{At: at, Off: rd.off}
	}
	rd.h.Write(b)
	return nil
}

func (rd *reader) u32(at string) (uint32, error) {
	var b [4]byte
	if err := rd.read(b[:], at); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (rd *reader) u64(at string) (uint64, error) {
	var b [8]byte
	if err := rd.read(b[:], at); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Read parses and validates a checkpoint stream: magic, version, every
// section CRC, the whole-file SHA-256 trailer, and the structural sanity of
// each section. All failure modes surface as the typed errors above; Read
// never panics on hostile input (FuzzRestore holds it to that).
func Read(r io.Reader) (*State, error) {
	rd := &reader{r: bufio.NewReader(r), h: sha256.New()}
	m, err := rd.u32("magic")
	if err != nil {
		return nil, err
	}
	if m != Magic {
		return nil, &BadMagicError{Got: m}
	}
	v, err := rd.u32("version")
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	st := &State{}
	seen := map[uint32]bool{}
	for {
		// The trailer id is read outside the hash: the SHA covers
		// everything before it.
		var idb [4]byte
		n, err := io.ReadFull(rd.r, idb[:])
		rd.off += int64(n)
		if err != nil {
			return nil, &TruncatedError{At: "section id", Off: rd.off}
		}
		id := binary.LittleEndian.Uint32(idb[:])
		if id == trailerID {
			want := rd.h.Sum(nil)
			got := make([]byte, len(want))
			if n, err := io.ReadFull(rd.r, got); err != nil {
				return nil, &TruncatedError{At: "sha256 trailer", Off: rd.off + int64(n)}
			}
			if !bytes.Equal(got, want) {
				return nil, &CorruptError{Section: "file", Reason: "sha256 trailer mismatch"}
			}
			break
		}
		rd.h.Write(idb[:])
		name := sectionName(id)
		length, err := rd.u64(name + " length")
		if err != nil {
			return nil, err
		}
		if length > maxSection {
			return nil, &CorruptError{Section: name, Reason: fmt.Sprintf("declared length %d exceeds limit", length)}
		}
		payload := make([]byte, length)
		if err := rd.read(payload, name+" payload"); err != nil {
			return nil, err
		}
		crc, err := rd.u32(name + " crc")
		if err != nil {
			return nil, err
		}
		if crc != crc32.ChecksumIEEE(payload) {
			return nil, &CorruptError{Section: name, Reason: "crc32 mismatch"}
		}
		if seen[id] {
			return nil, &CorruptError{Section: name, Reason: "duplicate section"}
		}
		seen[id] = true
		switch id {
		case secMachine:
			err = decodeMachine(payload, st)
		case secMemory:
			err = decodeMemory(payload, st)
		case secMeta:
			err = decodeMeta(payload, st)
		default:
			err = &CorruptError{Section: name, Reason: "unknown section id"}
		}
		if err != nil {
			return nil, err
		}
	}
	if !seen[secMachine] {
		return nil, &CorruptError{Section: "file", Reason: "missing machine section"}
	}
	if !seen[secMemory] {
		return nil, &CorruptError{Section: "file", Reason: "missing memory section"}
	}
	return st, nil
}

func sectionName(id uint32) string {
	switch id {
	case secMachine:
		return "machine section"
	case secMemory:
		return "memory section"
	case secMeta:
		return "meta section"
	}
	return fmt.Sprintf("section %d", id)
}

// decoder walks a CRC-validated payload. Structural violations still get
// typed errors: a CRC only proves the bytes are as written, not that the
// writer was sane.
type decoder struct {
	b       []byte
	section string
}

func (d *decoder) need(n int, what string) ([]byte, error) {
	if len(d.b) < n {
		return nil, &CorruptError{Section: d.section, Reason: "short " + what}
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out, nil
}

func (d *decoder) u8(what string) (uint8, error) {
	b, err := d.need(1, what)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16(what string) (uint16, error) {
	b, err := d.need(2, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32(what string) (uint32, error) {
	b, err := d.need(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64(what string) (uint64, error) {
	b, err := d.need(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) leftover() error {
	if len(d.b) != 0 {
		return &CorruptError{Section: d.section, Reason: fmt.Sprintf("%d trailing bytes", len(d.b))}
	}
	return nil
}

func decodeMachine(payload []byte, st *State) error {
	d := &decoder{b: payload, section: "machine section"}
	var err error
	if st.PC, err = d.u64("pc"); err != nil {
		return err
	}
	if st.Instret, err = d.u64("instret"); err != nil {
		return err
	}
	if st.JournalMark, err = d.u64("journal mark"); err != nil {
		return err
	}
	ec, err := d.u64("exit code")
	if err != nil {
		return err
	}
	st.ExitCode = int64(ec)
	halted, err := d.u8("halted flag")
	if err != nil {
		return err
	}
	if halted > 1 {
		return &CorruptError{Section: d.section, Reason: "halted flag out of range"}
	}
	st.Halted = halted == 1
	order, err := d.u8("byte order")
	if err != nil {
		return err
	}
	if order > uint8(mach.BigEndian) {
		return &CorruptError{Section: d.section, Reason: "byte order out of range"}
	}
	st.Order = mach.ByteOrder(order)
	nsp, err := d.u32("space count")
	if err != nil {
		return err
	}
	if nsp > maxSpaces {
		return &CorruptError{Section: d.section, Reason: "space count exceeds limit"}
	}
	for i := uint32(0); i < nsp; i++ {
		nl, err := d.u16("space name length")
		if err != nil {
			return err
		}
		nb, err := d.need(int(nl), "space name")
		if err != nil {
			return err
		}
		nv, err := d.u32("space value count")
		if err != nil {
			return err
		}
		if nv > maxSpaceVals {
			return &CorruptError{Section: d.section, Reason: "space value count exceeds limit"}
		}
		sp := SpaceState{Name: string(nb), Vals: make([]uint64, nv)}
		for k := range sp.Vals {
			if sp.Vals[k], err = d.u64("space values"); err != nil {
				return err
			}
		}
		st.Spaces = append(st.Spaces, sp)
	}
	return d.leftover()
}

func decodeMemory(payload []byte, st *State) error {
	d := &decoder{b: payload, section: "memory section"}
	ps, err := d.u32("page size")
	if err != nil {
		return err
	}
	if int(ps) != mach.PageSize() {
		return &CorruptError{Section: d.section, Reason: fmt.Sprintf("page size %d, want %d", ps, mach.PageSize())}
	}
	np, err := d.u32("page count")
	if err != nil {
		return err
	}
	// Exact-length check makes the page loop allocation-safe: the count
	// must match the remaining payload precisely.
	if uint64(len(d.b)) != uint64(np)*(16+uint64(ps)) {
		return &CorruptError{Section: d.section, Reason: "page count disagrees with payload length"}
	}
	var prev uint64
	for i := uint32(0); i < np; i++ {
		base, err := d.u64("page base")
		if err != nil {
			return err
		}
		if base%uint64(ps) != 0 {
			return &CorruptError{Section: d.section, Reason: "page base misaligned"}
		}
		if i > 0 && base <= prev {
			return &CorruptError{Section: d.section, Reason: "page bases not strictly ascending"}
		}
		prev = base
		gen, err := d.u64("page gen")
		if err != nil {
			return err
		}
		data, err := d.need(int(ps), "page data")
		if err != nil {
			return err
		}
		st.Pages = append(st.Pages, PageState{Base: base, Gen: gen, Data: append([]byte(nil), data...)})
	}
	return d.leftover()
}

func decodeMeta(payload []byte, st *State) error {
	d := &decoder{b: payload, section: "meta section"}
	n, err := d.u32("meta count")
	if err != nil {
		return err
	}
	st.Meta = map[string][]byte{}
	for i := uint32(0); i < n; i++ {
		kl, err := d.u16("meta key length")
		if err != nil {
			return err
		}
		if kl > maxMetaKey {
			return &CorruptError{Section: d.section, Reason: "meta key exceeds limit"}
		}
		kb, err := d.need(int(kl), "meta key")
		if err != nil {
			return err
		}
		vl, err := d.u32("meta value length")
		if err != nil {
			return err
		}
		if uint64(vl) > uint64(len(d.b)) {
			return &CorruptError{Section: d.section, Reason: "meta value exceeds payload"}
		}
		vb, err := d.need(int(vl), "meta value")
		if err != nil {
			return err
		}
		key := string(kb)
		if _, dup := st.Meta[key]; dup {
			return &CorruptError{Section: d.section, Reason: "duplicate meta key"}
		}
		st.Meta[key] = append([]byte(nil), vb...)
	}
	return d.leftover()
}

// Encode renders st to a byte slice (Write into a buffer).
func Encode(st *State) []byte {
	var buf bytes.Buffer
	// Write into a buffer cannot fail.
	_ = Write(&buf, st)
	return buf.Bytes()
}

// Decode parses a checkpoint from a byte slice.
func Decode(b []byte) (*State, error) { return Read(bytes.NewReader(b)) }
