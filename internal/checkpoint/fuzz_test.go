package checkpoint_test

import (
	"bytes"
	"testing"

	"singlespec/internal/checkpoint"
	"singlespec/internal/mach"
)

// fuzzSeed builds a small but fully-populated checkpoint without spinning
// up a real simulator (fuzz seeds must be cheap: the corpus is re-encoded
// on every process start).
func fuzzSeed() []byte {
	st := &checkpoint.State{
		PC:          0x1000,
		Instret:     12345,
		JournalMark: 2,
		ExitCode:    0,
		Order:       mach.LittleEndian,
		Spaces: []checkpoint.SpaceState{
			{Name: "r", Vals: []uint64{0, 1, 0xdeadbeef}},
			{Name: "c", Vals: []uint64{7}},
		},
		Pages: []checkpoint.PageState{
			{Base: 0x10000, Gen: 3, Data: bytes.Repeat([]byte{0xab}, mach.PageSize())},
			{Base: 0x20000, Gen: 1, Data: make([]byte, mach.PageSize())},
		},
		Meta: map[string][]byte{"run": []byte("seed")},
	}
	return checkpoint.Encode(st)
}

// FuzzRestore feeds arbitrary bytes to the checkpoint reader. Whatever the
// input — valid, truncated, bit-flipped, or hostile garbage claiming huge
// section lengths — Read must return a *State or an error, never panic or
// over-allocate, and any state it does accept must survive a re-encode
// round trip.
func FuzzRestore(f *testing.F) {
	valid := fuzzSeed()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x4b, 0x43, 0x53, 0x53}) // magic only
	f.Add(valid[:8])                      // magic + version only
	f.Add(valid[:len(valid)/2])           // truncated mid-section
	f.Add(valid[:len(valid)-1])           // truncated inside the trailer
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x04
	f.Add(flipped) // bit-flipped payload
	skew := append([]byte(nil), valid...)
	skew[4] = checkpoint.Version + 9
	f.Add(skew) // version skew

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := checkpoint.Decode(data)
		if err != nil {
			return
		}
		// Accepted input: it passed magic, version, CRCs, and the SHA-256
		// trailer. Re-encoding must reproduce a decodable state — the
		// format is canonical, so decode ∘ encode must be identity on the
		// decoded representation.
		st2, err := checkpoint.Decode(checkpoint.Encode(st))
		if err != nil {
			t.Fatalf("accepted state failed re-encode round trip: %v", err)
		}
		if st2.PC != st.PC || st2.Instret != st.Instret ||
			len(st2.Spaces) != len(st.Spaces) || len(st2.Pages) != len(st.Pages) {
			t.Fatalf("round trip changed state: %+v vs %+v", st2, st)
		}
	})
}
