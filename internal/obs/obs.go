// Package obs is the simulator's observability layer: named atomic
// counters, fixed-bucket histograms, and a registry that exports both as a
// deterministic JSON snapshot. It is the reporting spine the experiment
// engine, the fault-injection campaigns, and the timing models all feed,
// and the layer ssbench surfaces through -metrics-out.
//
// Two properties drive the design:
//
//   - Race safety. Counters and histogram buckets are atomics, and the
//     registry's get-or-create paths are guarded, so any number of sweep
//     workers may increment concurrently. Addition is commutative, so an
//     aggregate built from per-cell deltas is identical for any worker
//     count — the determinism contract EXPERIMENTS.md documents.
//
//   - Zero cost when disabled. Every method is nil-safe: a nil *Registry
//     hands out nil *Counter and *Histogram values whose methods are
//     no-ops. Instrumented code holds one pointer and pays one nil check
//     when observability is off; there is no global flag to consult.
//
// Snapshots are plain sorted-key JSON (encoding/json sorts map keys), so a
// snapshot of a quiescent registry is byte-identical across runs whenever
// the underlying counts are.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter. The zero value is ready to use;
// a nil Counter ignores all updates.
type Counter struct {
	v atomic.Uint64
}

// Add adds n to the counter. No-op on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds 1 to the counter. No-op on a nil Counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil Counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= UpperBounds[i]; the final implicit bucket counts the
// overflow. Bounds are fixed at registration, so merging and snapshotting
// never rebin. A nil Histogram ignores all observations.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// It panics on empty or unsorted bounds — histogram shapes are static
// configuration, and a malformed one is a programming error.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil Histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Registry is a named collection of counters and histograms. The zero
// value is not usable; construct with NewRegistry. A nil Registry hands
// out nil instruments, making disabled instrumentation free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use. Safe for
// concurrent callers; nil receiver returns a nil (no-op) Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. The first registration fixes the bounds; later
// calls return the existing histogram regardless of the bounds argument.
// Nil receiver returns a nil (no-op) Histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	// UpperBounds are the ascending bucket bounds; Counts has one extra
	// final entry for observations above the last bound.
	UpperBounds []uint64 `json:"upper_bounds"`
	Counts      []uint64 `json:"counts"`
}

// Snapshot is the exported state of a registry. Marshalling it produces
// sorted keys, so equal counts yield byte-identical JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every instrument. Each counter is read atomically, but
// the set is not a consistent cut across instruments: snapshot after the
// instrumented work has quiesced (the engine does) for exact totals.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:       h.count.Load(),
			Sum:         h.sum.Load(),
			UpperBounds: append([]uint64(nil), h.bounds...),
			Counts:      make([]uint64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistogramSnapshot{}
		}
		s.Histograms[name] = hs
	}
	return s
}

// MarshalIndent renders the snapshot as indented JSON with sorted keys.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
