package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers get-or-create and Add from many goroutines
// (run under -race): the total must be exact, and every goroutine must
// resolve the same name to the same counter.
func TestCounterConcurrent(t *testing.T) {
	const workers, perWorker = 16, 10000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Re-resolving by name each iteration races the registry's
				// get-or-create path on purpose.
				r.Counter("hammered").Inc()
				r.Counter("batched").Add(3)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hammered").Load(); got != workers*perWorker {
		t.Errorf("hammered = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("batched").Load(); got != 3*workers*perWorker {
		t.Errorf("batched = %d, want %d", got, 3*workers*perWorker)
	}
}

// TestHistogramConcurrent hammers Observe across the full bucket range and
// checks count, sum, and per-bucket totals are exact.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 5000
	r := NewRegistry()
	bounds := []uint64{10, 100, 1000}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Values 0..9999 cycle deterministically through every bucket.
				r.Histogram("lat", bounds).Observe(uint64((w*perWorker + i) % 10000))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot().Histograms["lat"]
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Errorf("bucket total %d != count %d", bucketSum, s.Count)
	}
	// 40000 observations cycle 4 full times through 0..9999: <=10 has 11
	// values per cycle, (10,100] has 90, (100,1000] has 900, rest overflow.
	want := []uint64{4 * 11, 4 * 90, 4 * 900, 4 * 8999}
	for i, n := range s.Counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

// TestNilSafety: a nil registry hands out nil instruments and every method
// no-ops — the zero-cost-when-disabled contract instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Error("nil registry should hand out a nil counter")
	}
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter should read 0")
	}
	h := r.Histogram("h", []uint64{1})
	if h != nil {
		t.Error("nil registry should hand out a nil histogram")
	}
	h.Observe(7)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

// TestSnapshotDeterministic: two registries filled identically marshal to
// byte-identical JSON — the property the -metrics-out determinism contract
// (and its CI check) is built on.
func TestSnapshotDeterministic(t *testing.T) {
	fill := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Counter("m.middle").Add(2)
		h := r.Histogram("h", []uint64{1, 2, 4})
		for _, v := range []uint64{0, 1, 3, 9} {
			h.Observe(v)
		}
		return r
	}
	j1, err := fill().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := fill().Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", j1, j2)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	for _, bad := range [][]uint64{nil, {}, {5, 5}, {9, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) should panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

// TestManifestWriteFile round-trips a manifest through disk and checks the
// schema keys the CI robustness job validates.
func TestManifestWriteFile(t *testing.T) {
	m := NewManifest("ssbench-test")
	m.Flags["metric"] = "work"
	m.Cells = append(m.Cells, CellOutcome{
		ISA: "alpha64", Buildset: "block_min", Status: "ok",
		Attempts: 1, Instret: 1000, WorkUnits: 4000,
	})
	r := NewRegistry()
	r.Counter("expt.cell.ok").Inc()
	m.Metrics = r.Snapshot()

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	for _, key := range []string{"tool", "go_version", "os", "arch", "flags", "cells", "metrics"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("manifest missing key %q", key)
		}
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "ssbench-test" || back.Metrics.Counters["expt.cell.ok"] != 1 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if len(back.Cells) != 1 || back.Cells[0].Status != "ok" {
		t.Errorf("cells round-trip mismatch: %+v", back.Cells)
	}
}
