package obs

import (
	"encoding/json"
	"os"
	"runtime"
)

// Manifest is the per-run record ssbench writes next to its tables: what
// ran (tool, toolchain, flags), what happened per sweep cell, and the
// aggregate metrics snapshot. It exists so a rates table can be traced
// back to the exact configuration — and instrumentation — that produced
// it.
//
// Determinism: under the work metric the Metrics section and every cell's
// status/attempts/instret/work_units fields are byte-identical across
// -parallel values and across runs on any host. The wall_ms and
// queue_wait_ms cell fields, and the go_version/os/arch header, are
// host-dependent by nature and excluded from that contract (see
// EXPERIMENTS.md, "Reading -metrics-out").
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Flags records the flag values the run was invoked with (including
	// the campaign seed when fault injection ran).
	Flags map[string]string `json:"flags"`
	// RunID identifies this process's run; ParentRunID, when non-empty, is
	// the run this one resumed from (the resume lineage). CellsRestored and
	// CellsComputed split the sweep between cells reloaded from the resume
	// journal and cells this process measured (or attempted). All four are
	// zero-valued when the run was not durable.
	RunID         string `json:"run_id,omitempty"`
	ParentRunID   string `json:"parent_run_id,omitempty"`
	CellsRestored int    `json:"cells_restored,omitempty"`
	CellsComputed int    `json:"cells_computed,omitempty"`
	// Interrupted records that the run was cut short by a shutdown signal
	// and wound down cleanly (manifest written, journal flushed).
	Interrupted bool          `json:"interrupted,omitempty"`
	Cells       []CellOutcome `json:"cells"`
	// Fabric, when the run was a distributed-fabric coordinator, records the
	// fleet membership and terminal lease state of every cell. The lease
	// table's keys and states are deterministic; which worker resolved each
	// cell (and the try counts) depend on placement and timing and are
	// excluded from the determinism contract.
	Fabric  *FabricSnapshot `json:"fabric,omitempty"`
	Metrics Snapshot        `json:"metrics"`
}

// FabricSnapshot is the manifest record of a fabric coordinator's worker
// fleet and lease table, taken after the sweep resolved.
type FabricSnapshot struct {
	// Fingerprint is the membership fingerprint workers must present.
	Fingerprint string `json:"fingerprint"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	MaxTries    int    `json:"max_tries"`
	// Workers lists every worker id that ever joined, sorted.
	Workers []string       `json:"workers"`
	Leases  []LeaseOutcome `json:"leases"`
}

// LeaseOutcome is one cell's terminal lease-table entry.
type LeaseOutcome struct {
	Key   string `json:"key"`
	State string `json:"state"` // "pending", "leased", or "done"
	// Tries counts lease grants; Worker is the last holder. Both vary with
	// placement and timing.
	Tries  int    `json:"tries,omitempty"`
	Worker string `json:"worker,omitempty"`
}

// CellOutcome is the manifest record of one sweep or campaign cell.
type CellOutcome struct {
	ISA      string `json:"isa"`
	Buildset string `json:"buildset"`
	// Status is "ok", or the cell's error kind ("panic", "timeout",
	// "budget", "failed"), or a campaign verdict ("diverged", "error").
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	// Instret and WorkUnits are the cell's raw deterministic totals.
	Instret   uint64 `json:"instret"`
	WorkUnits uint64 `json:"work_units"`
	// WallMS and QueueWaitMS are host wall-clock observations; they vary
	// run to run and are excluded from the determinism contract.
	WallMS      float64 `json:"wall_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// Restored marks a cell reloaded from a resume journal rather than
	// computed by this run. Excluded from the determinism contract (it
	// depends on where the previous run was killed).
	Restored bool `json:"restored,omitempty"`
}

// NewManifest returns a manifest stamped with the current toolchain.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Flags:     map[string]string{},
	}
}

// MarshalIndent renders the manifest as indented JSON with sorted keys.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteFile writes the manifest to path as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
