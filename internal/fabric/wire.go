// Package fabric is the distributed sweep fabric: a coordinator/worker
// protocol that shards the paper's evaluation sweeps across processes and
// machines while preserving the single-host engine's determinism contract
// byte for byte.
//
// The coordinator owns the deterministic cell list (expt.TableIIJobSpecs
// order) and leases cells to workers with explicit deadlines. Workers
// heartbeat progress — retired instructions plus the latest serialized
// mid-cell progress snapshot (committed kernels and the in-flight run's
// machine checkpoint) — and the coordinator reclaims a lease whose
// heartbeats stop, re-leasing the cell to another worker together with the
// last snapshot so the takeover resumes mid-kernel instead of from
// scratch. Robustness is structural, not bolted on:
//
//   - membership guard: a worker whose config fingerprint differs from the
//     coordinator's (a stale worker from an old run) is refused at hello;
//   - bounded cross-worker retry: a cell is re-leased at most MaxCellTries
//     times before it is ERR-marked with the expt guard's typed CellError
//     taxonomy (kind "lost") instead of stalling the sweep;
//   - exponential backoff with seeded jitter on worker reconnect (shared
//     with the guard's cell-retry backoff, expt.RetryDelay);
//   - durable merge: every delivered result is appended to a per-worker
//     segment file in the run journal's CRC-framed format, and the final
//     merge re-reads the segments — a torn final record is dropped, but
//     mid-file corruption refuses the whole merge naming the worker and
//     offset, per the resume semantics;
//   - graceful degradation: the sweep completes with however many workers
//     remain, including one, and the merged output is byte-identical to a
//     single-host -parallel run for every deterministic field.
//
// Framing mirrors the AOT runner protocol discipline: u32-LE
// length-prefixed frames (JSON payloads here — the messages are small and
// infrequent, unlike the runner's record stream), every length validated
// against a hard bound before allocation, malformed frames surfacing as
// typed errors rather than hangs or panics.
package fabric

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"singlespec/internal/expt"
)

// ProtoVersion is the fabric wire-protocol version; coordinator and worker
// must agree exactly.
const ProtoVersion = 1

// maxFrame bounds one frame in either direction. Progress snapshots carry
// a machine checkpoint (registers + dirty pages), so the bound is generous;
// anything beyond it is corruption, not data.
const maxFrame = 1 << 26

// ProtocolError is the typed error for any malformed fabric frame.
type ProtocolError struct {
	Msg string
}

func (e *ProtocolError) Error() string { return "fabric: protocol: " + e.Msg }

func perr(format string, args ...any) error {
	return &ProtocolError{Msg: fmt.Sprintf(format, args...)}
}

// RefusedError reports that the coordinator refused this worker's hello —
// the membership guard. Terminal: reconnecting cannot help, the worker was
// started for a different run.
type RefusedError struct {
	Reason string
}

func (e *RefusedError) Error() string {
	return "fabric: coordinator refused worker: " + e.Reason
}

// Frame type tags.
const (
	frameHello    = "hello"    // worker → coordinator: join request
	frameWelcome  = "welcome"  // coordinator → worker: join accepted
	frameRefuse   = "refuse"   // coordinator → worker: membership guard refusal
	frameLease    = "lease"    // coordinator → worker: one cell, with deadline
	frameBeat     = "beat"     // worker → coordinator: lease heartbeat
	frameResult   = "result"   // worker → coordinator: completed cell
	frameShutdown = "shutdown" // coordinator → worker: sweep complete, exit
)

// frame is the one message shape every fabric exchange uses; Type selects
// which fields are meaningful.
type frame struct {
	Type string `json:"type"`

	// hello. Kind names the work kind the worker serves ("sweep",
	// "campaign"); empty means "sweep" (pre-campaign workers never sent
	// one). A kind mismatch is refused like a fingerprint mismatch.
	Proto       int    `json:"proto,omitempty"`
	Worker      string `json:"worker,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Kind        string `json:"kind,omitempty"`

	// welcome / refuse
	RunID  string `json:"run_id,omitempty"`
	Reason string `json:"reason,omitempty"`

	// lease
	LeaseID  uint64        `json:"lease_id,omitempty"`
	Key      string        `json:"key,omitempty"`
	Spec     *expt.JobSpec `json:"spec,omitempty"`
	TTLMS    int64         `json:"ttl_ms,omitempty"`
	Progress []byte        `json:"progress,omitempty"`

	// beat: Instret is the cell's retired-instruction total so far; Gen
	// the progress-snapshot generation (Progress is attached only when Gen
	// advanced past what the coordinator has, keeping beats small).
	Instret uint64 `json:"instret,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`

	// result: Cell is the expt.EncodeCellWire payload; Resumed reports
	// that the worker actually applied the progress snapshot shipped with
	// its lease (the takeover-resumed-from-checkpoint signal).
	Cell    []byte `json:"cell,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
}

// writeFrame writes one length-prefixed frame. Callers serialize access.
func writeFrame(w io.Writer, f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return perr("frame of %d bytes exceeds bound", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame, validating the length bound
// before allocating.
func readFrame(r io.Reader) (*frame, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n == 0 || n > maxFrame {
		return nil, perr("frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, perr("reading %d-byte frame: %v", n, err)
	}
	var f frame
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, perr("frame payload is not valid JSON: %v", err)
	}
	return &f, nil
}

// readFrameTimeout reads one frame with a read deadline (0 = block).
func readFrameTimeout(c net.Conn, d time.Duration) (*frame, error) {
	if d > 0 {
		if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, err
		}
		defer c.SetReadDeadline(time.Time{})
	}
	return readFrame(c)
}

// Fingerprint derives the fabric membership fingerprint from a sweep
// configuration: the same SHA-256 derivation the resume journal uses, over
// everything that determines which cells exist and what their
// deterministic fields contain. A worker and coordinator started with
// different -scale/-metric/-backend flags fingerprint differently and the
// worker is refused at hello.
func Fingerprint(cfg expt.Config) string {
	return expt.Fingerprint("fabric/table2", cfg)
}
