package fabric

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/obs"
)

// Config configures a fabric coordinator.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7707", or ":0" to let
	// the kernel pick — see Coordinator.Addr).
	Addr string
	// Sweep is the sweep configuration: it determines the cell list, the
	// membership fingerprint, and (via Journal/Obs/Interrupt) the run's
	// durability, instrumentation, and shutdown wiring. Sweep.Workers is
	// ignored — the fabric's parallelism is its worker fleet.
	Sweep expt.Config
	// LeaseTTL is how long a lease stays valid without a heartbeat before
	// the coordinator reclaims it; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxCellTries bounds how many lease grants one cell gets across the
	// fleet before it is ERR-marked (kind "lost") instead of stalling the
	// sweep; 0 means DefaultMaxCellTries.
	MaxCellTries int
	// SegmentDir is where per-worker result segments are written (and
	// re-read at merge); empty uses a per-run temporary directory.
	SegmentDir string
	// RunID stamps segment lineage headers; empty derives one from the pid.
	RunID string
	// Log, when non-nil, receives one-line progress events (worker joins,
	// takeovers, refusals) for the operator console.
	Log func(format string, args ...any)
}

// DefaultLeaseTTL is the lease validity window without a heartbeat.
const DefaultLeaseTTL = 10 * time.Second

// DefaultMaxCellTries bounds lease grants per cell across the fleet.
const DefaultMaxCellTries = 3

// helloTimeout bounds how long an accepted connection may dawdle before its
// hello frame; anything slower is not a fabric worker.
const helloTimeout = 10 * time.Second

// Cell lease states.
const (
	cellPending = iota // unleased, waiting for a worker
	cellLeased         // leased to a live worker
	cellDone           // resolved (result delivered, restored, or ERR-marked)
)

// cellSlot is the coordinator's state for one sweep cell.
type cellSlot struct {
	spec  expt.JobSpec
	key   string
	state int
	// tries counts lease grants; at MaxCellTries the next reclaim ERR-marks
	// the cell instead of requeueing it.
	tries    int
	leaseID  uint64
	worker   string
	deadline time.Time
	// progress is the latest heartbeat-shipped snapshot (and its worker-side
	// generation); a re-lease ships it so the takeover resumes mid-kernel.
	progress    []byte
	progressGen uint64
	instret     uint64
	cell        expt.Cell
}

// workerConn is one connected worker.
type workerConn struct {
	id   string
	conn net.Conn
	// wmu serializes frame writes (lease grants race with shutdown).
	wmu sync.Mutex
	// cur is the index of the cell currently leased to this worker, -1 when
	// idle. A TTL-expired worker keeps its stale cur until it reports in
	// again: a worker that stopped heartbeating gets no further leases.
	cur  int
	gone bool
}

// Coordinator runs one fabric sweep: it owns the deterministic cell list,
// leases cells to joined workers, reclaims and re-leases on missed
// heartbeats or dead connections, and merges the per-worker result segments
// into the final cell slice.
type Coordinator struct {
	cfg Config
	fp  string
	reg *obs.Registry
	ln  net.Listener

	mu      sync.Mutex
	slots   []cellSlot
	keyIdx  map[string]int
	open    int // cells not yet done
	seq     uint64
	workers map[string]*workerConn
	seen    map[string]bool   // worker ids that ever joined
	segs    map[string]*expt.Segment
	segPath map[string]string
	done    chan struct{}
	closed  bool

	segDir string
}

// SegmentError wraps a per-worker segment failure during merge, naming the
// worker whose file refused it; it unwraps to the underlying typed error
// (*expt.CorruptJournalError with the damage offset, or
// *expt.FingerprintMismatchError).
type SegmentError struct {
	Worker string
	Path   string
	Err    error
}

func (e *SegmentError) Error() string {
	return fmt.Sprintf("fabric: merge refused: worker %s segment %s: %v", e.Worker, e.Path, e.Err)
}

func (e *SegmentError) Unwrap() error { return e.Err }

// Serve runs a fabric sweep to completion: listen, lease, reclaim, merge.
// It returns the merged cells in deterministic TableIIJobSpecs order —
// byte-identical (in every deterministic field) to a single-host sweep of
// the same configuration, for any worker count, placement, or mid-sweep
// worker death. It blocks until every cell is resolved (or the sweep is
// interrupted), then shuts the fleet down.
func Serve(cfg Config) ([]expt.Cell, error) {
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	return c.Wait()
}

// NewCoordinator starts the coordinator (listener and lease scanner) and
// returns immediately; Wait blocks for the merged result. Split from Serve
// so tests and embedders can learn the listen address before joining
// workers.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxCellTries <= 0 {
		cfg.MaxCellTries = DefaultMaxCellTries
	}
	if cfg.RunID == "" {
		cfg.RunID = fmt.Sprintf("fabric-%d", os.Getpid())
	}
	c := &Coordinator{
		cfg:     cfg,
		fp:      Fingerprint(cfg.Sweep),
		reg:     cfg.Sweep.Obs,
		keyIdx:  map[string]int{},
		workers: map[string]*workerConn{},
		seen:    map[string]bool{},
		segs:    map[string]*expt.Segment{},
		segPath: map[string]string{},
		done:    make(chan struct{}),
	}
	specs := expt.TableIIJobSpecs(cfg.Sweep)
	c.slots = make([]cellSlot, len(specs))
	for i, s := range specs {
		c.slots[i] = cellSlot{spec: s, key: s.Key(), state: cellPending}
		c.keyIdx[c.slots[i].key] = i
		c.open++
	}
	// Resume: cells the journal already holds are resolved up front, never
	// leased — the same reload-don't-recompute semantics as runCells.
	if cfg.Sweep.Journal != nil {
		for i := range c.slots {
			if cell, ok := cfg.Sweep.Journal.Lookup(c.slots[i].key); ok {
				c.slots[i].state = cellDone
				c.slots[i].cell = cell
				c.open--
				// Restored cells fire OnCell like computed ones: a streaming
				// consumer of a resumed sweep sees every cell land.
				if fn := cfg.Sweep.OnCell; fn != nil {
					fn(c.slots[i].key, cell)
				}
			}
		}
	}
	c.segDir = cfg.SegmentDir
	if c.segDir == "" {
		d, err := os.MkdirTemp("", "ssbench-fabric-")
		if err != nil {
			return nil, err
		}
		c.segDir = d
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	if c.open == 0 {
		close(c.done)
	}
	go c.acceptLoop()
	go c.scanLeases()
	return c, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

// Wait blocks until the sweep resolves (or is interrupted), shuts the fleet
// down, and merges the per-worker segments into the final cell slice.
func (c *Coordinator) Wait() ([]expt.Cell, error) {
	select {
	case <-c.done:
	case <-interruptCh(c.cfg.Sweep.Interrupt):
		c.interruptAll()
		<-c.done
	}
	c.shutdown()
	return c.merge()
}

// interruptCh adapts a possibly-nil interrupt channel for select (a nil
// channel blocks forever, which is exactly right).
func interruptCh(ch <-chan struct{}) <-chan struct{} { return ch }

// interruptAll resolves every unfinished cell as interrupted, mirroring the
// single-host engine's wind-down: not journaled, recomputed on resume.
func (c *Coordinator) interruptAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		s := &c.slots[i]
		if s.state == cellDone {
			continue
		}
		s.cell = expt.Cell{ISA: s.spec.ISA, Buildset: s.spec.Buildset,
			Backend: backendTag(s.spec.Backend),
			Err: &expt.CellError{ISA: s.spec.ISA, Buildset: s.spec.Buildset,
				Kind: expt.CellInterrupted, Err: errors.New("sweep interrupted"),
				Attempts: s.tries}}
		c.resolveLocked(i)
	}
}

// acceptLoop admits workers until the listener closes.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handleConn(conn)
	}
}

// handleConn runs one worker connection: membership guard, registration,
// then the beat/result read loop. Any read error (including the peer dying)
// immediately reclaims the worker's lease.
func (c *Coordinator) handleConn(conn net.Conn) {
	f, err := readFrameTimeout(conn, helloTimeout)
	if err != nil || f.Type != frameHello {
		conn.Close()
		return
	}
	refuse := func(reason string) {
		_ = writeFrame(conn, &frame{Type: frameRefuse, Reason: reason})
		conn.Close()
	}
	switch {
	case f.Proto != ProtoVersion:
		refuse(fmt.Sprintf("protocol version %d, coordinator speaks %d", f.Proto, ProtoVersion))
		return
	case f.Worker == "":
		refuse("empty worker id")
		return
	case f.Fingerprint != c.fp:
		// The membership guard: a worker started with different sweep flags
		// (or left over from an old run) would compute different cells.
		c.reg.Counter("fabric.worker.refused_stale").Inc()
		c.logf("fabric: refused stale worker %s (fingerprint %.12s…, run is %.12s…)",
			f.Worker, f.Fingerprint, c.fp)
		refuse(fmt.Sprintf("config fingerprint %.12s… does not match this run's %.12s…; stale worker?",
			f.Fingerprint, c.fp))
		return
	}

	w := &workerConn{id: f.Worker, conn: conn, cur: -1}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		refuse("sweep already complete")
		return
	}
	if old := c.workers[w.id]; old != nil && !old.gone {
		// A reconnect raced ahead of the dead connection's read error: the
		// new connection supersedes; closing the old one unblocks its
		// handler, which reclaims any lease it held.
		old.gone = true
		old.conn.Close()
		if old.cur >= 0 {
			c.reclaimLocked(old.cur, "superseded connection")
		}
	}
	rejoin := c.seen[w.id]
	c.seen[w.id] = true
	c.workers[w.id] = w
	if c.segs[w.id] == nil {
		path := filepath.Join(c.segDir, "worker-"+sanitize(w.id)+".sseg")
		seg, err := expt.CreateSegment(path, w.id, c.fp)
		if err != nil {
			c.mu.Unlock()
			refuse("coordinator cannot persist results: " + err.Error())
			return
		}
		c.segs[w.id] = seg
		c.segPath[w.id] = path
	}
	c.mu.Unlock()

	if rejoin {
		c.reg.Counter("fabric.worker.rejoined").Inc()
	} else {
		c.reg.Counter("fabric.worker.joined").Inc()
	}
	c.logf("fabric: worker %s joined", w.id)
	if err := c.send(w, &frame{Type: frameWelcome, RunID: c.cfg.RunID}); err != nil {
		c.dropWorker(w)
		return
	}
	c.assign(w)

	for {
		f, err := readFrame(conn)
		if err != nil {
			c.dropWorker(w)
			return
		}
		switch f.Type {
		case frameBeat:
			c.handleBeat(w, f)
		case frameResult:
			c.handleResult(w, f)
		default:
			// Unknown frame types are ignored, not fatal: a newer worker may
			// speak extensions this coordinator predates.
		}
	}
}

// send writes one frame to a worker, serialized per connection.
func (c *Coordinator) send(w *workerConn, f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

// dropWorker handles a dead connection: the lease (if any) is reclaimed
// immediately — a dead TCP peer needs no TTL grace.
func (c *Coordinator) dropWorker(w *workerConn) {
	c.mu.Lock()
	if !w.gone {
		w.gone = true
		if c.workers[w.id] == w {
			delete(c.workers, w.id)
		}
		if w.cur >= 0 {
			c.reclaimLocked(w.cur, "worker connection lost")
			w.cur = -1
		}
		c.reg.Counter("fabric.worker.disconnected").Inc()
		c.logf("fabric: worker %s disconnected", w.id)
	}
	c.mu.Unlock()
	w.conn.Close()
	c.assignPending()
}

// handleBeat refreshes the lease deadline and absorbs any newer progress
// snapshot the worker shipped.
func (c *Coordinator) handleBeat(w *workerConn, f *frame) {
	c.reg.Counter("fabric.heartbeats").Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.cur < 0 {
		return
	}
	s := &c.slots[w.cur]
	if s.state != cellLeased || s.leaseID != f.LeaseID {
		return // beat for a reclaimed lease
	}
	s.deadline = time.Now().Add(c.cfg.LeaseTTL)
	s.instret = f.Instret
	if f.Gen > s.progressGen && len(f.Progress) > 0 {
		s.progressGen = f.Gen
		s.progress = f.Progress
	}
}

// handleResult resolves a delivered cell: persist to the worker's segment,
// journal deterministic outcomes, requeue transient worker-side failures
// (up to the try bound), then hand the worker its next lease.
func (c *Coordinator) handleResult(w *workerConn, f *frame) {
	key, cell, err := expt.DecodeCellWire(f.Cell)
	if err != nil {
		// A worker sending undecodable results is broken; dropping the
		// connection reclaims its lease and lets the cell retry elsewhere.
		c.logf("fabric: worker %s sent a malformed result: %v", w.id, err)
		w.conn.Close()
		return
	}
	c.mu.Lock()
	idx, ok := c.keyIdx[key]
	if !ok || w.cur != idx {
		c.mu.Unlock()
		c.reg.Counter("fabric.result.stale").Inc()
		return
	}
	s := &c.slots[idx]
	if s.state != cellLeased || s.leaseID != f.LeaseID {
		// The lease was reclaimed (and possibly re-granted elsewhere) while
		// this worker was still computing: its late result is dropped; the
		// re-lease produces the identical deterministic fields.
		w.cur = -1
		c.mu.Unlock()
		c.reg.Counter("fabric.result.stale").Inc()
		c.assign(w)
		return
	}
	if cell.Err != nil && transientKind(cell.Err.Kind) && s.tries < c.cfg.MaxCellTries {
		// A worker-side transient (panic, timeout, interrupt during worker
		// shutdown) gets the same cross-worker retry budget a dead worker
		// would: back to pending, some worker (maybe this one) re-runs it.
		s.state = cellPending
		s.worker, s.leaseID = "", 0
		w.cur = -1
		c.mu.Unlock()
		c.reg.Counter("fabric.cell.requeued").Inc()
		c.logf("fabric: cell %s requeued after transient %s on worker %s", key, cell.Err.Kind, w.id)
		c.assign(w)
		c.assignPending()
		return
	}
	if f.Resumed {
		c.reg.Counter("fabric.lease.progress_resumed").Inc()
		c.logf("fabric: cell %s resumed mid-kernel on worker %s", key, w.id)
	}
	s.cell = cell
	seg := c.segs[w.id]
	w.cur = -1
	c.resolveLocked(idx)
	c.mu.Unlock()

	// Persistence outside the lease lock: the segment has its own mutex.
	if seg != nil {
		if err := seg.Append(key, cell); err != nil {
			c.logf("fabric: segment append for worker %s: %v", w.id, err)
		}
	}
	if c.cfg.Sweep.Journal != nil && deterministicOutcome(cell) {
		_ = c.cfg.Sweep.Journal.Record(key, cell)
	}
	c.reg.Counter("fabric.results").Inc()
	c.assign(w)
}

// transientKind reports whether a worker-reported cell error is worth
// retrying on another worker (deterministic failures reproduce anywhere).
func transientKind(k expt.CellErrorKind) bool {
	return k == expt.CellPanic || k == expt.CellTimeout ||
		k == expt.CellInterrupted || k == expt.CellLost
}

// deterministicOutcome mirrors the engine's journaling rule: only outcomes
// a rerun reproduces identically are durable.
func deterministicOutcome(c expt.Cell) bool {
	if c.Err == nil {
		return true
	}
	return c.Err.Kind == expt.CellFailed || c.Err.Kind == expt.CellBudget
}

// resolveLocked marks a slot done and completes the sweep when it was the
// last one. Caller holds c.mu. Every resolution path funnels through here
// — worker-delivered results, lost cells, interrupts — so this is also
// where the sweep's OnCell stream fires (under c.mu, per the OnCell
// contract: the callback must be fast and must not call back in).
func (c *Coordinator) resolveLocked(idx int) {
	s := &c.slots[idx]
	if s.state == cellDone {
		return
	}
	s.state = cellDone
	c.open--
	if fn := c.cfg.Sweep.OnCell; fn != nil {
		fn(s.key, s.cell)
	}
	if c.open == 0 {
		close(c.done)
	}
}

// reclaimLocked takes a leased cell back: requeued for another worker with
// its progress snapshot intact, or ERR-marked once its try budget is spent.
// Caller holds c.mu.
func (c *Coordinator) reclaimLocked(idx int, why string) {
	s := &c.slots[idx]
	if s.state != cellLeased {
		return
	}
	holder := s.worker
	s.worker, s.leaseID = "", 0
	if s.tries >= c.cfg.MaxCellTries {
		s.cell = expt.Cell{ISA: s.spec.ISA, Buildset: s.spec.Buildset,
			Backend: backendTag(s.spec.Backend), Attempts: s.tries,
			Err: &expt.CellError{ISA: s.spec.ISA, Buildset: s.spec.Buildset,
				Kind: expt.CellLost, Attempts: s.tries,
				Err: fmt.Errorf("lease lost on %d worker(s), last on %s: %s", s.tries, holder, why)}}
		c.resolveLocked(idx)
		c.reg.Counter("fabric.cell.lost").Inc()
		c.logf("fabric: cell %s lost after %d tries (%s)", s.key, s.tries, why)
		return
	}
	s.state = cellPending
	c.logf("fabric: reclaimed cell %s from worker %s (%s)", s.key, holder, why)
}

func backendTag(b expt.Backend) string {
	if b == expt.BackendAOT {
		return "aot"
	}
	return ""
}

// scanLeases expires leases whose heartbeats stopped: the hung-but-connected
// worker case (a dead connection is reclaimed immediately by its handler).
func (c *Coordinator) scanLeases() {
	period := c.cfg.LeaseTTL / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		expired := false
		c.mu.Lock()
		for i := range c.slots {
			s := &c.slots[i]
			if s.state == cellLeased && now.After(s.deadline) {
				c.reg.Counter("fabric.lease.expired").Inc()
				// The holder keeps its stale cur: a worker that stopped
				// heartbeating gets no further leases until it reports in.
				c.reclaimLocked(i, "lease TTL expired without a heartbeat")
				expired = true
			}
		}
		c.mu.Unlock()
		if expired {
			c.assignPending()
		}
	}
}

// assign grants the lowest-index pending cell to an idle worker.
func (c *Coordinator) assign(w *workerConn) {
	c.mu.Lock()
	if w.gone || w.cur >= 0 {
		c.mu.Unlock()
		return
	}
	idx := -1
	for i := range c.slots {
		if c.slots[i].state == cellPending {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return
	}
	s := &c.slots[idx]
	s.state = cellLeased
	s.tries++
	c.seq++
	s.leaseID = c.seq
	s.worker = w.id
	s.deadline = time.Now().Add(c.cfg.LeaseTTL)
	w.cur = idx
	tries := s.tries
	lease := &frame{Type: frameLease, LeaseID: s.leaseID, Key: s.key,
		Spec: &s.spec, TTLMS: c.cfg.LeaseTTL.Milliseconds(), Progress: s.progress}
	c.mu.Unlock()

	c.reg.Counter("fabric.lease.granted").Inc()
	if tries > 1 {
		c.reg.Counter("fabric.lease.takeover").Inc()
		c.logf("fabric: cell %s re-leased to worker %s (takeover, try %d)", lease.Key, w.id, tries)
	}
	if err := c.send(w, lease); err != nil {
		c.dropWorker(w)
	}
}

// assignPending hands newly pending cells to any idle workers.
func (c *Coordinator) assignPending() {
	c.mu.Lock()
	var idle []*workerConn
	for _, w := range c.workers {
		if !w.gone && w.cur < 0 {
			idle = append(idle, w)
		}
	}
	c.mu.Unlock()
	sort.Slice(idle, func(i, j int) bool { return idle[i].id < idle[j].id })
	for _, w := range idle {
		c.assign(w)
	}
}

// shutdown closes the listener, tells every worker to exit, and closes the
// segment files.
func (c *Coordinator) shutdown() {
	c.mu.Lock()
	c.closed = true
	workers := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	segs := c.segs
	c.segs = map[string]*expt.Segment{}
	c.mu.Unlock()

	c.ln.Close()
	for _, w := range workers {
		_ = c.send(w, &frame{Type: frameShutdown})
		w.conn.Close()
	}
	for _, s := range segs {
		s.Close()
	}
}

// merge assembles the final cell slice: worker-delivered cells are re-read
// from their CRC-framed segments (end-to-end validation of what the tables
// are built from), locally resolved cells (journal-restored, lost,
// interrupted) come from the slot table. A corrupt segment refuses the
// whole merge, naming the worker and offset.
func (c *Coordinator) merge() ([]expt.Cell, error) {
	c.mu.Lock()
	paths := make(map[string]string, len(c.segPath))
	for id, p := range c.segPath {
		paths[id] = p
	}
	slots := make([]cellSlot, len(c.slots))
	copy(slots, c.slots)
	c.mu.Unlock()

	fromSegs, err := MergeSegments(paths, c.fp)
	if err != nil {
		return nil, err
	}
	cells := make([]expt.Cell, len(slots))
	for i := range slots {
		s := &slots[i]
		if cell, ok := fromSegs[s.key]; ok {
			cells[i] = cell
			continue
		}
		if s.state != cellDone {
			return nil, fmt.Errorf("fabric: merge: cell %s unresolved", s.key)
		}
		cells[i] = s.cell
	}
	// One aggregation pass over the merged cells, exactly like the
	// single-host engine's post-sweep recordCells: the non-fabric counter
	// totals match a local run of the same sweep.
	expt.RecordCells(c.reg, cells)
	return cells, nil
}

// MergeSegments loads every per-worker segment (worker id → path) and
// returns the union of their cells by key. Damage semantics match resume:
// a torn final record in a segment is dropped; mid-file corruption or a
// fingerprint mismatch refuses the merge with a *SegmentError naming the
// worker (unwrapping to the offset-bearing cause). Workers are merged in
// sorted id order and the first delivery of a key wins, so the result is
// independent of map iteration.
func MergeSegments(paths map[string]string, fingerprint string) (map[string]expt.Cell, error) {
	ids := make([]string, 0, len(paths))
	for id := range paths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := map[string]expt.Cell{}
	for _, id := range ids {
		kcs, err := expt.LoadSegment(paths[id], fingerprint)
		if err != nil {
			return nil, &SegmentError{Worker: id, Path: paths[id], Err: err}
		}
		for _, kc := range kcs {
			if _, dup := out[kc.Key]; !dup {
				out[kc.Key] = kc.Cell
			}
		}
	}
	return out, nil
}

// Snapshot exports the fleet and lease state for the run manifest. Taken
// after Wait returns, every lease reads "done" (or the terminal state of a
// lost/interrupted cell) — the snapshot documents how the sweep resolved,
// not a mid-flight racing view.
func (c *Coordinator) Snapshot() *obs.FabricSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := &obs.FabricSnapshot{
		Fingerprint: c.fp,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		MaxTries:    c.cfg.MaxCellTries,
	}
	for id := range c.seen {
		fs.Workers = append(fs.Workers, id)
	}
	sort.Strings(fs.Workers)
	for i := range c.slots {
		s := &c.slots[i]
		state := "pending"
		switch s.state {
		case cellLeased:
			state = "leased"
		case cellDone:
			state = "done"
		}
		fs.Leases = append(fs.Leases, obs.LeaseOutcome{
			Key: s.key, State: state, Tries: s.tries, Worker: s.worker,
		})
	}
	return fs
}

// sanitize maps a worker id to a safe file-name fragment.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, id)
}
