package fabric

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/obs"
)

// Config configures a fabric coordinator for a Table II sweep.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7707", or ":0" to let
	// the kernel pick — see Coordinator.Addr).
	Addr string
	// Sweep is the sweep configuration: it determines the cell list, the
	// membership fingerprint, and (via Journal/Obs/Interrupt) the run's
	// durability, instrumentation, and shutdown wiring. Sweep.Workers is
	// ignored — the fabric's parallelism is its worker fleet.
	Sweep expt.Config
	// LeaseTTL is how long a lease stays valid without a heartbeat before
	// the coordinator reclaims it; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxCellTries bounds how many lease grants one cell gets across the
	// fleet before it is ERR-marked (kind "lost") instead of stalling the
	// sweep; 0 means DefaultMaxCellTries.
	MaxCellTries int
	// SegmentDir is where per-worker result segments are written (and
	// re-read at merge); empty uses a per-run temporary directory.
	SegmentDir string
	// RunID stamps segment lineage headers; empty derives one from the pid.
	RunID string
	// Log, when non-nil, receives one-line progress events (worker joins,
	// takeovers, refusals) for the operator console.
	Log func(format string, args ...any)
}

// DefaultLeaseTTL is the lease validity window without a heartbeat.
const DefaultLeaseTTL = 10 * time.Second

// DefaultMaxCellTries bounds lease grants per cell across the fleet.
const DefaultMaxCellTries = 3

// helloTimeout bounds how long an accepted connection may dawdle before its
// hello frame; anything slower is not a fabric worker.
const helloTimeout = 10 * time.Second

// Cell lease states.
const (
	cellPending = iota // unleased, waiting for a worker
	cellLeased         // leased to a live worker
	cellDone           // resolved (result delivered, restored, or ERR-marked)
)

// workUnit is one leasable unit of work: its stable key, plus (for kinds
// whose work is not fully derivable from the key) the spec shipped in
// lease frames.
type workUnit struct {
	key  string
	spec *expt.JobSpec
}

// keyedVal pairs a decoded result value with its unit key.
type keyedVal struct {
	key string
	val any
}

// workload abstracts what a coordinator leases — Table II sweep cells or
// fault-campaign cells — so one lease core provides the TTL/heartbeat/
// takeover/bounded-retry/deterministic-merge guarantees to every kind.
// Values flowing through the core are the workload's own decoded result
// type (expt.Cell, faultinj.Result); the core never inspects them except
// through these hooks.
type workload struct {
	// kind is the hello-frame work kind; a worker of a different kind is
	// refused at hello, exactly like a fingerprint mismatch.
	kind string
	// fp is the membership fingerprint workers must present.
	fp string
	// units is the deterministic unit list; the merged output follows it.
	units []workUnit
	// reg receives the fabric counters (never nil; obs is nil-safe but the
	// constructors pass a registry for the snapshot paths).
	reg *obs.Registry
	// interrupt, when non-nil, winds the run down when closed.
	interrupt <-chan struct{}

	// lookup consults the run journal for an already-completed unit.
	lookup func(key string) (any, bool)
	// decode validates and decodes one result payload off the wire.
	decode func(key string, payload []byte) (any, error)
	// transient reports whether a delivered result is a worker-side
	// transient (requeued under the retry bound) rather than a
	// deterministic outcome.
	transient func(val any) bool
	// errLabel names a result's error kind for operator logs ("" if ok).
	errLabel func(val any) string
	// journalable mirrors the engine's journaling rule: only outcomes a
	// rerun reproduces identically are durable.
	journalable func(val any) bool
	// journal records a journalable result durably; nil when the run has no
	// journal.
	journal func(key string, val any)
	// persist appends a delivered result to a worker's segment file.
	persist func(seg *expt.Segment, key string, val any) error
	// loadSeg re-reads one segment file at merge (fingerprint closed over).
	loadSeg func(path string) ([]keyedVal, error)
	// lost builds the terminal value for a unit whose cross-worker retry
	// budget is spent; interrupted the terminal value for a wind-down.
	lost        func(u workUnit, tries int, holder, why string) any
	interrupted func(u workUnit, tries int) any
	// resolve, when non-nil, streams every resolution (delivered, restored,
	// lost, interrupted) in completion order — the OnCell hook.
	resolve func(key string, val any)
}

// coreConfig is the kind-independent slice of a coordinator configuration.
type coreConfig struct {
	addr     string
	leaseTTL time.Duration
	maxTries int
	segDir   string
	runID    string
	log      func(format string, args ...any)
}

// cellSlot is the coordinator's state for one unit.
type cellSlot struct {
	unit  workUnit
	state int
	// tries counts lease grants; at maxTries the next reclaim ERR-marks
	// the cell instead of requeueing it.
	tries    int
	leaseID  uint64
	worker   string
	deadline time.Time
	// progress is the latest heartbeat-shipped snapshot (and its worker-side
	// generation); a re-lease ships it so the takeover resumes mid-cell.
	progress    []byte
	progressGen uint64
	instret     uint64
	val         any
}

// workerConn is one connected worker.
type workerConn struct {
	id   string
	conn net.Conn
	// wmu serializes frame writes (lease grants race with shutdown).
	wmu sync.Mutex
	// cur is the index of the cell currently leased to this worker, -1 when
	// idle. A TTL-expired worker keeps its stale cur until it reports in
	// again: a worker that stopped heartbeating gets no further leases.
	cur  int
	gone bool
}

// coordCore runs one fabric job of any kind: it owns the deterministic
// unit list, leases units to joined workers, reclaims and re-leases on
// missed heartbeats or dead connections, and merges the per-worker result
// segments into the final value slice.
type coordCore struct {
	cc coreConfig
	wl *workload
	ln net.Listener

	mu      sync.Mutex
	slots   []cellSlot
	keyIdx  map[string]int
	open    int // units not yet done
	seq     uint64
	workers map[string]*workerConn
	seen    map[string]bool // worker ids that ever joined
	segs    map[string]*expt.Segment
	segPath map[string]string
	done    chan struct{}
	closed  bool

	segDir string
}

// SegmentError wraps a per-worker segment failure during merge, naming the
// worker whose file refused it; it unwraps to the underlying typed error
// (*expt.CorruptJournalError with the damage offset, or
// *expt.FingerprintMismatchError).
type SegmentError struct {
	Worker string
	Path   string
	Err    error
}

func (e *SegmentError) Error() string {
	return fmt.Sprintf("fabric: merge refused: worker %s segment %s: %v", e.Worker, e.Path, e.Err)
}

func (e *SegmentError) Unwrap() error { return e.Err }

// Coordinator runs one fabric sweep (see coordCore for the machinery; the
// campaign analogue is CampaignCoordinator).
type Coordinator struct {
	core *coordCore
	cfg  Config
}

// Serve runs a fabric sweep to completion: listen, lease, reclaim, merge.
// It returns the merged cells in deterministic TableIIJobSpecs order —
// byte-identical (in every deterministic field) to a single-host sweep of
// the same configuration, for any worker count, placement, or mid-sweep
// worker death. It blocks until every cell is resolved (or the sweep is
// interrupted), then shuts the fleet down.
func Serve(cfg Config) ([]expt.Cell, error) {
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	return c.Wait()
}

// NewCoordinator starts the coordinator (listener and lease scanner) and
// returns immediately; Wait blocks for the merged result. Split from Serve
// so tests and embedders can learn the listen address before joining
// workers.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	sw := cfg.Sweep
	fp := Fingerprint(sw)
	wl := &workload{
		kind:      "sweep",
		fp:        fp,
		reg:       sw.Obs,
		interrupt: sw.Interrupt,
		decode: func(key string, payload []byte) (any, error) {
			k, cell, err := expt.DecodeCellWire(payload)
			if err != nil {
				return nil, err
			}
			if k != key {
				return nil, fmt.Errorf("result payload keyed %q under lease %q", k, key)
			}
			return cell, nil
		},
		transient: func(v any) bool {
			c := v.(expt.Cell)
			return c.Err != nil && transientKind(c.Err.Kind)
		},
		errLabel: func(v any) string {
			c := v.(expt.Cell)
			if c.Err == nil {
				return ""
			}
			return c.Err.Kind.String()
		},
		journalable: func(v any) bool { return deterministicOutcome(v.(expt.Cell)) },
		persist: func(seg *expt.Segment, key string, v any) error {
			return seg.Append(key, v.(expt.Cell))
		},
		loadSeg: func(path string) ([]keyedVal, error) {
			kcs, err := expt.LoadSegment(path, fp)
			if err != nil {
				return nil, err
			}
			out := make([]keyedVal, len(kcs))
			for i, kc := range kcs {
				out[i] = keyedVal{key: kc.Key, val: kc.Cell}
			}
			return out, nil
		},
		lost: func(u workUnit, tries int, holder, why string) any {
			return expt.Cell{ISA: u.spec.ISA, Buildset: u.spec.Buildset,
				Backend: backendTag(u.spec.Backend), Attempts: tries,
				Err: &expt.CellError{ISA: u.spec.ISA, Buildset: u.spec.Buildset,
					Kind: expt.CellLost, Attempts: tries,
					Err: fmt.Errorf("lease lost on %d worker(s), last on %s: %s", tries, holder, why)}}
		},
		interrupted: func(u workUnit, tries int) any {
			return expt.Cell{ISA: u.spec.ISA, Buildset: u.spec.Buildset,
				Backend: backendTag(u.spec.Backend),
				Err: &expt.CellError{ISA: u.spec.ISA, Buildset: u.spec.Buildset,
					Kind: expt.CellInterrupted, Err: errSweepInterrupted,
					Attempts: tries}}
		},
	}
	specs := expt.TableIIJobSpecs(sw)
	wl.units = make([]workUnit, len(specs))
	for i := range specs {
		sp := specs[i]
		wl.units[i] = workUnit{key: sp.Key(), spec: &sp}
	}
	if sw.Journal != nil {
		j := sw.Journal
		wl.lookup = func(key string) (any, bool) {
			cell, ok := j.Lookup(key)
			if !ok {
				return nil, false
			}
			return cell, true
		}
		wl.journal = func(key string, v any) { _ = j.Record(key, v.(expt.Cell)) }
	}
	if fn := sw.OnCell; fn != nil {
		wl.resolve = func(key string, v any) { fn(key, v.(expt.Cell)) }
	}
	core, err := newCore(coreConfig{
		addr: cfg.Addr, leaseTTL: cfg.LeaseTTL, maxTries: cfg.MaxCellTries,
		segDir: cfg.SegmentDir, runID: cfg.RunID, log: cfg.Log,
	}, wl)
	if err != nil {
		return nil, err
	}
	return &Coordinator{core: core, cfg: cfg}, nil
}

// errSweepInterrupted matches the single-host engine's wind-down error text.
var errSweepInterrupted = fmt.Errorf("sweep interrupted")

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.core.addr() }

// Wait blocks until the sweep resolves (or is interrupted), shuts the fleet
// down, and merges the per-worker segments into the final cell slice.
func (c *Coordinator) Wait() ([]expt.Cell, error) {
	vals, err := c.core.wait()
	if err != nil {
		return nil, err
	}
	cells := make([]expt.Cell, len(vals))
	for i, v := range vals {
		cells[i] = v.(expt.Cell)
	}
	// One aggregation pass over the merged cells, exactly like the
	// single-host engine's post-sweep recordCells: the non-fabric counter
	// totals match a local run of the same sweep.
	expt.RecordCells(c.core.wl.reg, cells)
	return cells, nil
}

// Snapshot exports the fleet and lease state for the run manifest.
func (c *Coordinator) Snapshot() *obs.FabricSnapshot { return c.core.snapshot() }

// newCore builds and starts the kind-independent lease core.
func newCore(cc coreConfig, wl *workload) (*coordCore, error) {
	if cc.leaseTTL <= 0 {
		cc.leaseTTL = DefaultLeaseTTL
	}
	if cc.maxTries <= 0 {
		cc.maxTries = DefaultMaxCellTries
	}
	if cc.runID == "" {
		cc.runID = fmt.Sprintf("fabric-%d", os.Getpid())
	}
	c := &coordCore{
		cc:      cc,
		wl:      wl,
		keyIdx:  map[string]int{},
		workers: map[string]*workerConn{},
		seen:    map[string]bool{},
		segs:    map[string]*expt.Segment{},
		segPath: map[string]string{},
		done:    make(chan struct{}),
	}
	c.slots = make([]cellSlot, len(wl.units))
	for i, u := range wl.units {
		c.slots[i] = cellSlot{unit: u, state: cellPending}
		c.keyIdx[u.key] = i
		c.open++
	}
	// Resume: units the journal already holds are resolved up front, never
	// leased — the same reload-don't-recompute semantics as runCells.
	if wl.lookup != nil {
		for i := range c.slots {
			if v, ok := wl.lookup(c.slots[i].unit.key); ok {
				c.slots[i].state = cellDone
				c.slots[i].val = v
				c.open--
				// Restored cells fire the resolve stream like computed ones: a
				// streaming consumer of a resumed run sees every cell land.
				if wl.resolve != nil {
					wl.resolve(c.slots[i].unit.key, v)
				}
			}
		}
	}
	c.segDir = cc.segDir
	if c.segDir == "" {
		d, err := os.MkdirTemp("", "ssbench-fabric-")
		if err != nil {
			return nil, err
		}
		c.segDir = d
	}
	ln, err := net.Listen("tcp", cc.addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	if c.open == 0 {
		close(c.done)
	}
	go c.acceptLoop()
	go c.scanLeases()
	return c, nil
}

// addr returns the core's bound listen address.
func (c *coordCore) addr() string { return c.ln.Addr().String() }

func (c *coordCore) logf(format string, args ...any) {
	if c.cc.log != nil {
		c.cc.log(format, args...)
	}
}

// wait blocks until the run resolves (or is interrupted), shuts the fleet
// down, and merges the per-worker segments into the unit-ordered values.
func (c *coordCore) wait() ([]any, error) {
	select {
	case <-c.done:
	case <-interruptCh(c.wl.interrupt):
		c.interruptAll()
		<-c.done
	}
	c.shutdown()
	return c.merge()
}

// interruptCh adapts a possibly-nil interrupt channel for select (a nil
// channel blocks forever, which is exactly right).
func interruptCh(ch <-chan struct{}) <-chan struct{} { return ch }

// interruptAll resolves every unfinished unit as interrupted, mirroring the
// single-host engine's wind-down: not journaled, recomputed on resume.
func (c *coordCore) interruptAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		s := &c.slots[i]
		if s.state == cellDone {
			continue
		}
		s.val = c.wl.interrupted(s.unit, s.tries)
		c.resolveLocked(i)
	}
}

// acceptLoop admits workers until the listener closes.
func (c *coordCore) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.handleConn(conn)
	}
}

// handleConn runs one worker connection: membership guard, registration,
// then the beat/result read loop. Any read error (including the peer dying)
// immediately reclaims the worker's lease.
func (c *coordCore) handleConn(conn net.Conn) {
	f, err := readFrameTimeout(conn, helloTimeout)
	if err != nil || f.Type != frameHello {
		conn.Close()
		return
	}
	refuse := func(reason string) {
		_ = writeFrame(conn, &frame{Type: frameRefuse, Reason: reason})
		conn.Close()
	}
	kind := f.Kind
	if kind == "" {
		kind = "sweep" // pre-campaign workers never sent a kind
	}
	switch {
	case f.Proto != ProtoVersion:
		refuse(fmt.Sprintf("protocol version %d, coordinator speaks %d", f.Proto, ProtoVersion))
		return
	case f.Worker == "":
		refuse("empty worker id")
		return
	case kind != c.wl.kind:
		c.wl.reg.Counter("fabric.worker.refused_kind").Inc()
		c.logf("fabric: refused worker %s: speaks %q work, this run leases %q", f.Worker, kind, c.wl.kind)
		refuse(fmt.Sprintf("worker runs %q work, this coordinator leases %q cells", kind, c.wl.kind))
		return
	case f.Fingerprint != c.wl.fp:
		// The membership guard: a worker started with different flags
		// (or left over from an old run) would compute different cells.
		c.wl.reg.Counter("fabric.worker.refused_stale").Inc()
		c.logf("fabric: refused stale worker %s (fingerprint %.12s…, run is %.12s…)",
			f.Worker, f.Fingerprint, c.wl.fp)
		refuse(fmt.Sprintf("config fingerprint %.12s… does not match this run's %.12s…; stale worker?",
			f.Fingerprint, c.wl.fp))
		return
	}

	w := &workerConn{id: f.Worker, conn: conn, cur: -1}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		refuse("run already complete")
		return
	}
	if old := c.workers[w.id]; old != nil && !old.gone {
		// A reconnect raced ahead of the dead connection's read error: the
		// new connection supersedes; closing the old one unblocks its
		// handler, which reclaims any lease it held.
		old.gone = true
		old.conn.Close()
		if old.cur >= 0 {
			c.reclaimLocked(old.cur, "superseded connection")
		}
	}
	rejoin := c.seen[w.id]
	c.seen[w.id] = true
	c.workers[w.id] = w
	if c.segs[w.id] == nil {
		path := filepath.Join(c.segDir, "worker-"+sanitize(w.id)+".sseg")
		seg, err := expt.CreateSegment(path, w.id, c.wl.fp)
		if err != nil {
			c.mu.Unlock()
			refuse("coordinator cannot persist results: " + err.Error())
			return
		}
		c.segs[w.id] = seg
		c.segPath[w.id] = path
	}
	c.mu.Unlock()

	if rejoin {
		c.wl.reg.Counter("fabric.worker.rejoined").Inc()
	} else {
		c.wl.reg.Counter("fabric.worker.joined").Inc()
	}
	c.logf("fabric: worker %s joined", w.id)
	if err := c.send(w, &frame{Type: frameWelcome, RunID: c.cc.runID}); err != nil {
		c.dropWorker(w)
		return
	}
	c.assign(w)

	for {
		f, err := readFrame(conn)
		if err != nil {
			c.dropWorker(w)
			return
		}
		switch f.Type {
		case frameBeat:
			c.handleBeat(w, f)
		case frameResult:
			c.handleResult(w, f)
		default:
			// Unknown frame types are ignored, not fatal: a newer worker may
			// speak extensions this coordinator predates.
		}
	}
}

// send writes one frame to a worker, serialized per connection.
func (c *coordCore) send(w *workerConn, f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

// dropWorker handles a dead connection: the lease (if any) is reclaimed
// immediately — a dead TCP peer needs no TTL grace.
func (c *coordCore) dropWorker(w *workerConn) {
	c.mu.Lock()
	if !w.gone {
		w.gone = true
		if c.workers[w.id] == w {
			delete(c.workers, w.id)
		}
		if w.cur >= 0 {
			c.reclaimLocked(w.cur, "worker connection lost")
			w.cur = -1
		}
		c.wl.reg.Counter("fabric.worker.disconnected").Inc()
		c.logf("fabric: worker %s disconnected", w.id)
	}
	c.mu.Unlock()
	w.conn.Close()
	c.assignPending()
}

// handleBeat refreshes the lease deadline and absorbs any newer progress
// snapshot the worker shipped.
func (c *coordCore) handleBeat(w *workerConn, f *frame) {
	c.wl.reg.Counter("fabric.heartbeats").Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.cur < 0 {
		return
	}
	s := &c.slots[w.cur]
	if s.state != cellLeased || s.leaseID != f.LeaseID {
		return // beat for a reclaimed lease
	}
	s.deadline = time.Now().Add(c.cc.leaseTTL)
	s.instret = f.Instret
	if f.Gen > s.progressGen && len(f.Progress) > 0 {
		s.progressGen = f.Gen
		s.progress = f.Progress
	}
}

// handleResult resolves a delivered cell: persist to the worker's segment,
// journal deterministic outcomes, requeue transient worker-side failures
// (up to the try bound), then hand the worker its next lease.
func (c *coordCore) handleResult(w *workerConn, f *frame) {
	val, err := c.wl.decode(f.Key, f.Cell)
	if err != nil {
		// A worker sending undecodable results is broken; dropping the
		// connection reclaims its lease and lets the cell retry elsewhere.
		c.logf("fabric: worker %s sent a malformed result: %v", w.id, err)
		w.conn.Close()
		return
	}
	key := f.Key
	c.mu.Lock()
	idx, ok := c.keyIdx[key]
	if !ok || w.cur != idx {
		c.mu.Unlock()
		c.wl.reg.Counter("fabric.result.stale").Inc()
		return
	}
	s := &c.slots[idx]
	if s.state != cellLeased || s.leaseID != f.LeaseID {
		// The lease was reclaimed (and possibly re-granted elsewhere) while
		// this worker was still computing: its late result is dropped; the
		// re-lease produces the identical deterministic fields.
		w.cur = -1
		c.mu.Unlock()
		c.wl.reg.Counter("fabric.result.stale").Inc()
		c.assign(w)
		return
	}
	if c.wl.transient(val) && s.tries < c.cc.maxTries {
		// A worker-side transient (panic, timeout, interrupt during worker
		// shutdown) gets the same cross-worker retry budget a dead worker
		// would: back to pending, some worker (maybe this one) re-runs it.
		s.state = cellPending
		s.worker, s.leaseID = "", 0
		w.cur = -1
		c.mu.Unlock()
		c.wl.reg.Counter("fabric.cell.requeued").Inc()
		c.logf("fabric: cell %s requeued after transient %s on worker %s", key, c.wl.errLabel(val), w.id)
		c.assign(w)
		c.assignPending()
		return
	}
	if f.Resumed {
		c.wl.reg.Counter("fabric.lease.progress_resumed").Inc()
		c.logf("fabric: cell %s resumed mid-kernel on worker %s", key, w.id)
	}
	s.val = val
	seg := c.segs[w.id]
	w.cur = -1
	c.resolveLocked(idx)
	c.mu.Unlock()

	// Persistence outside the lease lock: the segment has its own mutex.
	if seg != nil {
		if err := c.wl.persist(seg, key, val); err != nil {
			c.logf("fabric: segment append for worker %s: %v", w.id, err)
		}
	}
	if c.wl.journal != nil && c.wl.journalable(val) {
		c.wl.journal(key, val)
	}
	c.wl.reg.Counter("fabric.results").Inc()
	c.assign(w)
}

// transientKind reports whether a worker-reported cell error is worth
// retrying on another worker (deterministic failures reproduce anywhere).
func transientKind(k expt.CellErrorKind) bool {
	return k == expt.CellPanic || k == expt.CellTimeout ||
		k == expt.CellInterrupted || k == expt.CellLost
}

// deterministicOutcome mirrors the engine's journaling rule: only outcomes
// a rerun reproduces identically are durable.
func deterministicOutcome(c expt.Cell) bool {
	if c.Err == nil {
		return true
	}
	return c.Err.Kind == expt.CellFailed || c.Err.Kind == expt.CellBudget
}

// resolveLocked marks a slot done and completes the run when it was the
// last one. Caller holds c.mu. Every resolution path funnels through here
// — worker-delivered results, lost cells, interrupts — so this is also
// where the resolve stream fires (under c.mu, per the OnCell contract: the
// callback must be fast and must not call back in).
func (c *coordCore) resolveLocked(idx int) {
	s := &c.slots[idx]
	if s.state == cellDone {
		return
	}
	s.state = cellDone
	c.open--
	if c.wl.resolve != nil {
		c.wl.resolve(s.unit.key, s.val)
	}
	if c.open == 0 {
		close(c.done)
	}
}

// reclaimLocked takes a leased cell back: requeued for another worker with
// its progress snapshot intact, or ERR-marked once its try budget is spent.
// Caller holds c.mu.
func (c *coordCore) reclaimLocked(idx int, why string) {
	s := &c.slots[idx]
	if s.state != cellLeased {
		return
	}
	holder := s.worker
	s.worker, s.leaseID = "", 0
	if s.tries >= c.cc.maxTries {
		s.val = c.wl.lost(s.unit, s.tries, holder, why)
		c.resolveLocked(idx)
		c.wl.reg.Counter("fabric.cell.lost").Inc()
		c.logf("fabric: cell %s lost after %d tries (%s)", s.unit.key, s.tries, why)
		return
	}
	s.state = cellPending
	c.logf("fabric: reclaimed cell %s from worker %s (%s)", s.unit.key, holder, why)
}

func backendTag(b expt.Backend) string {
	if b == expt.BackendAOT {
		return "aot"
	}
	return ""
}

// scanLeases expires leases whose heartbeats stopped: the hung-but-connected
// worker case (a dead connection is reclaimed immediately by its handler).
func (c *coordCore) scanLeases() {
	period := c.cc.leaseTTL / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		expired := false
		c.mu.Lock()
		for i := range c.slots {
			s := &c.slots[i]
			if s.state == cellLeased && now.After(s.deadline) {
				c.wl.reg.Counter("fabric.lease.expired").Inc()
				// The holder keeps its stale cur: a worker that stopped
				// heartbeating gets no further leases until it reports in.
				c.reclaimLocked(i, "lease TTL expired without a heartbeat")
				expired = true
			}
		}
		c.mu.Unlock()
		if expired {
			c.assignPending()
		}
	}
}

// assign grants the lowest-index pending cell to an idle worker.
func (c *coordCore) assign(w *workerConn) {
	c.mu.Lock()
	if w.gone || w.cur >= 0 {
		c.mu.Unlock()
		return
	}
	idx := -1
	for i := range c.slots {
		if c.slots[i].state == cellPending {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return
	}
	s := &c.slots[idx]
	s.state = cellLeased
	s.tries++
	c.seq++
	s.leaseID = c.seq
	s.worker = w.id
	s.deadline = time.Now().Add(c.cc.leaseTTL)
	w.cur = idx
	tries := s.tries
	lease := &frame{Type: frameLease, LeaseID: s.leaseID, Key: s.unit.key,
		Spec: s.unit.spec, TTLMS: c.cc.leaseTTL.Milliseconds(), Progress: s.progress}
	c.mu.Unlock()

	c.wl.reg.Counter("fabric.lease.granted").Inc()
	if tries > 1 {
		c.wl.reg.Counter("fabric.lease.takeover").Inc()
		c.logf("fabric: cell %s re-leased to worker %s (takeover, try %d)", lease.Key, w.id, tries)
	}
	if err := c.send(w, lease); err != nil {
		c.dropWorker(w)
	}
}

// assignPending hands newly pending cells to any idle workers.
func (c *coordCore) assignPending() {
	c.mu.Lock()
	var idle []*workerConn
	for _, w := range c.workers {
		if !w.gone && w.cur < 0 {
			idle = append(idle, w)
		}
	}
	c.mu.Unlock()
	sort.Slice(idle, func(i, j int) bool { return idle[i].id < idle[j].id })
	for _, w := range idle {
		c.assign(w)
	}
}

// shutdown closes the listener, tells every worker to exit, and closes the
// segment files.
func (c *coordCore) shutdown() {
	c.mu.Lock()
	c.closed = true
	workers := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	segs := c.segs
	c.segs = map[string]*expt.Segment{}
	c.mu.Unlock()

	c.ln.Close()
	for _, w := range workers {
		_ = c.send(w, &frame{Type: frameShutdown})
		w.conn.Close()
	}
	for _, s := range segs {
		s.Close()
	}
}

// merge assembles the final unit-ordered values: worker-delivered results
// are re-read from their CRC-framed segments (end-to-end validation of what
// the output is built from), locally resolved units (journal-restored,
// lost, interrupted) come from the slot table. A corrupt segment refuses
// the whole merge, naming the worker and offset. Workers merge in sorted id
// order with first delivery winning, so the result is independent of map
// iteration.
func (c *coordCore) merge() ([]any, error) {
	c.mu.Lock()
	paths := make(map[string]string, len(c.segPath))
	for id, p := range c.segPath {
		paths[id] = p
	}
	slots := make([]cellSlot, len(c.slots))
	copy(slots, c.slots)
	c.mu.Unlock()

	ids := make([]string, 0, len(paths))
	for id := range paths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fromSegs := map[string]any{}
	for _, id := range ids {
		kvs, err := c.wl.loadSeg(paths[id])
		if err != nil {
			return nil, &SegmentError{Worker: id, Path: paths[id], Err: err}
		}
		for _, kv := range kvs {
			if _, dup := fromSegs[kv.key]; !dup {
				fromSegs[kv.key] = kv.val
			}
		}
	}
	vals := make([]any, len(slots))
	for i := range slots {
		s := &slots[i]
		if v, ok := fromSegs[s.unit.key]; ok {
			vals[i] = v
			continue
		}
		if s.state != cellDone {
			return nil, fmt.Errorf("fabric: merge: cell %s unresolved", s.unit.key)
		}
		vals[i] = s.val
	}
	return vals, nil
}

// MergeSegments loads every per-worker sweep segment (worker id → path) and
// returns the union of their cells by key. Damage semantics match resume:
// a torn final record in a segment is dropped; mid-file corruption or a
// fingerprint mismatch refuses the merge with a *SegmentError naming the
// worker (unwrapping to the offset-bearing cause). Workers are merged in
// sorted id order and the first delivery of a key wins, so the result is
// independent of map iteration.
func MergeSegments(paths map[string]string, fingerprint string) (map[string]expt.Cell, error) {
	ids := make([]string, 0, len(paths))
	for id := range paths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := map[string]expt.Cell{}
	for _, id := range ids {
		kcs, err := expt.LoadSegment(paths[id], fingerprint)
		if err != nil {
			return nil, &SegmentError{Worker: id, Path: paths[id], Err: err}
		}
		for _, kc := range kcs {
			if _, dup := out[kc.Key]; !dup {
				out[kc.Key] = kc.Cell
			}
		}
	}
	return out, nil
}

// snapshot exports the fleet and lease state for the run manifest. Taken
// after wait returns, every lease reads "done" (or the terminal state of a
// lost/interrupted cell) — the snapshot documents how the run resolved,
// not a mid-flight racing view.
func (c *coordCore) snapshot() *obs.FabricSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := &obs.FabricSnapshot{
		Fingerprint: c.wl.fp,
		LeaseTTLMS:  c.cc.leaseTTL.Milliseconds(),
		MaxTries:    c.cc.maxTries,
	}
	for id := range c.seen {
		fs.Workers = append(fs.Workers, id)
	}
	sort.Strings(fs.Workers)
	for i := range c.slots {
		s := &c.slots[i]
		state := "pending"
		switch s.state {
		case cellLeased:
			state = "leased"
		case cellDone:
			state = "done"
		}
		fs.Leases = append(fs.Leases, obs.LeaseOutcome{
			Key: s.unit.key, State: state, Tries: s.tries, Worker: s.worker,
		})
	}
	return fs
}

// sanitize maps a worker id to a safe file-name fragment.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, id)
}
