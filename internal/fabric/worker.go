package fabric

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
)

// WorkerConfig configures a fabric sweep worker.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// ID names this worker in leases, segments, and counters; empty derives
	// one from the hostname and pid.
	ID string
	// Sweep is the worker's local sweep configuration. Its fingerprint must
	// match the coordinator's — the worker computes it from its own flags
	// and presents it at hello, so a stale worker is refused before it can
	// contribute a single cell. Journal is ignored (durability is the
	// coordinator's job); Obs receives worker-local counters.
	Sweep expt.Config
	// ReconnectBase is the base of the exponential seeded-jitter reconnect
	// backoff; 0 means DefaultReconnectBase.
	ReconnectBase time.Duration
	// MaxReconnects bounds consecutive failed reconnect attempts before the
	// worker gives up; 0 means DefaultMaxReconnects.
	MaxReconnects int
	// Log, when non-nil, receives one-line progress events.
	Log func(format string, args ...any)

	// testOnProgress, when non-nil, observes every progress snapshot the
	// measurement commits (before it is heartbeat-shipped). Tests hook death
	// injection through it.
	testOnProgress func(key string, gen uint64)
	// testKill, when non-nil, simulates a worker crash when closed: the
	// connection drops mid-lease and RunWorker returns ErrWorkerKilled
	// without delivering the in-flight result.
	testKill <-chan struct{}
	// testNoBeat suppresses heartbeats entirely: the worker takes leases and
	// computes but never extends them — the hung-but-connected worker the
	// lease TTL exists for.
	testNoBeat bool
	// testBeatOnProgress ships a beat synchronously at every progress
	// commit (in addition to the timer-driven loop), so a test that kills
	// the worker right after a commit knows the coordinator holds that
	// snapshot.
	testBeatOnProgress bool
}

// DefaultReconnectBase is the reconnect backoff base delay.
const DefaultReconnectBase = 100 * time.Millisecond

// DefaultMaxReconnects bounds consecutive failed reconnect attempts.
const DefaultMaxReconnects = 8

// ErrWorkerKilled reports a test-injected worker crash.
var ErrWorkerKilled = errors.New("fabric: worker killed (test injection)")

// workerCore runs the kind-independent half of a fabric worker: the
// reconnect loop, hello/welcome handshake, lease serving, and heartbeat
// shipping. What a lease *means* is the measure closure's business.
type workerCore struct {
	addr, id string
	// kind and fp are presented at hello; the coordinator's membership
	// guard refuses a worker of the wrong kind or fingerprint.
	kind, fp      string
	reg           *obs.Registry
	reconnectBase time.Duration
	maxReconnects int
	retrySeed     uint64
	log           func(format string, args ...any)
	// measure computes one leased unit, committing progress snapshots
	// through sink, and returns the encoded result payload. An error is a
	// protocol-level failure (drops the session); unit-level failures
	// belong inside the payload.
	measure func(key string, spec *expt.JobSpec, resume []byte, sink func([]byte, uint64)) (payload []byte, resumed bool, err error)

	testOnProgress     func(key string, gen uint64)
	testKill           <-chan struct{}
	testNoBeat         bool
	testBeatOnProgress bool

	// wmu serializes connection writes (heartbeats race with results).
	wmu sync.Mutex
}

// RunWorker joins the fabric at cfg.Addr and serves sweep-cell leases until
// the coordinator sends shutdown (returns nil), the coordinator refuses the
// worker (*RefusedError — terminal, the worker belongs to a different run),
// or the reconnect budget is spent. Connection loss mid-sweep is survived:
// the worker reconnects with exponential seeded-jitter backoff and resumes
// serving leases under the same id.
func RunWorker(cfg WorkerConfig) error {
	// mixes caches built kernel mixes per ISA; a worker measures one cell
	// at a time, so access is single-goroutine.
	mixes := map[string]*expt.Programs{}
	mix := func(name string) (*expt.Programs, error) {
		if p := mixes[name]; p != nil {
			return p, nil
		}
		i, err := isa.Load(name)
		if err != nil {
			return nil, err
		}
		p, err := expt.BuildMix(i, cfg.Sweep.Scale)
		if err != nil {
			return nil, err
		}
		mixes[name] = p
		return p, nil
	}
	core := &workerCore{
		addr: cfg.Addr, id: cfg.ID,
		kind: "sweep", fp: Fingerprint(cfg.Sweep),
		reg:           cfg.Sweep.Obs,
		reconnectBase: cfg.ReconnectBase, maxReconnects: cfg.MaxReconnects,
		retrySeed: cfg.Sweep.RetrySeed, log: cfg.Log,
		testOnProgress: cfg.testOnProgress, testKill: cfg.testKill,
		testNoBeat: cfg.testNoBeat, testBeatOnProgress: cfg.testBeatOnProgress,
	}
	core.measure = func(key string, spec *expt.JobSpec, resume []byte, sink func([]byte, uint64)) ([]byte, bool, error) {
		if spec == nil {
			return nil, false, perr("sweep lease %s carries no job spec", key)
		}
		cell, resumed := measureSweepCell(cfg, mix, *spec, resume, sink)
		payload, err := expt.EncodeCellWire(key, cell)
		if err != nil {
			return nil, false, fmt.Errorf("fabric: encoding result for %s: %w", key, err)
		}
		return payload, resumed, nil
	}
	return core.run()
}

// measureSweepCell runs one cell through the shared measurement engine.
// Mix-building failures become failed cells (deterministic: the coordinator
// will not retry them elsewhere, where they would fail identically).
func measureSweepCell(cfg WorkerConfig, mix func(string) (*expt.Programs, error),
	spec expt.JobSpec, resume []byte, sink expt.ProgressSink) (expt.Cell, bool) {
	progs, err := mix(spec.ISA)
	if err != nil {
		return expt.Cell{ISA: spec.ISA, Buildset: spec.Buildset,
			Backend: backendTag(spec.Backend), Attempts: 1,
			Err: &expt.CellError{ISA: spec.ISA, Buildset: spec.Buildset,
				Kind: expt.CellFailed, Err: err, Attempts: 1}}, false
	}
	sw := cfg.Sweep
	sw.Journal = nil // durability is the coordinator's job
	return expt.MeasureSpec(progs, spec, sw, resume, sink)
}

// run is the reconnect loop shared by every worker kind.
func (w *workerCore) run() error {
	if w.id == "" {
		host, _ := os.Hostname()
		w.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if w.reconnectBase <= 0 {
		w.reconnectBase = DefaultReconnectBase
	}
	if w.maxReconnects <= 0 {
		w.maxReconnects = DefaultMaxReconnects
	}

	attempt := 0
	var lastErr error
	for {
		conn, err := net.Dial("tcp", w.addr)
		if err == nil {
			done, joined, serr := w.session(conn)
			conn.Close()
			if done {
				return nil
			}
			var refused *RefusedError
			if errors.As(serr, &refused) || errors.Is(serr, ErrWorkerKilled) {
				return serr
			}
			if joined {
				// A session that actually joined resets the reconnect budget:
				// the bound is on consecutive failures, not run length.
				attempt = 0
			}
			err = serr
		}
		lastErr = err
		attempt++
		if attempt > w.maxReconnects {
			return fmt.Errorf("fabric: worker %s: giving up after %d reconnect attempts: %w",
				w.id, w.maxReconnects, lastErr)
		}
		d := expt.RetryDelay(w.retrySeed, "fabric.reconnect/"+w.id, attempt, w.reconnectBase)
		w.reg.Counter("fabric.reconnect.backoffs").Inc()
		w.logf("fabric: worker %s: connection lost (%v); reconnect %d/%d in %v",
			w.id, lastErr, attempt, w.maxReconnects, d)
		time.Sleep(d)
	}
}

func (w *workerCore) logf(format string, args ...any) {
	if w.log != nil {
		w.log(format, args...)
	}
}

// send writes one frame, serialized across the heartbeat goroutine and the
// session loop.
func (w *workerCore) send(conn net.Conn, f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(conn, f)
}

// session runs one connection: hello/welcome, then serve leases until
// shutdown (done=true), connection loss, or refusal. joined reports whether
// the coordinator accepted the hello.
func (w *workerCore) session(conn net.Conn) (done, joined bool, err error) {
	hello := &frame{Type: frameHello, Proto: ProtoVersion, Worker: w.id,
		Fingerprint: w.fp, Kind: w.kind}
	if err := w.send(conn, hello); err != nil {
		return false, false, err
	}
	f, err := readFrameTimeout(conn, helloTimeout)
	if err != nil {
		return false, false, err
	}
	switch f.Type {
	case frameWelcome:
	case frameRefuse:
		return false, false, &RefusedError{Reason: f.Reason}
	default:
		return false, false, perr("expected welcome or refuse, got %q", f.Type)
	}
	w.logf("fabric: worker %s joined run %s", w.id, f.RunID)

	for {
		f, err := readFrame(conn)
		if err != nil {
			return false, true, err
		}
		switch f.Type {
		case frameLease:
			if err := w.serveLease(conn, f); err != nil {
				return false, true, err
			}
		case frameShutdown:
			w.logf("fabric: worker %s: run complete, shutting down", w.id)
			return true, true, nil
		default:
			// Ignore unknown frame types (forward compatibility).
		}
	}
}

// leaseOutcome carries one finished measurement out of its goroutine.
type leaseOutcome struct {
	payload []byte
	resumed bool
	err     error
}

// serveLease measures one leased cell, heartbeating while it runs, and
// delivers the result. A takeover lease arrives with the previous holder's
// progress snapshot; the measurement resumes from it mid-cell (or from
// scratch if the snapshot is damaged — never half-applied).
func (w *workerCore) serveLease(conn net.Conn, lease *frame) error {
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	w.reg.Counter("fabric.worker.leases").Inc()
	if len(lease.Progress) > 0 {
		w.logf("fabric: worker %s: lease %s (takeover, %d-byte snapshot)",
			w.id, lease.Key, len(lease.Progress))
	}

	// Shared progress state between the measurement (producer) and the
	// heartbeat loop (shipper).
	var pmu sync.Mutex
	var snap []byte
	var gen, instret uint64
	sink := func(b []byte, ir uint64) {
		pmu.Lock()
		snap, instret = b, ir
		gen++
		g := gen
		pmu.Unlock()
		if w.testBeatOnProgress {
			_ = w.send(conn, &frame{Type: frameBeat, LeaseID: lease.LeaseID,
				Key: lease.Key, Instret: ir, Gen: g, Progress: b})
		}
		if w.testOnProgress != nil {
			w.testOnProgress(lease.Key, g)
		}
	}

	stopBeat := make(chan struct{})
	var beatWG sync.WaitGroup
	if !w.testNoBeat {
		beatWG.Add(1)
		go func() {
			defer beatWG.Done()
			period := ttl / 3
			if period < 5*time.Millisecond {
				period = 5 * time.Millisecond
			}
			t := time.NewTicker(period)
			defer t.Stop()
			sentGen := uint64(0)
			for {
				select {
				case <-stopBeat:
					return
				case <-t.C:
				}
				pmu.Lock()
				b := &frame{Type: frameBeat, LeaseID: lease.LeaseID, Key: lease.Key,
					Instret: instret, Gen: gen}
				if gen > sentGen {
					b.Progress = snap
				}
				g := gen
				pmu.Unlock()
				if err := w.send(conn, b); err != nil {
					return
				}
				sentGen = g
				w.reg.Counter("fabric.worker.beats").Inc()
			}
		}()
	}

	resCh := make(chan leaseOutcome, 1)
	go func() {
		payload, resumed, err := w.measure(lease.Key, lease.Spec, lease.Progress, sink)
		resCh <- leaseOutcome{payload: payload, resumed: resumed, err: err}
	}()

	select {
	case m := <-resCh:
		close(stopBeat)
		beatWG.Wait()
		if m.err != nil {
			return m.err
		}
		if err := w.send(conn, &frame{Type: frameResult, LeaseID: lease.LeaseID,
			Key: lease.Key, Cell: m.payload, Resumed: m.resumed}); err != nil {
			return err
		}
		w.reg.Counter("fabric.worker.results").Inc()
		return nil
	case <-w.testKill:
		// Simulated crash: drop the connection with the lease unresolved.
		// The measurement goroutine drains into the buffered channel.
		close(stopBeat)
		conn.Close()
		return ErrWorkerKilled
	}
}
