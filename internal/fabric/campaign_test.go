package fabric

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/faultinj"
	"singlespec/internal/obs"
)

// campaignCfg is the shared campaign configuration: every class over one
// kernel, small enough to run three fabric topologies in one test binary.
func campaignCfg(reg *obs.Registry) faultinj.Config {
	return faultinj.Config{Seed: 42, Events: 2, Kernels: []string{"crc32"}, Obs: reg}
}

// campaignReference runs the campaign on the single-host engine once per
// test binary.
var campRefOnce sync.Once
var campRefState struct {
	report string
	err    error
}

func campaignReference(t *testing.T) string {
	t.Helper()
	campRefOnce.Do(func() {
		rep, err := faultinj.Run(campaignCfg(obs.NewRegistry()))
		if err != nil {
			campRefState.err = err
			return
		}
		campRefState.report = rep.String()
	})
	if campRefState.err != nil {
		t.Fatal(campRefState.err)
	}
	return campRefState.report
}

// runCampaignFabric runs one campaign coordinator with the given workers
// and returns the merged report and the coordinator's registry.
func runCampaignFabric(t *testing.T, coordCfg CampaignConfig, workers []CampaignWorkerConfig) (*faultinj.Report, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	coordCfg.Campaign = campaignCfg(reg)
	if coordCfg.Addr == "" {
		coordCfg.Addr = "127.0.0.1:0"
	}
	coordCfg.SegmentDir = t.TempDir()
	coord, err := NewCampaignCoordinator(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := range workers {
		w := workers[i]
		w.Addr = coord.Addr()
		if w.Campaign.Seed == 0 {
			w.Campaign = campaignCfg(obs.NewRegistry())
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker exit errors are expected in the death tests; the
			// coordinator-side assertions are the oracle.
			_ = RunCampaignWorker(w)
		}()
	}
	rep, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return rep, reg
}

// TestCampaignFabricDeterminism is the campaign acceptance oracle
// (mirroring TestFabricPlacementAndDeathDeterminism): the report merged
// from 1 worker, from 3 workers, and from 3 workers with one killed
// mid-cell (its lease taken over from the heartbeat-shipped clean-pass
// snapshot) is byte-identical to the single-host faultinj.Run report.
func TestCampaignFabricDeterminism(t *testing.T) {
	ref := campaignReference(t)

	t.Run("one_worker", func(t *testing.T) {
		rep, _ := runCampaignFabric(t, CampaignConfig{}, []CampaignWorkerConfig{{ID: "solo"}})
		if got := rep.String(); got != ref {
			t.Errorf("1-worker campaign report differs from local:\nlocal:\n%s\nfabric:\n%s", ref, got)
		}
	})

	t.Run("three_workers_one_killed_mid_cell", func(t *testing.T) {
		// The victim ships every progress snapshot synchronously and is
		// killed after its first clean-pass commit: the coordinator provably
		// holds a mid-cell snapshot when the connection drops, so the
		// takeover resumes past the clean pass rather than from scratch.
		kill := make(chan struct{})
		var once sync.Once
		victim := CampaignWorkerConfig{ID: "w-victim",
			testBeatOnProgress: true,
			testKill:           kill,
			testOnProgress: func(key string, gen uint64) {
				once.Do(func() { close(kill) })
			},
		}
		rep, reg := runCampaignFabric(t, CampaignConfig{}, []CampaignWorkerConfig{
			victim, {ID: "w-b"}, {ID: "w-c"},
		})
		if got := rep.String(); got != ref {
			t.Errorf("kill-run campaign report differs from local:\nlocal:\n%s\nfabric:\n%s", ref, got)
		}
		snap := reg.Snapshot()
		if snap.Counters["fabric.worker.disconnected"] == 0 {
			t.Error("expected the killed worker to be observed as disconnected")
		}
		if snap.Counters["fabric.lease.takeover"] == 0 {
			t.Error("expected at least one lease takeover")
		}
		if snap.Counters["fabric.lease.progress_resumed"] == 0 {
			t.Error("expected the taken-over cell to resume from the shipped snapshot")
		}
	})
}

// TestCampaignFabricJournalResume: a journaled campaign interrupted
// mid-run restores its completed cells on resume (never re-leasing them)
// and finishes with the byte-identical report.
func TestCampaignFabricJournalResume(t *testing.T) {
	ref := campaignReference(t)
	dir := t.TempDir()
	fp := faultinj.Fingerprint(campaignCfg(nil))

	// First run: interrupt after the first few cells resolve.
	interrupt := make(chan struct{})
	var once sync.Once
	resolved := 0
	j1, err := expt.OpenJournal(dir, "camp-run-1", fp, false)
	if err != nil {
		t.Fatal(err)
	}
	reg1 := obs.NewRegistry()
	cfg1 := CampaignConfig{Addr: "127.0.0.1:0", Campaign: campaignCfg(reg1),
		SegmentDir: t.TempDir(), Journal: j1, Interrupt: interrupt,
		OnCell: func(key string, res faultinj.Result) {
			resolved++
			if resolved == 3 {
				once.Do(func() { close(interrupt) })
			}
		}}
	coord1, err := NewCampaignCoordinator(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = RunCampaignWorker(CampaignWorkerConfig{Addr: coord1.Addr(), ID: "w1",
			Campaign: campaignCfg(obs.NewRegistry())})
	}()
	rep1, err := coord1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	interruptedCells := 0
	for _, r := range rep1.Results {
		var ie *faultinj.InterruptedError
		if errors.As(r.Err, &ie) {
			interruptedCells++
		}
	}
	if interruptedCells == 0 {
		t.Fatal("interrupted run resolved every cell; the resume proves nothing")
	}

	// Second run resumes: journaled cells restore, the rest compute.
	j2, err := expt.OpenJournal(dir, "camp-run-2", fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restored() == 0 {
		t.Fatal("no cells restored from the campaign journal")
	}
	reg2 := obs.NewRegistry()
	cfg2 := CampaignConfig{Addr: "127.0.0.1:0", Campaign: campaignCfg(reg2),
		SegmentDir: t.TempDir(), Journal: j2}
	coord2, err := NewCampaignCoordinator(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = RunCampaignWorker(CampaignWorkerConfig{Addr: coord2.Addr(), ID: "w2",
			Campaign: campaignCfg(obs.NewRegistry())})
	}()
	rep2, err := coord2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep2.String(); got != ref {
		t.Errorf("resumed campaign report differs from local:\nlocal:\n%s\nresumed:\n%s", ref, got)
	}
}

// TestCampaignFabricRefusesWrongKind: a sweep worker knocking on a
// campaign coordinator (and vice versa) is refused at hello with a typed
// *RefusedError naming the kind clash — before fingerprints even compare.
func TestCampaignFabricRefusesWrongKind(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := CampaignConfig{Addr: "127.0.0.1:0", Campaign: campaignCfg(reg),
		SegmentDir: t.TempDir()}
	coord, err := NewCampaignCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	swErr := RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "sweeper",
		Sweep: expt.Config{Scale: 1, MinDur: time.Millisecond, Metric: expt.MetricWork,
			Obs: obs.NewRegistry()}})
	var refused *RefusedError
	if !errors.As(swErr, &refused) {
		t.Fatalf("sweep worker on campaign coordinator: want *RefusedError, got %v", swErr)
	}
	if !strings.Contains(refused.Reason, "sweep") || !strings.Contains(refused.Reason, "campaign") {
		t.Errorf("refusal reason should name the kind clash: %q", refused.Reason)
	}
	if n := reg.Snapshot().Counters["fabric.worker.refused_kind"]; n != 1 {
		t.Errorf("fabric.worker.refused_kind = %d, want 1", n)
	}

	go func() {
		_ = RunCampaignWorker(CampaignWorkerConfig{Addr: coord.Addr(), ID: "proper",
			Campaign: campaignCfg(obs.NewRegistry())})
	}()
	if _, err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
}
