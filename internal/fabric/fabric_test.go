package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/isa"
	"singlespec/internal/obs"
)

// These tests prove the fabric's central claim: a sweep distributed over
// any number of workers — with any placement, and with workers killed
// mid-cell and their leases taken over from heartbeat-shipped progress —
// produces output byte-identical (in every deterministic field) to the
// single-host engine.

// sweepCfg is the shared sweep configuration: the deterministic work
// metric and a checkpoint cadence that yields ~20 mid-cell progress
// commits per ~1M-instruction cell (enough for takeover snapshots without
// dominating the runtime), with a registry per run.
func sweepCfg(reg *obs.Registry) expt.Config {
	return expt.Config{Scale: 1, MinDur: time.Millisecond, Workers: 2,
		Metric: expt.MetricWork, CkptEvery: 50000, Obs: reg}
}

// detLine renders one cell's deterministic fields. Host timing (MIPS,
// ns/instr, wall, queue wait) and the translation-cache statistics (which
// legitimately depend on where a takeover resumed, exactly like an
// in-process retry resume) are excluded — same contract as EXPERIMENTS.md.
func detLine(c expt.Cell) string {
	status := "ok"
	if c.Err != nil {
		status = c.Err.Kind.String()
	}
	return fmt.Sprintf("%s/%s/%s %s attempts=%d instret=%d work=%d wpi=%v",
		c.ISA, c.Buildset, c.Backend, status, c.Attempts, c.Instret, c.WorkUnits, c.WorkPerInstr)
}

func detLines(cells []expt.Cell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = detLine(c)
	}
	return out
}

// scrubbedSnapshot renders a registry snapshot with the fabric-topology
// counters removed: lease grants, heartbeats, and reconnects depend on
// placement and timing; everything else must match a local run exactly.
func scrubbedSnapshot(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	s := reg.Snapshot()
	for k := range s.Counters {
		if strings.HasPrefix(k, "fabric.") {
			delete(s.Counters, k)
		}
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// localReference measures the sweep on the single-host engine, once per
// test binary (the fabric runs under test must all match this same
// reference, so recomputing it per test would only burn time).
var refOnce sync.Once
var refState struct {
	cells []expt.Cell
	tab   string
	snap  string
	err   error
}

func localReference(t *testing.T) ([]expt.Cell, string, string) {
	t.Helper()
	refOnce.Do(func() {
		reg := obs.NewRegistry()
		cfg := sweepCfg(reg)
		cells, tab, err := expt.TableII(cfg)
		if err != nil {
			refState.err = err
			return
		}
		refState.cells, refState.tab = cells, tab.String()
		refState.snap = scrubbedSnapshot(t, reg)
	})
	if refState.err != nil {
		t.Fatal(refState.err)
	}
	return refState.cells, refState.tab, refState.snap
}

// runFabric runs one coordinator with the given workers (started
// concurrently) and returns the merged cells, rendered table, and the
// coordinator's registry.
func runFabric(t *testing.T, coordCfg Config, workers []WorkerConfig) ([]expt.Cell, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	coordCfg.Sweep = sweepCfg(reg)
	if coordCfg.Addr == "" {
		coordCfg.Addr = "127.0.0.1:0"
	}
	coordCfg.SegmentDir = t.TempDir()
	coord, err := NewCoordinator(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := range workers {
		w := workers[i]
		w.Addr = coord.Addr()
		if w.Sweep.Scale == 0 {
			w.Sweep = sweepCfg(obs.NewRegistry())
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker exit errors are expected in the death/expiry tests;
			// the coordinator-side assertions are the oracle.
			_ = RunWorker(w)
		}()
	}
	cells, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	tab := expt.RenderTableII(coordCfg.Sweep, cells)
	return cells, tab.String(), reg
}

// TestFabricSingleWorkerMatchesLocal is the graceful-degradation floor:
// a one-worker fabric reproduces the single-host sweep byte for byte —
// tables, deterministic cell fields, and the full (fabric-scrubbed)
// counter snapshot.
func TestFabricSingleWorkerMatchesLocal(t *testing.T) {
	refCells, refTab, refSnap := localReference(t)

	cells, tab, reg := runFabric(t, Config{}, []WorkerConfig{{ID: "solo"}})
	if tab != refTab {
		t.Errorf("1-worker fabric table differs from local:\nlocal:\n%s\nfabric:\n%s", refTab, tab)
	}
	want, got := detLines(refCells), detLines(cells)
	for i := range want {
		if i < len(got) && want[i] != got[i] {
			t.Errorf("cell %d: local %q, fabric %q", i, want[i], got[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cell count: local %d, fabric %d", len(want), len(got))
	}
	// No takeovers happened, so even the per-cell execution statistics are
	// identical: the scrubbed snapshots must match byte for byte.
	if snap := scrubbedSnapshot(t, reg); snap != refSnap {
		t.Errorf("1-worker fabric counter snapshot differs from local:\nlocal:  %s\nfabric: %s", refSnap, snap)
	}
}

// TestFabricPlacementAndDeathDeterminism is the acceptance oracle: the
// sweep merged from 3 workers, and from 3 workers with one killed mid-cell
// (its lease taken over from the heartbeat-shipped snapshot and resumed
// mid-kernel on another worker), is identical to the single-host run in
// every deterministic field.
func TestFabricPlacementAndDeathDeterminism(t *testing.T) {
	refCells, refTab, refSnap := localReference(t)
	refDet := detLines(refCells)

	t.Run("three_workers", func(t *testing.T) {
		cells, tab, reg := runFabric(t, Config{}, []WorkerConfig{
			{ID: "w-a"}, {ID: "w-b"}, {ID: "w-c"},
		})
		if tab != refTab {
			t.Errorf("3-worker table differs from local:\nlocal:\n%s\nfabric:\n%s", refTab, tab)
		}
		if got := detLines(cells); strings.Join(got, "\n") != strings.Join(refDet, "\n") {
			t.Errorf("3-worker deterministic fields differ:\nlocal:\n%s\nfabric:\n%s",
				strings.Join(refDet, "\n"), strings.Join(got, "\n"))
		}
		if snap := scrubbedSnapshot(t, reg); snap != refSnap {
			t.Errorf("3-worker counter snapshot differs from local")
		}
	})

	t.Run("worker_killed_mid_cell", func(t *testing.T) {
		// The victim ships every progress snapshot synchronously and is
		// killed after the fifth commit of its first cell: the coordinator
		// provably holds a mid-cell snapshot when the connection drops, so
		// the takeover resumes mid-kernel rather than from scratch.
		kill := make(chan struct{})
		var once sync.Once
		victim := WorkerConfig{ID: "w-victim",
			testBeatOnProgress: true,
			testKill:           kill,
			testOnProgress: func(key string, gen uint64) {
				if gen >= 5 {
					once.Do(func() { close(kill) })
				}
			},
		}
		cells, tab, reg := runFabric(t, Config{}, []WorkerConfig{
			victim, {ID: "w-b"}, {ID: "w-c"},
		})
		if tab != refTab {
			t.Errorf("kill-run table differs from local:\nlocal:\n%s\nfabric:\n%s", refTab, tab)
		}
		if got := detLines(cells); strings.Join(got, "\n") != strings.Join(refDet, "\n") {
			t.Errorf("kill-run deterministic fields differ:\nlocal:\n%s\nfabric:\n%s",
				strings.Join(refDet, "\n"), strings.Join(got, "\n"))
		}
		snap := reg.Snapshot()
		if snap.Counters["fabric.worker.disconnected"] == 0 {
			t.Error("expected the killed worker to be observed as disconnected")
		}
		if snap.Counters["fabric.lease.takeover"] == 0 {
			t.Error("expected at least one lease takeover")
		}
		if snap.Counters["fabric.lease.progress_resumed"] == 0 {
			t.Error("expected the taken-over cell to resume from the shipped snapshot")
		}
	})
}

// TestFabricRefusesStaleWorker: a worker whose sweep flags fingerprint
// differently (here: a different -scale) is refused at hello and reports a
// typed *RefusedError; a matching worker completes the sweep.
func TestFabricRefusesStaleWorker(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Addr: "127.0.0.1:0", Sweep: sweepCfg(reg), SegmentDir: t.TempDir()}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stale := sweepCfg(obs.NewRegistry())
	stale.Scale = 3 // fingerprints differently: would compute different cells
	staleErr := RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "stale", Sweep: stale})
	var refused *RefusedError
	if !errors.As(staleErr, &refused) {
		t.Fatalf("stale worker: want *RefusedError, got %v", staleErr)
	}
	if !strings.Contains(refused.Reason, "fingerprint") {
		t.Errorf("refusal reason should name the fingerprint mismatch: %q", refused.Reason)
	}

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "good", Sweep: sweepCfg(obs.NewRegistry())})
	}()
	cells, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Errorf("good worker: %v", werr)
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Errorf("cell %s/%s errored: %v", c.ISA, c.Buildset, c.Err)
		}
	}
	if n := reg.Snapshot().Counters["fabric.worker.refused_stale"]; n != 1 {
		t.Errorf("fabric.worker.refused_stale = %d, want 1", n)
	}
}

// TestFabricLeaseExpiryTakeover: a worker that takes a lease but never
// heartbeats (hung-but-connected) has it reclaimed at TTL expiry and the
// cell completes on a live worker — the sweep cannot be stalled by a
// silent worker.
func TestFabricLeaseExpiryTakeover(t *testing.T) {
	reg := obs.NewRegistry()
	unblock := make(chan struct{})
	defer close(unblock)

	// TTL 2s: long enough that the live worker's heartbeats (every TTL/3)
	// keep its leases alive even under race-detector scheduling delays,
	// short enough that the hung worker's lease expires promptly. The
	// raised retry budget keeps a spurious expiry from ERR-marking a cell.
	cfg := Config{Addr: "127.0.0.1:0", Sweep: sweepCfg(reg),
		SegmentDir: t.TempDir(), LeaseTTL: 2 * time.Second, MaxCellTries: 5}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The hung worker: no heartbeats, and its first cell blocks at the
	// first progress commit until the test ends.
	var hangOnce sync.Once
	go func() {
		_ = RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "hung",
			Sweep:      sweepCfg(obs.NewRegistry()),
			testNoBeat: true,
			testOnProgress: func(key string, gen uint64) {
				hangOnce.Do(func() { <-unblock })
			},
		})
	}()
	go func() {
		_ = RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "live",
			Sweep: sweepCfg(obs.NewRegistry())})
	}()

	cells, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Errorf("cell %s/%s errored: %v", c.ISA, c.Buildset, c.Err)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["fabric.lease.expired"] == 0 {
		t.Error("expected the hung worker's lease to expire")
	}
	if snap.Counters["fabric.lease.takeover"] == 0 {
		t.Error("expected the expired lease's cell to be re-leased")
	}
}

// TestFabricLostCellAfterRetryBound: when every worker holding a cell
// dies, the coordinator ERR-marks it with the typed taxonomy (kind "lost")
// after the bounded cross-worker retries instead of waiting forever — and
// the rest of the sweep still completes.
func TestFabricLostCellAfterRetryBound(t *testing.T) {
	reg := obs.NewRegistry()
	// Reclaims here are connection-death driven; the long TTL just keeps
	// race-detector scheduling delays from expiring healthy leases.
	cfg := Config{Addr: "127.0.0.1:0", Sweep: sweepCfg(reg),
		SegmentDir: t.TempDir(), MaxCellTries: 2, LeaseTTL: 2 * time.Second}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential single-shot workers, each dying at its first progress
	// commit. Each is the only connected worker, so each leases the lowest
	// pending cell — the same first cell twice. The second death exhausts
	// MaxCellTries=2 and ERR-marks it lost; a healthy worker then finishes
	// the remaining cells.
	for i := 0; i < 2; i++ {
		kill := make(chan struct{})
		var once sync.Once
		err := RunWorker(WorkerConfig{Addr: coord.Addr(), ID: fmt.Sprintf("crash-%d", i),
			Sweep:    sweepCfg(obs.NewRegistry()),
			testKill: kill,
			testOnProgress: func(key string, gen uint64) {
				once.Do(func() { close(kill) })
			},
		})
		if !errors.Is(err, ErrWorkerKilled) {
			t.Fatalf("crash worker %d: want ErrWorkerKilled, got %v", i, err)
		}
		// Wait for the coordinator to observe the death and reclaim the
		// lease before the next worker joins, so both crashes land on the
		// same (lowest pending) cell.
		deadline := time.Now().Add(5 * time.Second)
		for reg.Snapshot().Counters["fabric.worker.disconnected"] < uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("coordinator never observed crash worker %d disconnecting", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	go func() {
		_ = RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "healthy",
			Sweep: sweepCfg(obs.NewRegistry())})
	}()
	cells, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, c := range cells {
		if c.Err != nil {
			if c.Err.Kind != expt.CellLost {
				t.Errorf("cell %s/%s: unexpected error kind %v", c.ISA, c.Buildset, c.Err.Kind)
				continue
			}
			lost++
			if c.Attempts != 2 {
				t.Errorf("lost cell %s/%s: attempts = %d, want 2", c.ISA, c.Buildset, c.Attempts)
			}
		}
	}
	if lost != 1 {
		t.Errorf("lost cells = %d, want exactly 1 (only the twice-crashed cell)", lost)
	}
	if n := reg.Snapshot().Counters["fabric.cell.lost"]; n != 1 {
		t.Errorf("fabric.cell.lost = %d, want 1", n)
	}
}

// TestMergeRefusesCorruptSegment (satellite: merge corruption): a segment
// damaged mid-file refuses the whole merge with a typed *SegmentError
// naming the worker, unwrapping to the offset-bearing corruption error —
// while a torn final record (the append in flight when a worker's
// coordinator died) is silently dropped per the resume semantics.
func TestMergeRefusesCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	fp := "test-fingerprint"
	mk := func(worker string, keys ...string) string {
		path := filepath.Join(dir, worker+".sseg")
		seg, err := expt.CreateSegment(path, worker, fp)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			cell := expt.Cell{ISA: "alpha64", Buildset: "one_all_yes", Instret: 1000, WorkUnits: 5000}
			if err := seg.Append(k, cell); err != nil {
				t.Fatal(err)
			}
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pathA := mk("worker-a", "k1", "k2")
	pathB := mk("worker-b", "k3", "k4", "k5")

	// Baseline: both segments merge.
	merged, err := MergeSegments(map[string]string{"worker-a": pathA, "worker-b": pathB}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 {
		t.Fatalf("merged %d cells, want 5", len(merged))
	}

	// Corrupt one byte in the middle of worker-b's segment (inside the
	// first cell record's payload, well before the final record).
	data, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(pathB, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = MergeSegments(map[string]string{"worker-a": pathA, "worker-b": pathB}, fp)
	var segErr *SegmentError
	if !errors.As(err, &segErr) {
		t.Fatalf("corrupt segment: want *SegmentError, got %v", err)
	}
	if segErr.Worker != "worker-b" {
		t.Errorf("SegmentError names worker %q, want worker-b", segErr.Worker)
	}
	var corrupt *expt.CorruptJournalError
	if !errors.As(err, &corrupt) {
		t.Fatalf("SegmentError should unwrap to *expt.CorruptJournalError, got %v", err)
	}
	if corrupt.Offset <= 0 {
		t.Errorf("corruption offset = %d, want > 0 (damage is mid-file)", corrupt.Offset)
	}

	// A torn tail on worker-a (partial final append) merges minus the torn
	// record.
	full, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathA, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	merged, err = MergeSegments(map[string]string{"worker-a": pathA}, fp)
	if err != nil {
		t.Fatalf("torn tail should be dropped, not refused: %v", err)
	}
	if _, ok := merged["k1"]; !ok {
		t.Error("intact record k1 missing after torn-tail drop")
	}
	if _, ok := merged["k2"]; ok {
		t.Error("torn final record k2 should have been dropped")
	}

	// A segment from a different run's fingerprint is refused outright.
	_, err = MergeSegments(map[string]string{"worker-a": pathA}, "other-fingerprint")
	var fpErr *expt.FingerprintMismatchError
	if !errors.As(err, &fpErr) {
		t.Fatalf("mismatched fingerprint: want *expt.FingerprintMismatchError, got %v", err)
	}
}

// TestFabricWorkersShareAOTCache: two workers pointing -aot-cache at one
// shared directory compile each runner binary exactly once — the second
// worker's AOT cell is served entirely from the first worker's on-disk
// cache entry (verified by manifest hash, observable as aot.cache.hit with
// zero aot.build). It also pins the membership contract that makes sharing
// safe to deploy incrementally: the cache path is worker-local, NOT part of
// the sweep fingerprint, so workers with different -aot-cache values join
// the same run.
func TestFabricWorkersShareAOTCache(t *testing.T) {
	shared := t.TempDir()
	spec := expt.JobSpec{ISA: "alpha64", Buildset: "block_min", Backend: expt.BackendAOT}

	measureAs := func(workerID string) (expt.Cell, *obs.Registry) {
		reg := obs.NewRegistry()
		cfg := WorkerConfig{ID: workerID, Sweep: sweepCfg(reg)}
		cfg.Sweep.AOTCacheDir = shared
		mixes := map[string]*expt.Programs{}
		mix := func(name string) (*expt.Programs, error) {
			if p := mixes[name]; p != nil {
				return p, nil
			}
			i, err := isa.Load(name)
			if err != nil {
				return nil, err
			}
			p, err := expt.BuildMix(i, cfg.Sweep.Scale)
			if err != nil {
				return nil, err
			}
			mixes[name] = p
			return p, nil
		}
		cell, _ := measureSweepCell(cfg, mix, spec, nil, nil)
		return cell, reg
	}

	first, reg1 := measureAs("w1")
	if expt.IsNoToolchain(first) {
		t.Skip("skipping: go toolchain not available on PATH")
	}
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if got := reg1.Counter("aot.build").Load(); got != 1 {
		t.Fatalf("first worker aot.build = %d, want 1", got)
	}

	second, reg2 := measureAs("w2")
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if got := reg2.Counter("aot.cache.hit").Load(); got == 0 {
		t.Fatal("second worker never hit the shared AOT cache")
	}
	if got := reg2.Counter("aot.build").Load(); got != 0 {
		t.Fatalf("second worker rebuilt a cached runner: aot.build = %d", got)
	}
	if first.WorkPerInstr != second.WorkPerInstr || first.Instret != second.Instret {
		t.Fatalf("cached runner changed the measurement: first %s, second %s",
			detLine(first), detLine(second))
	}

	// Membership: the cache directory must not perturb the fingerprint —
	// otherwise a worker with a different local cache path would be refused.
	a, b := sweepCfg(obs.NewRegistry()), sweepCfg(obs.NewRegistry())
	a.AOTCacheDir, b.AOTCacheDir = "/cache/a", "/cache/b"
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("AOTCacheDir leaked into the sweep fingerprint; heterogeneous cache paths would split the fleet")
	}
}

// TestFabricSnapshotShape: the manifest fabric snapshot reports the fleet
// and every lease's terminal state.
func TestFabricSnapshotShape(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Addr: "127.0.0.1:0", Sweep: sweepCfg(reg), SegmentDir: t.TempDir()}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = RunWorker(WorkerConfig{Addr: coord.Addr(), ID: "w1", Sweep: sweepCfg(obs.NewRegistry())})
	}()
	cells, err := coord.Wait()
	if err != nil {
		t.Fatal(err)
	}
	fs := coord.Snapshot()
	if len(fs.Workers) != 1 || fs.Workers[0] != "w1" {
		t.Errorf("snapshot workers = %v, want [w1]", fs.Workers)
	}
	if len(fs.Leases) != len(cells) {
		t.Fatalf("snapshot has %d leases, want %d", len(fs.Leases), len(cells))
	}
	for _, l := range fs.Leases {
		if l.State != "done" {
			t.Errorf("lease %s state %q after completion, want done", l.Key, l.State)
		}
	}
	if fs.Fingerprint != Fingerprint(cfg.Sweep) {
		t.Errorf("snapshot fingerprint mismatch")
	}
}
