package fabric

// Fault campaigns on the fabric: campaign cells are leased with the same
// TTL/heartbeat/takeover/bounded-retry/deterministic-merge guarantees as
// Table II sweep cells. A campaign lease is key-addressed (the CellSpec is
// fully derivable from "ISA/class/kernel"), its progress snapshot is the
// clean pass's retirement count, and delivered results ride the
// faultinj wire codec into per-worker raw segments. The merged Report is
// byte-identical to a single-host faultinj.Run of the same Config, for any
// worker count, placement, or mid-cell worker death.

import (
	"fmt"
	"time"

	"singlespec/internal/expt"
	"singlespec/internal/faultinj"
	"singlespec/internal/obs"
)

// CampaignConfig configures a fabric coordinator for a fault campaign.
type CampaignConfig struct {
	// Addr is the TCP listen address (":0" to let the kernel pick).
	Addr string
	// Campaign is the campaign configuration: it determines the cell list
	// and the membership fingerprint. Campaign.Workers is ignored — the
	// fabric's parallelism is its worker fleet. Campaign.Obs receives the
	// fabric counters and (at merge) the campaign's per-class counters.
	Campaign faultinj.Config
	// LeaseTTL, MaxCellTries, SegmentDir, RunID, Log: as Config.
	LeaseTTL     time.Duration
	MaxCellTries int
	SegmentDir   string
	RunID        string
	Log          func(format string, args ...any)
	// Journal, when non-nil, makes the campaign durable: deterministic cell
	// outcomes (ok, diverged, error) are recorded as raw records, and
	// already-journaled cells are restored up front instead of re-leased.
	Journal *expt.RunJournal
	// Interrupt, when non-nil, winds the campaign down when closed:
	// unfinished cells resolve as interrupted (not journaled — a resumed
	// campaign recomputes them).
	Interrupt <-chan struct{}
	// OnCell, when non-nil, streams every cell resolution in completion
	// order (restored cells included). Fast, no calling back in.
	OnCell func(key string, res faultinj.Result)
}

// CampaignCoordinator runs one distributed fault campaign.
type CampaignCoordinator struct {
	core *coordCore
	cfg  CampaignConfig
}

// ServeCampaign runs a distributed fault campaign to completion and
// returns the merged report.
func ServeCampaign(cfg CampaignConfig) (*faultinj.Report, error) {
	c, err := NewCampaignCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	return c.Wait()
}

// NewCampaignCoordinator starts a campaign coordinator (listener and lease
// scanner) and returns immediately; Wait blocks for the merged report.
func NewCampaignCoordinator(cfg CampaignConfig) (*CampaignCoordinator, error) {
	fp := faultinj.Fingerprint(cfg.Campaign)
	wl := &workload{
		kind:      "campaign",
		fp:        fp,
		reg:       cfg.Campaign.Obs,
		interrupt: cfg.Interrupt,
		decode: func(key string, payload []byte) (any, error) {
			res, err := faultinj.DecodeResult(payload)
			if err != nil {
				return nil, err
			}
			if res.Key() != key {
				return nil, fmt.Errorf("result payload keyed %q under lease %q", res.Key(), key)
			}
			return res, nil
		},
		// Deterministic outcomes (ok, diverged, error) reproduce anywhere;
		// only a wind-down interrupt is worth re-leasing.
		transient:   func(v any) bool { return faultinj.ResultStatus(v.(faultinj.Result)) == "interrupted" },
		errLabel:    func(v any) string { return faultinj.ResultStatus(v.(faultinj.Result)) },
		journalable: func(v any) bool { return campaignJournalable(v.(faultinj.Result)) },
		persist: func(seg *expt.Segment, key string, v any) error {
			payload, err := faultinj.EncodeResult(v.(faultinj.Result))
			if err != nil {
				return err
			}
			return seg.AppendRaw(key, payload)
		},
		loadSeg: func(path string) ([]keyedVal, error) {
			krs, err := expt.LoadSegmentRaw(path, fp)
			if err != nil {
				return nil, err
			}
			out := make([]keyedVal, len(krs))
			for i, kr := range krs {
				res, err := faultinj.DecodeResult(kr.Raw)
				if err != nil {
					return nil, err
				}
				out[i] = keyedVal{key: kr.Key, val: res}
			}
			return out, nil
		},
		lost: func(u workUnit, tries int, holder, why string) any {
			spec, _ := faultinj.ParseCellKey(u.key)
			return faultinj.LostResult(spec, tries,
				fmt.Sprintf("lease lost on %d worker(s), last on %s: %s", tries, holder, why))
		},
		interrupted: func(u workUnit, tries int) any {
			spec, _ := faultinj.ParseCellKey(u.key)
			return faultinj.InterruptedResult(spec)
		},
	}
	specs := faultinj.CampaignCells(cfg.Campaign)
	wl.units = make([]workUnit, len(specs))
	for i, s := range specs {
		wl.units[i] = workUnit{key: s.Key()} // no spec payload: the key is the spec
	}
	if cfg.Journal != nil {
		j := cfg.Journal
		wl.lookup = func(key string) (any, bool) {
			raw, ok := j.LookupRaw(key)
			if !ok {
				return nil, false
			}
			res, err := faultinj.DecodeResult(raw)
			if err != nil {
				return nil, false
			}
			return res, true
		}
		wl.journal = func(key string, v any) {
			payload, err := faultinj.EncodeResult(v.(faultinj.Result))
			if err != nil {
				return
			}
			_ = j.RecordRaw(key, payload)
		}
	}
	if fn := cfg.OnCell; fn != nil {
		wl.resolve = func(key string, v any) { fn(key, v.(faultinj.Result)) }
	}
	core, err := newCore(coreConfig{
		addr: cfg.Addr, leaseTTL: cfg.LeaseTTL, maxTries: cfg.MaxCellTries,
		segDir: cfg.SegmentDir, runID: cfg.RunID, log: cfg.Log,
	}, wl)
	if err != nil {
		return nil, err
	}
	return &CampaignCoordinator{core: core, cfg: cfg}, nil
}

// campaignJournalable mirrors the sweep rule: only outcomes a rerun
// reproduces identically are durable. Interrupted and lost cells are
// re-run by a resumed campaign.
func campaignJournalable(r faultinj.Result) bool {
	switch faultinj.ResultStatus(r) {
	case "ok", "diverged", "error":
		return true
	}
	return false
}

// Addr returns the coordinator's bound listen address.
func (c *CampaignCoordinator) Addr() string { return c.core.addr() }

// Wait blocks until the campaign resolves (or is interrupted), shuts the
// fleet down, and merges the per-worker segments into the final report —
// byte-identical to faultinj.Run of the same Config.
func (c *CampaignCoordinator) Wait() (*faultinj.Report, error) {
	vals, err := c.core.wait()
	if err != nil {
		return nil, err
	}
	results := make([]faultinj.Result, len(vals))
	for i, v := range vals {
		results[i] = v.(faultinj.Result)
	}
	rep := &faultinj.Report{Seed: c.cfg.Campaign.Seed, Results: results}
	// Same counter semantics as faultinj.Run: one merge-time pass, so the
	// per-class totals match a local run of the same campaign.
	rep.Record(c.cfg.Campaign.Obs)
	return rep, nil
}

// Snapshot exports the fleet and lease state for the run manifest.
func (c *CampaignCoordinator) Snapshot() *obs.FabricSnapshot { return c.core.snapshot() }

// CampaignWorkerConfig configures a fabric campaign worker.
type CampaignWorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// ID names this worker; empty derives one from the hostname and pid.
	ID string
	// Campaign is the worker's local campaign configuration; its
	// fingerprint must match the coordinator's or the worker is refused at
	// hello. Obs receives worker-local counters.
	Campaign faultinj.Config
	// ReconnectBase and MaxReconnects: as WorkerConfig.
	ReconnectBase time.Duration
	MaxReconnects int
	// Log, when non-nil, receives one-line progress events.
	Log func(format string, args ...any)

	// Test hooks, as WorkerConfig.
	testOnProgress     func(key string, gen uint64)
	testKill           <-chan struct{}
	testNoBeat         bool
	testBeatOnProgress bool
}

// RunCampaignWorker joins the fabric at cfg.Addr and serves campaign-cell
// leases until the coordinator sends shutdown (nil), refuses the worker
// (*RefusedError), or the reconnect budget is spent — the same lifecycle
// as RunWorker.
func RunCampaignWorker(cfg CampaignWorkerConfig) error {
	campaign := cfg.Campaign
	core := &workerCore{
		addr: cfg.Addr, id: cfg.ID,
		kind: "campaign", fp: faultinj.Fingerprint(campaign),
		reg:           campaign.Obs,
		reconnectBase: cfg.ReconnectBase, maxReconnects: cfg.MaxReconnects,
		retrySeed: campaign.Seed, log: cfg.Log,
		testOnProgress: cfg.testOnProgress, testKill: cfg.testKill,
		testNoBeat: cfg.testNoBeat, testBeatOnProgress: cfg.testBeatOnProgress,
	}
	core.measure = func(key string, spec *expt.JobSpec, resume []byte, sink func([]byte, uint64)) ([]byte, bool, error) {
		cs, err := faultinj.ParseCellKey(key)
		if err != nil {
			return nil, false, perr("campaign lease %s: %v", key, err)
		}
		res, resumed := faultinj.MeasureCampaignCell(cs, campaign, resume, sink, campaign.Obs)
		payload, err := faultinj.EncodeResult(res)
		if err != nil {
			return nil, false, fmt.Errorf("fabric: encoding campaign result for %s: %w", key, err)
		}
		return payload, resumed, nil
	}
	return core.run()
}
