package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"singlespec/internal/asm"
	"singlespec/internal/checkpoint"
	"singlespec/internal/expt"
	"singlespec/internal/fabric"
	"singlespec/internal/faultinj"
	"singlespec/internal/isa"
	"singlespec/internal/kernels"
	"singlespec/internal/obs"
	"singlespec/internal/stats"
)

// Job states. queued → running → done | failed | evicted | canceled |
// shed; evicted is the one resumable non-terminal rest state (Resume or a
// daemon restart requeues it). Shed is terminal: the job was released from
// the wait queue under budget pressure from higher-priority work and must
// be resubmitted.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateEvicted  = "evicted"
	stateCanceled = "canceled"
	stateShed     = "shed"
)

// JobRequest is the client-visible job description. The zero value of
// every optional field picks the deterministic quick defaults (scale 1,
// work metric, interpreter backend).
type JobRequest struct {
	// Kind is "sweep" (the full Table II grid), "kernel" (one
	// {ISA, buildset, kernel} cell), or "campaign" (a deterministic
	// fault-injection campaign).
	Kind string `json:"kind"`

	// Priority orders the tenant's wait queue: 0 (default) to 9, higher
	// dispatches first. Budget pressure sheds the lowest-priority queued
	// jobs first.
	Priority int `json:"priority,omitempty"`

	// Shared measurement knobs, mirroring ssbench's flags.
	Scale         int    `json:"scale,omitempty"`
	MinDurMS      int64  `json:"min_dur_ms,omitempty"`
	Metric        string `json:"metric,omitempty"`  // "work" (default) or "mips"
	Backend       string `json:"backend,omitempty"` // "interp" (default), "aot", or (sweeps only) "both"
	MaxCellInstr  uint64 `json:"max_cell_instr,omitempty"`
	CellTimeoutMS int64  `json:"cell_timeout_ms,omitempty"`
	CkptEvery     uint64 `json:"ckpt_every,omitempty"`

	// Kernel-job selection.
	ISA      string `json:"isa,omitempty"`
	Buildset string `json:"buildset,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	N        int    `json:"n,omitempty"`

	// Campaign-job selection: the fault-campaign seed, events per cell,
	// class list ("" means all), and kernel list ("" means the campaign
	// default pair). MaxCellInstr maps onto the campaign's per-run
	// instruction bound.
	FaultSeed    uint64 `json:"fault_seed,omitempty"`
	FaultEvents  int    `json:"fault_events,omitempty"`
	FaultClasses string `json:"fault_classes,omitempty"`
	FaultKernels string `json:"fault_kernels,omitempty"`

	// FabricListen, for sweep and campaign jobs, runs the job as a
	// distributed-fabric coordinator on this address (":0" picks a port;
	// see JobStatus FabricAddr). Workers join it with `ssbench -join` (or
	// `ssbench -faults -join`) under matching flags — the daemon is the
	// fabric's front door.
	FabricListen string `json:"fabric_listen,omitempty"`
}

// campaign maps a campaign request onto the faultinj configuration; reg
// may be nil (cell counting only).
func (r *JobRequest) campaign(reg *obs.Registry) (faultinj.Config, error) {
	camp := faultinj.Config{Seed: r.FaultSeed, Events: r.FaultEvents,
		MaxInstr: r.MaxCellInstr, Obs: reg}
	if r.FaultClasses != "" {
		cls, err := faultinj.ParseClasses(r.FaultClasses)
		if err != nil {
			return faultinj.Config{}, err
		}
		camp.Classes = cls
	}
	if r.FaultKernels != "" {
		camp.Kernels = strings.Split(r.FaultKernels, ",")
	}
	return camp, nil
}

// metric parses the request's metric (default: deterministic work units).
func (r *JobRequest) metric() (expt.Metric, error) {
	if r.Metric == "" {
		return expt.MetricWork, nil
	}
	return expt.ParseMetric(r.Metric)
}

// backend parses the request's execution backend.
func (r *JobRequest) backend() (expt.Backend, error) {
	if r.Backend == "" {
		return expt.BackendInterp, nil
	}
	return expt.ParseBackend(r.Backend)
}

// cells is the job's cell count — the unit of the admission budget
// reservation (max_cell_instr × cells).
func (r *JobRequest) cells() int {
	switch r.Kind {
	case "kernel":
		return 1
	case "campaign":
		camp, err := r.campaign(nil)
		if err != nil {
			return 0
		}
		return len(faultinj.CampaignCells(camp))
	}
	n := len(isa.Names()) * len(isa.StdBuildsets)
	if r.Backend == "both" {
		n *= 2
	}
	return n
}

// validate rejects malformed requests before admission.
func (r *JobRequest) validate() error {
	bad := func(format string, args ...any) error {
		return &RefusedError{Kind: "invalid", Reason: fmt.Sprintf(format, args...)}
	}
	if _, err := r.metric(); err != nil {
		return bad("%v", err)
	}
	be, err := r.backend()
	if err != nil {
		return bad("%v", err)
	}
	if r.Scale < 0 || r.N < 0 || r.MinDurMS < 0 || r.CellTimeoutMS < 0 || r.FaultEvents < 0 {
		return bad("negative sizes make no sense")
	}
	if r.Priority < 0 || r.Priority > 9 {
		return bad("priority %d out of range (0 lowest … 9 highest)", r.Priority)
	}
	if r.Kind != "campaign" &&
		(r.FaultSeed != 0 || r.FaultEvents != 0 || r.FaultClasses != "" || r.FaultKernels != "") {
		return bad("fault_* knobs configure campaign jobs, not %q", r.Kind)
	}
	switch r.Kind {
	case "sweep":
		if r.ISA != "" || r.Kernel != "" || r.Buildset != "" {
			return bad("isa/buildset/kernel select a kernel job; sweeps measure the full grid")
		}
	case "campaign":
		if r.ISA != "" || r.Kernel != "" || r.Buildset != "" {
			return bad("isa/buildset/kernel select a kernel job; campaigns derive their own grid")
		}
		if r.Backend != "" || r.Metric != "" || r.Scale != 0 || r.MinDurMS != 0 || r.CkptEvery != 0 {
			return bad("backend/metric/scale/min_dur/ckpt_every are sweep and kernel knobs; campaigns are schedule-driven")
		}
		camp, err := r.campaign(nil)
		if err != nil {
			return bad("%v", err)
		}
		for _, k := range camp.Kernels {
			if kernels.ByName(k) == nil {
				return bad("unknown campaign kernel %q", k)
			}
		}
	case "kernel":
		if be == expt.BackendBoth {
			return bad("kernel jobs measure one cell; backend \"both\" is a sweep-parity mode")
		}
		if r.FabricListen != "" {
			return bad("fabric execution distributes sweeps, not single kernels")
		}
		if !contains(isa.Names(), r.ISA) {
			return bad("unknown isa %q (want one of %v)", r.ISA, isa.Names())
		}
		if !contains(isa.StdBuildsets, r.Buildset) {
			return bad("unknown buildset %q", r.Buildset)
		}
		if kernels.ByName(r.Kernel) == nil {
			return bad("unknown kernel %q", r.Kernel)
		}
	default:
		return bad("unknown job kind %q (want sweep, kernel, or campaign)", r.Kind)
	}
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// UnknownJobError is the typed "no such job" error (JSON-RPC code
// CodeUnknownJob).
type UnknownJobError struct{ ID string }

func (e *UnknownJobError) Error() string { return fmt.Sprintf("serve: unknown job %s", e.ID) }

// BadStateError reports an operation applied to a job in the wrong state
// (JSON-RPC code CodeBadState): resuming a running job, evicting a done
// one.
type BadStateError struct {
	ID    string
	State string
	Op    string
}

func (e *BadStateError) Error() string {
	return fmt.Sprintf("serve: cannot %s job %s in state %s", e.Op, e.ID, e.State)
}

// GoneError reports a job whose state dir the retention sweep collected
// (JSON-RPC code CodeGone): the tombstone remembers the job existed and
// how it ended, but its result, manifest, and journal are deleted.
type GoneError struct{ ID string }

func (e *GoneError) Error() string {
	return fmt.Sprintf("serve: job %s was garbage-collected; its artifacts are gone", e.ID)
}

// TruncatedError reports an event-stream replay request older than the
// job's bounded ring (JSON-RPC code CodeTruncated): events [From, Oldest)
// have fallen off; re-stream from Oldest (or 0 via status/result) instead.
type TruncatedError struct {
	ID     string
	From   int
	Oldest int
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("serve: job %s events before seq %d fell off the replay ring (asked from %d)",
		e.ID, e.Oldest, e.From)
}

// Event is one entry of a job's ordered event log, streamed to clients as
// NDJSON. Seq is contiguous from 0 within one daemon process; a restart
// rebuilds the log from the resumed run (journal-restored cells re-fire),
// so a reconnecting client streams from 0 and sees every cell again. The
// in-memory log is a bounded ring: a replay request older than it gets a
// single "truncated" event (Code CodeTruncated, Oldest = first retained
// seq) and the stream closes.
type Event struct {
	Seq  int    `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"` // "state", "cell", "progress", "obs", "done", "error", "truncated"

	State      string          `json:"state,omitempty"`
	Key        string          `json:"key,omitempty"`
	Cell       *expt.BenchCell `json:"cell,omitempty"`
	Status     string          `json:"status,omitempty"`
	Restored   bool            `json:"restored,omitempty"`
	CellsDone  int             `json:"cells_done,omitempty"`
	CellsTotal int             `json:"cells_total,omitempty"`
	Instret    uint64          `json:"instret,omitempty"`
	Obs        *obs.Snapshot   `json:"obs,omitempty"`
	Table      string          `json:"table,omitempty"`
	Error      string          `json:"error,omitempty"`
	// Code carries the JSON-RPC error code of typed error/truncated
	// events; Oldest is the first retained seq of a truncated stream.
	Code   int `json:"code,omitempty"`
	Oldest int `json:"oldest,omitempty"`
}

// JobStatus is the queryable summary of one job.
type JobStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Priority int    `json:"priority,omitempty"`
	// Gone marks a GC'd job: the status survives in its tombstone but the
	// artifacts are deleted (ssd.result answers CodeGone).
	Gone  bool   `json:"gone,omitempty"`
	Error string `json:"error,omitempty"`
	// CellsDone counts cells resolved by the current (or last) run,
	// including journal-restored ones; CellsTotal is the job's grid size.
	CellsDone  int    `json:"cells_done"`
	CellsTotal int    `json:"cells_total"`
	Instret    uint64 `json:"instret,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	Evictions  int    `json:"evictions,omitempty"`
	// FabricAddr is the bound coordinator address of a fabric sweep job,
	// once it is listening.
	FabricAddr  string `json:"fabric_addr,omitempty"`
	ResultReady bool   `json:"result_ready"`
}

// JobResult is the persisted result document (result.json): the rendered
// table and the machine-readable bench grid. Under the work metric both
// are byte-identical across restarts, placements, and worker counts.
type JobResult struct {
	Job   string        `json:"job"`
	Kind  string        `json:"kind"`
	Table string        `json:"table,omitempty"`
	Bench expt.BenchOut `json:"bench"`
}

// jobState is the durable job record (job.json), rewritten atomically on
// every state change so a SIGKILLed daemon recovers each job exactly.
type jobState struct {
	ID        string     `json:"id"`
	Tenant    string     `json:"tenant"`
	Req       JobRequest `json:"req"`
	State     string     `json:"state"`
	Error     string     `json:"error,omitempty"`
	Cost      uint64     `json:"cost,omitempty"`
	Instret   uint64     `json:"instret,omitempty"`
	Attempts  int        `json:"attempts,omitempty"`
	Evictions int        `json:"evictions,omitempty"`
	// DoneAtMS stamps when a terminal job settled (unix milliseconds) —
	// the retention sweep's age reference.
	DoneAtMS int64 `json:"done_at_ms,omitempty"`
	// Gone marks the record as a tombstone (tombstone.json): the sweep
	// deleted the job's artifacts and kept only this summary.
	Gone bool `json:"gone,omitempty"`
}

// tombstoneName is the summary record the retention sweep leaves behind in
// an otherwise-emptied job dir.
const tombstoneName = "tombstone.json"

// Job is one admitted job: durable identity plus in-process run state.
type Job struct {
	ID     string
	Tenant string
	req    JobRequest
	dir    string
	cost   uint64
	s      *Server

	// acct is the job's current tenant-ledger bucket (acctQueued …
	// acctTerminal), guarded by Server.mu — never j.mu, so admission
	// accounting and the job's own state machine cannot deadlock.
	acct string

	mu         sync.Mutex
	cond       *sync.Cond
	state      string
	errMsg     string
	gone       bool
	instret    uint64
	doneAt     int64
	cellsDone  int
	attempts   int
	evictions  int
	fabricAddr string
	interrupt  chan struct{}
	evictReq   bool
	// events is the bounded replay ring: base is the seq of events[0],
	// older entries have been dropped.
	base   int
	events []Event
	// final marks the run goroutine's last event as emitted: streams only
	// terminate once the job is at rest AND final is set, so a client can
	// never observe a drained log in the instant between the terminal
	// state transition and the trailing done/error event.
	final bool
}

func newJob(s *Server, id, tenant string, req JobRequest, cost uint64) *Job {
	j := &Job{ID: id, Tenant: tenant, req: req, cost: cost, s: s,
		dir:       filepath.Join(s.stateDir, "jobs", id),
		state:     stateQueued,
		interrupt: make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// loadJob reconstructs a job from its persisted record — job.json, or the
// tombstone a retention sweep left behind.
func loadJob(s *Server, dir string) (*Job, error) {
	b, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if os.IsNotExist(err) {
		b, err = os.ReadFile(filepath.Join(dir, tombstoneName))
	}
	if err != nil {
		return nil, err
	}
	var st jobState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("serve: %s: %w", dir, err)
	}
	if st.ID == "" || st.State == "" {
		return nil, fmt.Errorf("serve: %s: incomplete job record", dir)
	}
	j := newJob(s, st.ID, st.Tenant, st.Req, st.Cost)
	j.state = st.State
	j.errMsg = st.Error
	j.gone = st.Gone
	j.instret = st.Instret
	j.doneAt = st.DoneAtMS
	j.attempts = st.Attempts
	j.evictions = st.Evictions
	if j.state != stateQueued && j.state != stateRunning {
		// At-rest jobs have no run goroutine; streams of their (empty)
		// recovered logs must terminate. recover() rearms resumable ones.
		j.final = true
	}
	return j, nil
}

// stateLocked snapshots the durable record. Caller holds j.mu.
func (j *Job) stateLocked() jobState {
	return jobState{ID: j.ID, Tenant: j.Tenant, Req: j.req, State: j.state,
		Error: j.errMsg, Cost: j.cost, Instret: j.instret,
		Attempts: j.attempts, Evictions: j.evictions,
		DoneAtMS: j.doneAt, Gone: j.gone}
}

// persistLocked writes job.json atomically. Caller holds j.mu.
func (j *Job) persistLocked() {
	st := j.stateLocked()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	tmp := filepath.Join(j.dir, "job.json.tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(j.dir, "job.json"))
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Instret returns the job's settled retired-instruction total.
func (j *Job) Instret() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.instret
}

func (j *Job) setInstret(n uint64) {
	j.mu.Lock()
	j.instret = n
	j.mu.Unlock()
}

func (j *Job) setDoneAt(ms int64) {
	j.mu.Lock()
	j.doneAt = ms
	j.mu.Unlock()
}

// Gone reports whether the retention sweep collected this job's state dir.
func (j *Job) Gone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gone
}

// setState transitions the job, persists the record, and emits a state
// event (plus a terminal error event for failures).
func (j *Job) setState(state string, err error) {
	j.mu.Lock()
	j.state = state
	if err != nil {
		j.errMsg = err.Error()
	}
	j.persistLocked()
	ev := Event{Type: "state", State: state, Error: j.errMsg}
	if state != stateFailed {
		ev.Error = ""
	}
	j.emitLocked(ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// rearm prepares an evicted (or recovered) job for another run attempt.
func (j *Job) rearm() {
	j.mu.Lock()
	j.interrupt = make(chan struct{})
	j.evictReq = false
	j.cellsDone = 0
	j.final = false
	j.mu.Unlock()
}

// finish marks the run goroutine's event emission complete, releasing
// streams to terminate once they drain the log.
func (j *Job) finish() {
	j.mu.Lock()
	j.final = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// requestEvict asks the running attempt to wind down at the next
// cooperative check (the expt guard's chunk boundary).
func (j *Job) requestEvict() {
	j.mu.Lock()
	if !j.evictReq {
		j.evictReq = true
		close(j.interrupt)
	}
	j.mu.Unlock()
}

func (j *Job) evictRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evictReq
}

// waitIdle blocks until the job has no active run attempt.
func (j *Job) waitIdle() {
	j.mu.Lock()
	for j.state == stateQueued || j.state == stateRunning {
		j.cond.Wait()
	}
	j.mu.Unlock()
}

// emitLocked appends one event to the bounded replay ring, dropping the
// oldest entries past the daemon's cap. Caller holds j.mu.
func (j *Job) emitLocked(ev Event) {
	ev.Seq = j.base + len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	if cap := j.s.eventCap; len(j.events) > cap {
		drop := len(j.events) - cap
		j.events = append(j.events[:0:0], j.events[drop:]...)
		j.base += drop
	}
	j.cond.Broadcast()
}

func (j *Job) emit(ev Event) {
	j.mu.Lock()
	j.emitLocked(ev)
	j.mu.Unlock()
}

// emitCell streams one resolved cell (and bumps the per-job progress
// counters). Fired from sweep workers via Config.OnCell — possibly
// concurrently, possibly under engine locks — so it only appends to the
// log.
func (j *Job) emitCell(key string, c expt.Cell) {
	bc := benchCell(c)
	status := "ok"
	if c.Err != nil {
		status = c.Err.Kind.String()
	}
	j.mu.Lock()
	j.cellsDone++
	j.instret += c.Instret
	ev := Event{Type: "cell", Key: key, Cell: &bc, Status: status,
		Restored: c.Restored, CellsDone: j.cellsDone,
		CellsTotal: j.req.cells(), Instret: j.instret}
	j.emitLocked(ev)
	j.mu.Unlock()
}

// emitObs streams a snapshot of the job's metrics registry.
func (j *Job) emitObs(reg *obs.Registry) {
	snap := reg.Snapshot()
	j.emit(Event{Type: "obs", Obs: &snap})
}

func benchCell(c expt.Cell) expt.BenchCell {
	bc := expt.BenchCell{ISA: c.ISA, Buildset: c.Buildset, Backend: c.Backend,
		MIPS: c.MIPS, NsPerInstr: c.NsPerInstr, WorkPerInstr: c.WorkPerInstr,
		Instret: c.Instret, WorkUnits: c.WorkUnits}
	if c.Err != nil {
		bc.Error = c.Err.Error()
	}
	return bc
}

// Events returns the log suffix starting at seq from, blocking up to wait
// for a new event when the log is already drained. next is the next
// sequence to poll from; terminal reports whether the job has reached a
// rest state (done, failed, canceled, shed, or evicted) AND the log is
// drained. Asking for a seq the bounded ring no longer holds returns a
// typed *TruncatedError naming the oldest retained seq.
func (j *Job) Events(from int, wait time.Duration) (evs []Event, next int, terminal bool, err error) {
	deadline := time.Now().Add(wait)
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < j.base {
		return nil, j.base, false, &TruncatedError{ID: j.ID, From: from, Oldest: j.base}
	}
	for j.base+len(j.events) <= from && wait > 0 && time.Now().Before(deadline) {
		// cond has no timed wait; poke the waiter on a timer.
		t := time.AfterFunc(25*time.Millisecond, j.cond.Broadcast)
		j.cond.Wait()
		t.Stop()
	}
	if from < j.base {
		// The ring advanced past the reader while it slept.
		return nil, j.base, false, &TruncatedError{ID: j.ID, From: from, Oldest: j.base}
	}
	end := j.base + len(j.events)
	if from > end {
		from = end
	}
	evs = append(evs, j.events[from-j.base:]...)
	next = from + len(evs)
	resting := j.state != stateQueued && j.state != stateRunning
	return evs, next, resting && j.final && next == end, nil
}

// Status summarizes the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Tenant: j.Tenant, Kind: j.req.Kind, State: j.state,
		Priority: j.req.Priority, Gone: j.gone,
		Error: j.errMsg, CellsDone: j.cellsDone, CellsTotal: j.req.cells(),
		Instret: j.instret, Attempts: j.attempts, Evictions: j.evictions,
		FabricAddr: j.fabricAddr,
	}
	if j.state == stateDone && !j.gone {
		st.ResultReady = true
	}
	return st
}

// Result loads the persisted result document of a done job. A job the
// retention sweep collected answers a typed *GoneError.
func (j *Job) Result() (*JobResult, error) {
	if j.Gone() {
		return nil, &GoneError{ID: j.ID}
	}
	if st := j.State(); st != stateDone {
		return nil, &BadStateError{ID: j.ID, State: st, Op: "fetch result of"}
	}
	b, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		return nil, err
	}
	var res JobResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ManifestPath is where the job's per-run manifest lands once it is done.
func (j *Job) ManifestPath() string { return filepath.Join(j.dir, "manifest.json") }

// jobFingerprint guards the job's resume journal: a recovered job may
// only resume a journal written under the identical measurement
// configuration. Kernel jobs fold their cell selection into the tag.
func jobFingerprint(req JobRequest, cfg expt.Config) string {
	tag := "ssd/table2"
	if req.Kind == "kernel" {
		tag = fmt.Sprintf("ssd/kernel/%s/%s/%s/n=%d", req.ISA, req.Buildset, req.Kernel, req.N)
	}
	return expt.Fingerprint(tag, cfg)
}

// runJob executes one attempt of a job and settles its outcome: done
// (result + manifest persisted), failed, or evicted (journal kept, budget
// reservation held, resumable).
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	j.attempts++
	evictedEarly := j.evictReq
	j.mu.Unlock()
	if evictedEarly {
		s.park(j)
		return
	}
	j.setState(stateRunning, nil)

	fail := func(err error) {
		s.settle(j, stateFailed, 0, err)
		j.emit(Event{Type: "error", Error: err.Error()})
		j.finish()
		s.logf("serve: job %s failed: %v", j.ID, err)
	}
	out, err := s.execute(j)
	if err != nil {
		fail(err)
		return
	}
	if out.interrupted {
		s.park(j)
		return
	}

	res := JobResult{Job: j.ID, Kind: j.req.Kind, Table: out.table, Bench: out.bench}
	if err := writeJSON(filepath.Join(j.dir, "result.json"), res); err != nil {
		fail(err)
		return
	}
	if err := out.manifest.WriteFile(j.ManifestPath()); err != nil {
		fail(err)
		return
	}
	total := out.instret
	for _, c := range out.cells {
		total += c.Instret
	}
	s.settle(j, stateDone, total, nil)
	j.emitObs(out.reg)
	j.emit(Event{Type: "done", Table: out.table, Instret: total,
		CellsDone: out.cellsDone, CellsTotal: j.req.cells()})
	j.finish()
	s.logf("serve: job %s done (%d cells, %d instructions)", j.ID, out.cellsDone, total)
}

// park rests an interrupted job as evicted: journal and checkpoint ring
// stay, the budget reservation and MaxActive slot stay held, Resume or a
// daemon restart continues it.
func (s *Server) park(j *Job) {
	s.mu.Lock()
	s.accountLocked(j, acctEvicted)
	s.mu.Unlock()
	j.mu.Lock()
	j.evictions++
	j.mu.Unlock()
	j.setState(stateEvicted, nil)
	j.finish()
	s.reg.Counter("serve.jobs.evicted").Inc()
	s.logf("serve: job %s evicted (resumable)", j.ID)
}

// runOutput carries one completed attempt's artifacts. Campaign attempts
// fill instret/cellsDone directly (their cells are faultinj results, not
// expt cells); sweep and kernel attempts fill cells.
type runOutput struct {
	cells       []expt.Cell
	cellsDone   int
	instret     uint64
	table       string
	bench       expt.BenchOut
	manifest    *obs.Manifest
	reg         *obs.Registry
	interrupted bool
}

// execute runs one attempt of the job's measurement under its durable
// journal, streaming cells and obs snapshots as they land.
func (s *Server) execute(j *Job) (*runOutput, error) {
	req := j.req
	if req.Kind == "campaign" {
		return s.executeCampaign(j)
	}
	metric, _ := req.metric()
	backend, _ := req.backend()
	reg := obs.NewRegistry()

	minDur := time.Duration(req.MinDurMS) * time.Millisecond
	if minDur <= 0 {
		minDur = time.Millisecond
	}
	scale := req.Scale
	if scale < 1 {
		scale = 1
	}
	j.mu.Lock()
	interrupt := j.interrupt
	attempt := j.attempts
	j.mu.Unlock()

	cfg := expt.Config{
		Scale: scale, MinDur: minDur, Workers: s.cfg.Workers, Metric: metric,
		CellTimeout:  time.Duration(req.CellTimeoutMS) * time.Millisecond,
		MaxCellInstr: req.MaxCellInstr, CkptEvery: req.CkptEvery,
		Interrupt: interrupt, Backend: backend,
		AOTCacheDir: s.aotCache, Obs: reg,
	}
	const obsEvery = 12
	cfg.OnCell = func(key string, c expt.Cell) {
		j.emitCell(key, c)
		if n := j.cellsDoneNow(); n%obsEvery == 0 {
			j.emitObs(reg)
		}
	}

	// Durability: the journal records every deterministic cell outcome; a
	// later attempt reloads them. The fingerprint refuses resuming under a
	// drifted configuration with a typed *expt.FingerprintMismatchError —
	// never a silent recomputation.
	fp := jobFingerprint(req, cfg)
	resume := false
	if _, err := os.Stat(filepath.Join(j.dir, expt.JournalName)); err == nil {
		resume = true
	}
	runID := fmt.Sprintf("%s-a%d", j.ID, attempt)
	jl, err := expt.OpenJournal(j.dir, runID, fp, resume)
	if err != nil {
		return nil, err
	}
	defer jl.Close()
	cfg.Journal = jl

	out := &runOutput{reg: reg}
	var fabricSnap *obs.FabricSnapshot
	switch {
	case req.Kind == "kernel":
		out.cells, err = s.runKernel(j, cfg)
	case req.FabricListen != "":
		out.cells, fabricSnap, err = s.runFabric(j, cfg)
	default:
		out.cells, _, err = expt.TableII(cfg)
	}
	if err != nil {
		return nil, err
	}
	out.cellsDone = len(out.cells)
	for _, c := range out.cells {
		if c.Err != nil && c.Err.Kind == expt.CellInterrupted {
			out.interrupted = true
		}
	}
	if out.interrupted {
		return out, nil
	}

	out.bench = expt.NewBenchOut(cfg, out.cells)
	if req.Kind == "kernel" {
		out.table = kernelTable(req, metric, out.cells).String()
	} else {
		out.table = expt.RenderTableII(cfg, out.cells).String()
	}

	man := obs.NewManifest("ssd")
	man.Flags = reqFlags(j.Tenant, req)
	man.RunID = runID
	man.ParentRunID = jl.ParentRunID()
	man.Cells = expt.Outcomes(out.cells)
	man.CellsRestored, man.CellsComputed = expt.SweepCounts(out.cells)
	man.Fabric = fabricSnap
	man.Metrics = reg.Snapshot()
	out.manifest = man
	return out, nil
}

func (j *Job) cellsDoneNow() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cellsDone
}

// runFabric runs the sweep as a fabric coordinator: cells are leased to
// joined workers and merged back byte-identically.
func (s *Server) runFabric(j *Job, cfg expt.Config) ([]expt.Cell, *obs.FabricSnapshot, error) {
	segDir := filepath.Join(j.dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return nil, nil, err
	}
	coord, err := fabric.NewCoordinator(fabric.Config{
		Addr: j.req.FabricListen, Sweep: cfg,
		SegmentDir: segDir, RunID: j.ID, Log: s.cfg.Log,
	})
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	j.fabricAddr = coord.Addr()
	j.mu.Unlock()
	s.logf("serve: job %s fabric coordinator listening on %s", j.ID, coord.Addr())
	cells, err := coord.Wait()
	if err != nil {
		return nil, nil, err
	}
	return cells, coord.Snapshot(), nil
}

// progressMetaKey carries the serialized mid-kernel progress snapshot
// inside a checkpoint.State ridden through the job's generation ring.
const progressMetaKey = "serve.progress"

// runKernel measures one {ISA, buildset, kernel} cell. Mid-kernel
// progress snapshots ride the checkpoint ring, so an evicted (or
// SIGKILLed) daemon resumes the cell mid-kernel instead of from zero — a
// damaged snapshot is dropped (fabric.snapshot_dropped) and the cell
// restarts from scratch, never half-applied.
func (s *Server) runKernel(j *Job, cfg expt.Config) ([]expt.Cell, error) {
	req := j.req
	backend, _ := req.backend()
	i, err := isa.Load(req.ISA)
	if err != nil {
		return nil, err
	}
	k := kernels.ByName(req.Kernel)
	n := req.N
	if n <= 0 {
		n = k.DefaultN
	}
	if req.Kernel == "listchase" {
		p := 1
		for p < n {
			p <<= 1
		}
		n = p
	}
	prog, err := kernels.BuildProgram(i, k.Build(n))
	if err != nil {
		return nil, err
	}
	progs := &expt.Programs{ISA: i, Progs: []*asm.Program{prog}, Names: []string{req.Kernel}}
	spec := expt.JobSpec{ISA: req.ISA, Buildset: req.Buildset, Backend: backend}
	key := spec.Key()

	if c, ok := cfg.Journal.Lookup(key); ok {
		if cfg.OnCell != nil {
			cfg.OnCell(key, c)
		}
		expt.RecordCells(cfg.Obs, []expt.Cell{c})
		return []expt.Cell{c}, nil
	}

	ring, err := checkpoint.NewRing(filepath.Join(j.dir, "progress"), 3)
	if err != nil {
		return nil, err
	}
	var resume []byte
	if st, _, err := ring.Restore(); err == nil && st != nil {
		resume = st.Meta[progressMetaKey]
	}
	sink := func(b []byte, instret uint64) {
		_, _ = ring.Save(&checkpoint.State{Meta: map[string][]byte{progressMetaKey: b}})
		j.emit(Event{Type: "progress", Key: key, Instret: instret})
	}
	cell, resumed := expt.MeasureSpec(progs, spec, cfg, resume, sink)
	if resumed {
		s.reg.Counter("serve.kernel.resumed_mid_cell").Inc()
	}
	if journalable(cell) {
		_ = cfg.Journal.Record(key, cell)
	}
	if cfg.OnCell != nil {
		cfg.OnCell(key, cell)
	}
	expt.RecordCells(cfg.Obs, []expt.Cell{cell})
	return []expt.Cell{cell}, nil
}

// journalable mirrors the engine's journaling rule: only outcomes a rerun
// reproduces identically are durable.
func journalable(c expt.Cell) bool {
	if c.Err == nil {
		return true
	}
	return c.Err.Kind == expt.CellFailed || c.Err.Kind == expt.CellBudget
}

// kernelTable renders a kernel job's one-row result table.
func kernelTable(req JobRequest, metric expt.Metric, cells []expt.Cell) *stats.Table {
	unit := "MIPS"
	if metric == expt.MetricWork {
		unit = "work/instr"
	}
	t := stats.NewTable("ISA", "Buildset", "Kernel", unit, "instret")
	for _, c := range cells {
		v := any(c.MIPS)
		if metric == expt.MetricWork {
			v = any(c.WorkPerInstr)
		}
		if c.Err != nil {
			v = "ERR:" + c.Err.Kind.String()
		}
		t.Row(c.ISA, c.Buildset, req.Kernel, v, fmt.Sprintf("%d", c.Instret))
	}
	return t
}

// reqFlags renders the request as manifest flags, mirroring ssbench's
// flag map so the two tools' manifests read alike.
func reqFlags(tenant string, r JobRequest) map[string]string {
	f := map[string]string{
		"tenant": tenant, "kind": r.Kind,
		"scale":          fmt.Sprintf("%d", r.Scale),
		"min_dur_ms":     fmt.Sprintf("%d", r.MinDurMS),
		"metric":         r.Metric,
		"backend":        r.Backend,
		"max_cell_instr": fmt.Sprintf("%d", r.MaxCellInstr),
		"ckpt_every":     fmt.Sprintf("%d", r.CkptEvery),
		"priority":       fmt.Sprintf("%d", r.Priority),
	}
	if r.Kind == "kernel" {
		f["isa"], f["buildset"], f["kernel"] = r.ISA, r.Buildset, r.Kernel
		f["n"] = fmt.Sprintf("%d", r.N)
	}
	if r.Kind == "campaign" {
		f["fault_seed"] = fmt.Sprintf("%d", r.FaultSeed)
		f["fault_events"] = fmt.Sprintf("%d", r.FaultEvents)
		f["fault_classes"] = r.FaultClasses
		f["fault_kernels"] = r.FaultKernels
	}
	if r.FabricListen != "" {
		f["fabric_listen"] = r.FabricListen
	}
	return f
}

// writeJSON writes v as indented JSON via temp-and-rename, so readers
// never observe a torn document.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
