package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// JSON-RPC 2.0 error codes. The -32000 block is the server-defined range;
// each daemon condition gets a stable code so clients can branch without
// parsing messages.
const (
	CodeParse          = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeInternal       = -32000
	// CodeRefused carries a *RefusedError as the error data: admission
	// turned the job away (concurrency cap, instruction budget, or an
	// invalid request).
	CodeRefused = -32001
	// CodeUnknownJob: the referenced job id does not exist.
	CodeUnknownJob = -32002
	// CodeBadState: the operation does not apply to the job's state
	// (resuming a running job, fetching the result of a failed one).
	CodeBadState = -32003
	// CodeGone: the job's artifacts were garbage-collected by the
	// retention sweep; only its tombstone (status) survives.
	CodeGone = -32004
	// CodeTruncated: an event-stream replay asked for a seq older than the
	// job's bounded ring; the error data names the oldest retained seq.
	CodeTruncated = -32005
)

type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
	Data    any    `json:"data,omitempty"`
}

type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

// errToRPC maps the daemon's typed errors onto the wire codes.
func errToRPC(err error) *rpcError {
	var refused *RefusedError
	if errors.As(err, &refused) {
		return &rpcError{Code: CodeRefused, Message: refused.Error(), Data: refused}
	}
	var unknown *UnknownJobError
	if errors.As(err, &unknown) {
		return &rpcError{Code: CodeUnknownJob, Message: unknown.Error()}
	}
	var bad *BadStateError
	if errors.As(err, &bad) {
		return &rpcError{Code: CodeBadState, Message: bad.Error()}
	}
	var gone *GoneError
	if errors.As(err, &gone) {
		return &rpcError{Code: CodeGone, Message: gone.Error()}
	}
	var trunc *TruncatedError
	if errors.As(err, &trunc) {
		return &rpcError{Code: CodeTruncated, Message: trunc.Error(),
			Data: map[string]int{"oldest": trunc.Oldest}}
	}
	return &rpcError{Code: CodeInternal, Message: err.Error()}
}

// Handler returns the daemon's HTTP surface:
//
//	POST /rpc              JSON-RPC 2.0 (methods below)
//	GET  /jobs/{id}/stream NDJSON event stream (?from=N replays from seq N)
//	GET  /healthz          liveness probe + per-tenant degradation gauges
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rpc", s.handleRPC)
	mux.HandleFunc("/jobs/", s.handleStream)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Health())
	})
	return mux
}

func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.Method != http.MethodPost {
		w.WriteHeader(http.StatusMethodNotAllowed)
		writeRPC(w, rpcResponse{JSONRPC: "2.0",
			Error: &rpcError{Code: CodeInvalidRequest, Message: "POST only"}})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0",
			Error: &rpcError{Code: CodeParse, Message: err.Error()}})
		return
	}
	var req rpcRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeRPC(w, rpcResponse{JSONRPC: "2.0",
			Error: &rpcError{Code: CodeParse, Message: err.Error()}})
		return
	}
	resp := rpcResponse{JSONRPC: "2.0", ID: req.ID}
	if req.JSONRPC != "2.0" || req.Method == "" {
		resp.Error = &rpcError{Code: CodeInvalidRequest, Message: "want jsonrpc 2.0 with a method"}
		writeRPC(w, resp)
		return
	}
	result, rerr := s.dispatch(req.Method, req.Params)
	if rerr != nil {
		resp.Error = rerr
	} else {
		resp.Result = result
	}
	writeRPC(w, resp)
}

func writeRPC(w io.Writer, resp rpcResponse) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(resp)
}

type submitParams struct {
	Tenant string     `json:"tenant,omitempty"`
	Req    JobRequest `json:"req"`
}

type idParams struct {
	ID string `json:"id"`
}

type listParams struct {
	Tenant string `json:"tenant,omitempty"`
}

// dispatch routes one JSON-RPC method.
func (s *Server) dispatch(method string, raw json.RawMessage) (any, *rpcError) {
	decode := func(v any) *rpcError {
		if len(raw) == 0 {
			return nil
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return &rpcError{Code: CodeInvalidParams, Message: err.Error()}
		}
		return nil
	}
	byID := func(op func(string) error) (any, *rpcError) {
		var p idParams
		if e := decode(&p); e != nil {
			return nil, e
		}
		if err := op(p.ID); err != nil {
			return nil, errToRPC(err)
		}
		j, _ := s.Job(p.ID)
		return j.Status(), nil
	}

	switch method {
	case "ssd.submit":
		var p submitParams
		if e := decode(&p); e != nil {
			return nil, e
		}
		j, err := s.Submit(p.Tenant, p.Req)
		if err != nil {
			return nil, errToRPC(err)
		}
		return j.Status(), nil
	case "ssd.status":
		var p idParams
		if e := decode(&p); e != nil {
			return nil, e
		}
		j, ok := s.Job(p.ID)
		if !ok {
			return nil, errToRPC(&UnknownJobError{ID: p.ID})
		}
		return j.Status(), nil
	case "ssd.list":
		var p listParams
		if e := decode(&p); e != nil {
			return nil, e
		}
		out := []JobStatus{}
		for _, j := range s.Jobs(p.Tenant) {
			out = append(out, j.Status())
		}
		return out, nil
	case "ssd.result":
		var p idParams
		if e := decode(&p); e != nil {
			return nil, e
		}
		j, ok := s.Job(p.ID)
		if !ok {
			return nil, errToRPC(&UnknownJobError{ID: p.ID})
		}
		res, err := j.Result()
		if err != nil {
			return nil, errToRPC(err)
		}
		return res, nil
	case "ssd.evict":
		return byID(s.Evict)
	case "ssd.resume":
		return byID(s.Resume)
	case "ssd.cancel":
		return byID(s.Cancel)
	case "ssd.metrics":
		return s.Metrics(), nil
	default:
		return nil, &rpcError{Code: CodeMethodNotFound,
			Message: fmt.Sprintf("unknown method %q", method)}
	}
}

// handleStream serves GET /jobs/{id}/stream as NDJSON: one Event per
// line, flushed as they land, replayed from ?from=N (default 0), closing
// once the job reaches a rest state and the log is drained — a client
// that reconnects after a daemon restart streams from 0 and sees the
// resumed run's events (journal-restored cells re-fire).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, tail, ok := strings.Cut(rest, "/")
	if !ok || tail != "stream" || r.Method != http.MethodGet {
		http.NotFound(w, r)
		return
	}
	j, found := s.Job(id)
	if !found {
		http.Error(w, fmt.Sprintf(`{"error":"unknown job %s"}`, id), http.StatusNotFound)
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		evs, next, terminal, err := j.Events(from, 2*time.Second)
		var trunc *TruncatedError
		if errors.As(err, &trunc) {
			// The requested replay fell off the bounded ring: one typed
			// "truncated" line tells the client where the ring now starts,
			// then the stream closes.
			_ = enc.Encode(Event{Job: j.ID, Type: "truncated",
				Seq: trunc.From, Code: CodeTruncated, Oldest: trunc.Oldest,
				Error: trunc.Error()})
			return
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		from = next
		if terminal {
			return
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}
