package serve

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitJob polls until the job reaches want, failing on timeout or on a
// different rest state.
func waitJob(t *testing.T, s *Server, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.State()
		if st == want {
			return
		}
		switch st {
		case stateQueued, stateRunning:
		default:
			t.Fatalf("job %s rested as %s (error %q), want %s", id, st, j.Status().Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v, want %s", id, st, timeout, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func mustResult(t *testing.T, s *Server, id string) *JobResult {
	t.Helper()
	j, _ := s.Job(id)
	res, err := j.Result()
	if err != nil {
		t.Fatalf("result of %s: %v", id, err)
	}
	return res
}

// TestKernelJobDeterministicAcrossEvictResume is the daemon's core
// durability contract on the single-cell path: a job evicted mid-cell and
// resumed (checkpoint ring + journal) produces exactly the deterministic
// fields an uninterrupted daemon produces.
func TestKernelJobDeterministicAcrossEvictResume(t *testing.T) {
	req := JobRequest{Kind: "kernel", ISA: "alpha64", Buildset: "one_min",
		Kernel: "fib_iter", N: 2_000_000, Metric: "work", CkptEvery: 100_000}

	// Uninterrupted reference run on its own daemon.
	ref, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rj, err := ref.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ref, rj.ID, stateDone, 120*time.Second)
	want := mustResult(t, ref, rj.ID)

	// Interrupted run: evict once the checkpoint ring holds a snapshot,
	// then resume.
	s, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	ringDir := filepath.Join(s.stateDir, "jobs", j.ID, "progress")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ents, err := os.ReadDir(ringDir); err == nil && len(ents) > 0 {
			break
		}
		if j.State() == stateDone {
			t.Fatalf("job finished before any checkpoint landed; raise N")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint landed in 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Evict(j.ID); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if st := j.State(); st != stateEvicted {
		t.Fatalf("state after evict = %s, want %s", st, stateEvicted)
	}
	if err := s.Resume(j.ID); err != nil {
		t.Fatalf("resume: %v", err)
	}
	waitJob(t, s, j.ID, stateDone, 120*time.Second)
	got := mustResult(t, s, j.ID)

	if len(got.Bench.Cells) != 1 || len(want.Bench.Cells) != 1 {
		t.Fatalf("cells = %d and %d, want 1 and 1", len(got.Bench.Cells), len(want.Bench.Cells))
	}
	g, w := got.Bench.Cells[0], want.Bench.Cells[0]
	if g.Instret != w.Instret || g.WorkUnits != w.WorkUnits || g.WorkPerInstr != w.WorkPerInstr {
		t.Errorf("evict/resume diverged: got instret=%d work=%d wpi=%v, want instret=%d work=%d wpi=%v",
			g.Instret, g.WorkUnits, g.WorkPerInstr, w.Instret, w.WorkUnits, w.WorkPerInstr)
	}
	if got.Table != want.Table {
		t.Errorf("tables differ:\n got %q\nwant %q", got.Table, want.Table)
	}
}

// TestDaemonRestartRecoversJob proves the restart contract in-process: a
// daemon closed mid-job (evicting it) is replaced by a fresh Server on
// the same state dir, which requeues and finishes the job with output
// identical to an uninterrupted run.
func TestDaemonRestartRecoversJob(t *testing.T) {
	req := JobRequest{Kind: "kernel", ISA: "alpha64", Buildset: "one_min",
		Kernel: "fib_iter", N: 2_000_000, Metric: "work", CkptEvery: 100_000}

	ref, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rj, err := ref.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ref, rj.ID, stateDone, 120*time.Second)
	want := mustResult(t, ref, rj.ID)

	dir := t.TempDir()
	s1, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	ringDir := filepath.Join(dir, "jobs", j.ID, "progress")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if ents, err := os.ReadDir(ringDir); err == nil && len(ents) > 0 {
			break
		}
		if j.State() == stateDone {
			t.Fatalf("job finished before any checkpoint landed; raise N")
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint landed in 60s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1.Close() // evicts the running job and drains

	s2, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Metrics().Counters["serve.jobs.recovered"]; n != 1 {
		t.Errorf("serve.jobs.recovered = %d, want 1", n)
	}
	waitJob(t, s2, j.ID, stateDone, 120*time.Second)
	got := mustResult(t, s2, j.ID)
	if got.Table != want.Table {
		t.Errorf("restarted daemon's table differs:\n got %q\nwant %q", got.Table, want.Table)
	}
	g, w := got.Bench.Cells[0], want.Bench.Cells[0]
	if g.Instret != w.Instret || g.WorkUnits != w.WorkUnits || g.WorkPerInstr != w.WorkPerInstr {
		t.Errorf("restart diverged: got instret=%d work=%d, want instret=%d work=%d",
			g.Instret, g.WorkUnits, w.Instret, w.WorkUnits)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", j.ID, "manifest.json")); err != nil {
		t.Errorf("manifest missing after restart: %v", err)
	}
}

// TestTenantConcurrencyRefusal exercises the concurrency gate: one active
// job fills a MaxActive=1 tenant; eviction keeps the slot (the job is
// expected back); only cancellation frees it.
func TestTenantConcurrencyRefusal(t *testing.T) {
	s, err := New(Config{
		StateDir: t.TempDir(),
		Tenants:  map[string]TenantPolicy{"alice": {MaxActive: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	long := JobRequest{Kind: "kernel", ISA: "alpha64", Buildset: "one_min",
		Kernel: "fib_iter", N: 3_000_000, Metric: "work"}
	j, err := s.Submit("alice", long)
	if err != nil {
		t.Fatal(err)
	}

	refuse := func(wantKind string) *RefusedError {
		t.Helper()
		_, err := s.Submit("alice", JobRequest{Kind: "kernel", ISA: "alpha64",
			Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work"})
		var ref *RefusedError
		if !errors.As(err, &ref) {
			t.Fatalf("submit error = %v, want *RefusedError", err)
		}
		if ref.Kind != wantKind {
			t.Fatalf("refusal kind = %q, want %q", ref.Kind, wantKind)
		}
		return ref
	}
	ref := refuse("concurrency")
	if ref.Limit != 1 || ref.InUse != 1 {
		t.Errorf("refusal limit/in_use = %d/%d, want 1/1", ref.Limit, ref.InUse)
	}

	// An evicted job still holds its admission slot.
	if err := s.Evict(j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State() == stateEvicted {
		refuse("concurrency")
	}

	// Cancellation frees it.
	if err := s.Cancel(j.ID); err != nil && j.State() != stateDone {
		t.Fatalf("cancel: %v (state %s)", err, j.State())
	}
	j2, err := s.Submit("alice", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work"})
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	waitJob(t, s, j2.ID, stateDone, 60*time.Second)

	snap := s.Metrics()
	if snap.Counters["serve.jobs.refused.concurrency"] < 1 {
		t.Errorf("serve.jobs.refused.concurrency = %d, want >= 1",
			snap.Counters["serve.jobs.refused.concurrency"])
	}
}

// TestTenantBudgetRefusal exercises the instruction-budget gate:
// budgeted tenants must declare max_cell_instr, reservations are
// worst-case up front, and two tenants' ledgers are independent.
func TestTenantBudgetRefusal(t *testing.T) {
	s, err := New(Config{
		StateDir: t.TempDir(),
		Tenants: map[string]TenantPolicy{
			"bob":   {InstrBudget: 100_000_000},
			"carol": {InstrBudget: 100_000_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	kind := func(err error) string {
		t.Helper()
		var ref *RefusedError
		if !errors.As(err, &ref) {
			t.Fatalf("error = %v, want *RefusedError", err)
		}
		return ref.Kind
	}

	// Budgeted tenants must declare a per-cell cap.
	_, err = s.Submit("bob", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work"})
	if got := kind(err); got != "budget" {
		t.Fatalf("undeclared max_cell_instr refusal kind = %q, want budget", got)
	}

	// A single over-budget reservation is refused outright.
	_, err = s.Submit("bob", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work",
		MaxCellInstr: 200_000_000})
	if got := kind(err); got != "budget" {
		t.Fatalf("over-budget refusal kind = %q, want budget", got)
	}

	// A long-running job reserves 60M; a second 60M reservation busts the
	// 100M budget while the first is still active.
	long, err := s.Submit("bob", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1_500_000, Metric: "work",
		MaxCellInstr: 60_000_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit("bob", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work",
		MaxCellInstr: 60_000_000})
	if got := kind(err); got != "budget" {
		t.Fatalf("reservation-exceeding refusal kind = %q, want budget", got)
	}

	// carol's independent budget admits the same request bob was refused.
	cj, err := s.Submit("carol", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work",
		MaxCellInstr: 60_000_000})
	if err != nil {
		t.Fatalf("carol refused despite independent budget: %v", err)
	}
	waitJob(t, s, cj.ID, stateDone, 60*time.Second)

	// Once bob's job settles, the worst-case reservation is released and
	// only the actual retired total counts against the budget.
	waitJob(t, s, long.ID, stateDone, 120*time.Second)
	after, err := s.Submit("bob", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work",
		MaxCellInstr: 60_000_000})
	if err != nil {
		t.Fatalf("submit after settle: %v", err)
	}
	waitJob(t, s, after.ID, stateDone, 60*time.Second)
}

// TestSweepJobEvictResumeMatchesReference runs the real thing: a full
// Table II sweep job, evicted mid-sweep and resumed, must render the
// byte-identical table an uninterrupted sweep job renders.
func TestSweepJobEvictResumeMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped under -short")
	}
	req := JobRequest{Kind: "sweep", Scale: 1, Metric: "work"}

	ref, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rj, err := ref.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ref, rj.ID, stateDone, 10*time.Minute)
	want := mustResult(t, ref, rj.ID)

	s, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	// Evict once a few cells have resolved. The sweep may win the race and
	// finish first — then the eviction leg degenerates to the plain
	// byte-identity check, which is still the contract under test.
	deadline := time.Now().Add(5 * time.Minute)
	for j.Status().CellsDone < 3 && j.State() == stateRunning || j.State() == stateQueued {
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress in 5 minutes")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if j.State() == stateRunning {
		if err := s.Evict(j.ID); err != nil {
			t.Fatal(err)
		}
		if j.State() == stateEvicted {
			// The engine resolves unmeasured cells as interrupted markers on
			// the way down; at least one must be present (i.e., the sweep
			// really was cut short).
			evs, _, _, _ := j.Events(0, 0)
			cut := 0
			for _, ev := range evs {
				if ev.Type == "cell" && ev.Status == "interrupted" {
					cut++
				}
			}
			if cut == 0 {
				t.Error("evicted sweep carried no interrupted cells")
			}
			if err := s.Resume(j.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitJob(t, s, j.ID, stateDone, 10*time.Minute)
	got := mustResult(t, s, j.ID)

	if got.Table != want.Table {
		t.Errorf("resumed sweep table differs from uninterrupted reference:\n got:\n%s\nwant:\n%s",
			got.Table, want.Table)
	}
	if len(got.Bench.Cells) != len(want.Bench.Cells) {
		t.Fatalf("bench cells = %d, want %d", len(got.Bench.Cells), len(want.Bench.Cells))
	}
	for i := range got.Bench.Cells {
		g, w := got.Bench.Cells[i], want.Bench.Cells[i]
		if g != w && (g.Instret != w.Instret || g.WorkUnits != w.WorkUnits || g.WorkPerInstr != w.WorkPerInstr) {
			t.Errorf("cell %s/%s diverged: got instret=%d work=%d, want instret=%d work=%d",
				g.ISA, g.Buildset, g.Instret, g.WorkUnits, w.Instret, w.WorkUnits)
		}
	}
}

// TestRPCSurface drives the HTTP layer end to end through the Client:
// typed refusals and unknown-job errors map to their JSON-RPC codes, and
// the NDJSON stream replays a completed job's events through "done".
func TestRPCSurface(t *testing.T) {
	s, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := &Client{Addr: strings.TrimPrefix(hs.URL, "http://")}

	// Invalid request → CodeRefused with kind "invalid".
	_, err = c.Submit("", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "no_such_kernel"})
	rpcErr, ok := err.(*RPCError)
	if !ok || rpcErr.Code != CodeRefused {
		t.Fatalf("bad-kernel submit error = %#v, want *RPCError code %d", err, CodeRefused)
	}
	if ref, ok := rpcErr.Refusal(); !ok || ref.Kind != "invalid" {
		t.Fatalf("refusal payload = %+v (ok=%v), want kind invalid", ref, ok)
	}

	// Unknown job → CodeUnknownJob.
	_, err = c.Status("j999999")
	if rpcErr, ok := err.(*RPCError); !ok || rpcErr.Code != CodeUnknownJob {
		t.Fatalf("unknown-job status error = %#v, want code %d", err, CodeUnknownJob)
	}

	// A real job: submit, wait, stream, fetch the result.
	st, err := c.Submit("", JobRequest{Kind: "kernel", ISA: "alpha64",
		Buildset: "one_min", Kernel: "fib_iter", N: 1000, Metric: "work"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitState(st.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != stateDone || !fin.ResultReady {
		t.Fatalf("final status = %+v, want done with result", fin)
	}

	var types []string
	var last Event
	if err := c.Stream(st.ID, 0, func(ev Event) bool {
		types = append(types, ev.Type)
		last = ev
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if last.Type != "done" {
		t.Fatalf("stream ended with %q (sequence %v), want done", last.Type, types)
	}
	sawCell := false
	for _, ty := range types {
		if ty == "cell" {
			sawCell = true
		}
	}
	if !sawCell {
		t.Errorf("stream %v carried no cell event", types)
	}

	res, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == "" || len(res.Bench.Cells) != 1 {
		t.Fatalf("result = table %d bytes, %d cells; want non-empty table, 1 cell",
			len(res.Table), len(res.Bench.Cells))
	}
	if res.Table != last.Table {
		t.Errorf("done-event table differs from result table")
	}

	// Evicting a done job is a typed bad-state error.
	_, err = c.Evict(st.ID)
	if rpcErr, ok := err.(*RPCError); !ok || rpcErr.Code != CodeBadState {
		t.Fatalf("evict-done error = %#v, want code %d", err, CodeBadState)
	}
}
