package serve

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"singlespec/internal/faultinj"
	"singlespec/internal/obs"
)

// campaignReq is the shared small campaign: every class over one kernel.
func campaignReq() JobRequest {
	return JobRequest{Kind: "campaign", FaultSeed: 42, FaultEvents: 2,
		FaultKernels: "crc32"}
}

// campaignWant renders the single-host faultinj.Run reference for
// campaignReq — the byte-identity oracle for every daemon path.
func campaignWant(t *testing.T) string {
	t.Helper()
	req := campaignReq()
	camp, err := req.campaign(obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := faultinj.Run(camp)
	if err != nil {
		t.Fatal(err)
	}
	return rep.String()
}

// TestCampaignJobEvictResumeMatchesReference: a campaign job evicted
// mid-run and resumed finishes with the report byte-identical to a
// single-host faultinj.Run — finished cells restore from the journal, the
// in-flight cell resumes from the checkpoint ring.
func TestCampaignJobEvictResumeMatchesReference(t *testing.T) {
	want := campaignWant(t)
	s, err := New(Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit("", campaignReq())
	if err != nil {
		t.Fatal(err)
	}
	// Evict once a couple of cells resolved; the campaign may win the race
	// and finish first, degenerating to the plain byte-identity check.
	deadline := time.Now().Add(2 * time.Minute)
	for j.Status().CellsDone < 2 && (j.State() == stateRunning || j.State() == stateQueued) {
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress in 2 minutes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if j.State() == stateRunning {
		if err := s.Evict(j.ID); err != nil {
			t.Fatal(err)
		}
		if j.State() == stateEvicted {
			if err := s.Resume(j.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitJob(t, s, j.ID, stateDone, 5*time.Minute)
	got := mustResult(t, s, j.ID)
	if got.Kind != "campaign" {
		t.Errorf("result kind = %q, want campaign", got.Kind)
	}
	if got.Table != want {
		t.Errorf("daemon campaign report differs from faultinj.Run:\nwant:\n%s\ngot:\n%s", want, got.Table)
	}
}

// TestCampaignJobDaemonRestartResumes: a daemon torn down mid-campaign and
// reopened on the same state dir recovers the job, resumes it from the
// journal (never recomputing restored cells), and finishes byte-identical.
func TestCampaignJobDaemonRestartResumes(t *testing.T) {
	want := campaignWant(t)
	dir := t.TempDir()
	s1, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit("", campaignReq())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for j1.Status().CellsDone < 2 && (j1.State() == stateRunning || j1.State() == stateQueued) {
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress in 2 minutes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1.Close()

	s2, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID)
	}
	waitJob(t, s2, j2.ID, stateDone, 5*time.Minute)
	got := mustResult(t, s2, j2.ID)
	if got.Table != want {
		t.Errorf("restarted campaign report differs from faultinj.Run:\nwant:\n%s\ngot:\n%s", want, got.Table)
	}
	if j1.State() != stateDone {
		// The recovered run finished from the first run's journal; had the
		// first daemon somehow finished, this leg proves nothing.
		if snap := s2.Metrics(); snap.Counters["serve.jobs.recovered"] == 0 {
			t.Error("restart recovered no jobs")
		}
	}
}

// quickKernel is a fast kernel job for scheduling tests.
func quickKernel(prio int, maxInstr uint64) JobRequest {
	return JobRequest{Kind: "kernel", ISA: "alpha64", Buildset: "one_min",
		Kernel: "fib_iter", N: 10_000, Metric: "work",
		Priority: prio, MaxCellInstr: maxInstr}
}

// slowKernel is a multi-second kernel job: long enough that evicting it
// mid-run is reliable, the way the scheduling tests pin a MaxActive slot.
func slowKernel(prio int, maxInstr uint64) JobRequest {
	req := quickKernel(prio, maxInstr)
	req.N = 20_000_000
	return req
}

// evictRunning waits for the job to start and parks it evicted: it then
// holds its MaxActive slot (and budget reservation) with no goroutine, so
// queues build up race-free behind it.
func evictRunning(t *testing.T, s *Server, j *Job) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for j.State() == stateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Evict(j.ID); err != nil {
		t.Fatalf("evict: %v", err)
	}
	if st := j.State(); st != stateEvicted {
		t.Fatalf("slot holder rested as %s, want evicted", st)
	}
}

// TestPriorityQueueDispatchOrder: with one MaxActive slot, queued jobs
// dispatch in priority order, not submission order — including across a
// daemon restart, which requeues the backlog most-urgent-first.
func TestPriorityQueueDispatchOrder(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir,
		Tenants: map[string]TenantPolicy{"t": {MaxActive: 1, MaxQueued: -1}}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	holder, err := s.Submit("t", slowKernel(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	evictRunning(t, s, holder)
	low, err := s.Submit("t", quickKernel(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit("t", quickKernel(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if low.State() != stateQueued || high.State() != stateQueued {
		t.Fatalf("queued jobs not queued: low=%s high=%s", low.State(), high.State())
	}
	if h := s.Health(); h.Tenants["t"].Queued != 2 || h.Tenants["t"].Evicted != 1 {
		t.Errorf("health = %+v, want 2 queued, 1 evicted", h.Tenants["t"])
	}

	// Restart: the backlog (evicted holder prio 0, low prio 1, high prio 7)
	// requeues in priority order, so high runs to done first.
	s.Close()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var order []string
	seen := map[string]bool{}
	deadline := time.Now().Add(2 * time.Minute)
	for len(order) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog not drained; completion order so far %v", order)
		}
		for _, id := range []string{holder.ID, low.ID, high.ID} {
			j, ok := s2.Job(id)
			if !ok {
				t.Fatalf("job %s not recovered", id)
			}
			if !seen[id] && j.State() == stateDone {
				seen[id] = true
				order = append(order, id)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := []string{high.ID, low.ID, holder.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v (priority 7, 1, 0)", order, want)
		}
	}
	if snap := s2.Metrics(); snap.Counters["serve.jobs.recovered"] != 3 {
		t.Errorf("serve.jobs.recovered = %d, want 3", snap.Counters["serve.jobs.recovered"])
	}
}

// TestQueueDepthRefusal: MaxQueued bounds the wait queue; past it the
// submit is refused kind "concurrency" with a retry hint.
func TestQueueDepthRefusal(t *testing.T) {
	s, err := New(Config{StateDir: t.TempDir(),
		Tenants: map[string]TenantPolicy{"t": {MaxActive: 1, MaxQueued: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	holder, err := s.Submit("t", slowKernel(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	evictRunning(t, s, holder)
	if _, err := s.Submit("t", quickKernel(0, 0)); err != nil {
		t.Fatalf("first queued submit refused: %v", err)
	}
	_, err = s.Submit("t", quickKernel(0, 0))
	var refused *RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("over-depth submit: want *RefusedError, got %v", err)
	}
	if refused.Kind != "concurrency" {
		t.Errorf("refusal kind = %q, want concurrency", refused.Kind)
	}
	if refused.RetryAfterMS <= 0 {
		t.Errorf("depth refusal carries no retry hint: %+v", refused)
	}
}

// TestBudgetSheddingUnderPressure: budget pressure sheds the
// lowest-priority queued job to admit higher-priority work; an incoming
// job that is itself the lowest priority is refused kind "shed" with a
// retry hint, and one that can never fit is refused kind "budget" with
// none.
func TestBudgetSheddingUnderPressure(t *testing.T) {
	const M = 1_000_000
	s, err := New(Config{StateDir: t.TempDir(),
		Tenants: map[string]TenantPolicy{"t": {MaxActive: 1, MaxQueued: -1, InstrBudget: 300 * M}}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The holder reserves most of the budget (250M of 300M) and parks
	// evicted, creating stable pressure.
	holder, err := s.Submit("t", slowKernel(0, 250*M))
	if err != nil {
		t.Fatal(err)
	}
	evictRunning(t, s, holder)
	low, err := s.Submit("t", quickKernel(1, 30*M)) // 280M reserved
	if err != nil {
		t.Fatalf("low-priority queued submit refused: %v", err)
	}

	// High priority needs 35M: only shedding low (prio 1 < 5) fits it.
	high, err := s.Submit("t", quickKernel(5, 35*M))
	if err != nil {
		t.Fatalf("high-priority submit refused despite sheddable work: %v", err)
	}
	if st := low.State(); st != stateShed {
		t.Fatalf("low-priority job state = %s, want shed", st)
	}
	if high.State() != stateQueued {
		t.Errorf("high-priority job state = %s, want queued", high.State())
	}

	// Incoming low-priority work under the same pressure is shed at the
	// door: it fits an idle budget (retry can help) but nothing below it
	// can be shed.
	_, err = s.Submit("t", quickKernel(0, 30*M))
	var refused *RefusedError
	if !errors.As(err, &refused) {
		t.Fatalf("pressured submit: want *RefusedError, got %v", err)
	}
	if refused.Kind != "shed" || refused.RetryAfterMS <= 0 {
		t.Errorf("pressured refusal = %+v, want kind shed with a retry hint", refused)
	}

	// A job that exceeds the whole budget can never fit: kind budget, no
	// retry hint.
	_, err = s.Submit("t", quickKernel(9, 400*M))
	if !errors.As(err, &refused) {
		t.Fatalf("oversized submit: want *RefusedError, got %v", err)
	}
	if refused.Kind != "budget" || refused.RetryAfterMS != 0 {
		t.Errorf("oversized refusal = %+v, want kind budget with no retry hint", refused)
	}

	h := s.Health()
	if h.Tenants["t"].Shed != 1 {
		t.Errorf("tenant shed gauge = %d, want 1", h.Tenants["t"].Shed)
	}
	snap := s.Metrics()
	if snap.Counters["serve.jobs.shed"] != 1 {
		t.Errorf("serve.jobs.shed = %d, want 1", snap.Counters["serve.jobs.shed"])
	}
	if snap.Counters["serve.jobs.refused.shed"] != 1 {
		t.Errorf("serve.jobs.refused.shed = %d, want 1", snap.Counters["serve.jobs.refused.shed"])
	}
	if snap.Counters["serve.jobs.refused.budget"] != 1 {
		t.Errorf("serve.jobs.refused.budget = %d, want 1", snap.Counters["serve.jobs.refused.budget"])
	}
}

// TestRetentionGCTombstones: the retention sweep reduces old terminal jobs
// to tombstones — status survives (marked gone) across restarts, results
// answer typed *GoneError (CodeGone over RPC).
func TestRetentionGCTombstones(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, Retain: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit("", quickKernel(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, first.ID, stateDone, time.Minute)
	second, err := s.Submit("", quickKernel(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, second.ID, stateDone, time.Minute)

	// The sweep runs just after the settle; give it a beat.
	deadline := time.Now().Add(10 * time.Second)
	for !first.Gone() {
		if time.Now().After(deadline) {
			t.Fatal("retain=1: first job not swept after the second settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var gone *GoneError
	if _, err := first.Result(); !errors.As(err, &gone) {
		t.Fatalf("result of swept job: want *GoneError, got %v", err)
	}
	if _, err := second.Result(); err != nil {
		t.Errorf("retained job's result unavailable: %v", err)
	}
	if snap := s.Metrics(); snap.Counters["serve.gc.swept"] == 0 {
		t.Error("serve.gc.swept not counted")
	}

	// The RPC surface maps the sweep to CodeGone.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := &Client{Addr: hs.Listener.Addr().String()}
	_, err = c.Result(first.ID)
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Code != CodeGone {
		t.Fatalf("ssd.result of swept job: want code %d, got %v", CodeGone, err)
	}
	st, err := c.Status(first.ID)
	if err != nil || !st.Gone {
		t.Errorf("status of swept job: %+v, %v; want gone", st, err)
	}

	// Restart: the tombstone recovers as a gone job, never resumable.
	s.Close()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j2, ok := s2.Job(first.ID)
	if !ok {
		t.Fatal("tombstoned job lost across restart")
	}
	if !j2.Gone() || j2.State() != stateDone {
		t.Errorf("recovered tombstone: gone=%v state=%s, want gone done", j2.Gone(), j2.State())
	}
	if _, err := j2.Result(); !errors.As(err, &gone) {
		t.Errorf("result after restart: want *GoneError, got %v", err)
	}
	if err := s2.Resume(first.ID); !errors.As(err, &gone) {
		t.Errorf("resume of tombstone: want *GoneError, got %v", err)
	}
}

// TestEventRingTruncation: the per-job replay log is a bounded ring; a
// replay older than it answers a typed *TruncatedError naming the oldest
// retained seq, both in-process and as the stream's terminal "truncated"
// event (CodeTruncated).
func TestEventRingTruncation(t *testing.T) {
	s, err := New(Config{StateDir: t.TempDir(), EventBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Frequent checkpoints generate plenty of progress events.
	req := quickKernel(0, 0)
	req.N = 500_000
	req.CkptEvery = 10_000
	j, err := s.Submit("", req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j.ID, stateDone, 2*time.Minute)

	_, _, _, err = j.Events(0, 0)
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("Events(0) on an overflowed ring: want *TruncatedError, got %v", err)
	}
	if trunc.Oldest <= 0 {
		t.Fatalf("truncation names oldest %d, want > 0", trunc.Oldest)
	}
	evs, _, terminal, err := j.Events(trunc.Oldest, 0)
	if err != nil {
		t.Fatalf("Events(oldest): %v", err)
	}
	if len(evs) == 0 || evs[0].Seq != trunc.Oldest || !terminal {
		t.Errorf("ring tail: %d events from seq %d (terminal %v), want suffix from %d",
			len(evs), firstSeq(evs), terminal, trunc.Oldest)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := &Client{Addr: hs.Listener.Addr().String()}
	var last Event
	err = c.Stream(j.ID, 0, func(ev Event) bool { last = ev; return true })
	if !errors.As(err, &trunc) {
		t.Fatalf("stream from 0: want *TruncatedError, got %v", err)
	}
	if last.Type != "truncated" || last.Code != CodeTruncated || last.Oldest != trunc.Oldest {
		t.Errorf("terminal stream event = %+v, want truncated/%d/oldest=%d", last, CodeTruncated, trunc.Oldest)
	}
	// Re-streaming from the hinted seq drains the ring cleanly.
	n := 0
	if err := c.Stream(j.ID, trunc.Oldest, func(Event) bool { n++; return true }); err != nil {
		t.Fatalf("stream from oldest: %v", err)
	}
	if n == 0 {
		t.Error("re-stream from the hint yielded nothing")
	}
}

func firstSeq(evs []Event) int {
	if len(evs) == 0 {
		return -1
	}
	return evs[0].Seq
}
