package serve

// Fault-campaign jobs: the daemon runs a deterministic faultinj campaign
// under the same durability contract as sweeps — every resolved cell is
// journaled through the faultinj wire codec, an evicted or SIGKILLed
// daemon resumes the campaign without recomputing finished cells, and the
// rendered report is byte-identical to a single-host `ssbench -faults` of
// the same configuration. With FabricListen set the job becomes a
// campaign-fabric coordinator: cells are leased to `ssbench -faults -join`
// workers with TTL/heartbeat/takeover guarantees, and the daemon's journal
// makes the distributed campaign durable too.

import (
	"fmt"
	"os"
	"path/filepath"

	"singlespec/internal/checkpoint"
	"singlespec/internal/expt"
	"singlespec/internal/fabric"
	"singlespec/internal/faultinj"
	"singlespec/internal/obs"
)

// campaignCellMetaKey tags the checkpoint ring's mid-cell snapshot with
// the cell it belongs to, so a resumed campaign never applies one cell's
// clean-pass progress to another.
const campaignCellMetaKey = "serve.campaign.cell"

// campaignDurable mirrors the fabric's journaling rule: only outcomes a
// rerun reproduces identically (ok, diverged, error) are durable;
// interrupted and lost cells are recomputed by the next attempt.
func campaignDurable(res faultinj.Result) bool {
	switch faultinj.ResultStatus(res) {
	case "ok", "diverged", "error":
		return true
	}
	return false
}

// emitCampaignCell streams one resolved campaign cell.
func (j *Job) emitCampaignCell(key string, res faultinj.Result, restored bool) {
	j.mu.Lock()
	j.cellsDone++
	j.instret += res.RefInstret
	j.emitLocked(Event{Type: "cell", Key: key,
		Status: faultinj.ResultStatus(res), Restored: restored,
		CellsDone: j.cellsDone, CellsTotal: j.req.cells(), Instret: j.instret})
	j.mu.Unlock()
}

// executeCampaign runs one attempt of a campaign job under its durable
// journal. The settled instruction total is the sum of the cells' clean
// reference retirements — each bounded by the campaign's MaxInstr (the
// request's max_cell_instr) — so the settle never exceeds the admission
// reservation and the tenant's budget cannot over-commit.
func (s *Server) executeCampaign(j *Job) (*runOutput, error) {
	req := j.req
	reg := obs.NewRegistry()
	camp, err := req.campaign(reg)
	if err != nil {
		return nil, err
	}
	camp.Workers = s.cfg.Workers

	j.mu.Lock()
	interrupt := j.interrupt
	attempt := j.attempts
	j.mu.Unlock()

	// Same journal mechanics as sweep jobs, keyed by the campaign
	// fingerprint: a recovered job only resumes cells recorded under the
	// identical campaign.
	fp := "ssd-campaign/" + faultinj.Fingerprint(camp)
	resume := false
	if _, err := os.Stat(filepath.Join(j.dir, expt.JournalName)); err == nil {
		resume = true
	}
	runID := fmt.Sprintf("%s-a%d", j.ID, attempt)
	jl, err := expt.OpenJournal(j.dir, runID, fp, resume)
	if err != nil {
		return nil, err
	}
	defer jl.Close()

	out := &runOutput{reg: reg}
	var rep *faultinj.Report
	var fabricSnap *obs.FabricSnapshot
	if req.FabricListen != "" {
		rep, fabricSnap, err = s.runCampaignFabric(j, camp, jl, interrupt)
	} else {
		rep, err = s.runCampaignLocal(j, camp, jl, reg)
	}
	if err != nil {
		return nil, err
	}
	if rep == nil {
		out.interrupted = true
		return out, nil
	}
	for _, res := range rep.Results {
		if faultinj.ResultStatus(res) == "interrupted" {
			out.interrupted = true
			return out, nil
		}
	}

	for _, res := range rep.Results {
		out.instret += res.RefInstret
	}
	out.cellsDone = len(rep.Results)
	out.table = rep.String()

	man := obs.NewManifest("ssd")
	man.Flags = reqFlags(j.Tenant, req)
	man.RunID = runID
	man.ParentRunID = jl.ParentRunID()
	man.Cells = rep.Outcomes()
	man.CellsRestored = jl.Restored()
	man.CellsComputed = len(rep.Results) - jl.Restored()
	man.Fabric = fabricSnap
	man.Metrics = reg.Snapshot()
	out.manifest = man
	return out, nil
}

// runCampaignFabric runs the campaign as a fabric coordinator: cells are
// leased to joined `ssbench -faults -join` workers and merged back
// byte-identically, with the job's journal making the run durable.
func (s *Server) runCampaignFabric(j *Job, camp faultinj.Config, jl *expt.RunJournal, interrupt <-chan struct{}) (*faultinj.Report, *obs.FabricSnapshot, error) {
	segDir := filepath.Join(j.dir, "segments")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return nil, nil, err
	}
	coord, err := fabric.NewCampaignCoordinator(fabric.CampaignConfig{
		Addr: j.req.FabricListen, Campaign: camp,
		SegmentDir: segDir, RunID: j.ID, Log: s.cfg.Log,
		Journal: jl, Interrupt: interrupt,
		OnCell: func(key string, res faultinj.Result) {
			j.emitCampaignCell(key, res, false)
		},
	})
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	j.fabricAddr = coord.Addr()
	j.mu.Unlock()
	s.logf("serve: job %s campaign coordinator listening on %s", j.ID, coord.Addr())
	rep, err := coord.Wait()
	if err != nil {
		return nil, nil, err
	}
	return rep, coord.Snapshot(), nil
}

// runCampaignLocal runs the campaign's cells in their deterministic order
// on this host. Journaled cells restore instead of recomputing; the
// in-flight cell's clean-pass progress rides the checkpoint ring, so an
// evicted (or SIGKILLed) daemon resumes mid-cell rather than from zero.
// An eviction request between cells returns a nil report (interrupted).
func (s *Server) runCampaignLocal(j *Job, camp faultinj.Config, jl *expt.RunJournal, reg *obs.Registry) (*faultinj.Report, error) {
	ring, err := checkpoint.NewRing(filepath.Join(j.dir, "progress"), 3)
	if err != nil {
		return nil, err
	}
	var rungSnap []byte
	var rungCell string
	if st, _, err := ring.Restore(); err == nil && st != nil {
		rungSnap = st.Meta[progressMetaKey]
		rungCell = string(st.Meta[campaignCellMetaKey])
	}

	specs := faultinj.CampaignCells(camp)
	results := make([]faultinj.Result, 0, len(specs))
	for _, spec := range specs {
		key := spec.Key()
		if raw, ok := jl.LookupRaw(key); ok {
			if res, err := faultinj.DecodeResult(raw); err == nil {
				j.emitCampaignCell(key, res, true)
				results = append(results, res)
				continue
			}
		}
		if j.evictRequested() {
			return nil, nil
		}
		var resume []byte
		if rungCell == key {
			resume = rungSnap
		}
		sink := func(b []byte, instret uint64) {
			_, _ = ring.Save(&checkpoint.State{Meta: map[string][]byte{
				progressMetaKey:     b,
				campaignCellMetaKey: []byte(key),
			}})
			j.emit(Event{Type: "progress", Key: key, Instret: instret})
		}
		res, resumed := faultinj.MeasureCampaignCell(spec, camp, resume, sink, reg)
		if resumed {
			s.reg.Counter("serve.campaign.resumed_mid_cell").Inc()
		}
		if campaignDurable(res) {
			if payload, err := faultinj.EncodeResult(res); err == nil {
				_ = jl.RecordRaw(key, payload)
			}
		}
		j.emitCampaignCell(key, res, false)
		results = append(results, res)
	}
	rep := &faultinj.Report{Seed: camp.Seed, Results: results}
	rep.Record(reg)
	return rep, nil
}
