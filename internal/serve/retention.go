package serve

// Retention/GC: the daemon's state dir is bounded. Terminal jobs (done,
// failed, canceled, shed) past the per-tenant retention count or age are
// swept down to a tombstone record — the job stays queryable (status,
// list) but its artifacts (result, manifest, journal, checkpoint ring,
// segments) are deleted and ssd.result answers a typed CodeGone. Sweeps
// run after every settle and, when an age policy is set, on a background
// ticker; both are idempotent and restart-safe (a recovered tombstone is
// a gone job, never a resumable one).

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// gc applies the retention policy once. Selection happens under the
// admission lock (marking victims gone so concurrent sweeps cannot race);
// file deletion happens outside it.
func (s *Server) gc() {
	retain, age := s.cfg.Retain, s.cfg.RetainAge
	if retain <= 0 && age <= 0 {
		return
	}
	now := time.Now().UnixMilli()
	s.mu.Lock()
	live := map[string][]*Job{}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.acct != acctTerminal {
			continue
		}
		j.mu.Lock()
		gone := j.gone
		j.mu.Unlock()
		if !gone {
			live[j.Tenant] = append(live[j.Tenant], j)
		}
	}
	var sweep []*Job
	for tenant, js := range live {
		// js is oldest-first (admission order); the retention count keeps
		// the newest retain.
		for i, j := range js {
			overCount := retain > 0 && len(js)-i > retain
			overAge := false
			j.mu.Lock()
			if age > 0 && j.doneAt > 0 && now-j.doneAt >= age.Milliseconds() {
				overAge = true
			}
			if overCount || overAge {
				j.gone = true
				sweep = append(sweep, j)
				s.tenant(tenant).gcSwept++
			}
			j.mu.Unlock()
		}
	}
	s.mu.Unlock()
	for _, j := range sweep {
		s.sweepJob(j)
	}
}

// sweepJob replaces a job's state dir with its tombstone: the durable
// record (now marked gone) survives for status queries and restart
// recovery, everything else is deleted. Tombstone-then-delete ordering
// means a crash mid-sweep leaves at worst extra files, never a job with
// no record.
func (s *Server) sweepJob(j *Job) {
	j.mu.Lock()
	st := j.stateLocked()
	j.mu.Unlock()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	tmp := filepath.Join(j.dir, tombstoneName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, tombstoneName)); err != nil {
		return
	}
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if e.Name() == tombstoneName {
			continue
		}
		_ = os.RemoveAll(filepath.Join(j.dir, e.Name()))
	}
	s.reg.Counter("serve.gc.swept").Inc()
	s.reg.Counter("serve.tenant." + j.Tenant + ".gc_swept").Inc()
	s.logf("serve: job %s (tenant %s) swept by retention; tombstone kept", j.ID, j.Tenant)
}

// gcLoop ages jobs out on a ticker while an age policy is set.
func (s *Server) gcLoop() {
	iv := s.cfg.RetainAge / 2
	if iv < 50*time.Millisecond {
		iv = 50 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			s.gc()
		}
	}
}
