// Package serve is the simulation-as-a-service daemon behind cmd/ssd: a
// long-running JSON-RPC-over-HTTP server that accepts sweep and
// single-kernel jobs, streams per-cell results and obs snapshots as they
// land, and answers status queries.
//
// It is a thin orchestration layer over the existing stack, not a fork of
// it: admission control wraps the expt guard (per-tenant concurrency and
// instruction budgets become typed refusals at submit time; per-cell
// budgets stay the guard's typed CellBudget errors), every job shares one
// cross-job AOT build cache (aot.Build's SHA-keyed singleflight makes
// concurrent jobs compile each hot interface once for the fleet), and
// durability reuses the expt resume journal plus the checkpoint ring —
// an evicted or SIGKILLed daemon restarts and finishes every in-flight
// job with byte-identical deterministic output, by the same argument the
// CI kill-resume job proves for ssbench. Sweep jobs run on the single-host
// engine or, when a job asks for a fabric listener, as an
// internal/fabric coordinator — the daemon is the fabric's front door.
package serve

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"singlespec/internal/obs"
)

// TenantPolicy bounds one tenant's use of the daemon.
type TenantPolicy struct {
	// MaxActive caps the tenant's concurrently active (queued, running, or
	// evicted-but-resumable) jobs; 0 means unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// InstrBudget caps the tenant's lifetime simulated instructions across
	// all jobs; 0 means unlimited. Budgeted tenants must declare
	// max_cell_instr on every job: admission reserves
	// max_cell_instr × cells up front and settles to the actual retired
	// total when the job finishes, so a tenant can never over-commit the
	// budget by racing submissions.
	InstrBudget uint64 `json:"instr_budget,omitempty"`
}

// RefusedError is a typed admission refusal. It travels to clients as
// JSON-RPC error code CodeRefused with this struct as the error data.
type RefusedError struct {
	// Kind is "concurrency", "budget", or "invalid".
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	// Limit and InUse quantify the refusal: active-job counts for
	// "concurrency", instructions for "budget"; zero for "invalid".
	Limit  uint64 `json:"limit,omitempty"`
	InUse  uint64 `json:"in_use,omitempty"`
	Reason string `json:"reason"`
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("serve: tenant %s refused (%s): %s", e.Tenant, e.Kind, e.Reason)
}

// Config configures a Server.
type Config struct {
	// StateDir is the daemon's durable root: per-job directories (journal,
	// checkpoint ring, results, manifest) live under it, and a restarted
	// daemon recovers every job from it. Empty uses a temporary directory
	// (jobs then do not survive the process).
	StateDir string
	// AOTCacheDir is the shared cross-job AOT build cache; empty uses
	// StateDir/aot-cache. Every job's expt.Config points here, so
	// aot.Build's SHA-keyed singleflight compiles each (ISA, buildset)
	// runner once for the whole fleet.
	AOTCacheDir string
	// DefaultPolicy applies to tenants not listed in Tenants. The zero
	// value is unlimited.
	DefaultPolicy TenantPolicy
	// Tenants holds per-tenant overrides.
	Tenants map[string]TenantPolicy
	// Workers is the per-job sweep worker-pool size; <= 0 lets the engine
	// pick (runtime.NumCPU).
	Workers int
	// Obs receives daemon-wide serve.* counters; nil allocates an internal
	// registry. Per-job measurement counters go to per-job registries (so
	// each job's manifest keeps ssbench's determinism contract), not here.
	Obs *obs.Registry
	// Log, when non-nil, receives one-line operational events.
	Log func(format string, args ...any)
}

// Server is the daemon: jobs, tenants, and the HTTP surface.
type Server struct {
	cfg      Config
	stateDir string
	aotCache string
	reg      *obs.Registry

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job ids in admission order
	tenants map[string]*tenantState
	seq     int
	closed  bool
	// running tracks live job goroutines for Close's drain.
	running sync.WaitGroup
}

// tenantState is the admission ledger for one tenant.
type tenantState struct {
	// active counts queued + running + evicted (resumable) jobs.
	active int
	// reserved is the instruction budget held by active jobs
	// (max_cell_instr × cells each); spent is the settled retired total of
	// finished jobs. reserved+spent never exceeds the policy budget.
	reserved uint64
	spent    uint64
}

// New creates the server and recovers every job found under
// cfg.StateDir: terminal jobs become queryable again (results served from
// disk), interrupted ones are requeued and resume from their journals.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		jobs:    map[string]*Job{},
		tenants: map[string]*tenantState{},
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.stateDir = cfg.StateDir
	if s.stateDir == "" {
		d, err := os.MkdirTemp("", "ssd-state-")
		if err != nil {
			return nil, err
		}
		s.stateDir = d
	}
	if err := os.MkdirAll(filepath.Join(s.stateDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s.aotCache = cfg.AOTCacheDir
	if s.aotCache == "" {
		s.aotCache = filepath.Join(s.stateDir, "aot-cache")
	}
	if err := os.MkdirAll(s.aotCache, 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// policy returns the effective policy for a tenant.
func (s *Server) policy(tenant string) TenantPolicy {
	if p, ok := s.cfg.Tenants[tenant]; ok {
		return p
	}
	return s.cfg.DefaultPolicy
}

func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{}
		s.tenants[name] = t
	}
	return t
}

// admit runs admission control for one job request under s.mu: the
// concurrency gate first, then the instruction-budget gate. The returned
// cost is the budget reservation (0 for unbudgeted tenants).
func (s *Server) admitLocked(tenant string, req *JobRequest) (cost uint64, err *RefusedError) {
	pol := s.policy(tenant)
	ts := s.tenant(tenant)
	if pol.MaxActive > 0 && ts.active >= pol.MaxActive {
		return 0, &RefusedError{Kind: "concurrency", Tenant: tenant,
			Limit: uint64(pol.MaxActive), InUse: uint64(ts.active),
			Reason: fmt.Sprintf("%d active job(s) at the tenant's limit of %d; wait for one to finish or evict it",
				ts.active, pol.MaxActive)}
	}
	if pol.InstrBudget > 0 {
		if req.MaxCellInstr == 0 {
			return 0, &RefusedError{Kind: "budget", Tenant: tenant,
				Limit: pol.InstrBudget, InUse: ts.reserved + ts.spent,
				Reason: "budgeted tenants must declare max_cell_instr so admission can reserve the job's worst-case cost"}
		}
		cost = req.MaxCellInstr * uint64(req.cells())
		if ts.reserved+ts.spent+cost > pol.InstrBudget {
			return 0, &RefusedError{Kind: "budget", Tenant: tenant,
				Limit: pol.InstrBudget, InUse: ts.reserved + ts.spent,
				Reason: fmt.Sprintf("job would reserve %d instructions (%d cells × %d) against %d remaining",
					cost, req.cells(), req.MaxCellInstr, pol.InstrBudget-ts.reserved-ts.spent)}
		}
	}
	return cost, nil
}

// Submit admits and starts one job. The *RefusedError return carries typed
// admission refusals; other errors are validation or persistence failures.
func (s *Server) Submit(tenant string, req JobRequest) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	cost, refused := s.admitLocked(tenant, &req)
	if refused != nil {
		s.mu.Unlock()
		s.reg.Counter("serve.jobs.refused." + refused.Kind).Inc()
		return nil, refused
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(s, id, tenant, req, cost)
	s.jobs[id] = j
	s.order = append(s.order, id)
	ts := s.tenant(tenant)
	ts.active++
	ts.reserved += cost
	s.mu.Unlock()

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.settle(j, stateFailed, 0, err)
		return nil, err
	}
	j.setState(stateQueued, nil)
	s.reg.Counter("serve.jobs.submitted").Inc()
	s.logf("serve: job %s (%s, tenant %s) admitted", id, req.Kind, tenant)
	s.start(j)
	return j, nil
}

// start launches a job's run goroutine.
func (s *Server) start(j *Job) {
	s.running.Add(1)
	go func() {
		defer s.running.Done()
		s.runJob(j)
	}()
}

// settle moves a job to a terminal-or-evicted state and updates the
// tenant ledger: evicted jobs stay active (they hold their reservation —
// they are expected to resume); terminal jobs release the reservation and
// settle the actual retired total against the budget.
func (s *Server) settle(j *Job, state string, instret uint64, err error) {
	s.mu.Lock()
	ts := s.tenant(j.Tenant)
	if state != stateEvicted {
		ts.active--
		ts.reserved -= j.cost
		ts.spent += instret
	}
	s.mu.Unlock()
	j.setInstret(instret)
	j.setState(state, err)
	s.reg.Counter("serve.jobs." + state).Inc()
}

// Resume requeues an evicted job; it continues from its journal (and, for
// kernel jobs, its checkpoint ring) rather than recomputing finished work.
func (s *Server) Resume(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return &UnknownJobError{ID: id}
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server is shutting down")
	}
	if st := j.State(); st != stateEvicted {
		s.mu.Unlock()
		return &BadStateError{ID: id, State: st, Op: "resume"}
	}
	j.rearm()
	s.mu.Unlock()
	j.setState(stateQueued, nil)
	s.reg.Counter("serve.jobs.resumed").Inc()
	s.start(j)
	return nil
}

// Evict interrupts a running job and parks it as evicted: its journal and
// checkpoint ring stay on disk, its budget reservation stays held, and
// Resume (or a daemon restart) finishes it with byte-identical output.
func (s *Server) Evict(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return &UnknownJobError{ID: id}
	}
	switch j.State() {
	case stateQueued, stateRunning:
	default:
		return &BadStateError{ID: id, State: j.State(), Op: "evict"}
	}
	j.requestEvict()
	j.waitIdle()
	if st := j.State(); st != stateEvicted {
		// The job won the race and finished before the interrupt landed;
		// that is success, not an eviction failure.
		s.logf("serve: evict %s: job finished first (%s)", id, st)
	}
	return nil
}

// Cancel terminally abandons a job: a running one is interrupted first,
// then the reservation is released and the job will not resume.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return &UnknownJobError{ID: id}
	}
	switch j.State() {
	case stateQueued, stateRunning:
		j.requestEvict()
		j.waitIdle()
	}
	switch j.State() {
	case stateEvicted:
		s.settle(j, stateCanceled, 0, nil)
		return nil
	case stateCanceled:
		return nil
	default:
		return &BadStateError{ID: id, State: j.State(), Op: "cancel"}
	}
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in admission order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant == "" || j.Tenant == tenant {
			out = append(out, j)
		}
	}
	return out
}

// Metrics snapshots the daemon-wide registry.
func (s *Server) Metrics() obs.Snapshot { return s.reg.Snapshot() }

// Close winds the daemon down for restart: every running job is evicted
// (journal flushed, state persisted) and the job goroutines are drained.
// A subsequent New on the same state dir resumes them.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case stateQueued, stateRunning:
			j.requestEvict()
		}
	}
	s.running.Wait()
}

// recover scans the state dir and re-registers every persisted job.
// Terminal jobs are loaded for queries; non-terminal ones (queued,
// running, or evicted at the moment the previous daemon died) are
// requeued and resume from their journals.
func (s *Server) recover() error {
	root := filepath.Join(s.stateDir, "jobs")
	ents, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var requeue []*Job
	for _, name := range names {
		j, err := loadJob(s, filepath.Join(root, name))
		if err != nil {
			s.logf("serve: skipping unrecoverable job dir %s: %v", name, err)
			continue
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n := seqOf(j.ID); n > s.seq {
			s.seq = n
		}
		ts := s.tenant(j.Tenant)
		switch j.State() {
		case stateDone, stateFailed, stateCanceled:
			ts.spent += j.Instret()
		default:
			// The job was in flight (or parked evicted) when the previous
			// daemon died: it keeps its admission slot and reservation and
			// resumes from its journal.
			ts.active++
			ts.reserved += j.cost
			j.rearm()
			requeue = append(requeue, j)
		}
	}
	for _, j := range requeue {
		j.setState(stateQueued, nil)
		s.reg.Counter("serve.jobs.recovered").Inc()
		s.logf("serve: recovered job %s (tenant %s), resuming", j.ID, j.Tenant)
		s.start(j)
	}
	return nil
}

// seqOf parses the numeric suffix of a job id ("j000042" → 42); 0 when
// the id is not in the daemon's format.
func seqOf(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// ListenAndServe binds addr and serves the HTTP API until the listener
// fails. Serve-on-listener is split out so cmd/ssd can report the bound
// address before blocking.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves the HTTP API on an existing listener.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	return srv.Serve(ln)
}
