// Package serve is the simulation-as-a-service daemon behind cmd/ssd: a
// long-running JSON-RPC-over-HTTP server that accepts sweep, kernel, and
// fault-campaign jobs, streams per-cell results and obs snapshots as they
// land, and answers status queries.
//
// It is a thin orchestration layer over the existing stack, not a fork of
// it: admission control wraps the expt guard (per-tenant concurrency and
// instruction budgets become typed refusals at submit time; per-cell
// budgets stay the guard's typed CellBudget errors), every job shares one
// cross-job AOT build cache (aot.Build's SHA-keyed singleflight makes
// concurrent jobs compile each hot interface once for the fleet), and
// durability reuses the expt resume journal plus the checkpoint ring —
// an evicted or SIGKILLed daemon restarts and finishes every in-flight
// job with byte-identical deterministic output, by the same argument the
// CI kill-resume job proves for ssbench. Sweep and campaign jobs run on
// the single-host engine or, when a job asks for a fabric listener, as an
// internal/fabric coordinator — the daemon is the fabric's front door.
//
// Admission degrades gracefully rather than start-or-refuse: jobs carry a
// priority (0–9, higher is more urgent) and tenants with a queue depth
// (MaxQueued) park excess submissions in a weighted-FIFO queue instead of
// refusing them. Budget pressure sheds the lowest-priority queued jobs
// first (typed RefusedError kind "shed" with a retry_after_ms hint), and
// a retention/GC pass sweeps terminal jobs' state dirs down to tombstone
// records so the daemon's disk use is bounded.
package serve

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"singlespec/internal/obs"
)

// TenantPolicy bounds one tenant's use of the daemon.
type TenantPolicy struct {
	// MaxActive caps the tenant's concurrently active (running or
	// evicted-but-resumable) jobs; 0 means unlimited. An evicted job keeps
	// its slot — it is expected back.
	MaxActive int `json:"max_active,omitempty"`
	// InstrBudget caps the tenant's lifetime simulated instructions across
	// all jobs; 0 means unlimited. Budgeted tenants must declare
	// max_cell_instr on every job: admission reserves
	// max_cell_instr × cells up front and settles to the actual retired
	// total when the job finishes, so a tenant can never over-commit the
	// budget by racing submissions.
	InstrBudget uint64 `json:"instr_budget,omitempty"`
	// MaxQueued selects the admission posture when every MaxActive slot is
	// taken: 0 refuses outright (start-or-refuse), N > 0 queues up to N
	// jobs in weighted-FIFO priority order, and -1 queues without bound.
	MaxQueued int `json:"max_queued,omitempty"`
}

// queueing reports whether the policy parks excess jobs instead of
// refusing them.
func (p TenantPolicy) queueing() bool { return p.MaxQueued != 0 }

// RefusedError is a typed admission refusal. It travels to clients as
// JSON-RPC error code CodeRefused with this struct as the error data.
type RefusedError struct {
	// Kind is "concurrency", "budget", "shed", or "invalid".
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"`
	// Limit and InUse quantify the refusal: active-job counts for
	// "concurrency", instructions for "budget" and "shed"; zero for
	// "invalid".
	Limit  uint64 `json:"limit,omitempty"`
	InUse  uint64 `json:"in_use,omitempty"`
	Reason string `json:"reason"`
	// RetryAfterMS hints when the pressure behind a "concurrency",
	// "budget", or "shed" refusal is likely to ease (active work draining);
	// 0 means retrying will not help (the request can never fit).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("serve: tenant %s refused (%s): %s", e.Tenant, e.Kind, e.Reason)
}

// Config configures a Server.
type Config struct {
	// StateDir is the daemon's durable root: per-job directories (journal,
	// checkpoint ring, results, manifest) live under it, and a restarted
	// daemon recovers every job from it. Empty uses a temporary directory
	// (jobs then do not survive the process).
	StateDir string
	// AOTCacheDir is the shared cross-job AOT build cache; empty uses
	// StateDir/aot-cache. Every job's expt.Config points here, so
	// aot.Build's SHA-keyed singleflight compiles each (ISA, buildset)
	// runner once for the whole fleet.
	AOTCacheDir string
	// DefaultPolicy applies to tenants not listed in Tenants. The zero
	// value is unlimited.
	DefaultPolicy TenantPolicy
	// Tenants holds per-tenant overrides.
	Tenants map[string]TenantPolicy
	// Workers is the per-job sweep worker-pool size; <= 0 lets the engine
	// pick (runtime.NumCPU).
	Workers int
	// Retain keeps at most this many terminal jobs' state dirs per tenant;
	// older ones are swept down to tombstone records. 0 retains everything.
	Retain int
	// RetainAge sweeps terminal jobs older than this (measured from the
	// moment they settled). 0 retains regardless of age.
	RetainAge time.Duration
	// EventBuffer bounds each job's in-memory NDJSON replay log; older
	// events fall off the ring and ?from=N beyond them answers a typed
	// truncation. <= 0 uses 4096.
	EventBuffer int
	// Obs receives daemon-wide serve.* counters; nil allocates an internal
	// registry. Per-job measurement counters go to per-job registries (so
	// each job's manifest keeps ssbench's determinism contract), not here.
	Obs *obs.Registry
	// Log, when non-nil, receives one-line operational events.
	Log func(format string, args ...any)
}

// Server is the daemon: jobs, tenants, and the HTTP surface.
type Server struct {
	cfg      Config
	stateDir string
	aotCache string
	eventCap int
	reg      *obs.Registry

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // job ids in admission order
	queue   []string // waiting job ids, priority-descending then FIFO
	tenants map[string]*tenantState
	seq     int
	closed  bool
	// running tracks live job goroutines for Close's drain.
	running sync.WaitGroup
	gcStop  chan struct{}
	gcOnce  sync.Once
}

// tenantState is the admission ledger for one tenant.
type tenantState struct {
	// Per-state job counts, maintained by accountLocked. An evicted job
	// holds its MaxActive slot (it is expected back); a queued one does
	// not — it only occupies queue depth.
	queued, runningN, evicted int
	// reserved is the instruction budget held by admitted (queued, running,
	// or evicted) jobs (max_cell_instr × cells each); spent is the settled
	// retired total of finished jobs. reserved+spent never exceeds the
	// policy budget.
	reserved uint64
	spent    uint64
	// shed and gcSwept are lifetime degradation counters, surfaced per
	// tenant in /healthz and the serve.* registry.
	shed    uint64
	gcSwept uint64
}

// New creates the server and recovers every job found under
// cfg.StateDir: terminal jobs become queryable again (results served from
// disk), interrupted ones are requeued in priority order and resume from
// their journals.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		jobs:    map[string]*Job{},
		tenants: map[string]*tenantState{},
		gcStop:  make(chan struct{}),
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.eventCap = cfg.EventBuffer
	if s.eventCap <= 0 {
		s.eventCap = 4096
	}
	s.stateDir = cfg.StateDir
	if s.stateDir == "" {
		d, err := os.MkdirTemp("", "ssd-state-")
		if err != nil {
			return nil, err
		}
		s.stateDir = d
	}
	if err := os.MkdirAll(filepath.Join(s.stateDir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s.aotCache = cfg.AOTCacheDir
	if s.aotCache == "" {
		s.aotCache = filepath.Join(s.stateDir, "aot-cache")
	}
	if err := os.MkdirAll(s.aotCache, 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.gc()
	if cfg.RetainAge > 0 {
		go s.gcLoop()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// policy returns the effective policy for a tenant.
func (s *Server) policy(tenant string) TenantPolicy {
	if p, ok := s.cfg.Tenants[tenant]; ok {
		return p
	}
	return s.cfg.DefaultPolicy
}

func (s *Server) tenant(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{}
		s.tenants[name] = t
	}
	return t
}

// accountLocked moves a job between the tenant ledger's per-state buckets.
// j.acct is the job's last accounted bucket ("" for a brand-new job);
// "terminal" is the sink. Caller holds s.mu.
func (s *Server) accountLocked(j *Job, to string) {
	ts := s.tenant(j.Tenant)
	switch j.acct {
	case acctQueued:
		ts.queued--
	case acctRunning:
		ts.runningN--
	case acctEvicted:
		ts.evicted--
	}
	switch to {
	case acctQueued:
		ts.queued++
	case acctRunning:
		ts.runningN++
	case acctEvicted:
		ts.evicted++
	}
	j.acct = to
}

const (
	acctQueued   = "queued"
	acctRunning  = "running"
	acctEvicted  = "evicted"
	acctTerminal = "terminal"
)

// retryHint estimates when a refused submission is worth retrying: one
// second per admitted job ahead of it, floor one second.
func retryHint(ts *tenantState) int64 {
	ahead := ts.runningN + ts.evicted + ts.queued
	if ahead < 1 {
		ahead = 1
	}
	return int64(ahead) * 1000
}

// admitLocked runs admission control for one job request under s.mu: the
// concurrency/queue gate first, then the instruction-budget gate (which
// may shed queued lower-priority jobs under pressure). The returned cost
// is the budget reservation (0 for unbudgeted tenants); shed lists jobs
// the caller must finalize as shed once s.mu is released.
func (s *Server) admitLocked(tenant string, req *JobRequest) (cost uint64, shed []*Job, err *RefusedError) {
	pol := s.policy(tenant)
	ts := s.tenant(tenant)
	occupied := ts.runningN + ts.evicted
	if pol.MaxActive > 0 && occupied >= pol.MaxActive {
		if !pol.queueing() {
			return 0, nil, &RefusedError{Kind: "concurrency", Tenant: tenant,
				Limit: uint64(pol.MaxActive), InUse: uint64(occupied),
				RetryAfterMS: retryHint(ts),
				Reason: fmt.Sprintf("%d active job(s) at the tenant's limit of %d; wait for one to finish or evict it",
					occupied, pol.MaxActive)}
		}
		if pol.MaxQueued > 0 && ts.queued >= pol.MaxQueued {
			return 0, nil, &RefusedError{Kind: "concurrency", Tenant: tenant,
				Limit: uint64(pol.MaxQueued), InUse: uint64(ts.queued),
				RetryAfterMS: retryHint(ts),
				Reason: fmt.Sprintf("queue depth %d at the tenant's cap of %d; retry after the hint or raise the job's priority",
					ts.queued, pol.MaxQueued)}
		}
	}
	if pol.InstrBudget > 0 {
		if req.MaxCellInstr == 0 {
			return 0, nil, &RefusedError{Kind: "budget", Tenant: tenant,
				Limit: pol.InstrBudget, InUse: ts.reserved + ts.spent,
				Reason: "budgeted tenants must declare max_cell_instr so admission can reserve the job's worst-case cost"}
		}
		cost = req.MaxCellInstr * uint64(req.cells())
		if ts.reserved+ts.spent+cost > pol.InstrBudget {
			// Shed only when shedding can actually admit the request:
			// releasing every lower-priority queued reservation must make it
			// fit, or queued work would be dropped for a job that is refused
			// anyway.
			if pol.queueing() && ts.reserved+ts.spent+cost-s.sheddableLocked(tenant, req.Priority) <= pol.InstrBudget {
				shed = s.shedForLocked(tenant, ts, pol, req.Priority, cost)
			}
			if ts.reserved+ts.spent+cost > pol.InstrBudget {
				kind := "budget"
				retry := int64(0)
				if ts.spent+cost <= pol.InstrBudget {
					// The request fits an idle budget: pressure from admitted
					// work is the obstacle, so retrying (or outranking the
					// queue) can succeed later.
					retry = retryHint(ts)
					if pol.queueing() {
						// Under a queueing policy the incoming job itself is
						// the lowest-priority work under pressure: it is shed
						// at the door rather than parked to be shed next.
						kind = "shed"
					}
				}
				return 0, shed, &RefusedError{Kind: kind, Tenant: tenant,
					Limit: pol.InstrBudget, InUse: ts.reserved + ts.spent,
					RetryAfterMS: retry,
					Reason: fmt.Sprintf("job would reserve %d instructions (%d cells × %d) against %d remaining",
						cost, req.cells(), req.MaxCellInstr, pol.InstrBudget-ts.reserved-ts.spent)}
			}
		}
	}
	return cost, shed, nil
}

// sheddableLocked sums the budget reservations of the tenant's queued
// jobs with priority strictly below prio — the most shedding could free.
func (s *Server) sheddableLocked(tenant string, prio int) uint64 {
	var total uint64
	for _, id := range s.queue {
		if j := s.jobs[id]; j.Tenant == tenant && j.req.Priority < prio {
			total += j.cost
		}
	}
	return total
}

// shedForLocked releases queued jobs of the tenant with priority strictly
// below prio — lowest priority first, newest first within a priority —
// until the incoming reservation fits. The shed jobs are removed from the
// queue and their ledgers settled here; the caller finalizes their state
// once s.mu is released.
func (s *Server) shedForLocked(tenant string, ts *tenantState, pol TenantPolicy, prio int, cost uint64) []*Job {
	type cand struct {
		j   *Job
		pos int
	}
	var cands []cand
	for pos, id := range s.queue {
		j := s.jobs[id]
		if j.Tenant == tenant && j.req.Priority < prio {
			cands = append(cands, cand{j, pos})
		}
	}
	// Lowest priority first; newest first within a priority (the most
	// recently queued lowest-priority work is the cheapest to give up).
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].j.req.Priority != cands[b].j.req.Priority {
			return cands[a].j.req.Priority < cands[b].j.req.Priority
		}
		return seqOf(cands[a].j.ID) > seqOf(cands[b].j.ID)
	})
	var shed []*Job
	for _, c := range cands {
		if ts.reserved+ts.spent+cost <= pol.InstrBudget {
			break
		}
		s.removeFromQueueLocked(c.j.ID)
		s.accountLocked(c.j, acctTerminal)
		ts.reserved -= c.j.cost
		ts.shed++
		shed = append(shed, c.j)
	}
	return shed
}

func (s *Server) removeFromQueueLocked(id string) bool {
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// enqueueLocked inserts a job into the wait queue in weighted-FIFO order:
// priority descending, admission order within a priority.
func (s *Server) enqueueLocked(j *Job) {
	pos := len(s.queue)
	for i, id := range s.queue {
		if s.jobs[id].req.Priority < j.req.Priority {
			pos = i
			break
		}
	}
	s.queue = append(s.queue, "")
	copy(s.queue[pos+1:], s.queue[pos:])
	s.queue[pos] = j.ID
	s.accountLocked(j, acctQueued)
	s.reg.Counter("serve.queue.enqueued").Inc()
	s.reg.Counter("serve.tenant." + j.Tenant + ".enqueued").Inc()
}

// dispatchLocked starts every queued job whose tenant has a free
// MaxActive slot, in queue (priority) order. Returns the jobs to start;
// the caller launches them once s.mu is released.
func (s *Server) dispatchLocked() []*Job {
	if s.closed {
		return nil
	}
	var started []*Job
	for i := 0; i < len(s.queue); {
		j := s.jobs[s.queue[i]]
		pol := s.policy(j.Tenant)
		ts := s.tenant(j.Tenant)
		if pol.MaxActive > 0 && ts.runningN+ts.evicted >= pol.MaxActive {
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.accountLocked(j, acctRunning)
		s.reg.Counter("serve.queue.dispatched").Inc()
		started = append(started, j)
	}
	return started
}

// Submit admits one job: it starts immediately when its tenant has a free
// slot, waits in the priority queue when the policy allows queueing, and
// is otherwise refused. The *RefusedError return carries typed admission
// refusals; other errors are validation or persistence failures.
func (s *Server) Submit(tenant string, req JobRequest) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: server is shutting down")
	}
	cost, shedJobs, refused := s.admitLocked(tenant, &req)
	if refused != nil {
		s.mu.Unlock()
		s.finalizeShed(shedJobs)
		s.reg.Counter("serve.jobs.refused." + refused.Kind).Inc()
		return nil, refused
	}
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := newJob(s, id, tenant, req, cost)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.tenant(tenant).reserved += cost
	s.enqueueLocked(j)
	started := s.dispatchLocked()
	s.mu.Unlock()
	s.finalizeShed(shedJobs)

	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		// started can only contain j itself here (no slot was freed), so
		// settling it is the whole cleanup.
		s.settle(j, stateFailed, 0, err)
		j.finish()
		return nil, err
	}
	j.setState(stateQueued, nil)
	s.reg.Counter("serve.jobs.submitted").Inc()
	s.logf("serve: job %s (%s, tenant %s, priority %d) admitted", id, req.Kind, tenant, req.Priority)
	for _, sj := range started {
		s.start(sj)
	}
	return j, nil
}

// finalizeShed records the terminal outcome of jobs admitLocked shed
// (their ledgers are already settled): state "shed" with the typed
// refusal as the job error, so pollers and streams see why.
func (s *Server) finalizeShed(jobs []*Job) {
	for _, j := range jobs {
		ref := &RefusedError{Kind: "shed", Tenant: j.Tenant,
			RetryAfterMS: 1000,
			Reason:       fmt.Sprintf("queued job %s (priority %d) shed under budget pressure from higher-priority work; resubmit after the hint", j.ID, j.req.Priority)}
		j.setState(stateShed, ref)
		j.emit(Event{Type: "error", Error: ref.Error(), Code: CodeRefused})
		j.finish()
		s.reg.Counter("serve.jobs.shed").Inc()
		s.reg.Counter("serve.tenant." + j.Tenant + ".shed").Inc()
		s.logf("serve: job %s (tenant %s, priority %d) shed under budget pressure", j.ID, j.Tenant, j.req.Priority)
	}
	if len(jobs) > 0 {
		s.gc()
	}
}

// start launches a job's run goroutine. The job is already accounted as
// running.
func (s *Server) start(j *Job) {
	s.running.Add(1)
	go func() {
		defer s.running.Done()
		s.runJob(j)
	}()
}

// settle moves a job to a terminal state, updates the tenant ledger
// (releasing the worst-case reservation and charging the actual retired
// total), and dispatches queued work into the freed slot.
func (s *Server) settle(j *Job, state string, instret uint64, err error) {
	s.mu.Lock()
	ts := s.tenant(j.Tenant)
	s.removeFromQueueLocked(j.ID)
	s.accountLocked(j, acctTerminal)
	ts.reserved -= j.cost
	ts.spent += instret
	started := s.dispatchLocked()
	s.mu.Unlock()
	j.setInstret(instret)
	j.setDoneAt(time.Now().UnixMilli())
	j.setState(state, err)
	s.reg.Counter("serve.jobs." + state).Inc()
	for _, sj := range started {
		s.start(sj)
	}
	s.gc()
}

// Resume requeues an evicted job; it continues from its journal (and, for
// kernel and campaign jobs, its checkpoint ring) rather than recomputing
// finished work. The job re-enters the priority queue but keeps its
// MaxActive slot and budget reservation, so resuming never re-runs
// admission.
func (s *Server) Resume(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return &UnknownJobError{ID: id}
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server is shutting down")
	}
	if j.Gone() {
		s.mu.Unlock()
		return &GoneError{ID: id}
	}
	if st := j.State(); st != stateEvicted {
		s.mu.Unlock()
		return &BadStateError{ID: id, State: st, Op: "resume"}
	}
	j.rearm()
	// The evicted job holds its slot, so moving it evicted→running can
	// never overshoot MaxActive; it still honors queue priority order by
	// re-dispatching through the queue.
	s.enqueueLocked(j)
	started := s.dispatchLocked()
	s.mu.Unlock()
	j.setState(stateQueued, nil)
	s.reg.Counter("serve.jobs.resumed").Inc()
	for _, sj := range started {
		s.start(sj)
	}
	return nil
}

// Evict interrupts a running job — or pulls a queued one out of the wait
// queue — and parks it as evicted: its journal and checkpoint ring stay on
// disk, its budget reservation and MaxActive slot stay held, and Resume
// (or a daemon restart) finishes it with byte-identical output.
func (s *Server) Evict(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return &UnknownJobError{ID: id}
	}
	if j.Gone() {
		s.mu.Unlock()
		return &GoneError{ID: id}
	}
	if s.removeFromQueueLocked(id) {
		// Still waiting: no run goroutine to wind down.
		s.accountLocked(j, acctEvicted)
		s.mu.Unlock()
		s.park(j)
		return nil
	}
	s.mu.Unlock()
	switch j.State() {
	case stateQueued, stateRunning:
	default:
		return &BadStateError{ID: id, State: j.State(), Op: "evict"}
	}
	j.requestEvict()
	j.waitIdle()
	if st := j.State(); st != stateEvicted {
		// The job won the race and finished before the interrupt landed;
		// that is success, not an eviction failure.
		s.logf("serve: evict %s: job finished first (%s)", id, st)
	}
	return nil
}

// Cancel terminally abandons a job: a queued one leaves the queue, a
// running one is interrupted first, then the reservation is released and
// the job will not resume.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return &UnknownJobError{ID: id}
	}
	if j.Gone() {
		s.mu.Unlock()
		return &GoneError{ID: id}
	}
	if s.removeFromQueueLocked(id) {
		s.accountLocked(j, acctEvicted)
		s.mu.Unlock()
		s.park(j)
	} else {
		s.mu.Unlock()
		switch j.State() {
		case stateQueued, stateRunning:
			j.requestEvict()
			j.waitIdle()
		}
	}
	switch j.State() {
	case stateEvicted:
		s.settle(j, stateCanceled, 0, nil)
		return nil
	case stateCanceled:
		return nil
	default:
		return &BadStateError{ID: id, State: j.State(), Op: "cancel"}
	}
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in admission order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant == "" || j.Tenant == tenant {
			out = append(out, j)
		}
	}
	return out
}

// Metrics snapshots the daemon-wide registry.
func (s *Server) Metrics() obs.Snapshot { return s.reg.Snapshot() }

// TenantHealth is one tenant's live degradation picture in GET /healthz:
// queue depth and slot occupancy are gauges read under the admission lock,
// shed/GC counts are lifetime counters (mirrored in the serve.* registry),
// and reserved/spent expose the instruction-budget ledger.
type TenantHealth struct {
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
	Evicted  int    `json:"evicted"`
	Shed     uint64 `json:"shed"`
	GCSwept  uint64 `json:"gc_swept"`
	Reserved uint64 `json:"reserved"`
	Spent    uint64 `json:"spent"`
}

// Health is the GET /healthz document.
type Health struct {
	OK      bool                    `json:"ok"`
	Jobs    int                     `json:"jobs"`
	Queued  int                     `json:"queued"`
	Tenants map[string]TenantHealth `json:"tenants,omitempty"`
}

// Health snapshots the daemon's live admission state.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{OK: true, Jobs: len(s.jobs), Queued: len(s.queue),
		Tenants: map[string]TenantHealth{}}
	for name, ts := range s.tenants {
		h.Tenants[name] = TenantHealth{
			Running: ts.runningN, Queued: ts.queued, Evicted: ts.evicted,
			Shed: ts.shed, GCSwept: ts.gcSwept,
			Reserved: ts.reserved, Spent: ts.spent,
		}
	}
	return h
}

// Close winds the daemon down for restart: every running job is evicted
// (journal flushed, state persisted), queued jobs are parked evicted (the
// queue drains gracefully — nothing is dropped), and the job goroutines
// are drained. A subsequent New on the same state dir resumes them in
// priority order.
func (s *Server) Close() {
	s.gcOnce.Do(func() { close(s.gcStop) })
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	waiting := append([]string(nil), s.queue...)
	s.queue = nil
	var parked []*Job
	for _, id := range waiting {
		j := s.jobs[id]
		s.accountLocked(j, acctEvicted)
		parked = append(parked, j)
	}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range parked {
		s.park(j)
	}
	for _, j := range jobs {
		switch j.State() {
		case stateQueued, stateRunning:
			j.requestEvict()
		}
	}
	s.running.Wait()
}

// recover scans the state dir and re-registers every persisted job.
// Terminal jobs are loaded for queries (tombstones of GC'd ones answer
// typed "gone"); non-terminal ones (queued, running, or evicted at the
// moment the previous daemon died) are requeued in priority order and
// resume from their journals.
func (s *Server) recover() error {
	root := filepath.Join(s.stateDir, "jobs")
	ents, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var requeue []*Job
	for _, name := range names {
		j, err := loadJob(s, filepath.Join(root, name))
		if err != nil {
			s.logf("serve: skipping unrecoverable job dir %s: %v", name, err)
			continue
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n := seqOf(j.ID); n > s.seq {
			s.seq = n
		}
		ts := s.tenant(j.Tenant)
		switch j.State() {
		case stateDone, stateFailed, stateCanceled, stateShed:
			j.acct = acctTerminal
			ts.spent += j.Instret()
			if j.Gone() {
				ts.gcSwept++
			}
		default:
			// The job was in flight (or parked evicted) when the previous
			// daemon died: it keeps its admission slot and reservation and
			// resumes from its journal.
			ts.reserved += j.cost
			j.rearm()
			requeue = append(requeue, j)
		}
	}
	// Priority order, admission order within a priority: a restarted
	// daemon drains its backlog most-urgent-first.
	sort.SliceStable(requeue, func(a, b int) bool {
		if requeue[a].req.Priority != requeue[b].req.Priority {
			return requeue[a].req.Priority > requeue[b].req.Priority
		}
		return seqOf(requeue[a].ID) < seqOf(requeue[b].ID)
	})
	for _, j := range requeue {
		s.enqueueLocked(j)
	}
	started := s.dispatchLocked()
	for _, j := range requeue {
		j.setState(stateQueued, nil)
		s.reg.Counter("serve.jobs.recovered").Inc()
		s.logf("serve: recovered job %s (tenant %s, priority %d), resuming", j.ID, j.Tenant, j.req.Priority)
	}
	for _, j := range started {
		s.start(j)
	}
	return nil
}

// seqOf parses the numeric suffix of a job id ("j000042" → 42); 0 when
// the id is not in the daemon's format.
func seqOf(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// ListenAndServe binds addr and serves the HTTP API until the listener
// fails. Serve-on-listener is split out so cmd/ssd can report the bound
// address before blocking.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves the HTTP API on an existing listener.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	return srv.Serve(ln)
}
