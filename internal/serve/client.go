package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"singlespec/internal/obs"
)

// RPCError is a JSON-RPC error as seen by a client. Data preserves the
// server's typed payload (a RefusedError document for CodeRefused).
type RPCError struct {
	Code    int             `json:"code"`
	Message string          `json:"message"`
	Data    json.RawMessage `json:"data,omitempty"`
}

func (e *RPCError) Error() string { return e.Message }

// Refusal decodes the error's RefusedError payload, when it carries one.
func (e *RPCError) Refusal() (*RefusedError, bool) {
	if e.Code != CodeRefused || len(e.Data) == 0 {
		return nil, false
	}
	var r RefusedError
	if json.Unmarshal(e.Data, &r) != nil {
		return nil, false
	}
	return &r, true
}

// Client talks to one ssd daemon.
type Client struct {
	// Addr is the daemon's host:port.
	Addr string
	// HTTP overrides the transport; nil uses a client with sane timeouts
	// for unary calls (streams use http.DefaultClient, which never times
	// out a read).
	HTTP *http.Client
}

func (c *Client) url(path string) string { return "http://" + c.Addr + path }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// call performs one JSON-RPC request; result may be nil.
func (c *Client) call(method string, params, result any) error {
	req := map[string]any{"jsonrpc": "2.0", "id": 1, "method": method}
	if params != nil {
		req["params"] = params
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.url("/rpc"), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Result json.RawMessage `json:"result"`
		Error  *RPCError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("serve: decoding %s response: %w", method, err)
	}
	if out.Error != nil {
		return out.Error
	}
	if result != nil && len(out.Result) > 0 {
		return json.Unmarshal(out.Result, result)
	}
	return nil
}

// Submit submits a job and returns its initial status.
func (c *Client) Submit(tenant string, req JobRequest) (JobStatus, error) {
	var st JobStatus
	err := c.call("ssd.submit", submitParams{Tenant: tenant, Req: req}, &st)
	return st, err
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.call("ssd.status", idParams{ID: id}, &st)
	return st, err
}

// List lists jobs, optionally filtered by tenant.
func (c *Client) List(tenant string) ([]JobStatus, error) {
	var out []JobStatus
	err := c.call("ssd.list", listParams{Tenant: tenant}, &out)
	return out, err
}

// Result fetches a done job's result document.
func (c *Client) Result(id string) (*JobResult, error) {
	var res JobResult
	if err := c.call("ssd.result", idParams{ID: id}, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Evict parks a running job as evicted (resumable).
func (c *Client) Evict(id string) (JobStatus, error) {
	var st JobStatus
	err := c.call("ssd.evict", idParams{ID: id}, &st)
	return st, err
}

// Resume requeues an evicted job.
func (c *Client) Resume(id string) (JobStatus, error) {
	var st JobStatus
	err := c.call("ssd.resume", idParams{ID: id}, &st)
	return st, err
}

// Cancel terminally abandons a job.
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.call("ssd.cancel", idParams{ID: id}, &st)
	return st, err
}

// Metrics snapshots the daemon-wide registry.
func (c *Client) Metrics() (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.call("ssd.metrics", nil, &snap)
	return snap, err
}

// Stream follows a job's NDJSON event stream from seq `from`, calling fn
// per event until fn returns false or the stream closes (job at rest). A
// replay request older than the daemon's bounded ring returns a typed
// *TruncatedError (after handing fn the terminal "truncated" event);
// re-stream from its Oldest seq.
func (c *Client) Stream(id string, from int, fn func(Event) bool) error {
	resp, err := http.Get(c.url(fmt.Sprintf("/jobs/%s/stream?from=%d", id, from)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: stream %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("serve: stream %s: %w", id, err)
		}
		keep := fn(ev)
		if ev.Type == "truncated" {
			return &TruncatedError{ID: id, From: ev.Seq, Oldest: ev.Oldest}
		}
		if !keep {
			return nil
		}
	}
	return sc.Err()
}

// Healthz fetches GET /healthz.
func (c *Client) Healthz() (Health, error) {
	var h Health
	resp, err := c.httpClient().Get(c.url("/healthz"))
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("serve: decoding healthz: %w", err)
	}
	return h, nil
}

// WaitState polls until the job reaches one of the wanted states (or any
// rest state when none are named), failing after timeout.
func (c *Client) WaitState(id string, timeout time.Duration, states ...string) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if len(states) == 0 {
			switch st.State {
			case stateQueued, stateRunning:
			default:
				return st, nil
			}
		}
		for _, want := range states {
			if st.State == want {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("serve: job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
