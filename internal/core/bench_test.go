package core

import (
	"testing"

	"singlespec/internal/lis"
	"singlespec/internal/mach"
)

// benchProgram is a tight loop: ALU + memory work, decrement, loop branch.
// r9 holds the iteration count.
func benchProgram() []uint32 {
	return []uint32{
		encALU(opADD, 1, 2, 3),
		encALU(opSUB, 3, 1, 4),
		encALU(opXOR, 3, 4, 5),
		encALU(opADD, 5, 2, 6),
		encMEM(opSTW, 6, 10, 0),
		encMEM(opLDW, 7, 10, 0),
		encALU(opADD, 7, 3, 8),
		encALU(opSUB, 9, 11, 9), // r9 -= 1
		encBR(opBEQ, 9, 1),      // r9 == 0: exit loop
		encBR(opBEQ, 15, -10),   // always taken: back to start
		encALU(opHLT, 15, 0, 0),
	}
}

func benchMachine(spec *lis.Spec, iters uint64) *mach.Machine {
	m := loadProgram(spec, benchProgram())
	r := m.MustSpace("r")
	r.Vals[1], r.Vals[2] = 5, 7
	r.Vals[10] = dataBase
	r.Vals[11] = 1
	r.Vals[9] = iters
	return m
}

func benchBuildset(b *testing.B, bs string, opts Options) {
	spec, err := lis.Parse("toy.lis", toySrc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Synthesize(spec, bs, opts)
	if err != nil {
		b.Fatal(err)
	}
	m := benchMachine(spec, 1<<62)
	x := s.NewExec(m)
	b.ResetTimer()
	var n uint64
	for n < uint64(b.N) {
		chunk := uint64(b.N) - n
		if chunk > 65536 {
			chunk = 65536
		}
		n += x.Run(chunk)
		if m.JournalOn {
			// A speculative driver periodically commits; without it the
			// undo log would grow without bound.
			m.Journal.Reset()
		}
	}
	b.StopTimer()
	if m.Halted {
		b.Fatal("benchmark loop halted early")
	}
	b.ReportMetric(float64(n)/float64(b.N), "instrs/op")
}

// benchBranchProgram is a dispatch-dominated workload: two single-branch
// basic blocks ping-ponging forever. Every retired instruction is a block
// (or unit) dispatch, so the benchmark isolates the lookup/chaining cost
// the hot path pays before any instruction semantics run.
func benchBranchProgram() []uint32 {
	return []uint32{
		encBR(opBEQ, 15, 1),  // @0: always taken -> @8
		encALU(opHLT, 15, 0, 0),
		encBR(opBEQ, 15, -3), // @8: always taken -> @0
	}
}

func benchDispatch(b *testing.B, bs string) {
	spec, err := lis.Parse("toy.lis", toySrc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Synthesize(spec, bs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := loadProgram(spec, benchBranchProgram())
	x := s.NewExec(m)
	b.ResetTimer()
	var n uint64
	for n < uint64(b.N) {
		chunk := uint64(b.N) - n
		if chunk > 65536 {
			chunk = 65536
		}
		n += x.Run(chunk)
	}
	b.StopTimer()
	if m.Halted {
		b.Fatal("dispatch loop halted early")
	}
}

// BenchmarkDispatchBlock measures per-block dispatch on the Block/Min
// interface: each block is one branch, so block lookup (and, post-chaining,
// the chain follow) dominates.
func BenchmarkDispatchBlock(b *testing.B) { benchDispatch(b, "block_min") }

// BenchmarkDispatchOne measures per-instruction translated dispatch on the
// One/Min interface over the same branch ping-pong.
func BenchmarkDispatchOne(b *testing.B) { benchDispatch(b, "one_min") }

// BenchmarkFlushLocal measures the cost of dropping the Exec's first-level
// translation caches (the checkpoint-restore path).
func BenchmarkFlushLocal(b *testing.B) {
	spec, err := lis.Parse("toy.lis", toySrc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Synthesize(spec, "one_min", Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := loadProgram(spec, benchProgram())
	x := s.NewExec(m)
	x.Run(64)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		x.FlushLocal()
	}
}

// BenchmarkTransUnitSharedHit measures the first-level-miss path of unit
// translation: flush the private cache, then re-resolve one PC through the
// shared cache. This is the path the transUnit double page walk sat on.
func BenchmarkTransUnitSharedHit(b *testing.B) {
	spec, err := lis.Parse("toy.lis", toySrc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Synthesize(spec, "one_min", Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := loadProgram(spec, benchProgram())
	x := s.NewExec(m)
	x.Run(64) // warm the shared cache
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		x.FlushLocal()
		if x.transUnit(codeBase) == nil {
			b.Fatal("transUnit returned nil")
		}
	}
}

// BenchmarkPublish measures one record publication at full informational
// detail (the per-instruction store cost of the paper's §V-E analysis).
func BenchmarkPublish(b *testing.B) {
	spec, err := lis.Parse("toy.lis", toySrc)
	if err != nil {
		b.Fatal(err)
	}
	s, err := Synthesize(spec, "one_all", Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := loadProgram(spec, benchProgram())
	x := s.NewExec(m)
	var rec Record
	x.ExecOne(&rec)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		x.publish(&rec)
	}
}

func BenchmarkToyOneAll(b *testing.B)       { benchBuildset(b, "one_all", Options{}) }
func BenchmarkToyOneDecode(b *testing.B)    { benchBuildset(b, "one_decode", Options{}) }
func BenchmarkToyOneMin(b *testing.B)       { benchBuildset(b, "one_min", Options{}) }
func BenchmarkToyOneAllSpec(b *testing.B)   { benchBuildset(b, "one_all_spec", Options{}) }
func BenchmarkToyStepAll(b *testing.B)      { benchBuildset(b, "step_all", Options{}) }
func BenchmarkToyBlockMin(b *testing.B)     { benchBuildset(b, "block_min", Options{}) }
func BenchmarkToyBlockAll(b *testing.B)     { benchBuildset(b, "block_all", Options{}) }
func BenchmarkToyBlockMinSpec(b *testing.B) { benchBuildset(b, "block_min_spec", Options{}) }
func BenchmarkToyOneMinInterp(b *testing.B) {
	benchBuildset(b, "one_min", Options{NoTranslate: true})
}
