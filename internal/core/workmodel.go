package core

// Work-model accessors for out-of-process backends (internal/aot).
//
// The AOT runner executes generated per-instruction code and counts retired
// instructions itself, but the abstract work metric (Table II's
// work-per-instruction column) is defined by the closure interpreter's
// accounting: per-unit compile-time work plus per-publish interface work.
// Rather than teach the generated code the accounting rules, the host
// reconstructs work from the runner's (pc, bits) execution profile using
// these accessors, which expose exactly the quantities the interpreter
// charges. This keeps a single source of truth for the metric.

// TranslatedUnitWork returns the work one translated (per-PC specialized)
// execution of the instruction encoded by bits at pc would be charged, i.e.
// unit.work for the translation of (pc, bits). The second result is false
// when bits do not decode.
func (s *Sim) TranslatedUnitWork(pc uint64, bits uint32) (uint64, bool) {
	id := s.dec.decode(bits)
	if id < 0 {
		return 0, false
	}
	return uint64(s.translate(s.Spec.Instrs[id], pc, bits).work), true
}

// DynamicUnitWork returns the work of the dynamically-dispatched (per
// instruction ID, not per PC) compiled unit for bits, as used by the Step
// interface and the interpreted One path. The second result is false when
// bits do not decode.
func (s *Sim) DynamicUnitWork(bits uint32) (uint64, bool) {
	id := s.dec.decode(bits)
	if id < 0 {
		return 0, false
	}
	return uint64(s.genUnits[id].work), true
}

// FaultUnitWork returns the work of the pre-decode fault unit (the
// ALL-actions-only unit executed for fetch faults and undecodable bits).
func (s *Sim) FaultUnitWork() uint64 { return uint64(s.faultUnit.work) }

// PubWork returns the per-publish interface work (record emission cost).
func (s *Sim) PubWork() uint64 { return uint64(s.pubWork) }

// EmitsRecords reports whether Block execution publishes per-instruction
// records under this buildset.
func (s *Sim) EmitsRecords() bool { return s.emitRecs }
